// Goroutine-budget assertion shared by the chaos suites: a kill/restart
// cycle that leaks even one daemon worker per iteration turns into tens of
// thousands of parked goroutines on a long-lived SD node, so every chaos
// test pins that the process returns to its pre-test goroutine count once
// teardown finishes.
package mcsd_test

import (
	"runtime"
	"testing"
	"time"
)

// assertGoroutineBudget snapshots the live goroutine count and registers a
// cleanup that fails the test unless the count settles back to within
// slack of that baseline after the test (and its deferred teardown) has
// finished. The poll loop absorbs the few milliseconds workers need to
// notice a cancelled context; a real leak holds the count up past the
// deadline and fails with a full stack dump naming the parked goroutines.
func assertGoroutineBudget(t *testing.T, slack int) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(10 * time.Second)
		for {
			n := runtime.NumGoroutine()
			if n <= base+slack {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				buf = buf[:runtime.Stack(buf, true)]
				t.Errorf("goroutine budget blown: %d live after teardown, baseline %d (slack %d)\n%s",
					n, base, slack, buf)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}
