// Package mcsd_test holds the repository-level benchmark harness: one
// benchmark per table and figure of the paper (regenerated through the
// performance model), real-engine throughput benchmarks, and ablation
// benchmarks for the design choices called out in DESIGN.md.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package mcsd_test

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mcsd/internal/cluster"
	"mcsd/internal/core"
	"mcsd/internal/experiments"
	"mcsd/internal/mapreduce"
	"mcsd/internal/netsim"
	"mcsd/internal/nfs"
	"mcsd/internal/partition"
	"mcsd/internal/sim"
	"mcsd/internal/smartfam"
	"mcsd/internal/workloads"
)

// --- Paper tables and figures -------------------------------------------

// BenchmarkTable1ClusterModel regenerates Table I.
func BenchmarkTable1ClusterModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.Table1()
		if tbl.NumRows() != 5 {
			b.Fatal("Table I must have 5 nodes")
		}
	}
}

// BenchmarkFig8aSingleAppSpeedup regenerates Fig. 8(a) and reports the
// duo-core word-count speedup as a metric.
func BenchmarkFig8aSingleAppSpeedup(b *testing.B) {
	var duoWC float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig8a()
		if err != nil {
			b.Fatal(err)
		}
		duoWC, _ = fig.Series[2].At(500)
	}
	b.ReportMetric(duoWC, "duo-wc-speedup")
}

// BenchmarkFig8bWordCountGrowth regenerates Fig. 8(b) and reports the
// duo-core elapsed seconds at 2 GB.
func BenchmarkFig8bWordCountGrowth(b *testing.B) {
	var at2g float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig8b()
		if err != nil {
			b.Fatal(err)
		}
		at2g, _ = fig.Series[0].At(2000)
	}
	b.ReportMetric(at2g, "duo-2G-seconds")
}

// BenchmarkFig8cStringMatchGrowth regenerates Fig. 8(c).
func BenchmarkFig8cStringMatchGrowth(b *testing.B) {
	var at2g float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig8c()
		if err != nil {
			b.Fatal(err)
		}
		at2g, _ = fig.Series[0].At(2000)
	}
	b.ReportMetric(at2g, "duo-2G-seconds")
}

// BenchmarkFig9MMWCScenarios regenerates Fig. 9 and reports the host-only
// speedup at 1.25 GB (paper: ~17.4x).
func BenchmarkFig9MMWCScenarios(b *testing.B) {
	var hostOnly float64
	for i := 0; i < b.N; i++ {
		figs, err := experiments.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		hostOnly, _ = figs[0].Series[0].At(1250)
	}
	b.ReportMetric(hostOnly, "hostonly-1.25G-speedup")
}

// BenchmarkFig10MMSMScenarios regenerates Fig. 10 and reports the host-only
// speedup at 1.25 GB (paper: ~2x, no blowup).
func BenchmarkFig10MMSMScenarios(b *testing.B) {
	var hostOnly float64
	for i := 0; i < b.N; i++ {
		figs, err := experiments.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		hostOnly, _ = figs[0].Series[0].At(1250)
	}
	b.ReportMetric(hostOnly, "hostonly-1.25G-speedup")
}

// BenchmarkClaimsMemoryWall re-checks the §V prose claims (memory wall at
// 1.5 GB, 1/6 elapsed-time ratio, 2x duo speedups).
func BenchmarkClaimsMemoryWall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lines, err := experiments.Claims()
		if err != nil {
			b.Fatal(err)
		}
		for _, l := range lines {
			if len(l) >= 6 && l[:6] == "[FAIL]" {
				b.Fatalf("claim failed: %s", l)
			}
		}
	}
}

// --- Real-engine throughput ----------------------------------------------

const engineCorpus = 4 << 20

func benchEngineInput(b *testing.B) []byte {
	b.Helper()
	return workloads.GenerateTextBytes(engineCorpus, 1)
}

// BenchmarkEngineWordCountParallel measures the real Phoenix-style runtime
// on word count with the node's cores.
func BenchmarkEngineWordCountParallel(b *testing.B) {
	input := benchEngineInput(b)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapreduce.Run(context.Background(), mapreduce.Config{},
			workloads.WordCountSpec(), input); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineWordCountSequential is the sequential baseline.
func BenchmarkEngineWordCountSequential(b *testing.B) {
	input := benchEngineInput(b)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapreduce.RunSequential(context.Background(), mapreduce.Config{},
			workloads.WordCountSpec(), input); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineStringMatch measures the string-match spec.
func BenchmarkEngineStringMatch(b *testing.B) {
	keys := workloads.GenerateKeys(8, 2)
	input := workloads.GenerateEncryptBytes(engineCorpus, 3, keys, 0.05)
	spec := workloads.StringMatchSpec(keys)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapreduce.Run(context.Background(), mapreduce.Config{}, spec, input); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineMatMul measures the MapReduce matrix multiplication.
func BenchmarkEngineMatMul(b *testing.B) {
	a := workloads.RandomMatrix(128, 128, 1)
	bb := workloads.RandomMatrix(128, 128, 2)
	spec := workloads.MatMulSpec(a, bb)
	rows := workloads.RowIndexInput(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapreduce.Run(context.Background(), mapreduce.Config{}, spec, rows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitionOverhead compares the partitioned driver against one
// native run over the same input — the cost of the Fig. 6 extension when
// memory is NOT scarce.
func BenchmarkPartitionOverhead(b *testing.B) {
	input := benchEngineInput(b)
	b.Run("native", func(b *testing.B) {
		b.SetBytes(int64(len(input)))
		for i := 0; i < b.N; i++ {
			if _, err := mapreduce.Run(context.Background(), mapreduce.Config{},
				workloads.WordCountSpec(), input); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("partitioned-512K", func(b *testing.B) {
		b.SetBytes(int64(len(input)))
		for i := 0; i < b.N; i++ {
			if _, err := partition.Run(context.Background(), mapreduce.Config{},
				workloads.WordCountSpec(), bytes.NewReader(input),
				partition.Options{FragmentSize: 512 << 10}, workloads.WordCountMerge); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSmartFAMRoundTrip measures one log-file invocation round trip
// through a local share (the mechanism latency floor).
func BenchmarkSmartFAMRoundTrip(b *testing.B) {
	dir := b.TempDir()
	share := smartfam.DirFS(dir)
	reg := smartfam.NewRegistry(share)
	echo := smartfam.ModuleFunc{
		ModuleName: "echo",
		Fn:         func(_ context.Context, p []byte) ([]byte, error) { return p, nil },
	}
	if err := reg.Register(echo); err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	d := smartfam.NewDaemon(share, reg, smartfam.WithPollInterval(200*time.Microsecond))
	go d.Run(ctx) //nolint:errcheck
	c := smartfam.NewClient(share, 200*time.Microsecond)
	payload := []byte("ping")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Invoke(ctx, "echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// nfsPair spins up a server over a temp dir and returns a connected client.
func nfsPair(b *testing.B) *nfs.Client {
	b.Helper()
	root := b.TempDir()
	srv := nfs.NewServer(root)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	b.Cleanup(func() {
		ln.Close()
		srv.Shutdown()
	})
	c, err := nfs.Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

// BenchmarkNFSWriteThroughput measures staging data onto an SD node.
func BenchmarkNFSWriteThroughput(b *testing.B) {
	c := nfsPair(b)
	data := bytes.Repeat([]byte("x"), 1<<20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.WriteFile("bench.bin", data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNFSReadThroughput measures pulling data back over the wire —
// the per-byte cost the host-only scenario pays.
func BenchmarkNFSReadThroughput(b *testing.B) {
	c := nfsPair(b)
	data := bytes.Repeat([]byte("x"), 1<<20)
	if err := c.WriteFile("bench.bin", data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ReadFile("bench.bin"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOffloadEndToEnd measures a full McSD word-count offload: the
// runtime invokes the preloaded module on an SD node through smartFAM.
func BenchmarkOffloadEndToEnd(b *testing.B) {
	dir := b.TempDir()
	share := smartfam.DirFS(dir)
	reg := smartfam.NewRegistry(share)
	for _, m := range core.StandardModules(core.ModuleConfig{Store: core.DirStore(dir), Workers: 2}) {
		if err := reg.Register(m); err != nil {
			b.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	d := smartfam.NewDaemon(share, reg, smartfam.WithPollInterval(200*time.Microsecond))
	go d.Run(ctx) //nolint:errcheck

	corpus := workloads.GenerateTextBytes(1<<20, 4)
	if err := os.WriteFile(filepath.Join(dir, "c.txt"), corpus, 0o644); err != nil {
		b.Fatal(err)
	}
	rt := core.New(core.WithPollInterval(200 * time.Microsecond))
	rt.AttachSD("sd0", share)
	params := core.WordCountParams{DataFile: "c.txt", PartitionBytes: 256 << 10, TopN: 5}
	b.SetBytes(int64(len(corpus)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Invoke(ctx, core.ModuleWordCount, params); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations -------------------------------------------------------------

// BenchmarkEngineHistogram measures the fixed-key-space profile (768
// buckets regardless of input size).
func BenchmarkEngineHistogram(b *testing.B) {
	input := workloads.GenerateBitmap(engineCorpus, 8)
	spec := workloads.HistogramSpec()
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapreduce.Run(context.Background(), mapreduce.Config{}, spec, input); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineKMeans measures iterative MapReduce: a full clustering of
// 20k 4-d points into 8 clusters.
func BenchmarkEngineKMeans(b *testing.B) {
	pts, _ := workloads.GeneratePoints(20_000, 4, 8, 9)
	enc, dim, err := workloads.EncodePoints(pts)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := workloads.KMeans(context.Background(), mapreduce.Config{}, enc, dim, 8, 30, 1e-6)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Rounds), "rounds")
		}
	}
}

// BenchmarkPartitionDrivers compares the sequential out-of-core driver
// against the fragment-parallel worker-pool driver on the same input.
func BenchmarkPartitionDrivers(b *testing.B) {
	input := benchEngineInput(b)
	drivers := []struct {
		name string
		run  func() error
	}{
		{"sequential-driver", func() error {
			_, err := partition.Run(context.Background(), mapreduce.Config{},
				workloads.WordCountSpec(), bytes.NewReader(input),
				partition.Options{FragmentSize: 512 << 10}, workloads.WordCountMerge)
			return err
		}},
		{"parallel-driver", func() error {
			_, err := partition.RunParallel(context.Background(), mapreduce.Config{},
				workloads.WordCountSpec(), bytes.NewReader(input),
				partition.Options{FragmentSize: 512 << 10}, workloads.WordCountMerge)
			return err
		}},
	}
	for _, d := range drivers {
		b.Run(d.name, func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				if err := d.run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineDBSelect measures the database-operation module's engine
// path (CSV parse + filter + group-by aggregate).
func BenchmarkEngineDBSelect(b *testing.B) {
	input := workloads.GenerateSalesBytes(engineCorpus, 6)
	spec := workloads.DBSelectSpec(workloads.DBQuery{GroupBy: "region", MinPrice: 100})
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapreduce.Run(context.Background(), mapreduce.Config{}, spec, input); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiSDScaling reports the simulated striping speedup for a
// 2 GB word count across 1-6 SD nodes (the §VI multi-SD study).
func BenchmarkMultiSDScaling(b *testing.B) {
	cfg := sim.PairConfig{
		Cluster:        cluster.TableI(),
		DataCost:       workloads.WordCountCost(),
		DataBytes:      2 << 30,
		PartitionBytes: experiments.PartitionBytes,
		SMBLoad:        experiments.SMBLoad,
	}
	for _, k := range []int{1, 2, 4, 6} {
		b.Run(formatMB(int64(k))[:len(formatMB(int64(k)))-2]+"nodes", func(b *testing.B) {
			var s float64
			for i := 0; i < b.N; i++ {
				var err error
				s, err = sim.MultiSDSpeedup(cfg, k)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(s, "speedup")
		})
	}
}

// BenchmarkAblationCombiner quantifies the Phoenix combiner: word count
// with and without worker-local pre-aggregation.
func BenchmarkAblationCombiner(b *testing.B) {
	input := benchEngineInput(b)
	withSpec := workloads.WordCountSpec()
	withoutSpec := workloads.WordCountSpec()
	withoutSpec.Combine = nil
	for _, tc := range []struct {
		name string
		spec mapreduce.Spec[string, int, int]
	}{{"with-combiner", withSpec}, {"without-combiner", withoutSpec}} {
		b.Run(tc.name, func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				if _, err := mapreduce.Run(context.Background(), mapreduce.Config{}, tc.spec, input); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPartitionSize sweeps the simulated fragment size for a
// 2 GB word count on the SD node — the §IV-C "how to pick
// [partition-size]" question.
func BenchmarkAblationPartitionSize(b *testing.B) {
	node := *cluster.TableI().SD()
	for _, fragMB := range []int64{100, 300, 600, 900, 1200} {
		b.Run(formatMB(fragMB), func(b *testing.B) {
			var elapsed float64
			for i := 0; i < b.N; i++ {
				out, err := sim.DataAppTime(workloads.WordCountCost(), 2<<30,
					sim.Exec{Node: node, PartitionBytes: fragMB << 20})
				if err != nil {
					b.Fatal(err)
				}
				elapsed = out.Elapsed.Seconds()
			}
			b.ReportMetric(elapsed, "sim-seconds")
		})
	}
}

// BenchmarkAblationNetworkProfiles prices the host-only data staging under
// the three interconnects (the paper's §VI InfiniBand upgrade).
func BenchmarkAblationNetworkProfiles(b *testing.B) {
	for _, p := range []netsim.Profile{
		netsim.ProfileFastEthernet,
		netsim.ProfileGigabitEthernet,
		netsim.ProfileInfiniBand,
	} {
		b.Run(p.Name, func(b *testing.B) {
			var sec float64
			for i := 0; i < b.N; i++ {
				sec = sim.StageTime(p, 1<<30, experiments.SMBLoad).Seconds()
			}
			b.ReportMetric(sec, "stage-1G-seconds")
		})
	}
}

func formatMB(n int64) string {
	const digits = "0123456789"
	if n == 0 {
		return "0MB"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = digits[n%10]
		n /= 10
	}
	return string(buf[i:]) + "MB"
}

// --- Shuffle/merge hot-path overhaul -------------------------------------

// BenchmarkMergeSorted compares the heap-based k-way merge against the old
// linear tournament across run counts. At k=2 the two are close (the heap
// path degenerates to a two-pointer merge); at k=64 the heap's O(n log k)
// pulls away from the tournament's O(n·k).
func BenchmarkMergeSorted(b *testing.B) {
	const total = 1 << 17
	for _, k := range []int{2, 8, 64} {
		runs := make([][]mapreduce.Pair[int, int], k)
		for i := 0; i < total; i++ {
			runs[i%k] = append(runs[i%k], mapreduce.Pair[int, int]{Key: i, Value: i})
		}
		less := func(a, c int) bool { return a < c }
		b.Run(fmt.Sprintf("loser-tree/k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mapreduce.MergeSorted(runs, less)
			}
		})
		b.Run(fmt.Sprintf("linear/k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mapreduce.MergeSortedLinear(runs, less)
			}
		})
	}
}

// BenchmarkRunWordcount isolates what the streaming combine buys: the same
// corpus through the full engine with and without a combiner. The combine
// variant must allocate strictly fewer bytes per op — raw pairs never hit
// the staging buffers.
func BenchmarkRunWordcount(b *testing.B) {
	input := benchEngineInput(b)
	withCombine := workloads.WordCountSpec()
	noCombine := workloads.WordCountSpec()
	noCombine.Combine = nil
	for _, v := range []struct {
		name string
		spec mapreduce.Spec[string, int, int]
	}{
		{"with-combine", withCombine},
		{"no-combine", noCombine},
	} {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				if _, err := mapreduce.Run(context.Background(), mapreduce.Config{},
					v.spec, input); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
