package fleet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mcsd/internal/sched"
	"mcsd/internal/smartfam"
)

// fakeSession scripts one node's behaviour per fragment correlation ID.
type fakeSession struct {
	name string
	// behave decides each attempt's outcome; called with the request's
	// correlation id and params. Safe for concurrent calls.
	behave func(ctx context.Context, id string, params []byte) ([]byte, error)
	calls  atomic.Int64
}

func (f *fakeSession) InvokeID(ctx context.Context, module, id string, params []byte) ([]byte, error) {
	f.calls.Add(1)
	return f.behave(ctx, id, params)
}

// echoOK is a behaviour that returns the params as the payload.
func echoOK(ctx context.Context, id string, params []byte) ([]byte, error) {
	return params, nil
}

func testFragments(n int) []Fragment {
	frags := make([]Fragment, n)
	for i := range frags {
		frags[i] = Fragment{Index: i, Key: fmt.Sprintf("data/corpus.txt#%d", i), Params: []byte(fmt.Sprintf("p%d", i))}
	}
	return frags
}

func fastConfig() Config {
	return Config{
		Window:          2,
		AttemptTimeout:  5 * time.Second,
		MinStragglerAge: 30 * time.Millisecond,
		ScanInterval:    5 * time.Millisecond,
	}
}

func TestExecuteGathersAllInOrder(t *testing.T) {
	nodes := []Node{
		{Name: "sd0", Session: &fakeSession{name: "sd0", behave: echoOK}},
		{Name: "sd1", Session: &fakeSession{name: "sd1", behave: echoOK}},
		{Name: "sd2", Session: &fakeSession{name: "sd2", behave: echoOK}},
	}
	c := NewCoordinator(nodes, fastConfig())
	frags := testFragments(20)
	results, stats, err := c.Execute(context.Background(), "m", frags)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 20 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("result %d has index %d", i, r.Index)
		}
		if string(r.Payload) != fmt.Sprintf("p%d", i) {
			t.Fatalf("result %d payload %q", i, r.Payload)
		}
	}
	if stats.Dispatches < 20 {
		t.Fatalf("dispatches = %d", stats.Dispatches)
	}
	total := 0
	for _, n := range stats.PerNode {
		total += n
	}
	if total != 20 {
		t.Fatalf("per-node sum = %d, want 20: %v", total, stats.PerNode)
	}
	if stats.NodeFailures != 0 || stats.DupResults != 0 {
		t.Fatalf("unexpected failures/dups: %+v", stats)
	}
}

func TestExecuteQueueStealBalancesSlowNode(t *testing.T) {
	// sd0 serves each attempt slowly; sd1 is instant. sd1 must drain its
	// own queue and then steal from sd0's rather than idle.
	slow := &fakeSession{name: "sd0", behave: func(ctx context.Context, id string, params []byte) ([]byte, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(40 * time.Millisecond):
		}
		return params, nil
	}}
	fast := &fakeSession{name: "sd1", behave: echoOK}
	cfg := fastConfig()
	cfg.MinStragglerAge = time.Hour // isolate stealing from speculation
	c := NewCoordinator([]Node{{Name: "sd0", Session: slow}, {Name: "sd1", Session: fast}}, cfg)
	results, stats, err := c.Execute(context.Background(), "m", testFragments(24))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 24 {
		t.Fatalf("got %d results", len(results))
	}
	if stats.QueueSteals == 0 {
		t.Fatalf("fast node never stole work: %+v", stats)
	}
	if stats.PerNode["sd1"] <= stats.PerNode["sd0"] {
		t.Fatalf("slow node completed more: %v", stats.PerNode)
	}
}

func TestExecuteSpeculationAndFirstWinsDedup(t *testing.T) {
	// Fragment p0's original attempt hangs until a speculative attempt on
	// the other node wins; the original then returns late and must be
	// dropped by first-wins dedup. A hostage fragment (p1) keeps the job
	// open until well after the late duplicate has been delivered, so the
	// dedup is observable in Stats.
	var mu sync.Mutex
	held := make(map[string]chan struct{}) // p0's correlation id -> release
	origReturned := make(chan struct{})
	var hangNode atomic.Value
	behave := func(node string) func(ctx context.Context, id string, params []byte) ([]byte, error) {
		return func(ctx context.Context, id string, params []byte) ([]byte, error) {
			switch string(params) {
			case "p0":
				mu.Lock()
				ch, ok := held[id]
				first := !ok
				if first {
					ch = make(chan struct{})
					held[id] = ch
					hangNode.Store(node)
				}
				mu.Unlock()
				if first {
					// Original attempt: block until the speculative one won.
					select {
					case <-ctx.Done():
						return nil, ctx.Err()
					case <-ch:
					}
					close(origReturned)
					return []byte(node + ":late"), nil
				}
				// Speculative attempt on another node: succeed, then
				// release the original.
				defer close(ch)
				return []byte(node + ":spec"), nil
			case "p1":
				// Hostage: finish only after the late original's result has
				// had ample time to reach the coordinator.
				select {
				case <-ctx.Done():
					return nil, ctx.Err()
				case <-origReturned:
				}
				select {
				case <-ctx.Done():
					return nil, ctx.Err()
				case <-time.After(100 * time.Millisecond):
				}
				return params, nil
			default:
				return params, nil
			}
		}
	}
	nodes := []Node{
		{Name: "sd0", Session: &fakeSession{name: "sd0", behave: behave("sd0")}},
		{Name: "sd1", Session: &fakeSession{name: "sd1", behave: behave("sd1")}},
	}
	c := NewCoordinator(nodes, fastConfig())
	results, stats, err := c.Execute(context.Background(), "m", testFragments(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("got %d results", len(results))
	}
	if stats.Speculations == 0 {
		t.Fatalf("no speculation launched: %+v", stats)
	}
	if stats.DupResults == 0 {
		t.Fatalf("late original was not deduped: %+v", stats)
	}
	r0 := results[0]
	if !strings.HasSuffix(string(r0.Payload), ":spec") {
		t.Fatalf("fragment 0 won by %q, want the speculative attempt", r0.Payload)
	}
	if !r0.Speculated {
		t.Fatalf("fragment 0 not marked speculated: %+v", r0)
	}
	if hn := hangNode.Load().(string); r0.Node == hn {
		t.Fatalf("winning node %s is the hanging node", r0.Node)
	}
	if r0.Attempts < 2 {
		t.Fatalf("fragment 0 attempts = %d", r0.Attempts)
	}
}

func TestExecuteNodeFailureRePlaces(t *testing.T) {
	// sd1 dies on every attempt with a transport error; its fragments must
	// re-place onto survivors and the job still completes exactly once.
	dead := &fakeSession{name: "sd1", behave: func(ctx context.Context, id string, params []byte) ([]byte, error) {
		return nil, errors.New("smartfam: append: connection reset")
	}}
	nodes := []Node{
		{Name: "sd0", Session: &fakeSession{name: "sd0", behave: echoOK}},
		{Name: "sd1", Session: dead},
		{Name: "sd2", Session: &fakeSession{name: "sd2", behave: echoOK}},
	}
	c := NewCoordinator(nodes, fastConfig())
	results, stats, err := c.Execute(context.Background(), "m", testFragments(30))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 30 {
		t.Fatalf("got %d results", len(results))
	}
	if stats.NodeFailures != 1 {
		t.Fatalf("NodeFailures = %d, want 1", stats.NodeFailures)
	}
	if stats.MovedFragments == 0 {
		t.Fatalf("no fragments moved off the dead node: %+v", stats)
	}
	if stats.PerNode["sd1"] != 0 {
		t.Fatalf("dead node completed work: %v", stats.PerNode)
	}
	seen := make(map[int]bool)
	for _, r := range results {
		if seen[r.Index] {
			t.Fatalf("fragment %d completed twice", r.Index)
		}
		seen[r.Index] = true
	}
}

func TestExecuteFailoverMatchesRingRank(t *testing.T) {
	// A fragment orphaned by a node death must land on the next node in
	// its preference list — the placement a fresh ring without the dead
	// node would choose.
	dead := &fakeSession{name: "sd0", behave: func(ctx context.Context, id string, params []byte) ([]byte, error) {
		return nil, errors.New("smartfam: transport down")
	}}
	ok0 := &fakeSession{name: "sd1", behave: echoOK}
	ok1 := &fakeSession{name: "sd2", behave: echoOK}
	c := NewCoordinator([]Node{
		{Name: "sd0", Session: dead}, {Name: "sd1", Session: ok0}, {Name: "sd2", Session: ok1},
	}, fastConfig())
	// Use exactly one fragment owned by the dead node so its landing spot
	// is observable.
	var frag Fragment
	found := false
	for i := 0; i < 1000 && !found; i++ {
		key := fmt.Sprintf("probe#%d", i)
		if owner, _ := c.Ring().Owner(key); owner == "sd0" {
			frag = Fragment{Index: 0, Key: key, Params: []byte("p")}
			found = true
		}
	}
	if !found {
		t.Fatal("no key owned by sd0 in 1000 probes")
	}
	results, stats, err := c.Execute(context.Background(), "m", []Fragment{frag})
	if err != nil {
		t.Fatal(err)
	}
	wantNode := c.Ring().Rank(frag.Key)[1]
	if results[0].Node != wantNode {
		t.Fatalf("fragment failed over to %s, want rank[1] = %s", results[0].Node, wantNode)
	}
	if stats.MovedFragments != 1 || stats.NodeFailures != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestExecuteModuleErrorFailsFast(t *testing.T) {
	bad := &fakeSession{name: "sd0", behave: func(ctx context.Context, id string, params []byte) ([]byte, error) {
		return nil, &smartfam.ModuleError{Module: "m", Msg: "core: bad parameters"}
	}}
	c := NewCoordinator([]Node{{Name: "sd0", Session: bad}}, fastConfig())
	_, _, err := c.Execute(context.Background(), "m", testFragments(3))
	var merr *smartfam.ModuleError
	if !errors.As(err, &merr) {
		t.Fatalf("err = %v, want ModuleError", err)
	}
}

func TestExecuteQueueFullRequeues(t *testing.T) {
	// The node sheds the first two attempts of every fragment, then
	// accepts: backpressure must requeue, not fail over.
	var mu sync.Mutex
	shed := make(map[string]int)
	session := &fakeSession{name: "sd0", behave: func(ctx context.Context, id string, params []byte) ([]byte, error) {
		mu.Lock()
		shed[id]++
		n := shed[id]
		mu.Unlock()
		if n <= 2 {
			return nil, &smartfam.ModuleError{Module: "m", Msg: sched.ErrQueueFull.Error()}
		}
		return params, nil
	}}
	c := NewCoordinator([]Node{{Name: "sd0", Session: session}}, fastConfig())
	results, stats, err := c.Execute(context.Background(), "m", testFragments(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d results", len(results))
	}
	if stats.QueueFullRequeues != 10 {
		t.Fatalf("QueueFullRequeues = %d, want 10", stats.QueueFullRequeues)
	}
	if stats.NodeFailures != 0 {
		t.Fatalf("backpressure failed the node over: %+v", stats)
	}
}

func TestExecuteAllNodesDown(t *testing.T) {
	die := func(ctx context.Context, id string, params []byte) ([]byte, error) {
		return nil, errors.New("smartfam: transport down")
	}
	c := NewCoordinator([]Node{
		{Name: "sd0", Session: &fakeSession{name: "sd0", behave: die}},
		{Name: "sd1", Session: &fakeSession{name: "sd1", behave: die}},
	}, fastConfig())
	_, _, err := c.Execute(context.Background(), "m", testFragments(4))
	if !errors.Is(err, ErrNoNodes) {
		t.Fatalf("err = %v, want ErrNoNodes", err)
	}
}

func TestExecuteContextCancel(t *testing.T) {
	hang := &fakeSession{name: "sd0", behave: func(ctx context.Context, id string, params []byte) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}}
	cfg := fastConfig()
	cfg.AttemptTimeout = 0
	c := NewCoordinator([]Node{{Name: "sd0", Session: hang}}, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		select {
		case <-ctx.Done():
		case <-time.After(30 * time.Millisecond):
			cancel()
		}
	}()
	_, _, err := c.Execute(ctx, "m", testFragments(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	cancel()
}

func TestExecuteEmpty(t *testing.T) {
	c := NewCoordinator([]Node{{Name: "sd0", Session: &fakeSession{behave: echoOK}}}, fastConfig())
	results, _, err := c.Execute(context.Background(), "m", nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty execute = %v, %v", results, err)
	}
}

func TestExecuteDuplicateFragmentIndexRejected(t *testing.T) {
	c := NewCoordinator([]Node{{Name: "sd0", Session: &fakeSession{behave: echoOK}}}, fastConfig())
	frags := []Fragment{{Index: 1, Key: "a"}, {Index: 1, Key: "b"}}
	if _, _, err := c.Execute(context.Background(), "m", frags); err == nil {
		t.Fatal("duplicate index accepted")
	}
}
