package fleet

import (
	"context"
	"hash/crc32"
	"io"
	"sync/atomic"
	"testing"

	"mcsd/internal/metrics"
	"mcsd/internal/smartfam"
)

func TestScrubCleanFleetReportsNoRepairs(t *testing.T) {
	s, _ := testStore(t, 3, 2)
	ctx := context.Background()
	set, err := s.PutFile(ctx, "corpus", []byte("some replicated words here to scrub over and over"), 16)
	if err != nil {
		t.Fatalf("PutFile: %v", err)
	}
	rep, err := s.Scrub(ctx, ScrubConfig{})
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if rep.Objects != len(set.Objects) {
		t.Fatalf("Objects = %d, want %d", rep.Objects, len(set.Objects))
	}
	if rep.Repairs() != 0 || rep.CorruptReplicas != 0 || len(rep.Errors) != 0 {
		t.Fatalf("clean scrub did work: %+v", rep)
	}
	if rep.FilesScanned == 0 || rep.BytesScanned == 0 {
		t.Fatalf("scrub scanned nothing: %+v", rep)
	}
}

func TestScrubRepairsCorruptReplica(t *testing.T) {
	s, shares := testStore(t, 3, 2)
	ctx := context.Background()
	const name = "doc.00000.frag"
	if err := s.Put(ctx, name, []byte("scrub target payload with enough bytes to damage")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	victim := s.Replicas(name)[1]
	corruptCopy(t, shares[victim], name)

	rep, err := s.Scrub(ctx, ScrubConfig{})
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if rep.CorruptReplicas != 1 || rep.RepairedReplicas != 1 {
		t.Fatalf("first scrub = %+v, want 1 corrupt found and repaired", rep)
	}
	if v := s.Metrics().Counter(metrics.FleetScrubRepairs).Value(); v != 1 {
		t.Fatalf("fleet.scrub.repairs = %d, want 1", v)
	}

	// The fleet is healthy again: a second pass finds nothing.
	rep, err = s.Scrub(ctx, ScrubConfig{})
	if err != nil {
		t.Fatalf("second Scrub: %v", err)
	}
	if rep.Repairs() != 0 || rep.CorruptReplicas != 0 {
		t.Fatalf("second scrub still found damage: %+v", rep)
	}
}

func TestScrubReReplicatesMissingCopy(t *testing.T) {
	s, shares := testStore(t, 3, 2)
	ctx := context.Background()
	const name = "doc.00000.frag"
	if err := s.Put(ctx, name, []byte("under-replicated payload")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	victim := s.Replicas(name)[0]
	if err := shares[victim].Remove(name); err != nil {
		t.Fatalf("remove copy: %v", err)
	}
	rep, err := s.Scrub(ctx, ScrubConfig{})
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if rep.ReReplicated != 1 {
		t.Fatalf("scrub = %+v, want 1 re-replication", rep)
	}
	raw, err := smartfam.ReadFrom(shares[victim], name, 0)
	if err != nil {
		t.Fatalf("copy not restored: %v", err)
	}
	if _, err := smartfam.VerifyBlob(raw); err != nil {
		t.Fatalf("restored copy corrupt: %v", err)
	}
}

func TestScrubCountsCorruptLogRecords(t *testing.T) {
	s, shares := testStore(t, 2, 1)
	ctx := context.Background()
	node := s.Nodes()[0]
	rec := smartfam.Record{Kind: smartfam.KindRequest, ID: "abcd1234", Payload: []byte("{}")}
	line, err := rec.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if err := shares[node].Append("wordcount.log", line); err != nil {
		t.Fatalf("append record: %v", err)
	}
	// A complete line whose checksum cannot match: counted, not repaired.
	if err := shares[node].Append("wordcount.log", []byte("REQ feedbeef - bm90cmVhbA== 00000000\n")); err != nil {
		t.Fatalf("append garbage: %v", err)
	}
	rep, err := s.Scrub(ctx, ScrubConfig{})
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if rep.CorruptLogRecords != 1 {
		t.Fatalf("CorruptLogRecords = %d, want 1", rep.CorruptLogRecords)
	}
	if v := s.Metrics().Counter(metrics.FleetScrubCorruptRecord).Value(); v != 1 {
		t.Fatalf("fleet.scrub.corrupt_records = %d, want 1", v)
	}
}

// summingFS wraps an FS with a local ChunkSum so the test can prove the
// scrubber prefers server-side checksums over full reads.
type summingFS struct {
	smartfam.FS
	sums atomic.Int64
}

func (s *summingFS) ChunkSum(name string, off int64, n int) (uint32, int, error) {
	s.sums.Add(1)
	buf := make([]byte, n)
	read, err := s.FS.ReadAt(name, buf, off)
	if err != nil && err != io.EOF {
		return 0, 0, err
	}
	return crc32.ChecksumIEEE(buf[:read]), read, nil
}

func TestScrubUsesChunkSumFastPath(t *testing.T) {
	shares := map[string]smartfam.FS{
		"a-sd": &summingFS{FS: smartfam.DirFS(t.TempDir())},
		"b-sd": &summingFS{FS: smartfam.DirFS(t.TempDir())},
	}
	s := NewStore(shares, 2, metrics.NewRegistry())
	ctx := context.Background()
	if err := s.Put(ctx, "doc.00000.frag", []byte("checksummed remotely")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	rep, err := s.Scrub(ctx, ScrubConfig{})
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if rep.Repairs() != 0 || rep.CorruptReplicas != 0 {
		t.Fatalf("clean scrub did work: %+v", rep)
	}
	total := shares["a-sd"].(*summingFS).sums.Load() + shares["b-sd"].(*summingFS).sums.Load()
	if total == 0 {
		t.Fatalf("scrub never used the ChunkSum fast path")
	}

	// And the fast path still catches a flipped bit.
	corruptCopy(t, shares["b-sd"].(*summingFS).FS, "doc.00000.frag")
	victimRank := -1
	for i, n := range s.Replicas("doc.00000.frag") {
		if n == "b-sd" {
			victimRank = i
		}
	}
	rep, err = s.Scrub(ctx, ScrubConfig{})
	if err != nil {
		t.Fatalf("Scrub after corruption: %v", err)
	}
	if rep.CorruptReplicas != 1 || rep.RepairedReplicas != 1 {
		t.Fatalf("scrub after corruption (victim rank %d) = %+v, want 1 repaired", victimRank, rep)
	}
}

func TestScrubHonorsCancellation(t *testing.T) {
	s, _ := testStore(t, 3, 2)
	if _, err := s.PutFile(context.Background(), "corpus", []byte("cancel me mid pass please thanks"), 8); err != nil {
		t.Fatalf("PutFile: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Scrub(ctx, ScrubConfig{RateBytesPerSec: 1}); err == nil {
		t.Fatalf("Scrub with cancelled ctx succeeded")
	}
}
