package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"mcsd/internal/core"
	"mcsd/internal/mapreduce"
	"mcsd/internal/metrics"
	"mcsd/internal/partition"
	"mcsd/internal/workloads"
)

// WordCountJob describes a cluster-wide word count over one shared file.
type WordCountJob struct {
	// DataFile is the input path on every node's data store (the fleet
	// model: the file is reachable from each SD node, each node reads only
	// its assigned byte ranges).
	DataFile string
	// TotalBytes is the file size; the coordinator plans ranges from it
	// without touching file content.
	TotalBytes int64
	// FragmentBytes is the scatter granularity (draft range size; the
	// word alignment happens node-side). Zero or >= TotalBytes means one
	// fragment.
	FragmentBytes int64
	// PartitionBytes is the node-side partition size within a range
	// (core.WordCountParams semantics: 0 native, core.AutoPartition to let
	// the node pick).
	PartitionBytes int64
	// Workers overrides each node's worker count (0 = node default).
	Workers int
	// TopN bounds the merged frequency table (0 = 100, matching the
	// single-node module default — required for byte-identical output).
	TopN int
}

// WordCountResult is the gathered, merged outcome of a fleet word count.
type WordCountResult struct {
	// Output carries the merged result with exactly the semantics of a
	// single-node EmitPairs run: identical TotalWords, UniqueWords, Pairs
	// and Top for identical input, regardless of node count, placement,
	// straggler re-execution or failover.
	Output core.WordCountOutput
	// Fragments are the per-fragment wins, in index order.
	Fragments []FragmentResult
	// Stats is the coordinator's dispatch accounting.
	Stats Stats
}

// WordCount scatters the file's ranges across the fleet, gathers each
// node's sorted (word, count) run, and merges the runs through the
// loser-tree into one globally sorted result. Addition is commutative and
// associative and the merge is key-deterministic, so the output is
// byte-identical to a single-node execution of the same file.
func (c *Coordinator) WordCount(ctx context.Context, job WordCountJob) (*WordCountResult, error) {
	if job.DataFile == "" {
		return nil, fmt.Errorf("fleet: wordcount requires a data file")
	}
	if job.TotalBytes <= 0 {
		return nil, fmt.Errorf("fleet: wordcount requires the file size, got %d", job.TotalBytes)
	}
	ranges := partition.AlignedRanges(job.TotalBytes, job.FragmentBytes)
	frags := make([]Fragment, len(ranges))
	for i, rg := range ranges {
		params, err := json.Marshal(core.WordCountParams{
			DataFile:       job.DataFile,
			PartitionBytes: job.PartitionBytes,
			Workers:        job.Workers,
			RangeOffset:    rg[0],
			RangeBytes:     rg[1] - rg[0],
			EmitPairs:      true,
			TopN:           1, // per-range tops are discarded; keep them tiny
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: encoding fragment %d: %w", i, err)
		}
		frags[i] = Fragment{Index: i, Key: fmt.Sprintf("%s#%d", job.DataFile, i), Params: params}
	}

	results, stats, err := c.Execute(ctx, core.ModuleWordCount, frags)
	if err != nil {
		return nil, err
	}
	out, err := c.mergeWordCount(results, job.TopN)
	if err != nil {
		return nil, err
	}
	return &WordCountResult{Output: out, Fragments: results, Stats: stats}, nil
}

// mergeWordCount folds gathered per-fragment EmitPairs outputs into one
// globally sorted result with single-node semantics.
func (c *Coordinator) mergeWordCount(results []FragmentResult, topN int) (core.WordCountOutput, error) {
	mergeStart := time.Now()
	runs := make([][]mapreduce.Pair[string, int], len(results))
	out := core.WordCountOutput{}
	for i, fr := range results {
		var o core.WordCountOutput
		if err := core.Decode(fr.Payload, &o); err != nil {
			return out, fmt.Errorf("fleet: fragment %d result: %w", fr.Index, err)
		}
		run := make([]mapreduce.Pair[string, int], len(o.Pairs))
		for j, p := range o.Pairs {
			run[j] = mapreduce.Pair[string, int]{Key: p.Word, Value: p.Count}
		}
		runs[i] = run
		out.Fragments += o.Fragments
		out.FragmentKeys += o.UniqueWords
		out.ShuffleMs += o.ShuffleMs
		out.MergeMs += o.MergeMs
	}

	// Loser-tree merge of the per-fragment runs, then collapse adjacent
	// equal keys by summing — integer addition is order-independent, so
	// the collapsed run matches the single-node engine's exactly.
	merged := mapreduce.MergeSorted(runs, func(a, b string) bool { return a < b })
	counts := make(map[string]int, len(merged))
	pairs := make([]core.WordFreq, 0, len(merged))
	for _, p := range merged {
		if n := len(pairs); n > 0 && pairs[n-1].Word == p.Key {
			pairs[n-1].Count += p.Value
		} else {
			pairs = append(pairs, core.WordFreq{Word: p.Key, Count: p.Value})
		}
	}
	for _, p := range pairs {
		out.TotalWords += int64(p.Count)
		counts[p.Word] = p.Count
	}
	out.UniqueWords = len(pairs)
	out.Pairs = pairs
	if topN <= 0 {
		topN = 100
	}
	for _, pr := range workloads.TopWords(counts, topN) {
		out.Top = append(out.Top, core.WordFreq{Word: pr.Key, Count: pr.Value})
	}
	c.cfg.Metrics.Timer(metrics.FleetMerge).Observe(time.Since(mergeStart))
	return out, nil
}

// SealedWordCountJob describes a word count over a replicated FileSet: the
// input lives as sealed fragment objects on the store rather than as one
// shared file, so every dispatch is pinned to the object's replica holders
// and every read is CRC-verified node-side.
type SealedWordCountJob struct {
	// Set is the replicated input (from Store.PutFile).
	Set *FileSet
	// PartitionBytes is the node-side partition size within a fragment
	// (core.WordCountParams semantics).
	PartitionBytes int64
	// Workers overrides each node's worker count (0 = node default).
	Workers int
	// TopN bounds the merged frequency table (0 = 100).
	TopN int
}

// WordCountSealed scatters a replicated file's fragments across their
// holder nodes and merges the gathered runs exactly like WordCount. A
// holder serving a bit-flipped copy fails CRC verification node-side; the
// coordinator falls back to the next replica and repairs the bad copy after
// the gather, so the output stays byte-identical to a single-node run even
// through simultaneous node death and replica corruption. Requires
// Config.Store.
func (c *Coordinator) WordCountSealed(ctx context.Context, job SealedWordCountJob) (*WordCountResult, error) {
	if c.cfg.Store == nil {
		return nil, fmt.Errorf("fleet: sealed wordcount requires Config.Store")
	}
	if job.Set == nil || len(job.Set.Objects) == 0 {
		return nil, fmt.Errorf("fleet: sealed wordcount requires a non-empty file set")
	}
	frags := make([]Fragment, len(job.Set.Objects))
	for i, obj := range job.Set.Objects {
		params, err := json.Marshal(core.WordCountParams{
			DataFile:       obj,
			Sealed:         true,
			PartitionBytes: job.PartitionBytes,
			Workers:        job.Workers,
			EmitPairs:      true,
			TopN:           1, // per-fragment tops are discarded; keep them tiny
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: encoding fragment %d: %w", i, err)
		}
		frags[i] = Fragment{Index: i, Key: obj, Replicas: c.cfg.Store.Replicas(obj), Params: params}
	}
	results, stats, err := c.Execute(ctx, core.ModuleWordCount, frags)
	if err != nil {
		return nil, err
	}
	out, err := c.mergeWordCount(results, job.TopN)
	if err != nil {
		return nil, err
	}
	return &WordCountResult{Output: out, Fragments: results, Stats: stats}, nil
}

// CanonicalWordCount serializes the order-independent semantic fields of
// a word-count output — the bytes that must match between a single-node
// run and any N-node fleet run over the same input. Timings and
// fragment-accounting fields are excluded: they describe the execution,
// not the answer.
func CanonicalWordCount(out *core.WordCountOutput) []byte {
	b, err := json.Marshal(struct {
		TotalWords  int64           `json:"total_words"`
		UniqueWords int             `json:"unique_words"`
		Top         []core.WordFreq `json:"top"`
		Pairs       []core.WordFreq `json:"pairs"`
	}{out.TotalWords, out.UniqueWords, out.Top, out.Pairs})
	if err != nil {
		// Plain data marshals unconditionally; keep the signature clean.
		panic(fmt.Sprintf("fleet: canonicalizing output: %v", err))
	}
	return b
}
