package fleet

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// settleGoroutines polls until the live goroutine count drops back to
// within slack of base, failing with a stack dump if it never does.
func settleGoroutines(t *testing.T, base, slack int, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("%s leaked goroutines: %d live, baseline %d (slack %d)\n%s",
				what, n, base, slack, buf)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestExecuteGoroutinesSettle pins the coordinator's teardown ordering
// (wg.Wait before cancel is observed by workers, probe loop joined, result
// channel drained): after Execute returns — cleanly, after a node failure
// with probes in flight, or on context cancellation with parked attempts —
// no worker, prober or speculation goroutine may survive.
func TestExecuteGoroutinesSettle(t *testing.T) {
	base := runtime.NumGoroutine()

	// Clean run.
	nodes := []Node{
		{Name: "sd0", Session: &fakeSession{name: "sd0", behave: echoOK}},
		{Name: "sd1", Session: &fakeSession{name: "sd1", behave: echoOK}},
	}
	c := NewCoordinator(nodes, fastConfig())
	if _, _, err := c.Execute(context.Background(), "m", testFragments(16)); err != nil {
		t.Fatal(err)
	}
	settleGoroutines(t, base, 2, "clean Execute")

	// One node dies mid-job: failover re-places its fragments and the
	// probe loop keeps testing the corpse until Execute finishes.
	dead := &fakeSession{name: "sd0", behave: func(ctx context.Context, id string, params []byte) ([]byte, error) {
		return nil, errors.New("node down")
	}}
	nodes = []Node{
		{Name: "sd0", Session: dead},
		{Name: "sd1", Session: &fakeSession{name: "sd1", behave: echoOK}},
	}
	c = NewCoordinator(nodes, fastConfig())
	if _, _, err := c.Execute(context.Background(), "m", testFragments(16)); err != nil {
		t.Fatal(err)
	}
	settleGoroutines(t, base, 2, "Execute with a dead node")

	// Cancellation with every attempt parked: workers are blocked inside
	// InvokeID when the context dies and must all come home.
	parked := func(ctx context.Context, id string, params []byte) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	nodes = []Node{
		{Name: "sd0", Session: &fakeSession{name: "sd0", behave: parked}},
		{Name: "sd1", Session: &fakeSession{name: "sd1", behave: parked}},
	}
	c = NewCoordinator(nodes, fastConfig())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Execute(ctx, "m", testFragments(8))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the workers park in InvokeID
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled Execute returned nil error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Execute did not return after cancellation")
	}
	settleGoroutines(t, base, 2, "cancelled Execute")
}
