// Package fleet turns the single-SD engine into an N-node scatter/gather
// cluster: rendezvous-hash placement of partition fragments across smart
// storage nodes, a host-side coordinator that fans fragment jobs out over
// per-node smartFAM sessions with straggler re-execution, and a cross-node
// merge that streams per-fragment sorted runs through the engine's
// loser-tree so the final result is byte-identical to single-node
// execution (ROADMAP multi-SD scale-out; the paper's §VI "parallelisms
// among multiple McSD smart disks").
package fleet

import (
	"hash/fnv"
	"sort"
	"sync"
)

// Ring assigns fragment keys to SD nodes by rendezvous (highest-random-
// weight) hashing: every (node, key) pair gets a deterministic score and
// the key belongs to the highest-scoring node. HRW gives the two placement
// invariants the fleet needs with no virtual-node bookkeeping:
//
//   - determinism across process restarts — the score is a pure FNV-1a
//     hash of the node name and key, so a rebooted coordinator reproduces
//     the placement exactly;
//   - minimal movement — adding a node moves only the keys whose new top
//     scorer is that node (≈1/N of them); removing a node moves only the
//     keys it owned, each to its next-ranked survivor.
//
// A Ring is safe for concurrent use.
type Ring struct {
	mu    sync.RWMutex
	nodes []string // sorted, unique
}

// NewRing returns a ring over the given node names (duplicates ignored).
func NewRing(nodes ...string) *Ring {
	r := &Ring{}
	for _, n := range nodes {
		r.addLocked(n)
	}
	return r
}

// addLocked inserts name keeping nodes sorted and unique. Callers must
// hold mu (or own the ring exclusively, as NewRing does).
func (r *Ring) addLocked(name string) {
	i := sort.SearchStrings(r.nodes, name)
	if i < len(r.nodes) && r.nodes[i] == name {
		return
	}
	r.nodes = append(r.nodes, "")
	copy(r.nodes[i+1:], r.nodes[i:])
	r.nodes[i] = name
}

// Add joins a node to the ring.
func (r *Ring) Add(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.addLocked(name)
}

// Remove leaves a node from the ring. Unknown names are ignored.
func (r *Ring) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := sort.SearchStrings(r.nodes, name)
	if i < len(r.nodes) && r.nodes[i] == name {
		r.nodes = append(r.nodes[:i], r.nodes[i+1:]...)
	}
}

// Len reports the number of nodes on the ring.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Nodes returns the ring membership in sorted order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// score is the HRW weight of key on node: FNV-1a over the node name, a
// zero separator, and the key, pushed through a splitmix64 finalizer. FNV's
// offset basis and prime are fixed by specification, so scores — and
// therefore placement — are stable across processes, machines and restarts
// (unlike maphash, whose seed is per-process). The finalizer matters: raw
// FNV-1a has weak high-bit avalanche for short inputs that differ only in
// one byte ("sd0" vs "sd1"), which skews the max-score comparison HRW
// performs (measured 2410/1600/990 over 5000 keys on 3 nodes without it).
func score(node, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node)) //nolint:errcheck // fnv never errors
	h.Write([]byte{0})    //nolint:errcheck
	h.Write([]byte(key))  //nolint:errcheck
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer (Steele et al.): a fixed bijection on
// uint64 with strong avalanche, making HRW's argmax comparisons fair.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owner returns the node that owns key: the highest HRW score, ties broken
// by name order. ok is false on an empty ring.
func (r *Ring) Owner(key string) (node string, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.nodes) == 0 {
		return "", false
	}
	best := r.nodes[0]
	bestScore := score(best, key)
	for _, n := range r.nodes[1:] {
		if s := score(n, key); s > bestScore {
			best, bestScore = n, s
		}
	}
	return best, true
}

// Rank returns every node ordered by descending HRW score for key — the
// key's preference list. Rank[0] is the owner; when a node dies its keys
// fail over to the next-ranked survivor, which is exactly the owner the
// ring would pick with the dead node removed (the minimal-movement
// property extended to failover).
func (r *Ring) Rank(key string) []string {
	r.mu.RLock()
	nodes := make([]string, len(r.nodes))
	copy(nodes, r.nodes)
	r.mu.RUnlock()
	sort.SliceStable(nodes, func(i, j int) bool {
		si, sj := score(nodes[i], key), score(nodes[j], key)
		if si != sj {
			return si > sj
		}
		return nodes[i] < nodes[j]
	})
	return nodes
}
