package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"mcsd/internal/metrics"
	"mcsd/internal/smartfam"
)

// Store is the fleet's replicated object tier: each partition fragment is
// written, sealed with a CRC32 trailer, to the top-R nodes of its ring
// preference list. Reads verify the trailer and fall back rank by rank, and
// a bad or missing copy discovered on the way is rewritten from the first
// intact replica (read-repair). The ring's minimal-movement property means
// a node's death promotes exactly its next-ranked survivors — no global
// reshuffle — and a rejoining node finds its old copies still valid.
type Store struct {
	ring   *Ring
	shares map[string]smartfam.FS
	r      int
	reg    *metrics.Registry
}

// ObjectSuffix marks replicated fragment objects on a share.
const ObjectSuffix = ".frag"

// stageSuffix marks an in-flight replica write; readers never see it
// because every Put goes stage-then-rename.
const stageSuffix = ".stage"

// ObjectName returns the share file name of fragment i of base. Names are
// flat (no separators) because smartFAM shares reject path components.
func ObjectName(base string, i int) string {
	return fmt.Sprintf("%s.%05d%s", base, i, ObjectSuffix)
}

// NewStore builds a replicated store over the given node shares with
// replication factor r (clamped to [1, len(shares)]). A nil registry gets a
// private one.
func NewStore(shares map[string]smartfam.FS, r int, reg *metrics.Registry) *Store {
	names := make([]string, 0, len(shares))
	for n := range shares {
		names = append(names, n)
	}
	if r < 1 {
		r = 1
	}
	if r > len(shares) {
		r = len(shares)
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Store{
		ring:   NewRing(names...),
		shares: shares,
		r:      r,
		reg:    reg,
	}
}

// ReplicationFactor reports R.
func (s *Store) ReplicationFactor() int { return s.r }

// Metrics returns the store's registry.
func (s *Store) Metrics() *metrics.Registry { return s.reg }

// Nodes returns the member node names in sorted order.
func (s *Store) Nodes() []string { return s.ring.Nodes() }

// Share returns the FS for a member node.
func (s *Store) Share(node string) (smartfam.FS, bool) {
	fs, ok := s.shares[node]
	return fs, ok
}

// Replicas returns the R nodes holding name, in preference order:
// Replicas(name)[0] is the object's home, the rest are failover ranks.
func (s *Store) Replicas(name string) []string {
	rank := s.ring.Rank(name)
	if len(rank) > s.r {
		rank = rank[:s.r]
	}
	return rank
}

// writeReplica lands a sealed blob on one share atomically: stage file,
// append, rename. A reader that races the rename sees either no object or
// the complete sealed blob, never a prefix.
func (s *Store) writeReplica(fs smartfam.FS, name string, sealed []byte) error {
	stage := name + stageSuffix
	if err := fs.Create(stage); err != nil {
		return err
	}
	if err := fs.Append(stage, sealed); err != nil {
		return err
	}
	return fs.Rename(stage, name)
}

// Put seals payload and writes it to every replica of name. All R writes
// must succeed; a partially placed object is surfaced as an error so the
// caller can retry or scrub.
func (s *Store) Put(ctx context.Context, name string, payload []byte) error {
	if strings.ContainsAny(name, "/\\") {
		return fmt.Errorf("fleet: object name %q must be flat", name)
	}
	sealed := smartfam.SealBlob(payload)
	for _, node := range s.Replicas(name) {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := s.writeReplica(s.shares[node], name, sealed); err != nil {
			return fmt.Errorf("fleet: put %s on %s: %w", name, node, err)
		}
		s.reg.Counter(metrics.FleetReplicaWrites).Inc()
	}
	return nil
}

// Get reads name from its replicas in preference order, verifying the CRC32
// trailer of every copy it touches. The first intact copy wins; any
// worse-ranked copy that was missing or failed verification on the way is
// rewritten from it (read-repair, counted in fleet.read_repairs).
func (s *Store) Get(ctx context.Context, name string) ([]byte, error) {
	replicas := s.Replicas(name)
	if len(replicas) == 0 {
		return nil, fmt.Errorf("fleet: get %s: no nodes", name)
	}
	var bad []string // nodes whose copy needs a rewrite
	var firstErr error
	for _, node := range replicas {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		raw, err := smartfam.ReadFrom(s.shares[node], name, 0)
		if err == nil {
			var payload []byte
			payload, err = smartfam.VerifyBlob(raw)
			if err == nil {
				for _, repair := range bad {
					if werr := s.writeReplica(s.shares[repair], name, raw); werr == nil {
						s.reg.Counter(metrics.FleetReadRepairs).Inc()
					}
				}
				return payload, nil
			}
			s.reg.Counter(metrics.FleetCorruptReplicas).Inc()
		}
		bad = append(bad, node)
		if firstErr == nil {
			firstErr = fmt.Errorf("fleet: get %s: no intact replica (first failure on %s): %w", name, node, err)
		}
	}
	return nil, firstErr
}

// RepairResult describes what one Repair pass did to an object.
type RepairResult struct {
	// RepairedCorrupt counts copies that existed but failed CRC
	// verification and were rewritten.
	RepairedCorrupt int
	// ReReplicated counts copies that were missing and were recreated.
	ReReplicated int
	// Unreachable lists holder nodes that could not be checked (transport
	// failure); their copies are left alone.
	Unreachable []string
}

// Repair brings name back to full replication: it classifies every replica
// as intact, corrupt, missing, or unreachable, then rewrites the corrupt
// and missing copies from the first intact one. It fails if no intact
// replica survives.
func (s *Store) Repair(ctx context.Context, name string) (RepairResult, error) {
	var res RepairResult
	var good []byte // first intact sealed blob
	type fix struct {
		node    string
		corrupt bool
	}
	var fixes []fix
	sawCopy := false
	for _, node := range s.Replicas(name) {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		raw, err := smartfam.ReadFrom(s.shares[node], name, 0)
		switch {
		case err == nil:
			sawCopy = true
			if _, verr := smartfam.VerifyBlob(raw); verr == nil {
				if good == nil {
					good = raw
				}
			} else {
				s.reg.Counter(metrics.FleetCorruptReplicas).Inc()
				fixes = append(fixes, fix{node: node, corrupt: true})
			}
		case errors.Is(err, smartfam.ErrNotExist):
			fixes = append(fixes, fix{node: node})
		default:
			res.Unreachable = append(res.Unreachable, node)
		}
	}
	if good == nil {
		if sawCopy {
			return res, fmt.Errorf("fleet: repair %s: every reachable copy is corrupt: %w", name, smartfam.ErrCorruptBlob)
		}
		return res, fmt.Errorf("fleet: repair %s: %w", name, smartfam.ErrNotExist)
	}
	for _, f := range fixes {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if err := s.writeReplica(s.shares[f.node], name, good); err != nil {
			res.Unreachable = append(res.Unreachable, f.node)
			continue
		}
		if f.corrupt {
			res.RepairedCorrupt++
		} else {
			res.ReReplicated++
		}
		s.reg.Counter(metrics.FleetReReplications).Inc()
	}
	sort.Strings(res.Unreachable)
	return res, nil
}

// FileSet is the replicated form of one input file: an ordered list of
// sealed fragment objects whose payloads concatenate to the original bytes.
type FileSet struct {
	Base       string
	Objects    []string
	TotalBytes int64
}

func isWordBreak(b byte) bool {
	return b == ' ' || b == '\n' || b == '\t' || b == '\r'
}

// PutFile splits data into fragments of roughly fragBytes and replicates
// each one. Cuts land immediately after a whitespace byte (extending the
// fragment forward to the next break if the window ends mid-word), so no
// word straddles a fragment boundary and per-fragment word counts merge
// exactly.
func (s *Store) PutFile(ctx context.Context, base string, data []byte, fragBytes int) (*FileSet, error) {
	if base == "" || strings.ContainsAny(base, "/\\.") {
		return nil, fmt.Errorf("fleet: file base %q must be flat and dot-free", base)
	}
	if fragBytes <= 0 {
		fragBytes = 1 << 20
	}
	set := &FileSet{Base: base, TotalBytes: int64(len(data))}
	for off, i := 0, 0; off < len(data); i++ {
		end := off + fragBytes
		if end >= len(data) {
			end = len(data)
		} else {
			for end < len(data) && !isWordBreak(data[end]) {
				end++
			}
			if end < len(data) {
				end++ // include the break byte in this fragment
			}
		}
		name := ObjectName(base, i)
		if err := s.Put(ctx, name, data[off:end]); err != nil {
			return nil, err
		}
		set.Objects = append(set.Objects, name)
		off = end
	}
	if len(set.Objects) == 0 { // empty input still gets one (empty) fragment
		name := ObjectName(base, 0)
		if err := s.Put(ctx, name, nil); err != nil {
			return nil, err
		}
		set.Objects = append(set.Objects, name)
	}
	return set, nil
}
