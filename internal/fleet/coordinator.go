package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"mcsd/internal/metrics"
	"mcsd/internal/sched"
	"mcsd/internal/smartfam"
)

// Session is the invocation surface the coordinator needs from one SD
// node: idempotent module invocation under a caller-chosen correlation ID.
// *smartfam.Client satisfies it; tests substitute fakes.
type Session interface {
	InvokeID(ctx context.Context, module, id string, params []byte) ([]byte, error)
}

// Prober is the optional liveness surface of a Session. A marked-down node
// whose session implements Prober is re-probed on a jittered backoff and
// marked healthy again after a probation window — without it a down mark is
// permanent for the rest of the Execute call (*smartfam.Client implements
// Prober via the daemon heartbeat).
type Prober interface {
	Probe(ctx context.Context) error
}

// Node is one dispatchable SD node.
type Node struct {
	// Name is the node's placement identity — it must be stable across
	// coordinator restarts, because HRW placement hashes it.
	Name string
	// Session carries invocations to the node (a smartFAM client over the
	// node's share).
	Session Session
}

// Config tunes a Coordinator.
type Config struct {
	// Window is the per-node in-flight bound (default 2): enough to keep a
	// node's cores busy through the pipelined share without letting one
	// node absorb the whole job.
	Window int
	// AttemptTimeout bounds one fragment attempt on one node; expiry marks
	// the node down and re-places its fragments. Zero disables timeouts
	// (an unresponsive node then hangs the job).
	AttemptTimeout time.Duration
	// StragglerFactor speculates an attempt older than factor x the median
	// completed-attempt time (default 3).
	StragglerFactor float64
	// MinStragglerAge floors the speculation threshold so short jobs are
	// not speculated on noise (default 500ms).
	MinStragglerAge time.Duration
	// MaxAttempts bounds concurrent attempts per fragment, the original
	// included (default 2).
	MaxAttempts int
	// ScanInterval is the straggler scan period (default 100ms).
	ScanInterval time.Duration
	// ProbeInterval is the initial delay before re-probing a marked-down
	// node whose session implements Prober, and the per-probe timeout
	// (default 250ms). Failures back the delay off exponentially.
	ProbeInterval time.Duration
	// ProbeBackoffMax caps the re-probe backoff (default 5s).
	ProbeBackoffMax time.Duration
	// ProbationWindow is how long after a first successful probe the node
	// must still answer a second one before it is marked healthy again —
	// a flapping node does not get its fragments back on one lucky probe
	// (default: ProbeInterval).
	ProbationWindow time.Duration
	// Store optionally connects the coordinator to the replicated object
	// tier: replicated fragments that hit a corrupt or lost copy during the
	// job are re-repaired through it after the gather completes
	// (heal-on-read).
	Store *Store
	// Metrics optionally records fleet.* counters and timers.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 2
	}
	if c.StragglerFactor <= 0 {
		c.StragglerFactor = 3
	}
	if c.MinStragglerAge <= 0 {
		c.MinStragglerAge = 500 * time.Millisecond
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 2
	}
	if c.ScanInterval <= 0 {
		c.ScanInterval = 100 * time.Millisecond
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeBackoffMax <= 0 {
		c.ProbeBackoffMax = 5 * time.Second
	}
	if c.ProbationWindow <= 0 {
		c.ProbationWindow = c.ProbeInterval
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	return c
}

// queueFullRequeueCap bounds how many times one fragment is requeued to
// the same node after its scheduler shed it, before the coordinator gives
// up on that node and re-places the fragment on the next-ranked one.
const queueFullRequeueCap = 64

// ErrNoNodes reports that every node is down with work still outstanding.
var ErrNoNodes = errors.New("fleet: no healthy nodes remain")

// Coordinator fans fragment jobs out across a fleet of SD nodes:
// HRW placement decides each fragment's home node, per-node windows bound
// in-flight work, idle nodes steal queued fragments from busy ones,
// stragglers are speculatively re-executed on an idle node, and every
// attempt of a fragment shares one smartFAM correlation ID so duplicate
// executions collapse into one result (first wins; the daemon's journal
// dedups re-deliveries on its side too).
type Coordinator struct {
	cfg   Config
	ring  *Ring
	nodes []Node // sorted by name
}

// NewCoordinator returns a coordinator over the given nodes.
func NewCoordinator(nodes []Node, cfg Config) *Coordinator {
	ns := make([]Node, len(nodes))
	copy(ns, nodes)
	sort.Slice(ns, func(i, j int) bool { return ns[i].Name < ns[j].Name })
	names := make([]string, len(ns))
	for i, n := range ns {
		names[i] = n.Name
	}
	return &Coordinator{cfg: cfg.withDefaults(), ring: NewRing(names...), nodes: ns}
}

// Ring exposes the placement ring (read-only use: Owner/Rank).
func (c *Coordinator) Ring() *Ring { return c.ring }

// Fragment is one scatter unit.
type Fragment struct {
	// Index identifies the fragment within the job; results return in
	// index order.
	Index int
	// Key is the placement key (conventionally "<file>#<index>"; for
	// replicated fragments, the object name on the store — heal-on-read
	// passes it straight to Store.Repair).
	Key string
	// Replicas optionally pins the fragment to the nodes holding its data
	// (preference order, Replicas[0] the home). An empty list keeps the
	// classic shared-file model where any node can run the fragment; a
	// non-empty list restricts dispatch, stealing and speculation to the
	// holders, and a holder that serves corrupt data is excluded per
	// fragment instead of marked down.
	Replicas []string
	// Params is the encoded module parameter payload.
	Params []byte
}

// FragmentResult is one completed fragment.
type FragmentResult struct {
	Index    int
	Node     string // node whose attempt won
	Payload  []byte
	Attempts int // attempts launched for this fragment in total
	// Speculated reports the winning attempt was a straggler re-execution
	// rather than the first dispatch.
	Speculated bool
	Elapsed    time.Duration // winning attempt's invoke time
}

// Stats aggregates one Execute call's dispatch behaviour.
type Stats struct {
	Dispatches        int // attempts handed to node sessions
	Speculations      int // straggler re-executions launched
	DupResults        int // late duplicates dropped by first-wins dedup
	QueueSteals       int // fragments idle nodes stole from busy queues
	QueueFullRequeues int // attempts shed by node schedulers and requeued
	NodeFailures      int // nodes marked down
	MovedFragments    int // fragments re-placed off a down node
	Probes            int // liveness probes launched at marked-down nodes
	NodeRecoveries    int // down nodes probed back to healthy
	CorruptReplicas   int // replica reads that failed CRC verification
	ReplicaFallbacks  int // fragments re-placed onto a surviving replica
	ReadRepairs       int // corrupt copies rewritten by post-job healing
	ReReplicated      int // missing copies recreated by post-job healing
	HealErrors        int // objects post-job healing could not restore
	// PerNode counts completed fragments by winning node.
	PerNode map[string]int
}

// attemptJob is one dispatch to one node's workers.
type attemptJob struct {
	frag   int
	module string
	reqID  string
	params []byte
	spec   bool
}

// attemptResult is what a worker reports back.
type attemptResult struct {
	frag    int
	node    string
	payload []byte
	err     error
	elapsed time.Duration
	spec    bool
}

// probeState tracks one marked-down node's path back to health.
type probeState struct {
	prober    Prober
	nextProbe time.Time
	backoff   time.Duration
	inFlight  bool
	firstOK   time.Time // first successful probe; zero until one lands
}

// probeOutcome is one probe goroutine's report.
type probeOutcome struct {
	node string
	err  error
}

// jitter spreads d over [d/2, d) so a fleet of probes does not thunder in
// lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)))
}

// nodeRun is the per-node dispatch state of one Execute call.
type nodeRun struct {
	node     Node
	work     chan attemptJob
	queue    []int // fragment indices awaiting dispatch here
	inflight int
	healthy  bool
}

// attemptKey identifies one in-flight attempt. A fragment runs at most
// once per node at a time (speculation always picks a node not already
// running it), so the pair is unique.
type attemptKey struct {
	frag int
	node string
}

// Execute scatters the fragments across the fleet and gathers every
// result, in fragment-index order. It returns early on an application
// (module) error — those are deterministic and re-execution cannot fix
// them — and keeps going through node failures as long as one node
// remains.
func (c *Coordinator) Execute(ctx context.Context, module string, frags []Fragment) ([]FragmentResult, Stats, error) {
	stats := Stats{PerNode: make(map[string]int)}
	if len(frags) == 0 {
		return nil, stats, nil
	}
	execStart := time.Now()
	defer func() {
		c.cfg.Metrics.Timer(metrics.FleetExecute).Observe(time.Since(execStart))
	}()

	// Workers get a cancellable child context so Execute's return tears
	// the whole dispatch down.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	nodes := make(map[string]*nodeRun, len(c.nodes))
	order := make([]string, 0, len(c.nodes)) // deterministic iteration
	var wg sync.WaitGroup
	// Buffered so a worker finishing during teardown never blocks.
	results := make(chan attemptResult, len(c.nodes)*c.cfg.Window+len(frags))
	for _, n := range c.nodes {
		nr := &nodeRun{node: n, work: make(chan attemptJob), healthy: true}
		nodes[n.Name] = nr
		order = append(order, n.Name)
		for w := 0; w < c.cfg.Window; w++ {
			wg.Add(1)
			go func(nr *nodeRun) {
				defer wg.Done()
				c.worker(ctx, module, nr, results)
			}(nr)
		}
	}
	defer wg.Wait()
	defer cancel() // runs before wg.Wait: release workers first

	// Plan: every fragment gets a home node from the ring and one
	// correlation ID reused by all of its attempts — smartFAM's
	// idempotency key, so a node that already ran the fragment replays
	// its journaled response instead of recomputing.
	reqIDs := make([]string, len(frags))
	fragByIndex := make(map[int]*Fragment, len(frags))
	for i := range frags {
		f := &frags[i]
		if _, dup := fragByIndex[f.Index]; dup {
			return nil, stats, fmt.Errorf("fleet: duplicate fragment index %d", f.Index)
		}
		fragByIndex[f.Index] = f
		reqIDs[i] = smartfam.NewID()
		if len(f.Replicas) > 0 {
			for _, rn := range f.Replicas {
				if _, known := nodes[rn]; !known {
					return nil, stats, fmt.Errorf("fleet: fragment %d: unknown replica node %q", f.Index, rn)
				}
			}
			nodes[f.Replicas[0]].queue = append(nodes[f.Replicas[0]].queue, i)
			continue
		}
		owner, ok := c.ring.Owner(f.Key)
		if !ok {
			return nil, stats, fmt.Errorf("fleet: %w", ErrNoNodes)
		}
		nodes[owner].queue = append(nodes[owner].queue, i)
	}

	var (
		done       = make(map[int]bool, len(frags)) // by slice position
		out        = make([]FragmentResult, 0, len(frags))
		inFlight   = make(map[attemptKey]time.Time)
		fragLive   = make([]int, len(frags)) // in-flight attempts per fragment
		fragTried  = make([]int, len(frags)) // attempts launched per fragment
		fragShed   = make([]int, len(frags)) // queue-full requeues per fragment
		durations  []time.Duration           // completed-attempt times, for the straggler median
		speculated = make([]bool, len(frags))
		badReplica = make(map[attemptKey]bool) // replica copies that served corrupt data
		parked     = make(map[int]bool)        // fragments waiting for a holder to recover
		healSet    = make(map[string]bool)     // object keys to repair after the gather
		downNodes  = make(map[string]*probeState)
	)
	probeResults := make(chan probeOutcome, len(c.nodes))

	queuedSomewhere := func(fi int) bool {
		for _, nr := range nodes {
			for _, q := range nr.queue {
				if q == fi {
					return true
				}
			}
		}
		return false
	}

	// canRun reports whether node may execute fragment fi: any node for a
	// classic fragment, only a replica holder whose copy has not proven
	// corrupt for a replicated one.
	canRun := func(fi int, node string) bool {
		f := &frags[fi]
		if len(f.Replicas) == 0 {
			return true
		}
		if badReplica[attemptKey{fi, node}] {
			return false
		}
		for _, rn := range f.Replicas {
			if rn == node {
				return true
			}
		}
		return false
	}

	// rePlace moves fragment fi to the best eligible node other than
	// exclude. A replicated fragment walks its own holder list; when every
	// holder is either corrupt or down — but at least one is merely down —
	// the fragment parks until a probe brings a holder back instead of
	// failing the job.
	rePlace := func(fi int, exclude string) error {
		f := &frags[fi]
		if len(f.Replicas) > 0 {
			downHolder := false
			for _, name := range f.Replicas {
				if badReplica[attemptKey{fi, name}] {
					continue
				}
				nr := nodes[name]
				if !nr.healthy {
					downHolder = true
					continue
				}
				if name == exclude {
					continue
				}
				nr.queue = append(nr.queue, fi)
				stats.MovedFragments++
				c.cfg.Metrics.Counter(metrics.FleetMoves).Inc()
				return nil
			}
			if downHolder {
				parked[fi] = true
				return nil
			}
			return fmt.Errorf("fleet: fragment %d: every replica is corrupt or lost: %w", f.Index, ErrNoNodes)
		}
		for _, name := range c.ring.Rank(f.Key) {
			nr := nodes[name]
			if name == exclude || !nr.healthy {
				continue
			}
			nr.queue = append(nr.queue, fi)
			stats.MovedFragments++
			c.cfg.Metrics.Counter(metrics.FleetMoves).Inc()
			return nil
		}
		return fmt.Errorf("fleet: fragment %d: %w", f.Index, ErrNoNodes)
	}

	// markDown fails a node and re-places its queued work. Its in-flight
	// attempts re-place individually as their errors arrive. A node whose
	// session can be probed gets a recovery schedule instead of a permanent
	// mark.
	markDown := func(nr *nodeRun) error {
		if !nr.healthy {
			return nil
		}
		nr.healthy = false
		stats.NodeFailures++
		c.cfg.Metrics.Counter(metrics.FleetNodeFailures).Inc()
		if p, ok := nr.node.Session.(Prober); ok {
			downNodes[nr.node.Name] = &probeState{
				prober:    p,
				nextProbe: time.Now().Add(jitter(c.cfg.ProbeInterval)),
				backoff:   c.cfg.ProbeInterval,
			}
		}
		queue := nr.queue
		nr.queue = nil
		for _, fi := range queue {
			// A fragment with a live attempt elsewhere (speculation) or a
			// seat in another queue re-places itself if that path fails.
			if done[fi] || fragLive[fi] > 0 || queuedSomewhere(fi) {
				continue
			}
			if len(frags[fi].Replicas) > 0 {
				healSet[frags[fi].Key] = true
			}
			if err := rePlace(fi, nr.node.Name); err != nil {
				return err
			}
		}
		return nil
	}

	// probeScan launches due liveness probes at marked-down nodes.
	probeScan := func() {
		now := time.Now()
		for name, ps := range downNodes {
			if ps.inFlight || now.Before(ps.nextProbe) {
				continue
			}
			ps.inFlight = true
			stats.Probes++
			c.cfg.Metrics.Counter(metrics.FleetProbes).Inc()
			wg.Add(1)
			go func(name string, p Prober) {
				defer wg.Done()
				pctx, pcancel := context.WithTimeout(ctx, c.cfg.ProbeInterval)
				err := p.Probe(pctx)
				pcancel()
				select {
				case probeResults <- probeOutcome{node: name, err: err}:
				case <-ctx.Done():
				}
			}(name, ps.prober)
		}
	}

	// handleProbe applies one probe outcome: failures back off, a first
	// success starts probation, and a success that confirms the probation
	// window marks the node healthy and unparks waiting fragments.
	handleProbe := func(po probeOutcome) error {
		ps := downNodes[po.node]
		if ps == nil {
			return nil
		}
		ps.inFlight = false
		now := time.Now()
		if po.err != nil {
			ps.firstOK = time.Time{} // a flap resets probation
			ps.backoff = min(ps.backoff*2, c.cfg.ProbeBackoffMax)
			ps.nextProbe = now.Add(jitter(ps.backoff))
			return nil
		}
		if ps.firstOK.IsZero() {
			ps.firstOK = now
			ps.nextProbe = now.Add(c.cfg.ProbationWindow)
			return nil
		}
		delete(downNodes, po.node)
		nodes[po.node].healthy = true
		stats.NodeRecoveries++
		c.cfg.Metrics.Counter(metrics.FleetNodeRecoveries).Inc()
		waiting := make([]int, 0, len(parked))
		for fi := range parked {
			waiting = append(waiting, fi)
		}
		sort.Ints(waiting)
		for _, fi := range waiting {
			delete(parked, fi)
			if done[fi] || fragLive[fi] > 0 || queuedSomewhere(fi) {
				continue
			}
			if err := rePlace(fi, ""); err != nil {
				return err
			}
		}
		return nil
	}

	launch := func(nr *nodeRun, fi int, spec bool) bool {
		job := attemptJob{frag: fi, module: module, reqID: reqIDs[fi], params: frags[fi].Params, spec: spec}
		select {
		case nr.work <- job:
		default:
			return false // all workers momentarily busy; retry next round
		}
		nr.inflight++
		fragLive[fi]++
		fragTried[fi]++
		inFlight[attemptKey{fi, nr.node.Name}] = time.Now()
		stats.Dispatches++
		c.cfg.Metrics.Counter(metrics.FleetDispatches).Inc()
		return true
	}

	// dispatch fills every healthy node's window from its queue, then lets
	// nodes with spare capacity and empty queues steal from the tail of
	// the longest queue — dynamic balance on top of static placement.
	dispatch := func() {
		for _, name := range order {
			nr := nodes[name]
			for nr.healthy && nr.inflight < c.cfg.Window && len(nr.queue) > 0 {
				fi := nr.queue[0]
				nr.queue = nr.queue[1:]
				if done[fi] {
					continue
				}
				if !launch(nr, fi, false) {
					nr.queue = append([]int{fi}, nr.queue...)
					break
				}
			}
		}
		for _, name := range order {
			nr := nodes[name]
			for nr.healthy && nr.inflight < c.cfg.Window && len(nr.queue) == 0 {
				// Steal from the longest queue holding a fragment this node
				// may run (replicated fragments only move between holders).
				var busiest *nodeRun
				bi := -1
				for _, on := range order {
					o := nodes[on]
					if o == nr || len(o.queue) == 0 || (busiest != nil && len(o.queue) <= len(busiest.queue)) {
						continue
					}
					for k := len(o.queue) - 1; k >= 0; k-- {
						if fi := o.queue[k]; done[fi] || canRun(fi, nr.node.Name) {
							busiest, bi = o, k
							break
						}
					}
				}
				if busiest == nil {
					break
				}
				fi := busiest.queue[bi]
				busiest.queue = append(busiest.queue[:bi], busiest.queue[bi+1:]...)
				if done[fi] {
					continue
				}
				if !launch(nr, fi, false) {
					busiest.queue = append(busiest.queue, fi)
					break
				}
				stats.QueueSteals++
				c.cfg.Metrics.Counter(metrics.FleetQueueSteals).Inc()
			}
		}
	}

	// speculate re-executes attempts that have run well past the median.
	speculate := func() {
		if len(inFlight) == 0 {
			return
		}
		threshold := c.cfg.MinStragglerAge
		if len(durations) > 0 {
			ds := make([]time.Duration, len(durations))
			copy(ds, durations)
			sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
			if t := time.Duration(float64(ds[len(ds)/2]) * c.cfg.StragglerFactor); t > threshold {
				threshold = t
			}
		}
		for key, started := range inFlight {
			fi := key.frag
			if done[fi] || fragLive[fi] >= c.cfg.MaxAttempts || time.Since(started) < threshold {
				continue
			}
			// Fastest idle node: healthy, spare window, not already
			// running this fragment, least loaded.
			var idle *nodeRun
			for _, name := range order {
				nr := nodes[name]
				if !nr.healthy || nr.inflight >= c.cfg.Window || !canRun(fi, name) {
					continue
				}
				if _, running := inFlight[attemptKey{fi, name}]; running {
					continue
				}
				if idle == nil || nr.inflight < idle.inflight {
					idle = nr
				}
			}
			if idle == nil {
				// No eligible capacity for this fragment; others may still
				// have an idle holder.
				continue
			}
			if launch(idle, fi, true) {
				stats.Speculations++
				c.cfg.Metrics.Counter(metrics.FleetSpeculations).Inc()
			}
		}
	}

	handle := func(r attemptResult) error {
		nr := nodes[r.node]
		nr.inflight--
		delete(inFlight, attemptKey{r.frag, r.node})
		fragLive[r.frag]--
		if r.err == nil {
			durations = append(durations, r.elapsed)
			if done[r.frag] {
				stats.DupResults++
				c.cfg.Metrics.Counter(metrics.FleetDupResults).Inc()
				return nil
			}
			done[r.frag] = true
			if r.spec {
				speculated[r.frag] = true
			}
			stats.PerNode[r.node]++
			out = append(out, FragmentResult{
				Index:      frags[r.frag].Index,
				Node:       r.node,
				Payload:    r.payload,
				Attempts:   fragTried[r.frag],
				Speculated: r.spec,
				Elapsed:    r.elapsed,
			})
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if len(frags[r.frag].Replicas) > 0 && smartfam.IsCorruptBlobMessage(r.err.Error()) {
			// The node is fine; its copy of this object is not. Poison the
			// (fragment, node) pair, remember the object for the post-job
			// heal, and fall back to the next-ranked replica. Matched on the
			// message so the sentinel survives the wire (ModuleError) and
			// in-process module errors alike.
			stats.CorruptReplicas++
			c.cfg.Metrics.Counter(metrics.FleetCorruptReplicas).Inc()
			badReplica[attemptKey{r.frag, r.node}] = true
			healSet[frags[r.frag].Key] = true
			if done[r.frag] || fragLive[r.frag] > 0 || queuedSomewhere(r.frag) {
				return nil
			}
			stats.ReplicaFallbacks++
			c.cfg.Metrics.Counter(metrics.FleetReplicaFallbacks).Inc()
			return rePlace(r.frag, r.node)
		}
		var merr *smartfam.ModuleError
		if errors.As(r.err, &merr) {
			if sched.IsQueueFullMessage(merr.Msg) {
				// The node's scheduler shed the attempt — backpressure, not
				// failure. Requeue on the same node up to a cap, then push
				// the fragment to its next-ranked node.
				stats.QueueFullRequeues++
				c.cfg.Metrics.Counter(metrics.FleetQueueFullRequeues).Inc()
				fragShed[r.frag]++
				if done[r.frag] || fragLive[r.frag] > 0 || queuedSomewhere(r.frag) {
					return nil
				}
				if fragShed[r.frag] > queueFullRequeueCap*len(c.nodes) {
					return fmt.Errorf("fleet: fragment %d: %w", frags[r.frag].Index, sched.ErrQueueFull)
				}
				if fragShed[r.frag]%queueFullRequeueCap == 0 {
					return rePlace(r.frag, r.node)
				}
				nr.queue = append(nr.queue, r.frag)
				return nil
			}
			// Application error: deterministic, no amount of re-placement
			// helps. Fail the job.
			return fmt.Errorf("fleet: fragment %d on %s: %w", frags[r.frag].Index, r.node, r.err)
		}
		// Transport error, attempt timeout, or unknown module: the node is
		// unusable. Fail it over and re-place the orphaned fragment.
		if err := markDown(nr); err != nil {
			return err
		}
		if done[r.frag] || fragLive[r.frag] > 0 || queuedSomewhere(r.frag) {
			return nil
		}
		return rePlace(r.frag, r.node)
	}

	ticker := time.NewTicker(c.cfg.ScanInterval)
	defer ticker.Stop()
	for len(out) < len(frags) {
		dispatch()
		// Stalled with nothing in flight and no probe that could still
		// revive a node means the outstanding work is unreachable: every
		// node down, or every holder of a parked fragment gone for good.
		if len(inFlight) == 0 && len(downNodes) == 0 {
			healthy := 0
			for _, nr := range nodes {
				if nr.healthy {
					healthy++
				}
			}
			queued := false
			for _, nr := range nodes {
				if len(nr.queue) > 0 {
					queued = true
					break
				}
			}
			if healthy == 0 || (!queued && len(parked) > 0) {
				return nil, stats, fmt.Errorf("fleet: %d fragments outstanding: %w", len(frags)-len(out), ErrNoNodes)
			}
		}
		select {
		case <-ctx.Done():
			return nil, stats, ctx.Err()
		case r := <-results:
			if err := handle(r); err != nil {
				return nil, stats, err
			}
		case po := <-probeResults:
			if err := handleProbe(po); err != nil {
				return nil, stats, err
			}
		case <-ticker.C:
			speculate()
			probeScan()
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })

	// Heal-on-read: every replicated object that served a corrupt copy or
	// lost a holder during the job goes back to full replication now, while
	// the coordinator still knows exactly which objects suffered.
	if c.cfg.Store != nil && len(healSet) > 0 {
		heal := make([]string, 0, len(healSet))
		for key := range healSet {
			heal = append(heal, key)
		}
		sort.Strings(heal)
		for _, key := range heal {
			res, err := c.cfg.Store.Repair(ctx, key)
			if err != nil {
				stats.HealErrors++
				continue
			}
			stats.ReadRepairs += res.RepairedCorrupt
			stats.ReReplicated += res.ReReplicated
			if res.RepairedCorrupt > 0 {
				c.cfg.Metrics.Counter(metrics.FleetReadRepairs).Add(int64(res.RepairedCorrupt))
			}
		}
	}
	return out, stats, nil
}

// worker serves one slot of a node's window: invoke, report, repeat.
func (c *Coordinator) worker(ctx context.Context, module string, nr *nodeRun, results chan<- attemptResult) {
	for {
		select {
		case <-ctx.Done():
			return
		case job := <-nr.work:
			actx, acancel := ctx, context.CancelFunc(func() {})
			if c.cfg.AttemptTimeout > 0 {
				actx, acancel = context.WithTimeout(ctx, c.cfg.AttemptTimeout)
			}
			start := time.Now()
			payload, err := nr.node.Session.InvokeID(actx, job.module, job.reqID, job.params)
			acancel()
			select {
			case results <- attemptResult{frag: job.frag, node: nr.node.Name, payload: payload, err: err, elapsed: time.Since(start), spec: job.spec}:
			case <-ctx.Done():
				return
			}
		}
	}
}
