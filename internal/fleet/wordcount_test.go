package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"mcsd/internal/core"
	"mcsd/internal/smartfam"
	"mcsd/internal/workloads"
)

// moduleSession runs a module in-process — a node without the wire.
type moduleSession struct {
	mod smartfam.Module
	// wrap optionally intercepts attempts (fault injection).
	wrap func(next func() ([]byte, error)) ([]byte, error)
}

func (s *moduleSession) InvokeID(ctx context.Context, module, id string, params []byte) ([]byte, error) {
	run := func() ([]byte, error) { return s.mod.Run(ctx, params) }
	if s.wrap != nil {
		return s.wrap(run)
	}
	return run()
}

// wcFleet builds an N-node coordinator where every node serves the
// word-count module over the same directory store.
func wcFleet(t *testing.T, dir string, n int, wraps map[int]func(func() ([]byte, error)) ([]byte, error)) *Coordinator {
	t.Helper()
	nodes := make([]Node, n)
	for i := range nodes {
		mod := core.WordCountModule(core.ModuleConfig{Store: core.DirStore(dir), Workers: 1})
		nodes[i] = Node{
			Name:    nodeName(i),
			Session: &moduleSession{mod: mod, wrap: wraps[i]},
		}
	}
	cfg := fastConfig()
	cfg.MinStragglerAge = time.Hour // keep unit runs deterministic
	return NewCoordinator(nodes, cfg)
}

func nodeName(i int) string { return string(rune('a'+i)) + "-sd" }

func singleNodeReference(t *testing.T, dir string, topN int) *core.WordCountOutput {
	t.Helper()
	mod := core.WordCountModule(core.ModuleConfig{Store: core.DirStore(dir), Workers: 1})
	params, err := json.Marshal(core.WordCountParams{
		DataFile: "corpus.txt", PartitionBytes: 16 << 10, EmitPairs: true, TopN: topN,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := mod.Run(context.Background(), params)
	if err != nil {
		t.Fatal(err)
	}
	var out core.WordCountOutput
	if err := core.Decode(raw, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

func TestFleetWordCountMatchesSingleNode(t *testing.T) {
	dir := t.TempDir()
	text := workloads.GenerateTextBytes(200_000, 21)
	if err := os.WriteFile(filepath.Join(dir, "corpus.txt"), text, 0o644); err != nil {
		t.Fatal(err)
	}
	ref := singleNodeReference(t, dir, 0)
	want := CanonicalWordCount(ref)

	for _, n := range []int{1, 2, 3, 4} {
		c := wcFleet(t, dir, n, nil)
		res, err := c.WordCount(context.Background(), WordCountJob{
			DataFile:      "corpus.txt",
			TotalBytes:    int64(len(text)),
			FragmentBytes: 24 << 10,
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got := CanonicalWordCount(&res.Output); !bytes.Equal(got, want) {
			t.Fatalf("n=%d: merged output differs from single-node reference", n)
		}
		if n > 1 && len(res.Stats.PerNode) < 2 {
			t.Fatalf("n=%d: work did not spread: %v", n, res.Stats.PerNode)
		}
		if len(res.Fragments) != len(partitionRangeCount(int64(len(text)), 24<<10)) {
			t.Fatalf("n=%d: %d fragments", n, len(res.Fragments))
		}
	}
}

func partitionRangeCount(total, frag int64) []struct{} {
	n := int((total + frag - 1) / frag)
	return make([]struct{}, n)
}

func TestFleetWordCountSurvivesNodeDeath(t *testing.T) {
	dir := t.TempDir()
	text := workloads.GenerateTextBytes(120_000, 5)
	if err := os.WriteFile(filepath.Join(dir, "corpus.txt"), text, 0o644); err != nil {
		t.Fatal(err)
	}
	ref := singleNodeReference(t, dir, 0)
	want := CanonicalWordCount(ref)

	// Node 0 dies on every attempt after its first success.
	var calls atomic.Int64
	wraps := map[int]func(func() ([]byte, error)) ([]byte, error){
		0: func(next func() ([]byte, error)) ([]byte, error) {
			if calls.Add(1) > 1 {
				return nil, errors.New("smartfam: transport torn down")
			}
			return next()
		},
	}
	c := wcFleet(t, dir, 3, wraps)
	res, err := c.WordCount(context.Background(), WordCountJob{
		DataFile:      "corpus.txt",
		TotalBytes:    int64(len(text)),
		FragmentBytes: 16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := CanonicalWordCount(&res.Output); !bytes.Equal(got, want) {
		t.Fatal("output differs from single-node reference after node death")
	}
	if res.Stats.NodeFailures != 1 {
		t.Fatalf("NodeFailures = %d, want 1", res.Stats.NodeFailures)
	}
}

func TestFleetWordCountValidation(t *testing.T) {
	c := wcFleet(t, t.TempDir(), 1, nil)
	if _, err := c.WordCount(context.Background(), WordCountJob{TotalBytes: 10}); err == nil {
		t.Fatal("missing data file accepted")
	}
	if _, err := c.WordCount(context.Background(), WordCountJob{DataFile: "f"}); err == nil {
		t.Fatal("missing size accepted")
	}
}

// sealedFleet builds an N-node coordinator where each node serves the
// word-count module over its own share, reading sealed replicated objects,
// plus the host-side store over the same shares.
func sealedFleet(t *testing.T, n, r int) (*Coordinator, *Store, map[string]smartfam.FS) {
	t.Helper()
	shares := make(map[string]smartfam.FS, n)
	nodes := make([]Node, n)
	for i := range nodes {
		name := nodeName(i)
		share := smartfam.DirFS(t.TempDir())
		shares[name] = share
		mod := core.WordCountModule(core.ModuleConfig{Store: core.FSStore(share), Workers: 1})
		nodes[i] = Node{Name: name, Session: &moduleSession{mod: mod}}
	}
	store := NewStore(shares, r, nil)
	cfg := fastConfig()
	cfg.MinStragglerAge = time.Hour
	cfg.Store = store
	return NewCoordinator(nodes, cfg), store, shares
}

func TestFleetWordCountSealedMatchesSingleNode(t *testing.T) {
	dir := t.TempDir()
	text := workloads.GenerateTextBytes(150_000, 33)
	if err := os.WriteFile(filepath.Join(dir, "corpus.txt"), text, 0o644); err != nil {
		t.Fatal(err)
	}
	ref := singleNodeReference(t, dir, 0)
	want := CanonicalWordCount(ref)

	for _, n := range []int{2, 3, 4} {
		c, store, _ := sealedFleet(t, n, 2)
		set, err := store.PutFile(context.Background(), "corpus", text, 16<<10)
		if err != nil {
			t.Fatalf("n=%d: PutFile: %v", n, err)
		}
		res, err := c.WordCountSealed(context.Background(), SealedWordCountJob{Set: set})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got := CanonicalWordCount(&res.Output); !bytes.Equal(got, want) {
			t.Fatalf("n=%d: sealed fleet output differs from single-node reference", n)
		}
		if res.Stats.CorruptReplicas != 0 {
			t.Fatalf("n=%d: clean run saw corrupt replicas: %+v", n, res.Stats)
		}
	}
}

func TestFleetWordCountSealedHealsBitFlippedReplica(t *testing.T) {
	dir := t.TempDir()
	text := workloads.GenerateTextBytes(90_000, 7)
	if err := os.WriteFile(filepath.Join(dir, "corpus.txt"), text, 0o644); err != nil {
		t.Fatal(err)
	}
	ref := singleNodeReference(t, dir, 0)
	want := CanonicalWordCount(ref)

	c, store, shares := sealedFleet(t, 3, 2)
	set, err := store.PutFile(context.Background(), "corpus", text, 12<<10)
	if err != nil {
		t.Fatal(err)
	}
	// Bit-flip the home copy of the first object: the job must fall back to
	// the surviving replica and repair the damage after the gather.
	victim := set.Objects[0]
	home := store.Replicas(victim)[0]
	raw, err := smartfam.ReadFrom(shares[home], victim, 0)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := shares[home].Create(victim); err != nil {
		t.Fatal(err)
	}
	if err := shares[home].Append(victim, raw); err != nil {
		t.Fatal(err)
	}

	res, err := c.WordCountSealed(context.Background(), SealedWordCountJob{Set: set})
	if err != nil {
		t.Fatalf("sealed word count with corrupt home replica: %v", err)
	}
	if got := CanonicalWordCount(&res.Output); !bytes.Equal(got, want) {
		t.Fatal("output differs from single-node reference with a corrupt replica in play")
	}
	if res.Stats.CorruptReplicas < 1 || res.Stats.ReplicaFallbacks < 1 {
		t.Fatalf("corruption not detected: %+v", res.Stats)
	}
	if res.Stats.ReadRepairs < 1 {
		t.Fatalf("corrupt copy not healed after the gather: %+v", res.Stats)
	}
	healed, err := smartfam.ReadFrom(shares[home], victim, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := smartfam.VerifyBlob(healed); err != nil {
		t.Fatalf("home copy still corrupt: %v", err)
	}
}
