package fleet

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"mcsd/internal/metrics"
	"mcsd/internal/smartfam"
)

// testStore builds a store over n local directory shares.
func testStore(t *testing.T, n, r int) (*Store, map[string]smartfam.FS) {
	t.Helper()
	shares := make(map[string]smartfam.FS, n)
	for i := 0; i < n; i++ {
		name := string(rune('a'+i)) + "-sd"
		shares[name] = smartfam.DirFS(t.TempDir())
	}
	return NewStore(shares, r, metrics.NewRegistry()), shares
}

// corruptCopy flips one payload bit of node's copy of name in place.
func corruptCopy(t *testing.T, fs smartfam.FS, name string) {
	t.Helper()
	raw, err := smartfam.ReadFrom(fs, name, 0)
	if err != nil {
		t.Fatalf("read copy: %v", err)
	}
	raw[len(raw)/3] ^= 0x01
	if err := fs.Create(name); err != nil {
		t.Fatalf("truncate copy: %v", err)
	}
	if err := fs.Append(name, raw); err != nil {
		t.Fatalf("rewrite copy: %v", err)
	}
}

func TestReplicasAreDistinctRankPrefix(t *testing.T) {
	s, _ := testStore(t, 5, 3)
	for _, key := range []string{"alpha.00000.frag", "beta.00001.frag", "gamma.00002.frag"} {
		reps := s.Replicas(key)
		if len(reps) != 3 {
			t.Fatalf("Replicas(%q) = %v, want 3 nodes", key, reps)
		}
		seen := map[string]bool{}
		for _, n := range reps {
			if seen[n] {
				t.Fatalf("Replicas(%q) = %v has duplicate %q", key, reps, n)
			}
			seen[n] = true
		}
		if rank := s.ring.Rank(key); rank[0] != reps[0] || rank[1] != reps[1] || rank[2] != reps[2] {
			t.Fatalf("Replicas(%q) = %v is not a prefix of Rank %v", key, reps, rank)
		}
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, shares := testStore(t, 3, 2)
	ctx := context.Background()
	payload := []byte("the quick brown fox jumps over the lazy dog")
	const name = "doc.00000.frag"
	if err := s.Put(ctx, name, payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Exactly R copies, each sealed and intact.
	copies := 0
	for node, fs := range shares {
		raw, err := smartfam.ReadFrom(fs, name, 0)
		if errors.Is(err, smartfam.ErrNotExist) {
			continue
		}
		if err != nil {
			t.Fatalf("read copy on %s: %v", node, err)
		}
		got, err := smartfam.VerifyBlob(raw)
		if err != nil {
			t.Fatalf("copy on %s fails verification: %v", node, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("copy on %s = %q, want %q", node, got, payload)
		}
		copies++
	}
	if copies != 2 {
		t.Fatalf("object has %d copies, want 2", copies)
	}
	if got := s.Metrics().Counter(metrics.FleetReplicaWrites).Value(); got != 2 {
		t.Fatalf("fleet.replica_writes = %d, want 2", got)
	}
	got, err := s.Get(ctx, name)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, want %q", got, payload)
	}
}

func TestGetReadRepairsCorruptPrimary(t *testing.T) {
	s, shares := testStore(t, 3, 2)
	ctx := context.Background()
	payload := []byte(strings.Repeat("replicated data ", 64))
	const name = "doc.00000.frag"
	if err := s.Put(ctx, name, payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	primary := s.Replicas(name)[0]
	corruptCopy(t, shares[primary], name)

	got, err := s.Get(ctx, name)
	if err != nil {
		t.Fatalf("Get with corrupt primary: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Get returned damaged payload")
	}
	if v := s.Metrics().Counter(metrics.FleetReadRepairs).Value(); v != 1 {
		t.Fatalf("fleet.read_repairs = %d, want 1", v)
	}
	if v := s.Metrics().Counter(metrics.FleetCorruptReplicas).Value(); v != 1 {
		t.Fatalf("fleet.corrupt_replicas = %d, want 1", v)
	}
	// The primary's copy was rewritten and verifies again.
	raw, err := smartfam.ReadFrom(shares[primary], name, 0)
	if err != nil {
		t.Fatalf("reread primary: %v", err)
	}
	if _, err := smartfam.VerifyBlob(raw); err != nil {
		t.Fatalf("primary copy still corrupt after read-repair: %v", err)
	}
}

func TestGetReplacesMissingPrimary(t *testing.T) {
	s, shares := testStore(t, 3, 2)
	ctx := context.Background()
	const name = "doc.00000.frag"
	if err := s.Put(ctx, name, []byte("hello world")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	primary := s.Replicas(name)[0]
	if err := shares[primary].Remove(name); err != nil {
		t.Fatalf("remove primary copy: %v", err)
	}
	if _, err := s.Get(ctx, name); err != nil {
		t.Fatalf("Get with missing primary: %v", err)
	}
	if v := s.Metrics().Counter(metrics.FleetReadRepairs).Value(); v != 1 {
		t.Fatalf("fleet.read_repairs = %d, want 1", v)
	}
	if _, err := smartfam.ReadFrom(shares[primary], name, 0); err != nil {
		t.Fatalf("primary copy not restored: %v", err)
	}
}

func TestGetFailsWhenAllCopiesCorrupt(t *testing.T) {
	s, shares := testStore(t, 3, 2)
	ctx := context.Background()
	const name = "doc.00000.frag"
	if err := s.Put(ctx, name, []byte("doomed payload")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	for _, node := range s.Replicas(name) {
		corruptCopy(t, shares[node], name)
	}
	_, err := s.Get(ctx, name)
	if !errors.Is(err, smartfam.ErrCorruptBlob) {
		t.Fatalf("Get with all copies corrupt = %v, want ErrCorruptBlob", err)
	}
}

func TestRepairRestoresFullReplication(t *testing.T) {
	s, shares := testStore(t, 4, 3)
	ctx := context.Background()
	const name = "doc.00000.frag"
	payload := []byte(strings.Repeat("repair me ", 100))
	if err := s.Put(ctx, name, payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	reps := s.Replicas(name)
	corruptCopy(t, shares[reps[1]], name)
	if err := shares[reps[2]].Remove(name); err != nil {
		t.Fatalf("remove copy: %v", err)
	}

	res, err := s.Repair(ctx, name)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if res.RepairedCorrupt != 1 || res.ReReplicated != 1 || len(res.Unreachable) != 0 {
		t.Fatalf("Repair = %+v, want 1 corrupt repaired, 1 re-replicated", res)
	}
	for _, node := range reps {
		raw, err := smartfam.ReadFrom(shares[node], name, 0)
		if err != nil {
			t.Fatalf("copy on %s unreadable after repair: %v", node, err)
		}
		if _, err := smartfam.VerifyBlob(raw); err != nil {
			t.Fatalf("copy on %s corrupt after repair: %v", node, err)
		}
	}
	// A second repair finds nothing to do.
	res, err = s.Repair(ctx, name)
	if err != nil {
		t.Fatalf("second Repair: %v", err)
	}
	if res.RepairedCorrupt != 0 || res.ReReplicated != 0 {
		t.Fatalf("second Repair = %+v, want no work", res)
	}
}

func TestRepairFailsWithNoIntactCopy(t *testing.T) {
	s, shares := testStore(t, 3, 2)
	ctx := context.Background()
	const name = "doc.00000.frag"
	if err := s.Put(ctx, name, []byte("unlucky")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	for _, node := range s.Replicas(name) {
		corruptCopy(t, shares[node], name)
	}
	if _, err := s.Repair(ctx, name); !errors.Is(err, smartfam.ErrCorruptBlob) {
		t.Fatalf("Repair with all corrupt = %v, want ErrCorruptBlob", err)
	}
	if _, err := s.Repair(ctx, "nosuch.00000.frag"); !errors.Is(err, smartfam.ErrNotExist) {
		t.Fatalf("Repair of absent object = %v, want ErrNotExist", err)
	}
}

func TestPutFileSplitsOnWordBoundaries(t *testing.T) {
	s, _ := testStore(t, 3, 2)
	ctx := context.Background()
	var sb strings.Builder
	for i := 0; i < 500; i++ {
		sb.WriteString("antidisestablishmentarianism ")
		sb.WriteString("word ")
	}
	data := []byte(sb.String())

	set, err := s.PutFile(ctx, "corpus", data, 512)
	if err != nil {
		t.Fatalf("PutFile: %v", err)
	}
	if len(set.Objects) < 2 {
		t.Fatalf("PutFile produced %d fragments, want several", len(set.Objects))
	}
	if set.TotalBytes != int64(len(data)) {
		t.Fatalf("TotalBytes = %d, want %d", set.TotalBytes, len(data))
	}
	var joined []byte
	for i, name := range set.Objects {
		if want := ObjectName("corpus", i); name != want {
			t.Fatalf("Objects[%d] = %q, want %q", i, name, want)
		}
		frag, err := s.Get(ctx, name)
		if err != nil {
			t.Fatalf("Get %s: %v", name, err)
		}
		if i < len(set.Objects)-1 && len(frag) > 0 && !isWordBreak(frag[len(frag)-1]) {
			t.Fatalf("fragment %d does not end on a word break: ...%q", i, frag[len(frag)-10:])
		}
		joined = append(joined, frag...)
	}
	if !bytes.Equal(joined, data) {
		t.Fatalf("fragments do not concatenate to the original input")
	}
}

func TestPutFileEmptyInput(t *testing.T) {
	s, _ := testStore(t, 3, 2)
	set, err := s.PutFile(context.Background(), "empty", nil, 1024)
	if err != nil {
		t.Fatalf("PutFile: %v", err)
	}
	if len(set.Objects) != 1 {
		t.Fatalf("empty PutFile produced %d fragments, want 1", len(set.Objects))
	}
	got, err := s.Get(context.Background(), set.Objects[0])
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("empty fragment payload = %q", got)
	}
}
