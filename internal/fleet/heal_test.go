package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"mcsd/internal/metrics"
	"mcsd/internal/smartfam"
)

// probeSession is a fakeSession whose node can be revived: attempts fail
// with a transport error and probes fail while down; after Revive both
// succeed.
type probeSession struct {
	fakeSession
	up     atomic.Bool
	probes atomic.Int64
}

func (p *probeSession) Probe(ctx context.Context) error {
	p.probes.Add(1)
	if err := ctx.Err(); err != nil {
		return err
	}
	if !p.up.Load() {
		return errors.New("smartfam: probe: heartbeat is stale")
	}
	return nil
}

func newProbeSession(name string) *probeSession {
	p := &probeSession{}
	p.fakeSession.name = name
	p.fakeSession.behave = func(ctx context.Context, id string, params []byte) ([]byte, error) {
		if !p.up.Load() {
			return nil, errors.New("smartfam: transport down")
		}
		return params, nil
	}
	return p
}

func probeConfig() Config {
	cfg := fastConfig()
	cfg.ProbeInterval = 5 * time.Millisecond
	cfg.ProbationWindow = 5 * time.Millisecond
	cfg.ProbeBackoffMax = 20 * time.Millisecond
	return cfg
}

func TestExecuteProbeRecoveryRevivesMarkedDownNode(t *testing.T) {
	// sd0 is the only holder of a replicated fragment and is down when the
	// job starts. The fragment must park, probes must notice the revival,
	// and the recovered node must serve the fragment.
	sess := newProbeSession("sd0")
	other := &fakeSession{name: "sd1", behave: echoOK}
	c := NewCoordinator([]Node{{Name: "sd0", Session: sess}, {Name: "sd1", Session: other}}, probeConfig())
	frags := []Fragment{
		{Index: 0, Key: "obj.00000.frag", Replicas: []string{"sd0"}, Params: []byte("p0")},
		{Index: 1, Key: "free#1", Params: []byte("p1")},
	}
	reviveDone := make(chan struct{})
	go func() {
		defer close(reviveDone)
		time.Sleep(60 * time.Millisecond)
		sess.up.Store(true)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	results, stats, err := c.Execute(ctx, "m", frags)
	<-reviveDone
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Node != "sd0" {
		t.Fatalf("replicated fragment won on %s, want the revived sd0", results[0].Node)
	}
	if stats.NodeFailures != 1 {
		t.Fatalf("NodeFailures = %d, want 1", stats.NodeFailures)
	}
	if stats.NodeRecoveries != 1 {
		t.Fatalf("NodeRecoveries = %d, want 1", stats.NodeRecoveries)
	}
	if stats.Probes < 2 {
		t.Fatalf("Probes = %d, want >= 2 (probation needs two successes)", stats.Probes)
	}
	if sess.probes.Load() < 2 {
		t.Fatalf("session saw %d probes, want >= 2", sess.probes.Load())
	}
}

func TestExecuteProbeRecoveryNotAttemptedWithoutProber(t *testing.T) {
	// A plain fake session cannot be probed: a replicated fragment whose
	// only holder dies must fail the job, not hang.
	dead := &fakeSession{name: "sd0", behave: func(ctx context.Context, id string, params []byte) ([]byte, error) {
		return nil, errors.New("smartfam: transport down")
	}}
	other := &fakeSession{name: "sd1", behave: echoOK}
	c := NewCoordinator([]Node{{Name: "sd0", Session: dead}, {Name: "sd1", Session: other}}, fastConfig())
	frags := []Fragment{{Index: 0, Key: "obj.00000.frag", Replicas: []string{"sd0"}, Params: []byte("p0")}}
	_, _, err := c.Execute(context.Background(), "m", frags)
	if !errors.Is(err, ErrNoNodes) {
		t.Fatalf("err = %v, want ErrNoNodes", err)
	}
}

func TestExecuteCorruptReplicaFallsBackWithoutMarkDown(t *testing.T) {
	// sd0's copy of the object is corrupt; sd1's is fine. The coordinator
	// must fall back to sd1 without marking sd0 down.
	corrupt := &fakeSession{name: "sd0", behave: func(ctx context.Context, id string, params []byte) ([]byte, error) {
		return nil, &smartfam.ModuleError{Module: "m", Msg: "core: wordcount: " + smartfam.ErrCorruptBlob.Error() + ": crc mismatch"}
	}}
	good := &fakeSession{name: "sd1", behave: echoOK}
	c := NewCoordinator([]Node{{Name: "sd0", Session: corrupt}, {Name: "sd1", Session: good}}, fastConfig())
	frags := []Fragment{{Index: 0, Key: "obj.00000.frag", Replicas: []string{"sd0", "sd1"}, Params: []byte("p0")}}
	results, stats, err := c.Execute(context.Background(), "m", frags)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if results[0].Node != "sd1" {
		t.Fatalf("fragment won on %s, want the surviving replica sd1", results[0].Node)
	}
	if stats.CorruptReplicas != 1 || stats.ReplicaFallbacks != 1 {
		t.Fatalf("stats = %+v, want 1 corrupt replica and 1 fallback", stats)
	}
	if stats.NodeFailures != 0 {
		t.Fatalf("corrupt replica marked the node down: %+v", stats)
	}
	// The healthy node is still usable for other work.
	if corrupt.calls.Load() == 0 {
		t.Fatalf("home replica was never attempted")
	}
}

func TestExecuteAllReplicasCorruptFailsJob(t *testing.T) {
	bad := func(name string) *fakeSession {
		return &fakeSession{name: name, behave: func(ctx context.Context, id string, params []byte) ([]byte, error) {
			return nil, &smartfam.ModuleError{Module: "m", Msg: smartfam.ErrCorruptBlob.Error()}
		}}
	}
	c := NewCoordinator([]Node{{Name: "sd0", Session: bad("sd0")}, {Name: "sd1", Session: bad("sd1")}}, fastConfig())
	frags := []Fragment{{Index: 0, Key: "obj.00000.frag", Replicas: []string{"sd0", "sd1"}, Params: []byte("p0")}}
	_, _, err := c.Execute(context.Background(), "m", frags)
	if !errors.Is(err, ErrNoNodes) {
		t.Fatalf("err = %v, want ErrNoNodes when every replica is corrupt", err)
	}
}

func TestExecuteUnknownReplicaNodeRejected(t *testing.T) {
	c := NewCoordinator([]Node{{Name: "sd0", Session: &fakeSession{behave: echoOK}}}, fastConfig())
	frags := []Fragment{{Index: 0, Key: "k", Replicas: []string{"sd0", "ghost"}, Params: []byte("p")}}
	if _, _, err := c.Execute(context.Background(), "m", frags); err == nil {
		t.Fatal("fragment with unknown replica node accepted")
	}
}

func TestExecuteHealsCorruptReplicaAfterGather(t *testing.T) {
	// End-to-end heal-on-read against a real Store: the home copy is
	// corrupted at rest; node sessions serve object payloads from their own
	// shares with CRC verification; the job must succeed off the survivor
	// and leave the corrupt copy repaired.
	store, shares := testStore(t, 3, 2)
	ctx := context.Background()
	payload := []byte("heal on read pays the repair forward")
	const obj = "doc.00000.frag"
	if err := store.Put(ctx, obj, payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	reps := store.Replicas(obj)
	corruptCopy(t, shares[reps[0]], obj)

	// Each node's session reads the named object from that node's share and
	// verifies the trailer — a miniature of the daemon-side sealed store.
	serve := func(node string) func(ctx context.Context, id string, params []byte) ([]byte, error) {
		return func(ctx context.Context, id string, params []byte) ([]byte, error) {
			raw, err := smartfam.ReadFrom(shares[node], string(params), 0)
			if err != nil {
				return nil, fmt.Errorf("read %s: %w", params, err)
			}
			p, err := smartfam.VerifyBlob(raw)
			if err != nil {
				return nil, &smartfam.ModuleError{Module: "m", Msg: err.Error()}
			}
			return p, nil
		}
	}
	var nodes []Node
	for _, name := range store.Nodes() {
		nodes = append(nodes, Node{Name: name, Session: &fakeSession{name: name, behave: serve(name)}})
	}
	cfg := fastConfig()
	cfg.Store = store
	cfg.Metrics = metrics.NewRegistry()
	c := NewCoordinator(nodes, cfg)
	frags := []Fragment{{Index: 0, Key: obj, Replicas: reps, Params: []byte(obj)}}
	results, stats, err := c.Execute(ctx, "m", frags)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !bytes.Equal(results[0].Payload, payload) {
		t.Fatalf("payload = %q, want %q", results[0].Payload, payload)
	}
	if results[0].Node != reps[1] {
		t.Fatalf("fragment won on %s, want survivor %s", results[0].Node, reps[1])
	}
	if stats.CorruptReplicas != 1 || stats.ReadRepairs != 1 {
		t.Fatalf("stats = %+v, want 1 corrupt replica read-repaired", stats)
	}
	if v := cfg.Metrics.Counter(metrics.FleetReadRepairs).Value(); v != 1 {
		t.Fatalf("fleet.read_repairs = %d, want 1", v)
	}
	// The home copy verifies again.
	raw, err := smartfam.ReadFrom(shares[reps[0]], obj, 0)
	if err != nil {
		t.Fatalf("reread home copy: %v", err)
	}
	if _, err := smartfam.VerifyBlob(raw); err != nil {
		t.Fatalf("home copy still corrupt after heal: %v", err)
	}
}
