package fleet

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("data/corpus.txt#%d", i)
	}
	return keys
}

func TestRingDeterministicAcrossInstances(t *testing.T) {
	// Two independently built rings — the stand-in for a coordinator
	// restart — must agree on every placement, regardless of join order.
	a := NewRing("sd0", "sd1", "sd2", "sd3")
	b := NewRing("sd3", "sd1", "sd0", "sd2")
	for _, k := range ringKeys(500) {
		oa, _ := a.Owner(k)
		ob, _ := b.Owner(k)
		if oa != ob {
			t.Fatalf("key %q: owners diverge (%s vs %s)", k, oa, ob)
		}
	}
}

func TestRingGoldenPlacement(t *testing.T) {
	// Pinned placements guard the hash function itself: if the score
	// calculation ever changes, every deployed fleet's placement would
	// shuffle on upgrade. These values were produced by this implementation
	// and must never drift.
	r := NewRing("sd0", "sd1", "sd2")
	golden := map[string]string{
		"data/corpus.txt#0": "sd2",
		"data/corpus.txt#1": "sd0",
		"data/corpus.txt#2": "sd2",
		"data/corpus.txt#3": "sd2",
		"data/corpus.txt#4": "sd2",
	}
	for k, want := range golden {
		got, ok := r.Owner(k)
		if !ok {
			t.Fatalf("empty ring?")
		}
		if got != want {
			t.Fatalf("Owner(%q) = %s, want pinned %s (HRW hash changed!)", k, got, want)
		}
	}
}

func TestRingJoinMovesOnlyToNewNode(t *testing.T) {
	const n = 2000
	keys := ringKeys(n)
	r := NewRing("sd0", "sd1", "sd2", "sd3")
	before := make(map[string]string, n)
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}
	r.Add("sd4")
	moved := 0
	for _, k := range keys {
		after, _ := r.Owner(k)
		if after != before[k] {
			moved++
			if after != "sd4" {
				t.Fatalf("key %q moved %s -> %s, not to the joining node", k, before[k], after)
			}
		}
	}
	// Expected movement is n/5; allow generous slack for hash variance but
	// stay well under the 1/N-ish bound the issue asks for.
	if moved == 0 || moved > n/5+n/10 {
		t.Fatalf("join moved %d of %d keys, want ~%d", moved, n, n/5)
	}
}

func TestRingLeaveMovesOnlyOrphans(t *testing.T) {
	const n = 2000
	keys := ringKeys(n)
	r := NewRing("sd0", "sd1", "sd2", "sd3")
	before := make(map[string]string, n)
	owned := 0
	for _, k := range keys {
		before[k], _ = r.Owner(k)
		if before[k] == "sd2" {
			owned++
		}
	}
	r.Remove("sd2")
	moved := 0
	for _, k := range keys {
		after, _ := r.Owner(k)
		if before[k] == "sd2" {
			moved++
			if after == "sd2" {
				t.Fatalf("key %q still owned by removed node", k)
			}
		} else if after != before[k] {
			t.Fatalf("key %q moved %s -> %s though its owner survived", k, before[k], after)
		}
	}
	if moved != owned {
		t.Fatalf("moved %d keys, removed node owned %d", moved, owned)
	}
}

func TestRingRankConsistentWithFailover(t *testing.T) {
	// Rank's second choice must equal the owner of a ring without the
	// first choice — failover lands exactly where a re-placement would.
	full := NewRing("sd0", "sd1", "sd2", "sd3")
	for _, k := range ringKeys(200) {
		rank := full.Rank(k)
		if len(rank) != 4 {
			t.Fatalf("rank length %d", len(rank))
		}
		if owner, _ := full.Owner(k); rank[0] != owner {
			t.Fatalf("rank[0] %s != owner %s", rank[0], owner)
		}
		survivors := NewRing()
		for _, n := range full.Nodes() {
			if n != rank[0] {
				survivors.Add(n)
			}
		}
		if next, _ := survivors.Owner(k); next != rank[1] {
			t.Fatalf("key %q: rank[1] = %s, survivors' owner = %s", k, rank[1], next)
		}
	}
}

func TestRingBalance(t *testing.T) {
	const n = 5000
	r := NewRing("sd0", "sd1", "sd2", "sd3", "sd4")
	load := map[string]int{}
	for _, k := range ringKeys(n) {
		o, _ := r.Owner(k)
		load[o]++
	}
	mean := n / 5
	for node, c := range load {
		if c < mean*6/10 || c > mean*14/10 {
			t.Fatalf("node %s owns %d keys, mean %d: unbalanced %v", node, c, mean, load)
		}
	}
}

func TestRingEmptyAndMembership(t *testing.T) {
	r := NewRing()
	if _, ok := r.Owner("k"); ok {
		t.Fatal("empty ring returned an owner")
	}
	r.Add("sd1")
	r.Add("sd0")
	r.Add("sd1") // duplicate
	if got := r.Nodes(); len(got) != 2 || got[0] != "sd0" || got[1] != "sd1" {
		t.Fatalf("Nodes() = %v", got)
	}
	if r.Len() != 2 {
		t.Fatalf("Len() = %d", r.Len())
	}
	r.Remove("sd0")
	if o, ok := r.Owner("k"); !ok || o != "sd1" {
		t.Fatalf("Owner = %s,%v", o, ok)
	}
	r.Remove("ghost") // no-op
}

func TestRingRankReplicaSetsDisjointAndComplete(t *testing.T) {
	// Rank must be a permutation of the membership: R>1 replica sets are its
	// prefix, so every copy of a key lands on a distinct node.
	r := NewRing("sd0", "sd1", "sd2", "sd3", "sd4")
	for _, k := range ringKeys(300) {
		rank := r.Rank(k)
		if len(rank) != 5 {
			t.Fatalf("Rank(%q) has %d entries, want 5", k, len(rank))
		}
		seen := make(map[string]bool, len(rank))
		for _, n := range rank {
			if seen[n] {
				t.Fatalf("Rank(%q) = %v repeats node %s", k, rank, n)
			}
			seen[n] = true
		}
	}
}

func TestRingLeaveMovesBoundedReplicaSlots(t *testing.T) {
	// With R=2 over 5 nodes, removing one node may relocate only the
	// replica slots that node held — it appears in a key's top-2 with
	// probability 2/5 and holds at most one of the two slots, so 1/5 of all
	// slots in expectation — and every slot on a survivor must stay exactly
	// where it was.
	const n, repl = 2000, 2
	nodes := []string{"sd0", "sd1", "sd2", "sd3", "sd4"}
	before := NewRing(nodes...)
	after := NewRing(nodes...)
	after.Remove("sd2")
	moved, held := 0, 0
	for _, k := range ringKeys(n) {
		b := before.Rank(k)[:repl]
		a := after.Rank(k)[:repl]
		as := map[string]bool{a[0]: true, a[1]: true}
		for _, node := range b {
			if node == "sd2" {
				moved++ // this slot had to move: its node is gone
				continue
			}
			held++
			if !as[node] {
				t.Fatalf("key %q: survivor replica %s evicted (before %v, after %v)", k, node, b, a)
			}
		}
	}
	// Expectation: 1/5 of all slots. Allow generous slack.
	total := n * repl
	if lo, hi := total*15/100, total*25/100; moved < lo || moved > hi {
		t.Fatalf("%d of %d replica slots moved, want about %d (1/5)", moved, total, total/5)
	}
}

func TestRingGoldenReplicaPlacement(t *testing.T) {
	// Pinned R=2 preference prefixes: the replicated store depends on these
	// never drifting, or every deployed fleet would lose track of its
	// copies on upgrade.
	r := NewRing("sd0", "sd1", "sd2", "sd3")
	golden := map[string][2]string{
		"corpus.00000.frag": {"sd0", "sd1"},
		"corpus.00001.frag": {"sd1", "sd3"},
		"corpus.00002.frag": {"sd2", "sd3"},
		"corpus.00003.frag": {"sd1", "sd0"},
		"corpus.00004.frag": {"sd1", "sd0"},
	}
	for k, want := range golden {
		rank := r.Rank(k)
		if rank[0] != want[0] || rank[1] != want[1] {
			t.Fatalf("Rank(%q)[:2] = %v, want pinned %v (HRW hash changed!)", k, rank[:2], want)
		}
	}
}
