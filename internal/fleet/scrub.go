package fleet

import (
	"context"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
	"time"

	"mcsd/internal/metrics"
	"mcsd/internal/smartfam"
)

// ChunkSummer is the optional remote-checksum fast path for scrub
// verification: a share that can checksum a byte range server-side (the
// nfs client and pool both can) lets the scrubber compare replicas without
// dragging their bytes across the wire. Shares without it are verified by
// a full read.
type ChunkSummer interface {
	ChunkSum(name string, off int64, n int) (crc uint32, summed int, err error)
}

// scrubChunk is the range size the scrubber checksums at a time; it is also
// the quantum the rate pacer charges.
const scrubChunk = 256 << 10

// ScrubConfig tunes one scrub pass.
type ScrubConfig struct {
	// RateBytesPerSec bounds how many bytes per second the scrubber reads
	// or checksums, so a background pass cannot starve foreground jobs.
	// <= 0 means unpaced.
	RateBytesPerSec int64
}

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	FilesScanned      int      // share files visited (objects + logs)
	BytesScanned      int64    // bytes read or checksummed
	Objects           int      // distinct replicated objects verified
	CorruptReplicas   int      // object copies that failed CRC verification
	RepairedReplicas  int      // corrupt copies rewritten from an intact one
	ReReplicated      int      // missing copies recreated
	Orphans           int      // object copies on nodes outside the preference list
	CorruptLogRecords int      // complete-but-corrupt smartFAM log lines
	UnreachableNodes  []string // nodes that could not be listed or probed
	Errors            []string // objects the pass could not restore
}

// Repairs reports the total copies the pass rewrote.
func (r *ScrubReport) Repairs() int { return r.RepairedReplicas + r.ReReplicated }

// pacer meters scrub I/O to a byte rate. It accumulates debt and sleeps it
// off in coarse quanta, waking early on ctx cancellation.
type pacer struct {
	rate int64
	debt int64
}

func (p *pacer) pay(ctx context.Context, n int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if p.rate <= 0 {
		return nil
	}
	p.debt += n
	// Sleep in >= 10 ms quanta so tiny files do not turn into a busy loop
	// of sub-millisecond timers.
	d := time.Duration(p.debt) * time.Second / time.Duration(p.rate)
	if d < 10*time.Millisecond {
		return nil
	}
	p.debt = 0
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d):
		return nil
	}
}

// Scrub walks every share verifying at a bounded byte rate: smartFAM log
// files are parsed for corrupt records, replicated objects are CRC-verified
// copy by copy (remote copies by server-side chunk checksums when the share
// supports it), and any corrupt or missing copy is restored from the first
// intact replica. A second pass over a healthy fleet reports zero repairs.
func (s *Store) Scrub(ctx context.Context, cfg ScrubConfig) (*ScrubReport, error) {
	rep := &ScrubReport{}
	pace := &pacer{rate: cfg.RateBytesPerSec}
	holders := make(map[string][]string) // object -> nodes listing it
	reachable := make(map[string]bool)

	for _, node := range s.Nodes() {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		names, err := s.shares[node].List()
		if err != nil {
			rep.UnreachableNodes = append(rep.UnreachableNodes, node)
			continue
		}
		reachable[node] = true
		for _, name := range names {
			switch {
			case strings.HasPrefix(name, ".") || strings.HasSuffix(name, stageSuffix):
				// Heartbeats and in-flight stage files are not scrub targets.
			case strings.HasSuffix(name, ObjectSuffix):
				holders[name] = append(holders[name], node)
			case strings.HasSuffix(name, ".log"):
				if err := s.scrubLog(ctx, pace, node, name, rep); err != nil {
					return rep, err
				}
			}
		}
	}

	objects := make([]string, 0, len(holders))
	for name := range holders {
		objects = append(objects, name)
	}
	sort.Strings(objects)
	for _, name := range objects {
		if err := s.scrubObject(ctx, pace, name, holders[name], reachable, rep); err != nil {
			return rep, err
		}
	}
	sort.Strings(rep.UnreachableNodes)
	return rep, nil
}

// scrubLog parses one smartFAM module log counting corrupt records. Log
// files are per-node working state, not replicated objects, so there is
// nothing to repair — the record CRC already quarantines bad lines — but
// the count surfaces media decay the module path would otherwise absorb
// silently.
func (s *Store) scrubLog(ctx context.Context, pace *pacer, node, name string, rep *ScrubReport) error {
	data, err := smartfam.ReadFrom(s.shares[node], name, 0)
	if err != nil {
		return nil // racing a compaction or removal is not a scrub failure
	}
	rep.FilesScanned++
	rep.BytesScanned += int64(len(data))
	s.reg.Counter(metrics.FleetScrubFiles).Inc()
	s.reg.Counter(metrics.FleetScrubBytes).Add(int64(len(data)))
	_, _, corrupt, perr := smartfam.ParseRecords(data)
	if perr == nil {
		rep.CorruptLogRecords += corrupt
		s.reg.Counter(metrics.FleetScrubCorruptRecord).Add(int64(corrupt))
	}
	return pace.pay(ctx, int64(len(data)))
}

// scrubObject verifies every expected copy of one object and restores the
// broken ones. The first intact copy (full read + trailer verification)
// becomes the reference; remaining copies are compared chunk by chunk
// against it, server-side when the share offers ChunkSum.
func (s *Store) scrubObject(ctx context.Context, pace *pacer, name string, listed []string, reachable map[string]bool, rep *ScrubReport) error {
	rep.Objects++
	expected := s.Replicas(name)
	isExpected := make(map[string]bool, len(expected))
	for _, n := range expected {
		isExpected[n] = true
	}
	for _, n := range listed {
		if !isExpected[n] {
			rep.Orphans++
		}
	}

	var ref []byte // first intact sealed copy
	type fix struct {
		node    string
		corrupt bool
	}
	var fixes []fix
	for _, node := range expected {
		if !reachable[node] {
			continue // copy unverifiable this pass; not counted as missing
		}
		if ref == nil {
			raw, err := smartfam.ReadFrom(s.shares[node], name, 0)
			if err != nil {
				fixes = append(fixes, fix{node: node})
				continue
			}
			rep.FilesScanned++
			rep.BytesScanned += int64(len(raw))
			s.reg.Counter(metrics.FleetScrubFiles).Inc()
			s.reg.Counter(metrics.FleetScrubBytes).Add(int64(len(raw)))
			if err := pace.pay(ctx, int64(len(raw))); err != nil {
				return err
			}
			if _, verr := smartfam.VerifyBlob(raw); verr != nil {
				rep.CorruptReplicas++
				s.reg.Counter(metrics.FleetCorruptReplicas).Inc()
				fixes = append(fixes, fix{node: node, corrupt: true})
				continue
			}
			ref = raw
			continue
		}
		ok, scanned, err := s.matchesRef(ctx, pace, node, name, ref)
		if err != nil {
			return err
		}
		rep.FilesScanned++
		rep.BytesScanned += scanned
		s.reg.Counter(metrics.FleetScrubFiles).Inc()
		s.reg.Counter(metrics.FleetScrubBytes).Add(scanned)
		switch {
		case ok:
		case scanned == 0:
			fixes = append(fixes, fix{node: node})
		default:
			rep.CorruptReplicas++
			s.reg.Counter(metrics.FleetCorruptReplicas).Inc()
			fixes = append(fixes, fix{node: node, corrupt: true})
		}
	}
	if ref == nil {
		if len(fixes) > 0 {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: no intact replica", name))
		}
		return nil
	}
	for _, f := range fixes {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := s.writeReplica(s.shares[f.node], name, ref); err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: rewrite on %s: %v", name, f.node, err))
			continue
		}
		if f.corrupt {
			rep.RepairedReplicas++
		} else {
			rep.ReReplicated++
		}
		s.reg.Counter(metrics.FleetScrubRepairs).Inc()
	}
	return nil
}

// matchesRef reports whether node's copy of name is byte-identical to the
// reference sealed blob. scanned is 0 when the copy is missing. When the
// share implements ChunkSummer only checksums cross the wire; otherwise the
// copy is read back in full.
func (s *Store) matchesRef(ctx context.Context, pace *pacer, node, name string, ref []byte) (ok bool, scanned int64, err error) {
	fs := s.shares[node]
	if cs, can := fs.(ChunkSummer); can {
		size, _, serr := fs.Stat(name)
		if serr != nil {
			return false, 0, nil
		}
		if size != int64(len(ref)) {
			return false, size, pace.pay(ctx, size)
		}
		for off := int64(0); off < size; off += scrubChunk {
			n := min(int64(scrubChunk), size-off)
			crc, summed, cerr := cs.ChunkSum(name, off, int(n))
			if cerr != nil || int64(summed) != n {
				return false, scanned, pace.pay(ctx, scanned)
			}
			scanned += n
			if crc != crc32.ChecksumIEEE(ref[off:off+n]) {
				return false, scanned, pace.pay(ctx, scanned)
			}
			if perr := pace.pay(ctx, n); perr != nil {
				return false, scanned, perr
			}
		}
		return true, scanned, nil
	}
	raw, rerr := smartfam.ReadFrom(fs, name, 0)
	if rerr != nil {
		return false, 0, nil
	}
	scanned = int64(len(raw))
	if perr := pace.pay(ctx, scanned); perr != nil {
		return false, scanned, perr
	}
	if len(raw) != len(ref) {
		return false, scanned, nil
	}
	return string(raw) == string(ref), scanned, nil
}
