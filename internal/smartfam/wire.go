package smartfam

import (
	"bufio"
	"bytes"
	"crypto/rand"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"strings"
)

// Record is one entry in a module's log file: either a request carrying
// input parameters from the host (Step 1 of "passing input parameters",
// §IV-A) or a response carrying results or an error back (Step 1 of
// "returning results").
type Record struct {
	// Kind is KindRequest or KindResponse.
	Kind string
	// ID correlates a response with its request.
	ID string
	// Status is StatusOK or StatusError on responses; empty on requests.
	Status string
	// Payload is the parameters (request) or results / error text
	// (response).
	Payload []byte
}

// Record kinds and statuses.
const (
	KindRequest  = "REQ"
	KindResponse = "RES"
	StatusOK     = "ok"
	StatusError  = "error"
)

// NewID returns a fresh correlation ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("smartfam: crypto/rand failed: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// Marshal encodes the record as one log line:
//
//	REQ <id> - <base64-payload>\n
//	RES <id> <status> <base64-payload>\n
//
// Line-oriented text keeps the log greppable on the share, as the paper's
// debugging workflow expects, while base64 keeps arbitrary payloads safe.
func (r Record) Marshal() ([]byte, error) {
	if r.Kind != KindRequest && r.Kind != KindResponse {
		return nil, fmt.Errorf("smartfam: bad record kind %q", r.Kind)
	}
	if r.ID == "" || strings.ContainsAny(r.ID, " \n") {
		return nil, fmt.Errorf("smartfam: bad record id %q", r.ID)
	}
	status := r.Status
	if r.Kind == KindRequest {
		status = "-"
	} else if status != StatusOK && status != StatusError {
		return nil, fmt.Errorf("smartfam: bad response status %q", r.Status)
	}
	payload := base64.StdEncoding.EncodeToString(r.Payload)
	if payload == "" {
		payload = "-" // sentinel keeping the 4-field line shape
	}
	var b bytes.Buffer
	b.Grow(len(payload) + len(r.ID) + 16)
	fmt.Fprintf(&b, "%s %s %s %s\n", r.Kind, r.ID, status, payload)
	return b.Bytes(), nil
}

// ParseRecords decodes every complete record line in data, skipping a
// trailing partial line (the watcher may observe a log mid-append). It
// returns the records and the number of bytes consumed.
func ParseRecords(data []byte) (recs []Record, consumed int, err error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	off := 0
	for sc.Scan() {
		line := sc.Bytes()
		lineLen := len(line) + 1 // +1 for the newline Scan consumed
		if off+lineLen > len(data) {
			// Partial final line without newline: leave for next poll.
			break
		}
		off += lineLen
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		rec, perr := parseLine(line)
		if perr != nil {
			return recs, off, perr
		}
		recs = append(recs, rec)
	}
	if serr := sc.Err(); serr != nil {
		return recs, off, fmt.Errorf("smartfam: scanning log: %w", serr)
	}
	return recs, off, nil
}

func parseLine(line []byte) (Record, error) {
	fields := strings.Fields(string(line))
	if len(fields) != 4 {
		return Record{}, fmt.Errorf("smartfam: malformed log line %q", line)
	}
	rec := Record{Kind: fields[0], ID: fields[1]}
	if rec.Kind != KindRequest && rec.Kind != KindResponse {
		return Record{}, fmt.Errorf("smartfam: unknown record kind %q", rec.Kind)
	}
	if rec.Kind == KindResponse {
		rec.Status = fields[2]
		if rec.Status != StatusOK && rec.Status != StatusError {
			return Record{}, fmt.Errorf("smartfam: unknown response status %q", rec.Status)
		}
	}
	if fields[3] != "-" {
		payload, err := base64.StdEncoding.DecodeString(fields[3])
		if err != nil {
			return Record{}, fmt.Errorf("smartfam: bad payload encoding: %w", err)
		}
		rec.Payload = payload
	}
	return rec, nil
}

// LogName returns the log-file name owned by a module on the share.
func LogName(module string) string { return module + ".log" }

// ModuleFromLog inverts LogName; ok is false for non-log files.
func ModuleFromLog(name string) (string, bool) {
	if !strings.HasSuffix(name, ".log") || len(name) <= 4 {
		return "", false
	}
	return strings.TrimSuffix(name, ".log"), true
}
