package smartfam

import (
	"bufio"
	"bytes"
	"crypto/rand"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"strings"
)

// Record is one entry in a module's log file: either a request carrying
// input parameters from the host (Step 1 of "passing input parameters",
// §IV-A) or a response carrying results or an error back (Step 1 of
// "returning results").
type Record struct {
	// Kind is KindRequest or KindResponse.
	Kind string
	// ID correlates a response with its request.
	ID string
	// Status is StatusOK or StatusError on responses; empty on requests.
	Status string
	// Payload is the parameters (request) or results / error text
	// (response).
	Payload []byte
	// Pos is the byte offset of the record's line within the buffer it
	// was parsed from. It is set by ParseRecords and ignored by Marshal;
	// readers that track file offsets add their own base to it.
	Pos int64
}

// Record kinds and statuses.
const (
	KindRequest  = "REQ"
	KindResponse = "RES"
	StatusOK     = "ok"
	StatusError  = "error"
)

// NewID returns a fresh correlation ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("smartfam: crypto/rand failed: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// recordCRC is the integrity checksum over a record's canonical body (the
// space-joined fields before the CRC field).
func recordCRC(body string) string {
	return fmt.Sprintf("%08x", crc32.ChecksumIEEE([]byte(body)))
}

// Marshal encodes the record as one log line:
//
//	REQ <id> - <base64-payload> <crc32>\n
//	RES <id> <status> <base64-payload> <crc32>\n
//
// Line-oriented text keeps the log greppable on the share, as the paper's
// debugging workflow expects, while base64 keeps arbitrary payloads safe.
// The trailing CRC32 (over the preceding fields) lets readers detect
// torn or bit-flipped lines on the shared medium. Every line is also
// PREFIXED with a newline: appends to an NFS file are not guaranteed
// atomic under writer crashes, and the leading newline terminates any
// torn tail a previous writer left behind, so the parser can resync on
// this record instead of fusing it with the garbage.
func (r Record) Marshal() ([]byte, error) {
	if r.Kind != KindRequest && r.Kind != KindResponse {
		return nil, fmt.Errorf("smartfam: bad record kind %q", r.Kind)
	}
	if r.ID == "" || strings.ContainsAny(r.ID, " \n") {
		return nil, fmt.Errorf("smartfam: bad record id %q", r.ID)
	}
	status := r.Status
	if r.Kind == KindRequest {
		status = "-"
	} else if status != StatusOK && status != StatusError {
		return nil, fmt.Errorf("smartfam: bad response status %q", r.Status)
	}
	payload := base64.StdEncoding.EncodeToString(r.Payload)
	if payload == "" {
		payload = "-" // sentinel keeping the fixed line shape
	}
	body := r.Kind + " " + r.ID + " " + status + " " + payload
	var b bytes.Buffer
	b.Grow(len(body) + 16)
	b.WriteByte('\n')
	b.WriteString(body)
	b.WriteByte(' ')
	b.WriteString(recordCRC(body))
	b.WriteByte('\n')
	return b.Bytes(), nil
}

// ParseRecords decodes every complete record line in data, skipping a
// trailing partial line (the watcher may observe a log mid-append, and a
// crashed writer can leave a torn tail — both wait, quarantined, until a
// later append terminates them). It returns the records, the number of
// bytes consumed, and the number of complete-but-corrupt lines skipped.
//
// Corrupt lines — torn appends fused with a following record, bit flips
// caught by the CRC, or otherwise malformed text — do NOT fail the batch:
// the parser resyncs at the next newline, counts the casualty, and keeps
// going, so one damaged record cannot wedge a whole module log. Callers
// surface the count through a `smartfam.corrupt_records` metric. err is
// reserved for scanner-level failures (a line exceeding the 64 MB cap).
func ParseRecords(data []byte) (recs []Record, consumed int, corrupt int, err error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	off := 0
	for sc.Scan() {
		line := sc.Bytes()
		lineLen := len(line) + 1 // +1 for the newline Scan consumed
		if off+lineLen > len(data) {
			// Partial final line without newline: leave for next poll.
			break
		}
		lineStart := off
		off += lineLen
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		rec, perr := parseLine(line)
		if perr != nil {
			corrupt++
			continue // resync at the next newline
		}
		rec.Pos = int64(lineStart)
		recs = append(recs, rec)
	}
	if serr := sc.Err(); serr != nil {
		return recs, off, corrupt, fmt.Errorf("smartfam: scanning log: %w", serr)
	}
	return recs, off, corrupt, nil
}

func parseLine(line []byte) (Record, error) {
	fields := strings.Fields(string(line))
	// The CRC field is mandatory: a torn append can truncate a line into
	// something that still splits into plausible fields, and only the
	// checksum reliably rejects it.
	if len(fields) != 5 {
		return Record{}, fmt.Errorf("smartfam: malformed log line %q", line)
	}
	body := strings.Join(fields[:4], " ")
	if recordCRC(body) != fields[4] {
		return Record{}, fmt.Errorf("smartfam: record checksum mismatch on line %q", line)
	}
	rec := Record{Kind: fields[0], ID: fields[1]}
	if rec.Kind != KindRequest && rec.Kind != KindResponse {
		return Record{}, fmt.Errorf("smartfam: unknown record kind %q", rec.Kind)
	}
	if rec.Kind == KindResponse {
		rec.Status = fields[2]
		if rec.Status != StatusOK && rec.Status != StatusError {
			return Record{}, fmt.Errorf("smartfam: unknown response status %q", rec.Status)
		}
	}
	if fields[3] != "-" {
		payload, err := base64.StdEncoding.DecodeString(fields[3])
		if err != nil {
			return Record{}, fmt.Errorf("smartfam: bad payload encoding: %w", err)
		}
		rec.Payload = payload
	}
	return rec, nil
}

// LogName returns the log-file name owned by a module on the share.
func LogName(module string) string { return module + ".log" }

// ModuleFromLog inverts LogName; ok is false for non-log files.
func ModuleFromLog(name string) (string, bool) {
	if !strings.HasSuffix(name, ".log") || len(name) <= 4 {
		return "", false
	}
	return strings.TrimSuffix(name, ".log"), true
}
