package smartfam

import (
	"context"
	"testing"
	"time"
)

func TestHeartbeatRoundTrip(t *testing.T) {
	fsys := DirFS(t.TempDir())
	if _, ok := ReadHeartbeat(fsys); ok {
		t.Fatal("heartbeat present on a fresh share")
	}
	stamp := time.Unix(0, 1234567890123456789)
	if err := WriteHeartbeat(fsys, stamp); err != nil {
		t.Fatal(err)
	}
	got, ok := ReadHeartbeat(fsys)
	if !ok || !got.Equal(stamp) {
		t.Fatalf("ReadHeartbeat = (%v, %v), want %v", got, ok, stamp)
	}
	// Re-stamp replaces, not appends.
	later := stamp.Add(time.Hour)
	if err := WriteHeartbeat(fsys, later); err != nil {
		t.Fatal(err)
	}
	got, ok = ReadHeartbeat(fsys)
	if !ok || !got.Equal(later) {
		t.Fatalf("second ReadHeartbeat = (%v, %v), want %v", got, ok, later)
	}
}

func TestHeartbeatGarbageTolerated(t *testing.T) {
	fsys := DirFS(t.TempDir())
	if err := fsys.Append(HeartbeatName, []byte("not a number")); err != nil {
		t.Fatal(err)
	}
	if _, ok := ReadHeartbeat(fsys); ok {
		t.Fatal("garbage heartbeat accepted")
	}
}

func TestRunHeartbeatRefreshes(t *testing.T) {
	fsys := DirFS(t.TempDir())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go RunHeartbeat(ctx, fsys, 5*time.Millisecond) //nolint:errcheck

	deadline := time.After(5 * time.Second)
	var first time.Time
	for {
		if ts, ok := ReadHeartbeat(fsys); ok {
			if first.IsZero() {
				first = ts
			} else if ts.After(first) {
				return // refreshed at least once
			}
		}
		select {
		case <-deadline:
			t.Fatal("heartbeat never refreshed")
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func TestDaemonStampsHeartbeat(t *testing.T) {
	fsys := DirFS(t.TempDir())
	reg := NewRegistry(fsys)
	d := NewDaemon(fsys, reg, WithPollInterval(time.Millisecond), WithHeartbeat(2*time.Millisecond))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go d.Run(ctx) //nolint:errcheck

	deadline := time.After(5 * time.Second)
	for {
		if ts, ok := ReadHeartbeat(fsys); ok {
			if time.Since(ts) < time.Second {
				return
			}
		}
		select {
		case <-deadline:
			t.Fatal("daemon never stamped a heartbeat")
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func TestDaemonHeartbeatDisabled(t *testing.T) {
	fsys := DirFS(t.TempDir())
	reg := NewRegistry(fsys)
	d := NewDaemon(fsys, reg, WithPollInterval(time.Millisecond), WithHeartbeat(-1))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go d.Run(ctx) //nolint:errcheck
	time.Sleep(20 * time.Millisecond)
	if _, ok := ReadHeartbeat(fsys); ok {
		t.Fatal("disabled heartbeat still stamped")
	}
}
