// Package smartfam implements smartFAM, the paper's invocation mechanism
// (Fig. 5): a host computing node triggers data-intensive processing
// modules on a McSD storage node by writing input parameters into the
// module's log file inside an NFS-shared folder; an inotify-style watcher
// on the SD node notices the change and a daemon invokes the module; the
// module's results are written back into the same log file, where the
// host-side watcher picks them up and hands them to the calling
// application.
//
// The shared folder is abstracted behind FS so the same daemon and client
// run over a local directory (one-process tests, the paper's single-box
// development mode) or over the internal/nfs client (the real two-node
// deployment where every log-file byte crosses the modelled network).
package smartfam

//mcsdlint:fsboundary -- dirFS is the os-backed leaf of the FS abstraction; every other package reaches disk through it

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// FS is the slice of file operations smartFAM needs from the shared log
// folder. Append must be atomic with respect to concurrent appends to the
// same file.
type FS interface {
	// Create makes an empty file, truncating any existing one.
	Create(name string) error
	// Append atomically appends data to the named file, creating it if
	// needed.
	Append(name string, data []byte) error
	// ReadAt reads up to len(p) bytes from the given offset, returning
	// io.EOF semantics like os.File.ReadAt.
	ReadAt(name string, p []byte, off int64) (int, error)
	// Stat returns the current size and modification time of the file.
	Stat(name string) (size int64, mtime time.Time, err error)
	// List returns the file names in the shared folder.
	List() ([]string, error)
	// Remove deletes the named file.
	Remove(name string) error
	// Rename atomically replaces newname with oldname (both inside the
	// folder). The daemon's journal compaction depends on this atomicity.
	Rename(oldname, newname string) error
}

// ErrNotExist mirrors fs.ErrNotExist for FS implementations.
var ErrNotExist = os.ErrNotExist

// DirFS returns an FS rooted at a local directory, the single-node
// configuration. Name components are validated so a log name cannot escape
// the share.
func DirFS(root string) FS { return &dirFS{root: root} }

type dirFS struct {
	root string
}

func (d *dirFS) path(name string) (string, error) {
	if name == "" || strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return "", fmt.Errorf("smartfam: invalid log name %q", name)
	}
	return filepath.Join(d.root, name), nil
}

func (d *dirFS) Create(name string) error {
	p, err := d.path(name)
	if err != nil {
		return err
	}
	f, err := os.Create(p)
	if err != nil {
		return fmt.Errorf("smartfam: create %s: %w", name, err)
	}
	return f.Close()
}

func (d *dirFS) Append(name string, data []byte) error {
	p, err := d.path(name)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("smartfam: append %s: %w", name, err)
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		return fmt.Errorf("smartfam: append %s: %w", name, err)
	}
	return nil
}

func (d *dirFS) ReadAt(name string, p []byte, off int64) (int, error) {
	pathName, err := d.path(name)
	if err != nil {
		return 0, err
	}
	f, err := os.Open(pathName)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, ErrNotExist
		}
		return 0, fmt.Errorf("smartfam: open %s: %w", name, err)
	}
	defer f.Close()
	n, err := f.ReadAt(p, off)
	if err != nil && !errors.Is(err, io.EOF) {
		return n, fmt.Errorf("smartfam: read %s: %w", name, err)
	}
	return n, err
}

func (d *dirFS) Stat(name string) (int64, time.Time, error) {
	p, err := d.path(name)
	if err != nil {
		return 0, time.Time{}, err
	}
	fi, err := os.Stat(p)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, time.Time{}, ErrNotExist
		}
		return 0, time.Time{}, fmt.Errorf("smartfam: stat %s: %w", name, err)
	}
	return fi.Size(), fi.ModTime(), nil
}

func (d *dirFS) List() ([]string, error) {
	entries, err := os.ReadDir(d.root)
	if err != nil {
		return nil, fmt.Errorf("smartfam: list share: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (d *dirFS) Remove(name string) error {
	p, err := d.path(name)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return ErrNotExist
		}
		return fmt.Errorf("smartfam: remove %s: %w", name, err)
	}
	return nil
}

func (d *dirFS) Rename(oldname, newname string) error {
	from, err := d.path(oldname)
	if err != nil {
		return err
	}
	to, err := d.path(newname)
	if err != nil {
		return err
	}
	if err := os.Rename(from, to); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return ErrNotExist
		}
		return fmt.Errorf("smartfam: rename %s -> %s: %w", oldname, newname, err)
	}
	return nil
}

// ReadFrom reads everything from off to the current end of the named file.
func ReadFrom(fsys FS, name string, off int64) ([]byte, error) {
	size, _, err := fsys.Stat(name)
	if err != nil {
		return nil, err
	}
	if off >= size {
		return nil, nil
	}
	buf := make([]byte, size-off)
	n, err := fsys.ReadAt(name, buf, off)
	if err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	return buf[:n], nil
}
