package smartfam

import (
	"context"
	"time"
)

// Event reports that a watched file changed: it grew, shrank, or its mtime
// moved.
type Event struct {
	Name  string
	Size  int64
	MTime time.Time
}

// Watcher is the stdlib substitute for the paper's inotify subsystem: it
// polls Stat on watched files at a fixed interval and delivers an Event
// whenever a file's (size, mtime) changes. Polling preserves inotify's
// semantics — change notification on the module log files — with bounded
// latency, and unlike inotify it also works across the NFS share, where
// the paper equally relied on attribute refresh.
//
// # Missed notifications
//
// Over a plain FS, change detection compares only (size, mtime). A file
// rewritten twice within one poll interval such that both end up back at
// their last observed values — same byte count, same timestamp (possible
// on filesystems with coarse mtime granularity, or after an explicit
// timestamp restore) — produces no event. Over an FS that implements
// GenStat (the nfs client), the server's change generation joins the
// comparison and closes exactly this ABA blind spot: the generation
// advances on every server-observed mutation regardless of what size and
// mtime settle back to. Residual losses (mutations that bypassed the
// server) remain accepted by design: the watcher is a latency
// optimization, not the source of truth. Consumers track their own read
// offsets and the daemon's periodic rescan sweep (Daemon.Run,
// WithRescanInterval) re-reads every log regardless of events, so a
// missed notification delays a request by at most one rescan interval
// instead of losing it.
type Watcher struct {
	fs       FS
	gs       GenStat // non-nil when fs tracks change generations
	interval time.Duration
	events   chan Event
	watch    map[string]struct{}
	known    map[string]fileState
	watchAll bool
}

type fileState struct {
	size  int64
	mtime time.Time
	gen   uint64
}

// DefaultPollInterval is the watcher's default polling period. 2 ms keeps
// invocation latency well under the network round-trip it accompanies.
const DefaultPollInterval = 2 * time.Millisecond

// NewWatcher returns a watcher over fsys polling at the given interval
// (DefaultPollInterval when interval <= 0).
func NewWatcher(fsys FS, interval time.Duration) *Watcher {
	if interval <= 0 {
		interval = DefaultPollInterval
	}
	gs, _ := fsys.(GenStat)
	return &Watcher{
		fs:       fsys,
		gs:       gs,
		interval: interval,
		events:   make(chan Event, 64),
		watch:    make(map[string]struct{}),
		known:    make(map[string]fileState),
	}
}

// Add registers a file to watch. Watching a file that does not exist yet is
// allowed; an event fires when it appears.
func (w *Watcher) Add(name string) { w.watch[name] = struct{}{} }

// AddAll watches every file in the share, including files created later —
// the daemon's mode ("the inotify program in the McSD node monitors all the
// log files").
func (w *Watcher) AddAll() { w.watchAll = true }

// Events returns the event channel. Events are dropped, not blocked on,
// when the consumer lags behind (the consumer re-reads the log from its own
// offset, so a dropped event is only a latency hiccup, never data loss).
func (w *Watcher) Events() <-chan Event { return w.events }

// Run polls until ctx is done. It always returns ctx.Err().
func (w *Watcher) Run(ctx context.Context) error {
	ticker := time.NewTicker(w.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			w.poll()
		}
	}
}

// Poll performs one polling pass synchronously. Exposed for deterministic
// tests and for callers that embed the watcher in their own loop.
func (w *Watcher) Poll() { w.poll() }

func (w *Watcher) poll() {
	names := make([]string, 0, len(w.watch))
	if w.watchAll {
		listed, err := w.fs.List()
		if err == nil {
			names = append(names, listed...)
		}
	}
	for n := range w.watch {
		names = append(names, n)
	}
	seen := make(map[string]struct{}, len(names))
	for _, name := range names {
		if _, dup := seen[name]; dup {
			continue
		}
		seen[name] = struct{}{}
		var (
			size  int64
			mtime time.Time
			gen   uint64
			err   error
		)
		if w.gs != nil {
			size, mtime, gen, err = w.gs.StatGen(name)
		} else {
			size, mtime, err = w.fs.Stat(name)
		}
		if err != nil {
			// Deleted or not yet created: forget it so reappearance fires.
			delete(w.known, name)
			continue
		}
		prev, ok := w.known[name]
		if ok && prev.size == size && prev.mtime.Equal(mtime) && prev.gen == gen {
			continue
		}
		w.known[name] = fileState{size: size, mtime: mtime, gen: gen}
		select {
		case w.events <- Event{Name: name, Size: size, MTime: mtime}:
		default:
			// Consumer lagging; drop (see Events).
		}
	}
}
