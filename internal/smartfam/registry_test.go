// Regression tests for the registry's lock discipline: Register and
// Unregister do share I/O (log probe/create/remove), and an earlier
// version held r.mu across those calls — so a slow share stalled Lookup,
// which sits on the daemon's per-request hot path. These tests pin the
// fix: the FS work runs outside the lock, with a pending-name reservation
// keeping concurrent duplicate Registers honest. They live in the external
// test package because faultfs wraps smartfam.FS.
package smartfam_test

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"mcsd/internal/faultfs"
	"mcsd/internal/smartfam"
)

func registryModule(name string) smartfam.Module {
	return smartfam.ModuleFunc{ModuleName: name, Fn: nil}
}

// TestRegistryLookupNotBlockedByShareIO parks Register inside slow share
// I/O and requires Lookup (and Names) to answer immediately anyway.
func TestRegistryLookupNotBlockedByShareIO(t *testing.T) {
	ffs := faultfs.New(smartfam.DirFS(t.TempDir()))
	reg := smartfam.NewRegistry(ffs)
	if err := reg.Register(registryModule("fast")); err != nil {
		t.Fatal(err)
	}

	// Every share op now takes 300ms; Register("slow") will sit in its
	// log-file Stat/Create for ~600ms.
	const opLatency = 300 * time.Millisecond
	ffs.SetLatency(opLatency)
	regDone := make(chan error, 1)
	go func() { regDone <- reg.Register(registryModule("slow")) }()

	// Give Register time to take and release the lock and enter the share
	// I/O (the lock-held window is pure map work, microseconds).
	time.Sleep(20 * time.Millisecond)

	start := time.Now()
	if _, err := reg.Lookup("fast"); err != nil {
		t.Fatal(err)
	}
	reg.Names()
	if d := time.Since(start); d > opLatency/2 {
		t.Fatalf("Lookup+Names took %v while Register was in share I/O; the lock is being held across FS calls", d)
	}

	if err := <-regDone; err != nil {
		t.Fatalf("Register(slow): %v", err)
	}
	if _, err := reg.Lookup("slow"); err != nil {
		t.Fatalf("slow module not committed after Register returned: %v", err)
	}
}

// TestRegistryConcurrentDuplicateRegister pins the pending-name
// reservation: with Register's share I/O outside the lock, a concurrent
// duplicate must still lose the race — exactly one of N racers wins, and
// the losers get the already-registered error, not a double commit.
func TestRegistryConcurrentDuplicateRegister(t *testing.T) {
	ffs := faultfs.New(smartfam.DirFS(t.TempDir()))
	ffs.SetLatency(20 * time.Millisecond) // widen the I/O window the racers overlap in
	reg := smartfam.NewRegistry(ffs)

	const racers = 8
	errs := make([]error, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = reg.Register(registryModule("dup"))
		}(i)
	}
	wg.Wait()

	wins := 0
	for i, err := range errs {
		if err == nil {
			wins++
		} else if !strings.Contains(err.Error(), "already registered") {
			t.Fatalf("racer %d: unexpected error %v", i, err)
		}
	}
	if wins != 1 {
		t.Fatalf("%d racers won, want exactly 1", wins)
	}
	if _, err := reg.Lookup("dup"); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryFailedRegisterLeavesNoReservation pins the pending cleanup:
// a Register whose share I/O fails must release its name so a later
// attempt can succeed.
func TestRegistryFailedRegisterLeavesNoReservation(t *testing.T) {
	ffs := faultfs.New(smartfam.DirFS(t.TempDir()))
	reg := smartfam.NewRegistry(ffs)

	ffs.FailNext(faultfs.OpStat, 1)
	err := reg.Register(registryModule("m"))
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Register under fault: %v, want injected failure", err)
	}
	if _, err := reg.Lookup("m"); err == nil {
		t.Fatal("failed Register still committed the module")
	}
	if err := reg.Register(registryModule("m")); err != nil {
		t.Fatalf("retry after failed Register: %v (stale pending reservation?)", err)
	}
	if _, err := reg.Lookup("m"); err != nil {
		t.Fatal(err)
	}
}
