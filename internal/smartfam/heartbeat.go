package smartfam

import (
	"context"
	"strconv"
	"strings"
	"time"
)

// HeartbeatName is the share file the SD daemon refreshes to advertise
// liveness. It is not a module log (no ".log" suffix), so module discovery
// ignores it; the host runtime reads it to skip dead nodes without waiting
// for an invocation timeout.
const HeartbeatName = ".heartbeat"

// DefaultHeartbeatInterval is how often the daemon refreshes its
// heartbeat.
const DefaultHeartbeatInterval = 250 * time.Millisecond

// WriteHeartbeat stamps the share with the current time.
func WriteHeartbeat(fsys FS, now time.Time) error {
	if err := fsys.Create(HeartbeatName); err != nil {
		return err
	}
	return fsys.Append(HeartbeatName, []byte(strconv.FormatInt(now.UnixNano(), 10)))
}

// ReadHeartbeat returns the last stamped time. ok is false when the share
// has no heartbeat (an old daemon, or none yet) — callers should then fall
// back to timeout-based detection rather than declaring the node dead.
func ReadHeartbeat(fsys FS) (time.Time, bool) {
	data, err := ReadFrom(fsys, HeartbeatName, 0)
	if err != nil || len(data) == 0 {
		return time.Time{}, false
	}
	ns, err := strconv.ParseInt(strings.TrimSpace(string(data)), 10, 64)
	if err != nil {
		return time.Time{}, false
	}
	return time.Unix(0, ns), true
}

// RunHeartbeat refreshes the heartbeat every interval until ctx is done.
// The daemon runs it alongside its serving loop.
func RunHeartbeat(ctx context.Context, fsys FS, interval time.Duration) error {
	if interval <= 0 {
		interval = DefaultHeartbeatInterval
	}
	// Stamp immediately so a freshly started node is visible at once.
	_ = WriteHeartbeat(fsys, time.Now())
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			_ = WriteHeartbeat(fsys, time.Now())
		}
	}
}
