package smartfam_test

import (
	"context"
	"fmt"
	"os"
	"time"

	"mcsd/internal/smartfam"
)

// Example_invocation wires up the full Fig. 5 mechanism in one process: a
// module registered on an SD node's share, the daemon watching its log
// file, and a host-side client invoking it by writing parameters into that
// log.
func Example_invocation() {
	dir, err := os.MkdirTemp("", "smartfam-example-*")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer os.RemoveAll(dir)
	share := smartfam.DirFS(dir)

	// SD node side: register a module (this creates its log file) and
	// serve it.
	registry := smartfam.NewRegistry(share)
	err = registry.Register(smartfam.ModuleFunc{
		ModuleName: "greet",
		Fn: func(_ context.Context, params []byte) ([]byte, error) {
			return []byte("hello, " + string(params)), nil
		},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	daemon := smartfam.NewDaemon(share, registry)
	go daemon.Run(ctx) //nolint:errcheck

	// Host side: invoke through the shared folder.
	client := smartfam.NewClient(share, time.Millisecond)
	result, err := client.Invoke(ctx, "greet", []byte("storage node"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(string(result))
	// Output:
	// hello, storage node
}
