package smartfam

import (
	"bytes"
	"errors"
	"testing"
)

func TestSealBlobRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), []byte("hello sealed world\n"), bytes.Repeat([]byte{0xa5}, 1<<16)} {
		raw := SealBlob(payload)
		if len(raw) != len(payload)+BlobTrailerLen {
			t.Fatalf("sealed length %d, want %d", len(raw), len(payload)+BlobTrailerLen)
		}
		got, err := VerifyBlob(raw)
		if err != nil {
			t.Fatalf("VerifyBlob: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload mismatch: %d bytes vs %d", len(got), len(payload))
		}
	}
}

func TestVerifyBlobDetectsBitFlip(t *testing.T) {
	payload := []byte("the quick brown fox jumps over the lazy dog")
	raw := SealBlob(payload)
	for _, pos := range []int{0, len(payload) / 2, len(payload) - 1} {
		bad := append([]byte(nil), raw...)
		bad[pos] ^= 0x01
		if _, err := VerifyBlob(bad); !errors.Is(err, ErrCorruptBlob) {
			t.Fatalf("flip at %d: got %v, want ErrCorruptBlob", pos, err)
		}
	}
}

func TestVerifyBlobDetectsTrailerDamage(t *testing.T) {
	raw := SealBlob([]byte("payload"))
	cases := map[string]func([]byte) []byte{
		"truncated":      func(b []byte) []byte { return b[:len(b)-1] },
		"short":          func([]byte) []byte { return []byte("tiny") },
		"flipped magic":  func(b []byte) []byte { b[len(b)-BlobTrailerLen+1] ^= 0x02; return b },
		"flipped crc":    func(b []byte) []byte { b[len(b)-BlobTrailerLen+6] = 'z'; return b },
		"flipped length": func(b []byte) []byte { b[len(b)-3] = 'f'; return b },
		"extra payload":  func(b []byte) []byte { return append([]byte("x"), b...) },
	}
	for name, mutate := range cases {
		bad := mutate(append([]byte(nil), raw...))
		if _, err := VerifyBlob(bad); !errors.Is(err, ErrCorruptBlob) {
			t.Fatalf("%s: got %v, want ErrCorruptBlob", name, err)
		}
	}
}

func TestIsCorruptBlobMessage(t *testing.T) {
	_, err := VerifyBlob([]byte("not a sealed blob at all, but long enough to have a trailer"))
	if err == nil {
		t.Fatal("expected error")
	}
	// The module side wraps with %w; the text that crosses the wire must
	// still be recognizable.
	if !IsCorruptBlobMessage(err.Error()) {
		t.Fatalf("message %q not recognized", err.Error())
	}
	if IsCorruptBlobMessage("some unrelated module failure") {
		t.Fatal("false positive")
	}
}
