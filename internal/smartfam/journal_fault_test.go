// Fault-injection tests for the daemon's redo journal. Routing the journal
// through smartfam.FS (instead of raw os calls) is what makes these
// possible: faultfs can now tear and fail journal writes exactly like
// share writes, so crash-recovery is tested against a journal that fails,
// not just a share that fails.
package smartfam_test

import (
	"errors"
	"testing"

	"mcsd/internal/faultfs"
	"mcsd/internal/smartfam"
)

func openFaultJournal(t *testing.T) (*faultfs.FS, *smartfam.Journal, *smartfam.JournalState) {
	t.Helper()
	ffs := faultfs.New(smartfam.DirFS(t.TempDir()))
	j, state, err := smartfam.OpenJournalFS(ffs, "journal")
	if err != nil {
		t.Fatal(err)
	}
	return ffs, j, state
}

func TestJournalAppendFaultSurfaces(t *testing.T) {
	ffs, j, _ := openFaultJournal(t)
	ffs.FailNext(faultfs.OpAppend, 1)
	if err := j.Intent("id-1", "wordcount", 0); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Intent under injected append fault = %v, want ErrInjected", err)
	}
	// The fault was transient: the next journal write must land.
	if err := j.Intent("id-1", "wordcount", 0); err != nil {
		t.Fatalf("Intent after fault cleared: %v", err)
	}
}

func TestJournalTornAppendSkippedOnReplay(t *testing.T) {
	ffs, j, _ := openFaultJournal(t)
	if err := j.Done("id-good", "wordcount", smartfam.StatusOK, []byte("r1")); err != nil {
		t.Fatal(err)
	}
	// Tear the next DONE mid-line, like a daemon crash mid-write.
	ffs.TearNext(1, 0.5)
	if err := j.Done("id-torn", "wordcount", smartfam.StatusOK, []byte("r2")); err == nil {
		t.Fatal("torn append reported success")
	}
	j.Close()

	_, state, err := smartfam.OpenJournalFS(ffs, "journal")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := state.Completed["id-good"]; !ok {
		t.Fatal("intact DONE entry lost on replay")
	}
	if _, ok := state.Completed["id-torn"]; ok {
		t.Fatal("torn DONE entry survived replay")
	}
	if state.Corrupt == 0 {
		t.Fatal("torn journal line was not counted as corrupt")
	}
}

func TestJournalCompactionRenameFaultSurfaces(t *testing.T) {
	ffs, j, _ := openFaultJournal(t)
	if err := j.Done("id-1", "wordcount", smartfam.StatusOK, nil); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Compaction's atomic rename fails -> open must report it, and the old
	// journal must still replay intact afterwards.
	ffs.FailNext(faultfs.OpRename, 1)
	if _, _, err := smartfam.OpenJournalFS(ffs, "journal"); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("open under injected rename fault = %v, want ErrInjected", err)
	}
	_, state, err := smartfam.OpenJournalFS(ffs, "journal")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := state.Completed["id-1"]; !ok {
		t.Fatal("journal lost after failed compaction rename")
	}
}
