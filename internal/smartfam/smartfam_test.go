package smartfam

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func echoModule() Module {
	return ModuleFunc{
		ModuleName: "echo",
		Fn: func(_ context.Context, params []byte) ([]byte, error) {
			return append([]byte("echo:"), params...), nil
		},
	}
}

// startDaemon spins up a registry+daemon over a fresh share and returns the
// share and a cleanup-bound context.
func startDaemon(t *testing.T, mods ...Module) (FS, *Registry) {
	t.Helper()
	fsys := DirFS(t.TempDir())
	reg := NewRegistry(fsys)
	for _, m := range mods {
		if err := reg.Register(m); err != nil {
			t.Fatal(err)
		}
	}
	d := NewDaemon(fsys, reg, WithPollInterval(time.Millisecond), WithWorkers(4))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = d.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return fsys, reg
}

func TestRegistryRegisterCreatesLog(t *testing.T) {
	fsys := DirFS(t.TempDir())
	reg := NewRegistry(fsys)
	if err := reg.Register(echoModule()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fsys.Stat("echo.log"); err != nil {
		t.Fatalf("log file not created: %v", err)
	}
	if err := reg.Register(echoModule()); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if got := reg.Names(); len(got) != 1 || got[0] != "echo" {
		t.Fatalf("Names = %v", got)
	}
	m, err := reg.Lookup("echo")
	if err != nil || m.Name() != "echo" {
		t.Fatalf("Lookup = (%v, %v)", m, err)
	}
	if _, err := reg.Lookup("nope"); !errors.Is(err, ErrUnknownModule) {
		t.Fatalf("Lookup missing err = %v", err)
	}
}

func TestRegistryUnregisterRemovesLog(t *testing.T) {
	fsys := DirFS(t.TempDir())
	reg := NewRegistry(fsys)
	if err := reg.Register(echoModule()); err != nil {
		t.Fatal(err)
	}
	if err := reg.Unregister("echo"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fsys.Stat("echo.log"); !errors.Is(err, ErrNotExist) {
		t.Fatal("log file not removed")
	}
	if err := reg.Unregister("echo"); !errors.Is(err, ErrUnknownModule) {
		t.Fatalf("second unregister err = %v", err)
	}
}

func TestRegistryRejectsAnonymousModule(t *testing.T) {
	reg := NewRegistry(DirFS(t.TempDir()))
	if err := reg.Register(ModuleFunc{ModuleName: ""}); err == nil {
		t.Fatal("anonymous module accepted")
	}
}

func TestInvokeEndToEnd(t *testing.T) {
	fsys, _ := startDaemon(t, echoModule())
	c := NewClient(fsys, time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, err := c.Invoke(ctx, "echo", []byte("hello mcsd"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "echo:hello mcsd" {
		t.Fatalf("result = %q", got)
	}
}

func TestInvokeUnknownModule(t *testing.T) {
	fsys, _ := startDaemon(t, echoModule())
	c := NewClient(fsys, time.Millisecond)
	_, err := c.Invoke(context.Background(), "missing", nil)
	if !errors.Is(err, ErrUnknownModule) {
		t.Fatalf("err = %v, want ErrUnknownModule", err)
	}
}

func TestInvokeModuleError(t *testing.T) {
	failing := ModuleFunc{
		ModuleName: "fail",
		Fn: func(context.Context, []byte) ([]byte, error) {
			return nil, fmt.Errorf("synthetic module failure")
		},
	}
	fsys, _ := startDaemon(t, failing)
	c := NewClient(fsys, time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := c.Invoke(ctx, "fail", nil)
	var merr *ModuleError
	if !errors.As(err, &merr) {
		t.Fatalf("err = %v, want ModuleError", err)
	}
	if !strings.Contains(merr.Msg, "synthetic") {
		t.Fatalf("error message %q lost", merr.Msg)
	}
}

func TestInvokeModulePanicIsolated(t *testing.T) {
	panicky := ModuleFunc{
		ModuleName: "panic",
		Fn: func(context.Context, []byte) ([]byte, error) {
			panic("module exploded")
		},
	}
	fsys, _ := startDaemon(t, panicky, echoModule())
	c := NewClient(fsys, time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := c.Invoke(ctx, "panic", nil)
	var merr *ModuleError
	if !errors.As(err, &merr) {
		t.Fatalf("panic err = %v, want ModuleError", err)
	}
	// The daemon must survive and keep serving other modules.
	got, err := c.Invoke(ctx, "echo", []byte("alive?"))
	if err != nil || string(got) != "echo:alive?" {
		t.Fatalf("daemon dead after module panic: (%q, %v)", got, err)
	}
}

func TestInvokeConcurrent(t *testing.T) {
	fsys, _ := startDaemon(t, echoModule())
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewClient(fsys, time.Millisecond)
			payload := fmt.Sprintf("req-%d", i)
			got, err := c.Invoke(ctx, "echo", []byte(payload))
			if err != nil {
				errs[i] = err
				return
			}
			if string(got) != "echo:"+payload {
				errs[i] = fmt.Errorf("wrong result %q for %q", got, payload)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}

func TestInvokeLargePayload(t *testing.T) {
	fsys, _ := startDaemon(t, echoModule())
	c := NewClient(fsys, time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	big := bytes.Repeat([]byte{0xAB}, 1<<20)
	got, err := c.Invoke(ctx, "echo", big)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(big)+5 || !bytes.Equal(got[5:], big) {
		t.Fatal("large payload corrupted")
	}
}

func TestInvokeContextCancelled(t *testing.T) {
	// No daemon running: the invoke can never complete.
	fsys := DirFS(t.TempDir())
	if err := fsys.Create("echo.log"); err != nil {
		t.Fatal(err)
	}
	c := NewClient(fsys, time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := c.Invoke(ctx, "echo", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestClientModulesDiscovery(t *testing.T) {
	fsys, reg := startDaemon(t, echoModule())
	c := NewClient(fsys, time.Millisecond)
	mods, err := c.Modules()
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 1 || mods[0] != "echo" {
		t.Fatalf("Modules = %v", mods)
	}
	// Runtime extensibility (§VI future work): load a second module and
	// invoke it without restarting anything.
	upper := ModuleFunc{
		ModuleName: "upper",
		Fn: func(_ context.Context, p []byte) ([]byte, error) {
			return bytes.ToUpper(p), nil
		},
	}
	if err := reg.Register(upper); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, err := c.Invoke(ctx, "upper", []byte("mcsd"))
	if err != nil || string(got) != "MCSD" {
		t.Fatalf("hot-loaded module: (%q, %v)", got, err)
	}
}

func TestDaemonMetrics(t *testing.T) {
	fsys := DirFS(t.TempDir())
	reg := NewRegistry(fsys)
	if err := reg.Register(echoModule()); err != nil {
		t.Fatal(err)
	}
	d := NewDaemon(fsys, reg, WithPollInterval(time.Millisecond))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go d.Run(ctx) //nolint:errcheck

	c := NewClient(fsys, time.Millisecond)
	ictx, icancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer icancel()
	if _, err := c.Invoke(ictx, "echo", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if d.Metrics().Counter("smartfam.daemon.requests").Value() != 1 {
		t.Fatal("request not counted")
	}
	if d.Metrics().Timer("smartfam.daemon.invoke").Count() != 1 {
		t.Fatal("invoke not timed")
	}
}
