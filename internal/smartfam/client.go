package smartfam

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"mcsd/internal/metrics"
)

// Client is the host-node side of smartFAM: it writes input parameters into
// a module's log file on the share (step 1 of Fig. 5) and watches the log
// for the module's results (steps 2-4 of result return).
type Client struct {
	fs         FS
	interval   time.Duration
	metrics    *metrics.Registry
	staleAfter time.Duration

	// fam v2 push-mode state (push.go). pushMu guards all of it.
	pushMu     sync.Mutex
	routers    map[string]*respRouter    // live response routers, by module
	batchers   map[string]*appendBatcher // group-commit batchers, by log name
	pushBroken bool                      // share can never push; stop trying
	batchBytes int                       // 0: batching disabled (the default)
	batchDelay time.Duration
}

// NewClient returns a client over the shared folder fsys, polling for
// responses at the given interval (DefaultPollInterval when <= 0).
func NewClient(fsys FS, interval time.Duration) *Client {
	if interval <= 0 {
		interval = DefaultPollInterval
	}
	return &Client{fs: fsys, interval: interval}
}

// SetMetrics attaches a metrics registry (corrupt-record and retry
// counters). Nil is allowed and is the default.
func (c *Client) SetMetrics(m *metrics.Registry) { c.metrics = m }

// DefaultProbeStaleAfter is how old a daemon heartbeat may be before Probe
// declares the node dead. Generous against the daemon's default 250ms
// refresh so scheduling hiccups never flap a healthy node.
const DefaultProbeStaleAfter = 2 * time.Second

// SetProbeStaleAfter tunes Probe's heartbeat-freshness window (<= 0
// restores the default). Call before sharing the client across
// goroutines.
func (c *Client) SetProbeStaleAfter(d time.Duration) { c.staleAfter = d }

// Probe checks node liveness without invoking a module: the share must be
// reachable and, when the daemon publishes a heartbeat, the heartbeat must
// be fresh. A share with no heartbeat file (heartbeats disabled, or a
// daemon too old to write one) probes as alive on reachability alone —
// the caller's attempt timeout remains the backstop there. The fleet
// coordinator uses Probe to mark failed nodes back up.
func (c *Client) Probe(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ts, ok := ReadHeartbeat(c.fs)
	if !ok {
		// No heartbeat: fall back to plain share reachability.
		if _, err := c.fs.List(); err != nil {
			return fmt.Errorf("smartfam: probe: %w", err)
		}
		return nil
	}
	stale := c.staleAfter
	if stale <= 0 {
		stale = DefaultProbeStaleAfter
	}
	if age := time.Since(ts); age > stale {
		return fmt.Errorf("smartfam: probe: heartbeat is %v old (stale after %v)", age, stale)
	}
	return nil
}

// countCorrupt bumps the shared corrupt-record counter; metric names are
// pinned to the registry constants (metrickey), so each counter gets its
// own accessor instead of a name-taking helper.
func (c *Client) countCorrupt(n int) {
	if c.metrics != nil && n != 0 {
		c.metrics.Counter(metrics.SmartfamCorruptRecords).Add(int64(n))
	}
}

func (c *Client) countAppendRetry() {
	if c.metrics != nil {
		c.metrics.Counter(metrics.SmartfamClientAppendRetries).Inc()
	}
}

// ModuleError is a module-side failure relayed through the log file.
type ModuleError struct {
	Module string
	Msg    string
}

func (e *ModuleError) Error() string {
	return fmt.Sprintf("smartfam: module %q failed: %s", e.Module, e.Msg)
}

// Modules lists the modules available on the SD node, discovered from the
// log files present on the share.
func (c *Client) Modules() ([]string, error) {
	names, err := c.fs.List()
	if err != nil {
		return nil, err
	}
	var mods []string
	for _, n := range names {
		if m, ok := ModuleFromLog(n); ok {
			mods = append(mods, m)
		}
	}
	return mods, nil
}

// appendAttempts bounds the request-append retry loop.
const appendAttempts = 4

var appendBackoff = 2 * time.Millisecond

// appendRequest lands one marshalled request record on the module log,
// through the group-commit batcher when batching is enabled, else with a
// direct bounded-retry append. A transient share error must not fail the
// invocation outright, and the record's leading newline makes a retry
// after a torn attempt safe — the partial bytes parse as one corrupt line
// and the retried record resyncs the log.
func (c *Client) appendRequest(ctx context.Context, module, logName string, line []byte) error {
	if b := c.batcher(logName); b != nil {
		if err := b.append(ctx, line); err != nil {
			if errors.Is(err, ctx.Err()) && ctx.Err() != nil {
				return err
			}
			return fmt.Errorf("smartfam: sending request to %q: %w", module, err)
		}
		return nil
	}
	backoff := appendBackoff
	for attempt := 0; ; attempt++ {
		err := c.fs.Append(logName, line)
		if err == nil {
			return nil
		}
		c.countAppendRetry()
		if attempt+1 >= appendAttempts {
			return fmt.Errorf("smartfam: sending request to %q: %w", module, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
	}
}

// Invoke calls the named module with params and blocks until its results
// arrive or ctx is done. A missing log file means the module is not loaded
// (ErrUnknownModule). The request is sent under a fresh correlation ID;
// callers that retry a failed invocation should use InvokeID with the
// SAME ID so the daemon can dedupe (replaying the cached response if the
// work already ran) instead of executing the module twice.
func (c *Client) Invoke(ctx context.Context, module string, params []byte) ([]byte, error) {
	return c.InvokeID(ctx, module, NewID(), params)
}

// InvokeID is Invoke with a caller-chosen correlation ID — the idempotency
// key of the smartFAM protocol. Reusing the ID across retries makes the
// invocation exactly-once: a daemon that already completed the work
// re-appends its journaled response rather than re-running the module.
func (c *Client) InvokeID(ctx context.Context, module, id string, params []byte) ([]byte, error) {
	logName := LogName(module)
	req := Record{Kind: KindRequest, ID: id, Payload: params}
	line, err := req.Marshal()
	if err != nil {
		return nil, err
	}

	// Push fast path (fam v2): when the share streams change
	// notifications, a per-module router delivers the response without
	// polling. The router registers the waiter BEFORE the append. No
	// per-call existence Stat here: the router stat'ed the log when it
	// armed its watch, so a live router IS the existence check — the hot
	// path costs one (batched) append, not an extra round trip.
	if rt := c.router(module); rt != nil {
		return c.invokePush(ctx, rt, module, logName, id, line)
	}

	// Degraded/legacy path: append, then poll the log for the response.
	// The log file is created at preload time; its absence means the
	// module does not exist on the SD node.
	off, _, err := c.fs.Stat(logName)
	if err != nil {
		if errors.Is(err, ErrNotExist) {
			return nil, fmt.Errorf("%w: %q", ErrUnknownModule, module)
		}
		return nil, err
	}
	if err := c.appendRequest(ctx, module, logName, line); err != nil {
		return nil, err
	}

	// Watch the log from just before our own request; our request record
	// is skipped by kind, and the daemon's response is matched by ID.
	gen := ReadGeneration(c.fs, module)
	ticker := time.NewTicker(c.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ticker.C:
			// Tolerate a compacted/recreated log: restart from the top
			// (our pending request survives compaction by design).
			if g := ReadGeneration(c.fs, module); g != gen {
				gen, off = g, 0
			} else if size, _, err := c.fs.Stat(logName); err == nil && size < off {
				off = 0
			}
			data, err := ReadFrom(c.fs, logName, off)
			if err != nil || len(data) == 0 {
				continue
			}
			recs, consumed, corrupt, err := ParseRecords(data)
			c.countCorrupt(corrupt)
			if err != nil {
				return nil, err
			}
			off += int64(consumed)
			for _, rec := range recs {
				if rec.Kind != KindResponse || rec.ID != id {
					continue
				}
				if rec.Status == StatusError {
					return nil, &ModuleError{Module: module, Msg: string(rec.Payload)}
				}
				return rec.Payload, nil
			}
		}
	}
}
