package smartfam

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Client is the host-node side of smartFAM: it writes input parameters into
// a module's log file on the share (step 1 of Fig. 5) and watches the log
// for the module's results (steps 2-4 of result return).
type Client struct {
	fs       FS
	interval time.Duration
}

// NewClient returns a client over the shared folder fsys, polling for
// responses at the given interval (DefaultPollInterval when <= 0).
func NewClient(fsys FS, interval time.Duration) *Client {
	if interval <= 0 {
		interval = DefaultPollInterval
	}
	return &Client{fs: fsys, interval: interval}
}

// ModuleError is a module-side failure relayed through the log file.
type ModuleError struct {
	Module string
	Msg    string
}

func (e *ModuleError) Error() string {
	return fmt.Sprintf("smartfam: module %q failed: %s", e.Module, e.Msg)
}

// Modules lists the modules available on the SD node, discovered from the
// log files present on the share.
func (c *Client) Modules() ([]string, error) {
	names, err := c.fs.List()
	if err != nil {
		return nil, err
	}
	var mods []string
	for _, n := range names {
		if m, ok := ModuleFromLog(n); ok {
			mods = append(mods, m)
		}
	}
	return mods, nil
}

// Invoke calls the named module with params and blocks until its results
// arrive or ctx is done. A missing log file means the module is not loaded
// (ErrUnknownModule).
func (c *Client) Invoke(ctx context.Context, module string, params []byte) ([]byte, error) {
	logName := LogName(module)
	// The log file is created at preload time; its absence means the
	// module does not exist on the SD node.
	off, _, err := c.fs.Stat(logName)
	if err != nil {
		if errors.Is(err, ErrNotExist) {
			return nil, fmt.Errorf("%w: %q", ErrUnknownModule, module)
		}
		return nil, err
	}

	id := NewID()
	req := Record{Kind: KindRequest, ID: id, Payload: params}
	line, err := req.Marshal()
	if err != nil {
		return nil, err
	}
	if err := c.fs.Append(logName, line); err != nil {
		return nil, fmt.Errorf("smartfam: sending request to %q: %w", module, err)
	}

	// Watch the log from just before our own request; our request record
	// is skipped by kind, and the daemon's response is matched by ID.
	gen := ReadGeneration(c.fs, module)
	ticker := time.NewTicker(c.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ticker.C:
			// Tolerate a compacted/recreated log: restart from the top
			// (our pending request survives compaction by design).
			if g := ReadGeneration(c.fs, module); g != gen {
				gen, off = g, 0
			} else if size, _, err := c.fs.Stat(logName); err == nil && size < off {
				off = 0
			}
			data, err := ReadFrom(c.fs, logName, off)
			if err != nil || len(data) == 0 {
				continue
			}
			recs, consumed, err := ParseRecords(data)
			if err != nil {
				return nil, err
			}
			off += int64(consumed)
			for _, rec := range recs {
				if rec.Kind != KindResponse || rec.ID != id {
					continue
				}
				if rec.Status == StatusError {
					return nil, &ModuleError{Module: module, Msg: string(rec.Payload)}
				}
				return rec.Payload, nil
			}
		}
	}
}
