package smartfam

import (
	"context"
	"errors"
	"sync"
	"time"

	"mcsd/internal/metrics"
)

// This file is the host half of the fam v2 push-mode front door:
//
//   - respRouter replaces InvokeID's per-call polling loop when the share
//     implements WatchFS: ONE notify-driven reader per module log scans new
//     records and hands each response to the waiter registered under its
//     correlation ID. Waiters register BEFORE appending their request, so a
//     response can never land unobserved.
//   - appendBatcher is the group-commit side: concurrent InvokeID calls
//     against one module coalesce their request records into a single
//     share append per batch window (bounded by bytes and delay), cutting
//     the per-invocation RPC cost to ~1/batch. Record framing (leading
//     newline + CRC) makes concatenated batches and whole-batch retries
//     safe; duplicate records from a torn-flush retry are deduped by the
//     daemon's journal, so exactly-once survives batching.
//
// Both degrade loudly, never wedge: a lost notify stream flips the router
// to fast polling (counted under smartfam.fam.degraded) and periodically
// re-arms push; a share that cannot push at all (DirFS, legacy gob) keeps
// the classic append-then-poll path untouched.

// pushSafetyFloor is the slowest the router's safety ticker runs while the
// notify stream is live. Push delivers the fast path; the ticker only
// covers dropped notifies (the server's per-watcher queue is bounded), so
// it can be far lazier than the polling interval.
const pushSafetyFloor = 25 * time.Millisecond

// Group-commit defaults: a batch flushes at DefaultBatchBytes of encoded
// records or DefaultBatchDelay after its first record, whichever comes
// first. The delay is deliberately small against the modelled 20 ms RTT —
// batching should buy throughput, not visible latency.
const (
	DefaultBatchBytes = 64 << 10
	DefaultBatchDelay = time.Millisecond
)

// SetBatching enables host-side group commit with the given bounds (<= 0
// selects the defaults). Call before sharing the client across
// goroutines; batching changes only how request records reach the share,
// not the protocol on it.
func (c *Client) SetBatching(maxBytes int, maxDelay time.Duration) {
	if maxBytes <= 0 {
		maxBytes = DefaultBatchBytes
	}
	if maxDelay <= 0 {
		maxDelay = DefaultBatchDelay
	}
	c.batchBytes, c.batchDelay = maxBytes, maxDelay
}

func (c *Client) countPushEvent() {
	if c.metrics != nil {
		c.metrics.Counter(metrics.FamPushEvents).Inc()
	}
}

func (c *Client) countDegraded() {
	if c.metrics != nil {
		c.metrics.Counter(metrics.FamDegraded).Inc()
	}
}

func (c *Client) pushGaugeAdd(delta int64) {
	if c.metrics != nil {
		c.metrics.Gauge(metrics.FamPushActive).Add(delta)
	}
}

// routerLinger is how long an idle router keeps its goroutine and
// server-side watch armed after the last in-flight invocation leaves.
// Re-arming costs three round trips (watch, stat, generation), so tearing
// down between the bursts of a busy caller would tax every burst with the
// arm latency; a watch held idle costs the server one map entry.
const routerLinger = time.Second

// respRouter is the notify-driven response reader for one module log. It
// is reference-counted by in-flight invocations: the first creates it (and
// its goroutine); after the last leaves the router lingers routerLinger
// before retiring, so an idle client eventually holds no goroutines and no
// server-side watch.
type respRouter struct {
	c       *Client
	wfs     WatchFS
	module  string
	logName string

	// refs/stopped/idleSince are guarded by c.pushMu (see Client.router).
	refs      int
	stopped   bool
	idleSince time.Time // set when refs hits 0; zeroed on reuse

	mu      sync.Mutex
	waiters map[string]chan Record

	// off/gen are touched only by the router goroutine.
	off int64
	gen int64
}

// router returns the live response router for module, creating it (and
// arming a server watch) on first use. nil means push is unavailable —
// the caller runs the classic polling path. A share that reports
// ErrWatchUnsupported is remembered as permanently pushless. The arm
// I/O — watch, stat, generation, three round trips — runs with pushMu
// released; when two first-callers race, the loser joins the winner's
// router and folds its own watch.
func (c *Client) router(module string) *respRouter {
	wfs, ok := c.fs.(WatchFS)
	if !ok {
		return nil
	}
	if rt, broken := c.joinRouter(module); rt != nil || broken {
		return rt
	}
	logName := LogName(module)
	st, err := wfs.Watch(logName)
	if err != nil {
		if errors.Is(err, ErrWatchUnsupported) {
			c.pushMu.Lock()
			c.pushBroken = true
			c.pushMu.Unlock()
		}
		return nil
	}
	// Snapshot the scan start BEFORE any caller appends its request (the
	// caller registers first, then appends — and only after this router is
	// published), so responses to our requests always land at or after off.
	size, _, err := c.fs.Stat(logName)
	if err != nil {
		st.Close()
		return nil
	}
	gen := ReadGeneration(c.fs, module)

	c.pushMu.Lock()
	if rt := c.routers[module]; rt != nil && !rt.stopped {
		// Lost the arm race: join the winner's router.
		rt.refs++
		rt.idleSince = time.Time{}
		c.pushMu.Unlock()
		st.Close()
		return rt
	}
	rt := &respRouter{
		c:       c,
		wfs:     wfs,
		module:  module,
		logName: logName,
		refs:    1,
		waiters: make(map[string]chan Record),
		off:     size,
		gen:     gen,
	}
	if c.routers == nil {
		c.routers = make(map[string]*respRouter)
	}
	c.routers[module] = rt
	c.pushMu.Unlock()
	//mcsdlint:allow goroleak -- run exits through expire(): its ticker fires at least every safety interval and retires the router once it has sat at zero refs past routerLinger (refcounted under c.pushMu); a stream loss inside run only degrades it to polling, the ticker keeps firing
	go rt.run(st)
	return rt
}

// joinRouter takes a reference on module's live router when one exists.
// The second return reports the permanently-pushless verdict so callers
// skip the arm I/O.
func (c *Client) joinRouter(module string) (*respRouter, bool) {
	c.pushMu.Lock()
	defer c.pushMu.Unlock()
	if c.pushBroken {
		return nil, true
	}
	if rt := c.routers[module]; rt != nil && !rt.stopped {
		rt.refs++
		rt.idleSince = time.Time{}
		return rt, false
	}
	return nil, false
}

// register installs a waiter for the response carrying id. Must be called
// before the request record is appended.
func (rt *respRouter) register(id string) chan Record {
	ch := make(chan Record, 1)
	rt.mu.Lock()
	rt.waiters[id] = ch
	rt.mu.Unlock()
	return ch
}

// unregister drops the waiter and, when it was the last, arms the linger
// clock: the router survives short idle gaps (bursty callers reclaim it
// for free) and expire() retires it from the run loop once the gap
// outlasts routerLinger.
func (rt *respRouter) unregister(id string) {
	c := rt.c
	c.pushMu.Lock()
	rt.mu.Lock()
	delete(rt.waiters, id)
	rt.mu.Unlock()
	rt.refs--
	if rt.refs == 0 {
		rt.idleSince = time.Now()
	}
	c.pushMu.Unlock()
}

// expire retires the router once it has sat at zero refs past
// routerLinger; returns true when the run loop should exit. Called from
// the router goroutine on its ticker.
func (rt *respRouter) expire() bool {
	c := rt.c
	c.pushMu.Lock()
	defer c.pushMu.Unlock()
	if rt.refs > 0 || rt.idleSince.IsZero() || time.Since(rt.idleSince) < routerLinger {
		return false
	}
	rt.stopped = true
	if c.routers[rt.module] == rt {
		delete(c.routers, rt.module)
	}
	return true
}

// run is the router goroutine: scan on every notify while the stream is
// live (with a lazy safety tick covering dropped notifies), and on stream
// loss degrade to polling at the client's interval while periodically
// trying to re-arm push.
func (rt *respRouter) run(st WatchStream) {
	c := rt.c
	safety := pushSafetyFloor
	if d := 10 * c.interval; d > safety {
		safety = d
	}
	tick := time.NewTicker(safety)
	defer tick.Stop()
	c.pushGaugeAdd(1)
	defer func() {
		if st != nil {
			st.Close()
			c.pushGaugeAdd(-1)
		}
	}()
	for {
		var events <-chan WatchEvent
		if st != nil {
			events = st.Events()
		}
		select {
		case _, ok := <-events:
			if !ok {
				// Stream lost: degraded mode. Poll fast, like the classic
				// path, and let the safety tick double as the re-arm probe.
				st = nil
				c.pushGaugeAdd(-1)
				c.countDegraded()
				tick.Reset(c.interval)
				continue
			}
			c.countPushEvent()
			rt.scan()
		case <-tick.C:
			if rt.expire() {
				return
			}
			if st == nil {
				if ns, err := rt.wfs.Watch(rt.logName); err == nil {
					st = ns
					c.pushGaugeAdd(1)
					tick.Reset(safety)
				} else if errors.Is(err, ErrWatchUnsupported) {
					c.pushMu.Lock()
					c.pushBroken = true
					c.pushMu.Unlock()
				}
			}
			rt.scan()
		}
	}
}

// scanChunk is the router's optimistic read size. Records are a few
// hundred bytes, so one chunk covers thousands of them — and it stays
// within the share's single-RPC read bound, keeping the hot scan at
// exactly one round trip.
const scanChunk = 256 << 10

// scan reads records appended since the last scan and delivers responses
// to their registered waiters. The hot path is ONE round trip: the log
// grows append-only between compactions, so the scan reads a chunk
// straight from the saved offset — no Stat first; the short read bounds
// it, and ParseRecords quarantines a tail torn mid-append until a later
// read completes it. The compaction checks (generation bump, truncation)
// run only when the read comes back empty, which is exactly what a
// shrunken log looks like from a stale offset. With no waiters registered
// the scan is skipped entirely; the offset catches up on the next armed
// scan.
func (rt *respRouter) scan() {
	c := rt.c
	rt.mu.Lock()
	armed := len(rt.waiters) > 0
	rt.mu.Unlock()
	if !armed {
		return
	}
	for pass := 0; pass < 2; pass++ {
		read := 0
		for {
			buf := make([]byte, scanChunk)
			n, err := c.fs.ReadAt(rt.logName, buf, rt.off)
			if n > 0 {
				recs, consumed, corrupt, perr := ParseRecords(buf[:n])
				c.countCorrupt(corrupt)
				if perr != nil {
					return
				}
				rt.off += int64(consumed)
				rt.deliver(recs)
				read += n
				if consumed == 0 {
					// A torn tail with no complete record in front of it:
					// wait for the append that terminates it.
					break
				}
			}
			if err != nil || n < len(buf) {
				break
			}
		}
		if read > 0 {
			return
		}
		// Nothing at the offset: usually just no news, but a compacted or
		// truncated log shows the same face — check, rewind, rescan once.
		if g := ReadGeneration(c.fs, rt.module); g != rt.gen {
			rt.gen, rt.off = g, 0
			continue
		}
		if size, _, serr := c.fs.Stat(rt.logName); serr == nil && size < rt.off {
			rt.off = 0
			continue
		}
		return
	}
}

// deliver hands each response record to its registered waiter. Matching
// and removal happen under rt.mu; the sends happen after it is released,
// keeping the critical section free of channel traffic.
func (rt *respRouter) deliver(recs []Record) {
	type delivery struct {
		ch  chan Record
		rec Record
	}
	var due []delivery
	rt.mu.Lock()
	for _, rec := range recs {
		if rec.Kind != KindResponse {
			continue
		}
		ch, ok := rt.waiters[rec.ID]
		if !ok {
			continue
		}
		delete(rt.waiters, rec.ID)
		due = append(due, delivery{ch, rec})
	}
	rt.mu.Unlock()
	for _, dv := range due {
		//mcsdlint:allow chanbound -- the waiter channel is made with cap 1 in register and was removed from the map under rt.mu above, so this is its single delivery; it cannot block
		dv.ch <- dv.rec
	}
}

// invokePush is InvokeID's fast path: register the waiter, append the
// request (batched or direct), block on the routed response.
func (c *Client) invokePush(ctx context.Context, rt *respRouter, module, logName, id string, line []byte) ([]byte, error) {
	ch := rt.register(id)
	defer rt.unregister(id)
	if err := c.appendRequest(ctx, module, logName, line); err != nil {
		return nil, err
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case rec := <-ch:
		if rec.Status == StatusError {
			return nil, &ModuleError{Module: module, Msg: string(rec.Payload)}
		}
		return rec.Payload, nil
	}
}

// famBatch is one in-flight group commit: records accumulate in buf until
// the batch closes (byte bound hit, delay elapsed, or leader cancelled),
// then the leader flushes it with one share append.
type famBatch struct {
	buf    []byte
	n      int64
	closed bool          // guarded by appendBatcher.mu
	full   chan struct{} // closed when buf reaches the byte bound
	done   chan struct{} // closed after the flush; err is set first
	err    error
}

// appendBatcher group-commits request records for one module log. The
// first record's appender becomes the batch leader: it waits out the
// batch window, detaches the batch, and performs the single append every
// member blocks on.
type appendBatcher struct {
	c        *Client
	logName  string
	maxBytes int
	maxDelay time.Duration

	mu  sync.Mutex
	cur *famBatch
}

// batcher returns the group-commit batcher for logName, or nil when
// batching is disabled (the default).
func (c *Client) batcher(logName string) *appendBatcher {
	if c.batchBytes <= 0 {
		return nil
	}
	c.pushMu.Lock()
	defer c.pushMu.Unlock()
	b := c.batchers[logName]
	if b == nil {
		b = &appendBatcher{c: c, logName: logName, maxBytes: c.batchBytes, maxDelay: c.batchDelay}
		if c.batchers == nil {
			c.batchers = make(map[string]*appendBatcher)
		}
		c.batchers[logName] = b
	}
	return b
}

// append joins (or opens) the current batch and blocks until the batch's
// flush resolves. A caller whose ctx expires leaves early, but its record
// stays in the batch and may still land — harmless, because a retry under
// the same correlation ID is deduped by the daemon's journal.
func (b *appendBatcher) append(ctx context.Context, line []byte) error {
	b.mu.Lock()
	leader := false
	if b.cur == nil {
		b.cur = &famBatch{full: make(chan struct{}), done: make(chan struct{})}
		leader = true
	}
	batch := b.cur
	batch.buf = append(batch.buf, line...)
	batch.n++
	if len(batch.buf) >= b.maxBytes && !batch.closed {
		batch.closed = true
		close(batch.full)
		b.cur = nil // next record opens a fresh batch
	}
	b.mu.Unlock()

	if leader {
		b.lead(ctx, batch)
	}
	select {
	case <-batch.done:
		return batch.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// lead waits out the batch window, closes the batch and flushes it.
func (b *appendBatcher) lead(ctx context.Context, batch *famBatch) {
	b.mu.Lock()
	closed := batch.closed
	b.mu.Unlock()
	if !closed {
		timer := time.NewTimer(b.maxDelay)
		select {
		case <-batch.full:
		case <-timer.C:
		case <-ctx.Done():
			// Leader cancelled: flush what has gathered rather than strand
			// the followers' records behind a dead leader.
		}
		timer.Stop()
		b.mu.Lock()
		if b.cur == batch {
			b.cur = nil
		}
		batch.closed = true
		b.mu.Unlock()
	}
	// After detach no appender can touch batch.buf: joins happen under
	// b.mu and only against b.cur.
	backoff := appendBackoff
	var err error
	for attempt := 0; ; attempt++ {
		if err = b.c.fs.Append(b.logName, batch.buf); err == nil {
			break
		}
		b.c.countAppendRetry()
		if attempt+1 >= appendAttempts {
			break
		}
		select {
		case <-ctx.Done():
			// Stop retrying but keep the append error: it is the cause the
			// members care about; the dedup journal makes retries safe.
		case <-time.After(backoff):
			backoff *= 2
			continue
		}
		break
	}
	if err == nil && b.c.metrics != nil {
		b.c.metrics.Counter(metrics.FamBatchFlushes).Inc()
		b.c.metrics.Counter(metrics.FamBatchRecords).Add(batch.n)
		b.c.metrics.Counter(metrics.FamBatchBytes).Add(int64(len(batch.buf)))
	}
	batch.err = err
	close(batch.done)
}
