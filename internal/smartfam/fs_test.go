package smartfam

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestDirFSCreateAppendRead(t *testing.T) {
	fsys := DirFS(t.TempDir())
	if err := fsys.Create("a.log"); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Append("a.log", []byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Append("a.log", []byte("world")); err != nil {
		t.Fatal(err)
	}
	size, _, err := fsys.Stat("a.log")
	if err != nil {
		t.Fatal(err)
	}
	if size != 11 {
		t.Fatalf("size = %d, want 11", size)
	}
	buf := make([]byte, 5)
	if _, err := fsys.ReadAt("a.log", buf, 6); err != nil && err.Error() != "EOF" {
		t.Fatal(err)
	}
	if string(buf) != "world" {
		t.Fatalf("ReadAt = %q, want world", buf)
	}
}

func TestDirFSAppendCreatesFile(t *testing.T) {
	fsys := DirFS(t.TempDir())
	if err := fsys.Append("new.log", []byte("x")); err != nil {
		t.Fatal(err)
	}
	size, _, err := fsys.Stat("new.log")
	if err != nil || size != 1 {
		t.Fatalf("stat after append-create: size=%d err=%v", size, err)
	}
}

func TestDirFSCreateTruncates(t *testing.T) {
	fsys := DirFS(t.TempDir())
	if err := fsys.Append("a.log", []byte("old content")); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Create("a.log"); err != nil {
		t.Fatal(err)
	}
	size, _, err := fsys.Stat("a.log")
	if err != nil || size != 0 {
		t.Fatalf("create did not truncate: size=%d err=%v", size, err)
	}
}

func TestDirFSStatMissing(t *testing.T) {
	fsys := DirFS(t.TempDir())
	if _, _, err := fsys.Stat("nope.log"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func TestDirFSListSorted(t *testing.T) {
	fsys := DirFS(t.TempDir())
	for _, n := range []string{"c.log", "a.log", "b.log"} {
		if err := fsys.Create(n); err != nil {
			t.Fatal(err)
		}
	}
	names, err := fsys.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != "a.log" || names[2] != "c.log" {
		t.Fatalf("List = %v", names)
	}
}

func TestDirFSRemove(t *testing.T) {
	fsys := DirFS(t.TempDir())
	if err := fsys.Create("a.log"); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove("a.log"); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove("a.log"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("second remove err = %v, want ErrNotExist", err)
	}
}

func TestDirFSRejectsPathEscapes(t *testing.T) {
	fsys := DirFS(t.TempDir())
	for _, bad := range []string{"", ".", "..", "a/b.log", `a\b.log`, "../escape"} {
		if err := fsys.Create(bad); err == nil {
			t.Errorf("name %q accepted", bad)
		}
	}
}

func TestReadFrom(t *testing.T) {
	fsys := DirFS(t.TempDir())
	if err := fsys.Append("a.log", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(fsys, "a.log", 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("456789")) {
		t.Fatalf("ReadFrom = %q", got)
	}
	// Offset at/after end: empty, no error.
	got, err = ReadFrom(fsys, "a.log", 10)
	if err != nil || len(got) != 0 {
		t.Fatalf("ReadFrom at EOF = (%q, %v)", got, err)
	}
	got, err = ReadFrom(fsys, "a.log", 99)
	if err != nil || len(got) != 0 {
		t.Fatalf("ReadFrom past EOF = (%q, %v)", got, err)
	}
}

func TestWatcherSeesAppendAndCreate(t *testing.T) {
	fsys := DirFS(t.TempDir())
	w := NewWatcher(fsys, time.Hour) // manual polling only
	w.Add("mod.log")

	w.Poll() // file absent: no event
	select {
	case ev := <-w.Events():
		t.Fatalf("unexpected event %+v for absent file", ev)
	default:
	}

	if err := fsys.Append("mod.log", []byte("data")); err != nil {
		t.Fatal(err)
	}
	w.Poll()
	select {
	case ev := <-w.Events():
		if ev.Name != "mod.log" || ev.Size != 4 {
			t.Fatalf("event = %+v", ev)
		}
	default:
		t.Fatal("no event after file creation")
	}

	// No change: no event.
	w.Poll()
	select {
	case ev := <-w.Events():
		t.Fatalf("spurious event %+v", ev)
	default:
	}

	if err := fsys.Append("mod.log", []byte("more")); err != nil {
		t.Fatal(err)
	}
	w.Poll()
	select {
	case ev := <-w.Events():
		if ev.Size != 8 {
			t.Fatalf("event size = %d, want 8", ev.Size)
		}
	default:
		t.Fatal("no event after append")
	}
}

func TestWatcherAddAllSeesNewFiles(t *testing.T) {
	fsys := DirFS(t.TempDir())
	w := NewWatcher(fsys, time.Hour)
	w.AddAll()
	w.Poll()
	if err := fsys.Append("later.log", []byte("x")); err != nil {
		t.Fatal(err)
	}
	w.Poll()
	select {
	case ev := <-w.Events():
		if ev.Name != "later.log" {
			t.Fatalf("event = %+v", ev)
		}
	default:
		t.Fatal("AddAll watcher missed new file")
	}
}

func TestWatcherDeleteAndReappear(t *testing.T) {
	fsys := DirFS(t.TempDir())
	w := NewWatcher(fsys, time.Hour)
	w.Add("a.log")
	if err := fsys.Append("a.log", []byte("x")); err != nil {
		t.Fatal(err)
	}
	w.Poll()
	<-w.Events()
	if err := fsys.Remove("a.log"); err != nil {
		t.Fatal(err)
	}
	w.Poll() // deletion itself: no event, but state forgotten
	if err := fsys.Append("a.log", []byte("x")); err != nil {
		t.Fatal(err)
	}
	w.Poll()
	select {
	case ev := <-w.Events():
		if ev.Name != "a.log" {
			t.Fatalf("event = %+v", ev)
		}
	default:
		t.Fatal("no event after reappearance")
	}
}
