package smartfam

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// drainEvents empties the watcher's event channel.
func drainEvents(w *Watcher) []Event {
	var evs []Event
	for {
		select {
		case ev := <-w.Events():
			evs = append(evs, ev)
		default:
			return evs
		}
	}
}

// TestWatcherMissesSameSizeSameMtimeRewrite pins down the documented
// missed-notification case: a file rewritten between polls to the same
// size and the same mtime yields no event. The loss is acceptable by
// design — see the Watcher doc and TestDaemonRescanRecoversWithoutEvents
// for the recovery path.
func TestWatcherMissesSameSizeSameMtimeRewrite(t *testing.T) {
	dir := t.TempDir()
	fsys := DirFS(dir)
	w := NewWatcher(fsys, time.Millisecond)
	w.Add("m.log")

	if err := fsys.Append("m.log", []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	w.Poll()
	if evs := drainEvents(w); len(evs) != 1 {
		t.Fatalf("initial write: %d events, want 1", len(evs))
	}
	_, mtime, err := fsys.Stat("m.log")
	if err != nil {
		t.Fatal(err)
	}

	// Rewrite twice within one "poll interval": the content changes, but
	// the file ends at its prior size, and restoring the timestamp models
	// a coarse-granularity mtime that never moved.
	path := filepath.Join(dir, "m.log")
	if err := os.WriteFile(path, []byte("interim!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("bbbb"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, mtime, mtime); err != nil {
		t.Fatal(err)
	}

	w.Poll()
	if evs := drainEvents(w); len(evs) != 0 {
		t.Fatalf("same-size same-mtime rewrite: %d events, want the documented miss", len(evs))
	}

	// Any observable change — here, growth — fires again.
	if err := fsys.Append("m.log", []byte("x")); err != nil {
		t.Fatal(err)
	}
	w.Poll()
	if evs := drainEvents(w); len(evs) != 1 {
		t.Fatalf("growth after miss: %d events, want 1", len(evs))
	}
}

// TestDaemonRescanRecoversWithoutEvents proves the sweep is a complete
// recovery path: with the watcher effectively disabled (one-hour poll
// interval, so no change notification ever fires), requests are still
// served within the rescan interval.
func TestDaemonRescanRecoversWithoutEvents(t *testing.T) {
	fsys := DirFS(t.TempDir())
	reg := NewRegistry(fsys)
	echo := ModuleFunc{
		ModuleName: "echo",
		Fn: func(_ context.Context, p []byte) ([]byte, error) {
			return p, nil
		},
	}
	if err := reg.Register(echo); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	d := NewDaemon(fsys, reg,
		WithPollInterval(time.Hour),
		WithRescanInterval(5*time.Millisecond))
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = d.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})

	client := NewClient(fsys, time.Millisecond)
	callCtx, callCancel := context.WithTimeout(ctx, 30*time.Second)
	defer callCancel()
	out, err := client.Invoke(callCtx, "echo", []byte("lost event"))
	if err != nil {
		t.Fatalf("rescan sweep did not recover the request: %v", err)
	}
	if string(out) != "lost event" {
		t.Fatalf("payload = %q", out)
	}
}
