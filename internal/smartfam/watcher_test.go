package smartfam

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// drainEvents empties the watcher's event channel.
func drainEvents(w *Watcher) []Event {
	var evs []Event
	for {
		select {
		case ev := <-w.Events():
			evs = append(evs, ev)
		default:
			return evs
		}
	}
}

// TestWatcherMissesSameSizeSameMtimeRewrite pins down the documented
// missed-notification case: a file rewritten between polls to the same
// size and the same mtime yields no event. The loss is acceptable by
// design — see the Watcher doc and TestDaemonRescanRecoversWithoutEvents
// for the recovery path.
func TestWatcherMissesSameSizeSameMtimeRewrite(t *testing.T) {
	dir := t.TempDir()
	fsys := DirFS(dir)
	w := NewWatcher(fsys, time.Millisecond)
	w.Add("m.log")

	if err := fsys.Append("m.log", []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	w.Poll()
	if evs := drainEvents(w); len(evs) != 1 {
		t.Fatalf("initial write: %d events, want 1", len(evs))
	}
	_, mtime, err := fsys.Stat("m.log")
	if err != nil {
		t.Fatal(err)
	}

	// Rewrite twice within one "poll interval": the content changes, but
	// the file ends at its prior size, and restoring the timestamp models
	// a coarse-granularity mtime that never moved.
	path := filepath.Join(dir, "m.log")
	if err := os.WriteFile(path, []byte("interim!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("bbbb"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, mtime, mtime); err != nil {
		t.Fatal(err)
	}

	w.Poll()
	if evs := drainEvents(w); len(evs) != 0 {
		t.Fatalf("same-size same-mtime rewrite: %d events, want the documented miss", len(evs))
	}

	// Any observable change — here, growth — fires again.
	if err := fsys.Append("m.log", []byte("x")); err != nil {
		t.Fatal(err)
	}
	w.Poll()
	if evs := drainEvents(w); len(evs) != 1 {
		t.Fatalf("growth after miss: %d events, want 1", len(evs))
	}
}

// genDirFS wraps an FS with a manually advanced change-generation counter,
// standing in for the nfs server's per-file generation tracking. Tests
// bump gens explicitly, keeping the ABA scenario fully deterministic.
type genDirFS struct {
	FS
	gens map[string]uint64
}

func (g *genDirFS) StatGen(name string) (int64, time.Time, uint64, error) {
	size, mtime, err := g.FS.Stat(name)
	return size, mtime, g.gens[name], err
}

// TestWatcherGenCatchesSameSizeSameMtimeRewrite is the regression test for
// the ABA fix: the very rewrite TestWatcherMissesSameSizeSameMtimeRewrite
// pins as a miss over a plain FS fires an event once the FS carries a
// change generation, because the server-side counter advanced even though
// size and mtime reverted within the poll window.
func TestWatcherGenCatchesSameSizeSameMtimeRewrite(t *testing.T) {
	dir := t.TempDir()
	fsys := &genDirFS{FS: DirFS(dir), gens: make(map[string]uint64)}
	w := NewWatcher(fsys, time.Millisecond)
	w.Add("m.log")

	if err := fsys.Append("m.log", []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	fsys.gens["m.log"]++
	w.Poll()
	if evs := drainEvents(w); len(evs) != 1 {
		t.Fatalf("initial write: %d events, want 1", len(evs))
	}
	_, mtime, err := fsys.Stat("m.log")
	if err != nil {
		t.Fatal(err)
	}

	// The ABA rewrite: same final size, timestamp restored — invisible to
	// (size, mtime) — but the generation advances per mutation, as the nfs
	// server does for every Append/Write it executes.
	path := filepath.Join(dir, "m.log")
	if err := os.WriteFile(path, []byte("interim!"), 0o644); err != nil {
		t.Fatal(err)
	}
	fsys.gens["m.log"]++
	if err := os.WriteFile(path, []byte("bbbb"), 0o644); err != nil {
		t.Fatal(err)
	}
	fsys.gens["m.log"]++
	if err := os.Chtimes(path, mtime, mtime); err != nil {
		t.Fatal(err)
	}

	w.Poll()
	if evs := drainEvents(w); len(evs) != 1 {
		t.Fatalf("gen-tracked ABA rewrite: %d events, want 1 (the fix)", len(evs))
	}

	// Stability: no further mutation, no further event.
	w.Poll()
	if evs := drainEvents(w); len(evs) != 0 {
		t.Fatalf("steady state: %d events, want 0", len(evs))
	}
}

// TestDaemonRescanRecoversWithoutEvents proves the sweep is a complete
// recovery path: with the watcher effectively disabled (one-hour poll
// interval, so no change notification ever fires), requests are still
// served within the rescan interval.
func TestDaemonRescanRecoversWithoutEvents(t *testing.T) {
	fsys := DirFS(t.TempDir())
	reg := NewRegistry(fsys)
	echo := ModuleFunc{
		ModuleName: "echo",
		Fn: func(_ context.Context, p []byte) ([]byte, error) {
			return p, nil
		},
	}
	if err := reg.Register(echo); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	d := NewDaemon(fsys, reg,
		WithPollInterval(time.Hour),
		WithRescanInterval(5*time.Millisecond))
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = d.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})

	client := NewClient(fsys, time.Millisecond)
	callCtx, callCancel := context.WithTimeout(ctx, 30*time.Second)
	defer callCancel()
	out, err := client.Invoke(callCtx, "echo", []byte("lost event"))
	if err != nil {
		t.Fatalf("rescan sweep did not recover the request: %v", err)
	}
	if string(out) != "lost event" {
		t.Fatalf("payload = %q", out)
	}
}
