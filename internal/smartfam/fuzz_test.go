package smartfam

import (
	"bytes"
	"testing"
)

// FuzzParseRecords asserts the log parser's contract on arbitrary bytes:
// it never panics, never consumes more than it was given, and anything it
// parses re-marshals to a prefix-equivalent log.
func FuzzParseRecords(f *testing.F) {
	req, _ := (Record{Kind: KindRequest, ID: "abc", Payload: []byte("p")}).Marshal()
	res, _ := (Record{Kind: KindResponse, ID: "abc", Status: StatusOK, Payload: []byte{0, 255}}).Marshal()
	f.Add(append(req, res...))
	f.Add([]byte("REQ x - -\n"))
	f.Add([]byte("RES x ok aGk=\npartial tail without newline"))
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("REQ"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, consumed, err := ParseRecords(data)
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d", consumed, len(data))
		}
		if err != nil {
			return
		}
		var remarshalled []byte
		for _, r := range recs {
			line, merr := r.Marshal()
			if merr != nil {
				t.Fatalf("parsed record does not re-marshal: %+v: %v", r, merr)
			}
			remarshalled = append(remarshalled, line...)
		}
		// Round trip: parsing the re-marshalled log yields the same records.
		recs2, consumed2, err2 := ParseRecords(remarshalled)
		if err2 != nil || consumed2 != len(remarshalled) || len(recs2) != len(recs) {
			t.Fatalf("re-parse mismatch: %d records vs %d (err %v)", len(recs2), len(recs), err2)
		}
		for i := range recs {
			if recs[i].Kind != recs2[i].Kind || recs[i].ID != recs2[i].ID ||
				recs[i].Status != recs2[i].Status || !bytes.Equal(recs[i].Payload, recs2[i].Payload) {
				t.Fatalf("record %d changed across round trip", i)
			}
		}
	})
}
