package smartfam

import (
	"bytes"
	"testing"
)

// FuzzParseRecords asserts the log parser's contract on arbitrary bytes:
// it never panics, never consumes more than it was given, never returns a
// record that fails its own checksum discipline (everything it returns
// re-marshals), and anything it parses re-marshals to a prefix-equivalent
// log. Corruption is reported through the count, never through err.
func FuzzParseRecords(f *testing.F) {
	req, _ := (Record{Kind: KindRequest, ID: "abc", Payload: []byte("p")}).Marshal()
	res, _ := (Record{Kind: KindResponse, ID: "abc", Status: StatusOK, Payload: []byte{0, 255}}).Marshal()
	f.Add(append(req, res...))
	f.Add([]byte("REQ x - -\n")) // legacy CRC-less line: corrupt now
	f.Add([]byte("RES x ok aGk=\npartial tail without newline"))
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("REQ"))
	// Truncated record: a full line cut mid-payload, terminated by the
	// next record's guard newline.
	f.Add(append(append([]byte{}, res[:len(res)/2]...), req...))
	// Bit-flipped record: one corrupted byte in an otherwise valid line.
	flipped := append([]byte{}, req...)
	if len(flipped) > 8 {
		flipped[8] ^= 0x01
	}
	f.Add(flipped)
	// Interleaved torn append: writer A's fragment fused against writer
	// B's complete record.
	f.Add(append(append([]byte{}, req[:len(req)-6]...), res...))
	// Corrupt line sandwiched between two valid records.
	f.Add(append(append(append([]byte{}, req...), []byte("garbage line\n")...), res...))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, consumed, corrupt, err := ParseRecords(data)
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d", consumed, len(data))
		}
		if corrupt < 0 {
			t.Fatalf("corrupt = %d", corrupt)
		}
		if err != nil {
			return
		}
		var remarshalled []byte
		for _, r := range recs {
			line, merr := r.Marshal()
			if merr != nil {
				t.Fatalf("parsed record does not re-marshal: %+v: %v", r, merr)
			}
			remarshalled = append(remarshalled, line...)
		}
		// Round trip: parsing the re-marshalled log yields the same
		// records, with nothing corrupt.
		recs2, consumed2, corrupt2, err2 := ParseRecords(remarshalled)
		if err2 != nil || corrupt2 != 0 || consumed2 != len(remarshalled) || len(recs2) != len(recs) {
			t.Fatalf("re-parse mismatch: %d records vs %d (corrupt %d, err %v)",
				len(recs2), len(recs), corrupt2, err2)
		}
		for i := range recs {
			if recs[i].Kind != recs2[i].Kind || recs[i].ID != recs2[i].ID ||
				recs[i].Status != recs2[i].Status || !bytes.Equal(recs[i].Payload, recs2[i].Payload) {
				t.Fatalf("record %d changed across round trip", i)
			}
		}
	})
}

// FuzzParseJournal holds the journal replay to the same standard: no
// panics, no hard errors — a corrupted journal degrades, never wedges.
func FuzzParseJournal(f *testing.F) {
	f.Add([]byte(string(journalLine(journalIntent, "id1", "mod", "0")) +
		string(journalLine(journalDone, "id1", "mod", StatusOK, "aGk=")) +
		string(journalLine(journalResp, "id1"))))
	f.Add([]byte("INTENT half a li"))
	f.Add([]byte("DONE id mod ok aGk= deadbeef\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, corrupt := parseJournal(data)
		if corrupt < 0 {
			t.Fatalf("corrupt = %d", corrupt)
		}
		for _, e := range entries {
			switch e.Kind {
			case journalIntent, journalDone, journalResp:
			default:
				t.Fatalf("invalid entry kind %q survived parsing", e.Kind)
			}
			if e.ID == "" {
				t.Fatalf("entry with empty ID survived parsing: %+v", e)
			}
		}
	})
}
