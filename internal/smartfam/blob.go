package smartfam

import (
	"errors"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
)

// Sealed blobs are the replicated-storage unit of the fleet tier: an
// opaque payload followed by a fixed-width trailer echoing the record wire
// format — a leading newline guard, a magic kind, the payload's CRC32
// (IEEE, like recordCRC) in hex, and the payload length in hex:
//
//	\nFRG1 <crc32:8 hex> <len:16 hex>\n
//
// The trailer is exactly BlobTrailerLen bytes, so a verifier can seek to
// size-BlobTrailerLen, parse it, and then stream the payload checking the
// CRC — no scan, no framing state. The leading newline keeps a sealed blob
// from ever gluing onto a preceding partial line if one is appended where
// line records live, mirroring the log format's resync guard.

// BlobTrailerLen is the fixed byte length of a sealed-blob trailer.
const BlobTrailerLen = 1 + len(blobMagic) + 1 + 8 + 1 + 16 + 1

// blobMagic identifies a sealed fragment trailer (version 1).
const blobMagic = "FRG1"

// ErrCorruptBlob reports a sealed blob whose trailer is missing/malformed
// or whose payload does not match the trailer's CRC32 — bit rot, a torn
// write, or an injected fault. The message is matched by
// IsCorruptBlobMessage after crossing the smartFAM wire as a ModuleError.
var ErrCorruptBlob = errors.New("smartfam: corrupt sealed blob")

// IsCorruptBlobMessage reports whether a module error message (which
// crosses the wire as flat text) originated from ErrCorruptBlob. The
// module side must wrap the sentinel with %w so its text survives
// verbatim.
func IsCorruptBlobMessage(msg string) bool {
	return strings.Contains(msg, ErrCorruptBlob.Error())
}

// BlobTrailer returns the BlobTrailerLen-byte trailer sealing payload.
func BlobTrailer(payload []byte) []byte {
	return fmt.Appendf(make([]byte, 0, BlobTrailerLen), "\n%s %08x %016x\n",
		blobMagic, crc32.ChecksumIEEE(payload), len(payload))
}

// SealBlob returns payload with its trailer appended (a new slice).
func SealBlob(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+BlobTrailerLen)
	out = append(out, payload...)
	return append(out, BlobTrailer(payload)...)
}

// ParseBlobTrailer decodes a BlobTrailerLen-byte trailer into the payload
// length and CRC32 it pins. Errors wrap ErrCorruptBlob.
func ParseBlobTrailer(trailer []byte) (payloadLen int64, crc uint32, err error) {
	if len(trailer) != BlobTrailerLen ||
		trailer[0] != '\n' || trailer[BlobTrailerLen-1] != '\n' {
		return 0, 0, fmt.Errorf("%w: bad trailer framing", ErrCorruptBlob)
	}
	fields := strings.Split(string(trailer[1:BlobTrailerLen-1]), " ")
	if len(fields) != 3 || fields[0] != blobMagic {
		return 0, 0, fmt.Errorf("%w: bad trailer magic", ErrCorruptBlob)
	}
	c, err := strconv.ParseUint(fields[1], 16, 32)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: bad trailer crc", ErrCorruptBlob)
	}
	n, err := strconv.ParseInt(fields[2], 16, 64)
	if err != nil || n < 0 {
		return 0, 0, fmt.Errorf("%w: bad trailer length", ErrCorruptBlob)
	}
	return n, uint32(c), nil
}

// VerifyBlob checks a raw sealed blob (payload + trailer) and returns the
// payload. Errors wrap ErrCorruptBlob.
func VerifyBlob(raw []byte) ([]byte, error) {
	if len(raw) < BlobTrailerLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the trailer", ErrCorruptBlob, len(raw))
	}
	payloadLen, crc, err := ParseBlobTrailer(raw[len(raw)-BlobTrailerLen:])
	if err != nil {
		return nil, err
	}
	if payloadLen != int64(len(raw)-BlobTrailerLen) {
		return nil, fmt.Errorf("%w: trailer pins %d payload bytes, have %d",
			ErrCorruptBlob, payloadLen, len(raw)-BlobTrailerLen)
	}
	payload := raw[:payloadLen]
	if got := crc32.ChecksumIEEE(payload); got != crc {
		return nil, fmt.Errorf("%w: crc %08x, trailer pins %08x", ErrCorruptBlob, got, crc)
	}
	return payload, nil
}
