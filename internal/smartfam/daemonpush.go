package smartfam

import (
	"context"
	"errors"
	"sync"
	"time"

	"mcsd/internal/metrics"
	"mcsd/internal/trace"
)

// This file is the SD-node half of the fam v2 push-mode front door:
//
//   - runNotify feeds the daemon's dispatch loop with changed log names.
//     When the share implements WatchFS it arms ONE server-push stream
//     over the whole share and the polling Watcher stays parked; the
//     moment the stream dies (connection loss, server restart) the
//     watcher engages at the classic poll interval and the loop
//     periodically tries to re-arm push. A share that can never push
//     (DirFS, legacy gob wire) runs pure polling from the start. The
//     rescan sweep in Run stays on in every mode — it remains the source
//     of truth for lost notifications.
//   - respBatcher is the response-side group commit, enabled with
//     WithResponseBatching: completed executions coalesce their response
//     records into one share append per batch window. DONE is journaled
//     per record BEFORE it joins a batch and RESP per record after the
//     batch lands, so the journal's exactly-once argument is untouched —
//     a crash between the two replays cached responses, never re-runs.

// rearmEvery is how many degraded-mode poll ticks pass between attempts
// to re-arm the push stream.
const rearmEvery = 100

// WithResponseBatching turns on daemon-side group commit for response
// records with the given bounds (<= 0 selects DefaultBatchBytes /
// DefaultBatchDelay). Off by default: the classic one-append-per-response
// path is the reference behaviour.
func WithResponseBatching(maxBytes int, maxDelay time.Duration) DaemonOption {
	return func(dm *Daemon) {
		if maxBytes <= 0 {
			maxBytes = DefaultBatchBytes
		}
		if maxDelay <= 0 {
			maxDelay = DefaultBatchDelay
		}
		dm.respBytes, dm.respDelay = maxBytes, maxDelay
	}
}

// runNotify multiplexes change notifications into names until ctx is
// done. Push mode is reported on the smartfam.fam.push_active gauge (one
// trace span covers each stream attachment); every fallback transition
// counts under smartfam.fam.degraded.
func (d *Daemon) runNotify(ctx context.Context, names chan<- string) {
	wfs, _ := d.fs.(WatchFS)
	w := NewWatcher(d.fs, d.interval)
	w.AddAll()

	var (
		st   WatchStream
		span *trace.Span
	)
	arm := func() {
		if wfs == nil || st != nil {
			return
		}
		s, err := wfs.Watch("")
		if err != nil {
			if errors.Is(err, ErrWatchUnsupported) {
				wfs = nil // permanent: stop probing
			}
			return
		}
		st = s
		span = d.tracer.Start(trace.SpanFamPush)
		d.metrics.Gauge(metrics.FamPushActive).Set(1)
	}
	degrade := func() {
		st = nil
		span.Finish()
		span = nil
		d.metrics.Gauge(metrics.FamPushActive).Set(0)
		d.metrics.Counter(metrics.FamDegraded).Inc()
	}
	arm()
	if st == nil {
		// Could not push from the start (legacy wire, plain DirFS):
		// degraded is the daemon's standing mode, note it once.
		d.metrics.Counter(metrics.FamDegraded).Inc()
	}
	defer func() {
		if st != nil {
			st.Close()
			span.Finish()
			d.metrics.Gauge(metrics.FamPushActive).Set(0)
		}
	}()

	forward := func(name string) bool {
		select {
		case names <- name:
			return true
		case <-ctx.Done():
			return false
		}
	}

	tick := time.NewTicker(d.interval)
	defer tick.Stop()
	sinceArm := 0
	for {
		var events <-chan WatchEvent
		if st != nil {
			events = st.Events()
		}
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-events:
			if !ok {
				degrade()
				sinceArm = 0
				continue
			}
			d.metrics.Counter(metrics.FamPushEvents).Inc()
			if !forward(ev.Name) {
				return
			}
		case <-tick.C:
			if st != nil {
				continue // push carries the load; the tick just idles
			}
			w.Poll()
		drain:
			for {
				select {
				case ev := <-w.Events():
					if !forward(ev.Name) {
						return
					}
				default:
					break drain
				}
			}
			if sinceArm++; sinceArm >= rearmEvery {
				sinceArm = 0
				arm()
			}
		}
	}
}

// respBatch is one in-flight response group commit.
type respBatch struct {
	buf    []byte
	ids    []string
	closed bool          // guarded by respBatcher.mu
	full   chan struct{} // closed when buf reaches the byte bound
}

// respBatcher group-commits response records for one module log, the
// flush side of the host's appendBatcher mirror: the first enqueuer spawns
// the batch's leader goroutine and every enqueuer returns immediately, so
// a worker is never parked behind the batch window — the responder's
// throughput stays workers-independent. The leader owns the flush and the
// per-record RESP journalling.
type respBatcher struct {
	d       *Daemon
	module  string
	logName string

	mu  sync.Mutex
	cur *respBatch
}

// respBatcherFor returns the batcher for module, or nil when response
// batching is disabled.
func (d *Daemon) respBatcherFor(module string) *respBatcher {
	if d.respBytes <= 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	b := d.respBatchers[module]
	if b == nil {
		b = &respBatcher{d: d, module: module, logName: LogName(module)}
		if d.respBatchers == nil {
			d.respBatchers = make(map[string]*respBatcher)
		}
		d.respBatchers[module] = b
	}
	return b
}

// enqueue joins the current batch with one marshalled response line and
// returns immediately: the record's fate is the batch leader's business.
// By this point the response is cached and journaled DONE, so whether the
// flush lands (RESP journaled) or dies with the daemon (restart replays
// the cache), exactly-once holds without the worker waiting around.
func (b *respBatcher) enqueue(ctx context.Context, reqID string, line []byte) {
	d := b.d
	b.mu.Lock()
	leader := false
	if b.cur == nil {
		b.cur = &respBatch{full: make(chan struct{})}
		leader = true
	}
	batch := b.cur
	batch.buf = append(batch.buf, line...)
	batch.ids = append(batch.ids, reqID)
	if len(batch.buf) >= d.respBytes && !batch.closed {
		batch.closed = true
		close(batch.full)
		b.cur = nil
	}
	b.mu.Unlock()

	if leader {
		// lead performs exactly one bounded flush and returns: the window
		// wait is capped by respDelay (ctx cancellation short-circuits it)
		// and the retry loop by respondAttempts with finite backoffs.
		go b.lead(ctx, batch)
	}
}

// lead waits out the batch window, detaches the batch and flushes it with
// the respond path's bounded retry. On success every member's RESP is
// journaled; on final failure the responses stay cached and journaled
// DONE, so a restart (or a host retry) replays them.
func (b *respBatcher) lead(ctx context.Context, batch *respBatch) {
	d := b.d
	b.mu.Lock()
	closed := batch.closed
	b.mu.Unlock()
	if !closed {
		timer := time.NewTimer(d.respDelay)
		select {
		case <-batch.full:
		case <-timer.C:
		case <-ctx.Done():
			// Shutting down: flush immediately rather than hold the batch
			// open across the daemon's exit.
		}
		timer.Stop()
		b.mu.Lock()
		if b.cur == batch {
			b.cur = nil
		}
		batch.closed = true
		b.mu.Unlock()
	}
	backoff := respondBackoff
	landed := false
	for attempt := 0; attempt < respondAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				attempt = respondAttempts
			case <-time.After(backoff):
			}
			if attempt >= respondAttempts {
				break
			}
			backoff *= 2
		}
		// Leading newlines per record keep a whole-batch retry after a torn
		// append safe, exactly as on the single-record path.
		if err := d.fs.Append(b.logName, batch.buf); err == nil {
			landed = true
			break
		}
		d.metrics.Counter(metrics.DaemonAppendErrors).Inc()
	}
	if landed {
		d.metrics.Counter(metrics.FamRespFlushes).Inc()
		d.metrics.Counter(metrics.FamRespRecords).Add(int64(len(batch.ids)))
		for _, id := range batch.ids {
			if err := d.journal.Resp(id); err != nil {
				d.metrics.Counter(metrics.DaemonJournalErrors).Inc()
			}
		}
	} else {
		d.metrics.Counter(metrics.SmartfamRespondErrors).Add(int64(len(batch.ids)))
	}
}
