package smartfam

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Module is one data-intensive processing module preloaded into (or
// uploaded to) a McSD node. Run receives the raw parameter payload from the
// host and returns the raw result payload.
type Module interface {
	Name() string
	Run(ctx context.Context, params []byte) ([]byte, error)
}

// ModuleFunc adapts a function to the Module interface.
type ModuleFunc struct {
	ModuleName string
	Fn         func(ctx context.Context, params []byte) ([]byte, error)
}

// Name returns the module name.
func (m ModuleFunc) Name() string { return m.ModuleName }

// Run invokes the function.
func (m ModuleFunc) Run(ctx context.Context, params []byte) ([]byte, error) {
	return m.Fn(ctx, params)
}

// ErrUnknownModule reports an invocation of a module that is not loaded.
var ErrUnknownModule = errors.New("smartfam: unknown module")

// Registry holds the modules loaded on one SD node. Registering a module
// creates its log file on the share ("when a new data-intensive module is
// preloaded to the McSD node, a corresponding log-file is created", §IV-A),
// which is also how the host discovers what it can call. The paper's §VI
// names module extensibility as future work; Register at runtime provides
// it. Safe for concurrent use.
type Registry struct {
	fs      FS
	mu      sync.Mutex
	modules map[string]Module
	// pending reserves names mid-Register, so the share I/O (log probe and
	// create) can run outside the lock without two concurrent Registers of
	// the same name both passing the duplicate check. Lookup sits on the
	// daemon's per-request hot path; it must never wait out a share RPC.
	pending map[string]bool
}

// NewRegistry returns an empty registry whose log files live on fsys.
func NewRegistry(fsys FS) *Registry {
	return &Registry{fs: fsys, modules: make(map[string]Module), pending: make(map[string]bool)}
}

// Register loads a module and creates its log file if it does not already
// exist. An existing log is kept as-is: a restarted daemon re-registering
// its modules must not truncate away requests appended while it was down
// (crash recovery depends on them surviving).
func (r *Registry) Register(m Module) error {
	name := m.Name()
	if name == "" {
		return errors.New("smartfam: module must have a name")
	}
	r.mu.Lock()
	if _, dup := r.modules[name]; dup || r.pending[name] {
		r.mu.Unlock()
		return fmt.Errorf("smartfam: module %q already registered", name)
	}
	r.pending[name] = true
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.pending, name)
		r.mu.Unlock()
	}()
	if _, _, err := r.fs.Stat(LogName(name)); errors.Is(err, ErrNotExist) {
		if err := r.fs.Create(LogName(name)); err != nil {
			return fmt.Errorf("smartfam: creating log for %q: %w", name, err)
		}
	} else if err != nil {
		return fmt.Errorf("smartfam: probing log for %q: %w", name, err)
	}
	r.mu.Lock()
	r.modules[name] = m
	r.mu.Unlock()
	return nil
}

// Unregister removes a module and deletes its log file. The module stops
// resolving immediately; the file removals run after the lock is released
// (a failure leaves the module unregistered with its files orphaned, which
// a re-Register after restart tolerates).
func (r *Registry) Unregister(name string) error {
	r.mu.Lock()
	if _, ok := r.modules[name]; !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownModule, name)
	}
	delete(r.modules, name)
	r.mu.Unlock()
	if err := r.fs.Remove(LogName(name)); err != nil && !errors.Is(err, ErrNotExist) {
		return fmt.Errorf("smartfam: removing log for %q: %w", name, err)
	}
	if err := r.fs.Remove(GenName(name)); err != nil && !errors.Is(err, ErrNotExist) {
		return fmt.Errorf("smartfam: removing generation file for %q: %w", name, err)
	}
	return nil
}

// Lookup returns the named module.
func (r *Registry) Lookup(name string) (Module, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.modules[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModule, name)
	}
	return m, nil
}

// Names returns the registered module names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.modules))
	for n := range r.modules {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
