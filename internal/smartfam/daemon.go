package smartfam

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"mcsd/internal/metrics"
	"mcsd/internal/sched"
)

// Daemon is the SD-node side of smartFAM (Fig. 5, steps 2-4 of parameter
// passing): it watches every module log file on the share, and when the
// host appends a request, it retrieves the parameters, invokes the module,
// and appends the results as a response record.
//
// With a scheduler attached (WithScheduler), requests are submitted to it
// instead of being invoked inline: the scheduler's worker pool drains the
// queue in fair order under memory-aware admission control, and a full
// queue is reported back to the caller through the result record as an
// error response — backpressure instead of a silent stall.
type Daemon struct {
	fs        FS
	reg       *Registry
	interval  time.Duration
	heartbeat time.Duration
	rescan    time.Duration
	workers   int
	metrics   *metrics.Registry
	sched     *sched.Scheduler
	estimate  sched.Estimator

	mu        sync.Mutex
	offsets   map[string]int64 // consumed bytes per log file
	gens      map[string]int64 // observed compaction generation per log
	responded map[string]struct{}
}

// DaemonOption configures a Daemon.
type DaemonOption func(*Daemon)

// WithPollInterval sets the watcher poll interval.
func WithPollInterval(d time.Duration) DaemonOption {
	return func(dm *Daemon) { dm.interval = d }
}

// WithWorkers bounds concurrent module invocations — the number of cores
// the SD node dedicates to data-intensive modules.
func WithWorkers(n int) DaemonOption {
	return func(dm *Daemon) {
		if n > 0 {
			dm.workers = n
		}
	}
}

// WithMetrics attaches a metrics registry.
func WithMetrics(m *metrics.Registry) DaemonOption {
	return func(dm *Daemon) { dm.metrics = m }
}

// WithHeartbeat sets the liveness-stamp refresh interval; a negative value
// disables the heartbeat entirely.
func WithHeartbeat(d time.Duration) DaemonOption {
	return func(dm *Daemon) { dm.heartbeat = d }
}

// WithRescanInterval overrides how often the daemon sweeps every log file
// for requests whose change notification was lost (default 50× the poll
// interval, floored at 20ms). The sweep is the recovery path for the
// watcher's acceptable-loss case — see Watcher.
func WithRescanInterval(d time.Duration) DaemonOption {
	return func(dm *Daemon) {
		if d > 0 {
			dm.rescan = d
		}
	}
}

// WithScheduler routes module invocations through a job scheduler instead
// of the inline bounded-goroutine path. The daemon drives the scheduler's
// Run loop and publishes its queue status on the share (QueueStatusName)
// for mcsdctl's queue verb. The scheduler's executor — not the daemon —
// decides how a job runs; build it over this daemon's Registry.
func WithScheduler(s *sched.Scheduler) DaemonOption {
	return func(dm *Daemon) { dm.sched = s }
}

// WithFootprintEstimator sizes jobs for the scheduler's memory-aware
// admission control (no estimator = every job admits freely).
func WithFootprintEstimator(est sched.Estimator) DaemonOption {
	return func(dm *Daemon) { dm.estimate = est }
}

// NewDaemon returns a daemon serving the modules of reg over the share
// fsys.
func NewDaemon(fsys FS, reg *Registry, opts ...DaemonOption) *Daemon {
	d := &Daemon{
		fs:        fsys,
		reg:       reg,
		interval:  DefaultPollInterval,
		heartbeat: DefaultHeartbeatInterval,
		workers:   2,
		metrics:   metrics.NewRegistry(),
		offsets:   make(map[string]int64),
		gens:      make(map[string]int64),
		responded: make(map[string]struct{}),
	}
	for _, o := range opts {
		o(d)
	}
	return d
}

// Metrics returns the daemon's metrics registry.
func (d *Daemon) Metrics() *metrics.Registry { return d.metrics }

// Run serves until ctx is done. It always returns ctx.Err().
func (d *Daemon) Run(ctx context.Context) error {
	w := NewWatcher(d.fs, d.interval)
	w.AddAll()
	go w.Run(ctx) //nolint:errcheck // terminates with ctx
	if d.heartbeat >= 0 {
		go RunHeartbeat(ctx, d.fs, d.heartbeat) //nolint:errcheck // terminates with ctx
	}
	if d.sched != nil {
		go d.sched.Run(ctx)          //nolint:errcheck // terminates with ctx
		go d.publishQueueStatus(ctx) //nolint:errcheck // terminates with ctx
	}

	sem := make(chan struct{}, d.workers)
	var wg sync.WaitGroup
	defer wg.Wait()

	dispatch := func(logName string) error {
		module, ok := ModuleFromLog(logName)
		if !ok {
			return nil
		}
		for _, req := range d.drainRequests(logName) {
			req := req
			if d.sched != nil {
				d.submit(ctx, &wg, module, req)
				continue
			}
			wg.Add(1)
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				wg.Done()
				return ctx.Err()
			}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				d.serve(ctx, module, req)
			}()
		}
		return nil
	}

	// Change notifications are the fast path; the rescan sweep is the
	// safety net that recovers requests whose event was dropped (watcher
	// backlog, or the missed-notification case documented on Watcher) or
	// whose drain hit a transient share error.
	rescanEvery := d.rescan
	if rescanEvery <= 0 {
		rescanEvery = 50 * d.interval
		if rescanEvery < 20*time.Millisecond {
			rescanEvery = 20 * time.Millisecond
		}
	}
	rescan := time.NewTicker(rescanEvery)
	defer rescan.Stop()

	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case ev := <-w.Events():
			if err := dispatch(ev.Name); err != nil {
				return err
			}
		case <-rescan.C:
			names, err := d.fs.List()
			if err != nil {
				continue // transient; the next sweep retries
			}
			for _, name := range names {
				if err := dispatch(name); err != nil {
					return err
				}
			}
		}
	}
}

// drainRequests reads new records from the log and returns the unanswered
// requests. Responses (including our own) advance the offset and mark IDs
// answered, so restarts and echoes are harmless.
func (d *Daemon) drainRequests(logName string) []Record {
	module, _ := ModuleFromLog(logName)
	d.mu.Lock()
	off := d.offsets[logName]
	lastGen := d.gens[logName]
	d.mu.Unlock()

	// A changed compaction generation (or a log smaller than our offset)
	// means the saved offset points into a different file image: restart
	// from the top. The responded set keeps replayed requests idempotent.
	gen := ReadGeneration(d.fs, module)
	size, _, statErr := d.fs.Stat(logName)
	if gen != lastGen || (statErr == nil && size < off) {
		off = 0
		d.mu.Lock()
		d.offsets[logName] = 0
		d.gens[logName] = gen
		d.mu.Unlock()
	}

	data, err := ReadFrom(d.fs, logName, off)
	if err != nil || len(data) == 0 {
		return nil
	}
	recs, consumed, err := ParseRecords(data)
	if err != nil {
		d.metrics.Counter("smartfam.daemon.parse_errors").Inc()
		// Skip the poisoned region to avoid wedging on one bad line.
		d.mu.Lock()
		d.offsets[logName] = off + int64(len(data))
		d.mu.Unlock()
		return nil
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	d.offsets[logName] = off + int64(consumed)
	var reqs []Record
	for _, rec := range recs {
		switch rec.Kind {
		case KindResponse:
			d.responded[rec.ID] = struct{}{}
		case KindRequest:
			if _, done := d.responded[rec.ID]; !done {
				reqs = append(reqs, rec)
			}
		}
	}
	return reqs
}

// serve runs one module invocation and appends the response record
// (steps 3-4 of Fig. 5's parameter passing, step 1 of result return).
func (d *Daemon) serve(ctx context.Context, module string, req Record) {
	d.metrics.Counter("smartfam.daemon.requests").Inc()
	timer := d.metrics.Timer("smartfam.daemon.invoke")
	start := time.Now()

	var (
		payload []byte
		status  = StatusOK
	)
	m, err := d.reg.Lookup(module)
	if err == nil {
		payload, err = runGuarded(ctx, m, req.Payload)
	}
	if err != nil {
		status = StatusError
		payload = []byte(err.Error())
		d.metrics.Counter("smartfam.daemon.errors").Inc()
	}
	timer.Observe(time.Since(start))
	d.respond(module, req.ID, status, payload)
}

// respond appends the response record for one request and marks it
// answered.
func (d *Daemon) respond(module, reqID, status string, payload []byte) {
	res := Record{Kind: KindResponse, ID: reqID, Status: status, Payload: payload}
	line, err := res.Marshal()
	if err != nil {
		d.metrics.Counter("smartfam.daemon.marshal_errors").Inc()
		return
	}
	d.mu.Lock()
	d.responded[reqID] = struct{}{}
	d.mu.Unlock()
	if err := d.fs.Append(LogName(module), line); err != nil {
		d.metrics.Counter("smartfam.daemon.append_errors").Inc()
	}
}

// submit routes one request through the scheduler (steps 3-4 of Fig. 5
// under admission control). A rejected submission — queue full, scheduler
// stopped — is answered immediately with an error response so the remote
// caller sees backpressure instead of a stall.
func (d *Daemon) submit(ctx context.Context, wg *sync.WaitGroup, module string, req Record) {
	d.metrics.Counter("smartfam.daemon.requests").Inc()
	in, factor := int64(0), 0.0
	if d.estimate != nil {
		in, factor = d.estimate(module, req.Payload)
	}
	h, err := d.sched.Submit(ctx, &sched.Job{
		ID:              req.ID,
		Tenant:          module,
		Module:          module,
		Payload:         req.Payload,
		InputBytes:      in,
		FootprintFactor: factor,
	})
	if err != nil {
		if errors.Is(err, sched.ErrQueueFull) {
			d.metrics.Counter("smartfam.daemon.queue_full").Inc()
		}
		d.metrics.Counter("smartfam.daemon.errors").Inc()
		d.respond(module, req.ID, StatusError, []byte(err.Error()))
		return
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		payload, err := h.Wait(ctx)
		if err != nil {
			d.metrics.Counter("smartfam.daemon.errors").Inc()
			d.respond(module, req.ID, StatusError, []byte(err.Error()))
			return
		}
		d.respond(module, req.ID, StatusOK, payload)
	}()
}

// QueueStatusName is the share file carrying the scheduler's published
// Status (JSON). Like the heartbeat it is not a module log, so discovery
// ignores it; mcsdctl's queue verb reads it.
const QueueStatusName = ".queue"

// DefaultQueueStatusInterval is how often an attached scheduler's status
// is republished.
const DefaultQueueStatusInterval = 250 * time.Millisecond

// publishQueueStatus rewrites QueueStatusName until ctx is done.
func (d *Daemon) publishQueueStatus(ctx context.Context) error {
	write := func() {
		data, err := sched.MarshalStatus(d.sched.Status())
		if err != nil {
			return
		}
		if err := d.fs.Create(QueueStatusName); err != nil {
			return
		}
		_ = d.fs.Append(QueueStatusName, data)
	}
	write()
	ticker := time.NewTicker(DefaultQueueStatusInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			write()
		}
	}
}

// runGuarded converts module panics into errors so one bad invocation
// cannot kill the daemon.
func runGuarded(ctx context.Context, m Module, params []byte) (out []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("smartfam: module %q panicked: %v", m.Name(), r)
		}
	}()
	return m.Run(ctx, params)
}
