package smartfam

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"mcsd/internal/metrics"
	"mcsd/internal/sched"
	"mcsd/internal/trace"
)

// Daemon is the SD-node side of smartFAM (Fig. 5, steps 2-4 of parameter
// passing): it watches every module log file on the share, and when the
// host appends a request, it retrieves the parameters, invokes the module,
// and appends the results as a response record.
//
// With a scheduler attached (WithScheduler), requests are submitted to it
// instead of being invoked inline: the scheduler's worker pool drains the
// queue in fair order under memory-aware admission control, and a full
// queue is reported back to the caller through the result record as an
// error response — backpressure instead of a silent stall.
//
// With a journal attached (WithJournal), the daemon is crash-safe: every
// request is journaled through INTENT → DONE → RESP states on local disk,
// a restarted daemon replays unfinished work exactly once (cached results
// are re-appended, never re-executed), and duplicate requests — host
// retries reusing the original ID — are answered from the cache. See the
// package comment in journal.go for the full argument.
type Daemon struct {
	fs             FS
	reg            *Registry
	interval       time.Duration
	heartbeat      time.Duration
	rescan         time.Duration
	statusInterval time.Duration
	workers        int
	metrics        *metrics.Registry
	tracer         *trace.Tracer
	sched          *sched.Scheduler
	estimate       sched.Estimator

	journalPath string
	journal     *Journal
	journalErr  error
	recovery    *JournalState

	// Response-side group commit (daemonpush.go); respBytes == 0 keeps the
	// classic one-append-per-response path.
	respBytes    int
	respDelay    time.Duration
	respBatchers map[string]*respBatcher // guarded by mu

	mu         sync.Mutex
	offsets    map[string]int64 // consumed bytes per log file
	gens       map[string]int64 // observed compaction generation per log
	responded  map[string]struct{}
	completed  map[string]CachedResponse // bounded dedupe/replay cache
	cacheOrder []string
}

// DaemonOption configures a Daemon.
type DaemonOption func(*Daemon)

// WithPollInterval sets the watcher poll interval.
func WithPollInterval(d time.Duration) DaemonOption {
	return func(dm *Daemon) { dm.interval = d }
}

// WithWorkers bounds concurrent module invocations — the number of cores
// the SD node dedicates to data-intensive modules.
func WithWorkers(n int) DaemonOption {
	return func(dm *Daemon) {
		if n > 0 {
			dm.workers = n
		}
	}
}

// WithMetrics attaches a metrics registry.
func WithMetrics(m *metrics.Registry) DaemonOption {
	return func(dm *Daemon) { dm.metrics = m }
}

// WithTracer records spans for the daemon's recovery pass and replayed
// requests, renderable with trace.Render.
func WithTracer(tr *trace.Tracer) DaemonOption {
	return func(dm *Daemon) { dm.tracer = tr }
}

// WithHeartbeat sets the liveness-stamp refresh interval; a negative value
// disables the heartbeat entirely.
func WithHeartbeat(d time.Duration) DaemonOption {
	return func(dm *Daemon) { dm.heartbeat = d }
}

// WithRescanInterval overrides how often the daemon sweeps every log file
// for requests whose change notification was lost (default 50× the poll
// interval, floored at 20ms). The sweep is the recovery path for the
// watcher's acceptable-loss case — see Watcher.
func WithRescanInterval(d time.Duration) DaemonOption {
	return func(dm *Daemon) {
		if d > 0 {
			dm.rescan = d
		}
	}
}

// WithScheduler routes module invocations through a job scheduler instead
// of the inline bounded-goroutine path. The daemon drives the scheduler's
// Run loop and publishes its queue status on the share (QueueStatusName)
// for mcsdctl's queue verb. The scheduler's executor — not the daemon —
// decides how a job runs; build it over this daemon's Registry.
func WithScheduler(s *sched.Scheduler) DaemonOption {
	return func(dm *Daemon) { dm.sched = s }
}

// WithFootprintEstimator sizes jobs for the scheduler's memory-aware
// admission control (no estimator = every job admits freely).
func WithFootprintEstimator(est sched.Estimator) DaemonOption {
	return func(dm *Daemon) { dm.estimate = est }
}

// WithJournal enables the crash-recovery journal at the given local path.
// NewDaemon opens and replays it immediately (the recovery pass); the
// replayed work itself — cached-response re-appends and intent re-runs —
// happens at the start of Run, before any new request is served.
func WithJournal(path string) DaemonOption {
	return func(dm *Daemon) { dm.journalPath = path }
}

// WithStatusInterval overrides how often the queue/journal status snapshot
// is republished on the share.
func WithStatusInterval(d time.Duration) DaemonOption {
	return func(dm *Daemon) {
		if d > 0 {
			dm.statusInterval = d
		}
	}
}

// NewDaemon returns a daemon serving the modules of reg over the share
// fsys. When a journal path is configured, the journal is opened and
// replayed here; an open failure is surfaced by Run.
func NewDaemon(fsys FS, reg *Registry, opts ...DaemonOption) *Daemon {
	d := &Daemon{
		fs:             fsys,
		reg:            reg,
		interval:       DefaultPollInterval,
		heartbeat:      DefaultHeartbeatInterval,
		statusInterval: DefaultQueueStatusInterval,
		workers:        2,
		metrics:        metrics.NewRegistry(),
		offsets:        make(map[string]int64),
		gens:           make(map[string]int64),
		responded:      make(map[string]struct{}),
		completed:      make(map[string]CachedResponse),
	}
	for _, o := range opts {
		o(d)
	}
	if d.journalPath != "" {
		j, state, err := OpenJournal(d.journalPath)
		if err != nil {
			d.journalErr = err
			return d
		}
		d.journal = j
		d.recovery = state
		d.metrics.Counter(metrics.SmartfamCorruptRecords).Add(int64(state.Corrupt))
		// Seed the dedupe cache with every completed execution the
		// journal remembers.
		for id, c := range state.Completed {
			d.cacheLocked(id, c)
		}
	}
	return d
}

// Metrics returns the daemon's metrics registry.
func (d *Daemon) Metrics() *metrics.Registry { return d.metrics }

// Run serves until ctx is done. It always returns ctx.Err(), except when
// the configured journal could not be opened.
func (d *Daemon) Run(ctx context.Context) error {
	if d.journalErr != nil {
		return d.journalErr
	}
	// Crash recovery replays unfinished journal entries before any new
	// work: cached responses are re-appended, open intents re-executed.
	d.recoverPass(ctx)

	// Change-notification source: server-push stream when the share can
	// provide one, the polling watcher otherwise (and on stream loss) —
	// see runNotify.
	changed := make(chan string, 64)
	go d.runNotify(ctx, changed)
	if d.heartbeat >= 0 {
		go RunHeartbeat(ctx, d.fs, d.heartbeat) //nolint:errcheck // terminates with ctx
	}
	if d.sched != nil {
		go d.sched.Run(ctx) //nolint:errcheck // terminates with ctx
	}
	if d.sched != nil || d.journal != nil {
		go d.publishQueueStatus(ctx) //nolint:errcheck // terminates with ctx
	}

	sem := make(chan struct{}, d.workers)
	var wg sync.WaitGroup
	defer wg.Wait()

	dispatch := func(logName string) error {
		module, ok := ModuleFromLog(logName)
		if !ok {
			return nil
		}
		for _, req := range d.drainRequests(ctx, logName) {
			req := req
			if d.sched != nil {
				d.submit(ctx, &wg, module, req)
				continue
			}
			wg.Add(1)
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				wg.Done()
				return ctx.Err()
			}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				d.serve(ctx, module, req)
			}()
		}
		return nil
	}

	// Change notifications are the fast path; the rescan sweep is the
	// safety net that recovers requests whose event was dropped (watcher
	// backlog, or the missed-notification case documented on Watcher) or
	// whose drain hit a transient share error.
	rescanEvery := d.rescan
	if rescanEvery <= 0 {
		rescanEvery = 50 * d.interval
		if rescanEvery < 20*time.Millisecond {
			rescanEvery = 20 * time.Millisecond
		}
	}
	rescan := time.NewTicker(rescanEvery)
	defer rescan.Stop()

	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case name := <-changed:
			if err := dispatch(name); err != nil {
				return err
			}
		case <-rescan.C:
			names, err := d.fs.List()
			if err != nil {
				continue // transient; the next sweep retries
			}
			for _, name := range names {
				if err := dispatch(name); err != nil {
					return err
				}
			}
		}
	}
}

// shareIndex is a point-in-time scan of every module log, used by the
// recovery pass to locate requests by ID and to avoid duplicating
// responses that already reached the share.
type shareIndex struct {
	requests  map[string]Record // pending request records by ID
	reqModule map[string]string
	responded map[string]struct{}
}

func (d *Daemon) scanShare(ctx context.Context) shareIndex {
	idx := shareIndex{
		requests:  make(map[string]Record),
		reqModule: make(map[string]string),
		responded: make(map[string]struct{}),
	}
	// The scan backs the recovery pass: a transient share error here would
	// silently misclassify open intents as lost, so retry with the same
	// bounded backoff the response path uses.
	var names []string
	if err := retryShare(ctx, func() error {
		var err error
		names, err = d.fs.List()
		return err
	}); err != nil {
		return idx
	}
	for _, name := range names {
		module, ok := ModuleFromLog(name)
		if !ok {
			continue
		}
		var data []byte
		err := retryShare(ctx, func() error {
			var err error
			data, err = ReadFrom(d.fs, name, 0)
			return err
		})
		if err != nil || len(data) == 0 {
			continue
		}
		recs, _, corrupt, _ := ParseRecords(data)
		d.metrics.Counter(metrics.SmartfamCorruptRecords).Add(int64(corrupt))
		for _, rec := range recs {
			switch rec.Kind {
			case KindRequest:
				idx.requests[rec.ID] = rec
				idx.reqModule[rec.ID] = module
			case KindResponse:
				idx.responded[rec.ID] = struct{}{}
			}
		}
	}
	return idx
}

// recoverPass finishes what a crashed predecessor started: DONE entries
// whose response never reached the log get their cached result
// re-appended (no re-execution); INTENT entries with no DONE are re-run.
// Everything it touches is marked responded so the main loop's drain —
// which restarts from offset zero — cannot serve it again.
func (d *Daemon) recoverPass(ctx context.Context) {
	if d.recovery == nil {
		return
	}
	state := d.recovery
	d.recovery = nil
	if len(state.Completed) == 0 && len(state.Intents) == 0 {
		return
	}
	span := d.tracer.Start(trace.SpanRecovery)
	defer span.Finish()
	idx := d.scanShare(ctx)

	for id, c := range state.Completed {
		if state.Acked[id] {
			continue
		}
		if _, inLog := idx.responded[id]; inLog {
			// The response landed but the crash beat the RESP entry;
			// just ack it now.
			_ = d.journal.Resp(id)
			continue
		}
		child := span.Child(trace.SpanReplayRespPrefix + id)
		if d.respond(ctx, c.Module, id, c.Status, c.Payload) {
			_ = d.journal.Resp(id)
		}
		child.Finish()
		d.metrics.Counter(metrics.DaemonRecovered).Inc()
	}

	for id, e := range state.Intents {
		if _, inLog := idx.responded[id]; inLog {
			continue // answered before the crash
		}
		req, ok := idx.requests[id]
		if !ok {
			// The request record is gone (compacted mid-crash with its
			// pair, or the log was removed). Nothing to re-run.
			d.metrics.Counter(metrics.DaemonIntentsLost).Inc()
			continue
		}
		module := e.Module
		if module == "" {
			module = idx.reqModule[id]
		}
		child := span.Child(trace.SpanRerunIntentPrefix + id)
		d.serve(ctx, module, req)
		child.Finish()
		d.metrics.Counter(metrics.DaemonRecovered).Inc()
	}
}

// drainRequests reads new records from the log and returns the unanswered
// requests. It is the dedupe point: responses (ours, or a predecessor's
// replayed on restart) mark IDs answered, and a request record for an
// already-answered ID is either skipped silently (the normal restart
// replay of an answered pair) or — when it FOLLOWS the response, i.e. the
// host retried after missing it — answered again from the cache without
// re-executing the module.
func (d *Daemon) drainRequests(ctx context.Context, logName string) []Record {
	module, _ := ModuleFromLog(logName)
	d.mu.Lock()
	off := d.offsets[logName]
	lastGen := d.gens[logName]
	d.mu.Unlock()

	// A changed compaction generation (or a log smaller than our offset)
	// means the saved offset points into a different file image: restart
	// from the top. The responded set keeps replayed requests idempotent.
	gen := ReadGeneration(d.fs, module)
	size, _, statErr := d.fs.Stat(logName)
	if gen != lastGen || (statErr == nil && size < off) {
		off = 0
		d.mu.Lock()
		d.offsets[logName] = 0
		d.gens[logName] = gen
		d.mu.Unlock()
	}

	data, err := ReadFrom(d.fs, logName, off)
	if err != nil || len(data) == 0 {
		return nil
	}
	recs, consumed, corrupt, err := ParseRecords(data)
	if corrupt > 0 {
		d.metrics.Counter(metrics.SmartfamCorruptRecords).Add(int64(corrupt))
	}
	if err != nil {
		d.metrics.Counter(metrics.DaemonParseErrors).Inc()
		// Skip the poisoned region to avoid wedging on one bad line.
		d.mu.Lock()
		d.offsets[logName] = off + int64(len(data))
		d.mu.Unlock()
		return nil
	}
	// Make record positions absolute file offsets.
	for i := range recs {
		recs[i].Pos += off
	}

	d.mu.Lock()
	d.offsets[logName] = off + int64(consumed)
	// Pass 1: index this batch's responses (latest position per ID) so a
	// request and its answer arriving together — the whole-log rescan a
	// restarted daemon performs — never re-serves the request.
	batchRes := make(map[string]int64)
	for _, rec := range recs {
		if rec.Kind == KindResponse {
			if pos, ok := batchRes[rec.ID]; !ok || rec.Pos > pos {
				batchRes[rec.ID] = rec.Pos
			}
			d.responded[rec.ID] = struct{}{}
		}
	}
	// Pass 2: classify requests.
	var reqs []Record
	var replays []CachedResponse
	var replayIDs []string
	queued := make(map[string]bool)
	for _, rec := range recs {
		if rec.Kind != KindRequest {
			continue
		}
		if pos, ok := batchRes[rec.ID]; ok && rec.Pos < pos {
			continue // answered pair replayed in order: nothing to do
		}
		if queued[rec.ID] {
			continue // duplicate within the batch (torn-append retry)
		}
		_, answered := d.responded[rec.ID]
		cached, inCache := d.completed[rec.ID]
		if answered || inCache {
			// A duplicate of an already-served request: a host retry
			// reusing its original ID. Re-append the cached response —
			// the retrying host watches the log only from its retry
			// onward — and never re-execute.
			d.metrics.Counter(metrics.DaemonDeduped).Inc()
			if inCache {
				replays = append(replays, cached)
				replayIDs = append(replayIDs, rec.ID)
			}
			continue
		}
		queued[rec.ID] = true
		reqs = append(reqs, rec)
	}
	d.mu.Unlock()

	for i, c := range replays {
		d.respond(ctx, c.Module, replayIDs[i], c.Status, c.Payload)
	}
	return reqs
}

// serve runs one module invocation and appends the response record
// (steps 3-4 of Fig. 5's parameter passing, step 1 of result return),
// journaling the INTENT → DONE → RESP transitions around it.
func (d *Daemon) serve(ctx context.Context, module string, req Record) {
	d.metrics.Counter(metrics.DaemonRequests).Inc()
	timer := d.metrics.Timer(metrics.DaemonInvoke)
	start := time.Now()

	if err := d.journal.Intent(req.ID, module, req.Pos); err != nil {
		d.metrics.Counter(metrics.DaemonJournalErrors).Inc()
	}
	var (
		payload []byte
		status  = StatusOK
	)
	m, err := d.reg.Lookup(module)
	if err == nil {
		payload, err = runGuarded(ctx, m, req.Payload)
	}
	if err != nil && ctx.Err() != nil {
		// The daemon is shutting down mid-execution. Answering now would
		// turn the crash into a spurious module error at the host; leave
		// the intent open instead, so the restarted daemon re-runs it.
		d.metrics.Counter(metrics.DaemonAborted).Inc()
		return
	}
	if err != nil {
		status = StatusError
		payload = []byte(err.Error())
		d.metrics.Counter(metrics.DaemonErrors).Inc()
	}
	timer.Observe(time.Since(start))
	d.finish(ctx, module, req.ID, status, payload)
}

// finish journals a completed execution, caches it for dedupe, and
// appends the response. DONE is journaled BEFORE the response append:
// should the daemon die in between, the restarted daemon replays the
// cached result instead of running the module a second time.
func (d *Daemon) finish(ctx context.Context, module, reqID, status string, payload []byte) {
	if err := d.journal.Done(reqID, module, status, payload); err != nil {
		d.metrics.Counter(metrics.DaemonJournalErrors).Inc()
	}
	d.mu.Lock()
	d.cacheLocked(reqID, CachedResponse{Module: module, Status: status, Payload: payload})
	d.mu.Unlock()
	// Group commit (fam v2): the batcher appends the record with a batch
	// of its peers and journals RESP itself once the batch lands. DONE is
	// already journaled above, so the crash-safety story is unchanged.
	if b := d.respBatcherFor(module); b != nil {
		res := Record{Kind: KindResponse, ID: reqID, Status: status, Payload: payload}
		if line, err := res.Marshal(); err == nil {
			d.mu.Lock()
			d.responded[reqID] = struct{}{}
			d.mu.Unlock()
			b.enqueue(ctx, reqID, line)
			return
		}
		d.metrics.Counter(metrics.DaemonMarshalErrors).Inc()
		return
	}
	if d.respond(ctx, module, reqID, status, payload) {
		if err := d.journal.Resp(reqID); err != nil {
			d.metrics.Counter(metrics.DaemonJournalErrors).Inc()
		}
	}
}

// cacheLocked inserts into the bounded dedupe/replay cache; the caller
// holds d.mu (NewDaemon, which is single-threaded, may call it unlocked).
func (d *Daemon) cacheLocked(id string, c CachedResponse) {
	if _, exists := d.completed[id]; !exists {
		d.cacheOrder = append(d.cacheOrder, id)
	}
	d.completed[id] = c
	for len(d.cacheOrder) > maxCachedResponses {
		evict := d.cacheOrder[0]
		d.cacheOrder = d.cacheOrder[1:]
		delete(d.completed, evict)
	}
}

// respondAttempts and respondBackoff bound the response-append retry loop:
// a share hiccup must not silently eat a computed result.
const respondAttempts = 4

var respondBackoff = 2 * time.Millisecond

// retryShare runs a share operation under the same bounded-backoff policy
// as the response path, for reads whose failure would otherwise be
// silently absorbed (the recovery scan).
func retryShare(ctx context.Context, op func() error) error {
	backoff := respondBackoff
	var err error
	for attempt := 0; attempt < respondAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return err
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		if err = op(); err == nil {
			return nil
		}
	}
	return err
}

// respond appends the response record for one request and marks it
// answered, retrying transient append failures with bounded backoff. It
// reports whether the record reached the log; a final failure is counted
// in smartfam.respond_errors (the reply is then lost until a restart or
// host retry replays it from the journal cache).
func (d *Daemon) respond(ctx context.Context, module, reqID, status string, payload []byte) bool {
	res := Record{Kind: KindResponse, ID: reqID, Status: status, Payload: payload}
	line, err := res.Marshal()
	if err != nil {
		d.metrics.Counter(metrics.DaemonMarshalErrors).Inc()
		return false
	}
	d.mu.Lock()
	d.responded[reqID] = struct{}{}
	d.mu.Unlock()
	backoff := respondBackoff
	for attempt := 0; attempt < respondAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				// Shutdown mid-retry: give up now; the journal replays the
				// cached response on restart.
				d.metrics.Counter(metrics.SmartfamRespondErrors).Inc()
				return false
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		// The line's leading newline makes the retry safe after a torn
		// first attempt: the partial bytes become one corrupt line the
		// parser skips, and this record starts cleanly after it.
		if err = d.fs.Append(LogName(module), line); err == nil {
			return true
		}
		d.metrics.Counter(metrics.DaemonAppendErrors).Inc()
	}
	d.metrics.Counter(metrics.SmartfamRespondErrors).Inc()
	return false
}

// submit routes one request through the scheduler (steps 3-4 of Fig. 5
// under admission control). A rejected submission — queue full, scheduler
// stopped — is answered immediately with an error response so the remote
// caller sees backpressure instead of a stall.
func (d *Daemon) submit(ctx context.Context, wg *sync.WaitGroup, module string, req Record) {
	d.metrics.Counter(metrics.DaemonRequests).Inc()
	if err := d.journal.Intent(req.ID, module, req.Pos); err != nil {
		d.metrics.Counter(metrics.DaemonJournalErrors).Inc()
	}
	in, factor := int64(0), 0.0
	if d.estimate != nil {
		in, factor = d.estimate(module, req.Payload)
	}
	h, err := d.sched.Submit(ctx, &sched.Job{
		ID:              req.ID,
		Tenant:          module,
		Module:          module,
		Payload:         req.Payload,
		InputBytes:      in,
		FootprintFactor: factor,
	})
	if err != nil {
		if errors.Is(err, sched.ErrQueueFull) {
			d.metrics.Counter(metrics.DaemonQueueFull).Inc()
		}
		d.metrics.Counter(metrics.DaemonErrors).Inc()
		d.finish(ctx, module, req.ID, StatusError, []byte(err.Error()))
		return
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		payload, err := h.Wait(ctx)
		if err != nil && ctx.Err() != nil {
			// Shutdown, not a module verdict: leave the intent open for
			// the restarted daemon (see serve).
			d.metrics.Counter(metrics.DaemonAborted).Inc()
			return
		}
		if err != nil {
			d.metrics.Counter(metrics.DaemonErrors).Inc()
			d.finish(ctx, module, req.ID, StatusError, []byte(err.Error()))
			return
		}
		d.finish(ctx, module, req.ID, StatusOK, payload)
	}()
}

// QueueStatusName is the share file carrying the published status
// snapshot (JSON): the scheduler's queue state plus, under Extra, the
// daemon's recovery/dedupe/corruption counters. Like the heartbeat it is
// not a module log, so discovery ignores it; mcsdctl's queue and journal
// verbs read it.
const QueueStatusName = ".queue"

// DefaultQueueStatusInterval is how often the status snapshot is
// republished.
const DefaultQueueStatusInterval = 250 * time.Millisecond

// statusExtraCounters are the daemon-side counters published in the
// snapshot's Extra map for mcsdctl's journal verb.
var statusExtraCounters = []string{
	metrics.DaemonRecovered,
	metrics.DaemonDeduped,
	metrics.DaemonAborted,
	metrics.SmartfamCorruptRecords,
	metrics.SmartfamRespondErrors,
	metrics.FamPushEvents,
	metrics.FamDegraded,
	metrics.FamRespFlushes,
	metrics.FamRespRecords,
}

// publishQueueStatus rewrites QueueStatusName until ctx is done.
func (d *Daemon) publishQueueStatus(ctx context.Context) error {
	write := func() {
		var st sched.Status
		if d.sched != nil {
			st = d.sched.Status()
		}
		st.Extra = make(map[string]int64, len(statusExtraCounters))
		for _, name := range statusExtraCounters {
			//mcsdlint:allow metrickey -- statusExtraCounters holds registry constants only
			st.Extra[name] = d.metrics.Counter(name).Value()
		}
		// The push gauge rides along so mcsdctl's fam verb can tell push
		// from degraded without reaching into the daemon process.
		st.Extra[metrics.FamPushActive] = d.metrics.Gauge(metrics.FamPushActive).Value()
		data, err := sched.MarshalStatus(st)
		if err != nil {
			return
		}
		if err := d.fs.Create(QueueStatusName); err != nil {
			return
		}
		_ = d.fs.Append(QueueStatusName, data)
	}
	write()
	ticker := time.NewTicker(d.statusInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			write()
		}
	}
}

// runGuarded converts module panics into errors so one bad invocation
// cannot kill the daemon.
func runGuarded(ctx context.Context, m Module, params []byte) (out []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("smartfam: module %q panicked: %v", m.Name(), r)
		}
	}()
	return m.Run(ctx, params)
}
