package smartfam

import (
	"context"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

func TestJournalRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, state, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(state.Completed) != 0 || len(state.Intents) != 0 {
		t.Fatalf("fresh journal state not empty: %+v", state)
	}
	if err := j.Intent("id1", "echo", 42); err != nil {
		t.Fatal(err)
	}
	if err := j.Intent("id2", "echo", 99); err != nil {
		t.Fatal(err)
	}
	if err := j.Done("id1", "echo", StatusOK, []byte("result!")); err != nil {
		t.Fatal(err)
	}
	if err := j.Resp("id1"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, state2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if state2.Corrupt != 0 {
		t.Fatalf("corrupt = %d, want 0", state2.Corrupt)
	}
	c, ok := state2.Completed["id1"]
	if !ok || c.Module != "echo" || c.Status != StatusOK || string(c.Payload) != "result!" {
		t.Fatalf("completed id1 = %+v, %v", c, ok)
	}
	if !state2.Acked["id1"] {
		t.Fatal("id1 not acked")
	}
	e, ok := state2.Intents["id2"]
	if !ok || e.Module != "echo" || e.Offset != 99 {
		t.Fatalf("intent id2 = %+v, %v", e, ok)
	}
	if _, open := state2.Intents["id1"]; open {
		t.Fatal("id1 still an open intent after DONE")
	}
}

func TestJournalSkipsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Intent("good", "echo", 0); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Simulate the crash tearing the last append mid-line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\nDONE good echo ok aGVsb"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, state, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if state.Corrupt != 1 {
		t.Fatalf("corrupt = %d, want 1 (the torn DONE)", state.Corrupt)
	}
	// The torn DONE is discarded, so the intent stays open: recovery
	// re-runs rather than trusting half a result.
	if _, open := state.Intents["good"]; !open {
		t.Fatal("intent lost alongside the torn DONE")
	}
	if len(state.Completed) != 0 {
		t.Fatalf("torn DONE produced a cached response: %+v", state.Completed)
	}
}

func TestJournalCompactsOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	// Many superseded lines for the same request.
	for i := 0; i < 50; i++ {
		if err := j.Intent("r", "echo", int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Done("r", "echo", StatusOK, []byte("v"))
	j.Resp("r")
	j.Close()
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("journal not compacted: %d -> %d bytes", before.Size(), after.Size())
	}
}

// A daemon that crashed after journaling INTENT but before running the
// module must re-run the request on restart.
func TestDaemonRecoversIntent(t *testing.T) {
	dir := t.TempDir()
	share := DirFS(dir)
	jpath := filepath.Join(dir, ".journal")
	reg := NewRegistry(share)
	if err := reg.Register(echoModule()); err != nil {
		t.Fatal(err)
	}
	// The "crashed predecessor": request on the share, INTENT journaled,
	// no DONE, no response.
	req := Record{Kind: KindRequest, ID: "lost1", Payload: []byte("redo")}
	line, _ := req.Marshal()
	if err := share.Append(LogName("echo"), line); err != nil {
		t.Fatal(err)
	}
	j, _, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Intent("lost1", "echo", 0); err != nil {
		t.Fatal(err)
	}
	j.Close()

	d := NewDaemon(share, reg, WithPollInterval(time.Millisecond), WithJournal(jpath))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go d.Run(ctx) //nolint:errcheck

	waitForResponse(t, share, "echo", "lost1", "echo:redo")
	if v := d.Metrics().Counter("smartfam.daemon.recovered").Value(); v < 1 {
		t.Fatalf("recovered = %d, want >= 1", v)
	}
}

// A daemon that crashed after DONE but before the response landed must
// re-append the CACHED result — and must NOT run the module again.
func TestDaemonReplaysCachedDone(t *testing.T) {
	dir := t.TempDir()
	share := DirFS(dir)
	jpath := filepath.Join(dir, ".journal")
	var executions atomic.Int64
	mod := ModuleFunc{ModuleName: "once", Fn: func(_ context.Context, p []byte) ([]byte, error) {
		executions.Add(1)
		return []byte("freshly computed"), nil
	}}
	reg := NewRegistry(share)
	if err := reg.Register(mod); err != nil {
		t.Fatal(err)
	}
	req := Record{Kind: KindRequest, ID: "done1", Payload: []byte("p")}
	line, _ := req.Marshal()
	if err := share.Append(LogName("once"), line); err != nil {
		t.Fatal(err)
	}
	j, _, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	j.Intent("done1", "once", 0)
	j.Done("done1", "once", StatusOK, []byte("cached result"))
	j.Close()

	d := NewDaemon(share, reg, WithPollInterval(time.Millisecond), WithJournal(jpath))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go d.Run(ctx) //nolint:errcheck

	waitForResponse(t, share, "once", "done1", "cached result")
	if n := executions.Load(); n != 0 {
		t.Fatalf("module executed %d times during replay, want 0", n)
	}
	if v := d.Metrics().Counter("smartfam.daemon.recovered").Value(); v < 1 {
		t.Fatalf("recovered = %d, want >= 1", v)
	}
}

// A host retry that reuses its original request ID must be answered from
// the cache — one execution, two response appends.
func TestDaemonDedupesHostRetry(t *testing.T) {
	dir := t.TempDir()
	share := DirFS(dir)
	jpath := filepath.Join(dir, ".journal")
	var executions atomic.Int64
	mod := ModuleFunc{ModuleName: "count", Fn: func(_ context.Context, p []byte) ([]byte, error) {
		executions.Add(1)
		return append([]byte("out:"), p...), nil
	}}
	reg := NewRegistry(share)
	if err := reg.Register(mod); err != nil {
		t.Fatal(err)
	}
	d := NewDaemon(share, reg, WithPollInterval(time.Millisecond), WithJournal(jpath))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go d.Run(ctx) //nolint:errcheck

	c := NewClient(share, time.Millisecond)
	ictx, icancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer icancel()
	id := NewID()
	got, err := c.InvokeID(ictx, "count", id, []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "out:v" {
		t.Fatalf("result = %q", got)
	}

	// The retry: same ID, appended after the response already exists. The
	// daemon must replay the cached response (the retrying client only
	// watches the log from its own append onward).
	got2, err := c.InvokeID(ictx, "count", id, []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got2) != "out:v" {
		t.Fatalf("retried result = %q", got2)
	}
	if n := executions.Load(); n != 1 {
		t.Fatalf("module executed %d times, want exactly 1", n)
	}
	if v := d.Metrics().Counter("smartfam.daemon.deduped").Value(); v < 1 {
		t.Fatalf("deduped = %d, want >= 1", v)
	}
}

// Restarting a daemon over a share whose log holds an answered pair must
// not re-serve the request (two-pass drain regression).
func TestDaemonRestartDoesNotReserveAnsweredPair(t *testing.T) {
	dir := t.TempDir()
	share := DirFS(dir)
	var executions atomic.Int64
	mod := ModuleFunc{ModuleName: "pair", Fn: func(_ context.Context, p []byte) ([]byte, error) {
		executions.Add(1)
		return p, nil
	}}
	// An answered pair already on the share (from a previous daemon life).
	req := Record{Kind: KindRequest, ID: "old1", Payload: []byte("x")}
	res := Record{Kind: KindResponse, ID: "old1", Status: StatusOK, Payload: []byte("x")}
	for _, r := range []Record{req, res} {
		line, _ := r.Marshal()
		if err := share.Append(LogName("pair"), line); err != nil {
			t.Fatal(err)
		}
	}
	reg := NewRegistry(share)
	if err := reg.Register(mod); err != nil {
		t.Fatal(err)
	}
	d := NewDaemon(share, reg, WithPollInterval(time.Millisecond))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go d.Run(ctx) //nolint:errcheck

	// Serve one fresh request to prove the daemon is alive and draining.
	c := NewClient(share, time.Millisecond)
	ictx, icancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer icancel()
	if _, err := c.Invoke(ictx, "pair", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if n := executions.Load(); n != 1 {
		t.Fatalf("module executed %d times, want 1 (old pair must not re-run)", n)
	}
}

// waitForResponse polls the module log until a response with the given ID
// and payload appears.
func waitForResponse(t *testing.T, fsys FS, module, id, want string) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		data, _ := ReadFrom(fsys, LogName(module), 0)
		recs, _, _, _ := ParseRecords(data)
		for _, r := range recs {
			if r.Kind == KindResponse && r.ID == id {
				if string(r.Payload) != want {
					t.Fatalf("response payload = %q, want %q", r.Payload, want)
				}
				return
			}
		}
		select {
		case <-deadline:
			t.Fatalf("no response for %s/%s", module, id)
		case <-time.After(2 * time.Millisecond):
		}
	}
}
