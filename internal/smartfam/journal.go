package smartfam

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// The daemon's write-ahead journal makes smartFAM invocation exactly-once
// across daemon crashes. Each request moves through three journaled
// states, appended to a file on the SD node's LOCAL disk (never the
// share — the journal must survive exactly the failures the share does
// not):
//
//	INTENT <id> <module> <offset> <crc>          before dispatch
//	DONE   <id> <module> <status> <payload> <crc> after the module ran,
//	                                              before the response is
//	                                              appended to the log
//	RESP   <id> <crc>                             after the response
//	                                              record landed
//
// On restart the replay classifies every request:
//
//   - RESP present: fully finished; kept only as a dedupe cache entry.
//   - DONE without RESP: the module ran but the response may never have
//     reached the log — re-append the CACHED payload, never re-execute.
//   - INTENT without DONE: the module may not have run (or was aborted
//     mid-flight by the crash) — re-run it; module executions are
//     expected to be idempotent under abort, as in any redo log.
//
// Journaling DONE *before* the response append is what closes the
// duplicate-execution window: a crash between execution and response
// replays the cached result instead of running the module twice.
//
// Like the module logs, journal lines are newline-guarded and CRC'd, so
// a torn tail from the crash itself is skipped (and counted) on replay.
// Writes go straight to the fd with no userspace buffering: the failure
// model is a daemon crash, not an OS crash, so page cache is durable
// enough and no fsync is paid per record.

// Journal entry kinds.
const (
	journalIntent = "INTENT"
	journalDone   = "DONE"
	journalResp   = "RESP"
)

// JournalEntry is one replayed journal line.
type JournalEntry struct {
	Kind    string
	ID      string
	Module  string
	Offset  int64 // INTENT: byte offset of the request record in its log
	Status  string
	Payload []byte
}

// CachedResponse is a completed execution's result, kept for crash replay
// and for answering duplicate (host-retried) requests without re-running
// the module.
type CachedResponse struct {
	Module  string
	Status  string
	Payload []byte
}

// JournalState is the classification of a journal at open time.
type JournalState struct {
	// Completed maps request ID -> cached response for every execution
	// that finished (DONE journaled), acked or not.
	Completed map[string]CachedResponse
	// Acked holds IDs whose response append was confirmed (RESP).
	Acked map[string]bool
	// Intents holds INTENT entries with no DONE: possibly-unexecuted
	// requests the recovery pass must re-run.
	Intents map[string]JournalEntry
	// Corrupt counts unparseable lines skipped during replay (typically
	// the torn tail of the crashed writer).
	Corrupt int
}

// Journal is the daemon's crash-recovery intent log. All methods are safe
// for concurrent use and nil-receiver safe (a nil journal journals
// nothing), so the daemon's hot path needs no conditionals.
//
// The journal talks to its directory through the same FS abstraction as
// the share, so faultfs can inject torn appends and transient errors into
// the journal itself — the chaos suite exercises recovery from a journal
// that fails, not just a share that fails. Production use stays on the SD
// node's local disk via DirFS.
type Journal struct {
	mu   sync.Mutex
	fsys FS
	name string
}

// maxCachedResponses bounds the dedupe/replay cache carried across
// restarts; beyond it the oldest completed entries are dropped (their
// requests can then only be deduped while their response record is still
// visible in the module log).
const maxCachedResponses = 4096

// OpenJournal replays the journal at path (if any), compacts it — acked
// entries beyond the cache cap and superseded lines are dropped — and
// opens it for appending. The returned state seeds the daemon's recovery
// pass and dedupe cache. It is OpenJournalFS over a DirFS rooted at the
// path's directory.
func OpenJournal(path string) (*Journal, *JournalState, error) {
	return OpenJournalFS(DirFS(filepath.Dir(path)), filepath.Base(path))
}

// OpenJournalFS is OpenJournal over an arbitrary FS: the journal lives in
// the file `name` inside fsys. Tests wrap fsys in faultfs to exercise
// journal-write failures.
func OpenJournalFS(fsys FS, name string) (*Journal, *JournalState, error) {
	state := &JournalState{
		Completed: make(map[string]CachedResponse),
		Acked:     make(map[string]bool),
		Intents:   make(map[string]JournalEntry),
	}
	data, err := ReadFrom(fsys, name, 0)
	if err != nil && !errors.Is(err, ErrNotExist) {
		return nil, nil, fmt.Errorf("smartfam: reading journal %s: %w", name, err)
	}
	var order []string // completed IDs in first-DONE order, for the cache cap
	if len(data) > 0 {
		entries, corrupt := parseJournal(data)
		state.Corrupt = corrupt
		for _, e := range entries {
			switch e.Kind {
			case journalIntent:
				if _, done := state.Completed[e.ID]; !done {
					state.Intents[e.ID] = e
				}
			case journalDone:
				if _, seen := state.Completed[e.ID]; !seen {
					order = append(order, e.ID)
				}
				state.Completed[e.ID] = CachedResponse{Module: e.Module, Status: e.Status, Payload: e.Payload}
				delete(state.Intents, e.ID)
			case journalResp:
				state.Acked[e.ID] = true
			}
		}
	}
	// Cap the carried cache, oldest first.
	for len(order) > maxCachedResponses {
		id := order[0]
		order = order[1:]
		delete(state.Completed, id)
		delete(state.Acked, id)
	}

	// Rewrite compacted: live intents, completed entries (with their ack
	// marks), nothing else. Renaming over the old file keeps a crash
	// during compaction recoverable (the old journal stays intact).
	tmp := name + ".tmp"
	var buf bytes.Buffer
	for _, e := range state.Intents {
		buf.Write(journalLine(journalIntent, e.ID, e.Module, strconv.FormatInt(e.Offset, 10)))
	}
	for _, id := range order {
		c := state.Completed[id]
		buf.Write(journalLine(journalDone, id, c.Module, c.Status, encodePayload(c.Payload)))
		if state.Acked[id] {
			buf.Write(journalLine(journalResp, id))
		}
	}
	if err := fsys.Create(tmp); err != nil {
		return nil, nil, fmt.Errorf("smartfam: compacting journal %s: %w", name, err)
	}
	if err := fsys.Append(tmp, buf.Bytes()); err != nil {
		return nil, nil, fmt.Errorf("smartfam: compacting journal %s: %w", name, err)
	}
	if err := fsys.Rename(tmp, name); err != nil {
		return nil, nil, fmt.Errorf("smartfam: compacting journal %s: %w", name, err)
	}
	return &Journal{fsys: fsys, name: name}, state, nil
}

// Path returns the journal's file name within its FS.
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.name
}

// Intent records that the daemon is about to dispatch a request. offset is
// the byte position of the request record in its module log (diagnostic:
// recovery locates requests by ID, surviving compaction).
func (j *Journal) Intent(id, module string, offset int64) error {
	return j.append(journalLine(journalIntent, id, module, strconv.FormatInt(offset, 10)))
}

// Done records a finished execution and its result, before the response is
// appended to the module log.
func (j *Journal) Done(id, module, status string, payload []byte) error {
	return j.append(journalLine(journalDone, id, module, status, encodePayload(payload)))
}

// Resp records that the response append for id succeeded.
func (j *Journal) Resp(id string) error {
	return j.append(journalLine(journalResp, id))
}

// Close releases the journal. FS-backed appends hold no file descriptor
// between writes, so Close is bookkeeping only; it is kept so daemon
// shutdown reads the same for any future fd-holding implementation.
func (j *Journal) Close() error {
	return nil
}

func (j *Journal) append(line []byte) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	//mcsdlint:allow lockhold -- serializing record appends is this lock's whole job: the share Append is the critical section, and nothing else contends on j.mu
	if err := j.fsys.Append(j.name, line); err != nil {
		return fmt.Errorf("smartfam: journal append: %w", err)
	}
	return nil
}

// journalLine builds one newline-guarded, CRC-trailed journal line.
func journalLine(fields ...string) []byte {
	body := strings.Join(fields, " ")
	return []byte("\n" + body + " " + recordCRC(body) + "\n")
}

func encodePayload(p []byte) string {
	s := base64.StdEncoding.EncodeToString(p)
	if s == "" {
		s = "-"
	}
	return s
}

func decodePayload(s string) ([]byte, error) {
	if s == "-" {
		return nil, nil
	}
	return base64.StdEncoding.DecodeString(s)
}

// parseJournal decodes every valid journal line, skipping (and counting)
// corrupt ones — the torn tail of a crashed daemon must not poison replay.
func parseJournal(data []byte) (entries []JournalEntry, corrupt int) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		e, err := parseJournalLine(string(line))
		if err != nil {
			corrupt++
			continue
		}
		entries = append(entries, e)
	}
	if sc.Err() != nil {
		corrupt++
	}
	return entries, corrupt
}

func parseJournalLine(line string) (JournalEntry, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return JournalEntry{}, fmt.Errorf("smartfam: short journal line %q", line)
	}
	body := strings.Join(fields[:len(fields)-1], " ")
	if recordCRC(body) != fields[len(fields)-1] {
		return JournalEntry{}, fmt.Errorf("smartfam: journal checksum mismatch on %q", line)
	}
	e := JournalEntry{Kind: fields[0]}
	switch e.Kind {
	case journalIntent:
		if len(fields) != 5 {
			return JournalEntry{}, fmt.Errorf("smartfam: malformed INTENT line %q", line)
		}
		e.ID, e.Module = fields[1], fields[2]
		off, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil {
			return JournalEntry{}, fmt.Errorf("smartfam: bad INTENT offset in %q", line)
		}
		e.Offset = off
	case journalDone:
		if len(fields) != 6 {
			return JournalEntry{}, fmt.Errorf("smartfam: malformed DONE line %q", line)
		}
		e.ID, e.Module, e.Status = fields[1], fields[2], fields[3]
		if e.Status != StatusOK && e.Status != StatusError {
			return JournalEntry{}, fmt.Errorf("smartfam: bad DONE status in %q", line)
		}
		payload, err := decodePayload(fields[4])
		if err != nil {
			return JournalEntry{}, fmt.Errorf("smartfam: bad DONE payload in %q", line)
		}
		e.Payload = payload
	case journalResp:
		if len(fields) != 3 {
			return JournalEntry{}, fmt.Errorf("smartfam: malformed RESP line %q", line)
		}
		e.ID = fields[1]
	default:
		return JournalEntry{}, fmt.Errorf("smartfam: unknown journal entry kind %q", e.Kind)
	}
	return e, nil
}
