package smartfam

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestCompactLogDropsAnsweredPairs(t *testing.T) {
	fsys := DirFS(t.TempDir())
	reg := NewRegistry(fsys)
	if err := reg.Register(echoModule()); err != nil {
		t.Fatal(err)
	}
	log := LogName("echo")
	// Two completed invocations and one pending request.
	for _, id := range []string{"a1", "a2"} {
		req, _ := (Record{Kind: KindRequest, ID: id, Payload: []byte("p")}).Marshal()
		res, _ := (Record{Kind: KindResponse, ID: id, Status: StatusOK, Payload: []byte("r")}).Marshal()
		if err := fsys.Append(log, req); err != nil {
			t.Fatal(err)
		}
		if err := fsys.Append(log, res); err != nil {
			t.Fatal(err)
		}
	}
	pending, _ := (Record{Kind: KindRequest, ID: "p9", Payload: []byte("wait")}).Marshal()
	if err := fsys.Append(log, pending); err != nil {
		t.Fatal(err)
	}

	kept, err := reg.CompactLog("echo")
	if err != nil {
		t.Fatal(err)
	}
	if kept != 1 {
		t.Fatalf("kept %d records, want 1 pending request", kept)
	}
	data, err := ReadFrom(fsys, log, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, _, err := ParseRecords(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "p9" || recs[0].Kind != KindRequest {
		t.Fatalf("compacted log = %+v", recs)
	}
}

func TestCompactLogEmptyAndUnknown(t *testing.T) {
	fsys := DirFS(t.TempDir())
	reg := NewRegistry(fsys)
	if err := reg.Register(echoModule()); err != nil {
		t.Fatal(err)
	}
	kept, err := reg.CompactLog("echo")
	if err != nil || kept != 0 {
		t.Fatalf("empty log compaction = (%d, %v)", kept, err)
	}
	if _, err := reg.CompactLog("ghost"); !errors.Is(err, ErrUnknownModule) {
		t.Fatalf("unknown module err = %v", err)
	}
}

func TestCompactAll(t *testing.T) {
	fsys := DirFS(t.TempDir())
	reg := NewRegistry(fsys)
	for _, name := range []string{"m1", "m2"} {
		if err := reg.Register(ModuleFunc{ModuleName: name,
			Fn: func(_ context.Context, p []byte) ([]byte, error) { return p, nil }}); err != nil {
			t.Fatal(err)
		}
	}
	n, err := reg.CompactAll()
	if err != nil || n != 2 {
		t.Fatalf("CompactAll = (%d, %v), want 2 logs", n, err)
	}
}

func TestDaemonSurvivesCompaction(t *testing.T) {
	// Serve, compact (shrinking the log under the daemon's offset), then
	// serve again: the offset-reset path plus the responded set must keep
	// everything exactly-once.
	fsys := DirFS(t.TempDir())
	reg := NewRegistry(fsys)
	if err := reg.Register(echoModule()); err != nil {
		t.Fatal(err)
	}
	d := NewDaemon(fsys, reg, WithPollInterval(time.Millisecond))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go d.Run(ctx) //nolint:errcheck

	c := NewClient(fsys, time.Millisecond)
	ictx, icancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer icancel()
	if _, err := c.Invoke(ictx, "echo", []byte("one")); err != nil {
		t.Fatal(err)
	}
	size1, _, err := fsys.Stat(LogName("echo"))
	if err != nil {
		t.Fatal(err)
	}
	if size1 == 0 {
		t.Fatal("log empty after an invocation")
	}

	if _, err := reg.CompactLog("echo"); err != nil {
		t.Fatal(err)
	}
	size2, _, err := fsys.Stat(LogName("echo"))
	if err != nil {
		t.Fatal(err)
	}
	if size2 != 0 {
		t.Fatalf("fully-answered log not emptied: %d bytes", size2)
	}

	// The daemon's offset now exceeds the file size; a fresh invocation
	// must still be served exactly once.
	got, err := c.Invoke(ictx, "echo", []byte("two"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "echo:two" {
		t.Fatalf("post-compaction result = %q", got)
	}
	if n := d.Metrics().Counter("smartfam.daemon.requests").Value(); n != 2 {
		t.Fatalf("served %d requests, want exactly 2 (no replays)", n)
	}
}

func TestCompactionRegrowPastStaleOffset(t *testing.T) {
	// Regression: after compaction, the log regrows PAST a reader's stale
	// offset before the reader drains again. Without the generation
	// sidecar the reader would resume mid-record (or silently skip new
	// requests); with it, every new request is recovered.
	fsys := DirFS(t.TempDir())
	reg := NewRegistry(fsys)
	if err := reg.Register(echoModule()); err != nil {
		t.Fatal(err)
	}
	d := NewDaemon(fsys, reg) // not running; we drive drains by hand
	logName := LogName("echo")

	// One full served round to advance the daemon's offset.
	req1 := Record{Kind: KindRequest, ID: "req-one", Payload: []byte("1")}
	line, _ := req1.Marshal()
	if err := fsys.Append(logName, line); err != nil {
		t.Fatal(err)
	}
	got := d.drainRequests(t.Context(), logName)
	if len(got) != 1 || got[0].ID != "req-one" {
		t.Fatalf("first drain = %+v", got)
	}
	d.serve(context.Background(), "echo", got[0])
	if got := d.drainRequests(t.Context(), logName); len(got) != 0 {
		t.Fatalf("drain after serve returned %+v", got)
	}
	oldSize, _, err := fsys.Stat(logName)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := reg.CompactLog("echo"); err != nil {
		t.Fatal(err)
	}

	// Regrow beyond the old offset with fresh requests before any drain.
	var ids []string
	for grown := int64(0); grown <= oldSize; {
		id := NewID()
		ids = append(ids, id)
		line, _ := (Record{Kind: KindRequest, ID: id, Payload: []byte("x")}).Marshal()
		if err := fsys.Append(logName, line); err != nil {
			t.Fatal(err)
		}
		grown += int64(len(line))
	}

	got = d.drainRequests(t.Context(), logName)
	if len(got) != len(ids) {
		t.Fatalf("drain after regrow returned %d requests, want %d (records lost)",
			len(got), len(ids))
	}
	for i, id := range ids {
		if got[i].ID != id {
			t.Fatalf("request %d = %q, want %q", i, got[i].ID, id)
		}
	}
}

func TestCompactionPreservesPendingInvocation(t *testing.T) {
	// A request written before compaction, with the daemon started after:
	// the pending request must survive and be served.
	fsys := DirFS(t.TempDir())
	reg := NewRegistry(fsys)
	if err := reg.Register(echoModule()); err != nil {
		t.Fatal(err)
	}
	req := Record{Kind: KindRequest, ID: NewID(), Payload: []byte("early")}
	line, _ := req.Marshal()
	if err := fsys.Append(LogName("echo"), line); err != nil {
		t.Fatal(err)
	}
	if kept, err := reg.CompactLog("echo"); err != nil || kept != 1 {
		t.Fatalf("compaction = (%d, %v), want pending kept", kept, err)
	}

	d := NewDaemon(fsys, reg, WithPollInterval(time.Millisecond))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go d.Run(ctx) //nolint:errcheck

	// Wait for the response record to appear.
	deadline := time.After(10 * time.Second)
	for {
		data, _ := ReadFrom(fsys, LogName("echo"), 0)
		recs, _, _, _ := ParseRecords(data)
		served := false
		for _, r := range recs {
			if r.Kind == KindResponse && r.ID == req.ID && string(r.Payload) == "echo:early" {
				served = true
			}
		}
		if served {
			return
		}
		select {
		case <-deadline:
			t.Fatal("pending request never served after compaction")
		case <-time.After(2 * time.Millisecond):
		}
	}
}
