package smartfam

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// faultFS wraps an FS and fails selected operations — transient-NFS-error
// injection for robustness tests.
type faultFS struct {
	FS
	mu       sync.Mutex
	failOps  map[string]int // op -> remaining failures
	injected int
}

var errInjected = errors.New("injected fault")

func newFaultFS(inner FS) *faultFS {
	return &faultFS{FS: inner, failOps: make(map[string]int)}
}

func (f *faultFS) failNext(op string, n int) {
	f.mu.Lock()
	f.failOps[op] = n
	f.mu.Unlock()
}

func (f *faultFS) maybeFail(op string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failOps[op] > 0 {
		f.failOps[op]--
		f.injected++
		return errInjected
	}
	return nil
}

func (f *faultFS) Append(name string, data []byte) error {
	if err := f.maybeFail("append"); err != nil {
		return err
	}
	return f.FS.Append(name, data)
}

func (f *faultFS) Stat(name string) (int64, time.Time, error) {
	if err := f.maybeFail("stat"); err != nil {
		return 0, time.Time{}, err
	}
	return f.FS.Stat(name)
}

func (f *faultFS) ReadAt(name string, p []byte, off int64) (int, error) {
	if err := f.maybeFail("read"); err != nil {
		return 0, err
	}
	return f.FS.ReadAt(name, p, off)
}

func (f *faultFS) List() ([]string, error) {
	if err := f.maybeFail("list"); err != nil {
		return nil, err
	}
	return f.FS.List()
}

func TestDaemonSurvivesTransientFaults(t *testing.T) {
	inner := DirFS(t.TempDir())
	ffs := newFaultFS(inner)
	reg := NewRegistry(inner) // registry writes go direct (setup)
	if err := reg.Register(echoModule()); err != nil {
		t.Fatal(err)
	}
	d := NewDaemon(ffs, reg, WithPollInterval(time.Millisecond))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go d.Run(ctx) //nolint:errcheck

	// Inject a burst of stat/read/list failures; the daemon must keep
	// polling through them and serve the request that follows.
	ffs.failNext("stat", 5)
	ffs.failNext("read", 3)
	ffs.failNext("list", 2)

	c := NewClient(inner, time.Millisecond)
	ictx, icancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer icancel()
	got, err := c.Invoke(ictx, "echo", []byte("despite faults"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "echo:despite faults" {
		t.Fatalf("result = %q", got)
	}
	ffs.mu.Lock()
	injected := ffs.injected
	ffs.mu.Unlock()
	if injected == 0 {
		t.Fatal("no faults were actually injected; test proves nothing")
	}
}

func TestDaemonCountsFailedResponseAppends(t *testing.T) {
	inner := DirFS(t.TempDir())
	ffs := newFaultFS(inner)
	reg := NewRegistry(inner)
	if err := reg.Register(echoModule()); err != nil {
		t.Fatal(err)
	}
	d := NewDaemon(ffs, reg) // not running; drive by hand
	req := Record{Kind: KindRequest, ID: "r1", Payload: []byte("p")}
	line, _ := req.Marshal()
	if err := inner.Append(LogName("echo"), line); err != nil {
		t.Fatal(err)
	}
	reqs := d.drainRequests(LogName("echo"))
	if len(reqs) != 1 {
		t.Fatalf("drained %d requests", len(reqs))
	}
	ffs.failNext("append", 1)
	d.serve(context.Background(), "echo", reqs[0])
	if d.Metrics().Counter("smartfam.daemon.append_errors").Value() != 1 {
		t.Fatal("failed response append not counted")
	}
}

func TestClientSurfacesAppendFault(t *testing.T) {
	inner := DirFS(t.TempDir())
	if err := inner.Create(LogName("echo")); err != nil {
		t.Fatal(err)
	}
	ffs := newFaultFS(inner)
	ffs.failNext("append", 1)
	c := NewClient(ffs, time.Millisecond)
	_, err := c.Invoke(context.Background(), "echo", []byte("x"))
	if !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected fault surfaced", err)
	}
}

func TestWatcherToleratesStatFaults(t *testing.T) {
	inner := DirFS(t.TempDir())
	ffs := newFaultFS(inner)
	if err := inner.Append("mod.log", []byte("x")); err != nil {
		t.Fatal(err)
	}
	w := NewWatcher(ffs, time.Hour)
	w.Add("mod.log")
	ffs.failNext("stat", 1)
	w.Poll() // stat fails: treated as absent, no crash
	w.Poll() // recovers: change event fires
	select {
	case ev := <-w.Events():
		if ev.Name != "mod.log" {
			t.Fatalf("event = %+v", ev)
		}
	default:
		t.Fatal("watcher never recovered from stat fault")
	}
}
