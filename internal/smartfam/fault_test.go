// Fault-injection tests for the daemon and client, exercised through the
// shared internal/faultfs layer. These live in the external test package:
// faultfs wraps smartfam.FS, so an in-package import would cycle.
package smartfam_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"mcsd/internal/faultfs"
	"mcsd/internal/smartfam"
)

func faultEchoModule() smartfam.Module {
	return smartfam.ModuleFunc{
		ModuleName: "echo",
		Fn: func(_ context.Context, params []byte) ([]byte, error) {
			return append([]byte("echo:"), params...), nil
		},
	}
}

func TestDaemonSurvivesTransientFaults(t *testing.T) {
	inner := smartfam.DirFS(t.TempDir())
	ffs := faultfs.New(inner)
	reg := smartfam.NewRegistry(inner) // registry writes go direct (setup)
	if err := reg.Register(faultEchoModule()); err != nil {
		t.Fatal(err)
	}
	d := smartfam.NewDaemon(ffs, reg, smartfam.WithPollInterval(time.Millisecond))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go d.Run(ctx) //nolint:errcheck

	// Inject a burst of stat/read/list failures; the daemon must keep
	// polling through them and serve the request that follows.
	ffs.FailNext(faultfs.OpStat, 5)
	ffs.FailNext(faultfs.OpRead, 3)
	ffs.FailNext(faultfs.OpList, 2)

	c := smartfam.NewClient(inner, time.Millisecond)
	ictx, icancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer icancel()
	got, err := c.Invoke(ictx, "echo", []byte("despite faults"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "echo:despite faults" {
		t.Fatalf("result = %q", got)
	}
	if ffs.Injected() == 0 {
		t.Fatal("no faults were actually injected; test proves nothing")
	}
}

func TestDaemonRetriesFailedResponseAppend(t *testing.T) {
	inner := smartfam.DirFS(t.TempDir())
	ffs := faultfs.New(inner)
	reg := smartfam.NewRegistry(inner)
	if err := reg.Register(faultEchoModule()); err != nil {
		t.Fatal(err)
	}
	// No heartbeat/scheduler/journal: the daemon's only appends through
	// ffs are response records, so the armed failure hits the response.
	d := smartfam.NewDaemon(ffs, reg,
		smartfam.WithPollInterval(time.Millisecond),
		smartfam.WithHeartbeat(-1))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go d.Run(ctx) //nolint:errcheck

	ffs.FailNext(faultfs.OpAppend, 1)
	c := smartfam.NewClient(inner, time.Millisecond)
	ictx, icancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer icancel()
	got, err := c.Invoke(ictx, "echo", []byte("retry me"))
	if err != nil {
		t.Fatal(err) // the bounded-backoff retry must absorb the fault
	}
	if string(got) != "echo:retry me" {
		t.Fatalf("result = %q", got)
	}
	if v := d.Metrics().Counter("smartfam.daemon.append_errors").Value(); v != 1 {
		t.Fatalf("append_errors = %d, want 1 (the failed first attempt)", v)
	}
	if v := d.Metrics().Counter("smartfam.respond_errors").Value(); v != 0 {
		t.Fatalf("respond_errors = %d, want 0 (retry succeeded)", v)
	}
}

func TestDaemonCountsDroppedResponses(t *testing.T) {
	inner := smartfam.DirFS(t.TempDir())
	ffs := faultfs.New(inner)
	reg := smartfam.NewRegistry(inner)
	if err := reg.Register(faultEchoModule()); err != nil {
		t.Fatal(err)
	}
	d := smartfam.NewDaemon(ffs, reg,
		smartfam.WithPollInterval(time.Millisecond),
		smartfam.WithHeartbeat(-1))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go d.Run(ctx) //nolint:errcheck

	// Outlast every retry attempt: the reply is dropped and counted.
	ffs.FailNext(faultfs.OpAppend, 100)
	req := smartfam.Record{Kind: smartfam.KindRequest, ID: smartfam.NewID(), Payload: []byte("x")}
	line, err := req.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := inner.Append(smartfam.LogName("echo"), line); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for d.Metrics().Counter("smartfam.respond_errors").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("respond_errors never incremented")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestClientSurfacesAppendFault(t *testing.T) {
	inner := smartfam.DirFS(t.TempDir())
	if err := inner.Create(smartfam.LogName("echo")); err != nil {
		t.Fatal(err)
	}
	ffs := faultfs.New(inner)
	// The client retries appends with bounded backoff; only a persistent
	// fault (outlasting every attempt) surfaces.
	ffs.FailNext(faultfs.OpAppend, 100)
	c := smartfam.NewClient(ffs, time.Millisecond)
	_, err := c.Invoke(context.Background(), "echo", []byte("x"))
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("err = %v, want injected fault surfaced", err)
	}
}

func TestClientRetriesTransientAppendFault(t *testing.T) {
	inner := smartfam.DirFS(t.TempDir())
	reg := smartfam.NewRegistry(inner)
	if err := reg.Register(faultEchoModule()); err != nil {
		t.Fatal(err)
	}
	d := smartfam.NewDaemon(inner, reg, smartfam.WithPollInterval(time.Millisecond))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go d.Run(ctx) //nolint:errcheck

	ffs := faultfs.New(inner)
	ffs.FailNext(faultfs.OpAppend, 2) // fewer than the retry budget
	c := smartfam.NewClient(ffs, time.Millisecond)
	ictx, icancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer icancel()
	got, err := c.Invoke(ictx, "echo", []byte("transient"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "echo:transient" {
		t.Fatalf("result = %q", got)
	}
}

func TestWatcherToleratesStatFaults(t *testing.T) {
	inner := smartfam.DirFS(t.TempDir())
	ffs := faultfs.New(inner)
	if err := inner.Append("mod.log", []byte("x")); err != nil {
		t.Fatal(err)
	}
	w := smartfam.NewWatcher(ffs, time.Hour)
	w.Add("mod.log")
	ffs.FailNext(faultfs.OpStat, 1)
	w.Poll() // stat fails: treated as absent, no crash
	w.Poll() // recovers: change event fires
	select {
	case ev := <-w.Events():
		if ev.Name != "mod.log" {
			t.Fatalf("event = %+v", ev)
		}
	default:
		t.Fatal("watcher never recovered from stat fault")
	}
}

func TestDaemonRecoversTornResponseAppend(t *testing.T) {
	inner := smartfam.DirFS(t.TempDir())
	ffs := faultfs.New(inner)
	reg := smartfam.NewRegistry(inner)
	if err := reg.Register(faultEchoModule()); err != nil {
		t.Fatal(err)
	}
	d := smartfam.NewDaemon(ffs, reg,
		smartfam.WithPollInterval(time.Millisecond),
		smartfam.WithHeartbeat(-1))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go d.Run(ctx) //nolint:errcheck

	// First response append is torn mid-record; the retry must land a
	// clean record after the garbage and the client must still get its
	// answer (the torn fragment is quarantined by the leading-newline
	// resync and counted as corrupt).
	ffs.TearNext(1, 0.5)
	c := smartfam.NewClient(inner, time.Millisecond)
	c.SetMetrics(d.Metrics())
	ictx, icancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer icancel()
	got, err := c.Invoke(ictx, "echo", []byte("torn"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "echo:torn" {
		t.Fatalf("result = %q", got)
	}
	if ffs.Torn() != 1 {
		t.Fatalf("Torn() = %d, want 1", ffs.Torn())
	}
}
