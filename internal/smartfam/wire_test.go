package smartfam

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestRecordMarshalParseRoundtrip(t *testing.T) {
	recs := []Record{
		{Kind: KindRequest, ID: "abc123", Payload: []byte("params here")},
		{Kind: KindResponse, ID: "abc123", Status: StatusOK, Payload: []byte{0, 1, 2, 255}},
		{Kind: KindResponse, ID: "def", Status: StatusError, Payload: []byte("it broke")},
	}
	var log []byte
	for _, r := range recs {
		line, err := r.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		log = append(log, line...)
	}
	got, consumed, corrupt, err := ParseRecords(log)
	if err != nil {
		t.Fatal(err)
	}
	if corrupt != 0 {
		t.Fatalf("corrupt = %d, want 0", corrupt)
	}
	if consumed != len(log) {
		t.Fatalf("consumed %d, want %d", consumed, len(log))
	}
	if len(got) != len(recs) {
		t.Fatalf("parsed %d records, want %d", len(got), len(recs))
	}
	for i, r := range recs {
		g := got[i]
		if g.Kind != r.Kind || g.ID != r.ID || !bytes.Equal(g.Payload, r.Payload) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, g, r)
		}
		if r.Kind == KindResponse && g.Status != r.Status {
			t.Fatalf("record %d status %q, want %q", i, g.Status, r.Status)
		}
	}
}

func TestMarshalRejectsBadRecords(t *testing.T) {
	cases := []Record{
		{Kind: "WAT", ID: "a"},
		{Kind: KindRequest, ID: ""},
		{Kind: KindRequest, ID: "has space"},
		{Kind: KindResponse, ID: "a", Status: "maybe"},
	}
	for _, r := range cases {
		if _, err := r.Marshal(); err == nil {
			t.Errorf("record %+v marshalled without error", r)
		}
	}
}

func TestParseRecordsSkipsPartialTrailingLine(t *testing.T) {
	full, err := (Record{Kind: KindRequest, ID: "x1", Payload: []byte("p")}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	partial := []byte("RES x1 ok aGVsbG8") // no trailing newline
	data := append(append([]byte{}, full...), partial...)
	recs, consumed, corrupt, err := ParseRecords(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("parsed %d records, want 1 (partial line must wait)", len(recs))
	}
	if corrupt != 0 {
		t.Fatalf("corrupt = %d, want 0 (a quarantined tail is not corrupt yet)", corrupt)
	}
	if consumed != len(full) {
		t.Fatalf("consumed %d, want %d", consumed, len(full))
	}
}

func TestParseRecordsCountsMalformed(t *testing.T) {
	crc := func(body string) string { return recordCRC(body) }
	for _, bad := range []string{
		"REQ onlythree fields\n",
		"BOGUS id - aGk= " + crc("BOGUS id - aGk=") + "\n",
		"RES id wat aGk= " + crc("RES id wat aGk=") + "\n",
		"REQ id - not-base64!! " + crc("REQ id - not-base64!!") + "\n",
		"REQ id - aGk= 00000000\n", // wrong CRC
		"REQ id - aGk=\n",          // missing CRC field entirely
	} {
		recs, consumed, corrupt, err := ParseRecords([]byte(bad))
		if err != nil {
			t.Fatalf("line %q: lenient parse returned hard error %v", strings.TrimSpace(bad), err)
		}
		if len(recs) != 0 {
			t.Errorf("malformed line %q yielded a record", strings.TrimSpace(bad))
		}
		if corrupt != 1 {
			t.Errorf("malformed line %q: corrupt = %d, want 1", strings.TrimSpace(bad), corrupt)
		}
		if consumed != len(bad) {
			t.Errorf("malformed line %q: consumed %d, want %d (resync past it)",
				strings.TrimSpace(bad), consumed, len(bad))
		}
	}
}

// A corrupt line must not poison its neighbours: the parser resyncs at the
// next newline and keeps every valid record around it.
func TestParseRecordsResyncsAroundCorruption(t *testing.T) {
	a, _ := (Record{Kind: KindRequest, ID: "a1", Payload: []byte("one")}).Marshal()
	b, _ := (Record{Kind: KindResponse, ID: "a1", Status: StatusOK, Payload: []byte("two")}).Marshal()
	log := append(append(append([]byte{}, a...), []byte("GARBAGE torn line no crc\n")...), b...)
	recs, consumed, corrupt, err := ParseRecords(log)
	if err != nil {
		t.Fatal(err)
	}
	if corrupt != 1 {
		t.Fatalf("corrupt = %d, want 1", corrupt)
	}
	if len(recs) != 2 || recs[0].ID != "a1" || recs[1].Kind != KindResponse {
		t.Fatalf("recs = %+v, want the two valid records", recs)
	}
	if consumed != len(log) {
		t.Fatalf("consumed %d, want %d", consumed, len(log))
	}
}

// A truncated record — the head of a line whose tail was lost — must be
// rejected by the CRC even when the fragment still splits into fields.
func TestParseRecordsRejectsTruncatedRecord(t *testing.T) {
	full, _ := (Record{Kind: KindResponse, ID: "t1", Status: StatusOK, Payload: []byte("a longer payload here")}).Marshal()
	// Cut mid-payload and terminate with the next record's leading newline.
	next, _ := (Record{Kind: KindRequest, ID: "t2", Payload: []byte("p")}).Marshal()
	torn := append(append([]byte{}, full[:len(full)/2]...), next...)
	recs, _, corrupt, err := ParseRecords(torn)
	if err != nil {
		t.Fatal(err)
	}
	if corrupt < 1 {
		t.Fatalf("corrupt = %d, want >= 1 (the truncated head)", corrupt)
	}
	for _, r := range recs {
		if r.ID == "t1" {
			t.Fatalf("truncated record t1 was accepted: %+v", r)
		}
	}
	if len(recs) != 1 || recs[0].ID != "t2" {
		t.Fatalf("recs = %+v, want only t2", recs)
	}
}

// A single flipped bit anywhere in a record must fail its CRC.
func TestParseRecordsRejectsBitFlips(t *testing.T) {
	line, _ := (Record{Kind: KindRequest, ID: "bf", Payload: []byte("sensitive payload")}).Marshal()
	for i := 1; i < len(line)-1; i++ { // skip the guard newlines
		mutated := append([]byte{}, line...)
		mutated[i] ^= 0x40
		if bytes.Equal(mutated, line) {
			continue
		}
		recs, _, corrupt, err := ParseRecords(mutated)
		if err != nil {
			t.Fatal(err)
		}
		// The mutated log must never yield the original record while
		// claiming nothing was corrupt: every flip lands in the body, a
		// separator, or the CRC field, and all three break the checksum.
		for _, r := range recs {
			if corrupt == 0 && r.ID == "bf" && string(r.Payload) == "sensitive payload" {
				t.Fatalf("bit flip at byte %d accepted silently", i)
			}
		}
	}
}

// Interleaved torn append: writer A dies mid-record, writer B's record
// (with its leading guard newline) lands right after. A's fragment fuses
// with nothing, B survives.
func TestParseRecordsInterleavedTorn(t *testing.T) {
	a, _ := (Record{Kind: KindRequest, ID: "aa", Payload: []byte("from writer a")}).Marshal()
	b, _ := (Record{Kind: KindRequest, ID: "bb", Payload: []byte("from writer b")}).Marshal()
	log := append(append([]byte{}, a[:len(a)-8]...), b...) // a torn before its CRC completes
	recs, consumed, corrupt, err := ParseRecords(log)
	if err != nil {
		t.Fatal(err)
	}
	if corrupt != 1 {
		t.Fatalf("corrupt = %d, want 1 (writer a's fragment)", corrupt)
	}
	if len(recs) != 1 || recs[0].ID != "bb" {
		t.Fatalf("recs = %+v, want only bb", recs)
	}
	if consumed != len(log) {
		t.Fatalf("consumed %d, want %d", consumed, len(log))
	}
}

// Pos must be the byte offset of each record's line start.
func TestParseRecordsPositions(t *testing.T) {
	a, _ := (Record{Kind: KindRequest, ID: "p1", Payload: []byte("x")}).Marshal()
	b, _ := (Record{Kind: KindRequest, ID: "p2", Payload: []byte("y")}).Marshal()
	log := append(append([]byte{}, a...), b...)
	recs, _, _, err := ParseRecords(log)
	if err != nil || len(recs) != 2 {
		t.Fatalf("recs = %+v, err = %v", recs, err)
	}
	if recs[0].Pos >= recs[1].Pos {
		t.Fatalf("positions not increasing: %d then %d", recs[0].Pos, recs[1].Pos)
	}
	if recs[1].Pos >= int64(len(log)) {
		t.Fatalf("Pos %d out of range", recs[1].Pos)
	}
}

func TestParseRecordsSkipsBlankLines(t *testing.T) {
	line, _ := (Record{Kind: KindRequest, ID: "a", Payload: nil}).Marshal()
	data := append([]byte("\n\n"), line...)
	recs, _, corrupt, err := ParseRecords(data)
	if err != nil {
		t.Fatal(err)
	}
	if corrupt != 0 {
		t.Fatalf("corrupt = %d, want 0 (blank lines are not corruption)", corrupt)
	}
	if len(recs) != 1 {
		t.Fatalf("parsed %d records, want 1", len(recs))
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewID()
		if seen[id] {
			t.Fatalf("duplicate ID %q", id)
		}
		seen[id] = true
	}
}

func TestLogNameRoundtrip(t *testing.T) {
	if LogName("wordcount") != "wordcount.log" {
		t.Fatal("LogName wrong")
	}
	m, ok := ModuleFromLog("wordcount.log")
	if !ok || m != "wordcount" {
		t.Fatalf("ModuleFromLog = (%q,%v)", m, ok)
	}
	if _, ok := ModuleFromLog("notalog.txt"); ok {
		t.Fatal("non-log file accepted")
	}
	if _, ok := ModuleFromLog(".log"); ok {
		t.Fatal("empty module name accepted")
	}
}

// Property: any payload survives the log-line encoding, including newlines
// and binary.
func TestRecordPayloadRoundtripProperty(t *testing.T) {
	prop := func(payload []byte, isReq bool) bool {
		rec := Record{Kind: KindResponse, ID: NewID(), Status: StatusOK, Payload: payload}
		if isReq {
			rec = Record{Kind: KindRequest, ID: NewID(), Payload: payload}
		}
		line, err := rec.Marshal()
		if err != nil {
			return false
		}
		got, consumed, corrupt, err := ParseRecords(line)
		if err != nil || corrupt != 0 || consumed != len(line) || len(got) != 1 {
			return false
		}
		return bytes.Equal(got[0].Payload, payload) && got[0].ID == rec.ID
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
