package smartfam

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestRecordMarshalParseRoundtrip(t *testing.T) {
	recs := []Record{
		{Kind: KindRequest, ID: "abc123", Payload: []byte("params here")},
		{Kind: KindResponse, ID: "abc123", Status: StatusOK, Payload: []byte{0, 1, 2, 255}},
		{Kind: KindResponse, ID: "def", Status: StatusError, Payload: []byte("it broke")},
	}
	var log []byte
	for _, r := range recs {
		line, err := r.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		log = append(log, line...)
	}
	got, consumed, err := ParseRecords(log)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != len(log) {
		t.Fatalf("consumed %d, want %d", consumed, len(log))
	}
	if len(got) != len(recs) {
		t.Fatalf("parsed %d records, want %d", len(got), len(recs))
	}
	for i, r := range recs {
		g := got[i]
		if g.Kind != r.Kind || g.ID != r.ID || !bytes.Equal(g.Payload, r.Payload) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, g, r)
		}
		if r.Kind == KindResponse && g.Status != r.Status {
			t.Fatalf("record %d status %q, want %q", i, g.Status, r.Status)
		}
	}
}

func TestMarshalRejectsBadRecords(t *testing.T) {
	cases := []Record{
		{Kind: "WAT", ID: "a"},
		{Kind: KindRequest, ID: ""},
		{Kind: KindRequest, ID: "has space"},
		{Kind: KindResponse, ID: "a", Status: "maybe"},
	}
	for _, r := range cases {
		if _, err := r.Marshal(); err == nil {
			t.Errorf("record %+v marshalled without error", r)
		}
	}
}

func TestParseRecordsSkipsPartialTrailingLine(t *testing.T) {
	full, err := (Record{Kind: KindRequest, ID: "x1", Payload: []byte("p")}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	partial := []byte("RES x1 ok aGVsbG8") // no trailing newline
	data := append(append([]byte{}, full...), partial...)
	recs, consumed, err := ParseRecords(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("parsed %d records, want 1 (partial line must wait)", len(recs))
	}
	if consumed != len(full) {
		t.Fatalf("consumed %d, want %d", consumed, len(full))
	}
}

func TestParseRecordsMalformed(t *testing.T) {
	for _, bad := range []string{
		"REQ onlythree fields\n",
		"BOGUS id - aGk=\n",
		"RES id wat aGk=\n",
		"REQ id - not-base64!!\n",
	} {
		if _, _, err := ParseRecords([]byte(bad)); err == nil {
			t.Errorf("malformed line %q parsed without error", strings.TrimSpace(bad))
		}
	}
}

func TestParseRecordsSkipsBlankLines(t *testing.T) {
	line, _ := (Record{Kind: KindRequest, ID: "a", Payload: nil}).Marshal()
	data := append([]byte("\n\n"), line...)
	recs, _, err := ParseRecords(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("parsed %d records, want 1", len(recs))
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewID()
		if seen[id] {
			t.Fatalf("duplicate ID %q", id)
		}
		seen[id] = true
	}
}

func TestLogNameRoundtrip(t *testing.T) {
	if LogName("wordcount") != "wordcount.log" {
		t.Fatal("LogName wrong")
	}
	m, ok := ModuleFromLog("wordcount.log")
	if !ok || m != "wordcount" {
		t.Fatalf("ModuleFromLog = (%q,%v)", m, ok)
	}
	if _, ok := ModuleFromLog("notalog.txt"); ok {
		t.Fatal("non-log file accepted")
	}
	if _, ok := ModuleFromLog(".log"); ok {
		t.Fatal("empty module name accepted")
	}
}

// Property: any payload survives the log-line encoding, including newlines
// and binary.
func TestRecordPayloadRoundtripProperty(t *testing.T) {
	prop := func(payload []byte, isReq bool) bool {
		rec := Record{Kind: KindResponse, ID: NewID(), Status: StatusOK, Payload: payload}
		if isReq {
			rec = Record{Kind: KindRequest, ID: NewID(), Payload: payload}
		}
		line, err := rec.Marshal()
		if err != nil {
			return false
		}
		got, consumed, err := ParseRecords(line)
		if err != nil || consumed != len(line) || len(got) != 1 {
			return false
		}
		return bytes.Equal(got[0].Payload, payload) && got[0].ID == rec.ID
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
