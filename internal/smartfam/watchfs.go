package smartfam

import (
	"errors"
	"time"
)

// The push-mode invocation front door ("fam v2") rests on two optional FS
// capabilities, both implemented by the internal/nfs client over its
// binary wire framing and by neither DirFS nor the legacy gob codec:
//
//   - WatchFS streams server-push change notifications, replacing the
//     polling Watcher on the hot path (the Watcher and the rescan sweep
//     remain the degraded-mode fallback).
//   - GenStat exposes the server's per-file change generation, closing the
//     Watcher's documented ABA blind spot (a rewrite that restores size
//     and mtime within one poll window still advances the generation).
//
// Consumers must treat both as best-effort accelerators: a stream can be
// lost (its channel closes) and generations only advance for mutations the
// server observed. Offsets and rescans stay the source of truth.

// ErrWatchUnsupported marks a transport that can never push notifications
// (the legacy gob codec, a pre-watch server). It is PERMANENT for the
// connection: consumers stop retrying Watch and run pure polling.
// Transient Watch failures are reported as other errors and may be
// retried. Transport implementations wrap this sentinel.
var ErrWatchUnsupported = errors.New("push watch unsupported on this transport")

// WatchEvent reports that a watched file changed: Name is the
// share-relative file, Gen the server's change generation after the
// mutation (0 when the source does not track generations).
type WatchEvent struct {
	Name string
	Gen  uint64
}

// WatchStream is one live change-notification subscription. Events are
// delivered best-effort (dropped, never blocked on, when the consumer
// lags) and the channel CLOSES when the stream is lost — connection drop,
// server shutdown, or Close — which is the consumer's signal to fall back
// to polling and optionally re-subscribe.
type WatchStream interface {
	// Events returns the notification channel. It is closed exactly once,
	// when the stream dies.
	Events() <-chan WatchEvent
	// Close unsubscribes. Safe to call multiple times and after loss.
	Close() error
}

// WatchFS is an FS that can push change notifications for files whose
// share-relative name starts with prefix ("" watches everything).
type WatchFS interface {
	FS
	Watch(prefix string) (WatchStream, error)
}

// GenStat is an FS that reports a per-file change generation alongside
// size and mtime. The generation is monotonic per file and advances on
// every mutation the backing server performs, even one that leaves size
// and mtime bit-identical.
type GenStat interface {
	StatGen(name string) (size int64, mtime time.Time, gen uint64, err error)
}
