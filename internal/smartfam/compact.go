package smartfam

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// GenName returns the name of a module log's generation sidecar: a tiny
// file holding a counter that CompactLog bumps on every rewrite. Readers
// (daemon and client) re-read it before consuming from a saved offset; a
// changed generation means their offset points into a different file
// image, so they restart from zero. Size checks alone cannot catch the
// case where a compacted log regrows past a stale offset.
func GenName(module string) string { return module + ".gen" }

// ReadGeneration returns the log's current generation (0 when never
// compacted).
func ReadGeneration(fsys FS, module string) int64 {
	data, err := ReadFrom(fsys, GenName(module), 0)
	if err != nil || len(data) == 0 {
		return 0
	}
	n, err := strconv.ParseInt(strings.TrimSpace(string(data)), 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// CompactLog rewrites a module's log file, dropping request/response pairs
// that have completed and keeping only requests still awaiting a response
// (and nothing else). Module log files otherwise grow without bound — one
// line per parameter write and one per result, forever.
//
// Compaction requires quiescence on the share for the module being
// compacted: a host append racing the rewrite can be lost. mcsdd invokes
// it only for idle modules; tests and operators call it directly. Both the
// daemon and the client detect the shrink (size < their offset) and restart
// from offset zero; the daemon's responded-ID set prevents double serving.
func (r *Registry) CompactLog(module string) (kept int, err error) {
	r.mu.Lock()
	_, ok := r.modules[module]
	r.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownModule, module)
	}
	logName := LogName(module)
	data, err := ReadFrom(r.fs, logName, 0)
	if err != nil {
		return 0, err
	}
	// Corrupt lines are dropped by the rewrite: compaction doubles as the
	// log's repair pass.
	recs, _, _, err := ParseRecords(data)
	if err != nil {
		return 0, fmt.Errorf("smartfam: compacting %s: %w", logName, err)
	}
	answered := make(map[string]bool)
	for _, rec := range recs {
		if rec.Kind == KindResponse {
			answered[rec.ID] = true
		}
	}
	var keep bytes.Buffer
	for _, rec := range recs {
		if rec.Kind == KindRequest && !answered[rec.ID] {
			line, err := rec.Marshal()
			if err != nil {
				return kept, err
			}
			keep.Write(line)
			kept++
		}
	}
	// Bump the generation FIRST so a reader that observes the truncated
	// log always also observes the new generation.
	gen := ReadGeneration(r.fs, module) + 1
	if err := r.fs.Create(GenName(module)); err != nil {
		return kept, err
	}
	if err := r.fs.Append(GenName(module), []byte(strconv.FormatInt(gen, 10))); err != nil {
		return kept, err
	}
	if err := r.fs.Create(logName); err != nil {
		return kept, err
	}
	if keep.Len() > 0 {
		if err := r.fs.Append(logName, keep.Bytes()); err != nil {
			return kept, err
		}
	}
	return kept, nil
}

// CompactAll compacts every registered module's log and returns the number
// of logs rewritten.
func (r *Registry) CompactAll() (int, error) {
	n := 0
	for _, name := range r.Names() {
		if _, err := r.CompactLog(name); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
