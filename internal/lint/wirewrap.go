package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// WireWrap keeps typed errors alive across the smartFAM/NFS wire. The
// host decides retry-vs-fail from errors.Is/errors.As on sentinels
// (sched.ErrQueueFull, nfs.ErrDisconnected, smartfam.ErrUnknownModule...),
// so anything that severs the Unwrap chain on the wire path silently
// downgrades backpressure and failover into generic failures. Three rules:
//
//  1. a sentinel error formatted into fmt.Errorf must use %w, not %v/%s;
//  2. an error value formatted with %v/%s in an Errorf call that has no %w
//     at all severs the chain (format the cause with %w, or keep a %w
//     sentinel alongside the %v cause when identity erasure is intended);
//  3. comparing errors with == / != (other than nil checks) breaks once a
//     wrap is added anywhere upstream — use errors.Is.
var WireWrap = &Analyzer{
	Name: "wirewrap",
	Doc: "errors crossing the smartFAM/NFS boundary must stay errors.Is-able: " +
		"%w for sentinels, no ==/!= sentinel comparisons",
	Run: runWireWrap,
}

// wireWrapPkgs are the layers an error can cross the wire through.
var wireWrapPkgs = []string{
	"mcsd/internal/smartfam",
	"mcsd/internal/nfs",
	"mcsd/internal/core",
	"mcsd/internal/sched",
	"mcsd/cmd/mcsdctl",
}

func runWireWrap(pass *Pass) error {
	inScope := false
	for _, p := range wireWrapPkgs {
		if HasPrefixPath(pass.Pkg.Path(), p) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorfCall(pass, n)
			case *ast.BinaryExpr:
				checkErrComparison(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkErrorfCall(pass *Pass, call *ast.CallExpr) {
	if !pass.IsPkgFunc(call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs := parseVerbs(constant.StringVal(tv.Value))
	hasWrap := false
	for _, v := range verbs {
		if v.verb == 'w' {
			hasWrap = true
		}
	}
	for _, v := range verbs {
		if v.verb == 'w' || v.arg < 0 || v.arg+1 >= len(call.Args) {
			continue
		}
		arg := call.Args[v.arg+1]
		if obj := sentinelErrorObj(pass, arg); obj != nil {
			pass.Reportf(arg.Pos(),
				"sentinel %s formatted with %%%c severs its errors.Is identity on the wire; use %%w",
				obj.Name(), v.verb)
			continue
		}
		if !hasWrap && isErrorExpr(pass, arg) && (v.verb == 'v' || v.verb == 's') {
			pass.Reportf(arg.Pos(),
				"error formatted with %%%c and no %%w in the call severs the cause chain; wrap with %%w",
				v.verb)
		}
	}
}

func checkErrComparison(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
		obj := sentinelErrorObj(pass, pair[0])
		if obj == nil {
			continue
		}
		if id, ok := ast.Unparen(pair[1]).(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		pass.Reportf(be.Pos(),
			"comparing against sentinel %s with %s breaks under wrapping; use errors.Is",
			obj.Name(), be.Op)
		return
	}
}

// sentinelErrorObj reports whether expr is a reference to a package-level
// error variable (the sentinel convention: io.EOF, sched.ErrQueueFull...).
func sentinelErrorObj(pass *Pass, expr ast.Expr) types.Object {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	obj, ok := pass.ObjectOf(id).(*types.Var)
	if !ok || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return nil
	}
	if !isErrorType(obj.Type()) {
		return nil
	}
	return obj
}

func isErrorExpr(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	return ok && tv.Type != nil && isErrorType(tv.Type)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}

// fmtVerb is one formatting directive and the operand index it consumes
// (-1 when it consumes none, e.g. after an explicit-index parse failure).
type fmtVerb struct {
	verb rune
	arg  int
}

// parseVerbs walks a printf format string, tracking operand positions
// including '*' widths and '[n]' explicit indexes.
func parseVerbs(format string) []fmtVerb {
	var verbs []fmtVerb
	arg := 0
outer:
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		// flags, width, precision, explicit index
		for i < len(format) {
			c := format[i]
			switch {
			case strings.ContainsRune("#+- 0.", rune(c)) || c >= '0' && c <= '9':
				i++
			case c == '*':
				arg++
				i++
			case c == '[':
				j := strings.IndexByte(format[i:], ']')
				if j < 0 {
					return verbs
				}
				idx := 0
				for _, d := range format[i+1 : i+j] {
					if d < '0' || d > '9' {
						idx = 0
						break
					}
					idx = idx*10 + int(d-'0')
				}
				if idx > 0 {
					arg = idx - 1
				}
				i += j + 1
			default:
				verbs = append(verbs, fmtVerb{verb: rune(c), arg: arg})
				arg++
				continue outer
			}
		}
	}
	return verbs
}
