package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// ChanBound keeps library channel sends from blocking forever: a send in
// code below cmd/ must either sit in a select that can bail out (a default
// arm or a receive arm — conventionally ctx.Done()/a done channel) or
// target a channel whose buffer bound is provable in the same function (a
// make with an explicit non-zero capacity). An unguarded send on an
// unbuffered or foreign channel is how a daemon worker wedges when its
// consumer died first — the deadlock only shows up under the kill/restart
// chaos schedule, never in the happy path.
var ChanBound = &Analyzer{
	Name: "chanbound",
	Doc: "library sends must be select-guarded (ctx/done or default arm) or " +
		"into a channel with a locally provable buffer bound",
	Run: runChanBound,
}

// chanBoundExempt marks the package subtrees free to block on sends: the
// binaries and examples own their channels end to end.
var chanBoundExempt = []string{
	"mcsd/cmd",
	"mcsd/examples",
}

func runChanBound(pass *Pass) error {
	for _, p := range chanBoundExempt {
		if HasPrefixPath(pass.Pkg.Path(), p) {
			return nil
		}
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSendsIn(pass, fd.Body)
		}
	}
	return nil
}

// checkSendsIn walks one function body. Nested function literals are
// checked against their own bodies: a closure's sends must be provable
// from the channels the closure itself can see being made — which a
// literal in the same source function can, since funcBody is the nearest
// enclosing *ast.FuncLit or the declaration body.
func checkSendsIn(pass *Pass, body *ast.BlockStmt) {
	var walk func(n ast.Node, funcBody *ast.BlockStmt, guarded bool) bool
	walk = func(n ast.Node, funcBody *ast.BlockStmt, guarded bool) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(m ast.Node) bool { return walk(m, n.Body, false) })
			return false
		case *ast.SelectStmt:
			g := selectCanBail(n)
			for _, c := range n.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				if cc.Comm != nil {
					ast.Inspect(cc.Comm, func(m ast.Node) bool { return walk(m, funcBody, g) })
				}
				for _, s := range cc.Body {
					ast.Inspect(s, func(m ast.Node) bool { return walk(m, funcBody, false) })
				}
			}
			return false
		case *ast.SendStmt:
			if guarded {
				return true
			}
			checkSend(pass, n, funcBody)
		}
		return true
	}
	ast.Inspect(body, func(n ast.Node) bool { return walk(n, body, false) })
}

// selectCanBail reports whether a select has an escape from a wedged send
// arm: a default clause, or a receive arm (the ctx.Done()/done-channel
// convention) that fires when the counterparty gives up.
func selectCanBail(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default
		}
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			if u, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return true
			}
		case *ast.AssignStmt:
			for _, r := range comm.Rhs {
				if u, ok := ast.Unparen(r).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					return true
				}
			}
		}
	}
	return false
}

func checkSend(pass *Pass, send *ast.SendStmt, funcBody *ast.BlockStmt) {
	key := exprKey(send.Chan)
	if key != "" && provablyBuffered(pass, funcBody, key) {
		return
	}
	pass.Reportf(send.Pos(),
		"unguarded send on %s can block forever; select with a ctx/done or default arm, or make the buffer bound provable here",
		sendName(key))
}

func sendName(key string) string {
	if key == "" {
		return "a channel"
	}
	return key
}

// provablyBuffered reports whether body assigns key a make(chan, n) with
// an explicit non-zero capacity, directly or through a composite-literal
// field (f := &T{ch: make(chan X, 1)} proves f.ch). Index expressions are
// normalized to [*], so a[i] = make(...) proves a send on a[j].
func provablyBuffered(pass *Pass, body *ast.BlockStmt, key string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if matchesMake(pass, key, exprKey(lhs), n.Rhs[i]) {
						found = true
					}
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i, name := range n.Names {
					if matchesMake(pass, key, name.Name, n.Values[i]) {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// matchesMake reports whether assigning rhs to lhsKey proves that key is
// buffered: either directly (lhsKey == key and rhs is a buffered make) or
// through a composite literal whose field completes the key.
func matchesMake(pass *Pass, key, lhsKey string, rhs ast.Expr) bool {
	if lhsKey == key && isBufferedMake(pass, rhs) {
		return true
	}
	e := ast.Unparen(rhs)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	cl, ok := e.(*ast.CompositeLit)
	if !ok {
		return false
	}
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		fid, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		if lhsKey+"."+fid.Name == key && isBufferedMake(pass, kv.Value) {
			return true
		}
	}
	return false
}

// isBufferedMake matches make(chan T, n) with an explicit capacity that is
// not the constant zero. A non-constant capacity counts: writing one is a
// local statement of the bound (make(chan R, workers)), which is the
// invariant this analyzer wants on the page.
func isBufferedMake(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); !isBuiltin {
		return false
	}
	if !isChanType(pass.typeOf(call)) {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[1]]
	if ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if v, exact := constant.Int64Val(tv.Value); exact && v == 0 {
			return false
		}
	}
	return true
}

// exprKey canonicalizes a channel/lock receiver expression for matching:
// identifiers and selector chains print as written, every index collapses
// to [*], anything else (call results, literals) is unmatchable.
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.IndexExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "[*]"
	case *ast.StarExpr:
		return exprKey(e.X)
	}
	return ""
}
