package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Suppression directives. Two forms, both grep-able and both requiring a
// stated reason so every exception to an invariant is auditable:
//
//	//mcsdlint:allow name1,name2 -- reason
//	    suppresses the named analyzers on the directive's own line and on
//	    the line below it (so it works both as a trailing comment and as a
//	    comment immediately above the offending statement).
//
//	//mcsdlint:fsboundary -- reason
//	    marks a whole file as a deliberate implementation of the storage
//	    boundary (the os-backed smartfam.FS, the NFS server's backing
//	    store). fsdiscipline skips such files; everything else still runs.
//
// A directive with no "-- reason" tail is itself reported as a diagnostic.
type directives struct {
	// allow maps "file:line" -> set of analyzer names suppressed there.
	allow map[string]map[string]bool
	// boundary holds filenames carrying //mcsdlint:fsboundary.
	boundary map[string]bool
}

const directivePrefix = "//mcsdlint:"

func parseDirectives(fset *token.FileSet, files []*ast.File) (*directives, []Diagnostic) {
	d := &directives{
		allow:    make(map[string]map[string]bool),
		boundary: make(map[string]bool),
	}
	var diags []Diagnostic
	bad := func(pos token.Position, msg string) {
		diags = append(diags, Diagnostic{Analyzer: "mcsdlint", Pos: pos, Message: msg})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				body := strings.TrimPrefix(c.Text, directivePrefix)
				verb, rest, _ := strings.Cut(body, " ")
				args, reason, hasReason := strings.Cut(rest, "--")
				args = strings.TrimSpace(args)
				if !hasReason || strings.TrimSpace(reason) == "" {
					bad(pos, "directive needs a reason: //mcsdlint:"+verb+" ... -- why")
					continue
				}
				switch verb {
				case "fsboundary":
					d.boundary[pos.Filename] = true
				case "allow":
					if args == "" {
						bad(pos, "//mcsdlint:allow needs analyzer names")
						continue
					}
					for _, name := range strings.Split(args, ",") {
						name = strings.TrimSpace(name)
						for _, line := range []int{pos.Line, pos.Line + 1} {
							key := lineKey(pos.Filename, line)
							if d.allow[key] == nil {
								d.allow[key] = make(map[string]bool)
							}
							d.allow[key][name] = true
						}
					}
				default:
					bad(pos, "unknown directive //mcsdlint:"+verb)
				}
			}
		}
	}
	return d, diags
}

func (d *directives) allowed(analyzer string, pos token.Position) bool {
	set := d.allow[lineKey(pos.Filename, pos.Line)]
	return set[analyzer] || set["all"]
}

func lineKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}
