package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Suppression directives. Two forms, both grep-able and both requiring a
// stated reason so every exception to an invariant is auditable:
//
//	//mcsdlint:allow name1,name2 -- reason
//	    suppresses the named analyzers on the directive's own line and on
//	    the line below it (so it works both as a trailing comment and as a
//	    comment immediately above the offending statement).
//
//	//mcsdlint:fsboundary -- reason
//	    marks a whole file as a deliberate implementation of the storage
//	    boundary (the os-backed smartfam.FS, the NFS server's backing
//	    store). fsdiscipline skips such files; everything else still runs.
//
// A directive with no "-- reason" tail is itself reported as a diagnostic,
// and so is an allow that suppresses nothing: an exception that outlives
// the code it excused is a hole in the invariant, not a record of one.
type directives struct {
	// allow maps "file:line" -> the directives whose suppression window
	// covers that line (each directive covers its own line and the next).
	allow map[string][]*allowDirective
	// allows lists every well-formed allow directive, in source order, for
	// the post-run unused sweep.
	allows []*allowDirective
	// boundary holds filenames carrying //mcsdlint:fsboundary.
	boundary map[string]bool
}

// allowDirective is one parsed //mcsdlint:allow comment. used records which
// of its analyzer names actually suppressed a diagnostic this run.
type allowDirective struct {
	pos   token.Position
	names []string
	used  map[string]bool
}

const directivePrefix = "//mcsdlint:"

func parseDirectives(fset *token.FileSet, files []*ast.File) (*directives, []Diagnostic) {
	d := &directives{
		allow:    make(map[string][]*allowDirective),
		boundary: make(map[string]bool),
	}
	var diags []Diagnostic
	bad := func(pos token.Position, msg string) {
		diags = append(diags, Diagnostic{Analyzer: "mcsdlint", Pos: pos, Message: msg})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				body := strings.TrimPrefix(c.Text, directivePrefix)
				verb, rest, _ := strings.Cut(body, " ")
				args, reason, hasReason := strings.Cut(rest, "--")
				args = strings.TrimSpace(args)
				if !hasReason || strings.TrimSpace(reason) == "" {
					bad(pos, "directive needs a reason: //mcsdlint:"+verb+" ... -- why")
					continue
				}
				switch verb {
				case "fsboundary":
					d.boundary[pos.Filename] = true
				case "allow":
					if args == "" {
						bad(pos, "//mcsdlint:allow needs analyzer names")
						continue
					}
					a := &allowDirective{pos: pos, used: make(map[string]bool)}
					for _, name := range strings.Split(args, ",") {
						a.names = append(a.names, strings.TrimSpace(name))
					}
					d.allows = append(d.allows, a)
					for _, line := range []int{pos.Line, pos.Line + 1} {
						key := lineKey(pos.Filename, line)
						d.allow[key] = append(d.allow[key], a)
					}
				default:
					bad(pos, "unknown directive //mcsdlint:"+verb)
				}
			}
		}
	}
	return d, diags
}

// allowed reports whether analyzer is suppressed at pos, marking the
// matching directive name as used for the post-run unused sweep.
func (d *directives) allowed(analyzer string, pos token.Position) bool {
	for _, a := range d.allow[lineKey(pos.Filename, pos.Line)] {
		for _, name := range a.names {
			if name == analyzer || name == "all" {
				a.used[name] = true
				return true
			}
		}
	}
	return false
}

// unusedAllows reports every allow directive naming a ran analyzer that
// suppressed nothing. Names outside the ran set are skipped (a partial
// `mcsdlint -run` must not condemn the other analyzers' exceptions), and so
// is the blanket "all" (its point is breadth, not one diagnostic).
func (d *directives) unusedAllows(ran map[string]bool) []Diagnostic {
	var diags []Diagnostic
	for _, a := range d.allows {
		for _, name := range a.names {
			if name == "all" || !ran[name] || a.used[name] {
				continue
			}
			diags = append(diags, Diagnostic{
				Analyzer: "mcsdlint",
				Pos:      a.pos,
				Message: fmt.Sprintf(
					"unused //mcsdlint:allow %s: nothing here trips %s any more; delete the directive", name, name),
			})
		}
	}
	return diags
}

func lineKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}
