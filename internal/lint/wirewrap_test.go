package lint

import (
	"reflect"
	"testing"
)

func TestParseVerbs(t *testing.T) {
	cases := []struct {
		format string
		want   []fmtVerb
	}{
		{"no verbs", nil},
		{"%d", []fmtVerb{{'d', 0}}},
		{"%s then %w", []fmtVerb{{'s', 0}, {'w', 1}}},
		{"100%% done: %v", []fmtVerb{{'v', 0}}},
		{"%+v %#x % d", []fmtVerb{{'v', 0}, {'x', 1}, {'d', 2}}},
		{"%8.3f", []fmtVerb{{'f', 0}}},
		// '*' consumes an operand for the width before the verb's own.
		{"%*d %s", []fmtVerb{{'d', 1}, {'s', 2}}},
		// Explicit index rewinds the operand counter.
		{"%[2]s %[1]w", []fmtVerb{{'s', 1}, {'w', 0}}},
		{"%v %[1]v", []fmtVerb{{'v', 0}, {'v', 0}}},
		// Unterminated index: parse stops without panicking.
		{"%[2s", nil},
	}
	for _, c := range cases {
		if got := parseVerbs(c.format); !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseVerbs(%q) = %v, want %v", c.format, got, c.want)
		}
	}
}
