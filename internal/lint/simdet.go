package lint

import (
	"go/ast"
	"go/types"
)

// SimDet keeps the scale-model layers replayable: the paper's Fig. 6/7
// reproduction (internal/experiments) runs over sim/memsim/netsim models
// whose outputs must be a pure function of their inputs, or a regression
// in the modelled numbers can never be bisected. Three nondeterminism
// sources are banned: wall-clock reads (inject a clock), the global
// math/rand source (thread a seeded *rand.Rand), and ranging over a map
// (iterate sorted keys). Files that deliberately measure the real engine
// against the wall clock — the calibration path — opt out per line with
// //mcsdlint:allow simdet -- reason.
var SimDet = &Analyzer{
	Name: "simdet",
	Doc: "no wall clock, global rand, or map-iteration-order dependence in " +
		"the sim/memsim/netsim/experiments scale-model layers",
	Run: runSimDet,
}

// simDetPkgs are the deterministic-by-contract package subtrees.
var simDetPkgs = []string{
	"mcsd/internal/sim",
	"mcsd/internal/memsim",
	"mcsd/internal/netsim",
	"mcsd/internal/experiments",
}

// globalRandFuncs are the math/rand (and v2) top-level functions that
// draw from the shared process-wide source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true, "Int63": true,
	"Int63n": true, "Int32": true, "Int32N": true, "Int64": true, "Int64N": true,
	"IntN": true, "Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"UintN": true, "Uint": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true, "Shuffle": true,
	"Seed": true, "Read": true, "N": true,
}

func runSimDet(pass *Pass) error {
	inScope := false
	for _, p := range simDetPkgs {
		if HasPrefixPath(pass.Pkg.Path(), p) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				switch {
				case pass.IsPkgFunc(n, "time", "Now"), pass.IsPkgFunc(n, "time", "Since"),
					pass.IsPkgFunc(n, "time", "Until"):
					pass.Reportf(n.Pos(),
						"wall-clock read in a deterministic sim layer; inject a clock func so replays are exact")
				default:
					if fn := pass.CalleeFunc(n); fn != nil && fn.Pkg() != nil &&
						(fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2") &&
						globalRandFuncs[fn.Name()] &&
						fn.Type().(*types.Signature).Recv() == nil {
						pass.Reportf(n.Pos(),
							"global math/rand source in a deterministic sim layer; thread a seeded *rand.Rand")
					}
				}
			case *ast.RangeStmt:
				if tv, ok := pass.TypesInfo.Types[n.X]; ok && tv.Type != nil {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(),
							"map iteration order is nondeterministic; range over sorted keys so sim output is replayable")
					}
				}
			}
			return true
		})
	}
	return nil
}
