package lint

import (
	"go/ast"
)

// CtxFlow enforces cancellation discipline below the binaries: context
// roots are created in cmd/ (and examples/) only, and everything under
// internal/ propagates the caller's context. A context.Background() deep
// in a library detaches that subtree from shutdown and deadlines; an
// uncancellable time.Sleep in a retry/backoff loop holds daemon shutdown
// hostage to the backoff schedule. Retry loops must select on ctx.Done()
// and time.After (or take an injected sleep func, as netsim's limiter
// does).
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "no context.Background()/TODO() and no bare time.Sleep below cmd/: " +
		"library code must propagate the caller's context",
	Run: runCtxFlow,
}

// ctxFlowExempt marks the package subtrees allowed to create context
// roots and sleep freely: the binaries and the runnable examples.
var ctxFlowExempt = []string{
	"mcsd/cmd",
	"mcsd/examples",
}

func runCtxFlow(pass *Pass) error {
	for _, p := range ctxFlowExempt {
		if HasPrefixPath(pass.Pkg.Path(), p) {
			return nil
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case pass.IsPkgFunc(call, "context", "Background"),
				pass.IsPkgFunc(call, "context", "TODO"):
				pass.Reportf(call.Pos(),
					"context root below cmd/ detaches this path from cancellation; accept and propagate a ctx parameter")
			case pass.IsPkgFunc(call, "time", "Sleep"):
				pass.Reportf(call.Pos(),
					"uncancellable time.Sleep below cmd/; select on ctx.Done() and time.After, or inject a sleep func")
			}
			return true
		})
	}
	return nil
}
