package smartfam

import "os"

func direct() {
	os.Open("x")                      // want "direct os.Open bypasses smartfam.FS"
	os.Create("x")                    // want "direct os.Create bypasses smartfam.FS"
	os.ReadFile("x")                  // want "direct os.ReadFile bypasses smartfam.FS"
	os.WriteFile("x", nil, 0o644)     // want "direct os.WriteFile bypasses smartfam.FS"
	os.Rename("a", "b")               // want "direct os.Rename bypasses smartfam.FS"
	os.MkdirAll("d", 0o755)           // want "direct os.MkdirAll bypasses smartfam.FS"
	os.Stat("x")                      // want "direct os.Stat bypasses smartfam.FS"
	os.Getenv("HOME")                 // env access is not file I/O: no diagnostic
	os.OpenFile("x", os.O_RDONLY, 0) // want "direct os.OpenFile bypasses smartfam.FS"
}

func suppressed() {
	//mcsdlint:allow fsdiscipline -- fixture: directive covers the next line
	os.Remove("x")
	os.Remove("y") //mcsdlint:allow fsdiscipline -- fixture: directive covers its own line
}
