package smartfam

//mcsdlint:fsboundary -- fixture: this file models the os-backed FS leaf

import "os"

func boundaryImpl() {
	// A whole-file boundary opt-out: none of these are reported.
	os.Open("x")
	os.Create("x")
	os.Remove("x")
}
