package other

import "os"

// This package is outside the disciplined subtrees, so direct os I/O is
// not fsdiscipline's business here.
func free() {
	os.Open("x")
	os.WriteFile("x", nil, 0o644)
}
