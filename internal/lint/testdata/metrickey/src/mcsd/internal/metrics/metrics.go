// Package metrics is a miniature fake of the real registry package: same
// import path, same name-taking method surface, just enough for the
// metrickey fixtures to type-check.
package metrics

const (
	DaemonRequests = "daemon.requests"
	NFSOpPrefix    = "nfs.ops."

	NFSClientInflight       = "nfs.client.inflight"
	NFSClientPipelineStalls = "nfs.client.pipeline_stalls"
	NFSCacheHits            = "nfs.cache.hits"
	NFSCacheBytesSaved      = "nfs.cache.bytes_saved"

	FleetDispatches   = "fleet.dispatches"
	FleetSpeculations = "fleet.speculations"
	FleetNodeFailures = "fleet.node_failures"
	FleetMerge        = "fleet.merge"

	FleetReadRepairs    = "fleet.read_repairs"
	FleetNodeRecoveries = "fleet.node_recoveries"
	FleetScrubRepairs   = "fleet.scrub.repairs"
	FleetScrubBytes     = "fleet.scrub.bytes"

	FamPushActive   = "smartfam.fam.push_active"
	FamPushEvents   = "smartfam.fam.push_events"
	FamDegraded     = "smartfam.fam.degraded"
	FamBatchFlushes = "smartfam.fam.batch_flushes"
	FamRespFlushes  = "smartfam.fam.resp_batch_flushes"

	NFSWatchStreams  = "nfs.watch.streams"
	NFSWatchNotifies = "nfs.watch.notifies"
	NFSWatchDropped  = "nfs.watch.dropped"
	NFSWatchEvents   = "nfs.watch.events"
)

type Registry struct{}

type Counter struct{}

func (c *Counter) Inc() {}

func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) Counter(name string) *Counter { return &Counter{} }

func (r *Registry) Gauge(name string) *Counter { return &Counter{} }

func (r *Registry) Timer(name string) *Counter { return &Counter{} }
