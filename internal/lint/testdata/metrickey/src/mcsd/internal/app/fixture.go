package app

import (
	"mcsd/internal/metrics"
	"mcsd/internal/trace"
)

const localName = "app.local"

func counters(r *metrics.Registry, op string) {
	r.Counter(metrics.DaemonRequests)      // ok: full registry constant
	r.Gauge(metrics.DaemonRequests)        // ok: all name-taking methods are checked
	r.Timer(metrics.DaemonRequests)        // ok
	r.Counter("daemon.requests")           // want "is not a registry constant"
	r.Counter(localName)                   // want "is not a registry constant"
	r.Counter(metrics.NFSOpPrefix + op)    // ok: prefix constant + dynamic suffix
	r.Counter(metrics.NFSOpPrefix)         // want "is a prefix constant; concatenate a suffix"
	r.Counter(op + metrics.NFSOpPrefix)    // want "dynamic metric/trace name must start with a \\*Prefix constant"
	r.Counter(metrics.DaemonRequests + op) // want "not a \\*Prefix constant"
	r.Counter(op)                          // want "must be a constant"
}

// nfsCounters covers the NFS data-path names: client pipeline gauges and
// block-cache counters are registry constants like any other — hand-rolled
// strings that happen to collide with them still get flagged.
func nfsCounters(r *metrics.Registry) {
	r.Gauge(metrics.NFSClientInflight)         // ok
	r.Counter(metrics.NFSClientPipelineStalls) // ok
	r.Counter(metrics.NFSCacheHits)            // ok
	r.Counter(metrics.NFSCacheBytesSaved)      // ok
	r.Counter("nfs.client.inflight")           // want "is not a registry constant"
	r.Counter("nfs.cache.hits")                // want "is not a registry constant"
}

// fleetCounters covers the multi-SD coordinator's accounting: dispatch,
// speculation and failover counters plus the merge timer are registry
// constants; the literal spellings are still rejected.
func fleetCounters(r *metrics.Registry) {
	r.Counter(metrics.FleetDispatches)   // ok
	r.Counter(metrics.FleetSpeculations) // ok
	r.Counter(metrics.FleetNodeFailures) // ok
	r.Timer(metrics.FleetMerge)          // ok
	r.Counter("fleet.dispatches")        // want "is not a registry constant"
	r.Timer("fleet.merge")               // want "is not a registry constant"
}

// healCounters covers the replication/self-healing tier's accounting:
// read-repair, probe-recovery and scrub counters are registry constants;
// the literal spellings are still rejected.
func healCounters(r *metrics.Registry) {
	r.Counter(metrics.FleetReadRepairs)    // ok
	r.Counter(metrics.FleetNodeRecoveries) // ok
	r.Counter(metrics.FleetScrubRepairs)   // ok
	r.Counter(metrics.FleetScrubBytes)     // ok
	r.Counter("fleet.read_repairs")        // want "is not a registry constant"
	r.Counter("fleet.scrub.repairs")       // want "is not a registry constant"
}

// famCounters covers the push-mode invocation front door's accounting
// (fam v2): the notify-stream gauge/counters and both group-commit flush
// counters are registry constants; literal spellings — including the easy
// mistake of writing the daemon-side flush name without its "batch"
// segment — are rejected.
func famCounters(r *metrics.Registry) {
	r.Gauge(metrics.FamPushActive)         // ok
	r.Counter(metrics.FamPushEvents)       // ok
	r.Counter(metrics.FamDegraded)         // ok
	r.Counter(metrics.FamBatchFlushes)     // ok
	r.Counter(metrics.FamRespFlushes)      // ok
	r.Counter("smartfam.fam.push_events")  // want "is not a registry constant"
	r.Counter("smartfam.fam.resp_flushes") // want "is not a registry constant"
	r.Gauge("smartfam.fam.push_active")    // want "is not a registry constant"
}

// watchCounters covers the NFS change-notification lane: server watch
// registrations, notify frames and client-side deliveries are registry
// constants like the rest of the data path.
func watchCounters(r *metrics.Registry) {
	r.Gauge(metrics.NFSWatchStreams)    // ok
	r.Counter(metrics.NFSWatchNotifies) // ok
	r.Counter(metrics.NFSWatchDropped)  // ok
	r.Counter(metrics.NFSWatchEvents)   // ok
	r.Counter("nfs.watch.notifies")     // want "is not a registry constant"
	r.Counter("nfs.watch.events")       // want "is not a registry constant"
}

func spans(t *trace.Tracer, job string) {
	s := t.Start(trace.SpanRecovery)     // ok
	s.Child(trace.SpanSchedPrefix + job) // ok
	s2 := t.Start("adhoc span")          // want "is not a registry constant"
	_ = s2.Child(job)                    // want "must be a constant"
	_ = t.Start(trace.SpanSchedPrefix)   // want "is a prefix constant"
}
