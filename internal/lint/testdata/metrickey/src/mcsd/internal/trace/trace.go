// Package trace is a miniature fake of the real tracer package for the
// metrickey fixtures.
package trace

const (
	SpanRecovery    = "smartfam.recovery"
	SpanSchedPrefix = "sched "
)

type Tracer struct{}

type Span struct{}

func (t *Tracer) Start(name string) *Span { return &Span{} }

func (s *Span) Child(name string) *Span { return &Span{} }
