// Command tool pins the exemption: binaries own their channels end to end,
// so an unguarded send under cmd/ is not flagged.
package main

func main() {
	ch := make(chan int)
	go func() { <-ch }()
	ch <- 1
}
