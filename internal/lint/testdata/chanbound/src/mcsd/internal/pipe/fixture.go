package pipe

import "context"

// The flagged form: a send on a foreign channel with no escape.
func unguarded(ch chan int) {
	ch <- 1 // want "unguarded send on ch can block forever"
}

// A default arm can always bail.
func selectDefault(ch chan int) {
	select {
	case ch <- 1:
	default:
	}
}

// A receive arm (the ctx.Done()/done-channel convention) can bail too.
func selectDone(ctx context.Context, ch chan int) {
	select {
	case ch <- 1:
	case <-ctx.Done():
	}
}

// A select of nothing but sends has no escape: every arm is flagged.
func selectSendOnly(a, b chan int) {
	select {
	case a <- 1: // want "unguarded send on a can block forever"
	case b <- 2: // want "unguarded send on b can block forever"
	}
}

// A make with an explicit capacity in the same function proves the bound.
func localBuffer() chan int {
	ch := make(chan int, 1)
	ch <- 1
	return ch
}

// A symbolic capacity counts: writing it is the local statement of the
// bound this analyzer wants on the page.
func symbolicCap(n int) {
	out := make(chan int, n)
	out <- 1
	close(out)
}

// An explicitly zero capacity proves nothing.
func zeroCap() {
	ch := make(chan int, 0)
	ch <- 1 // want "unguarded send on ch can block forever"
}

func unbufferedMake() {
	ch := make(chan int)
	ch <- 1 // want "unguarded send on ch can block forever"
}

type job struct {
	ch chan int
}

// A composite-literal field make proves the field's channel.
func composite() *job {
	f := &job{ch: make(chan int, 1)}
	f.ch <- 1
	return f
}

// Index expressions normalize to [*]: a make at any index proves a send at
// any index.
func indexed(n int) []chan int {
	chans := make([]chan int, n)
	for i := range chans {
		chans[i] = make(chan int, 1)
	}
	chans[0] <- 1
	return chans
}

// A closure proves bounds only from its own body: the enclosing function's
// make is not visible evidence, because the closure may outlive it.
func closureScope() {
	ch := make(chan int, 1)
	f := func() {
		ch <- 1 // want "unguarded send on ch can block forever"
	}
	f()
	ch <- 1
}

// A reasoned allow is the escape hatch.
func excused(ch chan int) {
	//mcsdlint:allow chanbound -- fixture: the consumer is provably parked on this channel
	ch <- 1
}
