package worker

import (
	"context"
	"time"
)

func roots() {
	_ = context.Background() // want "context root below cmd/ detaches this path from cancellation"
	_ = context.TODO()       // want "context root below cmd/ detaches this path from cancellation"
}

func backoff(ctx context.Context) error {
	for i := 0; i < 3; i++ {
		time.Sleep(time.Millisecond) // want "uncancellable time.Sleep below cmd/"
	}
	// The blessed backoff shape: cancellable wait.
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(time.Millisecond):
	}
	return nil
}
