package main

import (
	"context"
	"time"
)

// cmd/ is where context roots belong; ctxflow is silent here.
func main() {
	ctx := context.Background()
	_ = ctx
	time.Sleep(0)
}
