package concurrency

//mcsdlint:fsboundary -- fixture: the boundary flag silences fsdiscipline only

// The fsboundary marker must not blunt the concurrency analyzers: a leak
// in a boundary file is still a leak.
func boundaryLeak() {
	go func() { // want "goroutine has no provable termination path"
		for {
		}
	}()
}
