package concurrency

import "context"

// An allow that suppresses nothing is itself reported once its analyzer
// runs: a stale exception is a hole in the invariant, not a record of one.

//mcsdlint:allow goroleak -- stale: nothing below leaks any more // want "unused //mcsdlint:allow goroleak"
func scoped(ctx context.Context) {
	go run(ctx)
}

func run(ctx context.Context) { <-ctx.Done() }

// A used allow is hygienic: suppression consumed, nothing reported.
func excused() {
	//mcsdlint:allow goroleak -- fixture: a deliberate free-runner
	go func() {
		for {
		}
	}()
}

// A reason-less allow reports itself AND suppresses nothing: the leak
// below it is still flagged.
func leaky() {
	//mcsdlint:allow goroleak // want "directive needs a reason"
	go func() { // want "goroutine has no provable termination path"
		for {
		}
	}()
}

// The blanket "all" is exempt from the unused sweep: its point is breadth,
// not any one diagnostic.
//
//mcsdlint:allow all -- fixture: exercising the blanket exemption
func blanket(ctx context.Context) {
	go run(ctx)
}
