package smartfam

import "os"

// Directive hygiene: a suppression without a reason is itself reported,
// and does NOT suppress, so the os call below is still flagged.

//mcsdlint:allow fsdiscipline // want "directive needs a reason"
func bad() {
	os.Open("x") // want "direct os.Open bypasses smartfam.FS"
}

//mcsdlint:frobnicate -- no such verb // want "unknown directive"
func unknown() {}
