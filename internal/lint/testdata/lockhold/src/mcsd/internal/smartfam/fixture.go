package smartfam

import "sync"

// FS stands in for the share surface: an interface receiver is I/O by
// contract, so calls through it are flagged even in its own package.
type FS interface {
	Append(name string, p []byte) error
}

// Client stands in for a concrete client: its methods are implementation
// fabric inside this package and I/O only from outside it.
type Client struct {
	mu sync.Mutex
}

// Ping is the method the daemon fixture calls across the package boundary.
func (c *Client) Ping() error { return nil }

type journal struct {
	mu   sync.Mutex
	fsys FS
}

func (j *journal) flush(line []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.fsys.Append("log", line) // want "FS.Append share I/O while j.mu is held"
}

// Intra-package concrete-receiver calls are the implementation itself, not
// calls onto the wire: clean.
func (c *Client) helper() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Ping()
}
