package daemon

import (
	"sync"

	"mcsd/internal/smartfam"
)

type host struct {
	mu sync.Mutex
	cl *smartfam.Client
}

// From outside its package the concrete client is I/O: a dead peer stalls
// the call, and the call stalls everyone parked on h.mu.
func (h *host) bad() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.cl.Ping() // want "Client.Ping share I/O while h.mu is held"
}

// The blessed shape: snapshot under the lock, call outside it.
func (h *host) good() error {
	h.mu.Lock()
	cl := h.cl
	h.mu.Unlock()
	return cl.Ping()
}
