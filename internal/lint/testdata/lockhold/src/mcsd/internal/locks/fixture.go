package locks

import (
	"sync"
	"time"
)

type state struct {
	a, b sync.Mutex
	mu   sync.Mutex
	ch   chan int
}

func (s *state) sendHeld() {
	s.mu.Lock()
	s.ch <- 1 // want "channel send while s.mu is held"
	s.mu.Unlock()
}

func (s *state) recvHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-s.ch // want "channel receive while s.mu is held"
}

func (s *state) sleepHeld() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while s.mu is held"
	s.mu.Unlock()
}

func (s *state) waitHeld(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want "WaitGroup.Wait while s.mu is held"
}

func (s *state) rangeHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for range s.ch { // want "range over a channel while s.mu is held"
	}
}

func (s *state) selectHeld(done chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select without a default arm while s.mu is held"
	case <-done:
	}
}

// A select with a default arm cannot park the critical section.
func (s *state) selectDefault() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default:
	}
}

// Unlock-before-blocking is the blessed shape: drain state under the lock,
// release, then block.
func (s *state) drainThenSend() {
	s.mu.Lock()
	v := len(s.ch)
	s.mu.Unlock()
	s.ch <- v
}

// A terminating branch's unlock stays on its own path; the fallthrough
// still holds the lock.
func (s *state) earlyReturn(ok bool) {
	s.mu.Lock()
	if !ok {
		s.mu.Unlock()
		return
	}
	s.ch <- 1 // want "channel send while s.mu is held"
	s.mu.Unlock()
}

func (s *state) neverUnlocked() {
	s.mu.Lock() // want "mu is locked but never unlocked in this function"
	s.ch = nil
}

// consistentOrder establishes the package's a-then-b nesting order...
func (s *state) consistentOrder() {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}

// ...which reversedOrder then violates.
func (s *state) reversedOrder() {
	s.b.Lock()
	s.a.Lock() // want "inconsistent lock order: b then a here, a then b at"
	s.a.Unlock()
	s.b.Unlock()
}

// A reasoned allow is the escape hatch.
func (s *state) excused() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//mcsdlint:allow lockhold -- fixture: this send is the handoff the lock exists to protect
	s.ch <- 1
}
