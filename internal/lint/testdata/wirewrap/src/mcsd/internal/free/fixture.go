package free

import (
	"errors"
	"fmt"
	"io"
)

var errLocal = errors.New("free: local")

// Outside the wire-crossing subtrees, wirewrap does not apply.
func unchecked(err error) error {
	if err == io.EOF {
		return fmt.Errorf("x: %v", errLocal)
	}
	return nil
}
