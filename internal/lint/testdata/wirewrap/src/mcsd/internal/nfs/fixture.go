package nfs

import (
	"errors"
	"fmt"
	"io"
)

// ErrDisconnected stands in for the package's wire sentinels.
var ErrDisconnected = errors.New("nfs: disconnected")

func wrapping(err error) error {
	// The %w-vs-%v distinction: wrapping keeps errors.Is alive, %v/%s on a
	// sentinel severs it.
	if true {
		return fmt.Errorf("reading: %w", ErrDisconnected) // ok: wrapped
	}
	if true {
		return fmt.Errorf("reading: %v", ErrDisconnected) // want "sentinel ErrDisconnected formatted with %v severs"
	}
	if true {
		return fmt.Errorf("reading: %s", io.EOF) // want "sentinel EOF formatted with %s severs"
	}
	if true {
		return fmt.Errorf("reading: %+v", ErrDisconnected) // want "sentinel ErrDisconnected formatted with %v severs"
	}
	// A non-sentinel error under %v with no %w anywhere severs the chain.
	if true {
		return fmt.Errorf("op failed: %v", err) // want "error formatted with %v and no %w in the call severs the cause chain"
	}
	// ... but alongside a %w it is deliberate identity-erasure: allowed.
	return fmt.Errorf("op failed: %v: %w", err, ErrDisconnected)
}

func comparisons(err error) bool {
	if err == ErrDisconnected { // want "comparing against sentinel ErrDisconnected with == breaks under wrapping"
		return true
	}
	if err != io.EOF { // want "comparing against sentinel EOF with != breaks under wrapping"
		return true
	}
	if err == nil { // nil checks are fine
		return false
	}
	return errors.Is(err, ErrDisconnected) // the blessed form
}
