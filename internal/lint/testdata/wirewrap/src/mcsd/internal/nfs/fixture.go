package nfs

import (
	"errors"
	"fmt"
	"io"
)

// ErrDisconnected stands in for the package's wire sentinels.
var ErrDisconnected = errors.New("nfs: disconnected")

// ErrWatchUnsupported stands in for the push-watch capability sentinel:
// consumers decide "permanently pushless vs retry the watch" via
// errors.Is, so its identity must survive every transport wrapper.
var ErrWatchUnsupported = errors.New("push watch unsupported")

func wrapping(err error) error {
	// The %w-vs-%v distinction: wrapping keeps errors.Is alive, %v/%s on a
	// sentinel severs it.
	if true {
		return fmt.Errorf("reading: %w", ErrDisconnected) // ok: wrapped
	}
	if true {
		return fmt.Errorf("reading: %v", ErrDisconnected) // want "sentinel ErrDisconnected formatted with %v severs"
	}
	if true {
		return fmt.Errorf("reading: %s", io.EOF) // want "sentinel EOF formatted with %s severs"
	}
	if true {
		return fmt.Errorf("reading: %+v", ErrDisconnected) // want "sentinel ErrDisconnected formatted with %v severs"
	}
	// A non-sentinel error under %v with no %w anywhere severs the chain.
	if true {
		return fmt.Errorf("op failed: %v", err) // want "error formatted with %v and no %w in the call severs the cause chain"
	}
	// ... but alongside a %w it is deliberate identity-erasure: allowed.
	return fmt.Errorf("op failed: %v: %w", err, ErrDisconnected)
}

// watchCapability mirrors how transports relay the push-capability
// sentinel: wrapped with %w it stays a capability signal; %v turns a
// permanent "run pure polling" decision into an endlessly retried error.
func watchCapability(err error) error {
	if true {
		return fmt.Errorf("faultfs: %w", ErrWatchUnsupported) // ok: wrapped
	}
	if true {
		return fmt.Errorf("arming watch: %v", ErrWatchUnsupported) // want "sentinel ErrWatchUnsupported formatted with %v severs"
	}
	if err == ErrWatchUnsupported { // want "comparing against sentinel ErrWatchUnsupported with == breaks under wrapping"
		return nil
	}
	if errors.Is(err, ErrWatchUnsupported) { // the blessed form
		return nil
	}
	return err
}

func comparisons(err error) bool {
	if err == ErrDisconnected { // want "comparing against sentinel ErrDisconnected with == breaks under wrapping"
		return true
	}
	if err != io.EOF { // want "comparing against sentinel EOF with != breaks under wrapping"
		return true
	}
	if err == nil { // nil checks are fine
		return false
	}
	return errors.Is(err, ErrDisconnected) // the blessed form
}
