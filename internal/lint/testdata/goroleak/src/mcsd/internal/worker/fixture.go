package worker

import (
	"context"
	"sync"
)

// The flagged form: a goroutine with no termination evidence at all.
func leaks() {
	go func() { // want "goroutine has no provable termination path"
		for {
		}
	}()
}

// ctx.Done() in a select scopes the goroutine to its context.
func ctxSelect(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// WaitGroup pairing: the spawner joins the goroutine.
func joined(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

// A close() is the done-channel join signal.
func doneChannel() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
	}()
	return done
}

// A range-over-channel worker dies when its feed closes.
func drains(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// A context argument scopes the callee by construction.
func ctxArg(ctx context.Context) {
	go run(ctx)
}

func run(ctx context.Context) { <-ctx.Done() }

var pumpCtx context.Context

// A named same-package callee is checked one hop deep against its body.
func oneHop() {
	go pump()
}

func pump() { <-pumpCtx.Done() }

// One hop with no evidence in the callee body is still a leak.
func leakyCallee() {
	go spin() // want "goroutine has no provable termination path"
}

func spin() {
	for {
	}
}

// A reasoned allow is the escape hatch.
func excused() {
	//mcsdlint:allow goroleak -- fixture: a deliberate free-runner, pinned here
	go func() {
		for {
		}
	}()
}
