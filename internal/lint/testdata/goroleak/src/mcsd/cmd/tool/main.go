// Command tool pins the exemption: binaries own the process lifetime, so a
// free-running goroutine under cmd/ is not a leak.
package main

func main() {
	go func() {
		for {
		}
	}()
}
