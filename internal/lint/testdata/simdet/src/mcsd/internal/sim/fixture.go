package sim

import (
	"math/rand"
	"sort"
	"time"
)

func clocks(t time.Time) {
	_ = time.Now()      // want "wall-clock read in a deterministic sim layer"
	_ = time.Since(t)   // want "wall-clock read in a deterministic sim layer"
	_ = time.Until(t)   // want "wall-clock read in a deterministic sim layer"
	_ = t.Add(time.Second) // pure time arithmetic is fine
}

func randomness() {
	_ = rand.Intn(10)     // want "global math/rand source in a deterministic sim layer"
	_ = rand.Float64()    // want "global math/rand source in a deterministic sim layer"
	rand.Shuffle(3, func(i, j int) {}) // want "global math/rand source in a deterministic sim layer"

	// The blessed form: a seeded local source.
	r := rand.New(rand.NewSource(42))
	_ = r.Intn(10)
	_ = r.Float64()
}

func mapOrder(m map[string]int) int {
	sum := 0
	for _, v := range m { // want "map iteration order is nondeterministic"
		sum += v
	}
	// The blessed form: sorted keys.
	keys := make([]string, 0, len(m))
	for k := range m { // want "map iteration order is nondeterministic"
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

func allowedMeasurement() {
	//mcsdlint:allow simdet -- fixture: calibration measures the real engine
	_ = time.Now()
}
