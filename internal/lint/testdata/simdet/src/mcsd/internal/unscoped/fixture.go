package unscoped

import "time"

// Outside the sim layers the wall clock is legitimate.
func wall() time.Time { return time.Now() }
