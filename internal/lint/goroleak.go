package lint

import (
	"go/ast"
	"go/types"
)

// GoRoLeak enforces goroutine-lifecycle discipline below the binaries:
// every `go` statement in library code must carry a provable termination
// path, because a leaked goroutine in the daemon, the fleet coordinator or
// the NFS demux survives for the life of the process — invisible until the
// traffic-storm scenario piles tens of thousands of them onto the SD node.
//
// Accepted evidence, checked syntactically over the spawned body:
//
//   - a ctx.Done() receive (plain or in a select) — the goroutine dies
//     with its context;
//   - a sync.WaitGroup Done or Wait call — the spawner joins it;
//   - a close(ch) — the goroutine signals a done-channel join;
//   - a `for range ch` worker loop — the goroutine dies when the feeding
//     channel closes.
//
// A `go f(...)` whose argument list includes a context is accepted (the
// callee is ctx-scoped by construction), and a callee defined in the same
// package is checked one hop deep by the same rules. Anything else needs a
// reasoned //mcsdlint:allow goroleak directive.
var GoRoLeak = &Analyzer{
	Name: "goroleak",
	Doc: "every go statement below cmd/ needs a provable termination path: " +
		"ctx.Done()/done-channel select, WaitGroup pairing, or a reasoned allow",
	Run: runGoRoLeak,
}

// goRoLeakExempt marks the package subtrees allowed to spawn free-running
// goroutines: the binaries own the process lifetime, and the runnable
// examples exit with main.
var goRoLeakExempt = []string{
	"mcsd/cmd",
	"mcsd/examples",
}

func runGoRoLeak(pass *Pass) error {
	for _, p := range goRoLeakExempt {
		if HasPrefixPath(pass.Pkg.Path(), p) {
			return nil
		}
	}
	decls := packageFuncDecls(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goStmtTerminates(pass, gs, decls) {
				return true
			}
			pass.Reportf(gs.Pos(),
				"goroutine has no provable termination path (no ctx.Done select, WaitGroup pairing, close, or channel-range); scope it to a context or join it")
			return true
		})
	}
	return nil
}

// packageFuncDecls indexes this package's function declarations by their
// types object, so `go f(...)` on a same-package callee can be checked one
// hop deep.
func packageFuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.ObjectOf(fd.Name).(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

func goStmtTerminates(pass *Pass, gs *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) bool {
	// A context handed to the spawned call scopes its lifetime (the callee
	// is held to ctxflow's propagation rules like everything else).
	for _, arg := range gs.Call.Args {
		if isContextType(pass.typeOf(arg)) {
			return true
		}
	}
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return bodyHasTermination(pass, lit.Body)
	}
	if fn := pass.CalleeFunc(gs.Call); fn != nil && fn.Pkg() == pass.Pkg {
		if fd := decls[fn]; fd != nil {
			return bodyHasTermination(pass, fd.Body)
		}
	}
	return false
}

// bodyHasTermination reports whether body contains any of the accepted
// termination evidence. Nested function literals count: evidence delegated
// to a closure (a sync.Once carrying the close, say) is still evidence.
func bodyHasTermination(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch {
			case isCtxDoneCall(pass, n):
				found = true
			case isWaitGroupCall(pass, n, "Done"), isWaitGroupCall(pass, n, "Wait"):
				found = true
			case isBuiltinClose(pass, n):
				found = true
			}
		case *ast.RangeStmt:
			if isChanType(pass.typeOf(n.X)) {
				found = true
			}
		}
		return !found
	})
	return found
}

// typeOf is a nil-safe expression type lookup.
func (p *Pass) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isCtxDoneCall matches ctx.Done() for any expression of type
// context.Context.
func isCtxDoneCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	return isContextType(pass.typeOf(sel.X))
}

// isWaitGroupCall matches (*sync.WaitGroup).<name> through values,
// pointers and embedded fields.
func isWaitGroupCall(pass *Pass, call *ast.CallExpr, name string) bool {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isSyncType(sig.Recv().Type(), "WaitGroup")
}

func isBuiltinClose(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return false
	}
	_, isBuiltin := pass.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

func isContextType(t types.Type) bool {
	return isPkgNamed(t, "context", "Context")
}

// isSyncType reports whether t (possibly behind a pointer) is sync.<name>.
func isSyncType(t types.Type, name string) bool {
	return isPkgNamed(t, "sync", name)
}

// isPkgNamed reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func isPkgNamed(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
