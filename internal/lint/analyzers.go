package lint

// All returns the full mcsdlint analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		ChanBound,
		CtxFlow,
		FSDiscipline,
		GoRoLeak,
		LockHold,
		MetricKey,
		SimDet,
		WireWrap,
	}
}
