package lint

// All returns the full mcsdlint analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		CtxFlow,
		FSDiscipline,
		MetricKey,
		SimDet,
		WireWrap,
	}
}
