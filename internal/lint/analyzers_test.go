package lint_test

import (
	"testing"

	"mcsd/internal/lint"
	"mcsd/internal/lint/linttest"
)

func TestFSDiscipline(t *testing.T) {
	linttest.Run(t, linttest.TestData(t, "fsdiscipline"), lint.FSDiscipline,
		"mcsd/internal/smartfam", "mcsd/internal/other")
}

func TestWireWrap(t *testing.T) {
	linttest.Run(t, linttest.TestData(t, "wirewrap"), lint.WireWrap,
		"mcsd/internal/nfs", "mcsd/internal/free")
}

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, linttest.TestData(t, "ctxflow"), lint.CtxFlow,
		"mcsd/internal/worker", "mcsd/cmd/tool")
}

func TestMetricKey(t *testing.T) {
	linttest.Run(t, linttest.TestData(t, "metrickey"), lint.MetricKey,
		"mcsd/internal/app")
}

func TestSimDet(t *testing.T) {
	linttest.Run(t, linttest.TestData(t, "simdet"), lint.SimDet,
		"mcsd/internal/sim", "mcsd/internal/unscoped")
}

func TestGoRoLeak(t *testing.T) {
	linttest.Run(t, linttest.TestData(t, "goroleak"), lint.GoRoLeak,
		"mcsd/internal/worker", "mcsd/cmd/tool")
}

func TestLockHold(t *testing.T) {
	linttest.Run(t, linttest.TestData(t, "lockhold"), lint.LockHold,
		"mcsd/internal/locks", "mcsd/internal/smartfam", "mcsd/internal/daemon")
}

func TestChanBound(t *testing.T) {
	linttest.Run(t, linttest.TestData(t, "chanbound"), lint.ChanBound,
		"mcsd/internal/pipe", "mcsd/cmd/tool")
}

// TestDirectiveHygiene pins that a reason-less or unknown //mcsdlint:
// directive is itself a diagnostic and suppresses nothing.
func TestDirectiveHygiene(t *testing.T) {
	linttest.Run(t, linttest.TestData(t, "directives"), lint.FSDiscipline,
		"mcsd/internal/smartfam")
}

// TestAllowHygiene pins the unused-allow sweep and its interplay with the
// concurrency analyzers: a stale allow for a ran analyzer is reported, a
// used allow and a blanket "all" are not, and fsboundary silences nothing
// but fsdiscipline.
func TestAllowHygiene(t *testing.T) {
	linttest.Run(t, linttest.TestData(t, "directives"), lint.GoRoLeak,
		"mcsd/internal/concurrency")
}

// TestAll pins the suite roster: a new analyzer must be registered here
// and in All() together.
func TestAll(t *testing.T) {
	want := []string{"chanbound", "ctxflow", "fsdiscipline", "goroleak",
		"lockhold", "metrickey", "simdet", "wirewrap"}
	all := lint.All()
	if len(all) != len(want) {
		t.Fatalf("All() has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("%s: missing Doc or Run", a.Name)
		}
	}
}
