package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages without the go/packages
// machinery (and without network access): module-local import paths are
// mapped to directories by Resolve and loaded recursively; every other
// import falls back to type-checking the standard library from GOROOT
// source. Loaded packages are cached, so shared dependencies are checked
// once.
type Loader struct {
	Fset *token.FileSet
	// Resolve maps an import path to its source directory. Paths it does
	// not claim are handed to the stdlib source importer.
	Resolve func(path string) (dir string, ok bool)

	fallback types.Importer
	pkgs     map[string]*Package
	loading  map[string]bool
}

// NewLoader returns a loader resolving module-local paths via resolve.
func NewLoader(resolve func(string) (string, bool)) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:     fset,
		Resolve:  resolve,
		fallback: importer.ForCompiler(fset, "source", nil),
		pkgs:     make(map[string]*Package),
		loading:  make(map[string]bool),
	}
}

// ModuleResolver returns a Resolve func mapping modulePath-rooted import
// paths into the source tree at root.
func ModuleResolver(modulePath, root string) func(string) (string, bool) {
	return func(path string) (string, bool) {
		if path == modulePath {
			return root, true
		}
		if rest, ok := strings.CutPrefix(path, modulePath+"/"); ok {
			return filepath.Join(root, filepath.FromSlash(rest)), true
		}
		return "", false
	}
}

// Load type-checks the package at the given import path (and,
// transitively, its module-local dependencies).
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	dir, ok := l.Resolve(path)
	if !ok {
		return nil, fmt.Errorf("lint: cannot resolve %s to a directory", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses every non-test Go file in dir, in name order so
// diagnostics are stable.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: reading %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// loaderImporter adapts Loader to types.Importer for module-local paths,
// deferring everything else to the GOROOT source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.Resolve(path); ok {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.fallback.Import(path)
}

// LoadModule walks the module rooted at root (import path modulePath) and
// loads every package under it, skipping testdata and hidden directories.
func LoadModule(modulePath, root string) ([]*Package, error) {
	l := NewLoader(ModuleResolver(modulePath, root))
	var paths []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		dir := filepath.Dir(p)
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		importPath := modulePath
		if rel != "." {
			importPath = modulePath + "/" + filepath.ToSlash(rel)
		}
		if len(paths) == 0 || paths[len(paths)-1] != importPath {
			paths = append(paths, importPath)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ModulePath reads the module path from the go.mod at root.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}
