package lint

import (
	"go/ast"
)

// FSDiscipline enforces the share-I/O discipline from DESIGN.md §5c: inside
// the smartFAM and NFS layers, every file operation must go through the
// smartfam.FS interface so the faultfs chaos layer can interpose on all of
// it. A direct os.* call in those packages is a hole in crash-safety test
// coverage — faults can never be injected into it. The os-backed
// implementations of the boundary itself (dirFS, the NFS server's backing
// store) opt out per file with //mcsdlint:fsboundary.
var FSDiscipline = &Analyzer{
	Name: "fsdiscipline",
	Doc: "forbid direct os file I/O in smartfam/nfs; all share and journal " +
		"bytes must flow through smartfam.FS so fault injection stays total",
	Run: runFSDiscipline,
}

// fsdisciplinePkgs are the package subtrees under discipline.
var fsdisciplinePkgs = []string{
	"mcsd/internal/smartfam",
	"mcsd/internal/nfs",
}

// osFileIO is the set of os functions that touch the file system.
var osFileIO = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"Remove": true, "RemoveAll": true, "Rename": true,
	"Stat": true, "Lstat": true, "Truncate": true,
	"Chmod": true, "Chown": true, "Chtimes": true, "Symlink": true, "Link": true,
	"ReadLink": true, "Readlink": true,
}

func runFSDiscipline(pass *Pass) error {
	inScope := false
	for _, p := range fsdisciplinePkgs {
		if HasPrefixPath(pass.Pkg.Path(), p) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		if pass.FileIsBoundary(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.CalleeFunc(call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" || !osFileIO[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(),
				"direct os.%s bypasses smartfam.FS; route it through an FS so faultfs can inject faults, or mark the file //mcsdlint:fsboundary -- reason",
				fn.Name())
			return true
		})
	}
	return nil
}
