// Package linttest is an analysistest-style fixture runner for mcsdlint
// analyzers: fixture packages live under a testdata root in GOPATH-like
// layout (<root>/src/<import path>/*.go), and every line that should
// trigger a diagnostic carries a trailing
//
//	// want "regex"
//
// comment (several regexes mean several diagnostics on that line). The
// runner fails the test on any diagnostic without a matching want and any
// want without a matching diagnostic, so fixtures pin both the positives
// and the negatives of each invariant.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mcsd/internal/lint"
)

// TestData returns the absolute path of the caller's testdata/<elem...>
// directory, mirroring analysistest.TestData.
func TestData(t *testing.T, elem ...string) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join(append([]string{"testdata"}, elem...)...))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run loads the fixture packages at the given import paths from dir/src,
// applies the analyzer, and checks the diagnostics against the fixtures'
// want comments.
func Run(t *testing.T, dir string, a *lint.Analyzer, paths ...string) {
	t.Helper()
	src := filepath.Join(dir, "src")
	loader := lint.NewLoader(func(path string) (string, bool) {
		d := filepath.Join(src, filepath.FromSlash(path))
		if fi, err := os.Stat(d); err == nil && fi.IsDir() {
			return d, true
		}
		return "", false
	})
	var pkgs []*lint.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := lint.Run(pkgs, []*lint.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, pkgs)
	for _, d := range diags {
		key := d.Pos.Filename + ":" + strconv.Itoa(d.Pos.Line)
		var matched *want
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				matched = w
				break
			}
		}
		if matched == nil {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		matched.matched = true
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matched want %q", key, w.re)
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// collectWants scans every fixture file's // want comments into a
// file:line -> expectations map.
func collectWants(t *testing.T, pkgs []*lint.Package) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					// The marker may sit mid-comment: a //mcsdlint:
					// directive that is itself expected to be reported
					// carries its want in its own text.
					idx := strings.Index(c.Text, "// want ")
					if !strings.HasPrefix(c.Text, "//") || idx < 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := pos.Filename + ":" + strconv.Itoa(pos.Line)
					for _, re := range parseWant(t, pos.String(), c.Text[idx+len("// want "):]) {
						wants[key] = append(wants[key], &want{re: re})
					}
				}
			}
		}
	}
	return wants
}

// parseWant decodes the quoted regexes after "want".
func parseWant(t *testing.T, at, s string) []*regexp.Regexp {
	t.Helper()
	var res []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		q, err := strconv.QuotedPrefix(s)
		if err != nil {
			t.Fatalf("%s: malformed want expectation %q: %v", at, s, err)
		}
		lit, err := strconv.Unquote(q)
		if err != nil {
			t.Fatal(fmt.Errorf("%s: %w", at, err))
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", at, lit, err)
		}
		res = append(res, re)
		s = s[len(q):]
	}
	if len(res) == 0 {
		t.Fatalf("%s: want comment with no expectations", at)
	}
	return res
}
