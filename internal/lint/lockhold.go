package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockHold enforces critical-section discipline: nothing that can block
// indefinitely runs while a sync.Mutex/RWMutex is held, every Lock has an
// Unlock in the same function, and nested locks are taken in one
// consistent order per package. The daemon and the NFS client both follow
// a strict unlock-before-I/O pattern (drain the state under the lock,
// release, then touch the share); this analyzer is what keeps that pattern
// from eroding one "just this once" at a time.
//
// Blocking operations flagged while a lock is held:
//
//   - channel send, receive, range, and select without a default arm;
//   - time.Sleep and (*sync.WaitGroup).Wait — but not sync.Cond.Wait,
//     which releases the mutex while parked;
//   - calls through smartfam.FS, smartfam.Client, nfs.Client or nfs.Pool —
//     share I/O rides the network and can stall on a dead peer.
//
// The walk is lexical and per-function: Lock/RLock pushes the lock,
// Unlock/RUnlock pops it, defer Unlock keeps it held to the end of the
// function while satisfying the pairing rule. A branch that terminates
// (return/break/continue/goto/panic) applies its lock effects to a copy of
// the held set, so the early-unlock-and-return idiom does not hide
// violations on the fallthrough path.
var LockHold = &Analyzer{
	Name: "lockhold",
	Doc: "no blocking operation (channel op, sleep, Wait, share I/O) while a " +
		"mutex is held; Lock/Unlock pair per function; one lock order per package",
	Run: runLockHold,
}

// lockHoldBlockingTypes are the named types whose method calls count as
// blocking I/O: the share surface and the NFS client stack. An interface
// receiver is I/O by contract and flagged everywhere, including its own
// package; a concrete client is flagged only from outside its defining
// package — internally its methods are the implementation fabric itself
// (the nfs client's xxxLocked helpers), not calls onto the wire.
var lockHoldBlockingTypes = []struct {
	pkg, name  string
	everywhere bool
}{
	{"mcsd/internal/smartfam", "FS", true},
	{"mcsd/internal/smartfam", "Client", false},
	{"mcsd/internal/nfs", "Client", false},
	{"mcsd/internal/nfs", "Pool", false},
}

// lockEdge is one observed nested acquisition: first was held when second
// was taken.
type lockEdge struct {
	first, second types.Object
}

func runLockHold(pass *Pass) error {
	edges := make(map[lockEdge]token.Pos)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			w := &lockWalker{pass: pass, edges: edges,
				acquired: make(map[types.Object]token.Pos),
				released: make(map[types.Object]bool),
			}
			w.stmts(body.List)
			for obj, pos := range w.acquired {
				if !w.released[obj] {
					pass.Reportf(pos,
						"%s is locked but never unlocked in this function; pair every Lock with an Unlock (prefer defer)", obj.Name())
				}
			}
			return true // nested function literals are walked as their own scopes
		})
	}
	return nil
}

// heldLock is one lexically live acquisition.
type heldLock struct {
	obj  types.Object
	name string // receiver expression, for messages
}

type lockWalker struct {
	pass     *Pass
	held     []heldLock
	acquired map[types.Object]token.Pos
	released map[types.Object]bool
	edges    map[lockEdge]token.Pos
}

func (w *lockWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

// branch walks a conditional block. A terminating branch (ends in
// return/branch/panic) gets a copy of the held set: its unlocks are real
// on its own path but must not leak onto the fallthrough path, where the
// lock is still held.
func (w *lockWalker) branch(list []ast.Stmt) {
	if terminates(list) {
		saved := append([]heldLock(nil), w.held...)
		w.stmts(list)
		w.held = saved
		return
	}
	w.stmts(list)
}

func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (w *lockWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && w.lockOp(call, false) {
			return
		}
		w.expr(s.X)
	case *ast.DeferStmt:
		if w.lockOp(s.Call, true) {
			return
		}
		for _, a := range s.Call.Args {
			w.expr(a)
		}
	case *ast.GoStmt:
		// The spawned body runs on its own goroutine (and is walked as its
		// own scope); only the argument expressions evaluate here.
		for _, a := range s.Call.Args {
			w.expr(a)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
		w.blocking(s.Pos(), "channel send")
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		w.branch(s.Body.List)
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			w.branch(e.List)
		case ast.Stmt:
			w.stmt(e)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.branch(s.Body.List)
		if s.Post != nil {
			w.stmt(s.Post)
		}
	case *ast.RangeStmt:
		w.expr(s.X)
		if isChanType(w.pass.typeOf(s.X)) {
			w.blocking(s.Pos(), "range over a channel")
		}
		w.branch(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.branch(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.branch(cc.Body)
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.blocking(s.Pos(), "select without a default arm")
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.branch(cc.Body)
			}
		}
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	}
}

// expr flags blocking operations inside an expression while a lock is
// held. Function literals are skipped: their bodies run later, on their
// own goroutine or call, and are walked as their own scopes.
func (w *lockWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.blocking(n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			w.blockingCall(n)
		}
		return true
	})
}

func (w *lockWalker) blockingCall(call *ast.CallExpr) {
	switch {
	case w.pass.IsPkgFunc(call, "time", "Sleep"):
		w.blocking(call.Pos(), "time.Sleep")
	case isWaitGroupCall(w.pass, call, "Wait"):
		w.blocking(call.Pos(), "WaitGroup.Wait")
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv := w.pass.typeOf(sel.X)
	for _, bt := range lockHoldBlockingTypes {
		if !bt.everywhere && w.pass.Pkg.Path() == bt.pkg {
			continue
		}
		if isPkgNamed(recv, bt.pkg, bt.name) {
			w.blocking(call.Pos(), bt.name+"."+sel.Sel.Name+" share I/O")
			return
		}
	}
}

func (w *lockWalker) blocking(pos token.Pos, what string) {
	if len(w.held) == 0 {
		return
	}
	h := w.held[len(w.held)-1]
	w.pass.Reportf(pos,
		"%s while %s is held; release the lock first (shrink the critical section)", what, h.name)
}

// lockOp handles a direct mutex method call statement, updating the held
// set, the pairing record, and the package lock-order table. It reports
// inconsistent nested orderings as they appear.
func (w *lockWalker) lockOp(call *ast.CallExpr, deferred bool) bool {
	fn := w.pass.CalleeFunc(call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if !isSyncType(rt, "Mutex") && !isSyncType(rt, "RWMutex") {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := lockObject(w.pass, sel.X)
	if obj == nil {
		return false
	}
	name := exprKey(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		if deferred {
			return false // defer Lock() makes no sense; not a lock op we model
		}
		for _, h := range w.held {
			if h.obj == obj {
				continue
			}
			e := lockEdge{h.obj, obj}
			if rpos, reversed := w.edges[lockEdge{obj, h.obj}]; reversed {
				w.pass.Reportf(call.Pos(),
					"inconsistent lock order: %s then %s here, %s then %s at %s; pick one order package-wide",
					h.obj.Name(), obj.Name(), obj.Name(), h.obj.Name(), w.pass.Fset.Position(rpos))
			}
			if _, seen := w.edges[e]; !seen {
				w.edges[e] = call.Pos()
			}
		}
		w.held = append(w.held, heldLock{obj: obj, name: name})
		if _, seen := w.acquired[obj]; !seen {
			w.acquired[obj] = call.Pos()
		}
		return true
	case "Unlock", "RUnlock":
		w.released[obj] = true
		if !deferred {
			for i := len(w.held) - 1; i >= 0; i-- {
				if w.held[i].obj == obj {
					w.held = append(w.held[:i], w.held[i+1:]...)
					break
				}
			}
		}
		// A deferred unlock keeps the lock lexically held to function end,
		// which is exactly right: blocking calls after `defer mu.Unlock()`
		// still run inside the critical section.
		return true
	}
	return false
}

// lockObject resolves the mutex identity: the object of the rightmost
// identifier of the receiver expression (the field for s.mu, the variable
// for a local mu, the struct for an embedded mutex).
func lockObject(pass *Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.ObjectOf(e)
	case *ast.SelectorExpr:
		return pass.ObjectOf(e.Sel)
	case *ast.IndexExpr:
		return lockObject(pass, e.X)
	case *ast.StarExpr:
		return lockObject(pass, e.X)
	}
	return nil
}
