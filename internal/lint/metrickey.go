package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// MetricKey pins every metric and trace name to the checked registries in
// internal/metrics/names.go and internal/trace/names.go. A typo'd literal
// ("smartfam.corupt_records") creates a silently-empty counter that no
// dashboard ever reads; requiring the name argument to reference a
// registry constant makes that a compile-, well, lint-time error, and
// deduplicates the strings as a side effect. Dynamic keys (per-op NFS
// counters, per-module invoke timers) concatenate a registered *Prefix
// constant with a runtime suffix.
var MetricKey = &Analyzer{
	Name: "metrickey",
	Doc: "metric and trace span names must reference constants from the " +
		"internal/metrics / internal/trace name registries (or a *Prefix " +
		"constant plus a dynamic suffix)",
	Run: runMetricKey,
}

const (
	metricsPkgPath = "mcsd/internal/metrics"
	tracePkgPath   = "mcsd/internal/trace"
)

// metricKeyMethods maps registry-package path -> receiver type -> method
// names whose first argument is a checked name.
var metricKeyMethods = map[string]map[string][]string{
	metricsPkgPath: {"Registry": {"Counter", "Gauge", "Timer"}},
	tracePkgPath:   {"Tracer": {"Start"}, "Span": {"Child"}},
}

func runMetricKey(pass *Pass) error {
	// The registries themselves (and the lint fixtures' fakes of them) may
	// use raw strings; everyone else goes through the constants.
	if pass.Pkg.Path() == metricsPkgPath || pass.Pkg.Path() == tracePkgPath {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, ok2 := metricKeyCall(pass, call)
			if !ok2 || len(call.Args) == 0 {
				return true
			}
			checkMetricName(pass, call.Args[0], pkgPath)
			return true
		})
	}
	return nil
}

// metricKeyCall reports whether call is a name-taking method of one of
// the registry packages, returning that package's path.
func metricKeyCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	typeMethods, ok := metricKeyMethods[fn.Pkg().Path()]
	if !ok {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, _ := recv.(*types.Named)
	if named == nil {
		return "", false
	}
	for _, m := range typeMethods[named.Obj().Name()] {
		if fn.Name() == m {
			return fn.Pkg().Path(), true
		}
	}
	return "", false
}

func checkMetricName(pass *Pass, arg ast.Expr, pkgPath string) {
	arg = ast.Unparen(arg)
	// Dynamic suffix: Prefix + expr (left-associated, so the constant is
	// the leftmost operand).
	if be, ok := arg.(*ast.BinaryExpr); ok {
		left := leftmostOperand(be)
		if c := registryConst(pass, left, pkgPath); c != nil {
			if !strings.HasSuffix(c.Name(), "Prefix") {
				pass.Reportf(left.Pos(),
					"dynamic metric/trace name built on %s, which is not a *Prefix constant; register a dedicated prefix in %s",
					c.Name(), pkgPath)
			}
			return
		}
		pass.Reportf(arg.Pos(),
			"dynamic metric/trace name must start with a *Prefix constant from %s", pkgPath)
		return
	}
	if c := registryConst(pass, arg, pkgPath); c != nil {
		if strings.HasSuffix(c.Name(), "Prefix") {
			pass.Reportf(arg.Pos(),
				"%s is a prefix constant; concatenate a suffix or use a full name constant", c.Name())
		}
		return
	}
	if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		pass.Reportf(arg.Pos(),
			"metric/trace name %s is not a registry constant; add it to %s and reference it by name",
			tv.Value.ExactString(), pkgPath)
		return
	}
	pass.Reportf(arg.Pos(),
		"metric/trace name must be a constant from %s (optionally a *Prefix constant plus a suffix)", pkgPath)
}

// registryConst resolves expr to a constant declared in the registry
// package pkgPath, or nil.
func registryConst(pass *Pass, expr ast.Expr, pkgPath string) *types.Const {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	c, ok := pass.ObjectOf(id).(*types.Const)
	if !ok || c.Pkg() == nil || c.Pkg().Path() != pkgPath {
		return nil
	}
	return c
}

func leftmostOperand(e ast.Expr) ast.Expr {
	for {
		be, ok := ast.Unparen(e).(*ast.BinaryExpr)
		if !ok {
			return ast.Unparen(e)
		}
		e = be.X
	}
}
