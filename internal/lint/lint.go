// Package lint is mcsdlint's analysis framework: a small, stdlib-only
// reimplementation of the golang.org/x/tools/go/analysis surface (the
// container this repo builds in has no module network access, so the
// x/tools dependency is not available). It provides the Analyzer/Pass
// contract, a type-checking package loader, suppression directives, and —
// in the sibling linttest package — an analysistest-style fixture runner.
//
// The analyzers themselves (fsdiscipline, wirewrap, ctxflow, metrickey,
// simdet) encode the invariants DESIGN.md §5d documents: the correctness
// machinery built by the earlier PRs only holds if every share byte goes
// through smartfam.FS, typed errors survive the wire, nothing below cmd/
// manufactures its own context, metric keys come from the checked
// registry, and the scale-model sim stays replayable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer checks one invariant over one package at a time.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //mcsdlint:allow directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects pass.Files and reports violations via pass.Reportf.
	Run func(pass *Pass) error
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	dirs  *directives
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos unless an //mcsdlint:allow directive
// suppresses this analyzer on that line (or the file is marked as an
// fsboundary and the analyzer honours that flag itself).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.dirs.allowed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// FileIsBoundary reports whether the file containing pos carries the
// //mcsdlint:fsboundary directive, marking it as a deliberate
// implementation of the share/journal storage boundary (the one place
// direct os I/O is legitimate).
func (p *Pass) FileIsBoundary(pos token.Pos) bool {
	return p.dirs.boundary[p.Fset.Position(pos).Filename]
}

// ObjectOf is a nil-safe Uses/Defs lookup.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return p.TypesInfo.Defs[id]
}

// CalleeFunc resolves a call expression to the *types.Func it invokes
// (through selector or plain identifier), or nil for indirect calls,
// conversions, and built-ins.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.ObjectOf(id).(*types.Func)
	return fn
}

// IsPkgFunc reports whether call invokes the package-level function
// pkgPath.name (e.g. "os".Open).
func (p *Pass) IsPkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	fn := p.CalleeFunc(call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// Run applies every analyzer to every package and returns all diagnostics
// sorted by position. Directive hygiene is checked here too: a malformed
// or reason-less //mcsdlint: comment is itself a diagnostic, and so is an
// allow naming a ran analyzer that ends up suppressing nothing, so
// suppressions stay auditable and die with the code they excused.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		dirs, derrs := parseDirectives(pkg.Fset, pkg.Files)
		diags = append(diags, derrs...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				dirs:      dirs,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		diags = append(diags, dirs.unusedAllows(ran)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// HasPrefixPath reports whether path is pkg or a subpackage of pkg.
func HasPrefixPath(path, pkg string) bool {
	return path == pkg || strings.HasPrefix(path, pkg+"/")
}
