package mapreduce

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
)

// deterministicCorpus builds a corpus with skew (some hot words, many
// singletons) and varying token lengths so fragment and chunk boundaries
// land differently at every worker count.
func deterministicCorpus() []byte {
	var sb strings.Builder
	for i := 0; i < 4000; i++ {
		fmt.Fprintf(&sb, "hot%d ", i%7)
		fmt.Fprintf(&sb, "w%04d ", i)
		sb.WriteString(strings.Repeat("z", i%9+1))
		sb.WriteString(" ")
	}
	return []byte(sb.String())
}

// serialize renders an ordered result to the exact bytes a client would
// see; byte equality across runs is the determinism contract.
func serialize[R any](pairs []Pair[string, R]) []byte {
	var buf bytes.Buffer
	for _, p := range pairs {
		fmt.Fprintf(&buf, "%s\t%v\n", p.Key, p.Value)
	}
	return buf.Bytes()
}

// orderedWCSpec is word count over the zero-copy bytes path with a sorted
// final merge — the engine's most optimized configuration.
func orderedWCSpec() Spec[string, int, int] {
	s := wcSpec()
	s.MapBytes = func(chunk []byte, emit func([]byte, int)) error {
		for _, w := range bytes.Fields(chunk) {
			emit(w, 1)
		}
		return nil
	}
	s.Combine = func(_ string, vs []int) []int {
		sum := 0
		for _, v := range vs {
			sum += v
		}
		vs[0] = sum
		return vs[:1]
	}
	s.Less = func(a, b string) bool { return a < b }
	return s
}

// sortMergeSpec groups value multisets per key and returns them sorted:
// an order-insensitive reduce whose output fingerprints every emitted
// value, exercising the staged (no-combine) path and the k-way merge.
func sortMergeSpec() Spec[string, int, []int] {
	return Spec[string, int, []int]{
		Name:  "sort-merge-test",
		Split: DelimiterSplitter(' ', '\n'),
		Map: func(chunk []byte, emit func(string, int)) error {
			for _, w := range bytes.Fields(chunk) {
				emit(string(w), len(w)*int(w[0]))
			}
			return nil
		},
		Reduce: func(_ string, vs []int) ([]int, error) {
			out := make([]int, len(vs))
			copy(out, vs)
			sort.Ints(out)
			return out, nil
		},
		Less:            func(a, b string) bool { return a < b },
		FootprintFactor: 3,
	}
}

// TestRunDeterministicAcrossParallelism: the engine must produce
// byte-identical ordered output at every worker count and GOMAXPROCS
// setting, and across repeated runs (pool recycling between jobs must not
// bleed state). This is the regression fence for the pooled-emit and
// parallel-scan machinery.
func TestRunDeterministicAcrossParallelism(t *testing.T) {
	input := deterministicCorpus()
	ctx := context.Background()

	run := func(t *testing.T, workers int) ([]byte, []byte) {
		t.Helper()
		wc, err := Run(ctx, Config{Workers: workers}, orderedWCSpec(), input)
		if err != nil {
			t.Fatal(err)
		}
		sm, err := Run(ctx, Config{Workers: workers}, sortMergeSpec(), input)
		if err != nil {
			t.Fatal(err)
		}
		return serialize(wc.Pairs), serialize(sm.Pairs)
	}

	refWC, refSM := run(t, 1)
	if len(refWC) == 0 || len(refSM) == 0 {
		t.Fatal("reference outputs empty")
	}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, gmp := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(gmp)
		for _, workers := range []int{1, 2, 8} {
			// Repeated runs at the same setting catch cross-job pool
			// contamination; differing settings catch schedule-dependence.
			for rep := 0; rep < 3; rep++ {
				wc, sm := run(t, workers)
				if !bytes.Equal(wc, refWC) {
					t.Fatalf("gomaxprocs=%d workers=%d rep=%d: wordcount output bytes diverged from the single-worker reference",
						gmp, workers, rep)
				}
				if !bytes.Equal(sm, refSM) {
					t.Fatalf("gomaxprocs=%d workers=%d rep=%d: sort-merge output bytes diverged from the single-worker reference",
						gmp, workers, rep)
				}
			}
		}
	}
}
