package mapreduce

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

// makeRuns deals n sorted pairs round-robin-ish into k sorted runs.
func makeRuns(n, k int, seed int64) [][]Pair[int, int] {
	rng := rand.New(rand.NewSource(seed))
	span := n / 2 * 3
	if span < 1 {
		span = 1
	}
	vals := make([]int, n)
	for i := range vals {
		vals[i] = rng.Intn(span)
	}
	sort.Ints(vals)
	runs := make([][]Pair[int, int], k)
	for i, v := range vals {
		r := i % k
		runs[r] = append(runs[r], Pair[int, int]{Key: v, Value: i})
	}
	return runs
}

func TestMergeSortedMatchesLinear(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{0, 3}, {1, 1}, {5, 2}, {100, 3}, {1000, 8}, {5000, 64},
	} {
		runs := makeRuns(tc.n, tc.k, int64(tc.n*31+tc.k))
		got := MergeSorted(runs, intLess)
		want := MergeSortedLinear(runs, intLess)
		if len(got) != len(want) {
			t.Fatalf("n=%d k=%d: merged %d pairs, want %d", tc.n, tc.k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d k=%d: pair %d = %v, want %v", tc.n, tc.k, i, got[i], want[i])
			}
		}
	}
}

// TestMergeSortedParallelPath forces the range-split parallel merge (total
// above parallelMergeMin, many runs) and checks it against the baseline,
// including duplicate keys that straddle pivot boundaries.
func TestMergeSortedParallelPath(t *testing.T) {
	if testing.Short() {
		t.Skip("large merge in -short mode")
	}
	n := parallelMergeMin + 5000 // comfortably over the threshold
	runs := makeRuns(n, 16, 42)
	got := MergeSorted(runs, intLess)
	want := MergeSortedLinear(runs, intLess)
	if len(got) != len(want) {
		t.Fatalf("merged %d pairs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMergeSortedProperty(t *testing.T) {
	prop := func(raw []uint16, k uint8) bool {
		kk := int(k)%7 + 1
		vals := make([]int, len(raw))
		for i, v := range raw {
			vals[i] = int(v)
		}
		sort.Ints(vals)
		runs := make([][]Pair[int, int], kk)
		for i, v := range vals {
			runs[i%kk] = append(runs[i%kk], Pair[int, int]{Key: v, Value: i})
		}
		got := MergeSorted(runs, intLess)
		want := MergeSortedLinear(runs, intLess)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeSortedSingleRun(t *testing.T) {
	runs := [][]Pair[int, string]{nil, {{1, "a"}, {2, "b"}}, {}}
	out := MergeSorted(runs, intLess)
	if len(out) != 2 || out[0].Value != "a" || out[1].Value != "b" {
		t.Fatalf("single-run merge = %v", out)
	}
}

func BenchmarkMergeSortedInternal(b *testing.B) {
	const total = 1 << 17
	for _, k := range []int{2, 8, 64} {
		runs := makeRuns(total, k, int64(k))
		b.Run("loser-tree/k="+itoa(k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MergeSorted(runs, intLess)
			}
		})
		b.Run("linear/k="+itoa(k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MergeSortedLinear(runs, intLess)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
