// Package mapreduce is a Phoenix-style MapReduce runtime for a single
// shared-memory multicore node, reimplementing the runtime the paper embeds
// in its McSD smart-storage nodes (Ranger et al., HPCA'07).
//
// Like Phoenix, the runtime owns thread (goroutine) creation, dynamic task
// scheduling, data partitioning between map and reduce workers, and fault
// recovery of failed tasks; the programmer supplies only functional-style
// Map / Reduce (and optionally Combine, Split, Less) callbacks through a
// Spec. Unlike Hadoop there is no distributed filesystem underneath: input
// is a byte slice in memory and intermediate pairs live in memory, which is
// exactly the property that creates the paper's out-of-core problem
// (handled one level up by internal/partition).
package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"hash/maphash"
	"runtime"
	"time"

	"mcsd/internal/memsim"
)

// Pair is one key/value pair emitted by Map or produced by Reduce.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// Spec declares a MapReduce computation. Map and Reduce are required; the
// rest have usable defaults.
type Spec[K comparable, V any, R any] struct {
	// Name labels the computation in errors and stats.
	Name string

	// Split cuts the input into map-task chunks of roughly chunkSize
	// bytes. Nil means fixed-size chunks; use DelimiterSplitter for
	// record-aligned chunks (the paper's word-count splitter).
	Split func(data []byte, chunkSize int) [][]byte

	// Map processes one chunk, emitting intermediate pairs. It runs
	// concurrently on many chunks; emit is safe for the calling goroutine
	// only.
	Map func(chunk []byte, emit func(K, V)) error

	// MapBytes is the zero-copy alternative to Map for specs whose key
	// type is string: it emits keys as byte subslices of the chunk (no
	// per-emission string conversion). The runtime interns each distinct
	// key at most once per task and never retains the emitted bytes, so
	// the callback may pass subslices of the chunk — or of a reusable
	// scratch buffer — directly. When both Map and MapBytes are set the
	// runtime prefers MapBytes; Run fails with ErrMapBytesKey when
	// MapBytes is set on a spec whose K is not string.
	MapBytes func(chunk []byte, emit func(word []byte, v V)) error

	// Combine optionally folds a key's values worker-locally after the map
	// phase (Phoenix's combiner), shrinking the intermediate footprint.
	// It must be associative and commutative over values.
	Combine func(key K, values []V) []V

	// Reduce folds all values for one key into the final result value.
	// Like Phoenix, the runtime assumes Reduce is a pure function of its
	// inputs: a Reduce that mutates values and then fails will see its own
	// mutations when retried.
	Reduce func(key K, values []V) (R, error)

	// Less optionally orders keys; when set, Results are globally sorted
	// (Phoenix's final merge-sort stage).
	Less func(a, b K) bool

	// PartitionFn optionally assigns keys to reduce partitions (Phoenix's
	// application-controlled partitioner) — e.g. range partitioning so
	// related keys reduce together. Nil means hashing. Out-of-range
	// results are folded back with a modulo.
	PartitionFn func(key K, numReducers int) int

	// FootprintFactor estimates memory footprint as a multiple of input
	// size ("the memory footprint is at least twice of input data size",
	// §IV-B; word count is ~3x, string match ~2x per §V-C). Zero means 2.
	FootprintFactor float64
}

// Config tunes the runtime for one node.
type Config struct {
	// Workers is the number of concurrent map (and reduce) workers —
	// the core count of the node. Zero means the smaller of GOMAXPROCS
	// and the physical CPU count: workers are CPU-bound, so runnable
	// workers beyond real cores add per-worker shuffle state (and merge
	// work) without adding speed. Phoenix sizes its worker pool the same
	// way — one thread per core.
	Workers int
	// NumReducers is the number of hash partitions of the intermediate
	// key space. Zero means Workers.
	NumReducers int
	// ChunkSize is the map-task granularity in bytes. Zero means
	// max(64 KiB, len(input)/(4*Workers)).
	ChunkSize int
	// Memory, when non-nil, admission-controls the run: the estimated
	// footprint (FootprintFactor x input) is reserved up front and the
	// run fails with memsim.ErrOutOfMemory if it does not fit — the
	// native-Phoenix memory wall of §IV-B.
	Memory *memsim.Accountant
	// MaxTaskRetries is how many times a panicking map/reduce task is
	// retried before the run fails (Phoenix-style fault tolerance).
	// Zero means 2.
	MaxTaskRetries int
}

// EffectiveWorkers is the worker count a zero-value-tolerant Config
// resolves to (see Workers). Drivers that schedule whole engine runs —
// internal/partition's parallel driver sizes its fragment pool with it —
// use this so their pool and the engine agree on what "one core each"
// means.
func (c Config) EffectiveWorkers() int { return c.workers() }

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	n := runtime.GOMAXPROCS(0)
	if cpus := runtime.NumCPU(); n > cpus {
		n = cpus
	}
	return n
}

func (c Config) reducers() int {
	if c.NumReducers > 0 {
		return c.NumReducers
	}
	return c.workers()
}

func (c Config) chunkSize(inputLen int) int {
	if c.ChunkSize > 0 {
		return c.ChunkSize
	}
	n := inputLen / (4 * c.workers())
	if n < 64<<10 {
		n = 64 << 10
	}
	return n
}

func (c Config) retries() int {
	if c.MaxTaskRetries > 0 {
		return c.MaxTaskRetries
	}
	return 2
}

// Stats reports what one run did.
//
// When a partitioned driver (internal/partition) aggregates Stats across
// fragments, counters and times are summed per fragment, UniqueKeys is the
// post-merge key count of the whole run (per-fragment values would double
// count keys that recur across fragments), and FragmentKeys preserves the
// per-fragment sum.
type Stats struct {
	MapTasks     int
	ReduceTasks  int
	PairsEmitted int64
	// UniqueKeys is the number of distinct keys in the final output. For a
	// partitioned run this is the merged count, not the per-fragment sum.
	UniqueKeys int
	// FragmentKeys is the sum of per-fragment unique key counts. It equals
	// UniqueKeys for a single native run and exceeds it when fragments of a
	// partitioned run share keys — the gap is the work the fragment merge
	// stage folded away.
	FragmentKeys int
	TaskRetries  int
	InputBytes   int64
	SplitTime    time.Duration
	MapTime      time.Duration
	// ShuffleTime is the time reduce tasks spent merging worker-local
	// buffers and sorting keys, summed across tasks. Reduce tasks run
	// concurrently, so this is CPU-style time: it is contained in the
	// ReduceTime wall clock and can exceed it on a multicore node. It is
	// deliberately excluded from Total.
	ShuffleTime time.Duration
	ReduceTime  time.Duration
	MergeTime   time.Duration
	// MergeStrategy is the k-way merge strategy the final merge stage
	// chose (see MergeStrategyFor): runs below the measured crossover use
	// the linear tournament, larger fans the tree merge, and large
	// multicore merges the range-split parallel merge. Empty when the
	// run had no ordering (concatenation).
	MergeStrategy string
}

// Total returns the summed phase wall time. ShuffleTime is a component of
// ReduceTime, not an additional phase, so it is not added here.
func (s Stats) Total() time.Duration {
	return s.SplitTime + s.MapTime + s.ReduceTime + s.MergeTime
}

// Result is the output of a run: final pairs (sorted iff Spec.Less was set)
// plus run statistics.
type Result[K comparable, R any] struct {
	Pairs []Pair[K, R]
	Stats Stats
}

// Map returns the results as a map. It is a convenience for tests and
// callers that do not care about order; duplicate keys (impossible in a
// well-formed run) keep the last value.
func (r *Result[K, R]) Map() map[K]R {
	m := make(map[K]R, len(r.Pairs))
	for _, p := range r.Pairs {
		m[p.Key] = p.Value
	}
	return m
}

// ErrSpecIncomplete reports a Spec missing Map (or MapBytes) or Reduce.
var ErrSpecIncomplete = errors.New("mapreduce: spec requires Map (or MapBytes) and Reduce")

// ErrMapBytesKey reports a Spec whose MapBytes is set but whose key type
// is not string — the zero-copy emit path interns byte keys into strings
// and has no meaning for other key types.
var ErrMapBytesKey = errors.New("mapreduce: MapBytes requires the spec key type to be string")

// taskError wraps a recovered panic or returned error from a user callback.
type taskError struct {
	phase string
	spec  string
	err   error
}

func (e *taskError) Error() string {
	return fmt.Sprintf("mapreduce: %s task failed in %q: %v", e.phase, e.spec, e.err)
}

func (e *taskError) Unwrap() error { return e.err }

var hashSeed = maphash.MakeSeed()

// partitionOf maps a key to a reducer partition using the spec's
// partitioner when present, hashing otherwise.
func partitionOf[K comparable](key K, numReducers int, fn func(K, int) int) int {
	if fn != nil {
		p := fn(key, numReducers) % numReducers
		if p < 0 {
			p += numReducers
		}
		return p
	}
	return int(maphash.Comparable(hashSeed, key) % uint64(numReducers))
}

// guard runs f, converting panics into errors, so one bad record cannot
// take down the runtime (Phoenix's fault-tolerance contract).
func guard(f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return f()
}

// ctxErr returns ctx.Err() if the context is done, else nil.
func ctxErr(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}
