package mapreduce

import (
	"bytes"
	"testing"
	"testing/quick"
)

func reassemble(chunks [][]byte) []byte {
	var out []byte
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}

func TestFixedSplitterSizes(t *testing.T) {
	data := bytes.Repeat([]byte("x"), 1000)
	chunks := FixedSplitter(data, 300)
	if len(chunks) != 4 {
		t.Fatalf("got %d chunks, want 4", len(chunks))
	}
	for i, c := range chunks[:3] {
		if len(c) != 300 {
			t.Fatalf("chunk %d has %d bytes, want 300", i, len(c))
		}
	}
	if len(chunks[3]) != 100 {
		t.Fatalf("last chunk has %d bytes, want 100", len(chunks[3]))
	}
}

func TestFixedSplitterEmptyInput(t *testing.T) {
	if got := FixedSplitter(nil, 100); got != nil {
		t.Fatalf("empty input produced %d chunks", len(got))
	}
}

func TestFixedSplitterZeroChunkSize(t *testing.T) {
	data := []byte("hello")
	chunks := FixedSplitter(data, 0)
	if len(chunks) != 1 || !bytes.Equal(chunks[0], data) {
		t.Fatalf("zero chunk size should yield one whole chunk, got %d", len(chunks))
	}
}

func TestFixedSplitterReassembles(t *testing.T) {
	prop := func(data []byte, size uint8) bool {
		chunks := FixedSplitter(data, int(size))
		return bytes.Equal(reassemble(chunks), data)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDelimiterSplitterNoTornWords(t *testing.T) {
	data := []byte("alpha beta gamma delta epsilon zeta eta theta")
	split := DelimiterSplitter(' ')
	chunks := split(data, 10)
	for i, c := range chunks[:len(chunks)-1] {
		if len(c) == 0 || c[len(c)-1] != ' ' {
			t.Fatalf("chunk %d %q does not end at a delimiter", i, c)
		}
	}
	if !bytes.Equal(reassemble(chunks), data) {
		t.Fatal("chunks do not reassemble to input")
	}
}

func TestDelimiterSplitterDefaultWhitespace(t *testing.T) {
	data := []byte("one\ttwo\nthree four")
	split := DelimiterSplitter()
	chunks := split(data, 5)
	if !bytes.Equal(reassemble(chunks), data) {
		t.Fatal("chunks do not reassemble to input")
	}
	for i, c := range chunks[:len(chunks)-1] {
		last := c[len(c)-1]
		if last != ' ' && last != '\n' && last != '\t' && last != '\r' {
			t.Fatalf("chunk %d ends with %q, not whitespace", i, last)
		}
	}
}

func TestDelimiterSplitterNoDelimiterInData(t *testing.T) {
	// A chunk with no delimiter ahead must extend to EOF, producing one
	// giant chunk rather than tearing the record.
	data := bytes.Repeat([]byte("a"), 100)
	chunks := DelimiterSplitter(' ')(data, 10)
	if len(chunks) != 1 || len(chunks[0]) != 100 {
		t.Fatalf("got %d chunks, want 1 chunk of all 100 bytes", len(chunks))
	}
}

// Property: for any input and chunk size, delimiter-aligned chunks
// reassemble exactly, and every chunk boundary falls just after a delimiter.
func TestDelimiterSplitterProperty(t *testing.T) {
	split := DelimiterSplitter(' ', '\n')
	prop := func(words []string, size uint8) bool {
		var data []byte
		for _, w := range words {
			for _, ch := range []byte(w) {
				if ch != ' ' && ch != '\n' {
					data = append(data, ch)
				}
			}
			data = append(data, ' ')
		}
		chunks := split(data, int(size)%64+1)
		if !bytes.Equal(reassemble(chunks), data) {
			return false
		}
		for i, c := range chunks {
			if i == len(chunks)-1 {
				continue
			}
			if len(c) == 0 {
				return false
			}
			if last := c[len(c)-1]; last != ' ' && last != '\n' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLineSplitterAlignsToNewlines(t *testing.T) {
	data := []byte("line one\nline two\nline three\nline four\n")
	chunks := LineSplitter(data, 12)
	for i, c := range chunks {
		if c[len(c)-1] != '\n' && i != len(chunks)-1 {
			t.Fatalf("chunk %d %q does not end with newline", i, c)
		}
	}
	if !bytes.Equal(reassemble(chunks), data) {
		t.Fatal("chunks do not reassemble to input")
	}
}
