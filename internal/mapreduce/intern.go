package mapreduce

import (
	"hash/maphash"
	"reflect"
)

// wordTable is the task-local key index of the zero-copy emit path: an
// open-addressing hash table from byte-string keys to their emit records.
// It exists because the generic built-in map pays for features this path
// does not need — per-probe group matching over a sparse layout, tombstone
// bookkeeping, iteration support. Here a probe is one 16-byte slot load, a
// stored-hash compare, and (on hash match) one string compare against the
// record's interned key; iteration is never done through the table at all
// (the record arena is scanned linearly instead), so reset is a bulk clear.
//
// Slots store the full hash, biased so zero always means empty; capacity is
// a power of two, grown at 3/4 load by rehashing slots only (keys are never
// re-hashed — the stored hash is reused).
type wordTable[V any] struct {
	slots []internSlot[V]
	mask  uint64
	n     int
}

type internSlot[V any] struct {
	hash uint64
	rec  *kvrec[string, V]
}

// internInitSlots is the initial slot count; the table doubles as needed
// and keeps its size across tasks (successive tasks of one worker see
// similar vocabularies).
const internInitSlots = 1 << 10

func newWordTable[V any]() *wordTable[V] {
	return &wordTable[V]{slots: make([]internSlot[V], internInitSlots), mask: internInitSlots - 1}
}

// getWordTable hands a worker a recycled (empty, pre-grown) intern table.
func getWordTable[V any]() *wordTable[V] {
	if v := poolFor(reflect.TypeFor[wordTable[V]]()).Get(); v != nil {
		return v.(*wordTable[V])
	}
	return newWordTable[V]()
}

func putWordTable[V any](t *wordTable[V]) {
	t.reset()
	poolFor(reflect.TypeFor[wordTable[V]]()).Put(t)
}

// internHash hashes a key's bytes, biased non-zero so it can double as the
// slot occupancy marker.
func internHash(kb []byte) uint64 {
	return maphash.Bytes(hashSeed, kb) | 1
}

// lookup returns the record interned for kb (whose hash is h), or nil.
func (t *wordTable[V]) lookup(kb []byte, h uint64) *kvrec[string, V] {
	i := h & t.mask
	for {
		s := &t.slots[i]
		if s.hash == 0 {
			return nil
		}
		if s.hash == h && s.rec.key == string(kb) {
			return s.rec
		}
		i = (i + 1) & t.mask
	}
}

// insert adds a record under hash h. The key must not already be present.
func (t *wordTable[V]) insert(h uint64, rec *kvrec[string, V]) {
	if 4*(t.n+1) > 3*len(t.slots) {
		t.grow()
	}
	i := h & t.mask
	for t.slots[i].hash != 0 {
		i = (i + 1) & t.mask
	}
	t.slots[i] = internSlot[V]{hash: h, rec: rec}
	t.n++
}

func (t *wordTable[V]) grow() {
	old := t.slots
	t.slots = make([]internSlot[V], 2*len(old))
	t.mask = uint64(len(t.slots)) - 1
	for _, s := range old {
		if s.hash == 0 {
			continue
		}
		i := s.hash & t.mask
		for t.slots[i].hash != 0 {
			i = (i + 1) & t.mask
		}
		t.slots[i] = s
	}
}

// reset empties the table, keeping its capacity for the next task.
func (t *wordTable[V]) reset() {
	clear(t.slots)
	t.n = 0
}
