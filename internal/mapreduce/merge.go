package mapreduce

import (
	"runtime"
	"sort"
	"sync"
)

// MergeStrategy identifies how the final k-way merge combined the sorted
// partition runs. The strategy is picked at runtime from the fan-in and
// output size (MergeStrategyFor) and reported in Stats.MergeStrategy.
type MergeStrategy int

const (
	// MergeCopy: zero or one non-empty run — a straight copy.
	MergeCopy MergeStrategy = iota
	// MergeBinary: exactly two non-empty runs — two-pointer merge.
	MergeBinary
	// MergeLinear: a linear tournament over run heads, O(total·k). Below
	// the tree crossover its branch-predictable scan beats the heap's
	// sift cost.
	MergeLinear
	// MergeTree: a tournament-tree (min-heap) merge, O(total·log k).
	MergeTree
	// MergeParallel: disjoint key ranges merged concurrently, for large
	// outputs on a multicore node.
	MergeParallel
)

func (s MergeStrategy) String() string {
	switch s {
	case MergeCopy:
		return "copy"
	case MergeBinary:
		return "binary"
	case MergeLinear:
		return "linear"
	case MergeTree:
		return "tree"
	case MergeParallel:
		return "parallel"
	}
	return "unknown"
}

// mergeTreeMinK is the fan-in at which the tree merge starts beating the
// linear tournament. Below it the linear scan's predictable branches win;
// the crossover is measured by the merge k-sweep in mcsd-bench (see
// BENCH_mapreduce.json, merge/* rows).
const mergeTreeMinK = 12

// parallelMergeMin is the output size below which a parallel final merge is
// not worth the goroutine and boundary-search overhead.
const parallelMergeMin = 1 << 16

// MergeStrategyFor picks the merge strategy for the given total output
// length and number of non-empty runs.
func MergeStrategyFor(total, live int) MergeStrategy {
	switch {
	case live <= 1:
		return MergeCopy
	case live == 2:
		return MergeBinary
	case total >= parallelMergeMin && live >= 4 && runtime.GOMAXPROCS(0) > 1:
		return MergeParallel
	case live < mergeTreeMinK:
		return MergeLinear
	default:
		return MergeTree
	}
}

// MergeSorted k-way merges sorted runs into one sorted slice, picking the
// strategy from the fan-in (see MergeStrategyFor).
//
// Ties between runs are broken by run index, so output is deterministic
// for any input regardless of strategy.
func MergeSorted[K comparable, R any](runs [][]Pair[K, R], less func(a, b K) bool) []Pair[K, R] {
	out, _ := MergeSortedStats(runs, less)
	return out
}

// MergeSortedStats is MergeSorted, also reporting the strategy it chose.
func MergeSortedStats[K comparable, R any](runs [][]Pair[K, R], less func(a, b K) bool) ([]Pair[K, R], MergeStrategy) {
	total, live := 0, 0
	for _, r := range runs {
		if len(r) > 0 {
			live++
			total += len(r)
		}
	}
	strat := MergeStrategyFor(total, live)
	return mergeAs(strat, runs, less, total, live), strat
}

// MergeSortedWith merges with a forced strategy. It exists so benchmarks
// and tests can pin strategies against each other at a given fan-in (the
// crossover measurement behind mergeTreeMinK); production paths use
// MergeSorted. A strategy that cannot handle the run shape (e.g.
// MergeBinary over three non-empty runs) falls back to MergeTree.
func MergeSortedWith[K comparable, R any](runs [][]Pair[K, R], less func(a, b K) bool, strat MergeStrategy) []Pair[K, R] {
	total, live := 0, 0
	for _, r := range runs {
		if len(r) > 0 {
			live++
			total += len(r)
		}
	}
	if (strat == MergeCopy && live > 1) || (strat == MergeBinary && live != 2) {
		strat = MergeTree
	}
	return mergeAs(strat, runs, less, total, live)
}

func mergeAs[K comparable, R any](strat MergeStrategy, runs [][]Pair[K, R], less func(a, b K) bool, total, live int) []Pair[K, R] {
	out := make([]Pair[K, R], total)
	if live == 0 {
		return out
	}
	switch strat {
	case MergeCopy:
		n := 0
		for _, r := range runs {
			n += copy(out[n:], r)
		}
	case MergeBinary:
		var a, b []Pair[K, R]
		for _, r := range runs {
			if len(r) == 0 {
				continue
			}
			if a == nil {
				a = r
			} else {
				b = r
			}
		}
		mergeTwoInto(out, a, b, less)
	case MergeLinear:
		linearMergeInto(out, runs, less)
	case MergeParallel:
		parallelMergeInto(out, runs, less)
	default:
		mergeInto(out, runs, less)
	}
	return out
}

// MergeSortedLinear is the linear tournament exposed with the MergeSorted
// signature: O(total·k) over run heads. Retained as the baseline the
// adaptive strategies are benchmarked against, and used by MergeSorted
// itself below the tree crossover.
func MergeSortedLinear[K comparable, R any](runs [][]Pair[K, R], less func(a, b K) bool) []Pair[K, R] {
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]Pair[K, R], total)
	linearMergeInto(out, runs, less)
	return out
}

// linearMergeInto merges runs into dst (len(dst) = total run length) with
// a linear tournament: each step scans every run head. One allocation.
func linearMergeInto[K comparable, R any](dst []Pair[K, R], runs [][]Pair[K, R], less func(a, b K) bool) {
	idx := make([]int, len(runs))
	for n := range dst {
		best := -1
		for i, r := range runs {
			if idx[i] >= len(r) {
				continue
			}
			if best < 0 || less(r[idx[i]].Key, runs[best][idx[best]].Key) {
				best = i
			}
		}
		dst[n] = runs[best][idx[best]]
		idx[best]++
	}
}

// mergeInto merges the sorted runs (empty runs allowed) into dst, which
// must have length equal to the total run length. Two live runs take the
// two-pointer fast path; more use a min-heap of run heads. The heap and
// cursor arrays share one backing allocation, so the whole merge costs
// exactly one allocation beyond dst — matching the linear baseline's
// profile.
func mergeInto[K comparable, R any](dst []Pair[K, R], runs [][]Pair[K, R], less func(a, b K) bool) {
	k := len(runs)
	backing := make([]int, 2*k)
	h := runHeap[K, R]{runs: runs, idx: backing[:k], heap: backing[k:k], less: less}
	for i, r := range runs {
		if len(r) > 0 {
			h.heap = append(h.heap, i)
		}
	}
	switch len(h.heap) {
	case 0:
		return
	case 1:
		copy(dst, runs[h.heap[0]])
		return
	case 2:
		mergeTwoInto(dst, runs[h.heap[0]], runs[h.heap[1]], less)
		return
	}
	for i := len(h.heap)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	for n := range dst {
		top := h.heap[0]
		dst[n] = h.runs[top][h.idx[top]]
		h.idx[top]++
		if h.idx[top] == len(h.runs[top]) {
			last := len(h.heap) - 1
			h.heap[0] = h.heap[last]
			h.heap = h.heap[:last]
		}
		if len(h.heap) > 1 {
			h.siftDown(0)
		}
	}
}

// mergeTwoInto is the binary merge fast path.
func mergeTwoInto[K comparable, R any](dst []Pair[K, R], a, b []Pair[K, R], less func(x, y K) bool) {
	i, j := 0, 0
	for n := range dst {
		switch {
		case i == len(a):
			dst[n] = b[j]
			j++
		case j == len(b):
			dst[n] = a[i]
			i++
		case less(b[j].Key, a[i].Key):
			dst[n] = b[j]
			j++
		default: // a wins ties, keeping run order stable
			dst[n] = a[i]
			i++
		}
	}
}

// runHeap is a min-heap of run indices ordered by each run's head key,
// with run index as the tie breaker.
type runHeap[K comparable, R any] struct {
	runs [][]Pair[K, R]
	idx  []int
	heap []int
	less func(a, b K) bool
}

// before reports whether run a's head should be emitted ahead of run b's.
func (h *runHeap[K, R]) before(a, b int) bool {
	ka := h.runs[a][h.idx[a]].Key
	kb := h.runs[b][h.idx[b]].Key
	if h.less(ka, kb) {
		return true
	}
	if h.less(kb, ka) {
		return false
	}
	return a < b
}

func (h *runHeap[K, R]) siftDown(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.before(h.heap[l], h.heap[small]) {
			small = l
		}
		if r < n && h.before(h.heap[r], h.heap[small]) {
			small = r
		}
		if small == i {
			return
		}
		h.heap[i], h.heap[small] = h.heap[small], h.heap[i]
		i = small
	}
}

// parallelMergeInto splits the key space into GOMAXPROCS-bounded disjoint
// ranges — pivots sampled from the longest run, segment boundaries found
// by binary search in every run — and heap-merges each range concurrently
// into its precomputed slot of dst. One pass over the data, no locking:
// every goroutine owns a disjoint slice of dst.
func parallelMergeInto[K comparable, R any](dst []Pair[K, R], runs [][]Pair[K, R], less func(a, b K) bool) {
	parts := runtime.GOMAXPROCS(0)
	if parts > 8 {
		parts = 8
	}
	longest := 0
	for i, r := range runs {
		if len(r) > len(runs[longest]) {
			longest = i
		}
	}
	src := runs[longest]
	pivots := make([]K, parts-1)
	for j := 1; j < parts; j++ {
		pivots[j-1] = src[j*len(src)/parts].Key
	}

	// bounds[i][s] is where segment s starts in run i: the first index
	// whose key is >= pivots[s-1]. Keys equal to a pivot land at the start
	// of that pivot's segment in every run, so no key range is torn.
	bounds := make([][]int, len(runs))
	for i, r := range runs {
		bi := make([]int, parts+1)
		bi[parts] = len(r)
		for j, piv := range pivots {
			prev := bi[j]
			bi[j+1] = prev + sort.Search(len(r)-prev, func(x int) bool {
				return !less(r[prev+x].Key, piv)
			})
		}
		bounds[i] = bi
	}

	var wg sync.WaitGroup
	off := 0
	for s := 0; s < parts; s++ {
		segLen := 0
		segRuns := make([][]Pair[K, R], 0, len(runs))
		for i, r := range runs {
			lo, hi := bounds[i][s], bounds[i][s+1]
			if lo < hi {
				segRuns = append(segRuns, r[lo:hi])
				segLen += hi - lo
			}
		}
		if segLen == 0 {
			continue
		}
		seg := dst[off : off+segLen]
		off += segLen
		wg.Add(1)
		go func() {
			defer wg.Done()
			if len(segRuns) == 1 {
				copy(seg, segRuns[0])
				return
			}
			mergeInto(seg, segRuns, less)
		}()
	}
	wg.Wait()
}
