package mapreduce

import (
	"runtime"
	"sort"
	"sync"
)

// parallelMergeMin is the output size below which a parallel final merge is
// not worth the goroutine and boundary-search overhead.
const parallelMergeMin = 1 << 16

// MergeSorted k-way merges sorted runs into one sorted slice. Small inputs
// use a two-pointer or heap merge (O(total·log k) against the O(total·k)
// linear tournament it replaced); large outputs on a multicore node are
// split into disjoint key ranges that merge in parallel.
//
// Ties between runs are broken by run index, matching the stable order of
// the linear tournament, so output is deterministic for any input.
func MergeSorted[K comparable, R any](runs [][]Pair[K, R], less func(a, b K) bool) []Pair[K, R] {
	total := 0
	live := make([][]Pair[K, R], 0, len(runs))
	for _, r := range runs {
		if len(r) > 0 {
			live = append(live, r)
			total += len(r)
		}
	}
	out := make([]Pair[K, R], total)
	switch len(live) {
	case 0:
		return out
	case 1:
		copy(out, live[0])
		return out
	}
	if total >= parallelMergeMin && len(live) >= 4 && runtime.GOMAXPROCS(0) > 1 {
		parallelMergeInto(out, live, less)
		return out
	}
	mergeInto(out, live, less)
	return out
}

// MergeSortedLinear is the pre-overhaul baseline: a linear tournament over
// run heads, O(total·k). It is retained (and exported) so benchmarks can
// pin the loser-tree/heap merge against it; production code paths use
// MergeSorted.
func MergeSortedLinear[K comparable, R any](runs [][]Pair[K, R], less func(a, b K) bool) []Pair[K, R] {
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]Pair[K, R], 0, total)
	idx := make([]int, len(runs))
	for len(out) < total {
		best := -1
		for i, r := range runs {
			if idx[i] >= len(r) {
				continue
			}
			if best < 0 || less(r[idx[i]].Key, runs[best][idx[best]].Key) {
				best = i
			}
		}
		out = append(out, runs[best][idx[best]])
		idx[best]++
	}
	return out
}

// mergeInto merges the non-empty sorted runs into dst, which must have
// length equal to the total run length. Two runs take the two-pointer fast
// path; more use a min-heap of run heads.
func mergeInto[K comparable, R any](dst []Pair[K, R], runs [][]Pair[K, R], less func(a, b K) bool) {
	if len(runs) == 2 {
		mergeTwoInto(dst, runs[0], runs[1], less)
		return
	}
	h := runHeap[K, R]{runs: runs, idx: make([]int, len(runs)), heap: make([]int, len(runs)), less: less}
	for i := range h.heap {
		h.heap[i] = i
	}
	for i := len(h.heap)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	for n := range dst {
		top := h.heap[0]
		dst[n] = h.runs[top][h.idx[top]]
		h.idx[top]++
		if h.idx[top] == len(h.runs[top]) {
			last := len(h.heap) - 1
			h.heap[0] = h.heap[last]
			h.heap = h.heap[:last]
		}
		if len(h.heap) > 1 {
			h.siftDown(0)
		}
	}
}

// mergeTwoInto is the binary merge fast path.
func mergeTwoInto[K comparable, R any](dst []Pair[K, R], a, b []Pair[K, R], less func(x, y K) bool) {
	i, j := 0, 0
	for n := range dst {
		switch {
		case i == len(a):
			dst[n] = b[j]
			j++
		case j == len(b):
			dst[n] = a[i]
			i++
		case less(b[j].Key, a[i].Key):
			dst[n] = b[j]
			j++
		default: // a wins ties, keeping run order stable
			dst[n] = a[i]
			i++
		}
	}
}

// runHeap is a min-heap of run indices ordered by each run's head key,
// with run index as the tie breaker.
type runHeap[K comparable, R any] struct {
	runs [][]Pair[K, R]
	idx  []int
	heap []int
	less func(a, b K) bool
}

// before reports whether run a's head should be emitted ahead of run b's.
func (h *runHeap[K, R]) before(a, b int) bool {
	ka := h.runs[a][h.idx[a]].Key
	kb := h.runs[b][h.idx[b]].Key
	if h.less(ka, kb) {
		return true
	}
	if h.less(kb, ka) {
		return false
	}
	return a < b
}

func (h *runHeap[K, R]) siftDown(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.before(h.heap[l], h.heap[small]) {
			small = l
		}
		if r < n && h.before(h.heap[r], h.heap[small]) {
			small = r
		}
		if small == i {
			return
		}
		h.heap[i], h.heap[small] = h.heap[small], h.heap[i]
		i = small
	}
}

// parallelMergeInto splits the key space into GOMAXPROCS-bounded disjoint
// ranges — pivots sampled from the longest run, segment boundaries found
// by binary search in every run — and heap-merges each range concurrently
// into its precomputed slot of dst. One pass over the data, no locking:
// every goroutine owns a disjoint slice of dst.
func parallelMergeInto[K comparable, R any](dst []Pair[K, R], runs [][]Pair[K, R], less func(a, b K) bool) {
	parts := runtime.GOMAXPROCS(0)
	if parts > 8 {
		parts = 8
	}
	longest := 0
	for i, r := range runs {
		if len(r) > len(runs[longest]) {
			longest = i
		}
	}
	src := runs[longest]
	pivots := make([]K, parts-1)
	for j := 1; j < parts; j++ {
		pivots[j-1] = src[j*len(src)/parts].Key
	}

	// bounds[i][s] is where segment s starts in run i: the first index
	// whose key is >= pivots[s-1]. Keys equal to a pivot land at the start
	// of that pivot's segment in every run, so no key range is torn.
	bounds := make([][]int, len(runs))
	for i, r := range runs {
		bi := make([]int, parts+1)
		bi[parts] = len(r)
		for j, piv := range pivots {
			prev := bi[j]
			bi[j+1] = prev + sort.Search(len(r)-prev, func(x int) bool {
				return !less(r[prev+x].Key, piv)
			})
		}
		bounds[i] = bi
	}

	var wg sync.WaitGroup
	off := 0
	for s := 0; s < parts; s++ {
		segLen := 0
		segRuns := make([][]Pair[K, R], 0, len(runs))
		for i, r := range runs {
			lo, hi := bounds[i][s], bounds[i][s+1]
			if lo < hi {
				segRuns = append(segRuns, r[lo:hi])
				segLen += hi - lo
			}
		}
		if segLen == 0 {
			continue
		}
		seg := dst[off : off+segLen]
		off += segLen
		wg.Add(1)
		go func() {
			defer wg.Done()
			if len(segRuns) == 1 {
				copy(seg, segRuns[0])
				return
			}
			mergeInto(seg, segRuns, less)
		}()
	}
	wg.Wait()
}
