package mapreduce

import (
	"context"
	"sync/atomic"
	"testing"
)

// poisonValue is an improbable sentinel: any appearance in a result means
// a recycled buffer's stale region leaked into live data.
const poisonValue = -0x5EED5EED

// TestPooledBuffersPoisonedOnRecycle scribbles a sentinel over every value
// buffer the moment it returns to the free list — including the spare
// capacity beyond len — then runs jobs across worker counts and asserts
// the sentinel never surfaces in results. Any engine path that reads a
// recycled buffer before overwriting it, or hands out a buffer without
// truncating to zero length, fails loudly here instead of corrupting
// counts silently in production.
func TestPooledBuffersPoisonedOnRecycle(t *testing.T) {
	if testRecyclePoison != nil {
		t.Fatal("poison hook already installed")
	}
	var poisoned atomic.Int64
	testRecyclePoison = func(buf any) {
		vs, ok := buf.([]int)
		if !ok {
			return
		}
		for i := range vs {
			vs[i] = poisonValue
		}
		poisoned.Add(1)
	}
	defer func() { testRecyclePoison = nil }()

	input := deterministicCorpus()
	ctx := context.Background()
	want := naiveCount(string(input))

	for _, workers := range []int{1, 2, 4} {
		// Repeats force cross-job reuse through the sync.Pools, so later
		// jobs consume buffers earlier jobs poisoned.
		for rep := 0; rep < 3; rep++ {
			res, err := Run(ctx, Config{Workers: workers}, orderedWCSpec(), input)
			if err != nil {
				t.Fatal(err)
			}
			got := res.Map()
			if len(got) != len(want) {
				t.Fatalf("workers=%d rep=%d: %d keys, want %d", workers, rep, len(got), len(want))
			}
			for k, v := range got {
				if v == poisonValue || v < 0 {
					t.Fatalf("workers=%d rep=%d: key %q has poisoned/corrupt count %d", workers, rep, k, v)
				}
				if want[k] != v {
					t.Fatalf("workers=%d rep=%d: count[%q] = %d, want %d", workers, rep, k, v, want[k])
				}
			}

			// The staged path recycles through the same pools.
			sm, err := Run(ctx, Config{Workers: workers}, sortMergeSpec(), input)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range sm.Pairs {
				for _, v := range p.Value {
					if v == poisonValue {
						t.Fatalf("workers=%d rep=%d: key %q retained a poisoned value", workers, rep, p.Key)
					}
				}
			}
		}
	}
	if poisoned.Load() == 0 {
		t.Fatal("poison hook never fired: buffers are not being recycled, test is vacuous")
	}
}
