package mapreduce

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"mcsd/internal/memsim"
)

// wcSpec is an inline word-count: the canonical Phoenix example.
func wcSpec() Spec[string, int, int] {
	return Spec[string, int, int]{
		Name:  "wc-test",
		Split: DelimiterSplitter(' ', '\n'),
		Map: func(chunk []byte, emit func(string, int)) error {
			for _, w := range bytes.Fields(chunk) {
				emit(string(w), 1)
			}
			return nil
		},
		Reduce: func(_ string, values []int) (int, error) {
			sum := 0
			for _, v := range values {
				sum += v
			}
			return sum, nil
		},
		FootprintFactor: 3,
	}
}

func naiveCount(text string) map[string]int {
	m := make(map[string]int)
	for _, w := range strings.Fields(text) {
		m[w]++
	}
	return m
}

func TestRunWordCountMatchesNaive(t *testing.T) {
	text := "the quick brown fox jumps over the lazy dog the fox"
	res, err := Run(context.Background(), Config{Workers: 4}, wcSpec(), []byte(text))
	if err != nil {
		t.Fatal(err)
	}
	want := naiveCount(text)
	got := res.Map()
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%q] = %d, want %d", k, got[k], v)
		}
	}
}

func TestRunEmptyInput(t *testing.T) {
	res, err := Run(context.Background(), Config{Workers: 2}, wcSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 {
		t.Fatalf("empty input produced %d pairs", len(res.Pairs))
	}
	if res.Stats.MapTasks != 0 {
		t.Fatalf("empty input ran %d map tasks", res.Stats.MapTasks)
	}
}

func TestRunRejectsIncompleteSpec(t *testing.T) {
	_, err := Run(context.Background(), Config{}, Spec[string, int, int]{}, []byte("x"))
	if !errors.Is(err, ErrSpecIncomplete) {
		t.Fatalf("err = %v, want ErrSpecIncomplete", err)
	}
	_, err = RunSequential(context.Background(), Config{}, Spec[string, int, int]{}, []byte("x"))
	if !errors.Is(err, ErrSpecIncomplete) {
		t.Fatalf("sequential err = %v, want ErrSpecIncomplete", err)
	}
}

// Property: parallel Run equals RunSequential equals a naive loop, for any
// worker count, chunk size and random word soup.
func TestRunEquivalenceProperty(t *testing.T) {
	prop := func(words []string, workers, chunk uint8) bool {
		var sb strings.Builder
		for _, w := range words {
			for _, r := range w {
				if r > ' ' && r < 127 {
					sb.WriteRune(r)
				}
			}
			sb.WriteByte(' ')
		}
		text := sb.String()
		cfg := Config{Workers: int(workers)%8 + 1, ChunkSize: int(chunk)%97 + 1}
		par, err := Run(context.Background(), cfg, wcSpec(), []byte(text))
		if err != nil {
			return false
		}
		seq, err := RunSequential(context.Background(), cfg, wcSpec(), []byte(text))
		if err != nil {
			return false
		}
		want := naiveCount(text)
		pm, sm := par.Map(), seq.Map()
		if len(pm) != len(want) || len(sm) != len(want) {
			return false
		}
		for k, v := range want {
			if pm[k] != v || sm[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSortedOutput(t *testing.T) {
	spec := wcSpec()
	spec.Less = func(a, b string) bool { return a < b }
	text := "zeta alpha mu beta alpha zeta zeta"
	res, err := Run(context.Background(), Config{Workers: 4, NumReducers: 3}, spec, []byte(text))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Pairs); i++ {
		if res.Pairs[i-1].Key > res.Pairs[i].Key {
			t.Fatalf("output not sorted: %q before %q", res.Pairs[i-1].Key, res.Pairs[i].Key)
		}
	}
	if got := res.Map()["zeta"]; got != 3 {
		t.Fatalf("zeta = %d, want 3", got)
	}
}

func TestRunCombinerPreservesResult(t *testing.T) {
	spec := wcSpec()
	var combined atomic.Int64
	spec.Combine = func(_ string, values []int) []int {
		combined.Add(1)
		sum := 0
		for _, v := range values {
			sum += v
		}
		return []int{sum}
	}
	text := strings.Repeat("apple banana apple ", 100)
	res, err := Run(context.Background(), Config{Workers: 4}, spec, []byte(text))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Map()["apple"]; got != 200 {
		t.Fatalf("apple = %d, want 200", got)
	}
	if combined.Load() == 0 {
		t.Fatal("combiner never invoked")
	}
}

func TestRunMemoryAdmission(t *testing.T) {
	acct := memsim.NewAccountant(memsim.Config{CapacityBytes: 1024, UsableFraction: 1.0})
	cfg := Config{Workers: 2, Memory: acct}
	// 3x footprint of 600 bytes = 1800 > 1024: must OOM.
	input := bytes.Repeat([]byte("w "), 300)
	_, err := Run(context.Background(), cfg, wcSpec(), input)
	if !errors.Is(err, memsim.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if acct.Footprint() != 0 {
		t.Fatalf("failed run leaked %d bytes", acct.Footprint())
	}
	// A small input must pass and release afterwards.
	if _, err := Run(context.Background(), cfg, wcSpec(), []byte("a b c")); err != nil {
		t.Fatal(err)
	}
	if acct.Footprint() != 0 {
		t.Fatalf("successful run leaked %d bytes", acct.Footprint())
	}
}

func TestSequentialMemoryAdmission(t *testing.T) {
	acct := memsim.NewAccountant(memsim.Config{CapacityBytes: 1024, UsableFraction: 1.0})
	input := bytes.Repeat([]byte("w "), 300)
	_, err := RunSequential(context.Background(), Config{Memory: acct}, wcSpec(), input)
	if !errors.Is(err, memsim.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestRunMapPanicFailsAfterRetries(t *testing.T) {
	spec := wcSpec()
	spec.Map = func(chunk []byte, emit func(string, int)) error {
		panic("boom")
	}
	_, err := Run(context.Background(), Config{Workers: 2, MaxTaskRetries: 1}, spec, []byte("a b c"))
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want panic surfaced", err)
	}
}

func TestRunMapErrorRecoveredByRetry(t *testing.T) {
	spec := wcSpec()
	var calls atomic.Int64
	inner := spec.Map
	spec.Map = func(chunk []byte, emit func(string, int)) error {
		if calls.Add(1) == 1 {
			return fmt.Errorf("transient failure")
		}
		return inner(chunk, emit)
	}
	res, err := Run(context.Background(), Config{Workers: 1, ChunkSize: 1 << 20, MaxTaskRetries: 3}, spec, []byte("a b a"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TaskRetries == 0 {
		t.Fatal("retry not recorded")
	}
	// The failed attempt's emissions must not be double counted.
	if got := res.Map()["a"]; got != 2 {
		t.Fatalf("a = %d, want 2 (failed attempt leaked emissions?)", got)
	}
}

func TestRunReducePanicSurfaces(t *testing.T) {
	spec := wcSpec()
	spec.Reduce = func(k string, values []int) (int, error) {
		if k == "bad" {
			panic("reduce blew up")
		}
		return len(values), nil
	}
	_, err := Run(context.Background(), Config{Workers: 2, MaxTaskRetries: 1}, spec, []byte("good bad good"))
	if err == nil || !strings.Contains(err.Error(), "reduce blew up") {
		t.Fatalf("err = %v, want reduce panic surfaced", err)
	}
}

func TestRunContextCancellation(t *testing.T) {
	spec := wcSpec()
	started := make(chan struct{}, 64)
	spec.Map = func(chunk []byte, emit func(string, int)) error {
		select {
		case started <- struct{}{}:
		default:
		}
		time.Sleep(5 * time.Millisecond)
		return nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := Run(ctx, Config{Workers: 2, ChunkSize: 2}, spec, bytes.Repeat([]byte("w "), 500))
		errCh <- err
	}()
	<-started
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled run did not return")
	}
}

func TestRunStats(t *testing.T) {
	text := strings.Repeat("alpha beta gamma ", 50)
	res, err := Run(context.Background(), Config{Workers: 3, NumReducers: 5, ChunkSize: 64}, wcSpec(), []byte(text))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.MapTasks < 2 {
		t.Fatalf("MapTasks = %d, want several with 64-byte chunks", s.MapTasks)
	}
	if s.ReduceTasks != 5 {
		t.Fatalf("ReduceTasks = %d, want 5", s.ReduceTasks)
	}
	if s.PairsEmitted != 150 {
		t.Fatalf("PairsEmitted = %d, want 150", s.PairsEmitted)
	}
	if s.UniqueKeys != 3 || len(res.Pairs) != 3 {
		t.Fatalf("UniqueKeys = %d, Pairs = %d, want 3/3", s.UniqueKeys, len(res.Pairs))
	}
	if s.InputBytes != int64(len(text)) {
		t.Fatalf("InputBytes = %d, want %d", s.InputBytes, len(text))
	}
	if s.Total() <= 0 {
		t.Fatal("phase times not recorded")
	}
}

func TestRunNonStringKeys(t *testing.T) {
	// Matrix-multiply-style keys: [2]int indices.
	type cell = [2]int
	spec := Spec[cell, int, int]{
		Name: "cells",
		Map: func(chunk []byte, emit func(cell, int)) error {
			for i, b := range chunk {
				emit(cell{i % 3, int(b) % 3}, 1)
			}
			return nil
		},
		Reduce: func(_ cell, values []int) (int, error) { return len(values), nil },
		Less: func(a, b cell) bool {
			if a[0] != b[0] {
				return a[0] < b[0]
			}
			return a[1] < b[1]
		},
	}
	res, err := Run(context.Background(), Config{Workers: 4, NumReducers: 4, ChunkSize: 8}, spec, []byte("abcdefghijklmnopqrstuvwxyz"))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range res.Pairs {
		total += p.Value
	}
	if total != 26 {
		t.Fatalf("cells sum to %d, want 26", total)
	}
	for i := 1; i < len(res.Pairs); i++ {
		a, b := res.Pairs[i-1].Key, res.Pairs[i].Key
		if a[0] > b[0] || (a[0] == b[0] && a[1] >= b[1]) {
			t.Fatalf("keys not strictly sorted: %v then %v", a, b)
		}
	}
}

func TestRunCustomPartitioner(t *testing.T) {
	// Range partitioner: keys starting a-m go to partition 0, n-z to 1.
	spec := wcSpec()
	spec.Less = func(a, b string) bool { return a < b }
	var calls atomic.Int64
	spec.PartitionFn = func(key string, numReducers int) int {
		calls.Add(1)
		if key[0] <= 'm' {
			return 0
		}
		return 1
	}
	text := "apple zebra mango nectarine apple banana yak"
	res, err := Run(context.Background(), Config{Workers: 3, NumReducers: 2}, spec, []byte(text))
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() == 0 {
		t.Fatal("custom partitioner never invoked")
	}
	want := naiveCount(text)
	got := res.Map()
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%q] = %d, want %d", k, got[k], v)
		}
	}
	// Output still globally sorted via the merge stage.
	for i := 1; i < len(res.Pairs); i++ {
		if res.Pairs[i-1].Key >= res.Pairs[i].Key {
			t.Fatal("output not sorted with range partitioner")
		}
	}
}

func TestRunCustomPartitionerOutOfRangeFolded(t *testing.T) {
	spec := wcSpec()
	spec.PartitionFn = func(key string, numReducers int) int {
		return -7 // deliberately out of range
	}
	res, err := Run(context.Background(), Config{Workers: 2, NumReducers: 3}, spec, []byte("a b a"))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Map()["a"]; got != 2 {
		t.Fatalf("a = %d, want 2", got)
	}
}

func TestMergeSortedHandlesEmptyRuns(t *testing.T) {
	runs := [][]Pair[int, string]{
		nil,
		{{1, "a"}, {4, "d"}},
		{},
		{{2, "b"}, {3, "c"}},
	}
	out := MergeSorted(runs, func(a, b int) bool { return a < b })
	if len(out) != 4 {
		t.Fatalf("merged %d pairs, want 4", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].Key > out[i].Key {
			t.Fatalf("merge not sorted at %d", i)
		}
	}
}

func TestRunDegenerateShapes(t *testing.T) {
	text := "x y z x"
	shapes := []Config{
		{Workers: 1, NumReducers: 1},
		{Workers: 16, NumReducers: 1}, // workers >> chunks
		{Workers: 1, NumReducers: 64}, // reducers >> keys
		{Workers: 7, NumReducers: 13, ChunkSize: 1},
	}
	want := naiveCount(text)
	for _, cfg := range shapes {
		res, err := Run(context.Background(), cfg, wcSpec(), []byte(text))
		if err != nil {
			t.Fatalf("config %+v: %v", cfg, err)
		}
		got := res.Map()
		if len(got) != len(want) {
			t.Fatalf("config %+v: %d keys, want %d", cfg, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("config %+v: count[%q] = %d, want %d", cfg, k, got[k], v)
			}
		}
	}
}

func TestRunSingleByteInput(t *testing.T) {
	res, err := Run(context.Background(), Config{Workers: 4}, wcSpec(), []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Map()["a"]; got != 1 {
		t.Fatalf("a = %d, want 1", got)
	}
}

func TestRunValuesSliceNotShared(t *testing.T) {
	// A Reduce that mutates its values slice must not corrupt another
	// key's values (worker buffers must be per-key).
	spec := wcSpec()
	spec.Reduce = func(_ string, values []int) (int, error) {
		for i := range values {
			values[i] = -999 // hostile reduce
		}
		return len(values), nil
	}
	res, err := Run(context.Background(), Config{Workers: 2, NumReducers: 2}, spec,
		[]byte("a a b b b"))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Map()
	if m["a"] != 2 || m["b"] != 3 {
		t.Fatalf("hostile reduce corrupted counts: %v", m)
	}
}

func TestRunPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Config{}, wcSpec(), []byte("a")); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := RunSequential(ctx, Config{}, wcSpec(), []byte("a")); !errors.Is(err, context.Canceled) {
		t.Fatalf("sequential err = %v, want context.Canceled", err)
	}
}

// TestRunStreamingCombineRetryIdempotent is the streaming-combine analogue
// of TestRunMapErrorRecoveredByRetry: a map attempt that emits and then
// fails must not leak its partial, already-combined emissions.
func TestRunStreamingCombineRetryIdempotent(t *testing.T) {
	spec := wcSpec()
	spec.Combine = func(_ string, values []int) []int {
		sum := 0
		for _, v := range values {
			sum += v
		}
		values[0] = sum
		return values[:1]
	}
	var calls atomic.Int64
	inner := spec.Map
	spec.Map = func(chunk []byte, emit func(string, int)) error {
		first := calls.Add(1) == 1
		if err := inner(chunk, emit); err != nil {
			return err
		}
		if first {
			return fmt.Errorf("transient failure after emitting")
		}
		return nil
	}
	res, err := Run(context.Background(), Config{Workers: 1, ChunkSize: 1 << 20, MaxTaskRetries: 3}, spec, []byte("a b a"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TaskRetries == 0 {
		t.Fatal("retry not recorded")
	}
	if got := res.Map()["a"]; got != 2 {
		t.Fatalf("a = %d, want 2 (failed streaming attempt leaked emissions?)", got)
	}
	if got := res.Map()["b"]; got != 1 {
		t.Fatalf("b = %d, want 1", got)
	}
}

// TestRunStreamingCombineFoldsLongKeys pushes one key far past the
// streaming fold threshold so the in-flight folds (emit-side and
// flush-side) are both exercised.
func TestRunStreamingCombineFoldsLongKeys(t *testing.T) {
	spec := wcSpec()
	spec.Combine = func(_ string, values []int) []int {
		sum := 0
		for _, v := range values {
			sum += v
		}
		values[0] = sum
		return values[:1]
	}
	n := streamFoldLen*5 + 7
	text := strings.Repeat("hot ", n) + "cold"
	res, err := Run(context.Background(), Config{Workers: 2, ChunkSize: 128}, spec, []byte(text))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Map()
	if m["hot"] != n || m["cold"] != 1 {
		t.Fatalf("counts = %v, want hot=%d cold=1", m, n)
	}
	if res.Stats.PairsEmitted != int64(n+1) {
		t.Fatalf("PairsEmitted = %d, want %d (raw emissions, not post-combine)", res.Stats.PairsEmitted, n+1)
	}
}

// TestRunStreamingEqualsStagedProperty: the streaming-combine emit path and
// the staged path must be observationally identical.
func TestRunStreamingEqualsStagedProperty(t *testing.T) {
	prop := func(words []string, workers, chunk uint8) bool {
		var sb strings.Builder
		for _, w := range words {
			for _, r := range w {
				if r > ' ' && r < 127 {
					sb.WriteRune(r)
				}
			}
			sb.WriteByte(' ')
		}
		text := sb.String()
		cfg := Config{Workers: int(workers)%8 + 1, ChunkSize: int(chunk)%97 + 1}
		staged, err := Run(context.Background(), cfg, wcSpec(), []byte(text))
		if err != nil {
			return false
		}
		streamSpec := wcSpec()
		streamSpec.Combine = func(_ string, values []int) []int {
			sum := 0
			for _, v := range values {
				sum += v
			}
			values[0] = sum
			return values[:1]
		}
		streaming, err := Run(context.Background(), cfg, streamSpec, []byte(text))
		if err != nil {
			return false
		}
		if staged.Stats.PairsEmitted != streaming.Stats.PairsEmitted {
			return false
		}
		sm, tm := staged.Map(), streaming.Map()
		if len(sm) != len(tm) {
			return false
		}
		for k, v := range sm {
			if tm[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRunShuffleAndFragmentStats(t *testing.T) {
	spec := wcSpec()
	spec.Less = func(a, b string) bool { return a < b }
	text := strings.Repeat("alpha beta gamma delta ", 200)
	res, err := Run(context.Background(), Config{Workers: 4, NumReducers: 4, ChunkSize: 64}, spec, []byte(text))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ShuffleTime <= 0 {
		t.Fatalf("ShuffleTime = %v, want > 0", res.Stats.ShuffleTime)
	}
	if res.Stats.FragmentKeys != res.Stats.UniqueKeys {
		t.Fatalf("FragmentKeys = %d, want UniqueKeys = %d for a single run",
			res.Stats.FragmentKeys, res.Stats.UniqueKeys)
	}
}
