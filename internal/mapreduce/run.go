package mapreduce

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// streamFoldLen is how many values may pile up behind one key of a
// streaming-combine buffer before the combiner folds them. Folding every
// emission would call Combine once per pair; folding only at task flush
// would stage every raw pair again. 64 amortizes the call without letting
// the buffer grow meaningfully.
const streamFoldLen = 64

// Run executes the computation described by spec over input on the node
// described by cfg. It returns the final pairs (globally sorted when
// spec.Less is set) together with run statistics.
//
// Run fails with memsim.ErrOutOfMemory (wrapped) when cfg.Memory cannot
// admit the estimated footprint, with ctx.Err() when cancelled, and with a
// task error when a map or reduce task keeps failing past its retry budget.
func Run[K comparable, V any, R any](ctx context.Context, cfg Config, spec Spec[K, V, R], input []byte) (*Result[K, R], error) {
	if spec.Map == nil || spec.Reduce == nil {
		return nil, ErrSpecIncomplete
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}

	// Memory admission (the native-Phoenix wall): both the input and the
	// emitted intermediate pairs live in memory for the whole run.
	factor := spec.FootprintFactor
	if factor <= 0 {
		factor = 2
	}
	if cfg.Memory != nil {
		h, err := cfg.Memory.ReserveHandle(int64(float64(len(input)) * factor))
		if err != nil {
			return nil, fmt.Errorf("mapreduce: %q: %w", spec.Name, err)
		}
		defer h.Release()
	}

	res := &Result[K, R]{}
	res.Stats.InputBytes = int64(len(input))

	// Split phase.
	start := time.Now()
	split := spec.Split
	if split == nil {
		split = FixedSplitter
	}
	chunks := split(input, cfg.chunkSize(len(input)))
	res.Stats.SplitTime = time.Since(start)
	res.Stats.MapTasks = len(chunks)

	workers := cfg.workers()
	numReducers := cfg.reducers()

	// Map phase: dynamic task scheduling over a shared channel; each
	// worker emits into its own per-partition buffers (no locking on the
	// hot path, as in Phoenix).
	start = time.Now()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		retries  atomic.Int64
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	mp := &mapPhase[K, V, R]{
		ctx:         runCtx,
		spec:        spec,
		chunks:      chunks,
		numReducers: numReducers,
		maxRetries:  cfg.retries(),
		retries:     &retries,
		fail:        fail,
	}
	mp.stagingPool.New = func() any {
		s := make([]Pair[K, V], 0, 512)
		return &s
	}

	states := make([]*mapWorker[K, V], workers)
	taskCh := make(chan int)
	for w := 0; w < workers; w++ {
		st := &mapWorker[K, V]{parts: make([]map[K][]V, numReducers)}
		for r := range st.parts {
			st.parts[r] = make(map[K][]V)
		}
		states[w] = st
		wg.Add(1)
		go func() {
			defer wg.Done()
			if spec.Combine != nil {
				mp.runStreaming(st, taskCh)
			} else {
				mp.runStaged(st, taskCh)
			}
		}()
	}
feed:
	for i := range chunks {
		select {
		case taskCh <- i:
		case <-runCtx.Done():
			break feed
		}
	}
	close(taskCh)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}

	// Worker-local combine (Phoenix combiner) before the shuffle. The
	// streaming path already folds during the map call; this pass only
	// compacts the sub-threshold remainders it left behind.
	if spec.Combine != nil {
		var cwg sync.WaitGroup
		for _, st := range states {
			cwg.Add(1)
			go func(st *mapWorker[K, V]) {
				defer cwg.Done()
				for _, part := range st.parts {
					for k, vs := range part {
						if len(vs) > 1 {
							part[k] = spec.Combine(k, vs)
						}
					}
				}
			}(st)
		}
		cwg.Wait()
	}
	for _, st := range states {
		res.Stats.PairsEmitted += st.emitted
	}
	res.Stats.MapTime = time.Since(start)

	// Reduce phase: one task per partition; each task first merges the
	// worker-local buffers for its partition and key-sorts (the shuffle,
	// tracked separately in Stats.ShuffleTime), then reduces every key.
	start = time.Now()
	partOut := make([][]Pair[K, R], numReducers)
	uniq := make([]int, numReducers)
	var shuffleNanos atomic.Int64
	redCh := make(chan int)
	var rwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for p := range redCh {
				if ctxErr(runCtx) != nil {
					return
				}
				shStart := time.Now()
				// Pre-size the shuffle map from the worker-buffer key
				// counts — an upper bound on the partition's cardinality,
				// so the map never rehashes while absorbing the buffers.
				size := 0
				for _, st := range states {
					size += len(st.parts[p])
				}
				merged := make(map[K][]V, size)
				for _, st := range states {
					for k, vs := range st.parts[p] {
						merged[k] = append(merged[k], vs...)
					}
					st.parts[p] = nil // release as we go
				}
				uniq[p] = len(merged)
				keys := make([]K, 0, len(merged))
				for k := range merged {
					keys = append(keys, k)
				}
				if spec.Less != nil {
					sort.Slice(keys, func(i, j int) bool { return spec.Less(keys[i], keys[j]) })
				}
				shuffleNanos.Add(int64(time.Since(shStart)))
				out := make([]Pair[K, R], 0, len(keys))
				for _, k := range keys {
					var rv R
					var err error
					for attempt := 0; ; attempt++ {
						err = guard(func() error {
							var e error
							rv, e = spec.Reduce(k, merged[k])
							return e
						})
						if err == nil {
							break
						}
						if attempt >= cfg.retries() {
							break
						}
						retries.Add(1)
					}
					if err != nil {
						fail(&taskError{phase: "reduce", spec: spec.Name, err: err})
						return
					}
					out = append(out, Pair[K, R]{Key: k, Value: rv})
				}
				partOut[p] = out
			}
		}()
	}
feedReduce:
	for p := 0; p < numReducers; p++ {
		select {
		case redCh <- p:
		case <-runCtx.Done():
			break feedReduce
		}
	}
	close(redCh)
	rwg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	res.Stats.ReduceTasks = numReducers
	res.Stats.TaskRetries = int(retries.Load())
	for _, u := range uniq {
		res.Stats.UniqueKeys += u
	}
	res.Stats.FragmentKeys = res.Stats.UniqueKeys
	res.Stats.ShuffleTime = time.Duration(shuffleNanos.Load())
	res.Stats.ReduceTime = time.Since(start)

	// Merge phase: concatenate, or k-way merge the sorted partitions into
	// a globally sorted result (Phoenix's final merge stage).
	start = time.Now()
	if spec.Less == nil {
		total := 0
		for _, po := range partOut {
			total += len(po)
		}
		res.Pairs = make([]Pair[K, R], 0, total)
		for _, po := range partOut {
			res.Pairs = append(res.Pairs, po...)
		}
	} else {
		res.Pairs = MergeSorted(partOut, spec.Less)
	}
	res.Stats.MergeTime = time.Since(start)
	return res, nil
}

// mapWorker is one map worker's shuffle-side state: per-partition keyed
// buffers plus its raw emission count.
type mapWorker[K comparable, V any] struct {
	parts   []map[K][]V
	emitted int64
}

// mapPhase bundles the per-run constants the map workers share.
type mapPhase[K comparable, V any, R any] struct {
	ctx         context.Context
	spec        Spec[K, V, R]
	chunks      [][]byte
	numReducers int
	maxRetries  int
	retries     *atomic.Int64
	fail        func(error)
	// stagingPool recycles the raw-pair staging buffers of the staged
	// emit path across tasks and workers, so steady state allocates no
	// staging memory at all.
	stagingPool sync.Pool
}

// runStaged is the emit path when the spec has no combiner: emissions are
// staged per attempt in a pooled buffer and folded into the worker's
// partition buffers only on success, so a retried task cannot leave
// duplicates behind.
func (mp *mapPhase[K, V, R]) runStaged(st *mapWorker[K, V], taskCh <-chan int) {
	sp := mp.stagingPool.Get().(*[]Pair[K, V])
	staging := (*sp)[:0]
	defer func() {
		*sp = staging[:0]
		mp.stagingPool.Put(sp)
	}()
	emit := func(k K, v V) {
		staging = append(staging, Pair[K, V]{Key: k, Value: v})
	}
	for idx := range taskCh {
		if ctxErr(mp.ctx) != nil {
			return
		}
		chunk := mp.chunks[idx]
		var err error
		for attempt := 0; ; attempt++ {
			staging = staging[:0]
			err = guard(func() error { return mp.spec.Map(chunk, emit) })
			if err == nil {
				break
			}
			if attempt >= mp.maxRetries {
				break
			}
			mp.retries.Add(1)
		}
		if err != nil {
			mp.fail(&taskError{phase: "map", spec: mp.spec.Name, err: err})
			return
		}
		for _, kv := range staging {
			p := partitionOf(kv.Key, mp.numReducers, mp.spec.PartitionFn)
			st.parts[p][kv.Key] = append(st.parts[p][kv.Key], kv.Value)
		}
		st.emitted += int64(len(staging))
	}
}

// runStreaming is the emit path when the spec has a combiner: emissions
// fold into task-local partition maps during the map call itself — no raw
// pair is ever staged — and the combiner compacts each key's buffer as it
// crosses streamFoldLen. The task-local maps are discarded on a failed
// attempt (preserving retry idempotence) and spliced into the worker's
// buffers on success.
func (mp *mapPhase[K, V, R]) runStreaming(st *mapWorker[K, V], taskCh <-chan int) {
	task := make([]map[K][]V, mp.numReducers)
	for i := range task {
		task[i] = make(map[K][]V)
	}
	var taskEmitted int64
	emit := func(k K, v V) {
		p := partitionOf(k, mp.numReducers, mp.spec.PartitionFn)
		vs := append(task[p][k], v)
		if len(vs) >= streamFoldLen {
			vs = mp.spec.Combine(k, vs)
		}
		task[p][k] = vs
		taskEmitted++
	}
	for idx := range taskCh {
		if ctxErr(mp.ctx) != nil {
			return
		}
		chunk := mp.chunks[idx]
		var err error
		for attempt := 0; ; attempt++ {
			err = guard(func() error { return mp.spec.Map(chunk, emit) })
			if err == nil {
				break
			}
			// Discard the failed attempt's partial emissions so the retry
			// starts from a clean slate.
			for _, m := range task {
				clear(m)
			}
			taskEmitted = 0
			if attempt >= mp.maxRetries {
				break
			}
			mp.retries.Add(1)
		}
		if err != nil {
			mp.fail(&taskError{phase: "map", spec: mp.spec.Name, err: err})
			return
		}
		for p, m := range task {
			dst := st.parts[p]
			for k, vs := range m {
				wvs := append(dst[k], vs...)
				if len(wvs) >= streamFoldLen {
					wvs = mp.spec.Combine(k, wvs)
				}
				dst[k] = wvs
			}
			clear(m)
		}
		st.emitted += taskEmitted
		taskEmitted = 0
	}
}
