package mapreduce

import (
	"context"
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// streamFoldLen is how many values may pile up behind one key of a
// streaming-combine buffer before the combiner folds them. Folding every
// emission would call Combine once per pair; folding only at task flush
// would stage every raw pair again. 64 amortizes the call without letting
// the buffer grow meaningfully.
const streamFoldLen = 64

// Run executes the computation described by spec over input on the node
// described by cfg. It returns the final pairs (globally sorted when
// spec.Less is set) together with run statistics.
//
// Run fails with memsim.ErrOutOfMemory (wrapped) when cfg.Memory cannot
// admit the estimated footprint, with ctx.Err() when cancelled, and with a
// task error when a map or reduce task keeps failing past its retry budget.
func Run[K comparable, V any, R any](ctx context.Context, cfg Config, spec Spec[K, V, R], input []byte) (*Result[K, R], error) {
	if (spec.Map == nil && spec.MapBytes == nil) || spec.Reduce == nil {
		return nil, ErrSpecIncomplete
	}
	useBytes := spec.MapBytes != nil
	if useBytes {
		var zk K
		if _, ok := any(zk).(string); !ok {
			return nil, fmt.Errorf("mapreduce: %q: %w", spec.Name, ErrMapBytesKey)
		}
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}

	// Memory admission (the native-Phoenix wall): both the input and the
	// emitted intermediate pairs live in memory for the whole run.
	factor := spec.FootprintFactor
	if factor <= 0 {
		factor = 2
	}
	if cfg.Memory != nil {
		h, err := cfg.Memory.ReserveHandle(int64(float64(len(input)) * factor))
		if err != nil {
			return nil, fmt.Errorf("mapreduce: %q: %w", spec.Name, err)
		}
		defer h.Release()
	}

	res := &Result[K, R]{}
	res.Stats.InputBytes = int64(len(input))

	// Split phase.
	start := time.Now()
	split := spec.Split
	if split == nil {
		split = FixedSplitter
	}
	chunks := split(input, cfg.chunkSize(len(input)))
	res.Stats.SplitTime = time.Since(start)
	res.Stats.MapTasks = len(chunks)

	workers := cfg.workers()
	numReducers := cfg.reducers()

	// Map phase: dynamic task scheduling over a shared channel. Each
	// worker accumulates one task-local keyed map (no locking on the hot
	// path, as in Phoenix) and splices it into its per-partition buffers
	// on task success — partition hashing happens once per distinct key
	// per task, not once per emission.
	start = time.Now()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		retries  atomic.Int64
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	mp := &mapPhase[K, V, R]{
		ctx:         runCtx,
		spec:        spec,
		chunks:      chunks,
		numReducers: numReducers,
		maxRetries:  cfg.retries(),
		retries:     &retries,
		fail:        fail,
	}

	states := make([]*mapWorker[K, V], workers)
	taskCh := make(chan int)
	for w := 0; w < workers; w++ {
		st := &mapWorker[K, V]{parts: make([]map[K][]V, numReducers), free: getFreeList[V]()}
		for r := range st.parts {
			st.parts[r] = getPartMap[K, V]()
		}
		states[w] = st
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				// Retire the worker's buffer free list into the
				// process-wide pool for the next job.
				fl := st.free
				st.free = nil
				putFreeList(fl)
			}()
			switch {
			case useBytes:
				mp.runBytes(st, taskCh)
			case spec.Combine != nil:
				mp.runStreaming(st, taskCh)
			default:
				mp.runStaged(st, taskCh)
			}
		}()
	}
feed:
	for i := range chunks {
		select {
		case taskCh <- i:
		case <-runCtx.Done():
			break feed
		}
	}
	close(taskCh)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}

	// Worker-local combine (Phoenix combiner) before the shuffle. The
	// streaming path already folds during the map call; this pass only
	// compacts the sub-threshold remainders it left behind.
	if spec.Combine != nil {
		var cwg sync.WaitGroup
		for _, st := range states {
			cwg.Add(1)
			go func(st *mapWorker[K, V]) {
				defer cwg.Done()
				for _, part := range st.parts {
					for k, vs := range part {
						if len(vs) > 1 {
							part[k] = spec.Combine(k, vs)
						}
					}
				}
			}(st)
		}
		cwg.Wait()
	}
	for _, st := range states {
		res.Stats.PairsEmitted += st.emitted
	}
	res.Stats.MapTime = time.Since(start)

	// Reduce phase: one task per partition; each task first merges the
	// worker-local buffers for its partition and key-sorts (the shuffle,
	// tracked separately in Stats.ShuffleTime), then reduces every key.
	start = time.Now()
	partOut := make([][]Pair[K, R], numReducers)
	uniq := make([]int, numReducers)
	var shuffleNanos atomic.Int64
	redCh := make(chan int)
	var rwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for p := range redCh {
				if ctxErr(runCtx) != nil {
					return
				}
				shStart := time.Now()
				// The first worker's buffer becomes the shuffle map
				// directly (zero copying for single-worker runs); the
				// remaining workers fold in, moving each value run on
				// its key's first appearance.
				merged := states[0].parts[p]
				states[0].parts[p] = nil
				if merged == nil {
					merged = make(map[K][]V)
				}
				for _, st := range states[1:] {
					donor := st.parts[p]
					for k, vs := range donor {
						if cur, ok := merged[k]; ok {
							merged[k] = append(cur, vs...)
						} else {
							merged[k] = vs
						}
					}
					st.parts[p] = nil
					putPartMap(donor) // contents moved; recycle the buckets
				}
				uniq[p] = len(merged)
				keys := make([]K, 0, len(merged))
				for k := range merged {
					keys = append(keys, k)
				}
				if spec.Less != nil {
					sort.Slice(keys, func(i, j int) bool { return spec.Less(keys[i], keys[j]) })
				}
				shuffleNanos.Add(int64(time.Since(shStart)))
				out := make([]Pair[K, R], 0, len(keys))
				for _, k := range keys {
					var rv R
					var err error
					for attempt := 0; ; attempt++ {
						err = guard(func() error {
							var e error
							rv, e = spec.Reduce(k, merged[k])
							return e
						})
						if err == nil {
							break
						}
						if attempt >= cfg.retries() {
							break
						}
						retries.Add(1)
					}
					if err != nil {
						fail(&taskError{phase: "reduce", spec: spec.Name, err: err})
						return
					}
					out = append(out, Pair[K, R]{Key: k, Value: rv})
				}
				partOut[p] = out
				putPartMap(merged) // reduced; keys live on in out, buckets recycle
			}
		}()
	}
feedReduce:
	for p := 0; p < numReducers; p++ {
		select {
		case redCh <- p:
		case <-runCtx.Done():
			break feedReduce
		}
	}
	close(redCh)
	rwg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	res.Stats.ReduceTasks = numReducers
	res.Stats.TaskRetries = int(retries.Load())
	for _, u := range uniq {
		res.Stats.UniqueKeys += u
	}
	res.Stats.FragmentKeys = res.Stats.UniqueKeys
	res.Stats.ShuffleTime = time.Duration(shuffleNanos.Load())
	res.Stats.ReduceTime = time.Since(start)

	// Merge phase: concatenate, or k-way merge the sorted partitions into
	// a globally sorted result (Phoenix's final merge stage), with the
	// strategy picked from the fan-in (see MergeStrategyFor).
	start = time.Now()
	if spec.Less == nil {
		total := 0
		for _, po := range partOut {
			total += len(po)
		}
		res.Pairs = make([]Pair[K, R], 0, total)
		for _, po := range partOut {
			res.Pairs = append(res.Pairs, po...)
		}
	} else {
		var strat MergeStrategy
		res.Pairs, strat = MergeSortedStats(partOut, spec.Less)
		res.Stats.MergeStrategy = strat.String()
	}
	res.Stats.MergeTime = time.Since(start)
	return res, nil
}

// mapWorker is one map worker's shuffle-side state: per-partition keyed
// buffers, a value-buffer free list, and its raw emission count.
type mapWorker[K comparable, V any] struct {
	parts   []map[K][]V
	free    [][]V
	emitted int64
}

// mapPhase bundles the per-run constants the map workers share.
type mapPhase[K comparable, V any, R any] struct {
	ctx         context.Context
	spec        Spec[K, V, R]
	chunks      [][]byte
	numReducers int
	maxRetries  int
	retries     *atomic.Int64
	fail        func(error)
}

// partition maps a key to its reduce partition. Single-reducer runs (the
// common single-worker shape) skip hashing entirely.
func (mp *mapPhase[K, V, R]) partition(k K) int {
	if mp.numReducers == 1 {
		return 0
	}
	return partitionOf(k, mp.numReducers, mp.spec.PartitionFn)
}

// splice folds a finished task's records into the worker's per-partition
// buffers: a key new to its partition adopts the task's value run
// outright (move, no copy); a known key appends and recycles the run.
// Partition hashing happens here — once per distinct key per task.
func (mp *mapPhase[K, V, R]) splice(st *mapWorker[K, V], task map[K]*kvrec[K, V], arena *recArena[K, V]) {
	arena.each(func(e *kvrec[K, V]) {
		p := mp.partition(e.key)
		dst := st.parts[p]
		if cur, ok := dst[e.key]; ok {
			cur = append(cur, e.vs...)
			if mp.spec.Combine != nil && len(cur) >= streamFoldLen {
				cur = mp.spec.Combine(e.key, cur)
			}
			dst[e.key] = cur
			st.putBuf(e.vs)
		} else {
			dst[e.key] = e.vs
		}
	})
	clear(task)
	arena.reset()
}

// discard drops a failed attempt's task-local records, recycling their
// value runs, so the retry starts from a clean slate.
func (mp *mapPhase[K, V, R]) discard(st *mapWorker[K, V], task map[K]*kvrec[K, V], arena *recArena[K, V]) {
	arena.each(func(e *kvrec[K, V]) { st.putBuf(e.vs) })
	clear(task)
	arena.reset()
}

// runStreaming is the emit path when the spec has a combiner: emissions
// fold into a task-local record map during the map call itself — no raw
// pair is ever staged — and the combiner compacts each key's run as it
// crosses streamFoldLen. The task-local records are discarded on a failed
// attempt (preserving retry idempotence) and spliced into the worker's
// buffers on success.
func (mp *mapPhase[K, V, R]) runStreaming(st *mapWorker[K, V], taskCh <-chan int) {
	task := getTaskMap[K, V]()
	defer putTaskMap(task)
	arena := getArena[K, V]()
	defer putArena(arena)
	var taskEmitted int64
	emit := func(k K, v V) {
		e, ok := task[k]
		if !ok {
			e = arena.alloc()
			e.key = k
			e.vs = st.getBuf()
			task[k] = e
		}
		e.vs = append(e.vs, v)
		if len(e.vs) >= streamFoldLen {
			e.vs = mp.spec.Combine(k, e.vs)
		}
		taskEmitted++
	}
	for idx := range taskCh {
		if ctxErr(mp.ctx) != nil {
			return
		}
		chunk := mp.chunks[idx]
		var err error
		for attempt := 0; ; attempt++ {
			err = guard(func() error { return mp.spec.Map(chunk, emit) })
			if err == nil {
				break
			}
			mp.discard(st, task, arena)
			taskEmitted = 0
			if attempt >= mp.maxRetries {
				break
			}
			mp.retries.Add(1)
		}
		if err != nil {
			mp.fail(&taskError{phase: "map", spec: mp.spec.Name, err: err})
			return
		}
		mp.splice(st, task, arena)
		st.emitted += taskEmitted
		taskEmitted = 0
	}
}

// runStaged is the emit path when the spec has no combiner: emissions are
// staged per attempt in a pooled buffer and folded into the worker's
// partition buffers only on success, so a retried task cannot leave
// duplicates behind.
func (mp *mapPhase[K, V, R]) runStaged(st *mapWorker[K, V], taskCh <-chan int) {
	staging := getStaging[K, V]()
	defer func() { putStaging(staging) }()
	emit := func(k K, v V) {
		staging = append(staging, Pair[K, V]{Key: k, Value: v})
	}
	for idx := range taskCh {
		if ctxErr(mp.ctx) != nil {
			return
		}
		chunk := mp.chunks[idx]
		var err error
		for attempt := 0; ; attempt++ {
			staging = staging[:0]
			err = guard(func() error { return mp.spec.Map(chunk, emit) })
			if err == nil {
				break
			}
			if attempt >= mp.maxRetries {
				break
			}
			mp.retries.Add(1)
		}
		if err != nil {
			mp.fail(&taskError{phase: "map", spec: mp.spec.Name, err: err})
			return
		}
		for _, kv := range staging {
			p := mp.partition(kv.Key)
			dst := st.parts[p]
			vs, ok := dst[kv.Key]
			if !ok {
				vs = st.getBuf()
			}
			dst[kv.Key] = append(vs, kv.Value)
		}
		st.emitted += int64(len(staging))
	}
}

// runBytes is the zero-copy emit path for string-keyed specs using
// MapBytes: the callback emits keys as byte subslices of the chunk, and
// the runtime interns each distinct key into a string at most once per
// task — a repeated key costs one map probe and zero allocations. The
// generic callbacks are specialized to string once up front (K is
// guaranteed to be string here, so the assertions cannot fail).
func (mp *mapPhase[K, V, R]) runBytes(st *mapWorker[K, V], taskCh <-chan int) {
	var combine func(string, []V) []V
	if mp.spec.Combine != nil {
		combine = any(mp.spec.Combine).(func(string, []V) []V)
	}
	var partFn func(string, int) int
	if mp.spec.PartitionFn != nil {
		partFn = any(mp.spec.PartitionFn).(func(string, int) int)
	}
	parts := make([]map[string][]V, len(st.parts))
	for i, m := range st.parts {
		parts[i] = any(m).(map[string][]V)
	}
	partition := func(k string) int {
		if mp.numReducers == 1 {
			return 0
		}
		if partFn != nil {
			p := partFn(k, mp.numReducers) % mp.numReducers
			if p < 0 {
				p += mp.numReducers
			}
			return p
		}
		return int(maphash.String(hashSeed, k) % uint64(mp.numReducers))
	}

	tbl := getWordTable[V]()
	defer putWordTable(tbl)
	arena := getArena[string, V]()
	defer putArena(arena)
	var taskEmitted int64
	emit := func(kb []byte, v V) {
		h := internHash(kb)
		e := tbl.lookup(kb, h)
		if e == nil {
			e = arena.alloc()
			e.key = string(kb) // the one allocation: intern on first sight
			e.vs = st.getBuf()
			tbl.insert(h, e)
		}
		e.vs = append(e.vs, v)
		if combine != nil && len(e.vs) >= streamFoldLen {
			e.vs = combine(e.key, e.vs)
		}
		taskEmitted++
	}
	discard := func() {
		arena.each(func(e *kvrec[string, V]) { st.putBuf(e.vs) })
		tbl.reset()
		arena.reset()
	}
	for idx := range taskCh {
		if ctxErr(mp.ctx) != nil {
			return
		}
		chunk := mp.chunks[idx]
		var err error
		for attempt := 0; ; attempt++ {
			err = guard(func() error { return mp.spec.MapBytes(chunk, emit) })
			if err == nil {
				break
			}
			discard()
			taskEmitted = 0
			if attempt >= mp.maxRetries {
				break
			}
			mp.retries.Add(1)
		}
		if err != nil {
			mp.fail(&taskError{phase: "map", spec: mp.spec.Name, err: err})
			return
		}
		// Splice by scanning the arena (emission order), not the table.
		arena.each(func(e *kvrec[string, V]) {
			dst := parts[partition(e.key)]
			if cur, ok := dst[e.key]; ok {
				cur = append(cur, e.vs...)
				if combine != nil && len(cur) >= streamFoldLen {
					cur = combine(e.key, cur)
				}
				dst[e.key] = cur
				st.putBuf(e.vs)
			} else {
				dst[e.key] = e.vs
			}
		})
		tbl.reset()
		arena.reset()
		st.emitted += taskEmitted
		taskEmitted = 0
	}
}
