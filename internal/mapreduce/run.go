package mapreduce

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Run executes the computation described by spec over input on the node
// described by cfg. It returns the final pairs (globally sorted when
// spec.Less is set) together with run statistics.
//
// Run fails with memsim.ErrOutOfMemory (wrapped) when cfg.Memory cannot
// admit the estimated footprint, with ctx.Err() when cancelled, and with a
// task error when a map or reduce task keeps failing past its retry budget.
func Run[K comparable, V any, R any](ctx context.Context, cfg Config, spec Spec[K, V, R], input []byte) (*Result[K, R], error) {
	if spec.Map == nil || spec.Reduce == nil {
		return nil, ErrSpecIncomplete
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}

	// Memory admission (the native-Phoenix wall): both the input and the
	// emitted intermediate pairs live in memory for the whole run.
	factor := spec.FootprintFactor
	if factor <= 0 {
		factor = 2
	}
	if cfg.Memory != nil {
		h, err := cfg.Memory.ReserveHandle(int64(float64(len(input)) * factor))
		if err != nil {
			return nil, fmt.Errorf("mapreduce: %q: %w", spec.Name, err)
		}
		defer h.Release()
	}

	res := &Result[K, R]{}
	res.Stats.InputBytes = int64(len(input))

	// Split phase.
	start := time.Now()
	split := spec.Split
	if split == nil {
		split = FixedSplitter
	}
	chunks := split(input, cfg.chunkSize(len(input)))
	res.Stats.SplitTime = time.Since(start)
	res.Stats.MapTasks = len(chunks)

	workers := cfg.workers()
	numReducers := cfg.reducers()

	// Map phase: dynamic task scheduling over a shared channel; each
	// worker emits into its own per-partition buffers (no locking on the
	// hot path, as in Phoenix).
	start = time.Now()
	type workerState struct {
		parts   []map[K][]V
		emitted int64
	}
	states := make([]*workerState, workers)
	taskCh := make(chan int)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		retryMu  sync.Mutex
		retries  int
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	for w := 0; w < workers; w++ {
		st := &workerState{parts: make([]map[K][]V, numReducers)}
		for r := range st.parts {
			st.parts[r] = make(map[K][]V)
		}
		states[w] = st
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Emissions are staged per attempt and flushed to the
			// worker's partition buffers only on success, so a retried
			// task cannot leave duplicates behind.
			var staging []Pair[K, V]
			emit := func(k K, v V) {
				staging = append(staging, Pair[K, V]{Key: k, Value: v})
			}
			for idx := range taskCh {
				if ctxErr(runCtx) != nil {
					return
				}
				chunk := chunks[idx]
				var err error
				for attempt := 0; ; attempt++ {
					staging = staging[:0]
					err = guard(func() error { return spec.Map(chunk, emit) })
					if err == nil {
						break
					}
					if attempt >= cfg.retries() {
						break
					}
					retryMu.Lock()
					retries++
					retryMu.Unlock()
				}
				if err != nil {
					fail(&taskError{phase: "map", spec: spec.Name, err: err})
					return
				}
				for _, kv := range staging {
					p := partitionOf(kv.Key, numReducers, spec.PartitionFn)
					st.parts[p][kv.Key] = append(st.parts[p][kv.Key], kv.Value)
				}
				st.emitted += int64(len(staging))
			}
		}()
	}
feed:
	for i := range chunks {
		select {
		case taskCh <- i:
		case <-runCtx.Done():
			break feed
		}
	}
	close(taskCh)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}

	// Worker-local combine (Phoenix combiner) before the shuffle.
	if spec.Combine != nil {
		var cwg sync.WaitGroup
		for _, st := range states {
			cwg.Add(1)
			go func(st *workerState) {
				defer cwg.Done()
				for _, part := range st.parts {
					for k, vs := range part {
						part[k] = spec.Combine(k, vs)
					}
				}
			}(st)
		}
		cwg.Wait()
	}
	for _, st := range states {
		res.Stats.PairsEmitted += st.emitted
	}
	res.Stats.MapTime = time.Since(start)

	// Reduce phase: one task per partition; each task first merges the
	// worker-local buffers for its partition (the shuffle), then reduces
	// every key, in key order when spec.Less is set.
	start = time.Now()
	partOut := make([][]Pair[K, R], numReducers)
	uniq := make([]int, numReducers)
	redCh := make(chan int)
	var rwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for p := range redCh {
				if ctxErr(runCtx) != nil {
					return
				}
				merged := make(map[K][]V)
				for _, st := range states {
					for k, vs := range st.parts[p] {
						merged[k] = append(merged[k], vs...)
					}
					st.parts[p] = nil // release as we go
				}
				uniq[p] = len(merged)
				keys := make([]K, 0, len(merged))
				for k := range merged {
					keys = append(keys, k)
				}
				if spec.Less != nil {
					sort.Slice(keys, func(i, j int) bool { return spec.Less(keys[i], keys[j]) })
				}
				out := make([]Pair[K, R], 0, len(keys))
				for _, k := range keys {
					var rv R
					var err error
					for attempt := 0; ; attempt++ {
						err = guard(func() error {
							var e error
							rv, e = spec.Reduce(k, merged[k])
							return e
						})
						if err == nil {
							break
						}
						if attempt >= cfg.retries() {
							break
						}
						retryMu.Lock()
						retries++
						retryMu.Unlock()
					}
					if err != nil {
						fail(&taskError{phase: "reduce", spec: spec.Name, err: err})
						return
					}
					out = append(out, Pair[K, R]{Key: k, Value: rv})
				}
				partOut[p] = out
			}
		}()
	}
feedReduce:
	for p := 0; p < numReducers; p++ {
		select {
		case redCh <- p:
		case <-runCtx.Done():
			break feedReduce
		}
	}
	close(redCh)
	rwg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	res.Stats.ReduceTasks = numReducers
	retryMu.Lock()
	res.Stats.TaskRetries = retries
	retryMu.Unlock()
	for _, u := range uniq {
		res.Stats.UniqueKeys += u
	}
	res.Stats.ReduceTime = time.Since(start)

	// Merge phase: concatenate, or k-way merge the sorted partitions into
	// a globally sorted result (Phoenix's final merge stage).
	start = time.Now()
	if spec.Less == nil {
		total := 0
		for _, po := range partOut {
			total += len(po)
		}
		res.Pairs = make([]Pair[K, R], 0, total)
		for _, po := range partOut {
			res.Pairs = append(res.Pairs, po...)
		}
	} else {
		res.Pairs = mergeSorted(partOut, spec.Less)
	}
	res.Stats.MergeTime = time.Since(start)
	return res, nil
}

// mergeSorted k-way merges sorted runs into one sorted slice using a simple
// tournament over run heads (k is small — the number of reduce partitions).
func mergeSorted[K comparable, R any](runs [][]Pair[K, R], less func(a, b K) bool) []Pair[K, R] {
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]Pair[K, R], 0, total)
	idx := make([]int, len(runs))
	for len(out) < total {
		best := -1
		for i, r := range runs {
			if idx[i] >= len(r) {
				continue
			}
			if best < 0 || less(r[idx[i]].Key, runs[best][idx[best]].Key) {
				best = i
			}
		}
		out = append(out, runs[best][idx[best]])
		idx[best]++
	}
	return out
}
