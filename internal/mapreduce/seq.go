package mapreduce

import (
	"context"
	"fmt"
	"sort"
	"time"
)

// RunSequential executes the spec with no parallelism: one pass of Map over
// the whole input, then Reduce per key. It is the "sequential approach"
// baseline of the paper's §V-B and the execution mode of the traditional
// single-core smart disk in §V-C.
//
// Memory admission applies exactly as in Run — the sequential Phoenix
// baseline hits the same memory wall.
func RunSequential[K comparable, V any, R any](ctx context.Context, cfg Config, spec Spec[K, V, R], input []byte) (*Result[K, R], error) {
	if (spec.Map == nil && spec.MapBytes == nil) || spec.Reduce == nil {
		return nil, ErrSpecIncomplete
	}
	if spec.Map == nil {
		// Adapt the zero-copy callback: the sequential baseline keeps its
		// simple one-map structure and just converts keys eagerly. (Specs
		// meant to be fast sequentially should also set Map.)
		var zk K
		if _, ok := any(zk).(string); !ok {
			return nil, fmt.Errorf("mapreduce: %q: %w", spec.Name, ErrMapBytesKey)
		}
		mb := spec.MapBytes
		spec.Map = func(chunk []byte, emit func(K, V)) error {
			return mb(chunk, func(kb []byte, v V) {
				emit(any(string(kb)).(K), v)
			})
		}
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	factor := spec.FootprintFactor
	if factor <= 0 {
		factor = 2
	}
	if cfg.Memory != nil {
		h, err := cfg.Memory.ReserveHandle(int64(float64(len(input)) * factor))
		if err != nil {
			return nil, fmt.Errorf("mapreduce: %q: %w", spec.Name, err)
		}
		defer h.Release()
	}

	res := &Result[K, R]{}
	res.Stats.InputBytes = int64(len(input))

	start := time.Now()
	inter := make(map[K][]V)
	var emitted int64
	emit := func(k K, v V) {
		inter[k] = append(inter[k], v)
		emitted++
	}
	// Still chunk the input (a sequential loop over map tasks) so Map
	// callbacks see the same chunk shapes as the parallel engine.
	split := spec.Split
	if split == nil {
		split = FixedSplitter
	}
	chunks := split(input, cfg.chunkSize(len(input)))
	res.Stats.MapTasks = len(chunks)
	for _, chunk := range chunks {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		if err := guard(func() error { return spec.Map(chunk, emit) }); err != nil {
			return nil, &taskError{phase: "map", spec: spec.Name, err: err}
		}
	}
	if spec.Combine != nil {
		for k, vs := range inter {
			inter[k] = spec.Combine(k, vs)
		}
	}
	res.Stats.PairsEmitted = emitted
	res.Stats.MapTime = time.Since(start)

	start = time.Now()
	keys := make([]K, 0, len(inter))
	for k := range inter {
		keys = append(keys, k)
	}
	if spec.Less != nil {
		sort.Slice(keys, func(i, j int) bool { return spec.Less(keys[i], keys[j]) })
	}
	res.Stats.ShuffleTime = time.Since(start)
	res.Pairs = make([]Pair[K, R], 0, len(keys))
	for _, k := range keys {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		var rv R
		if err := guard(func() error {
			var e error
			rv, e = spec.Reduce(k, inter[k])
			return e
		}); err != nil {
			return nil, &taskError{phase: "reduce", spec: spec.Name, err: err}
		}
		res.Pairs = append(res.Pairs, Pair[K, R]{Key: k, Value: rv})
	}
	res.Stats.UniqueKeys = len(keys)
	res.Stats.FragmentKeys = len(keys)
	res.Stats.ReduceTasks = 1
	res.Stats.ReduceTime = time.Since(start)
	return res, nil
}
