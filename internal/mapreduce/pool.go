package mapreduce

import (
	"reflect"
	"sync"
)

// Allocation discipline for the emit hot path. Every raw emission used to
// cost at least one heap allocation (a string key copy, a fresh value
// slice, map growth); at word-count rates that is hundreds of thousands of
// allocations per fragment and the GC, not the CPU, sets the throughput
// ceiling. The machinery here collapses that to ~one allocation per
// *distinct* key per task:
//
//   - value run buffers ([]V) come from a per-worker free list, recycled
//     at splice time and returned to a process-wide sync.Pool when the
//     worker retires, so steady state allocates no buffer memory across
//     jobs;
//   - emit KV records (key + value-run header) are dealt from a per-worker
//     arena that is reset — not freed — after every task;
//   - the staged (no-combine) raw-pair staging buffers live in the same
//     process-wide pools.

// freeBufCap is the initial capacity of a fresh value run buffer. Most
// keys see few values per task (the streaming combiner folds at
// streamFoldLen), so buffers start small and grow only for hot keys.
const freeBufCap = 8

// maxRecycledCap bounds the capacity of a buffer the free list will keep.
// A no-combine task can grow one key's run to thousands of values;
// recycling such a buffer would pin its array for the life of the pool.
const maxRecycledCap = 512

// freeListMax bounds a worker's free list length.
const freeListMax = 4096

// testRecyclePoison, when non-nil, is invoked with every value buffer
// (re-sliced to full capacity) as it enters a free list. Tests install a
// hook that overwrites the buffer with poison values: if the engine ever
// recycles a buffer that is still referenced by a live accumulator, the
// poison surfaces in results and the pool-safety tests fail. Production
// builds never set it, so the hot path pays one nil check.
var testRecyclePoison func(buf any)

// typePools hands out one sync.Pool per concrete element type, letting
// generic code share pools across jobs (a package cannot declare a
// package-level variable of a generic type).
var typePools sync.Map // reflect.Type -> *sync.Pool

func poolFor(t reflect.Type) *sync.Pool {
	if p, ok := typePools.Load(t); ok {
		return p.(*sync.Pool)
	}
	p, _ := typePools.LoadOrStore(t, &sync.Pool{})
	return p.(*sync.Pool)
}

// getFreeList returns a recycled bundle of value buffers for a worker, or
// an empty one.
func getFreeList[V any]() [][]V {
	if v := poolFor(reflect.TypeFor[[][]V]()).Get(); v != nil {
		return *(v.(*[][]V))
	}
	return nil
}

// putFreeList returns a worker's free list to the process-wide pool. Every
// buffer in it is length zero and referenced by nothing else.
func putFreeList[V any](fl [][]V) {
	if len(fl) == 0 {
		return
	}
	poolFor(reflect.TypeFor[[][]V]()).Put(&fl)
}

// getStaging returns a recycled raw-pair staging buffer for the staged
// emit path.
func getStaging[K comparable, V any]() []Pair[K, V] {
	if v := poolFor(reflect.TypeFor[[]Pair[K, V]]()).Get(); v != nil {
		return (*(v.(*[]Pair[K, V])))[:0]
	}
	return make([]Pair[K, V], 0, 512)
}

func putStaging[K comparable, V any](s []Pair[K, V]) {
	s = s[:0]
	poolFor(reflect.TypeFor[[]Pair[K, V]]()).Put(&s)
}

// getPartMap hands a worker a recycled (empty) per-partition buffer map.
func getPartMap[K comparable, V any]() map[K][]V {
	if v := poolFor(reflect.TypeFor[map[K][]V]()).Get(); v != nil {
		return v.(map[K][]V)
	}
	return make(map[K][]V)
}

// putPartMap recycles a partition buffer map whose contents have been moved
// out (or are no longer referenced). The buckets keep their capacity, so
// the next job's inserts do not re-grow the table.
func putPartMap[K comparable, V any](m map[K][]V) {
	clear(m)
	poolFor(reflect.TypeFor[map[K][]V]()).Put(m)
}

// getTaskMap hands a streaming-combine worker a recycled task-local record
// map.
func getTaskMap[K comparable, V any]() map[K]*kvrec[K, V] {
	if v := poolFor(reflect.TypeFor[map[K]*kvrec[K, V]]()).Get(); v != nil {
		return v.(map[K]*kvrec[K, V])
	}
	return make(map[K]*kvrec[K, V])
}

func putTaskMap[K comparable, V any](m map[K]*kvrec[K, V]) {
	clear(m)
	poolFor(reflect.TypeFor[map[K]*kvrec[K, V]]()).Put(m)
}

// kvrec is one emit record: an interned key and its value run. Records
// live in a recArena and are referenced only by task-local state, so a
// whole task's records are reclaimed with one arena reset.
type kvrec[K comparable, V any] struct {
	key K
	vs  []V
}

// recArenaBlock is the record count per arena block.
const recArenaBlock = 256

// recArena deals kvrec records from append-only blocks. alloc is O(1) and
// allocation-free except when a fresh block is first needed; reset recycles
// every record at once (zeroing them so stale keys and buffer headers are
// not pinned) while keeping every block for the next task. Arenas are
// pooled across jobs via getArena/putArena.
type recArena[K comparable, V any] struct {
	blocks [][]kvrec[K, V]
	cur    int // block being dealt from; (cur, used) is the next free slot
	used   int // records handed out from blocks[cur]
}

func (a *recArena[K, V]) alloc() *kvrec[K, V] {
	if a.cur == len(a.blocks) {
		a.blocks = append(a.blocks, make([]kvrec[K, V], recArenaBlock))
	}
	r := &a.blocks[a.cur][a.used]
	a.used++
	if a.used == recArenaBlock {
		a.cur++
		a.used = 0
	}
	return r
}

// each visits every live record in allocation (first-emission) order. It
// lets the zero-copy path splice a task without iterating a map.
func (a *recArena[K, V]) each(f func(*kvrec[K, V])) {
	for i := 0; i < a.cur; i++ {
		blk := a.blocks[i]
		for j := range blk {
			f(&blk[j])
		}
	}
	if a.cur < len(a.blocks) {
		blk := a.blocks[a.cur]
		for j := 0; j < a.used; j++ {
			f(&blk[j])
		}
	}
}

// reset reclaims every record. Used records are zeroed so the arena does
// not pin the keys and value-slice headers of finished tasks.
func (a *recArena[K, V]) reset() {
	for i := 0; i < a.cur; i++ {
		clear(a.blocks[i])
	}
	if a.cur < len(a.blocks) {
		clear(a.blocks[a.cur][:a.used])
	}
	a.cur, a.used = 0, 0
}

// getArena hands a worker a recycled (reset) record arena.
func getArena[K comparable, V any]() *recArena[K, V] {
	if v := poolFor(reflect.TypeFor[recArena[K, V]]()).Get(); v != nil {
		return v.(*recArena[K, V])
	}
	return &recArena[K, V]{}
}

func putArena[K comparable, V any](a *recArena[K, V]) {
	a.reset()
	poolFor(reflect.TypeFor[recArena[K, V]]()).Put(a)
}

// getBuf pops a recycled value buffer or makes a small fresh one.
func (st *mapWorker[K, V]) getBuf() []V {
	if n := len(st.free); n > 0 {
		buf := st.free[n-1]
		st.free[n-1] = nil
		st.free = st.free[:n-1]
		return buf
	}
	return make([]V, 0, freeBufCap)
}

// putBuf recycles a value buffer whose contents have been spliced out.
// The caller must guarantee no live accumulator still references it —
// the pool-safety tests poison recycled buffers to enforce exactly that.
func (st *mapWorker[K, V]) putBuf(vs []V) {
	if cap(vs) == 0 || cap(vs) > maxRecycledCap || len(st.free) >= freeListMax {
		return
	}
	vs = vs[:0]
	if testRecyclePoison != nil {
		testRecyclePoison(vs[:cap(vs)])
	}
	st.free = append(st.free, vs)
}
