package mapreduce_test

import (
	"bytes"
	"context"
	"fmt"

	"mcsd/internal/mapreduce"
)

// ExampleRun implements the canonical Phoenix word count: Map emits
// (word, 1), Reduce sums, and Less sorts the final output.
func ExampleRun() {
	spec := mapreduce.Spec[string, int, int]{
		Name:  "wordcount",
		Split: mapreduce.DelimiterSplitter(' '),
		Map: func(chunk []byte, emit func(string, int)) error {
			for _, w := range bytes.Fields(chunk) {
				emit(string(w), 1)
			}
			return nil
		},
		Reduce: func(_ string, counts []int) (int, error) {
			total := 0
			for _, c := range counts {
				total += c
			}
			return total, nil
		},
		Less: func(a, b string) bool { return a < b },
	}

	res, err := mapreduce.Run(context.Background(),
		mapreduce.Config{Workers: 2}, spec, []byte("to be or not to be"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, p := range res.Pairs {
		fmt.Printf("%s=%d\n", p.Key, p.Value)
	}
	// Output:
	// be=2
	// not=1
	// or=1
	// to=2
}
