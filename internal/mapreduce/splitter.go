package mapreduce

// FixedSplitter cuts data into chunks of exactly chunkSize bytes (the last
// chunk may be shorter). Records spanning a boundary are torn; use
// DelimiterSplitter when that matters.
func FixedSplitter(data []byte, chunkSize int) [][]byte {
	if chunkSize <= 0 {
		chunkSize = len(data)
	}
	if len(data) == 0 {
		return nil
	}
	chunks := make([][]byte, 0, len(data)/chunkSize+1)
	for off := 0; off < len(data); off += chunkSize {
		end := off + chunkSize
		if end > len(data) {
			end = len(data)
		}
		chunks = append(chunks, data[off:end])
	}
	return chunks
}

// DelimiterSplitter returns a splitter that extends each chunk forward to
// the next occurrence of any delimiter byte, so no record is torn across
// map tasks. This mirrors the integrity check of the paper's partition
// function (Fig. 7) applied at map-task granularity: scan from the draft
// boundary until a delimiter (space, newline, or a programmer-defined
// symbol) is found.
func DelimiterSplitter(delims ...byte) func(data []byte, chunkSize int) [][]byte {
	isDelim := make([]bool, 256)
	for _, d := range delims {
		isDelim[d] = true
	}
	if len(delims) == 0 {
		isDelim[' '], isDelim['\n'], isDelim['\r'], isDelim['\t'] = true, true, true, true
	}
	return func(data []byte, chunkSize int) [][]byte {
		if chunkSize <= 0 {
			chunkSize = len(data)
		}
		if len(data) == 0 {
			return nil
		}
		var chunks [][]byte
		off := 0
		for off < len(data) {
			end := off + chunkSize
			if end >= len(data) {
				chunks = append(chunks, data[off:])
				break
			}
			// Integrity check: advance to the next delimiter so the
			// record ends correctly.
			for end < len(data) && !isDelim[data[end]] {
				end++
			}
			if end < len(data) {
				end++ // include the delimiter in this chunk
			}
			chunks = append(chunks, data[off:end])
			off = end
		}
		return chunks
	}
}

// LineSplitter cuts data into chunks aligned to newline boundaries — the
// natural splitter for the string-match workload, where each map task
// searches whole lines.
func LineSplitter(data []byte, chunkSize int) [][]byte {
	return DelimiterSplitter('\n')(data, chunkSize)
}
