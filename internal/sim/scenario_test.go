package sim

import (
	"testing"

	"mcsd/internal/cluster"
	"mcsd/internal/workloads"
)

func wcPair(dataBytes int64) PairConfig {
	return PairConfig{
		Cluster:        cluster.TableI(),
		DataCost:       workloads.WordCountCost(),
		DataBytes:      dataBytes,
		MatrixN:        1024,
		PartitionBytes: 600 << 20,
		SMBLoad:        0.1,
	}
}

func smPair(dataBytes int64) PairConfig {
	cfg := wcPair(dataBytes)
	cfg.DataCost = workloads.StringMatchCost()
	return cfg
}

func speedupOf(t *testing.T, cfg PairConfig, scen Scenario) float64 {
	t.Helper()
	base, err := SimulatePair(cfg, scen)
	if err != nil {
		t.Fatalf("%v: %v", scen, err)
	}
	opt, err := SimulatePair(cfg, ScenarioMcSD)
	if err != nil {
		t.Fatalf("McSD: %v", err)
	}
	s, ok := Speedup(base, opt)
	if !ok {
		t.Fatalf("%v at %d bytes: no finite speedup (OOM base=%v opt=%v)",
			scen, cfg.DataBytes, base.OOM, opt.OOM)
	}
	return s
}

// Fig. 9 shape: "compared with the traditional (single-core processor
// equipped) SD, the McSD ... averagely improves the overall performance by
// 2X" — flat across sizes.
func TestMMWCTradSDSpeedupAboutTwo(t *testing.T) {
	for _, size := range []int64{500 << 20, 750 << 20, gb, 5 * gb / 4} {
		s := speedupOf(t, wcPair(size), ScenarioTradSD)
		if s < 1.5 || s > 2.6 {
			t.Errorf("Trad-SD speedup at %d MB = %.2f, want ~2", size>>20, s)
		}
	}
}

// Fig. 9 shape: non-partitioned approaches blow up past the memory
// threshold — "the speedups averagely achieve 6.8X and 17.4X".
func TestMMWCNonPartitionedBlowupPastThreshold(t *testing.T) {
	// Below threshold: only slight improvement.
	if s := speedupOf(t, wcPair(500<<20), ScenarioMcSDNoPartition); s < 0.85 || s > 1.8 {
		t.Errorf("McSD-nopart speedup at 500MB = %.2f, want ~1 (below threshold)", s)
	}
	// Past threshold: large.
	s1g := speedupOf(t, wcPair(gb), ScenarioMcSDNoPartition)
	if s1g < 2.5 {
		t.Errorf("McSD-nopart speedup at 1GB = %.2f, want >= 2.5", s1g)
	}
	s125 := speedupOf(t, wcPair(5*gb/4), ScenarioMcSDNoPartition)
	if s125 < 5 || s125 > 12 {
		t.Errorf("McSD-nopart speedup at 1.25GB = %.2f, want ~6.8", s125)
	}
	if s125 <= s1g {
		t.Errorf("speedup must grow with size past threshold: %.2f <= %.2f", s125, s1g)
	}
}

func TestMMWCHostOnlyWorstPastThreshold(t *testing.T) {
	if s := speedupOf(t, wcPair(500<<20), ScenarioHostOnly); s < 0.7 || s > 2.5 {
		t.Errorf("Host-only speedup at 500MB = %.2f, want ~1 (slight)", s)
	}
	s125 := speedupOf(t, wcPair(5*gb/4), ScenarioHostOnly)
	if s125 < 13 || s125 > 23 {
		t.Errorf("Host-only speedup at 1.25GB = %.2f, want ~17.4", s125)
	}
	// Host-only (NFS-backed, contended swap) must be worse than the
	// SD-local non-partitioned run, as in the paper (17.4X vs 6.8X).
	nopart := speedupOf(t, wcPair(5*gb/4), ScenarioMcSDNoPartition)
	if s125 <= nopart {
		t.Errorf("Host-only (%.2f) should exceed McSD-nopart (%.2f) at 1.25GB", s125, nopart)
	}
}

// Fig. 10 shape: the MM/SM pair shows moderate, flat speedups (~1.5-2.5x)
// with no blowup — SM is "less data-intensive".
func TestMMSMSpeedupsModerateNoBlowup(t *testing.T) {
	for _, size := range []int64{500 << 20, 750 << 20, gb, 5 * gb / 4} {
		trad := speedupOf(t, smPair(size), ScenarioTradSD)
		if trad < 1.3 || trad > 2.6 {
			t.Errorf("SM Trad-SD speedup at %dMB = %.2f, want ~1.5-2", size>>20, trad)
		}
		host := speedupOf(t, smPair(size), ScenarioHostOnly)
		if host < 0.9 || host > 3.5 {
			t.Errorf("SM Host-only speedup at %dMB = %.2f, want ~2-2.5 (no blowup)", size>>20, host)
		}
		nopart := speedupOf(t, smPair(size), ScenarioMcSDNoPartition)
		if nopart < 0.85 || nopart > 3 {
			t.Errorf("SM McSD-nopart speedup at %dMB = %.2f, want ~1-2 (no blowup)", size>>20, nopart)
		}
	}
}

func TestPairOOMPastWall(t *testing.T) {
	// At 1.5 GB WC the non-partitioned scenarios hit the wall; McSD does
	// not.
	cfg := wcPair(3 * gb / 2)
	nopart, err := SimulatePair(cfg, ScenarioMcSDNoPartition)
	if err != nil {
		t.Fatal(err)
	}
	if !nopart.OOM {
		t.Fatal("1.5GB native WC should OOM")
	}
	hostOnly, err := SimulatePair(cfg, ScenarioHostOnly)
	if err != nil {
		t.Fatal(err)
	}
	if !hostOnly.OOM {
		t.Fatal("1.5GB host-only native WC should OOM")
	}
	mcsd, err := SimulatePair(cfg, ScenarioMcSD)
	if err != nil {
		t.Fatal(err)
	}
	if mcsd.OOM {
		t.Fatal("partitioned McSD must survive 1.5GB")
	}
	if _, ok := Speedup(nopart, mcsd); ok {
		t.Fatal("Speedup over an OOM baseline must not be finite")
	}
}

func TestSimulatePairRejectsBadCluster(t *testing.T) {
	cfg := wcPair(gb)
	cfg.Cluster = cluster.Cluster{}
	if _, err := SimulatePair(cfg, ScenarioMcSD); err == nil {
		t.Fatal("cluster without host/SD accepted")
	}
	cfg = wcPair(gb)
	if _, err := SimulatePair(cfg, Scenario(99)); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestScenarioStrings(t *testing.T) {
	want := map[Scenario]string{
		ScenarioMcSD:            "McSD",
		ScenarioHostOnly:        "Host-only",
		ScenarioTradSD:          "Trad-SD",
		ScenarioMcSDNoPartition: "McSD-nopart",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), name)
		}
	}
}

// Fig. 8(a) shape: partition-enabled parallel vs sequential achieves ~2x on
// the duo and up to ~3.5-4.5x on the quad (warm-cache compute-bound runs).
func TestSingleAppSpeedupVsSequential(t *testing.T) {
	duo, quad := sdNode(), hostNode()
	for _, tc := range []struct {
		name     string
		cost     workloads.CostModel
		node     cluster.Node
		min, max float64
	}{
		{"duo-wc", workloads.WordCountCost(), duo, 1.7, 2.1},
		{"quad-wc", workloads.WordCountCost(), quad, 3.0, 4.5},
		{"duo-sm", workloads.StringMatchCost(), duo, 1.7, 2.1},
		{"quad-sm", workloads.StringMatchCost(), quad, 3.0, 4.5},
	} {
		seq, err := SimulateSingle(tc.cost, 500<<20, tc.node, SingleSequential, 600<<20, true)
		if err != nil {
			t.Fatalf("%s seq: %v", tc.name, err)
		}
		par, err := SimulateSingle(tc.cost, 500<<20, tc.node, SingleParallelPartitioned, 600<<20, true)
		if err != nil {
			t.Fatalf("%s par: %v", tc.name, err)
		}
		s := float64(seq.Elapsed) / float64(par.Elapsed)
		if s < tc.min || s > tc.max {
			t.Errorf("%s speedup = %.2f, want [%.1f, %.1f]", tc.name, s, tc.min, tc.max)
		}
	}
}

// §V-B text: "the elapsed time of Partition-enabled approach is only 1/6 of
// the traditional one" for WC at huge sizes.
func TestSingleAppPartitionedVsNativeAtHugeSize(t *testing.T) {
	native, err := SimulateSingle(workloads.WordCountCost(), 5*gb/4, sdNode(), SingleParallelNative, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	part, err := SimulateSingle(workloads.WordCountCost(), 5*gb/4, sdNode(), SingleParallelPartitioned, 600<<20, false)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(native.Elapsed) / float64(part.Elapsed)
	if ratio < 4 || ratio > 12 {
		t.Errorf("native/partitioned at 1.25GB = %.2f, want ~6", ratio)
	}
}

// Fig. 8(b,c) shape: partition-enabled growth is near-linear and quad stays
// below duo.
func TestGrowthCurvesLinearAndOrdered(t *testing.T) {
	sizes := []int64{500 << 20, gb, 3 * gb / 2, 2 * gb}
	var duoT, quadT []float64
	for _, size := range sizes {
		d, err := SimulateSingle(workloads.WordCountCost(), size, sdNode(), SingleParallelPartitioned, 600<<20, false)
		if err != nil {
			t.Fatal(err)
		}
		q, err := SimulateSingle(workloads.WordCountCost(), size, hostNode(), SingleParallelPartitioned, 600<<20, false)
		if err != nil {
			t.Fatal(err)
		}
		if q.Elapsed >= d.Elapsed {
			t.Errorf("quad (%v) not faster than duo (%v) at %dMB", q.Elapsed, d.Elapsed, size>>20)
		}
		duoT = append(duoT, d.Elapsed.Seconds())
		quadT = append(quadT, q.Elapsed.Seconds())
	}
	// Linearity: time per byte roughly constant (within 40%).
	for _, ts := range [][]float64{duoT, quadT} {
		first := ts[0] / float64(sizes[0])
		last := ts[len(ts)-1] / float64(sizes[len(sizes)-1])
		if last > first*1.4 || last < first*0.6 {
			t.Errorf("growth not near-linear: %.3g s/B -> %.3g s/B", first, last)
		}
	}
}
