package sim

import (
	"errors"
	"fmt"
	"time"

	"mcsd/internal/cluster"
	"mcsd/internal/workloads"
)

// Scenario is one of the four execution modes of the multiple-application
// evaluation (§V-C).
type Scenario int

// The four scenarios of §V-C.
const (
	// ScenarioMcSD is the optimized approach: "the host machine handles
	// the computation-intensive part and the SD machine processes the
	// on-node data-intensive function", with partitioning enabled on the
	// SD side.
	ScenarioMcSD Scenario = iota
	// ScenarioHostOnly runs both applications on the host node only; the
	// data-intensive input streams over the network from the storage
	// node, and the data-intensive run is native (no partitioning).
	ScenarioHostOnly
	// ScenarioTradSD pairs the host with a traditional single-core smart
	// storage node running the data-intensive function sequentially.
	ScenarioTradSD
	// ScenarioMcSDNoPartition is the duo-core SD running the
	// data-intensive function in parallel but natively — it hits the
	// memory wall as data grows.
	ScenarioMcSDNoPartition
)

// Scenarios lists all four in presentation order.
var Scenarios = []Scenario{ScenarioMcSD, ScenarioHostOnly, ScenarioTradSD, ScenarioMcSDNoPartition}

// String implements fmt.Stringer.
func (s Scenario) String() string {
	switch s {
	case ScenarioMcSD:
		return "McSD"
	case ScenarioHostOnly:
		return "Host-only"
	case ScenarioTradSD:
		return "Trad-SD"
	case ScenarioMcSDNoPartition:
		return "McSD-nopart"
	default:
		return fmt.Sprintf("scenario(%d)", int(s))
	}
}

// PairConfig describes one multiple-application experiment: a
// computation-intensive matrix multiplication plus a data-intensive
// function over DataBytes of SD-resident data.
type PairConfig struct {
	Cluster        cluster.Cluster
	DataCost       workloads.CostModel
	DataBytes      int64
	MatrixN        int
	PartitionBytes int64
	// SMBLoad is the background network load from the Sandia Micro
	// Benchmark traffic among the non-SD nodes.
	SMBLoad float64
}

// PairOutcome is the simulated result of one scenario.
type PairOutcome struct {
	Scenario Scenario
	Elapsed  time.Duration
	// OOM marks a run the testbed could not complete (memory overflow).
	OOM  bool
	Data DataAppOutcome
	MM   time.Duration
	// Transfer is network time attributable to data/result movement.
	Transfer time.Duration
}

// SimulatePair runs one scenario of the §V-C experiment.
func SimulatePair(cfg PairConfig, scen Scenario) (PairOutcome, error) {
	out := PairOutcome{Scenario: scen}
	host := cfg.Cluster.Host()
	sd := cfg.Cluster.SD()
	if host == nil || sd == nil {
		return out, errors.New("sim: cluster must have host and SD nodes")
	}
	mm := workloads.MatMulCost(cfg.MatrixN)
	net := cfg.Cluster.Network
	resultBytes := int64(cfg.DataCost.OutputRatio * float64(cfg.DataBytes))
	// The host always runs the SMB routine load and serves the compute
	// nodes' NFS mounts; the SD node does neither (§V-A).
	out.MM = MatMulTime(mm, *host, 0, HostCPUShare)

	switch scen {
	case ScenarioMcSD, ScenarioTradSD, ScenarioMcSDNoPartition:
		// Offloaded execution: MM on the host overlaps the data-intensive
		// function on the (smart) storage node; smartFAM carries the
		// invocation and the results cross the share.
		exec := Exec{Node: *sd, PartitionBytes: cfg.PartitionBytes}
		switch scen {
		case ScenarioTradSD:
			trad := cluster.TraditionalSDNode()
			exec = Exec{Node: trad, Cores: 1, PartitionBytes: cfg.PartitionBytes}
		case ScenarioMcSDNoPartition:
			exec.PartitionBytes = 0
		}
		data, err := DataAppTime(cfg.DataCost, cfg.DataBytes, exec)
		if err != nil {
			if errors.Is(err, ErrOOM) {
				out.OOM = true
				return out, nil
			}
			return out, err
		}
		out.Data = data

		invoke := NewTask("smartfam.invoke", InvocationOverhead(net, cfg.SMBLoad))
		sdRun := NewTask("sd.data-app", data.Elapsed).After(invoke)
		ret := NewTask("net.results", StageTime(net, resultBytes, cfg.SMBLoad)).After(sdRun)
		mmTask := NewTask("host.matmul", out.MM)
		sink := Join("done", ret, mmTask)
		elapsed, err := FinishTime(sink)
		if err != nil {
			return out, err
		}
		out.Elapsed = elapsed
		out.Transfer = InvocationOverhead(net, cfg.SMBLoad) + StageTime(net, resultBytes, cfg.SMBLoad)
		return out, nil

	case ScenarioHostOnly:
		// Everything on the host: the data-intensive input streams over
		// the share (NFS read replaces the local-disk read), the run is
		// native, the host's cores are shared with the routine load, and
		// any thrashing swaps against a disk also serving NFS exports.
		// MM and the data app share the host serially.
		exec := Exec{
			Node:     *host,
			CPUShare: HostCPUShare,
			ReadBps:  StageBandwidth(net, cfg.SMBLoad),
			SwapBps:  host.DiskReadBps / HostSwapContention,
		}
		data, err := DataAppTime(cfg.DataCost, cfg.DataBytes, exec)
		if err != nil {
			if errors.Is(err, ErrOOM) {
				out.OOM = true
				return out, nil
			}
			return out, err
		}
		out.Data = data
		seq := Chain(NewTask("host.matmul", out.MM), NewTask("host.data-app", data.Elapsed))
		elapsed, err := FinishTime(seq)
		if err != nil {
			return out, err
		}
		out.Elapsed = elapsed
		out.Transfer = data.ReadTime
		return out, nil

	default:
		return out, fmt.Errorf("sim: unknown scenario %d", int(scen))
	}
}

// Speedup returns baseline/optimized elapsed-time ratio — the paper's
// definition: "the ratio of the elapsed time without the optimization
// technique to that with the McSD technique". OOM baselines have no finite
// ratio; ok is false.
func Speedup(baseline, optimized PairOutcome) (float64, bool) {
	if baseline.OOM || optimized.OOM || optimized.Elapsed <= 0 {
		return 0, false
	}
	return float64(baseline.Elapsed) / float64(optimized.Elapsed), true
}

// SingleMode is an execution mode of the single-application study (§V-B).
type SingleMode int

// Single-application execution modes.
const (
	// SingleSequential runs on one core (partitioned when a fragment
	// size is given).
	SingleSequential SingleMode = iota
	// SingleParallelNative is original Phoenix: all cores, no partition.
	SingleParallelNative
	// SingleParallelPartitioned is the extended Phoenix of Fig. 6.
	SingleParallelPartitioned
)

// SimulateSingle runs one single-application experiment on a node. The
// warm flag corresponds to repeated-trial measurement over a cached input
// (used for the Fig. 8(a) speedup ratios).
func SimulateSingle(cost workloads.CostModel, size int64, node cluster.Node, mode SingleMode, partitionBytes int64, warm bool) (DataAppOutcome, error) {
	exec := Exec{Node: node, WarmCache: warm}
	switch mode {
	case SingleSequential:
		exec.Cores = 1
		exec.PartitionBytes = partitionBytes
	case SingleParallelNative:
		exec.PartitionBytes = 0
	case SingleParallelPartitioned:
		exec.PartitionBytes = partitionBytes
	default:
		return DataAppOutcome{}, fmt.Errorf("sim: unknown single mode %d", int(mode))
	}
	return DataAppTime(cost, size, exec)
}
