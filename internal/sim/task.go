// Package sim is the performance model that regenerates the paper's
// figures at testbed scale (500 MB – 2 GB inputs, duo/quad cores, 2 GB
// RAM, 1 GbE) on a machine that has none of those. It combines:
//
//   - a task-graph evaluator (tasks with durations and dependencies;
//     elapsed time is the critical path), which captures the overlap
//     structure of the McSD framework — the host's computation-intensive
//     function runs concurrently with the SD node's data-intensive one;
//   - an analytic per-task cost model: map/reduce byte rates scaled by
//     core count and per-core speed (internal/cluster), memory-thrash
//     multipliers (internal/memsim), and network transfer times
//     (internal/netsim).
//
// The absolute constants are calibrated to Table I-era hardware and can be
// re-anchored to the real engine with Calibrate; the figures' shapes —
// who wins, where the memory wall sits, the size of the blowups — come
// from the same mechanisms the paper credits.
package sim

import (
	"errors"
	"fmt"
	"time"
)

// Task is one unit of simulated work with explicit dependencies. A task
// starts when all dependencies have finished; elapsed time of a graph is
// the critical path to its sink.
type Task struct {
	Name     string
	Duration time.Duration
	Deps     []*Task

	// memo for evaluation
	state  evalState
	finish time.Duration
}

type evalState int

const (
	unvisited evalState = iota
	visiting
	done
)

// ErrCycle reports a dependency cycle.
var ErrCycle = errors.New("sim: task graph has a cycle")

// After declares deps as prerequisites of t and returns t for chaining.
func (t *Task) After(deps ...*Task) *Task {
	t.Deps = append(t.Deps, deps...)
	return t
}

// NewTask creates a task.
func NewTask(name string, d time.Duration) *Task {
	if d < 0 {
		d = 0
	}
	return &Task{Name: name, Duration: d}
}

// FinishTime returns when t completes, assuming every task starts as soon
// as its dependencies allow (infinite resources between tasks — resource
// contention is priced inside task durations by the cost model).
func FinishTime(t *Task) (time.Duration, error) {
	reset(t, make(map[*Task]bool))
	return finishTime(t)
}

func reset(t *Task, seen map[*Task]bool) {
	if seen[t] {
		return
	}
	seen[t] = true
	t.state = unvisited
	t.finish = 0
	for _, d := range t.Deps {
		reset(d, seen)
	}
}

func finishTime(t *Task) (time.Duration, error) {
	switch t.state {
	case done:
		return t.finish, nil
	case visiting:
		return 0, fmt.Errorf("%w: via %q", ErrCycle, t.Name)
	}
	t.state = visiting
	var start time.Duration
	for _, d := range t.Deps {
		f, err := finishTime(d)
		if err != nil {
			return 0, err
		}
		if f > start {
			start = f
		}
	}
	t.state = done
	t.finish = start + t.Duration
	return t.finish, nil
}

// Chain links tasks sequentially (each after the previous) and returns the
// last one. It models serial execution on one resource.
func Chain(tasks ...*Task) *Task {
	for i := 1; i < len(tasks); i++ {
		tasks[i].After(tasks[i-1])
	}
	if len(tasks) == 0 {
		return NewTask("empty", 0)
	}
	return tasks[len(tasks)-1]
}

// Join returns a zero-duration task that finishes when all of tasks have —
// a barrier.
func Join(name string, tasks ...*Task) *Task {
	j := NewTask(name, 0)
	j.After(tasks...)
	return j
}
