package sim

import (
	"errors"
	"fmt"
	"math"
	"time"

	"mcsd/internal/cluster"
	"mcsd/internal/memsim"
	"mcsd/internal/netsim"
	"mcsd/internal/workloads"
)

// ErrOOM reports a simulated run whose memory footprint exceeds RAM+swap —
// the run the paper reports as "memory overflow" (native Phoenix above
// 1.5 GB inputs).
var ErrOOM = errors.New("sim: simulated run out of memory")

// Model calibration constants. These are the few knobs that anchor the
// simulator's absolute scale; every figure shape follows from mechanism.
const (
	// perFragmentOverhead is fixed per-fragment cost (MapReduce procedure
	// start, integrity scan, per-fragment merge).
	perFragmentOverhead = 60 * time.Millisecond
	// NFSEfficiency is the fraction of raw link bandwidth an NFS-style
	// bulk read achieves (request round trips, rsize windows, server
	// load) — 2009-era NFSv3 over GbE measured well below wire speed.
	NFSEfficiency = 0.45
	// HostCPUShare is the fraction of the host's cores left for
	// benchmark work while it runs the SMB routine load and serves NFS
	// to the three compute nodes (§V-A). The SD node runs neither.
	HostCPUShare = 0.75
	// HostSwapContention divides the host's swap bandwidth: when the
	// host-only scenario thrashes, its disk is simultaneously serving
	// NFS exports and the concurrently running second application.
	HostSwapContention = 2.5
)

// parallelEfficiency prices the serial fraction of the Phoenix runtime
// (final sort/merge, task dispatch): each extra core contributes slightly
// less than one core.
func parallelEfficiency(cores int) float64 {
	return 1 - 0.04*float64(cores-1)
}

// Exec describes how a data-intensive app executes on one node.
type Exec struct {
	// Node supplies cores, per-core speed, memory model and disk.
	Node cluster.Node
	// Cores overrides the node's core count when > 0 (sequential = 1).
	Cores int
	// PartitionBytes is the fragment size; 0 runs native (whole input
	// resident).
	PartitionBytes int64
	// CPUShare is the fraction of the node's cores available to this run
	// (background routine load). Zero means 1.
	CPUShare float64
	// ReadBps is the bandwidth at which the input is read (local SATA by
	// default; an NFS-staged rate in the host-only scenario). Zero means
	// the node's disk.
	ReadBps float64
	// SwapBps is the backing-store bandwidth for thrashing. Zero means
	// the node's disk.
	SwapBps float64
	// WarmCache skips the input read term when the resident set fits in
	// usable RAM — repeated-trial runs over a cached input (how the
	// single-application speedups of Fig. 8(a) are measured).
	WarmCache bool
}

func (e Exec) cores() int {
	if e.Cores > 0 {
		return e.Cores
	}
	return e.Node.CPU.Cores
}

func (e Exec) share() float64 {
	if e.CPUShare > 0 && e.CPUShare <= 1 {
		return e.CPUShare
	}
	return 1
}

func (e Exec) readBps() float64 {
	if e.ReadBps > 0 {
		return e.ReadBps
	}
	return e.Node.DiskReadBps
}

func (e Exec) swapBps() float64 {
	if e.SwapBps > 0 {
		return e.SwapBps
	}
	return e.Node.DiskReadBps
}

// DataAppOutcome reports one simulated data-intensive run.
type DataAppOutcome struct {
	Elapsed   time.Duration
	Fragments int
	// Footprint is the admission-control footprint of one resident
	// fragment; Resident is the hot working set that drives thrashing.
	Footprint int64
	Resident  int64
	// ComputeTime is pure map+reduce time; ReadTime is the input read
	// (overlapped with compute — the larger of the two lands on the
	// critical path); SwapTime is thrash I/O.
	ComputeTime time.Duration
	ReadTime    time.Duration
	SwapTime    time.Duration
}

// DataAppTime simulates running the data-intensive app (cost model) over
// size bytes under exec. It returns ErrOOM when the per-fragment footprint
// cannot fit in RAM+swap, mirroring the real engine's admission control.
//
// The elapsed-time model: input reading pipelines with map/reduce compute
// (max, not sum), swap thrash is additive I/O (memsim.SwapSeconds), and
// each fragment pays a fixed startup/merge overhead.
func DataAppTime(cost workloads.CostModel, size int64, exec Exec) (DataAppOutcome, error) {
	if size < 0 {
		return DataAppOutcome{}, fmt.Errorf("sim: negative input size %d", size)
	}
	var out DataAppOutcome
	if size == 0 {
		return out, nil
	}
	frag := size
	if exec.PartitionBytes > 0 && cost.Partitionable && exec.PartitionBytes < size {
		frag = exec.PartitionBytes
	}
	nFrags := int((size + frag - 1) / frag)

	mem := exec.Node.Memory
	out.Footprint = int64(cost.FootprintFactor * float64(frag))
	resFactor := cost.ResidentFactor
	if resFactor <= 0 {
		resFactor = cost.FootprintFactor
	}
	out.Resident = int64(resFactor * float64(frag))
	if out.Footprint > mem.Limit() {
		return DataAppOutcome{}, fmt.Errorf("%w: footprint %d > limit %d (input %d, fragment %d)",
			ErrOOM, out.Footprint, mem.Limit(), size, frag)
	}

	cores := exec.cores()
	rate := cost.MapRateBps * exec.Node.CPU.CoreSpeed() * float64(cores) *
		parallelEfficiency(cores) * exec.share()
	out.ComputeTime = secs(float64(size) / rate * (1 + cost.ReduceFraction))

	if !(exec.WarmCache && out.Resident <= mem.Usable()) {
		out.ReadTime = secs(float64(size) / exec.readBps())
	}
	// Thrash applies to each resident fragment; per-fragment swap cost
	// scales by fragment count (native runs have one big fragment).
	swapPerFrag := mem.SwapSeconds(out.Resident, exec.swapBps())
	out.SwapTime = secs(swapPerFrag * float64(nFrags))

	out.Fragments = nFrags
	critical := out.ComputeTime
	if out.ReadTime > critical {
		critical = out.ReadTime
	}
	out.Elapsed = critical + out.SwapTime + time.Duration(nFrags)*perFragmentOverhead
	return out, nil
}

// MatMulTime simulates the computation-intensive matrix multiplication on
// a node using the given core count (0 = all cores) and CPU share
// (0 = full node).
func MatMulTime(mm workloads.MatMulCostModel, node cluster.Node, cores int, cpuShare float64) time.Duration {
	if cores <= 0 {
		cores = node.CPU.Cores
	}
	if cpuShare <= 0 || cpuShare > 1 {
		cpuShare = 1
	}
	rate := node.CPU.CoreSpeed() * float64(cores) * parallelEfficiency(cores) * cpuShare
	return secs(mm.Seconds() / rate)
}

// TransferTime prices moving n bytes over the cluster network under a
// background load fraction (the SMB routine traffic).
func TransferTime(p netsim.Profile, n int64, bgLoad float64) time.Duration {
	return p.TransferTimeLoaded(n, bgLoad)
}

// StageBandwidth is the effective bulk-staging bandwidth of an NFS-style
// read over the profile under background load.
func StageBandwidth(p netsim.Profile, bgLoad float64) float64 {
	if bgLoad < 0 {
		bgLoad = 0
	}
	if bgLoad > 0.95 {
		bgLoad = 0.95
	}
	return p.BandwidthBps * NFSEfficiency * (1 - bgLoad)
}

// StageTime is the time to stage n bytes over NFS under background load.
func StageTime(p netsim.Profile, n int64, bgLoad float64) time.Duration {
	if n <= 0 {
		return p.Latency
	}
	return p.Latency + secs(float64(n)/StageBandwidth(p, bgLoad))
}

// InvocationOverhead is the smartFAM cost of one offloaded call: the
// parameter log-file write, the SD-side poll latency, and the result
// notification, all crossing the share.
func InvocationOverhead(p netsim.Profile, bgLoad float64) time.Duration {
	const records = 4 // REQ append, daemon read, RES append, host read
	o := time.Duration(records) * TransferTime(p, 256, bgLoad)
	return o + 2*time.Millisecond // two poll intervals (daemon + host watchers)
}

func secs(s float64) time.Duration {
	if math.IsInf(s, 1) || s > float64(math.MaxInt64)/float64(time.Second) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(s * float64(time.Second))
}

// MemoryWall returns the largest native input size (bytes) the node can
// admit for a workload — the wall the paper reports as ~1.5 GB for WC/SM
// on the 2 GB testbed.
func MemoryWall(cost workloads.CostModel, mem memsim.Config) int64 {
	return int64(float64(mem.Limit()) / cost.FootprintFactor)
}
