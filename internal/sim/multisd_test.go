package sim

import (
	"testing"

	"mcsd/internal/cluster"
	"mcsd/internal/workloads"
)

func multiCfg(size int64) PairConfig {
	return PairConfig{
		Cluster:        cluster.TableI(),
		DataCost:       workloads.WordCountCost(),
		DataBytes:      size,
		PartitionBytes: 600 << 20,
		SMBLoad:        0.1,
	}
}

func TestSimulateMultiSDRejectsBadInput(t *testing.T) {
	if _, err := SimulateMultiSD(multiCfg(gb), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	cfg := multiCfg(gb)
	cfg.Cluster = cluster.Cluster{}
	if _, err := SimulateMultiSD(cfg, 2); err == nil {
		t.Fatal("empty cluster accepted")
	}
}

func TestMultiSDSpeedupScalesThenTapers(t *testing.T) {
	cfg := multiCfg(2 * gb)
	prev := 0.0
	var speedups []float64
	for k := 1; k <= 6; k++ {
		s, err := MultiSDSpeedup(cfg, k)
		if err != nil {
			t.Fatal(err)
		}
		if s < prev {
			t.Fatalf("speedup decreased at k=%d: %.2f < %.2f", k, s, prev)
		}
		prev = s
		speedups = append(speedups, s)
	}
	if speedups[0] != 1.0 {
		t.Fatalf("k=1 speedup = %.2f, want 1.0", speedups[0])
	}
	// Two nodes should give near-2x (shards run fully in parallel)...
	if speedups[1] < 1.6 || speedups[1] > 2.05 {
		t.Fatalf("k=2 speedup = %.2f, want ~1.9", speedups[1])
	}
	// ...but scaling must taper (invocation + serialized result return +
	// host merge): efficiency at 6 nodes below 95%.
	if eff := speedups[5] / 6; eff >= 0.95 {
		t.Fatalf("k=6 efficiency = %.2f, expected sub-linear scaling", eff)
	}
}

func TestMultiSDShardingAvoidsMemoryWall(t *testing.T) {
	// 4 GB native WC would OOM a single node even partitioned at 600 MB?
	// No — partitioning handles it. But NATIVE sharding does: without
	// partitioning, 4 GB on one node OOMs while 4 nodes x 1 GB run.
	cfg := multiCfg(4 * gb)
	cfg.PartitionBytes = 0
	if _, err := SimulateMultiSD(cfg, 1); err == nil {
		t.Fatal("4 GB native single-node run should OOM")
	}
	out, err := SimulateMultiSD(cfg, 4)
	if err != nil {
		t.Fatalf("4-way native sharding should fit (1 GB/node): %v", err)
	}
	if out.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestMultiSDOutcomeComponents(t *testing.T) {
	out, err := SimulateMultiSD(multiCfg(2*gb), 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Nodes != 3 {
		t.Fatalf("Nodes = %d", out.Nodes)
	}
	if out.ShardTime <= 0 || out.ReturnTime <= 0 || out.MergeTime <= 0 {
		t.Fatalf("missing components: %+v", out)
	}
	if out.Elapsed < out.ShardTime {
		t.Fatal("elapsed cannot be below the shard critical path")
	}
}

// TestMultiSDPinsSingleSDModel pins k=1 to the single-SD model: with one
// node the shard is the whole file, so the multi-SD simulator must agree
// exactly with DataAppTime plus the invocation, return and merge legs it
// adds around it. Any drift between the two models breaks the bench's
// measured-vs-modelled comparison.
func TestMultiSDPinsSingleSDModel(t *testing.T) {
	cases := []struct {
		name string
		cfg  PairConfig
	}{
		{"wc-1gb", multiCfg(gb)},
		{"wc-2gb-partitioned", multiCfg(2 * gb)},
		{"sm-1gb", func() PairConfig {
			c := multiCfg(gb)
			c.DataCost = workloads.StringMatchCost()
			return c
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := SimulateMultiSD(tc.cfg, 1)
			if err != nil {
				t.Fatal(err)
			}
			sd := tc.cfg.Cluster.SD()
			single, err := DataAppTime(tc.cfg.DataCost, tc.cfg.DataBytes,
				Exec{Node: *sd, PartitionBytes: tc.cfg.PartitionBytes})
			if err != nil {
				t.Fatal(err)
			}
			if out.ShardTime != single.Elapsed {
				t.Fatalf("k=1 shard time %v != single-SD model %v", out.ShardTime, single.Elapsed)
			}
			want := out.InvokeTime + out.ShardTime + out.ReturnTime + out.MergeTime
			if out.Elapsed != want {
				t.Fatalf("k=1 elapsed %v != sum of legs %v", out.Elapsed, want)
			}
			if len(out.PerNode) != 1 {
				t.Fatalf("PerNode = %v", out.PerNode)
			}
			leg := out.PerNode[0]
			if leg.Node != "sd0" || leg.Shard != out.ShardTime {
				t.Fatalf("leg = %+v", leg)
			}
			if leg.ReturnDone != out.InvokeTime+out.ShardTime+out.ReturnTime {
				t.Fatalf("leg return done %v", leg.ReturnDone)
			}
		})
	}
}

// TestMultiSDPerNodeBreakdown checks the exported per-node legs: one per
// node, identical shard times (identical nodes), strictly later return
// slots on the serialized host link, and the last leg flush with the
// pre-merge critical path.
func TestMultiSDPerNodeBreakdown(t *testing.T) {
	out, err := SimulateMultiSD(multiCfg(2*gb), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PerNode) != 4 {
		t.Fatalf("PerNode has %d legs", len(out.PerNode))
	}
	for i, leg := range out.PerNode {
		if leg.Shard != out.ShardTime {
			t.Fatalf("leg %d shard %v != %v", i, leg.Shard, out.ShardTime)
		}
		if i > 0 && leg.ReturnDone <= out.PerNode[i-1].ReturnDone {
			t.Fatalf("return slots not serialized: %v", out.PerNode)
		}
	}
	last := out.PerNode[len(out.PerNode)-1]
	if last.ReturnDone != out.InvokeTime+out.ShardTime+out.ReturnTime {
		t.Fatalf("last return done %v, want %v", last.ReturnDone, out.InvokeTime+out.ShardTime+out.ReturnTime)
	}
	if got := out.Elapsed - out.MergeTime; got != last.ReturnDone {
		t.Fatalf("elapsed minus merge %v != last return %v", got, last.ReturnDone)
	}
}
