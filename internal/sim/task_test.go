package sim

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func TestFinishTimeSingleTask(t *testing.T) {
	got, err := FinishTime(NewTask("a", 5*time.Second))
	if err != nil || got != 5*time.Second {
		t.Fatalf("FinishTime = (%v, %v), want 5s", got, err)
	}
}

func TestFinishTimeChainSums(t *testing.T) {
	last := Chain(
		NewTask("a", time.Second),
		NewTask("b", 2*time.Second),
		NewTask("c", 3*time.Second),
	)
	got, err := FinishTime(last)
	if err != nil || got != 6*time.Second {
		t.Fatalf("chain = (%v, %v), want 6s", got, err)
	}
}

func TestFinishTimeJoinTakesMax(t *testing.T) {
	a := NewTask("a", 10*time.Second)
	b := NewTask("b", 3*time.Second)
	j := Join("barrier", a, b)
	got, err := FinishTime(j)
	if err != nil || got != 10*time.Second {
		t.Fatalf("join = (%v, %v), want 10s", got, err)
	}
}

func TestFinishTimeDiamondCriticalPath(t *testing.T) {
	// src -> {left(2s), right(7s)} -> sink(1s): critical path 8s.
	src := NewTask("src", 0)
	left := NewTask("left", 2*time.Second).After(src)
	right := NewTask("right", 7*time.Second).After(src)
	sink := NewTask("sink", time.Second).After(left, right)
	got, err := FinishTime(sink)
	if err != nil || got != 8*time.Second {
		t.Fatalf("diamond = (%v, %v), want 8s", got, err)
	}
}

func TestFinishTimeOverlapModelsOffload(t *testing.T) {
	// The McSD shape: a long SD-side run overlapping a short host-side
	// run; elapsed is the longer branch plus the result return.
	invoke := NewTask("invoke", 10*time.Millisecond)
	sdRun := NewTask("sd", 20*time.Second).After(invoke)
	ret := NewTask("ret", 500*time.Millisecond).After(sdRun)
	mm := NewTask("mm", 2*time.Second)
	sink := Join("done", ret, mm)
	got, err := FinishTime(sink)
	if err != nil {
		t.Fatal(err)
	}
	want := 10*time.Millisecond + 20*time.Second + 500*time.Millisecond
	if got != want {
		t.Fatalf("overlap = %v, want %v", got, want)
	}
}

func TestFinishTimeDetectsCycle(t *testing.T) {
	a := NewTask("a", time.Second)
	b := NewTask("b", time.Second).After(a)
	a.After(b)
	if _, err := FinishTime(b); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
}

func TestFinishTimeReusableAfterEvaluation(t *testing.T) {
	a := NewTask("a", time.Second)
	b := NewTask("b", time.Second).After(a)
	if _, err := FinishTime(b); err != nil {
		t.Fatal(err)
	}
	// Re-evaluating the same graph must reset memoization.
	got, err := FinishTime(b)
	if err != nil || got != 2*time.Second {
		t.Fatalf("second evaluation = (%v, %v), want 2s", got, err)
	}
}

// Property: on random layered DAGs, every task's finish time is at least
// its duration plus the max of its dependencies' finish times, and the
// sink's finish is at least the longest single task and at most the sum of
// all durations.
func TestFinishTimePropertyRandomDAGs(t *testing.T) {
	prop := func(durs []uint16, edges []uint16) bool {
		if len(durs) == 0 {
			return true
		}
		if len(durs) > 24 {
			durs = durs[:24]
		}
		tasks := make([]*Task, len(durs))
		var sum time.Duration
		var longest time.Duration
		for i, d := range durs {
			dur := time.Duration(d) * time.Millisecond
			tasks[i] = NewTask(fmt.Sprintf("t%d", i), dur)
			sum += dur
			if dur > longest {
				longest = dur
			}
		}
		// Edges only go forward (j -> i with j < i): guaranteed acyclic.
		for k, e := range edges {
			if len(tasks) < 2 {
				break
			}
			i := 1 + int(e)%(len(tasks)-1)
			j := int(uint(k)*2654435761) % i
			tasks[i].After(tasks[j])
		}
		sink := Join("sink", tasks...)
		finish, err := FinishTime(sink)
		if err != nil {
			return false
		}
		if finish < longest || finish > sum {
			return false
		}
		// Local consistency: every task finishes no earlier than each dep
		// plus its own duration... equivalently finish >= dep.finish.
		for _, tk := range tasks {
			for _, dep := range tk.Deps {
				if tk.finish < dep.finish {
					return false
				}
				if tk.finish < dep.finish+tk.Duration {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNewTaskClampsNegativeDuration(t *testing.T) {
	if d := NewTask("n", -time.Second).Duration; d != 0 {
		t.Fatalf("negative duration kept: %v", d)
	}
}

func TestChainEmpty(t *testing.T) {
	got, err := FinishTime(Chain())
	if err != nil || got != 0 {
		t.Fatalf("empty chain = (%v, %v), want 0", got, err)
	}
}
