package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"mcsd/internal/cluster"
	"mcsd/internal/netsim"
	"mcsd/internal/workloads"
)

const gb = int64(1) << 30

func sdNode() cluster.Node   { return *cluster.TableI().SD() }
func hostNode() cluster.Node { return *cluster.TableI().Host() }

func TestDataAppTimeZeroAndNegative(t *testing.T) {
	out, err := DataAppTime(workloads.WordCountCost(), 0, Exec{Node: sdNode()})
	if err != nil || out.Elapsed != 0 {
		t.Fatalf("zero input = (%+v, %v)", out, err)
	}
	if _, err := DataAppTime(workloads.WordCountCost(), -1, Exec{Node: sdNode()}); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestDataAppTimeMonotonicInSize(t *testing.T) {
	prev := time.Duration(0)
	for _, size := range []int64{100 << 20, 500 << 20, gb, 2 * gb} {
		out, err := DataAppTime(workloads.WordCountCost(), size,
			Exec{Node: sdNode(), PartitionBytes: 600 << 20})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if out.Elapsed <= prev {
			t.Fatalf("elapsed not increasing at %d: %v <= %v", size, out.Elapsed, prev)
		}
		prev = out.Elapsed
	}
}

func TestDataAppTimeMoreCoresFaster(t *testing.T) {
	duo, err := DataAppTime(workloads.WordCountCost(), 500<<20, Exec{Node: sdNode(), WarmCache: true})
	if err != nil {
		t.Fatal(err)
	}
	single, err := DataAppTime(workloads.WordCountCost(), 500<<20,
		Exec{Node: sdNode(), Cores: 1, WarmCache: true})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(single.Elapsed) / float64(duo.Elapsed)
	if ratio < 1.7 || ratio > 2.1 {
		t.Fatalf("duo-core speedup = %.2f, want ~1.9 (paper: ~2x on duo)", ratio)
	}
}

func TestDataAppTimeNativeOOMPastWall(t *testing.T) {
	// WC footprint 3x: 1.5 GB input = 4.5 GB > 3.8 GB limit -> OOM,
	// matching "traditional Phoenix cannot support ... larger than 1.5G".
	_, err := DataAppTime(workloads.WordCountCost(), 3*gb/2, Exec{Node: sdNode()})
	if !errors.Is(err, ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM", err)
	}
	// 1.25 GB (3.75 GB footprint) still runs — the paper measured it.
	if _, err := DataAppTime(workloads.WordCountCost(), 5*gb/4, Exec{Node: sdNode()}); err != nil {
		t.Fatalf("1.25G native should run (thrashing): %v", err)
	}
}

func TestDataAppTimePartitionedBeatsWall(t *testing.T) {
	// 2 GB input partitioned at 600 MB: runs, no thrash, no OOM.
	out, err := DataAppTime(workloads.WordCountCost(), 2*gb,
		Exec{Node: sdNode(), PartitionBytes: 600 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if out.SwapTime != 0 {
		t.Fatalf("partitioned run thrashes: swap=%v", out.SwapTime)
	}
	if out.Fragments != 4 {
		t.Fatalf("fragments = %d, want 4", out.Fragments)
	}
}

func TestDataAppTimeThrashGrowsNonlinearly(t *testing.T) {
	// Native WC at 1 GB vs 1.25 GB: the swap penalty must grow much
	// faster than the 25% input growth.
	at := func(size int64) DataAppOutcome {
		out, err := DataAppTime(workloads.WordCountCost(), size, Exec{Node: sdNode()})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		return out
	}
	s1, s2 := at(gb), at(5*gb/4)
	if s1.SwapTime <= 0 {
		t.Fatal("1 GB native WC should thrash (3 GB resident on 2 GB node)")
	}
	if float64(s2.SwapTime) < 1.8*float64(s1.SwapTime) {
		t.Fatalf("swap grew %v -> %v; want superlinear growth", s1.SwapTime, s2.SwapTime)
	}
	// Below the wall: no thrash.
	if s := at(500 << 20); s.SwapTime != 0 {
		t.Fatalf("500 MB native WC should not thrash, swap=%v", s.SwapTime)
	}
}

func TestDataAppTimeWarmCacheSkipsReadOnlyWhenFits(t *testing.T) {
	warm, err := DataAppTime(workloads.WordCountCost(), 500<<20,
		Exec{Node: sdNode(), WarmCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if warm.ReadTime != 0 {
		t.Fatalf("warm in-RAM run paid read time %v", warm.ReadTime)
	}
	// 1 GB WC (3 GB resident) cannot be warm on a 2 GB node.
	big, err := DataAppTime(workloads.WordCountCost(), gb,
		Exec{Node: sdNode(), WarmCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if big.ReadTime == 0 {
		t.Fatal("oversized run must still pay the read")
	}
}

func TestStringMatchThrashesLessThanWordCount(t *testing.T) {
	wc, err := DataAppTime(workloads.WordCountCost(), 5*gb/4, Exec{Node: sdNode()})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := DataAppTime(workloads.StringMatchCost(), 5*gb/4, Exec{Node: sdNode()})
	if err != nil {
		t.Fatal(err)
	}
	if sm.SwapTime >= wc.SwapTime {
		t.Fatalf("SM swap %v >= WC swap %v; SM's small intermediates should thrash far less",
			sm.SwapTime, wc.SwapTime)
	}
}

func TestExecOverrides(t *testing.T) {
	base := Exec{Node: sdNode()}
	// CPUShare slows compute.
	full, err := DataAppTime(workloads.WordCountCost(), 500<<20, base)
	if err != nil {
		t.Fatal(err)
	}
	shared := base
	shared.CPUShare = 0.5
	half, err := DataAppTime(workloads.WordCountCost(), 500<<20, shared)
	if err != nil {
		t.Fatal(err)
	}
	if half.ComputeTime <= full.ComputeTime {
		t.Fatal("CPUShare did not slow compute")
	}
	ratio := float64(half.ComputeTime) / float64(full.ComputeTime)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("half CPU share scaled compute by %.2f, want 2", ratio)
	}
	// ReadBps override replaces the disk.
	slowRead := base
	slowRead.ReadBps = 10e6
	slow, err := DataAppTime(workloads.WordCountCost(), 500<<20, slowRead)
	if err != nil {
		t.Fatal(err)
	}
	if slow.ReadTime <= full.ReadTime {
		t.Fatal("ReadBps override ignored")
	}
	// SwapBps override changes thrash cost (native 1 GB WC thrashes).
	thrashy := Exec{Node: sdNode()}
	fast, err := DataAppTime(workloads.WordCountCost(), gb, thrashy)
	if err != nil {
		t.Fatal(err)
	}
	thrashy.SwapBps = 10e6
	slowSwap, err := DataAppTime(workloads.WordCountCost(), gb, thrashy)
	if err != nil {
		t.Fatal(err)
	}
	if slowSwap.SwapTime <= fast.SwapTime {
		t.Fatal("SwapBps override ignored")
	}
	// Invalid CPUShare values fall back to 1.
	bad := base
	bad.CPUShare = 7
	same, err := DataAppTime(workloads.WordCountCost(), 500<<20, bad)
	if err != nil {
		t.Fatal(err)
	}
	if same.ComputeTime != full.ComputeTime {
		t.Fatal("CPUShare > 1 not clamped")
	}
}

func TestMatMulTimeScaling(t *testing.T) {
	mm := workloads.MatMulCost(1024)
	quad := MatMulTime(mm, hostNode(), 0, 1)
	single := MatMulTime(mm, hostNode(), 1, 1)
	ratio := float64(single) / float64(quad)
	if ratio < 3 || ratio > 4.2 {
		t.Fatalf("quad-core matmul speedup = %.2f, want ~3.5", ratio)
	}
	shared := MatMulTime(mm, hostNode(), 0, HostCPUShare)
	if shared <= quad {
		t.Fatal("CPU share must slow the run")
	}
}

func TestStageBandwidthBelowWire(t *testing.T) {
	p := netsim.ProfileGigabitEthernet
	if StageBandwidth(p, 0) >= p.BandwidthBps {
		t.Fatal("NFS staging cannot exceed wire speed")
	}
	if StageBandwidth(p, 0.5) >= StageBandwidth(p, 0) {
		t.Fatal("background load must reduce staging bandwidth")
	}
	if StageTime(p, 0, 0) != p.Latency {
		t.Fatal("zero-byte stage should cost one latency")
	}
}

func TestInvocationOverheadSmall(t *testing.T) {
	o := InvocationOverhead(netsim.ProfileGigabitEthernet, 0.1)
	if o <= 0 || o > 50*time.Millisecond {
		t.Fatalf("invocation overhead = %v, want a few ms", o)
	}
}

func TestMemoryWall(t *testing.T) {
	mem := sdNode().Memory
	wall := MemoryWall(workloads.WordCountCost(), mem)
	// ~3.8 GB limit / 3 = ~1.27 GB: between the paper's largest working
	// size (1.25 GB) and its reported failure point (1.5 GB).
	if wall < 5*gb/4 || wall > 3*gb/2 {
		t.Fatalf("WC memory wall = %.2f GB, want in (1.25, 1.5]", float64(wall)/float64(gb))
	}
	smWall := MemoryWall(workloads.StringMatchCost(), mem)
	if smWall <= wall {
		t.Fatal("SM (2x footprint) must tolerate larger inputs than WC (3x)")
	}
}

func TestCalibrateFromEngine(t *testing.T) {
	cal, err := CalibrateFromEngine(context.Background(), 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	if cal.MeasuredWordCountBps <= 0 || cal.MeasuredStringMatchBps <= 0 {
		t.Fatalf("calibration rates not positive: %+v", cal)
	}
	if cal.Scale <= 0 {
		t.Fatalf("scale = %v", cal.Scale)
	}
	scaled := cal.Apply(workloads.WordCountCost())
	want := workloads.WordCountCost().MapRateBps * cal.Scale
	if scaled.MapRateBps != want {
		t.Fatalf("Apply: rate %v, want %v", scaled.MapRateBps, want)
	}
}
