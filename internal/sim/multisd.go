package sim

import (
	"errors"
	"fmt"
	"time"
)

// MultiSDOutcome reports a data-intensive run striped across several smart
// storage nodes — the "parallelisms among multiple McSD smart disks" the
// paper's §VI names as its most exciting future work.
type MultiSDOutcome struct {
	Nodes     int
	Elapsed   time.Duration
	ShardTime time.Duration
	// MergeTime is host-side folding of the per-node partial results.
	MergeTime time.Duration
	// ReturnTime is the serialized return of all partial results over the
	// host's link.
	ReturnTime time.Duration
	// InvokeTime is the per-shard invocation overhead paid before any
	// node starts.
	InvokeTime time.Duration
	// PerNode breaks the run down by node, in return order — what a real
	// coordinator's per-node skew is compared against.
	PerNode []NodeLeg
}

// NodeLeg is one node's time breakdown within a multi-SD run.
type NodeLeg struct {
	// Node is the modelled node name (sd0..sd{k-1}).
	Node string
	// Shard is the node's local shard-processing time.
	Shard time.Duration
	// ReturnDone is when the node's partial result has fully landed on
	// the host, measured from job start: invocation overhead, shard
	// processing, then the node's serialized slot on the host's link.
	ReturnDone time.Duration
}

// SimulateMultiSD stripes size bytes of a partitionable data-intensive app
// across k identical SD nodes (each one a Table I duo-core node holding
// size/k locally), runs all shards concurrently, returns the partial
// results over the shared link, and folds them on the host.
//
// The scaling limiters are real: per-shard invocation overhead, the
// serialized result return on the host's single link, and the host-side
// merge, which grows with the number of partials.
func SimulateMultiSD(cfg PairConfig, k int) (MultiSDOutcome, error) {
	out := MultiSDOutcome{Nodes: k}
	if k <= 0 {
		return out, fmt.Errorf("sim: need at least one SD node, got %d", k)
	}
	sd := cfg.Cluster.SD()
	host := cfg.Cluster.Host()
	if sd == nil || host == nil {
		return out, errors.New("sim: cluster must have host and SD nodes")
	}
	shardBytes := (cfg.DataBytes + int64(k) - 1) / int64(k)
	exec := Exec{Node: *sd, PartitionBytes: cfg.PartitionBytes}
	shard, err := DataAppTime(cfg.DataCost, shardBytes, exec)
	if err != nil {
		return out, err
	}
	out.ShardTime = shard.Elapsed

	net := cfg.Cluster.Network
	resultBytes := int64(cfg.DataCost.OutputRatio * float64(shardBytes))
	// All k shards start together (one invocation each) and run fully in
	// parallel on their own nodes; the k result transfers serialize on
	// the host's link; the host folds k partials.
	out.InvokeTime = InvocationOverhead(net, cfg.SMBLoad)
	invoke := NewTask("smartfam.invoke", out.InvokeTime)
	shards := make([]*Task, k)
	for i := range shards {
		shards[i] = NewTask(fmt.Sprintf("sd%d.shard", i), shard.Elapsed).After(invoke)
	}
	barrier := Join("shards-done", shards...)
	perReturn := StageTime(net, resultBytes, cfg.SMBLoad)
	out.ReturnTime = time.Duration(k) * perReturn
	out.PerNode = make([]NodeLeg, k)
	for i := range out.PerNode {
		out.PerNode[i] = NodeLeg{
			Node:       fmt.Sprintf("sd%d", i),
			Shard:      shard.Elapsed,
			ReturnDone: out.InvokeTime + shard.Elapsed + time.Duration(i+1)*perReturn,
		}
	}
	returns := NewTask("net.results", out.ReturnTime).After(barrier)
	// Host-side merge: fold k partial tables at the host's word-grade
	// processing rate.
	mergeRate := cfg.DataCost.MapRateBps * host.CPU.CoreSpeed()
	out.MergeTime = secs(float64(resultBytes) * float64(k) / mergeRate)
	merge := NewTask("host.merge", out.MergeTime).After(returns)
	elapsed, err := FinishTime(merge)
	if err != nil {
		return out, err
	}
	out.Elapsed = elapsed
	return out, nil
}

// MultiSDSpeedup returns the elapsed-time ratio of the single-node run to
// the k-node run for the given configuration.
func MultiSDSpeedup(cfg PairConfig, k int) (float64, error) {
	one, err := SimulateMultiSD(cfg, 1)
	if err != nil {
		return 0, err
	}
	kth, err := SimulateMultiSD(cfg, k)
	if err != nil {
		return 0, err
	}
	if kth.Elapsed <= 0 {
		return 0, errors.New("sim: non-positive elapsed")
	}
	return float64(one.Elapsed) / float64(kth.Elapsed), nil
}
