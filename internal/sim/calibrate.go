package sim

import (
	"context"
	"fmt"
	"time"

	"mcsd/internal/mapreduce"
	"mcsd/internal/workloads"
)

// Calibration anchors the simulator's absolute time scale to the real
// MapReduce engine running on the current machine. The default cost models
// are calibrated to Table I-era hardware (stable across machines, used for
// figure generation); CalibrateFromEngine lets a user re-anchor them so
// simulated seconds track their own hardware.
type Calibration struct {
	// MeasuredWordCountBps is the single-core word-count rate of the real
	// engine on this machine.
	MeasuredWordCountBps float64
	// MeasuredStringMatchBps is the single-core string-match rate.
	MeasuredStringMatchBps float64
	// Scale is MeasuredWordCountBps divided by the Table I reference rate:
	// multiply any reference MapRateBps by Scale to express it in
	// this-machine seconds.
	Scale float64
}

// CalibrateFromEngine measures the real engine over sampleBytes of
// generated input (a few MB is plenty) and returns the calibration.
func CalibrateFromEngine(ctx context.Context, sampleBytes int64) (Calibration, error) {
	if sampleBytes < 1<<16 {
		sampleBytes = 1 << 16
	}
	var cal Calibration

	text := workloads.GenerateTextBytes(sampleBytes, 1)
	cfg := mapreduce.Config{Workers: 1}
	//mcsdlint:allow simdet -- calibration's whole job is measuring the real engine's wall-clock speed
	start := time.Now()
	if _, err := mapreduce.RunSequential(ctx, cfg, workloads.WordCountSpec(), text); err != nil {
		return cal, fmt.Errorf("sim: calibration word count: %w", err)
	}
	//mcsdlint:allow simdet -- calibration's whole job is measuring the real engine's wall-clock speed
	wcSec := time.Since(start).Seconds()
	if wcSec <= 0 {
		return cal, fmt.Errorf("sim: calibration measured non-positive time")
	}
	cal.MeasuredWordCountBps = float64(len(text)) / wcSec

	keys := workloads.GenerateKeys(8, 2)
	enc := workloads.GenerateEncryptBytes(sampleBytes, 3, keys, 0.05)
	//mcsdlint:allow simdet -- calibration's whole job is measuring the real engine's wall-clock speed
	start = time.Now()
	if _, err := mapreduce.RunSequential(ctx, cfg, workloads.StringMatchSpec(keys), enc); err != nil {
		return cal, fmt.Errorf("sim: calibration string match: %w", err)
	}
	//mcsdlint:allow simdet -- calibration's whole job is measuring the real engine's wall-clock speed
	smSec := time.Since(start).Seconds()
	if smSec <= 0 {
		return cal, fmt.Errorf("sim: calibration measured non-positive time")
	}
	cal.MeasuredStringMatchBps = float64(len(enc)) / smSec

	cal.Scale = cal.MeasuredWordCountBps / workloads.WordCountCost().MapRateBps
	return cal, nil
}

// Apply returns a copy of the cost model rescaled to this machine.
func (c Calibration) Apply(m workloads.CostModel) workloads.CostModel {
	if c.Scale > 0 {
		m.MapRateBps *= c.Scale
	}
	return m
}
