// Package cluster describes the paper's 5-node experimental testbed
// (Table I): one host computing node, one McSD smart-storage node, and
// three general-purpose computing nodes, joined by a 1 Gbit switch, with
// 2 GB of memory per node.
package cluster

import (
	"fmt"

	"mcsd/internal/memsim"
	"mcsd/internal/metrics"
	"mcsd/internal/netsim"
)

// Role classifies a node.
type Role int

// Node roles in the two-layer architecture.
const (
	RoleHost Role = iota
	RoleSmartStorage
	RoleCompute
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleHost:
		return "host"
	case RoleSmartStorage:
		return "smart-storage"
	case RoleCompute:
		return "compute"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// CPU describes a node's processor.
type CPU struct {
	Model    string
	Cores    int
	ClockGHz float64
	// ArchFactor scales per-clock throughput relative to the Core2
	// microarchitecture (1.0); the Celeron 4xx series does less per clock.
	ArchFactor float64
}

// ReferenceClockGHz is the clock of the reference core used by the
// workload cost models: one core of the SD node's E4400.
const ReferenceClockGHz = 2.0

// CoreSpeed returns the per-core speed relative to the reference core.
func (c CPU) CoreSpeed() float64 {
	arch := c.ArchFactor
	if arch <= 0 {
		arch = 1.0
	}
	return c.ClockGHz / ReferenceClockGHz * arch
}

// Node is one machine of the testbed.
type Node struct {
	Name   string
	Role   Role
	CPU    CPU
	Memory memsim.Config
	// DiskReadBps is the local SATA disk's sequential read bandwidth.
	DiskReadBps float64
}

// NewAccountant returns a fresh memory accountant for the node.
func (n *Node) NewAccountant() *memsim.Accountant {
	return memsim.NewAccountant(n.Memory)
}

// Cluster is the full testbed.
type Cluster struct {
	Nodes   []Node
	Network netsim.Profile
}

// Testbed CPU models of Table I.
var (
	cpuQ9400 = CPU{Model: "Intel Core2 Quad Q9400", Cores: 4, ClockGHz: 2.66, ArchFactor: 1.0}
	cpuE4400 = CPU{Model: "Intel Core2 Duo E4400", Cores: 2, ClockGHz: 2.0, ArchFactor: 1.0}
	cpuC450  = CPU{Model: "Intel Celeron 450", Cores: 1, ClockGHz: 2.2, ArchFactor: 0.85}
)

// sataDiskBps is the ~2009-era SATA sequential read bandwidth used for
// every node's local disk.
const sataDiskBps = 90e6

// TableI returns the paper's 5-node cluster: host (quad), SD node (duo),
// three Celeron compute nodes; 2 GB memory per node; 1000 Mbps network.
func TableI() Cluster {
	mem := memsim.DefaultConfig() // 2 GB, the Table I memory row
	mkNode := func(name string, role Role, cpu CPU) Node {
		return Node{Name: name, Role: role, CPU: cpu, Memory: mem, DiskReadBps: sataDiskBps}
	}
	return Cluster{
		Nodes: []Node{
			mkNode("host", RoleHost, cpuQ9400),
			mkNode("sd", RoleSmartStorage, cpuE4400),
			mkNode("node1", RoleCompute, cpuC450),
			mkNode("node2", RoleCompute, cpuC450),
			mkNode("node3", RoleCompute, cpuC450),
		},
		Network: netsim.ProfileGigabitEthernet,
	}
}

// TraditionalSDNode returns the single-core smart-storage node of the
// paper's comparison scenario (1): same E4400-class core, but only one.
func TraditionalSDNode() Node {
	cpu := cpuE4400
	cpu.Model = "single-core SD (E4400-class, 1 core)"
	cpu.Cores = 1
	return Node{
		Name:        "trad-sd",
		Role:        RoleSmartStorage,
		CPU:         cpu,
		Memory:      memsim.DefaultConfig(),
		DiskReadBps: sataDiskBps,
	}
}

// TableIWithSDs returns the Table I testbed generalized to k smart-storage
// nodes named sd0..sd{k-1} (each the same E4400 duo with 2 GB and a local
// SATA disk), the multi-SD scale-out configuration of §VI. k must be at
// least 1; TableIWithSDs(1) is Table I with the SD node renamed sd0.
func TableIWithSDs(k int) Cluster {
	if k < 1 {
		k = 1
	}
	mem := memsim.DefaultConfig()
	mkNode := func(name string, role Role, cpu CPU) Node {
		return Node{Name: name, Role: role, CPU: cpu, Memory: mem, DiskReadBps: sataDiskBps}
	}
	nodes := []Node{mkNode("host", RoleHost, cpuQ9400)}
	for i := 0; i < k; i++ {
		nodes = append(nodes, mkNode(fmt.Sprintf("sd%d", i), RoleSmartStorage, cpuE4400))
	}
	nodes = append(nodes,
		mkNode("node1", RoleCompute, cpuC450),
		mkNode("node2", RoleCompute, cpuC450),
		mkNode("node3", RoleCompute, cpuC450),
	)
	return Cluster{Nodes: nodes, Network: netsim.ProfileGigabitEthernet}
}

// Host returns the host computing node.
func (c Cluster) Host() *Node { return c.byRole(RoleHost) }

// SD returns the first smart-storage node — the whole fleet in the
// paper's single-SD testbed, the N=1 accessor in a multi-SD one.
func (c Cluster) SD() *Node { return c.byRole(RoleSmartStorage) }

// SDs returns every smart-storage node in declaration order.
func (c Cluster) SDs() []*Node {
	var out []*Node
	for i := range c.Nodes {
		if c.Nodes[i].Role == RoleSmartStorage {
			out = append(out, &c.Nodes[i])
		}
	}
	return out
}

// ComputeNodes returns the general-purpose nodes.
func (c Cluster) ComputeNodes() []*Node {
	var out []*Node
	for i := range c.Nodes {
		if c.Nodes[i].Role == RoleCompute {
			out = append(out, &c.Nodes[i])
		}
	}
	return out
}

func (c Cluster) byRole(r Role) *Node {
	for i := range c.Nodes {
		if c.Nodes[i].Role == r {
			return &c.Nodes[i]
		}
	}
	return nil
}

// TableIReport renders the cluster configuration as the paper's Table I.
func (c Cluster) TableIReport() *metrics.Table {
	t := metrics.NewTable("Table I: configuration of the 5-node cluster",
		"Node", "Role", "CPU", "Cores", "Clock(GHz)", "Memory(GB)", "Network")
	for _, n := range c.Nodes {
		t.AddRow(n.Name, n.Role.String(), n.CPU.Model, n.CPU.Cores, n.CPU.ClockGHz,
			float64(n.Memory.CapacityBytes)/(1<<30), c.Network.Name)
	}
	return t
}
