package cluster

import (
	"fmt"
	"strings"
	"testing"
)

func TestTableIShape(t *testing.T) {
	c := TableI()
	if len(c.Nodes) != 5 {
		t.Fatalf("cluster has %d nodes, want 5", len(c.Nodes))
	}
	host, sd := c.Host(), c.SD()
	if host == nil || sd == nil {
		t.Fatal("missing host or SD node")
	}
	if host.CPU.Cores != 4 || host.CPU.ClockGHz != 2.66 {
		t.Fatalf("host CPU = %+v, want quad 2.66 GHz Q9400", host.CPU)
	}
	if sd.CPU.Cores != 2 || sd.CPU.ClockGHz != 2.0 {
		t.Fatalf("SD CPU = %+v, want duo 2.0 GHz E4400", sd.CPU)
	}
	if got := len(c.ComputeNodes()); got != 3 {
		t.Fatalf("%d compute nodes, want 3", got)
	}
	for _, n := range c.Nodes {
		if n.Memory.CapacityBytes != 2<<30 {
			t.Fatalf("node %s memory %d, want 2 GB", n.Name, n.Memory.CapacityBytes)
		}
	}
	if c.Network.Name != "1GbE" {
		t.Fatalf("network = %s, want 1GbE", c.Network.Name)
	}
}

func TestCoreSpeedScaling(t *testing.T) {
	c := TableI()
	hostSpeed := c.Host().CPU.CoreSpeed()
	sdSpeed := c.SD().CPU.CoreSpeed()
	if sdSpeed != 1.0 {
		t.Fatalf("SD core speed = %v, want reference 1.0", sdSpeed)
	}
	if hostSpeed <= sdSpeed {
		t.Fatalf("host core (%v) should be faster than SD core (%v)", hostSpeed, sdSpeed)
	}
	celeron := c.ComputeNodes()[0].CPU.CoreSpeed()
	if celeron >= hostSpeed {
		t.Fatalf("Celeron per-core speed %v should trail the Q9400 %v", celeron, hostSpeed)
	}
}

func TestCoreSpeedArchFactorFallback(t *testing.T) {
	cpu := CPU{ClockGHz: 2.0}
	if cpu.CoreSpeed() != 1.0 {
		t.Fatalf("zero ArchFactor: speed = %v, want fallback 1.0", cpu.CoreSpeed())
	}
}

func TestTraditionalSDNode(t *testing.T) {
	n := TraditionalSDNode()
	if n.CPU.Cores != 1 {
		t.Fatalf("traditional SD has %d cores, want 1", n.CPU.Cores)
	}
	if n.CPU.CoreSpeed() != 1.0 {
		t.Fatalf("traditional SD core speed = %v, want 1.0", n.CPU.CoreSpeed())
	}
	if n.Role != RoleSmartStorage {
		t.Fatalf("role = %v", n.Role)
	}
}

func TestNewAccountantIndependent(t *testing.T) {
	c := TableI()
	a1 := c.SD().NewAccountant()
	a2 := c.SD().NewAccountant()
	if err := a1.Reserve(100); err != nil {
		t.Fatal(err)
	}
	if a2.Footprint() != 0 {
		t.Fatal("accountants share state")
	}
}

func TestRoleString(t *testing.T) {
	if RoleHost.String() != "host" || RoleSmartStorage.String() != "smart-storage" ||
		RoleCompute.String() != "compute" {
		t.Fatal("role names wrong")
	}
	if !strings.Contains(Role(42).String(), "42") {
		t.Fatal("unknown role should include its number")
	}
}

func TestTableIReport(t *testing.T) {
	rep := TableI().TableIReport()
	out := rep.String()
	for _, want := range []string{"Q9400", "E4400", "Celeron", "1GbE", "2.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I report missing %q:\n%s", want, out)
		}
	}
	if rep.NumRows() != 5 {
		t.Fatalf("report has %d rows, want 5", rep.NumRows())
	}
}

func TestTableIWithSDs(t *testing.T) {
	for _, k := range []int{1, 2, 4, 8} {
		c := TableIWithSDs(k)
		sds := c.SDs()
		if len(sds) != k {
			t.Fatalf("k=%d: %d SD nodes", k, len(sds))
		}
		for i, sd := range sds {
			if want := fmt.Sprintf("sd%d", i); sd.Name != want {
				t.Fatalf("k=%d: SD %d named %q, want %q", k, i, sd.Name, want)
			}
			if sd.CPU.Model != cpuE4400.Model || sd.CPU.Cores != 2 {
				t.Fatalf("k=%d: SD %d is not an E4400 duo: %+v", k, i, sd.CPU)
			}
		}
		// SD() stays the N=1-compatible accessor: the first fleet node.
		if c.SD() != sds[0] {
			t.Fatalf("k=%d: SD() != SDs()[0]", k)
		}
		if c.Host() == nil || len(c.ComputeNodes()) != 3 {
			t.Fatalf("k=%d: host/compute layout broken", k)
		}
		if len(c.Nodes) != 1+k+3 {
			t.Fatalf("k=%d: %d nodes", k, len(c.Nodes))
		}
	}
	if got := len(TableIWithSDs(0).SDs()); got != 1 {
		t.Fatalf("k=0 should clamp to 1, got %d SDs", got)
	}
	// Table I itself is the k=1 layout, modulo the node name.
	a, b := TableI(), TableIWithSDs(1)
	if a.SD().CPU != b.SD().CPU || a.SD().Memory != b.SD().Memory || a.SD().DiskReadBps != b.SD().DiskReadBps {
		t.Fatal("TableIWithSDs(1) SD differs from Table I's")
	}
}
