// Package memsim models node memory for the McSD reproduction.
//
// The paper's central performance effects are memory effects:
//
//   - Native Phoenix "does not support any application whose required data
//     size exceeds approximately 60% of a computing node's memory size"
//     (§IV-B) — the runtime keeps both the input and the emitted
//     intermediate pairs in memory, so the footprint is 2–3x the input, and
//     past physical memory + swap the run dies (the paper's "memory
//     overflow" above 1.5 GB inputs).
//   - Between "fits in RAM" and "overflows swap" lies thrashing: the
//     non-partitioned runs in Figs. 8–9 blow up 6–17x once the footprint
//     exceeds RAM.
//
// Accountant reproduces both: it admits reservations up to RAM+swap and
// fails them beyond (the functional OOM the real engine surfaces), and it
// exposes a thrash Multiplier used by the discrete-event simulator to
// stretch compute time once the footprint spills past usable RAM.
package memsim

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Config describes one node's memory system.
type Config struct {
	// CapacityBytes is physical RAM (Table I: 2 GB per node).
	CapacityBytes int64
	// UsableFraction is the share of RAM available to the application
	// after the OS, file cache floor, and runtime take theirs.
	UsableFraction float64
	// SwapBytes is swap space; reservations beyond usable RAM spill here.
	SwapBytes int64
	// ThrashCoeff and ThrashExponent shape the slowdown once the footprint
	// exceeds usable RAM: mult = 1 + coeff*(ratio-1)^exponent. The defaults
	// reproduce the paper's ~6x at 1.5x overcommit and ~17x at ~1.9x.
	ThrashCoeff    float64
	ThrashExponent float64
	// SwapPasses calibrates the additive swap-I/O model used by the
	// discrete-event simulator (SwapSeconds): how many times, on average,
	// each excess byte crosses the backing store over a run. Zero means 10.
	SwapPasses float64
}

// DefaultConfig returns the Table I node memory model: 2 GB RAM, 90%
// usable, 2 GB swap, quadratic thrash curve.
func DefaultConfig() Config {
	return Config{
		CapacityBytes:  2 << 30,
		UsableFraction: 0.9,
		SwapBytes:      2 << 30,
		ThrashCoeff:    20,
		ThrashExponent: 2,
	}
}

// Usable returns the bytes of RAM the application can use without paging.
func (c Config) Usable() int64 {
	f := c.UsableFraction
	if f <= 0 || f > 1 {
		f = 0.9
	}
	return int64(float64(c.CapacityBytes) * f)
}

// Limit returns the hard reservation limit (usable RAM + swap).
func (c Config) Limit() int64 { return c.Usable() + c.SwapBytes }

// MultiplierFor returns the thrash multiplier for a given footprint: 1.0
// while the footprint fits in usable RAM, and a superlinear penalty beyond.
func (c Config) MultiplierFor(footprint int64) float64 {
	usable := c.Usable()
	if usable <= 0 || footprint <= usable {
		return 1.0
	}
	ratio := float64(footprint) / float64(usable)
	coeff, exp := c.ThrashCoeff, c.ThrashExponent
	if coeff <= 0 {
		coeff = 20
	}
	if exp <= 0 {
		exp = 2
	}
	return 1 + coeff*math.Pow(ratio-1, exp)
}

// SwapSeconds models the swap-I/O cost of running with a resident set
// larger than usable RAM against a backing store of the given bandwidth.
// The excess pages are written out and faulted back repeatedly as the
// computation sweeps its data; the pass count grows with the overcommit
// ratio, which makes the penalty quadratic in the excess:
//
//	seconds = passes * excess^2 / (usable * backingBps)
//
// This additive form (rather than a pure multiplier) captures why the
// paper's host-only runs — swapping against a disk busy with NFS service —
// blow up so much harder than the SD-local runs (Fig. 9).
func (c Config) SwapSeconds(resident int64, backingBps float64) float64 {
	usable := c.Usable()
	excess := resident - usable
	if excess <= 0 || usable <= 0 || backingBps <= 0 {
		return 0
	}
	passes := c.SwapPasses
	if passes <= 0 {
		passes = 10
	}
	e := float64(excess)
	return passes * e * e / (float64(usable) * backingBps)
}

// ErrOutOfMemory reports a reservation that exceeds RAM+swap — the
// "memory overflow" that kills native Phoenix above 1.5 GB inputs.
var ErrOutOfMemory = errors.New("memsim: out of memory (exceeds RAM+swap)")

// Accountant tracks live reservations against a Config. The zero value is
// unusable; call NewAccountant. Safe for concurrent use.
type Accountant struct {
	cfg  Config
	mu   sync.Mutex
	used int64
	peak int64
}

// NewAccountant returns an accountant for the given memory configuration.
func NewAccountant(cfg Config) *Accountant {
	return &Accountant{cfg: cfg}
}

// Config returns the memory configuration.
func (a *Accountant) Config() Config { return a.cfg }

// Reserve admits n bytes or fails with ErrOutOfMemory, leaving usage
// unchanged on failure. Negative n is rejected.
func (a *Accountant) Reserve(n int64) error {
	if n < 0 {
		return fmt.Errorf("memsim: negative reservation %d", n)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.used+n > a.cfg.Limit() {
		return fmt.Errorf("%w: used %d + request %d > limit %d",
			ErrOutOfMemory, a.used, n, a.cfg.Limit())
	}
	a.used += n
	if a.used > a.peak {
		a.peak = a.used
	}
	return nil
}

// Release returns n bytes. Releasing more than is reserved clamps to zero
// rather than going negative (an invariant checked by tests).
func (a *Accountant) Release(n int64) {
	if n < 0 {
		return
	}
	a.mu.Lock()
	a.used -= n
	if a.used < 0 {
		a.used = 0
	}
	a.mu.Unlock()
}

// Footprint returns the live reservation in bytes.
func (a *Accountant) Footprint() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// Peak returns the high-water mark of the reservation.
func (a *Accountant) Peak() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// Multiplier returns the thrash multiplier at the current footprint.
func (a *Accountant) Multiplier() float64 {
	return a.cfg.MultiplierFor(a.Footprint())
}

// Reset clears usage and the peak.
func (a *Accountant) Reset() {
	a.mu.Lock()
	a.used, a.peak = 0, 0
	a.mu.Unlock()
}

// Reservation is a convenience handle that releases exactly what it
// reserved, once.
type Reservation struct {
	a    *Accountant
	n    int64
	once sync.Once
}

// ReserveHandle reserves n bytes and returns a handle whose Release is
// idempotent.
func (a *Accountant) ReserveHandle(n int64) (*Reservation, error) {
	if err := a.Reserve(n); err != nil {
		return nil, err
	}
	return &Reservation{a: a, n: n}, nil
}

// Release frees the reservation; extra calls are no-ops.
func (r *Reservation) Release() {
	r.once.Do(func() { r.a.Release(r.n) })
}

// Bytes returns the size of the reservation.
func (r *Reservation) Bytes() int64 { return r.n }
