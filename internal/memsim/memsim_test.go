package memsim

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestConfigUsableAndLimit(t *testing.T) {
	cfg := Config{CapacityBytes: 1000, UsableFraction: 0.9, SwapBytes: 500}
	if got := cfg.Usable(); got != 900 {
		t.Fatalf("Usable = %d, want 900", got)
	}
	if got := cfg.Limit(); got != 1400 {
		t.Fatalf("Limit = %d, want 1400", got)
	}
}

func TestConfigUsableFractionFallback(t *testing.T) {
	for _, f := range []float64{0, -1, 1.5} {
		cfg := Config{CapacityBytes: 1000, UsableFraction: f}
		if got := cfg.Usable(); got != 900 {
			t.Fatalf("UsableFraction %v: Usable = %d, want fallback 900", f, got)
		}
	}
}

func TestMultiplierInsideRAMIsOne(t *testing.T) {
	cfg := DefaultConfig()
	for _, fp := range []int64{0, 1 << 20, cfg.Usable()} {
		if m := cfg.MultiplierFor(fp); m != 1.0 {
			t.Fatalf("MultiplierFor(%d) = %v, want 1.0", fp, m)
		}
	}
}

func TestMultiplierMatchesPaperBlowups(t *testing.T) {
	cfg := DefaultConfig()
	usable := float64(cfg.Usable())
	// Paper: ~6x once the footprint is ~1.5x RAM, ~17x near ~1.9x (the
	// non-partitioned WC runs of Fig. 9 at 1 GB / 1.25 GB inputs with a 3x
	// memory footprint).
	at := func(ratio float64) float64 { return cfg.MultiplierFor(int64(usable * ratio)) }
	if m := at(1.5); m < 4 || m > 8 {
		t.Fatalf("multiplier at 1.5x = %.2f, want ~6", m)
	}
	if m := at(1.9); m < 12 || m > 22 {
		t.Fatalf("multiplier at 1.9x = %.2f, want ~17", m)
	}
}

func TestMultiplierMonotonic(t *testing.T) {
	cfg := DefaultConfig()
	prev := 0.0
	for fp := int64(0); fp < cfg.Limit(); fp += cfg.Limit() / 50 {
		m := cfg.MultiplierFor(fp)
		if m < prev {
			t.Fatalf("multiplier decreased at footprint %d: %v < %v", fp, m, prev)
		}
		prev = m
	}
}

func TestSwapSecondsZeroInsideRAM(t *testing.T) {
	cfg := DefaultConfig()
	for _, resident := range []int64{0, 1 << 20, cfg.Usable()} {
		if s := cfg.SwapSeconds(resident, 90e6); s != 0 {
			t.Fatalf("SwapSeconds(%d) = %v, want 0 inside RAM", resident, s)
		}
	}
}

func TestSwapSecondsQuadraticInExcess(t *testing.T) {
	cfg := DefaultConfig()
	usable := cfg.Usable()
	s1 := cfg.SwapSeconds(usable+1<<28, 90e6) // 256 MB excess
	s2 := cfg.SwapSeconds(usable+1<<29, 90e6) // 512 MB excess
	if s1 <= 0 {
		t.Fatal("overcommit produced no swap cost")
	}
	ratio := s2 / s1
	if ratio < 3.9 || ratio > 4.1 {
		t.Fatalf("doubling excess scaled cost by %.2f, want 4 (quadratic)", ratio)
	}
}

func TestSwapSecondsScalesInverselyWithBacking(t *testing.T) {
	cfg := DefaultConfig()
	resident := cfg.Usable() + 1<<29
	fast := cfg.SwapSeconds(resident, 180e6)
	slow := cfg.SwapSeconds(resident, 90e6)
	if slow <= fast {
		t.Fatal("slower backing store must cost more")
	}
	if r := slow / fast; r < 1.9 || r > 2.1 {
		t.Fatalf("half the bandwidth scaled cost by %.2f, want 2", r)
	}
}

func TestSwapSecondsDegenerateInputs(t *testing.T) {
	cfg := DefaultConfig()
	if s := cfg.SwapSeconds(cfg.Usable()+1<<20, 0); s != 0 {
		t.Fatalf("zero backing bandwidth = %v, want 0 (disabled)", s)
	}
	zero := Config{}
	if s := zero.SwapSeconds(100, 90e6); s != 0 {
		t.Fatalf("zero-capacity config = %v, want 0", s)
	}
}

func TestSwapSecondsPaperAnchors(t *testing.T) {
	// The Fig. 9 anchor: WC at 1.25 GB (3.75 GB resident) on the SD node
	// swapping to a 90 MB/s SATA disk costs ~235 s — the number that makes
	// the non-partitioned run ~7-8x slower than McSD.
	cfg := DefaultConfig()
	s := cfg.SwapSeconds(int64(3.75*float64(1<<30)), 90e6)
	if s < 180 || s < 0 || s > 300 {
		t.Fatalf("swap at 3.75 GB resident = %.0fs, want ~235s", s)
	}
}

func TestReserveReleaseAccounting(t *testing.T) {
	a := NewAccountant(Config{CapacityBytes: 1000, UsableFraction: 1.0, SwapBytes: 0})
	if err := a.Reserve(600); err != nil {
		t.Fatal(err)
	}
	if err := a.Reserve(400); err != nil {
		t.Fatal(err)
	}
	if err := a.Reserve(1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("over-limit reserve err = %v, want ErrOutOfMemory", err)
	}
	if a.Footprint() != 1000 {
		t.Fatalf("failed reserve changed footprint: %d", a.Footprint())
	}
	a.Release(500)
	if a.Footprint() != 500 {
		t.Fatalf("footprint after release = %d, want 500", a.Footprint())
	}
	if a.Peak() != 1000 {
		t.Fatalf("peak = %d, want 1000", a.Peak())
	}
}

func TestReserveNegativeRejected(t *testing.T) {
	a := NewAccountant(DefaultConfig())
	if err := a.Reserve(-1); err == nil {
		t.Fatal("negative reservation accepted")
	}
}

func TestReleaseClampsAtZero(t *testing.T) {
	a := NewAccountant(DefaultConfig())
	a.Release(1 << 30)
	if a.Footprint() != 0 {
		t.Fatalf("footprint went negative: %d", a.Footprint())
	}
	a.Release(-5)
	if a.Footprint() != 0 {
		t.Fatalf("negative release changed footprint: %d", a.Footprint())
	}
}

func TestPhoenixMemoryWall(t *testing.T) {
	// WC has a ~3x input footprint (§V-C). With 2 GB RAM + 2 GB swap, a
	// 1 GB input (3 GB footprint) must be admitted but thrash, and a
	// 1.5 GB input (4.5 GB footprint) must OOM — matching the paper's
	// "cannot support … larger than 1.5G".
	a := NewAccountant(DefaultConfig())
	gb := int64(1) << 30
	if err := a.Reserve(3 * gb); err != nil {
		t.Fatalf("3 GB footprint should fit in RAM+swap: %v", err)
	}
	if m := a.Multiplier(); m <= 1.0 {
		t.Fatalf("3 GB footprint on 2 GB node should thrash, multiplier = %v", m)
	}
	a.Release(3 * gb)
	if err := a.Reserve(4*gb + gb/2); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("4.5 GB footprint err = %v, want ErrOutOfMemory", err)
	}
}

func TestReservationHandleIdempotent(t *testing.T) {
	a := NewAccountant(Config{CapacityBytes: 1000, UsableFraction: 1.0})
	r, err := a.ReserveHandle(400)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bytes() != 400 {
		t.Fatalf("Bytes = %d, want 400", r.Bytes())
	}
	r.Release()
	r.Release()
	if a.Footprint() != 0 {
		t.Fatalf("double release freed twice: footprint %d", a.Footprint())
	}
}

func TestReserveHandleFailureLeavesNoUsage(t *testing.T) {
	a := NewAccountant(Config{CapacityBytes: 100, UsableFraction: 1.0})
	if _, err := a.ReserveHandle(200); err == nil {
		t.Fatal("oversized handle accepted")
	}
	if a.Footprint() != 0 {
		t.Fatalf("failed handle left footprint %d", a.Footprint())
	}
}

func TestAccountantConcurrentReserveRelease(t *testing.T) {
	a := NewAccountant(Config{CapacityBytes: 1 << 30, UsableFraction: 1.0})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				if err := a.Reserve(1024); err == nil {
					a.Release(1024)
				}
			}
		}()
	}
	wg.Wait()
	if a.Footprint() != 0 {
		t.Fatalf("balanced reserve/release left footprint %d", a.Footprint())
	}
}

// Property: for any sequence of reserve/release pairs, the footprint never
// exceeds the limit and never goes negative.
func TestAccountingInvariantsProperty(t *testing.T) {
	prop := func(ops []int32) bool {
		cfg := Config{CapacityBytes: 1 << 20, UsableFraction: 1.0, SwapBytes: 1 << 19}
		a := NewAccountant(cfg)
		for _, op := range ops {
			n := int64(op)
			if n >= 0 {
				_ = a.Reserve(n % (1 << 18))
			} else {
				a.Release((-n) % (1 << 18))
			}
			fp := a.Footprint()
			if fp < 0 || fp > cfg.Limit() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: peak is always >= footprint and never decreases under load.
func TestPeakInvariantProperty(t *testing.T) {
	prop := func(sizes []uint16) bool {
		a := NewAccountant(Config{CapacityBytes: 1 << 30, UsableFraction: 1.0})
		maxSeen := int64(0)
		for _, s := range sizes {
			if err := a.Reserve(int64(s)); err != nil {
				return false
			}
			if fp := a.Footprint(); fp > maxSeen {
				maxSeen = fp
			}
			if a.Peak() < a.Footprint() {
				return false
			}
		}
		return a.Peak() == maxSeen
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
