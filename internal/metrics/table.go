package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Table renders aligned plain-text tables in the style of the paper's
// Table I and the per-figure data dumps. It is not safe for concurrent use.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; each cell is rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = formatDuration(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows reports how many rows have been added.
func (t *Table) NumRows() int { return len(t.rows) }

// WriteTo renders the table. It satisfies io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.WriteTo(&b) //nolint:errcheck // strings.Builder cannot fail
	return b.String()
}

func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fmin", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return d.String()
	}
}

// Series is one named line of a figure: x values (e.g. data sizes) and y
// values (e.g. elapsed seconds or speedups).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a set of series sharing an x axis, mirroring one sub-figure of
// the paper (e.g. Fig. 8(b)).
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// Line adds a named series and returns it for appending points.
func (f *Figure) Line(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Add appends one (x, y) point to the series.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// At returns the y value at the given x, or (0, false) when absent.
func (s *Series) At(x float64) (float64, bool) {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// WriteTo renders the figure as an aligned data table, one column per
// series, one row per x value.
func (f *Figure) WriteTo(w io.Writer) (int64, error) {
	headers := []string{f.XLabel}
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	t := NewTable(fmt.Sprintf("%s  [y: %s]", f.Title, f.YLabel), headers...)
	for _, x := range f.xs() {
		row := make([]any, 0, len(f.Series)+1)
		row = append(row, fmt.Sprintf("%g", x))
		for _, s := range f.Series {
			if y, ok := s.At(x); ok {
				row = append(row, y)
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t.WriteTo(w)
}

// String renders the figure to a string.
func (f *Figure) String() string {
	var b strings.Builder
	f.WriteTo(&b) //nolint:errcheck // strings.Builder cannot fail
	return b.String()
}

// CSV renders the figure as comma-separated values: a header row with the
// x label and series names, then one row per x value. Missing points are
// empty cells. Cells containing commas or quotes are quoted.
func (f *Figure) CSV() string {
	var b strings.Builder
	cells := []string{f.XLabel}
	for _, s := range f.Series {
		cells = append(cells, s.Name)
	}
	writeCSVRow(&b, cells)
	for _, x := range f.xs() {
		row := []string{strconv.FormatFloat(x, 'g', -1, 64)}
		for _, s := range f.Series {
			if y, ok := s.At(x); ok {
				row = append(row, strconv.FormatFloat(y, 'g', -1, 64))
			} else {
				row = append(row, "")
			}
		}
		writeCSVRow(&b, row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header + rows).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.headers)
	for _, row := range t.rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// xs returns the union of all series x values in ascending order.
func (f *Figure) xs() []float64 {
	seen := make(map[float64]bool)
	var xs []float64
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs
}
