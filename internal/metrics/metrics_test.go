package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d, want 0", c.Value())
	}
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	c.Add(-2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter after negative add = %d, want 3", got)
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("counter after reset = %d, want 0", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
}

func TestGaugePeakTracking(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Set(3)
	if g.Value() != 3 || g.Peak() != 10 {
		t.Fatalf("gauge = (%d, peak %d), want (3, peak 10)", g.Value(), g.Peak())
	}
	g.Add(20)
	if g.Value() != 23 || g.Peak() != 23 {
		t.Fatalf("gauge = (%d, peak %d), want (23, peak 23)", g.Value(), g.Peak())
	}
	g.Add(-5)
	if g.Value() != 18 || g.Peak() != 23 {
		t.Fatalf("gauge = (%d, peak %d), want (18, peak 23)", g.Value(), g.Peak())
	}
	g.Reset()
	if g.Value() != 0 || g.Peak() != 0 {
		t.Fatalf("gauge after reset = (%d, peak %d), want zeros", g.Value(), g.Peak())
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 0 {
		t.Fatalf("balanced adds left gauge at %d, want 0", g.Value())
	}
	if g.Peak() < 1 {
		t.Fatalf("peak = %d, want >= 1", g.Peak())
	}
}

func TestTimerStats(t *testing.T) {
	var tm Timer
	tm.Observe(10 * time.Millisecond)
	tm.Observe(30 * time.Millisecond)
	tm.Observe(20 * time.Millisecond)
	if tm.Count() != 3 {
		t.Fatalf("count = %d, want 3", tm.Count())
	}
	if tm.Total() != 60*time.Millisecond {
		t.Fatalf("total = %v, want 60ms", tm.Total())
	}
	if tm.Mean() != 20*time.Millisecond {
		t.Fatalf("mean = %v, want 20ms", tm.Mean())
	}
	if tm.Min() != 10*time.Millisecond || tm.Max() != 30*time.Millisecond {
		t.Fatalf("min/max = %v/%v, want 10ms/30ms", tm.Min(), tm.Max())
	}
}

func TestTimerEmpty(t *testing.T) {
	var tm Timer
	if tm.Mean() != 0 || tm.Min() != 0 || tm.Max() != 0 {
		t.Fatal("empty timer should report zeros")
	}
}

func TestTimerTime(t *testing.T) {
	var tm Timer
	tm.Time(func() { time.Sleep(time.Millisecond) })
	if tm.Count() != 1 {
		t.Fatalf("count = %d, want 1", tm.Count())
	}
	if tm.Total() < time.Millisecond {
		t.Fatalf("total = %v, want >= 1ms", tm.Total())
	}
}

func TestRegistryReturnsSameInstance(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a")
	c1.Inc()
	if got := r.Counter("a").Value(); got != 1 {
		t.Fatalf("second lookup saw %d, want 1", got)
	}
	if r.Counter("b") == c1 {
		t.Fatal("different names must give different counters")
	}
	g := r.Gauge("g")
	g.Set(7)
	if r.Gauge("g").Value() != 7 {
		t.Fatal("gauge lookup not stable")
	}
	tm := r.Timer("t")
	tm.Observe(time.Second)
	if r.Timer("t").Count() != 1 {
		t.Fatal("timer lookup not stable")
	}
}

func TestRegistrySnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz").Inc()
	r.Counter("aa").Inc()
	r.Gauge("mid").Set(5)
	lines := r.Snapshot()
	if len(lines) != 3 {
		t.Fatalf("snapshot has %d lines, want 3", len(lines))
	}
	for i := 1; i < len(lines); i++ {
		if lines[i-1] > lines[i] {
			t.Fatalf("snapshot not sorted: %q > %q", lines[i-1], lines[i])
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Cfg", "Node", "Cores", "Speed")
	tb.AddRow("host", 4, 2.66)
	tb.AddRow("sd", 2, 2.0)
	out := tb.String()
	if !strings.Contains(out, "Cfg") || !strings.Contains(out, "host") {
		t.Fatalf("table missing content:\n%s", out)
	}
	if !strings.Contains(out, "2.66") {
		t.Fatalf("float not rendered with 2 decimals:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", tb.NumRows())
	}
}

func TestTableDurationFormatting(t *testing.T) {
	tb := NewTable("", "d")
	tb.AddRow(90 * time.Second)
	tb.AddRow(1500 * time.Millisecond)
	tb.AddRow(2500 * time.Microsecond)
	tb.AddRow(300 * time.Microsecond)
	out := tb.String()
	for _, want := range []string{"1.5min", "1.50s", "2.50ms", "300µs"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFigureSeriesAndLookup(t *testing.T) {
	f := NewFigure("Fig", "size", "sec")
	s := f.Line("duo")
	s.Add(500, 12.5)
	s.Add(1000, 25.0)
	if y, ok := s.At(1000); !ok || y != 25.0 {
		t.Fatalf("At(1000) = (%v,%v), want (25,true)", y, ok)
	}
	if _, ok := s.At(123); ok {
		t.Fatal("At on absent x should report false")
	}
}

func TestFigureRendersUnionOfXs(t *testing.T) {
	f := NewFigure("Fig", "size", "sec")
	a := f.Line("a")
	a.Add(2, 1)
	a.Add(1, 2)
	b := f.Line("b")
	b.Add(3, 9)
	out := f.String()
	// x column should be sorted 1,2,3 and missing cells rendered as "-".
	i1 := strings.Index(out, "\n1 ")
	i2 := strings.Index(out, "\n2 ")
	i3 := strings.Index(out, "\n3 ")
	if i1 < 0 || i2 < 0 || i3 < 0 || !(i1 < i2 && i2 < i3) {
		t.Fatalf("x values not sorted in output:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("missing cell not rendered as '-':\n%s", out)
	}
}

func TestFigureCSV(t *testing.T) {
	f := NewFigure("Fig", "size", "sec")
	a := f.Line("plain")
	a.Add(1, 2.5)
	a.Add(2, 3)
	b := f.Line(`needs,"quoting"`)
	b.Add(1, 9)
	csv := f.CSV()
	want := "size,plain,\"needs,\"\"quoting\"\"\"\n1,2.5,9\n2,3,\n"
	if csv != want {
		t.Fatalf("CSV =\n%q\nwant\n%q", csv, want)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("ignored", "a", "b")
	tb.AddRow("x,y", 2)
	csv := tb.CSV()
	want := "a,b\n\"x,y\",2\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestPhaseTable(t *testing.T) {
	tbl := PhaseTable("engine phases",
		[]Phase{
			{Name: "map", D: 300 * time.Millisecond},
			{Name: "reduce", D: 100 * time.Millisecond},
		},
		Phase{Name: "shuffle", D: 40 * time.Millisecond},
	)
	// 2 phases + 1 contained sub-phase + total row.
	if tbl.NumRows() != 4 {
		t.Fatalf("NumRows = %d, want 4", tbl.NumRows())
	}
	s := tbl.String()
	for _, want := range []string{"map", "75%", "(shuffle)", "total", "100%"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
}
