// Package metrics provides lightweight counters, timers, and the tabular
// reporters used by the McSD benchmark harness to print paper-style rows
// and series.
//
// All types are safe for concurrent use unless noted otherwise.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing (or decreasing) 64-bit counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n may be negative).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current value.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge holds an instantaneous 64-bit value and tracks its high-water mark.
type Gauge struct {
	mu   sync.Mutex
	v    int64
	peak int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	g.mu.Lock()
	g.v = v
	if v > g.peak {
		g.peak = v
	}
	g.mu.Unlock()
}

// Add adjusts the gauge by delta and returns the new value.
func (g *Gauge) Add(delta int64) int64 {
	g.mu.Lock()
	g.v += delta
	if g.v > g.peak {
		g.peak = g.v
	}
	v := g.v
	g.mu.Unlock()
	return v
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Peak returns the highest value the gauge has held since creation or the
// last Reset.
func (g *Gauge) Peak() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.peak
}

// Reset zeroes both the value and the peak.
func (g *Gauge) Reset() {
	g.mu.Lock()
	g.v, g.peak = 0, 0
	g.mu.Unlock()
}

// Timer accumulates durations of repeated events and exposes count, total,
// mean, min and max.
type Timer struct {
	mu    sync.Mutex
	n     int64
	total time.Duration
	min   time.Duration
	max   time.Duration
}

// Observe records one event duration.
func (t *Timer) Observe(d time.Duration) {
	t.mu.Lock()
	if t.n == 0 || d < t.min {
		t.min = d
	}
	if d > t.max {
		t.max = d
	}
	t.n++
	t.total += d
	t.mu.Unlock()
}

// Time runs f and records its duration.
func (t *Timer) Time(f func()) {
	start := time.Now()
	f()
	t.Observe(time.Since(start))
}

// Count returns the number of observations.
func (t *Timer) Count() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Total returns the sum of all observed durations.
func (t *Timer) Total() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Mean returns the average observed duration, or zero with no observations.
func (t *Timer) Mean() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n == 0 {
		return 0
	}
	return t.total / time.Duration(t.n)
}

// Min returns the shortest observation, or zero with no observations.
func (t *Timer) Min() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.min
}

// Max returns the longest observation.
func (t *Timer) Max() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.max
}

// Registry is a named collection of counters, gauges and timers. The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
	}
}

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the timer with the given name, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Snapshot returns a sorted, human-readable dump of every metric.
func (r *Registry) Snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %-30s %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge   %-30s %d (peak %d)", name, g.Value(), g.Peak()))
	}
	for name, t := range r.timers {
		lines = append(lines, fmt.Sprintf("timer   %-30s n=%d total=%v mean=%v", name, t.Count(), t.Total(), t.Mean()))
	}
	sort.Strings(lines)
	return lines
}
