package metrics

import (
	"fmt"
	"time"
)

// Phase is one named slice of a run's time budget — e.g. the MapReduce
// engine's split/map/shuffle/reduce/merge breakdown.
type Phase struct {
	Name string
	D    time.Duration
}

// PhaseTable renders a phase-time breakdown with each phase's share of the
// total. Sub-phase entries (a phase contained in another, like the shuffle
// inside the reduce wall clock) can be listed with contained so they are
// shown but excluded from the total and the percentages.
func PhaseTable(title string, phases []Phase, contained ...Phase) *Table {
	var total time.Duration
	for _, p := range phases {
		total += p.D
	}
	t := NewTable(title, "phase", "time", "share")
	for _, p := range phases {
		t.AddRow(p.Name, p.D, percentOf(p.D, total))
	}
	for _, p := range contained {
		t.AddRow("  ("+p.Name+")", p.D, "-")
	}
	t.AddRow("total", total, percentOf(total, total))
	return t
}

func percentOf(d, total time.Duration) string {
	if total <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(d)/float64(total))
}
