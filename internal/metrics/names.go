package metrics

// The metric name registry. Every counter, gauge and timer key used
// anywhere in the tree is declared here; the metrickey analyzer
// (internal/lint) rejects any Registry.Counter/Gauge/Timer call whose
// name is not one of these constants, so a typo'd key can never create a
// silently-empty metric. Dynamic families (one counter per NFS op, one
// timer per module) concatenate a *Prefix constant with a runtime suffix;
// metrickey requires the prefix constant and leaves the suffix free.
//
// Naming scheme: <layer>.<subsystem?>.<what>, snake_case leaves, "." as
// the hierarchy separator.
const (
	// smartFAM — wire format and client side.
	SmartfamCorruptRecords      = "smartfam.corrupt_records"       // CRC/parse failures skipped while scanning a log
	SmartfamRespondErrors       = "smartfam.respond_errors"        // response appends that exhausted their retries
	SmartfamClientAppendRetries = "smartfam.client.append_retries" // host-side request-append retries

	// smartFAM — push-mode invocation front door ("fam v2"): server-push
	// change notification plus group-commit batching on both log directions.
	FamPushActive   = "smartfam.fam.push_active"        // gauge: 1 while a live notify stream feeds dispatch, 0 in degraded polling
	FamPushEvents   = "smartfam.fam.push_events"        // notify-stream events that triggered a dispatch/scan
	FamDegraded     = "smartfam.fam.degraded"           // notify-stream losses that dropped a consumer back to polling
	FamBatchFlushes = "smartfam.fam.batch_flushes"      // host-side request batches flushed (one share append each)
	FamBatchRecords = "smartfam.fam.batch_records"      // request records carried inside those batches
	FamBatchBytes   = "smartfam.fam.batch_bytes"        // request bytes carried inside those batches
	FamRespFlushes  = "smartfam.fam.resp_batch_flushes" // daemon-side response batches flushed
	FamRespRecords  = "smartfam.fam.resp_batch_records" // response records carried inside those batches

	// smartFAM — daemon (SD node) side.
	DaemonRequests      = "smartfam.daemon.requests"       // request records accepted
	DaemonInvoke        = "smartfam.daemon.invoke"         // module execution timer
	DaemonErrors        = "smartfam.daemon.errors"         // module executions that returned an error
	DaemonAborted       = "smartfam.daemon.aborted"        // executions aborted by daemon shutdown
	DaemonDeduped       = "smartfam.daemon.deduped"        // host retries answered from the response cache
	DaemonRecovered     = "smartfam.daemon.recovered"      // journal replays (cached response or re-run) after restart
	DaemonIntentsLost   = "smartfam.daemon.intents_lost"   // journaled intents whose request record vanished
	DaemonParseErrors   = "smartfam.daemon.parse_errors"   // log scans that failed outright
	DaemonJournalErrors = "smartfam.daemon.journal_errors" // journal appends that failed
	DaemonMarshalErrors = "smartfam.daemon.marshal_errors" // response records that failed to encode
	DaemonAppendErrors  = "smartfam.daemon.append_errors"  // response appends that failed (per attempt)
	DaemonQueueFull     = "smartfam.daemon.queue_full"     // requests shed by the scheduler's bounded queue

	// Job scheduler (internal/sched).
	SchedSubmitted          = "sched.submitted"
	SchedCompleted          = "sched.completed"
	SchedFailed             = "sched.failed"
	SchedCancelled          = "sched.cancelled"
	SchedRetries            = "sched.retries"
	SchedQueueFullRejects   = "sched.queue_full_rejects"
	SchedAdmissionDeferrals = "sched.admission_deferrals"
	SchedQueueDepth         = "sched.queue_depth"
	SchedRunning            = "sched.running"
	SchedReservedBytes      = "sched.reserved_bytes"
	SchedWait               = "sched.wait" // queue-entry -> dispatch timer
	SchedRun                = "sched.run"  // dispatch -> completion timer

	// Host-side programming framework (internal/core).
	CoreOffloads         = "core.offloads"
	CoreFailovers        = "core.failovers"
	CoreLocalFallbacks   = "core.local_fallbacks"
	CoreQueueFullRejects = "core.queue_full_rejects"
	CoreHeartbeatSkips   = "core.heartbeat_skips"
	CoreInvokePrefix     = "core.invoke." // + module name: per-module invoke timer

	// Multi-SD scatter/gather coordinator (internal/fleet).
	FleetDispatches        = "fleet.dispatches"          // fragment attempts handed to node sessions
	FleetSpeculations      = "fleet.speculations"        // straggler re-executions launched
	FleetDupResults        = "fleet.dup_results"         // late duplicate results dropped by first-wins dedup
	FleetQueueSteals       = "fleet.queue_steals"        // fragments an idle node stole from a busy node's queue
	FleetQueueFullRequeues = "fleet.queue_full_requeues" // fragments shed by a node scheduler and requeued
	FleetNodeFailures      = "fleet.node_failures"       // nodes marked down during a job
	FleetMoves             = "fleet.moved_fragments"     // fragments re-placed off a failed node
	FleetExecute           = "fleet.execute"             // whole scatter/gather wall-time timer
	FleetMerge             = "fleet.merge"               // cross-node merge timer

	// Replicated storage tier + self-healing (internal/fleet Store/Scrubber).
	FleetReplicaWrites      = "fleet.replica_writes"        // replica copies written by Put/PutFile
	FleetReadRepairs        = "fleet.read_repairs"          // bad/missing copies rewritten from a surviving replica
	FleetReReplications     = "fleet.re_replications"       // missing copies recreated on a preferred node
	FleetCorruptReplicas    = "fleet.corrupt_replicas"      // replica reads that failed CRC32 trailer verification
	FleetReplicaFallbacks   = "fleet.replica_fallbacks"     // fragment attempts re-dispatched to the next-ranked replica
	FleetProbes             = "fleet.probes"                // liveness probes launched at marked-down nodes
	FleetNodeRecoveries     = "fleet.node_recoveries"       // marked-down nodes probed back to healthy
	FleetScrubFiles         = "fleet.scrub.files"           // share files the scrubber verified
	FleetScrubBytes         = "fleet.scrub.bytes"           // bytes the scrubber read (rate-paced)
	FleetScrubRepairs       = "fleet.scrub.repairs"         // repairs (rewrites + re-replications) a scrub pass made
	FleetScrubCorruptRecord = "fleet.scrub.corrupt_records" // corrupt smartFAM log records a scrub pass counted

	// NFS transport — server side.
	NFSBytesRead    = "nfs.bytes.read"
	NFSBytesWritten = "nfs.bytes.written"
	NFSOpPrefix     = "nfs.ops." // + op name: per-op request counter

	// NFS transport — client side (pipelining + wire accounting).
	NFSClientInflight       = "nfs.client.inflight"        // gauge: requests currently in the pipeline window
	NFSClientPipelineStalls = "nfs.client.pipeline_stalls" // sends that blocked on a full window
	NFSClientBytesSent      = "nfs.client.bytes_sent"      // raw bytes written to the wire (frames + payload)
	NFSClientBytesRecv      = "nfs.client.bytes_recv"      // raw bytes read off the wire
	NFSClientReplays        = "nfs.client.replays"         // idempotent requests replayed after a reconnect

	// NFS change-notification lane (OpWatch + unsolicited notify frames).
	NFSWatchStreams  = "nfs.watch.streams"  // gauge: live server-side watch registrations
	NFSWatchNotifies = "nfs.watch.notifies" // notify frames written to watching connections
	NFSWatchDropped  = "nfs.watch.dropped"  // notifies dropped on a full per-watcher queue (recovered by rescan)
	NFSWatchEvents   = "nfs.watch.events"   // notify frames the client demux delivered to local streams

	// NFS host-side block cache.
	NFSCacheHits          = "nfs.cache.hits"          // block reads served from the cache
	NFSCacheMisses        = "nfs.cache.misses"        // block reads that went to the wire
	NFSCacheInvalidations = "nfs.cache.invalidations" // blocks dropped by local writes or version mismatches
	NFSCacheEvictions     = "nfs.cache.evictions"     // blocks dropped by LRU pressure
	NFSCacheBytesSaved    = "nfs.cache.bytes_saved"   // payload bytes served locally instead of over the wire
)
