package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock advances a deterministic amount per call.
func fakeClock(step time.Duration) func() time.Time {
	var mu sync.Mutex
	t := time.Unix(0, 0)
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(step)
		return t
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x")
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	s.Finish()           // must not panic
	_ = s.Child("child") // must not panic
	if s.Duration() != 0 {
		t.Fatal("nil span has duration")
	}
	if tr.Roots() != nil {
		t.Fatal("nil tracer has roots")
	}
}

func TestSpanLifecycle(t *testing.T) {
	tr := NewWithClock(fakeClock(time.Second))
	s := tr.Start("job") // t=1
	c := s.Child("half") // t=2
	c.Finish()           // t=3
	s.Finish()           // t=4
	if got := c.Duration(); got != time.Second {
		t.Fatalf("child duration = %v, want 1s", got)
	}
	if got := s.Duration(); got != 3*time.Second {
		t.Fatalf("root duration = %v, want 3s", got)
	}
	// Double finish keeps the first end.
	s.Finish()
	if got := s.Duration(); got != 3*time.Second {
		t.Fatalf("double finish changed duration: %v", got)
	}
	if len(tr.Roots()) != 1 || len(s.Children()) != 1 {
		t.Fatal("span tree shape wrong")
	}
}

func TestRenderGantt(t *testing.T) {
	tr := NewWithClock(fakeClock(time.Second))
	job := tr.Start("job")       // 1
	off := job.Child("offload")  // 2
	local := job.Child("matmul") // 3
	local.Finish()               // 4
	off.Finish()                 // 5
	job.Finish()                 // 6

	var b strings.Builder
	if err := Render(&b, tr.Roots(), 40); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"job", "offload", "matmul", "="} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d rows, want 3:\n%s", len(lines), out)
	}
	// Children are indented.
	if !strings.HasPrefix(lines[1], "  offload") {
		t.Fatalf("child not indented: %q", lines[1])
	}
	// The root bar must span at least as many columns as any child bar.
	count := func(s string) int { return strings.Count(s, "=") }
	if count(lines[0]) < count(lines[1]) || count(lines[0]) < count(lines[2]) {
		t.Fatalf("root bar shorter than child bars:\n%s", out)
	}
}

func TestRenderEmptyAndOpenSpans(t *testing.T) {
	var b strings.Builder
	if err := Render(&b, nil, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no spans") {
		t.Fatal("empty render should say so")
	}
	tr := NewWithClock(fakeClock(time.Second))
	s := tr.Start("open") // never finished
	b.Reset()
	if err := Render(&b, tr.Roots(), 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "open") {
		t.Fatal("open span missing from render")
	}
	_ = s
}

func TestConcurrentChildren(t *testing.T) {
	tr := New()
	root := tr.Start("root")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.Child("c")
			c.Finish()
		}()
	}
	wg.Wait()
	root.Finish()
	if got := len(root.Children()); got != 16 {
		t.Fatalf("%d children, want 16", got)
	}
}

func TestSortByStart(t *testing.T) {
	clock := fakeClock(time.Second)
	tr := NewWithClock(clock)
	a := tr.Start("a")
	b := tr.Start("b")
	spans := []*Span{b, a}
	SortByStart(spans)
	if spans[0] != a {
		t.Fatal("not sorted by start")
	}
}
