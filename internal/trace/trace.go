// Package trace records timed spans of McSD jobs — the offload leg, the
// concurrent host-side computation, individual node attempts — and renders
// them as a text Gantt chart, making the framework's load balancing
// visible ("did the host work actually overlap the SD run?").
//
// All methods are nil-receiver safe, so instrumented code pays nothing
// when no tracer is installed.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one timed interval, possibly with children.
type Span struct {
	Name  string
	Start time.Time

	mu       sync.Mutex
	end      time.Time
	children []*Span
	clock    func() time.Time
}

// Tracer collects root spans. The zero value is not usable; call New.
type Tracer struct {
	mu    sync.Mutex
	roots []*Span
	clock func() time.Time
}

// New returns an empty tracer.
func New() *Tracer { return &Tracer{clock: time.Now} }

// NewWithClock returns a tracer using a custom clock (deterministic tests).
func NewWithClock(clock func() time.Time) *Tracer { return &Tracer{clock: clock} }

// Start opens a root span. Safe on a nil tracer (returns nil).
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{Name: name, Start: t.clock(), clock: t.clock}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Roots returns the collected root spans in start order.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.roots))
	copy(out, t.roots)
	return out
}

// Child opens a sub-span. Safe on a nil span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: s.clock(), clock: s.clock}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Finish closes the span. Safe on a nil span; extra calls keep the first
// end time.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = s.clock()
	}
	s.mu.Unlock()
}

// End returns the span's end time (zero if still open).
func (s *Span) End() time.Time {
	if s == nil {
		return time.Time{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end
}

// Duration returns End-Start, or zero while open.
func (s *Span) Duration() time.Duration {
	end := s.End()
	if end.IsZero() {
		return 0
	}
	return end.Sub(s.Start)
}

// Children returns the sub-spans in start order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// Render writes a text Gantt chart of the spans (and their children) to w,
// width columns wide. Open spans render to the latest known end.
func Render(w io.Writer, spans []*Span, width int) error {
	if width < 20 {
		width = 20
	}
	var flat []renderRow
	var min, max time.Time
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		if s == nil {
			return
		}
		end := s.End()
		if min.IsZero() || s.Start.Before(min) {
			min = s.Start
		}
		if end.After(max) {
			max = end
		}
		flat = append(flat, renderRow{span: s, depth: depth})
		for _, c := range s.Children() {
			walk(c, depth+1)
		}
	}
	for _, s := range spans {
		walk(s, 0)
	}
	if len(flat) == 0 {
		_, err := fmt.Fprintln(w, "(no spans)")
		return err
	}
	if max.IsZero() || !max.After(min) {
		max = min.Add(time.Nanosecond)
	}
	total := max.Sub(min)

	nameWidth := 0
	for _, r := range flat {
		if n := len(r.span.Name) + 2*r.depth; n > nameWidth {
			nameWidth = n
		}
	}
	scale := func(t time.Time) int {
		if t.IsZero() {
			t = max
		}
		pos := int(float64(t.Sub(min)) / float64(total) * float64(width))
		if pos < 0 {
			pos = 0
		}
		if pos > width {
			pos = width
		}
		return pos
	}
	for _, r := range flat {
		startCol := scale(r.span.Start)
		endCol := scale(r.span.End())
		if endCol <= startCol {
			endCol = startCol + 1
		}
		bar := strings.Repeat(" ", startCol) +
			strings.Repeat("=", endCol-startCol) +
			strings.Repeat(" ", width-endCol)
		label := strings.Repeat("  ", r.depth) + r.span.Name
		dur := r.span.Duration()
		if _, err := fmt.Fprintf(w, "%-*s |%s| %v\n", nameWidth, label, bar, dur.Round(time.Microsecond)); err != nil {
			return err
		}
	}
	return nil
}

type renderRow struct {
	span  *Span
	depth int
}

// SortByStart orders spans by start time (helper for merged views).
func SortByStart(spans []*Span) {
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
}
