package trace

// The span name registry. Like internal/metrics/names.go, this is the
// single source of truth the metrickey analyzer checks Tracer.Start and
// Span.Child calls against: fixed span names are full constants,
// per-entity spans concatenate a *Prefix constant with the entity name.
const (
	// core.Runtime job spans.
	SpanJobPrefix     = "job " // + module: one root span per submitted job
	SpanHostLocal     = "host-local"
	SpanOffload       = "offload"
	SpanAttemptPrefix = "attempt " // + node name: one child per SD node tried
	SpanLocalFallback = "local-fallback"

	// Scheduler job lifecycle.
	SpanSchedPrefix = "sched " // + module and job ID
	SpanQueued      = "queued"
	SpanRunning     = "running"

	// Push-mode invocation front door (smartFAM v2): one span per live
	// notify-stream attachment; the span closes when the stream is lost and
	// the daemon drops back to degraded polling.
	SpanFamPush = "fam/push"

	// Daemon crash recovery.
	SpanRecovery          = "smartfam.recovery"
	SpanReplayRespPrefix  = "replay-response " // + request ID
	SpanRerunIntentPrefix = "rerun-intent "    // + request ID
)
