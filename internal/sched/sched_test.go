package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mcsd/internal/memsim"
	"mcsd/internal/trace"
)

// startSched runs a scheduler until the test ends.
func startSched(t *testing.T, cfg Config, exec Executor) *Scheduler {
	t.Helper()
	s := New(cfg, exec)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Run(ctx) //nolint:errcheck // terminates with ctx
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return s
}

func waitState(t *testing.T, h *Handle, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for h.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %v, want %v", h.Job().ID, h.State(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMemoryAdmissionSerializesBigJobs is acceptance criterion (a): two
// jobs whose combined footprint exceeds the memory budget run serially,
// while a small third job is admitted alongside whichever big job holds
// the budget.
func TestMemoryAdmissionSerializesBigJobs(t *testing.T) {
	var mu sync.Mutex
	resident := int64(0)
	peak := int64(0)
	release := make(chan struct{})
	smallDone := make(chan struct{})

	exec := func(ctx context.Context, j *Job) ([]byte, error) {
		fp := j.footprint()
		mu.Lock()
		resident += fp
		if resident > peak {
			peak = resident
		}
		mu.Unlock()
		if j.Tenant == "small" {
			close(smallDone)
		} else {
			select {
			case <-release:
			case <-ctx.Done():
			}
		}
		mu.Lock()
		resident -= fp
		mu.Unlock()
		return []byte("ok"), nil
	}

	// Budget 100: two 60-footprint jobs can never co-schedule, but a
	// 10-footprint job fits alongside either.
	s := startSched(t, Config{Workers: 3, BudgetBytes: 100}, exec)
	ctx := context.Background()
	big1, err := s.Submit(ctx, &Job{Module: "wc", Tenant: "big", InputBytes: 20, FootprintFactor: 3})
	if err != nil {
		t.Fatal(err)
	}
	big2, err := s.Submit(ctx, &Job{Module: "wc", Tenant: "big", InputBytes: 20, FootprintFactor: 3})
	if err != nil {
		t.Fatal(err)
	}
	small, err := s.Submit(ctx, &Job{Module: "sm", Tenant: "small", InputBytes: 5, FootprintFactor: 2})
	if err != nil {
		t.Fatal(err)
	}

	// The small job completes while a big job still holds the budget.
	select {
	case <-smallDone:
	case <-time.After(5 * time.Second):
		t.Fatal("small job was never admitted alongside the big one")
	}
	if _, err := small.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	// Exactly one big job is running; the other is still queued, waiting
	// for memory rather than failing.
	waitState(t, big1, StateRunning)
	if got := big2.State(); got != StateQueued {
		t.Fatalf("second big job state = %v, want queued", got)
	}
	close(release)
	if _, err := big1.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := big2.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if peak > 100 {
		t.Fatalf("resident footprint peaked at %d, budget 100 — big jobs co-scheduled", peak)
	}
	if peak < 70 {
		t.Fatalf("resident footprint peaked at %d; small job never overlapped a big one", peak)
	}
}

// TestMemoryBudgetFromAccountant wires the budget from a memsim config.
func TestMemoryBudgetFromAccountant(t *testing.T) {
	cfg := memsim.DefaultConfig()
	acct := memsim.NewAccountant(cfg)
	s := New(Config{Memory: acct}, func(ctx context.Context, j *Job) ([]byte, error) { return nil, nil })
	if s.budget != cfg.Usable() {
		t.Fatalf("budget = %d, want usable RAM %d", s.budget, cfg.Usable())
	}
}

// TestOversizedJobAdmittedAlone: a job larger than the whole budget runs
// solo (partitioning, not queueing, is the fix for those), never alongside
// anything else.
func TestOversizedJobAdmittedAlone(t *testing.T) {
	var concurrent atomic.Int32
	var maxConcurrent atomic.Int32
	block := make(chan struct{})
	exec := func(ctx context.Context, j *Job) ([]byte, error) {
		n := concurrent.Add(1)
		for {
			old := maxConcurrent.Load()
			if n <= old || maxConcurrent.CompareAndSwap(old, n) {
				break
			}
		}
		<-block
		concurrent.Add(-1)
		return nil, nil
	}
	s := startSched(t, Config{Workers: 2, BudgetBytes: 100}, exec)
	ctx := context.Background()
	huge, _ := s.Submit(ctx, &Job{Module: "wc", InputBytes: 500})
	small, _ := s.Submit(ctx, &Job{Module: "wc", InputBytes: 10})
	waitState(t, huge, StateRunning)
	time.Sleep(20 * time.Millisecond) // give the small job a chance to sneak in
	if got := small.State(); got != StateQueued {
		t.Fatalf("small job state = %v while oversized job runs, want queued", got)
	}
	close(block)
	if _, err := huge.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := small.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if maxConcurrent.Load() != 1 {
		t.Fatalf("max concurrency = %d, want 1", maxConcurrent.Load())
	}
}

// TestQueueFullBackpressure is the unit half of acceptance criterion (b):
// a full queue rejects the submission with a typed, wire-recognisable
// error.
func TestQueueFullBackpressure(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	exec := func(ctx context.Context, j *Job) ([]byte, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, nil
	}
	s := startSched(t, Config{Workers: 1, MaxQueueDepth: 1}, exec)
	ctx := context.Background()
	first, err := s.Submit(ctx, &Job{Module: "wc"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, first, StateRunning)
	if _, err := s.Submit(ctx, &Job{Module: "wc"}); err != nil {
		t.Fatalf("second submit (queued) failed: %v", err)
	}
	_, err = s.Submit(ctx, &Job{Module: "wc"})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit error = %v, want ErrQueueFull", err)
	}
	if !IsQueueFullMessage(err.Error()) {
		t.Fatalf("queue-full error text %q not wire-recognisable", err)
	}
	if got := s.Status().QueueFullRejects; got != 1 {
		t.Fatalf("QueueFullRejects = %d, want 1", got)
	}
}

// TestCancelQueuedNeverRuns is acceptance criterion (c): a job cancelled
// while queued never reaches the engine.
func TestCancelQueuedNeverRuns(t *testing.T) {
	var ran sync.Map
	block := make(chan struct{})
	exec := func(ctx context.Context, j *Job) ([]byte, error) {
		ran.Store(j.ID, true)
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, nil
	}
	s := startSched(t, Config{Workers: 1}, exec)
	ctx := context.Background()
	first, _ := s.Submit(ctx, &Job{Module: "wc", ID: "first"})
	waitState(t, first, StateRunning)
	victim, _ := s.Submit(ctx, &Job{Module: "wc", ID: "victim"})
	victim.Cancel()
	if _, err := victim.Wait(ctx); !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancelled job Wait error = %v, want ErrCancelled", err)
	}
	close(block)
	if _, err := first.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if _, hit := ran.Load("victim"); hit {
		t.Fatal("cancelled queued job reached the engine")
	}
	if got := victim.State(); got != StateCancelled {
		t.Fatalf("victim state = %v, want cancelled", got)
	}
}

// TestSubmitCtxCancelDropsQueuedJob: cancelling the submission context of
// a queued job also keeps it away from the engine.
func TestSubmitCtxCancelDropsQueuedJob(t *testing.T) {
	var ran sync.Map
	block := make(chan struct{})
	exec := func(ctx context.Context, j *Job) ([]byte, error) {
		ran.Store(j.ID, true)
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, nil
	}
	s := startSched(t, Config{Workers: 1}, exec)
	first, _ := s.Submit(context.Background(), &Job{Module: "wc", ID: "first"})
	waitState(t, first, StateRunning)
	jctx, jcancel := context.WithCancel(context.Background())
	victim, _ := s.Submit(jctx, &Job{Module: "wc", ID: "victim"})
	jcancel()
	close(block)
	if _, err := first.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := victim.Wait(context.Background()); err == nil {
		t.Fatal("victim completed despite cancelled submit context")
	}
	if _, hit := ran.Load("victim"); hit {
		t.Fatal("ctx-cancelled queued job reached the engine")
	}
}

// TestCancelRunningJob propagates cancellation into the executor's ctx.
func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{})
	exec := func(ctx context.Context, j *Job) ([]byte, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	s := startSched(t, Config{Workers: 1}, exec)
	h, _ := s.Submit(context.Background(), &Job{Module: "wc"})
	<-started
	h.Cancel()
	if _, err := h.Wait(context.Background()); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Wait error = %v, want ErrCancelled", err)
	}
}

// TestWeightedFairOrdering: with the worker busy, queued jobs from a
// weight-2 tenant dispatch twice as often as a weight-1 tenant's.
func TestWeightedFairOrdering(t *testing.T) {
	var order []string
	var mu sync.Mutex
	gate := make(chan struct{})
	exec := func(ctx context.Context, j *Job) ([]byte, error) {
		mu.Lock()
		order = append(order, j.Tenant)
		mu.Unlock()
		<-gate
		return nil, nil
	}
	s := startSched(t, Config{Workers: 1, TenantWeights: map[string]float64{"gold": 2, "bronze": 1}}, exec)
	ctx := context.Background()
	// Fill both tenant queues while the first job runs.
	first, _ := s.Submit(ctx, &Job{Module: "m", Tenant: "warmup"})
	waitState(t, first, StateRunning)
	var handles []*Handle
	for i := 0; i < 6; i++ {
		h, err := s.Submit(ctx, &Job{Module: "m", Tenant: "gold"})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for i := 0; i < 6; i++ {
		h, err := s.Submit(ctx, &Job{Module: "m", Tenant: "bronze"})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for i := 0; i < 13; i++ {
		gate <- struct{}{}
	}
	for _, h := range handles {
		if _, err := h.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	// In the first 6 dispatches after the warmup, gold (weight 2) should
	// appear ~4 times to bronze's ~2.
	gold := 0
	for _, tn := range order[1:7] {
		if tn == "gold" {
			gold++
		}
	}
	if gold < 3 || gold > 5 {
		t.Fatalf("gold got %d of the first 6 slots, want ~4 (order %v)", gold, order)
	}
}

// TestPriorityOverride: a high-priority job jumps every queue, including
// its own tenant's FIFO.
func TestPriorityOverride(t *testing.T) {
	var order []string
	var mu sync.Mutex
	gate := make(chan struct{})
	exec := func(ctx context.Context, j *Job) ([]byte, error) {
		mu.Lock()
		order = append(order, j.ID)
		mu.Unlock()
		<-gate
		return nil, nil
	}
	s := startSched(t, Config{Workers: 1}, exec)
	ctx := context.Background()
	first, _ := s.Submit(ctx, &Job{Module: "m", ID: "warmup"})
	waitState(t, first, StateRunning)
	a, _ := s.Submit(ctx, &Job{Module: "m", ID: "a", Tenant: "t"})
	b, _ := s.Submit(ctx, &Job{Module: "m", ID: "b", Tenant: "t"})
	urgent, _ := s.Submit(ctx, &Job{Module: "m", ID: "urgent", Tenant: "t", Priority: 10})
	for i := 0; i < 4; i++ {
		gate <- struct{}{}
	}
	for _, h := range []*Handle{first, a, b, urgent} {
		if _, err := h.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"warmup", "urgent", "a", "b"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("dispatch order %v, want %v", order, want)
	}
}

// TestRetryWithBackoff: retryable failures re-execute up to MaxRetries.
func TestRetryWithBackoff(t *testing.T) {
	var calls atomic.Int32
	retryableErr := errors.New("transient")
	exec := func(ctx context.Context, j *Job) ([]byte, error) {
		if calls.Add(1) < 3 {
			return nil, retryableErr
		}
		return []byte("recovered"), nil
	}
	s := startSched(t, Config{
		Workers: 1, MaxRetries: 5, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond,
		Retryable: func(err error) bool { return errors.Is(err, retryableErr) },
	}, exec)
	h, _ := s.Submit(context.Background(), &Job{Module: "m"})
	payload, err := h.Wait(context.Background())
	if err != nil || string(payload) != "recovered" {
		t.Fatalf("Wait = (%q, %v), want recovered", payload, err)
	}
	if h.Attempts() != 3 {
		t.Fatalf("attempts = %d, want 3", h.Attempts())
	}
	if got := s.Status().Retries; got != 2 {
		t.Fatalf("retries counter = %d, want 2", got)
	}
}

// TestNonRetryableFailsOnce: without a Retryable classifier nothing
// retries.
func TestNonRetryableFailsOnce(t *testing.T) {
	var calls atomic.Int32
	boom := errors.New("boom")
	exec := func(ctx context.Context, j *Job) ([]byte, error) {
		calls.Add(1)
		return nil, boom
	}
	s := startSched(t, Config{Workers: 1, MaxRetries: 5}, exec)
	h, _ := s.Submit(context.Background(), &Job{Module: "m"})
	if _, err := h.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Wait error = %v, want boom", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("executor entered %d times, want 1", calls.Load())
	}
	if h.State() != StateFailed {
		t.Fatalf("state = %v, want failed", h.State())
	}
}

// TestDeadlineExpiresQueuedJob: a deadline that passes in the queue fails
// the job without running it.
func TestDeadlineExpiresQueuedJob(t *testing.T) {
	var ran sync.Map
	block := make(chan struct{})
	exec := func(ctx context.Context, j *Job) ([]byte, error) {
		ran.Store(j.ID, true)
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, nil
	}
	s := startSched(t, Config{Workers: 1}, exec)
	ctx := context.Background()
	first, _ := s.Submit(ctx, &Job{Module: "m", ID: "first"})
	waitState(t, first, StateRunning)
	doomed, _ := s.Submit(ctx, &Job{Module: "m", ID: "doomed", Deadline: time.Now().Add(10 * time.Millisecond)})
	time.Sleep(30 * time.Millisecond)
	close(block)
	if _, err := first.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := doomed.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("doomed Wait error = %v, want deadline exceeded", err)
	}
	if _, hit := ran.Load("doomed"); hit {
		t.Fatal("deadline-expired job reached the engine")
	}
}

// TestPanicGuard: a panicking executor fails its job, not the scheduler.
func TestPanicGuard(t *testing.T) {
	exec := func(ctx context.Context, j *Job) ([]byte, error) {
		if j.ID == "bomb" {
			panic("kaboom")
		}
		return []byte("fine"), nil
	}
	s := startSched(t, Config{Workers: 1}, exec)
	bomb, _ := s.Submit(context.Background(), &Job{Module: "m", ID: "bomb"})
	if _, err := bomb.Wait(context.Background()); err == nil {
		t.Fatal("panicking job reported success")
	}
	ok, _ := s.Submit(context.Background(), &Job{Module: "m", ID: "ok"})
	if payload, err := ok.Wait(context.Background()); err != nil || string(payload) != "fine" {
		t.Fatalf("scheduler dead after panic: (%q, %v)", payload, err)
	}
}

// TestPerJobExecOverride: Job.Exec runs instead of the scheduler-wide
// executor — the host runtime's hook.
func TestPerJobExecOverride(t *testing.T) {
	s := startSched(t, Config{Workers: 1}, func(ctx context.Context, j *Job) ([]byte, error) {
		return []byte("global"), nil
	})
	h, _ := s.Submit(context.Background(), &Job{Module: "m", Exec: func(ctx context.Context, j *Job) ([]byte, error) {
		return []byte("override"), nil
	}})
	payload, err := h.Wait(context.Background())
	if err != nil || string(payload) != "override" {
		t.Fatalf("Wait = (%q, %v), want override", payload, err)
	}
}

// TestStopDrainsQueued: stopping the scheduler fails queued jobs instead
// of leaving their waiters hanging.
func TestStopDrainsQueued(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	exec := func(ctx context.Context, j *Job) ([]byte, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	}
	s := New(Config{Workers: 1}, exec)
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan struct{})
	go func() { defer close(runDone); s.Run(ctx) }() //nolint:errcheck
	first, _ := s.Submit(context.Background(), &Job{Module: "m"})
	waitState(t, first, StateRunning)
	queued, _ := s.Submit(context.Background(), &Job{Module: "m"})
	cancel()
	<-runDone
	if _, err := queued.Wait(context.Background()); !errors.Is(err, ErrStopped) {
		t.Fatalf("queued job after stop: %v, want ErrStopped", err)
	}
	if _, err := s.Submit(context.Background(), &Job{Module: "m"}); !errors.Is(err, ErrStopped) {
		t.Fatalf("submit after stop: %v, want ErrStopped", err)
	}
}

// TestTraceRecordsQueueingDelay: the queued phase appears as a span so
// the Gantt renderer shows scheduling delay.
func TestTraceRecordsQueueingDelay(t *testing.T) {
	tr := trace.New()
	block := make(chan struct{})
	exec := func(ctx context.Context, j *Job) ([]byte, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, nil
	}
	s := startSched(t, Config{Workers: 1, Tracer: tr}, exec)
	ctx := context.Background()
	first, _ := s.Submit(ctx, &Job{Module: "m"})
	waitState(t, first, StateRunning)
	second, _ := s.Submit(ctx, &Job{Module: "m"})
	time.Sleep(10 * time.Millisecond)
	close(block)
	if _, err := first.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := second.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	roots := tr.Roots()
	if len(roots) != 2 {
		t.Fatalf("trace roots = %d, want 2", len(roots))
	}
	var sawQueued, sawRunning bool
	for _, c := range roots[1].Children() {
		switch c.Name {
		case "queued":
			sawQueued = true
			if c.Duration() < 5*time.Millisecond {
				t.Fatalf("queued span of delayed job only %v", c.Duration())
			}
		case "running":
			sawRunning = true
		}
	}
	if !sawQueued || !sawRunning {
		t.Fatalf("second job missing queued/running spans: %v", roots[1].Children())
	}
}

// TestStatusSnapshotRoundTrips through the share encoding.
func TestStatusSnapshotRoundTrips(t *testing.T) {
	block := make(chan struct{})
	exec := func(ctx context.Context, j *Job) ([]byte, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, nil
	}
	s := startSched(t, Config{Workers: 1, MaxQueueDepth: 8, BudgetBytes: 1000}, exec)
	ctx := context.Background()
	first, _ := s.Submit(ctx, &Job{Module: "wc", Tenant: "alpha", InputBytes: 100, FootprintFactor: 3})
	waitState(t, first, StateRunning)
	if _, err := s.Submit(ctx, &Job{Module: "sm", Tenant: "beta"}); err != nil {
		t.Fatal(err)
	}
	st := s.Status()
	if st.Running != 1 || st.Queued != 1 || st.ReservedBytes != 300 {
		t.Fatalf("status = %+v, want 1 running, 1 queued, 300 reserved", st)
	}
	data, err := MarshalStatus(st)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalStatus(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Running != st.Running || back.Queued != st.Queued || back.ReservedBytes != st.ReservedBytes {
		t.Fatalf("round trip %+v != %+v", back, st)
	}
	if back.Format() == "" {
		t.Fatal("empty formatted status")
	}
	close(block)
	if _, err := first.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}
