// Package sched is the SD node's control plane between "request arrived"
// and "engine runs": a multi-tenant job scheduler with admission control,
// priorities, and backpressure.
//
// The paper's McSD daemon invokes one module per smartFAM log write with
// no notion of concurrent callers. A node serving heavy traffic needs
// three things the raw daemon lacks, and this package provides them:
//
//   - Ordering. Submitted jobs queue per tenant; dispatch interleaves
//     tenants by weighted fair queuing (FIFO within a tenant, a served/
//     weight virtual clock across tenants) with an explicit Priority
//     override that jumps the fair order entirely.
//   - Memory-aware admission. A job's resident footprint is estimated as
//     input size × workload footprint factor (word count 3×, string match
//     2× — DESIGN.md §5b) and charged against the node's memsim budget of
//     usable RAM. Jobs whose footprint does not currently fit wait in the
//     queue rather than co-scheduling into the swap-thrash region; smaller
//     jobs may be admitted past them in the meantime.
//   - Backpressure. The queue is bounded. When it is full, Submit fails
//     fast with ErrQueueFull, which the daemon surfaces to the remote
//     caller through the smartFAM result record instead of silently
//     stalling the share.
//
// Each job walks a lifecycle — queued → admitted → running → done /
// failed / cancelled — with context cancellation, deadlines, and
// retry-with-jittered-backoff for failures the caller marks retryable.
// Queue depth, wait time, and admission decisions are counted in an
// internal/metrics registry, and the queued/running phases are recorded
// as spans in internal/trace so the Gantt renderer shows queueing delay.
package sched

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"mcsd/internal/memsim"
	"mcsd/internal/metrics"
	"mcsd/internal/trace"
)

// Errors surfaced by Submit and Handle.Wait.
var (
	// ErrQueueFull is the backpressure signal: the bounded queue is at
	// capacity and the caller should retry later or go elsewhere. It
	// crosses the smartFAM wire as message text; use IsQueueFullMessage
	// to recognise it on the far side.
	ErrQueueFull = errors.New("sched: queue full")
	// ErrCancelled reports a job cancelled before or during execution.
	ErrCancelled = errors.New("sched: job cancelled")
	// ErrStopped reports a scheduler whose Run loop has exited.
	ErrStopped = errors.New("sched: scheduler stopped")
)

// IsQueueFullMessage reports whether an error message that crossed a
// process or wire boundary (and so lost its typed chain) originated from
// ErrQueueFull.
func IsQueueFullMessage(msg string) bool {
	return strings.Contains(msg, ErrQueueFull.Error())
}

// Executor runs one admitted job and returns its result payload. The
// scheduler recovers panics, so a crashing module fails its job rather
// than the node.
type Executor func(ctx context.Context, job *Job) ([]byte, error)

// Estimator prices a module invocation before it runs: the input size in
// bytes and the workload's resident-footprint factor (multiple of input
// size). Zero input bytes means "unknown, admit freely".
type Estimator func(module string, params []byte) (inputBytes int64, footprintFactor float64)

// Job describes one submitted unit of work.
type Job struct {
	// ID is assigned by Submit when empty.
	ID string
	// Tenant groups jobs for fair ordering; empty means "default".
	Tenant string
	// Module names the engine entry point; it reaches the Executor.
	Module string
	// Payload is the opaque parameter blob handed to the Executor.
	Payload []byte
	// Priority overrides fair ordering: higher dispatches first.
	Priority int
	// InputBytes and FootprintFactor size the job's resident footprint
	// for admission control (footprint = InputBytes × FootprintFactor,
	// factor ≤ 0 meaning 1). InputBytes ≤ 0 bypasses admission.
	InputBytes      int64
	FootprintFactor float64
	// Deadline, when set, fails the job if it has not finished by then —
	// including jobs still waiting in the queue.
	Deadline time.Time
	// MaxRetries bounds re-executions after retryable failures
	// (0 = scheduler default).
	MaxRetries int
	// Retryable classifies failures worth retrying (nil = scheduler
	// default; both nil = never retry).
	Retryable func(error) bool
	// Exec, when set, runs instead of the scheduler-wide Executor — how
	// the host runtime routes an offload attempt through the scheduler.
	Exec Executor

	seq uint64 // submit order, fixes FIFO within a tenant
}

// footprint returns the job's estimated resident set in bytes.
func (j *Job) footprint() int64 {
	if j.InputBytes <= 0 {
		return 0
	}
	f := j.FootprintFactor
	if f <= 0 {
		f = 1
	}
	return int64(float64(j.InputBytes) * f)
}

// Defaults for Config's zero values.
const (
	// DefaultMaxQueueDepth bounds the queue when Config leaves it unset.
	DefaultMaxQueueDepth = 64
	// DefaultWorkers matches the duo-core SD node.
	DefaultWorkers = 2
)

// Config parametrizes a Scheduler.
type Config struct {
	// MaxQueueDepth bounds jobs waiting for admission (default 64).
	// Submissions beyond it fail with ErrQueueFull.
	MaxQueueDepth int
	// Workers is the number of concurrent job executions (default 2,
	// the duo-core SD node).
	Workers int
	// Memory, when set, supplies the admission budget: the node's usable
	// RAM per its memsim configuration. Admitted footprints never sum
	// past it, keeping co-scheduled jobs out of the swap-thrash region.
	Memory *memsim.Accountant
	// BudgetBytes overrides the Memory-derived budget when > 0. With
	// neither set, admission control is disabled.
	BudgetBytes int64
	// TenantWeights biases fair ordering; absent tenants weigh 1.
	TenantWeights map[string]float64
	// MaxRetries is the default retry bound for retryable failures.
	MaxRetries int
	// Retryable is the default failure classifier (nil = never retry).
	Retryable func(error) bool
	// BaseBackoff and MaxBackoff shape the jittered exponential backoff
	// between retries (defaults 10ms and 2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Metrics receives scheduler counters/gauges/timers (fresh registry
	// when nil).
	Metrics *metrics.Registry
	// Tracer records queued/running spans per job (nil = no tracing).
	Tracer *trace.Tracer
}

func (c Config) depth() int {
	if c.MaxQueueDepth > 0 {
		return c.MaxQueueDepth
	}
	return DefaultMaxQueueDepth
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return DefaultWorkers
}

func (c Config) budget() int64 {
	if c.BudgetBytes > 0 {
		return c.BudgetBytes
	}
	if c.Memory != nil {
		return c.Memory.Config().Usable()
	}
	return 0
}

func (c Config) baseBackoff() time.Duration {
	if c.BaseBackoff > 0 {
		return c.BaseBackoff
	}
	return 10 * time.Millisecond
}

func (c Config) maxBackoff() time.Duration {
	if c.MaxBackoff > 0 {
		return c.MaxBackoff
	}
	return 2 * time.Second
}

// tenant is one fair-queuing flow.
type tenant struct {
	name   string
	weight float64
	served float64   // virtual service received: +1/weight per dispatch
	queue  []*Handle // FIFO
}

// Scheduler is the job scheduler. Create with New, drive with Run.
type Scheduler struct {
	cfg    Config
	exec   Executor
	budget int64

	mu       sync.Mutex
	cond     *sync.Cond
	tenants  map[string]*tenant
	queued   int
	running  int
	reserved int64
	seq      uint64
	stopped  bool

	rngMu sync.Mutex
	rng   *rand.Rand

	metrics *metrics.Registry
}

// New returns a scheduler executing admitted jobs with exec (which a
// per-job Job.Exec overrides). Nothing dispatches until Run is called.
func New(cfg Config, exec Executor) *Scheduler {
	s := &Scheduler{
		cfg:     cfg,
		exec:    exec,
		budget:  cfg.budget(),
		tenants: make(map[string]*tenant),
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
		metrics: cfg.Metrics,
	}
	if s.metrics == nil {
		s.metrics = metrics.NewRegistry()
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Metrics returns the scheduler's metrics registry.
func (s *Scheduler) Metrics() *metrics.Registry { return s.metrics }

// Submit enqueues a job. It fails fast with ErrQueueFull when the bounded
// queue is at capacity and ErrStopped after Run has exited; otherwise it
// returns a Handle to wait on or cancel. ctx governs the job's whole
// life: cancelling it while the job is queued prevents it from ever
// reaching the engine.
func (s *Scheduler) Submit(ctx context.Context, job *Job) (*Handle, error) {
	if job == nil || job.Module == "" {
		return nil, errors.New("sched: job must name a module")
	}
	if job.Exec == nil && s.exec == nil {
		return nil, errors.New("sched: no executor for job")
	}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil, ErrStopped
	}
	if s.queued >= s.cfg.depth() {
		s.mu.Unlock()
		s.metrics.Counter(metrics.SchedQueueFullRejects).Inc()
		return nil, fmt.Errorf("%w: %d jobs waiting", ErrQueueFull, s.cfg.depth())
	}
	s.seq++
	job.seq = s.seq
	if job.ID == "" {
		job.ID = fmt.Sprintf("job-%06d", s.seq)
	}
	h := &Handle{
		job:        job,
		s:          s,
		ctx:        ctx,
		done:       make(chan struct{}),
		enqueuedAt: time.Now(),
	}
	h.state.Store(int32(StateQueued))
	h.span = s.cfg.Tracer.Start(trace.SpanSchedPrefix + job.Module + " " + job.ID)
	h.queueSpan = h.span.Child(trace.SpanQueued)
	t := s.tenantLocked(job.Tenant)
	t.queue = append(t.queue, h)
	s.queued++
	s.metrics.Gauge(metrics.SchedQueueDepth).Set(int64(s.queued))
	s.metrics.Counter(metrics.SchedSubmitted).Inc()
	s.cond.Broadcast()
	s.mu.Unlock()
	return h, nil
}

// tenantKey maps the empty tenant to its flow name.
func tenantKey(name string) string {
	if name == "" {
		return "default"
	}
	return name
}

func (s *Scheduler) tenantLocked(name string) *tenant {
	name = tenantKey(name)
	t, ok := s.tenants[name]
	if !ok {
		w := s.cfg.TenantWeights[name]
		if w <= 0 {
			w = 1
		}
		// A new flow starts at the maximum virtual time already served so
		// it cannot claim a catch-up burst against established tenants.
		var maxServed float64
		for _, other := range s.tenants {
			if other.served > maxServed {
				maxServed = other.served
			}
		}
		t = &tenant{name: name, weight: w, served: maxServed}
		s.tenants[name] = t
	}
	return t
}

// Run dispatches jobs on cfg.Workers goroutines until ctx is done, then
// fails every still-queued job with ctx's error and returns it. Run is
// the scheduler's only dispatch loop; call it exactly once.
func (s *Scheduler) Run(ctx context.Context) error {
	stopWake := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stopWake()

	var wg sync.WaitGroup
	for i := 0; i < s.cfg.workers(); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				h := s.next(ctx)
				if h == nil {
					return
				}
				s.execute(ctx, h)
			}
		}()
	}
	wg.Wait()

	s.mu.Lock()
	s.stopped = true
	var orphans []*Handle
	for _, t := range s.tenants {
		orphans = append(orphans, t.queue...)
		t.queue = nil
	}
	s.queued = 0
	s.metrics.Gauge(metrics.SchedQueueDepth).Set(0)
	s.mu.Unlock()
	for _, h := range orphans {
		h.finish(nil, fmt.Errorf("%w: %w", ErrStopped, context.Cause(ctx)))
	}
	return ctx.Err()
}

// next blocks until a job can be admitted (or ctx ends) and returns it
// with its memory reservation taken and its state advanced to running.
func (s *Scheduler) next(ctx context.Context) *Handle {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if ctx.Err() != nil {
			return nil
		}
		if h := s.selectLocked(); h != nil {
			fp := h.job.footprint()
			s.reserved += fp
			h.reservedBytes = fp
			s.running++
			s.metrics.Gauge(metrics.SchedRunning).Set(int64(s.running))
			s.metrics.Gauge(metrics.SchedReservedBytes).Set(s.reserved)
			s.metrics.Timer(metrics.SchedWait).Observe(time.Since(h.enqueuedAt))
			h.state.Store(int32(StateAdmitted))
			h.queueSpan.Finish()
			return h
		}
		s.cond.Wait()
	}
}

// selectLocked picks the next admissible job: all queued jobs ordered by
// (priority desc, tenant virtual time asc, submit order asc), first one
// whose footprint fits the remaining memory budget. Skipping a too-big
// job lets small jobs run alongside what is already admitted — the big
// job waits for memory, it is not failed. Cancelled and deadline-expired
// jobs are reaped here, before they can reach the engine.
func (s *Scheduler) selectLocked() *Handle {
	type cand struct {
		h *Handle
		t *tenant
	}
	var cands []cand
	now := time.Now()
	for _, t := range s.tenants {
		kept := t.queue[:0]
		for _, h := range t.queue {
			if h.State() == StateCancelled {
				s.dropLocked(h, nil)
				continue
			}
			if err := h.ctx.Err(); err != nil {
				s.dropLocked(h, err)
				continue
			}
			if !h.job.Deadline.IsZero() && now.After(h.job.Deadline) {
				s.dropLocked(h, context.DeadlineExceeded)
				continue
			}
			kept = append(kept, h)
		}
		t.queue = kept
		if len(kept) > 0 {
			// FIFO within the tenant except for the priority override:
			// the highest-priority job (earliest among equals) leads.
			best := 0
			for i := 1; i < len(kept); i++ {
				if kept[i].job.Priority > kept[best].job.Priority {
					best = i
				}
			}
			cands = append(cands, cand{h: kept[best], t: t})
		}
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.h.job.Priority != b.h.job.Priority {
			return a.h.job.Priority > b.h.job.Priority
		}
		if a.t.served != b.t.served {
			return a.t.served < b.t.served
		}
		return a.h.job.seq < b.h.job.seq
	})
	for _, c := range cands {
		if !s.fitsLocked(c.h.job.footprint()) {
			s.metrics.Counter(metrics.SchedAdmissionDeferrals).Inc()
			continue
		}
		// Dequeue c.h from its tenant (it may not be the head when the
		// priority override selected a later job).
		q := c.t.queue
		for i, h := range q {
			if h == c.h {
				c.t.queue = append(q[:i], q[i+1:]...)
				break
			}
		}
		c.t.served += 1 / c.t.weight
		s.queued--
		s.metrics.Gauge(metrics.SchedQueueDepth).Set(int64(s.queued))
		return c.h
	}
	return nil
}

// fitsLocked is the admission predicate: the footprint fits the remaining
// budget, or there is no budget, or the job is so large it could never
// co-schedule — then it is admitted alone (running it solo is the best
// the scheduler can do; out-of-core partitioning is the real fix).
func (s *Scheduler) fitsLocked(fp int64) bool {
	if s.budget <= 0 || fp == 0 {
		return true
	}
	if s.reserved+fp <= s.budget {
		return true
	}
	return fp > s.budget && s.reserved == 0 && s.running == 0
}

// dropLocked removes a queued job without running it.
func (s *Scheduler) dropLocked(h *Handle, err error) {
	s.queued--
	s.metrics.Gauge(metrics.SchedQueueDepth).Set(int64(s.queued))
	if err == nil {
		s.metrics.Counter(metrics.SchedCancelled).Inc()
		go h.finish(nil, ErrCancelled)
		return
	}
	s.metrics.Counter(metrics.SchedFailed).Inc()
	go h.finish(nil, fmt.Errorf("sched: job %s expired in queue: %w", h.job.ID, err))
}

// execute runs one admitted job to completion, honouring cancellation,
// the deadline, and the retry policy.
func (s *Scheduler) execute(runCtx context.Context, h *Handle) {
	defer func() {
		s.mu.Lock()
		s.reserved -= h.reservedBytes
		s.running--
		s.metrics.Gauge(metrics.SchedRunning).Set(int64(s.running))
		s.metrics.Gauge(metrics.SchedReservedBytes).Set(s.reserved)
		s.cond.Broadcast()
		s.mu.Unlock()
	}()

	ctx, cancel := context.WithCancel(h.ctx)
	defer cancel()
	stop := context.AfterFunc(runCtx, cancel)
	defer stop()
	if !h.job.Deadline.IsZero() {
		var dcancel context.CancelFunc
		ctx, dcancel = context.WithDeadline(ctx, h.job.Deadline)
		defer dcancel()
	}
	h.mu.Lock()
	if h.cancelled {
		h.mu.Unlock()
		s.metrics.Counter(metrics.SchedCancelled).Inc()
		h.finish(nil, ErrCancelled)
		return
	}
	h.cancelRun = cancel
	h.mu.Unlock()

	h.state.Store(int32(StateRunning))
	runSpan := h.span.Child(trace.SpanRunning)
	runStart := time.Now()

	exec := h.job.Exec
	if exec == nil {
		exec = s.exec
	}
	maxRetries := h.job.MaxRetries
	if maxRetries <= 0 {
		maxRetries = s.cfg.MaxRetries
	}
	retryable := h.job.Retryable
	if retryable == nil {
		retryable = s.cfg.Retryable
	}

	var payload []byte
	var err error
	for attempt := 0; ; attempt++ {
		payload, err = runGuarded(ctx, exec, h.job)
		h.attempts.Add(1)
		if err == nil || ctx.Err() != nil || retryable == nil ||
			!retryable(err) || attempt >= maxRetries {
			break
		}
		s.metrics.Counter(metrics.SchedRetries).Inc()
		if !sleepCtx(ctx, s.backoff(attempt)) {
			break
		}
	}
	runSpan.Finish()
	s.metrics.Timer(metrics.SchedRun).Observe(time.Since(runStart))

	if err != nil {
		// Distinguish explicit Cancel from an unrelated failure.
		h.mu.Lock()
		wasCancelled := h.cancelled
		h.mu.Unlock()
		if wasCancelled {
			err = fmt.Errorf("%w: %w", ErrCancelled, err)
		}
	}
	if err != nil {
		if errors.Is(err, ErrCancelled) {
			s.metrics.Counter(metrics.SchedCancelled).Inc()
		} else {
			s.metrics.Counter(metrics.SchedFailed).Inc()
		}
	} else {
		s.metrics.Counter(metrics.SchedCompleted).Inc()
	}
	h.finish(payload, err)
}

// backoff returns the jittered exponential delay before retry attempt+1:
// base·2^attempt capped at max, then ±50% jitter.
func (s *Scheduler) backoff(attempt int) time.Duration {
	d := s.cfg.baseBackoff() << uint(attempt)
	if max := s.cfg.maxBackoff(); d > max || d <= 0 {
		d = max
	}
	s.rngMu.Lock()
	jitter := 0.5 + s.rng.Float64() // 0.5x .. 1.5x
	s.rngMu.Unlock()
	return time.Duration(float64(d) * jitter)
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func runGuarded(ctx context.Context, exec Executor, job *Job) (out []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sched: job %s (%s) panicked: %v", job.ID, job.Module, r)
		}
	}()
	return exec(ctx, job)
}
