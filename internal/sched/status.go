package sched

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"mcsd/internal/metrics"
)

// TenantStatus is one tenant's view in a Status snapshot.
type TenantStatus struct {
	Name   string  `json:"name"`
	Queued int     `json:"queued"`
	Weight float64 `json:"weight"`
	// Served is the tenant's virtual service time — how much weighted
	// dispatch it has received; the fair-queuing clock.
	Served float64 `json:"served"`
}

// Status is a point-in-time snapshot of the scheduler, JSON-encodable so
// the SD daemon can publish it on the share for mcsdctl's queue verb.
type Status struct {
	Queued        int   `json:"queued"`
	Running       int   `json:"running"`
	MaxQueueDepth int   `json:"max_queue_depth"`
	Workers       int   `json:"workers"`
	ReservedBytes int64 `json:"reserved_bytes"`
	BudgetBytes   int64 `json:"budget_bytes"`

	Submitted          int64 `json:"submitted"`
	Completed          int64 `json:"completed"`
	Failed             int64 `json:"failed"`
	Cancelled          int64 `json:"cancelled"`
	QueueFullRejects   int64 `json:"queue_full_rejects"`
	Retries            int64 `json:"retries"`
	AdmissionDeferrals int64 `json:"admission_deferrals"`
	// WaitMeanMs and WaitMaxMs summarise time spent queued before
	// admission.
	WaitMeanMs int64 `json:"wait_mean_ms"`
	WaitMaxMs  int64 `json:"wait_max_ms"`

	Tenants []TenantStatus `json:"tenants,omitempty"`

	// Extra carries publisher-side counters that are not the scheduler's
	// own — the SD daemon folds its recovery/dedupe/corruption metrics in
	// here so mcsdctl's journal verb can read them from the same snapshot.
	Extra map[string]int64 `json:"extra,omitempty"`
}

// Status snapshots the scheduler.
func (s *Scheduler) Status() Status {
	s.mu.Lock()
	st := Status{
		Queued:        s.queued,
		Running:       s.running,
		MaxQueueDepth: s.cfg.depth(),
		Workers:       s.cfg.workers(),
		ReservedBytes: s.reserved,
		BudgetBytes:   s.budget,
	}
	for _, t := range s.tenants {
		if len(t.queue) == 0 && t.served == 0 {
			continue
		}
		st.Tenants = append(st.Tenants, TenantStatus{
			Name: t.name, Queued: len(t.queue), Weight: t.weight, Served: t.served,
		})
	}
	s.mu.Unlock()
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Name < st.Tenants[j].Name })

	st.Submitted = s.metrics.Counter(metrics.SchedSubmitted).Value()
	st.Completed = s.metrics.Counter(metrics.SchedCompleted).Value()
	st.Failed = s.metrics.Counter(metrics.SchedFailed).Value()
	st.Cancelled = s.metrics.Counter(metrics.SchedCancelled).Value()
	st.QueueFullRejects = s.metrics.Counter(metrics.SchedQueueFullRejects).Value()
	st.Retries = s.metrics.Counter(metrics.SchedRetries).Value()
	st.AdmissionDeferrals = s.metrics.Counter(metrics.SchedAdmissionDeferrals).Value()
	wait := s.metrics.Timer(metrics.SchedWait)
	st.WaitMeanMs = wait.Mean().Milliseconds()
	st.WaitMaxMs = wait.Max().Milliseconds()
	return st
}

// MarshalStatus encodes a snapshot for the share's queue-status file.
func MarshalStatus(st Status) ([]byte, error) {
	b, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("sched: encoding status: %w", err)
	}
	return b, nil
}

// UnmarshalStatus decodes a published queue-status file.
func UnmarshalStatus(data []byte) (Status, error) {
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		return Status{}, fmt.Errorf("sched: decoding status: %w", err)
	}
	return st, nil
}

// Format renders the snapshot as the operator-facing table mcsdctl
// prints.
func (st Status) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "queue:     %d/%d waiting, %d running (%d workers)\n",
		st.Queued, st.MaxQueueDepth, st.Running, st.Workers)
	if st.BudgetBytes > 0 {
		fmt.Fprintf(&b, "memory:    %d of %d budget bytes reserved\n",
			st.ReservedBytes, st.BudgetBytes)
	}
	fmt.Fprintf(&b, "lifetime:  %d submitted, %d done, %d failed, %d cancelled\n",
		st.Submitted, st.Completed, st.Failed, st.Cancelled)
	fmt.Fprintf(&b, "pressure:  %d queue-full rejects, %d admission deferrals, %d retries\n",
		st.QueueFullRejects, st.AdmissionDeferrals, st.Retries)
	fmt.Fprintf(&b, "wait:      mean %dms, max %dms\n", st.WaitMeanMs, st.WaitMaxMs)
	for _, t := range st.Tenants {
		fmt.Fprintf(&b, "tenant:    %-14s %d queued, weight %g, served %.2f\n",
			t.Name, t.Queued, t.Weight, t.Served)
	}
	if len(st.Extra) > 0 {
		keys := make([]string, 0, len(st.Extra))
		for k := range st.Extra {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "extra:     %-28s %d\n", k, st.Extra[k])
		}
	}
	return b.String()
}
