package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"mcsd/internal/metrics"
	"mcsd/internal/trace"
)

// State is a job's position in its lifecycle:
// queued → admitted → running → done / failed / cancelled.
type State int32

// Lifecycle states.
const (
	StateQueued State = iota
	StateAdmitted
	StateRunning
	StateDone
	StateFailed
	StateCancelled
)

// String names the state for status output.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateAdmitted:
		return "admitted"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	default:
		return "unknown"
	}
}

// Handle tracks one submitted job.
type Handle struct {
	job *Job
	s   *Scheduler
	ctx context.Context

	done          chan struct{}
	once          sync.Once
	payload       []byte
	err           error
	enqueuedAt    time.Time
	reservedBytes int64
	state         atomic.Int32
	attempts      atomic.Int32
	span          *trace.Span
	queueSpan     *trace.Span

	mu        sync.Mutex
	cancelled bool
	cancelRun context.CancelFunc
}

// Job returns the submitted job.
func (h *Handle) Job() *Job { return h.job }

// State returns the job's current lifecycle state.
func (h *Handle) State() State { return State(h.state.Load()) }

// Attempts returns how many times the executor has been entered.
func (h *Handle) Attempts() int { return int(h.attempts.Load()) }

// Done returns a channel closed when the job reaches a terminal state.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Wait blocks until the job finishes (returning its payload or error) or
// ctx is done. A Wait that times out does not cancel the job.
func (h *Handle) Wait(ctx context.Context) ([]byte, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-h.done:
		return h.payload, h.err
	}
}

// Err returns the job's terminal error, nil before completion or on
// success.
func (h *Handle) Err() error {
	select {
	case <-h.done:
		return h.err
	default:
		return nil
	}
}

// Cancel withdraws the job. A still-queued job is dequeued immediately —
// it never reaches the engine, and Wait returns ErrCancelled at once; a
// running job has its context cancelled. Cancel is idempotent and safe
// after completion.
func (h *Handle) Cancel() {
	h.mu.Lock()
	h.cancelled = true
	cancel := h.cancelRun
	h.mu.Unlock()
	// Flip a queued job straight to cancelled so it can never be admitted,
	// then pull it out of its tenant's queue ourselves — waiting for a
	// free worker to reap it would stall Wait behind running jobs.
	if h.state.CompareAndSwap(int32(StateQueued), int32(StateCancelled)) {
		s := h.s
		found := false
		s.mu.Lock()
		if t, ok := s.tenants[tenantKey(h.job.Tenant)]; ok {
			for i, q := range t.queue {
				if q == h {
					t.queue = append(t.queue[:i], t.queue[i+1:]...)
					s.queued--
					s.metrics.Gauge(metrics.SchedQueueDepth).Set(int64(s.queued))
					found = true
					break
				}
			}
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		if found {
			// Not found means a concurrent dispatch pass reaped it first
			// (dropLocked), which also finishes and counts it.
			s.metrics.Counter(metrics.SchedCancelled).Inc()
			h.finish(nil, ErrCancelled)
		}
		return
	}
	if cancel != nil {
		cancel()
	}
	h.s.mu.Lock()
	h.s.cond.Broadcast()
	h.s.mu.Unlock()
}

// finish records the terminal result exactly once.
func (h *Handle) finish(payload []byte, err error) {
	h.once.Do(func() {
		h.payload, h.err = payload, err
		switch {
		case err == nil:
			h.state.Store(int32(StateDone))
		case errors.Is(err, ErrCancelled):
			h.state.Store(int32(StateCancelled))
		default:
			h.state.Store(int32(StateFailed))
		}
		h.queueSpan.Finish()
		h.span.Finish()
		close(h.done)
	})
}
