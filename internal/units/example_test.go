package units_test

import (
	"fmt"

	"mcsd/internal/units"
)

func ExampleParseBytes() {
	n, _ := units.ParseBytes("600M")
	fmt.Println(n)
	n, _ = units.ParseBytes("1.25G")
	fmt.Println(n)
	// Output:
	// 629145600
	// 1342177280
}

func ExampleFormatBytes() {
	fmt.Println(units.FormatBytes(600 << 20))
	fmt.Println(units.FormatBytes(1342177280))
	// Output:
	// 600M
	// 1.25G
}
