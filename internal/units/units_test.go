package units

import (
	"testing"
	"testing/quick"
)

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"0":       0,
		"512":     512,
		"64K":     64 << 10,
		"64k":     64 << 10,
		"600M":    600 << 20,
		"600MB":   600 << 20,
		"600MiB":  600 << 20,
		"1G":      1 << 30,
		"1.25G":   5 << 28,
		"2T":      2 << 40,
		" 100 ":   100,
		"1.5K":    1536,
		"123B":    123,
		"0.5G":    1 << 29,
		"1000000": 1000000,
	}
	for in, want := range cases {
		got, err := ParseBytes(in)
		if err != nil {
			t.Errorf("ParseBytes(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseBytes(%q) = %d, want %d", in, got, want)
		}
	}
}

func TestParseBytesErrors(t *testing.T) {
	for _, bad := range []string{"", "G", "-5M", "12X34", "abc", "B", "iB",
		"NaN", "NaNM", "Inf", "+InfG", "9999999999T", "1e300G"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Errorf("ParseBytes(%q) accepted", bad)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		0:         "0B",
		512:       "512B",
		1 << 10:   "1K",
		1536:      "1.5K",
		600 << 20: "600M",
		5 << 28:   "1.25G",
		1 << 40:   "1T",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

// Property: parse(format(n)) stays within rounding error of n.
func TestRoundTripProperty(t *testing.T) {
	prop := func(n uint32) bool {
		v := int64(n)
		got, err := ParseBytes(FormatBytes(v))
		if err != nil {
			return false
		}
		// Formatting keeps 2 decimals: error bounded by 1% of the unit.
		diff := got - v
		if diff < 0 {
			diff = -diff
		}
		return float64(diff) <= 0.01*float64(v)+1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// FuzzParseBytes asserts the size parser never panics and never returns a
// negative byte count.
func FuzzParseBytes(f *testing.F) {
	for _, seed := range []string{"600M", "1.25G", "-5K", "", "G", "9999999999T", "1e309", "NaNM"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		n, err := ParseBytes(s)
		if err != nil {
			return
		}
		if n < 0 {
			t.Fatalf("ParseBytes(%q) = %d, negative", s, n)
		}
	})
}
