// Package units parses and formats byte sizes for the McSD command-line
// tools ("600M", "1.25G").
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseBytes converts strings like "512", "64K", "600M", "1.25G" to bytes.
// Suffixes are binary (K=2^10, M=2^20, G=2^30, T=2^40) and
// case-insensitive; an optional trailing "B"/"iB" is accepted.
func ParseBytes(s string) (int64, error) {
	orig := s
	s = strings.TrimSpace(s)
	upper := strings.ToUpper(s)
	upper = strings.TrimSuffix(upper, "IB")
	upper = strings.TrimSuffix(upper, "B")
	if upper == "" {
		return 0, fmt.Errorf("units: empty size %q", orig)
	}
	mult := int64(1)
	switch upper[len(upper)-1] {
	case 'K':
		mult = 1 << 10
		upper = upper[:len(upper)-1]
	case 'M':
		mult = 1 << 20
		upper = upper[:len(upper)-1]
	case 'G':
		mult = 1 << 30
		upper = upper[:len(upper)-1]
	case 'T':
		mult = 1 << 40
		upper = upper[:len(upper)-1]
	}
	if upper == "" {
		return 0, fmt.Errorf("units: missing number in %q", orig)
	}
	v, err := strconv.ParseFloat(upper, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad size %q: %w", orig, err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("units: non-finite size %q", orig)
	}
	if v < 0 {
		return 0, fmt.Errorf("units: negative size %q", orig)
	}
	bytes := v * float64(mult)
	// float64(math.MaxInt64) rounds up to 2^63; reject at the boundary so
	// the int64 conversion cannot overflow into the negatives.
	if bytes >= float64(math.MaxInt64) {
		return 0, fmt.Errorf("units: size %q overflows", orig)
	}
	return int64(bytes), nil
}

// FormatBytes renders n with a binary suffix, e.g. 1310720 -> "1.25M".
func FormatBytes(n int64) string {
	abs := n
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= 1<<40:
		return trim(float64(n)/float64(1<<40)) + "T"
	case abs >= 1<<30:
		return trim(float64(n)/float64(1<<30)) + "G"
	case abs >= 1<<20:
		return trim(float64(n)/float64(1<<20)) + "M"
	case abs >= 1<<10:
		return trim(float64(n)/float64(1<<10)) + "K"
	default:
		return strconv.FormatInt(n, 10) + "B"
	}
}

func trim(v float64) string {
	s := strconv.FormatFloat(v, 'f', 2, 64)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
