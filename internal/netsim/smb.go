package netsim

import (
	"context"
	"sync"
	"time"
)

// SMB emulates the Sandia Micro Benchmark traffic the paper runs on every
// node except the SD node "to emulate the routine work" (§V-A). It drives a
// configurable fraction of the link bandwidth with a message-pattern mix of
// point-to-point ping-pongs and all-to-all bursts.
//
// For the real engine, Run consumes tokens from the link limiters so that
// foreground NFS/smartFAM traffic experiences a loaded switch. For the
// analytic simulator, Load() is fed to Profile.TransferTimeLoaded.
type SMB struct {
	// Load is the fraction of link bandwidth occupied by background
	// traffic, in [0, 1).
	Load float64
	// MessageSize is the size of each emulated message in bytes.
	MessageSize int
	// PingPongRatio is the fraction of traffic sent as ping-pongs (the
	// rest is all-to-all bursts). It only affects the pacing granularity.
	PingPongRatio float64

	mu   sync.Mutex
	sent int64
}

// NewSMB returns an SMB emulator with the paper-like defaults: 10% link
// load, 8 KiB messages, half ping-pong half all-to-all.
func NewSMB(load float64) *SMB {
	if load < 0 {
		load = 0
	}
	if load > 0.95 {
		load = 0.95
	}
	return &SMB{Load: load, MessageSize: 8 << 10, PingPongRatio: 0.5}
}

// BytesSent reports the total number of background bytes injected so far.
func (s *SMB) BytesSent() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sent
}

// Run injects background traffic into both directions of the link until ctx
// is cancelled. It blocks; run it in its own goroutine.
func (s *SMB) Run(ctx context.Context, link *Link) error {
	if s.Load <= 0 {
		<-ctx.Done()
		return ctx.Err()
	}
	// Target byte rate per direction.
	target := link.Profile.BandwidthBps * s.Load
	interval := time.Duration(float64(s.MessageSize) / target * float64(time.Second))
	if interval < 200*time.Microsecond {
		// Batch messages so the pacing loop does not spin.
		interval = 200 * time.Microsecond
	}
	batch := int(target * interval.Seconds())
	if batch < 1 {
		batch = 1
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			// Ping-pong traffic occupies both directions; all-to-all
			// bursts are modelled as the same byte volume.
			if err := link.AtoB.WaitN(ctx, batch); err != nil {
				return err
			}
			if err := link.BtoA.WaitN(ctx, batch); err != nil {
				return err
			}
			s.mu.Lock()
			s.sent += int64(2 * batch)
			s.mu.Unlock()
		}
	}
}
