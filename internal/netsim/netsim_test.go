package netsim

import (
	"context"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestTransferTimeMonotonicInSize(t *testing.T) {
	p := ProfileGigabitEthernet
	prev := time.Duration(0)
	for _, n := range []int64{0, 1, 1 << 10, 1 << 20, 1 << 30} {
		d := p.TransferTime(n)
		if d <= prev && n > 0 {
			t.Fatalf("TransferTime(%d) = %v, not greater than previous %v", n, d, prev)
		}
		prev = d
	}
}

func TestTransferTimeNegativeClamped(t *testing.T) {
	p := ProfileGigabitEthernet
	if got, want := p.TransferTime(-5), p.TransferTime(0); got != want {
		t.Fatalf("TransferTime(-5) = %v, want %v", got, want)
	}
}

func TestTransferTimeGigabitScale(t *testing.T) {
	// 1 GiB over ~109 MB/s should take roughly 9.9 s (+latency).
	d := ProfileGigabitEthernet.TransferTime(1 << 30)
	if d < 9*time.Second || d > 11*time.Second {
		t.Fatalf("1 GiB over 1GbE = %v, want ~10s", d)
	}
}

func TestTransferTimeLoadedSlower(t *testing.T) {
	p := ProfileGigabitEthernet
	idle := p.TransferTimeLoaded(1<<20, 0)
	loaded := p.TransferTimeLoaded(1<<20, 0.5)
	if loaded <= idle {
		t.Fatalf("loaded transfer %v not slower than idle %v", loaded, idle)
	}
	// 50% load should roughly double the serialization part.
	if loaded > idle*3 {
		t.Fatalf("50%% load slowed transfer by more than 3x: %v vs %v", loaded, idle)
	}
}

func TestTransferTimeLoadClamped(t *testing.T) {
	p := ProfileGigabitEthernet
	if p.TransferTimeLoaded(1<<20, 5.0) <= 0 {
		t.Fatal("over-unity load must clamp, not divide by <= 0")
	}
	if got, want := p.TransferTimeLoaded(1<<20, -1), p.TransferTimeLoaded(1<<20, 0); got != want {
		t.Fatalf("negative load = %v, want same as zero load %v", got, want)
	}
}

func TestProfileOrdering(t *testing.T) {
	n := int64(100 << 20)
	ib := ProfileInfiniBand.TransferTime(n)
	ge := ProfileGigabitEthernet.TransferTime(n)
	fe := ProfileFastEthernet.TransferTime(n)
	if !(ib < ge && ge < fe) {
		t.Fatalf("profile ordering wrong: IB=%v 1GbE=%v 100MbE=%v", ib, ge, fe)
	}
}

func TestNewLimiterRejectsBadRate(t *testing.T) {
	if _, err := NewLimiter(0, 10); err == nil {
		t.Fatal("rate 0 accepted")
	}
	if _, err := NewLimiter(-1, 10); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestLimiterAllowNWithinBurst(t *testing.T) {
	l, err := NewLimiter(1e6, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !l.AllowN(1000) {
		t.Fatal("full burst should be immediately available")
	}
	if l.AllowN(1000) {
		t.Fatal("bucket should be empty right after draining the burst")
	}
}

func TestLimiterPacesToRate(t *testing.T) {
	// 1 MB/s, tiny burst: sending 100 KB should take ~100 ms.
	l, err := NewLimiter(1e6, 4096)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := l.WaitN(context.Background(), 100_000); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 70*time.Millisecond {
		t.Fatalf("100KB at 1MB/s took %v, want >= ~96ms", elapsed)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("100KB at 1MB/s took %v, way over budget", elapsed)
	}
}

func TestLimiterWaitNRespectsContext(t *testing.T) {
	l, err := NewLimiter(1, 1) // 1 byte/s: effectively stuck
	if err != nil {
		t.Fatal(err)
	}
	l.AllowN(1) // drain
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := l.WaitN(ctx, 100); err == nil {
		t.Fatal("WaitN returned nil despite cancelled context")
	}
}

func TestLimiterLargeRequestExceedingBurst(t *testing.T) {
	l, err := NewLimiter(1e8, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// 1 MB >> burst: must still complete (sliced), not deadlock.
	done := make(chan error, 1)
	go func() { done <- l.WaitN(context.Background(), 1<<20) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitN larger than burst deadlocked")
	}
}

// Property: a limiter never admits more than rate*t + burst bytes within a
// window of length t, for any pattern of AllowN calls.
func TestLimiterNeverExceedsRateProperty(t *testing.T) {
	prop := func(reqs []uint16) bool {
		const rate, burst = 1e6, 2048.0
		l, err := NewLimiter(rate, burst)
		if err != nil {
			return false
		}
		start := time.Now()
		var admitted int64
		for _, r := range reqs {
			n := int(r%1500) + 1
			if l.AllowN(n) {
				admitted += int64(n)
			}
		}
		elapsed := time.Since(start).Seconds()
		limit := rate*elapsed + burst + 1
		return float64(admitted) <= limit
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestThrottledConnEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// 2 MB/s write limiter; sending 200 KB should take >= ~80 ms.
	lim, err := NewLimiter(2e6, 8192)
	if err != nil {
		t.Fatal(err)
	}

	const total = 200_000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 32<<10)
		var got int
		for got < total {
			n, err := c.Read(buf)
			got += n
			if err != nil {
				break
			}
		}
	}()

	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn := Throttle(t.Context(), raw, nil, lim)
	defer conn.Close()

	start := time.Now()
	payload := make([]byte, 16<<10)
	sent := 0
	for sent < total {
		n, err := conn.Write(payload)
		if err != nil {
			t.Fatal(err)
		}
		sent += n
	}
	elapsed := time.Since(start)
	wg.Wait()
	if elapsed < 60*time.Millisecond {
		t.Fatalf("200KB at 2MB/s took %v, throttling not effective", elapsed)
	}
}

func TestLinkSharedMediumContention(t *testing.T) {
	// Two writers sharing one direction of a link must together not exceed
	// the link rate.
	link := &Link{Profile: ProfileFastEthernet}
	lim, err := NewLimiter(1e6, 4096)
	if err != nil {
		t.Fatal(err)
	}
	link.AtoB = lim

	const each = 50_000
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = lim.WaitN(context.Background(), each)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	// 100 KB total at 1 MB/s: >= ~90 ms even shared.
	if elapsed < 60*time.Millisecond {
		t.Fatalf("shared link admitted 100KB in %v, want >= ~96ms", elapsed)
	}
}

func TestNewLinkPanicsOnZeroBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLink with zero bandwidth did not panic")
		}
	}()
	NewLink(Profile{Name: "broken", BandwidthBps: 0})
}

func TestSMBLoadClamping(t *testing.T) {
	if s := NewSMB(-0.5); s.Load != 0 {
		t.Fatalf("negative load = %v, want 0", s.Load)
	}
	if s := NewSMB(2.0); s.Load != 0.95 {
		t.Fatalf("over-unity load = %v, want 0.95", s.Load)
	}
}

func TestSMBInjectsTraffic(t *testing.T) {
	link := NewLink(Profile{Name: "test", BandwidthBps: 10e6, Latency: 0})
	smb := NewSMB(0.5)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	err := smb.Run(ctx, link)
	if err != context.DeadlineExceeded {
		t.Fatalf("Run returned %v, want context.DeadlineExceeded", err)
	}
	sent := smb.BytesSent()
	if sent == 0 {
		t.Fatal("SMB injected no traffic")
	}
	// At 50% of 10 MB/s for ~0.15 s in each direction, expect on the order
	// of 1.5 MB; allow generous slack but catch runaway injection.
	if sent > 4<<20 {
		t.Fatalf("SMB injected %d bytes in 150ms, exceeds configured load", sent)
	}
}

func TestSMBZeroLoadIdles(t *testing.T) {
	link := NewLink(ProfileGigabitEthernet)
	smb := NewSMB(0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := smb.Run(ctx, link); err != context.DeadlineExceeded {
		t.Fatalf("Run returned %v, want context.DeadlineExceeded", err)
	}
	if smb.BytesSent() != 0 {
		t.Fatal("zero-load SMB sent bytes")
	}
}
