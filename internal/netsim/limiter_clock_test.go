package netsim

import (
	"testing"
	"time"
)

// TestLimiterInjectedClockOnly pins the fix for a mixed-clock bug: NewLimiter
// used to seed `last` from time.Now, so a limiter whose `now` hook a test
// replaces computed its first elapsed interval across two unrelated
// timelines. With a fake clock whose epoch is far in the wall clock's past,
// elapsed came out negative forever and the bucket never refilled. `last`
// must instead be seeded lazily from the first reading of the injected
// clock.
func TestLimiterInjectedClockOnly(t *testing.T) {
	l, err := NewLimiter(100, 100) // 100 B/s, burst 100
	if err != nil {
		t.Fatal(err)
	}
	// Fake timeline rooted decades before the real wall clock.
	fake := time.Unix(1_000_000_000, 0)
	l.now = func() time.Time { return fake }

	if !l.AllowN(100) {
		t.Fatal("initial burst not available")
	}
	if l.AllowN(1) {
		t.Fatal("bucket should be empty after consuming the burst")
	}

	// One fake second at 100 B/s refills exactly 100 tokens — no more, no
	// less — regardless of what the wall clock did meanwhile.
	fake = fake.Add(1 * time.Second)
	if !l.AllowN(100) {
		t.Fatal("bucket did not refill on the injected timeline")
	}
	if l.AllowN(1) {
		t.Fatal("bucket refilled beyond the injected elapsed time")
	}
}
