// Package netsim models the cluster interconnect of the McSD testbed.
//
// It serves two consumers:
//
//   - The real execution engine wraps its TCP loopback connections in
//     Throttle so that bytes moving between the "host" and the "SD node"
//     pay Gigabit-Ethernet costs, exactly as NFS traffic did in the paper's
//     testbed.
//   - The discrete-event simulator (internal/sim) uses Profile.TransferTime
//     as the analytic cost of moving data across a link, including the
//     background load injected by the Sandia Micro Benchmark emulator.
package netsim

import (
	"fmt"
	"time"
)

// Profile describes one interconnect technology.
type Profile struct {
	Name string
	// BandwidthBps is the usable link bandwidth in bytes per second.
	BandwidthBps float64
	// Latency is the one-way message latency.
	Latency time.Duration
	// PerMessageOverhead is protocol overhead added to every transfer on
	// top of the payload (headers, RPC framing), in bytes.
	PerMessageOverhead int
}

// Interconnect profiles. Usable bandwidth is set below the signalling rate
// to account for protocol overhead (~87% of 1 Gbit for TCP/NFS traffic,
// matching common measurements on the paper's class of hardware).
var (
	// ProfileGigabitEthernet models the testbed's 1000 Mbps switch.
	ProfileGigabitEthernet = Profile{
		Name:               "1GbE",
		BandwidthBps:       109e6, // ~87% of 125 MB/s
		Latency:            100 * time.Microsecond,
		PerMessageOverhead: 128,
	}
	// ProfileFastEthernet models 100 Mbps Ethernet.
	ProfileFastEthernet = Profile{
		Name:               "100MbE",
		BandwidthBps:       11.5e6,
		Latency:            150 * time.Microsecond,
		PerMessageOverhead: 128,
	}
	// ProfileInfiniBand models the QDR InfiniBand upgrade contemplated in
	// the paper's future work (§VI).
	ProfileInfiniBand = Profile{
		Name:               "IB-QDR",
		BandwidthBps:       3.2e9,
		Latency:            2 * time.Microsecond,
		PerMessageOverhead: 64,
	}
)

// TransferTime returns the analytic time to move n payload bytes across an
// otherwise idle link.
func (p Profile) TransferTime(n int64) time.Duration {
	if n < 0 {
		n = 0
	}
	bytes := float64(n + int64(p.PerMessageOverhead))
	return p.Latency + time.Duration(bytes/p.BandwidthBps*float64(time.Second))
}

// TransferTimeLoaded returns the transfer time when a fraction load of the
// link bandwidth is consumed by background traffic (0 <= load < 1).
func (p Profile) TransferTimeLoaded(n int64, load float64) time.Duration {
	if load < 0 {
		load = 0
	}
	if load >= 0.99 {
		load = 0.99
	}
	if n < 0 {
		n = 0
	}
	bytes := float64(n + int64(p.PerMessageOverhead))
	bw := p.BandwidthBps * (1 - load)
	return p.Latency + time.Duration(bytes/bw*float64(time.Second))
}

// String implements fmt.Stringer.
func (p Profile) String() string {
	return fmt.Sprintf("%s (%.0f MB/s, %v)", p.Name, p.BandwidthBps/1e6, p.Latency)
}
