package netsim

import (
	"context"
	"net"
	"time"
)

// Throttle wraps a net.Conn so that reads and writes are paced by the given
// limiters. Passing the same limiter for several connections models a shared
// link. Either limiter may be nil to leave that direction unthrottled.
//
// ctx bounds every pacing wait for the connection's lifetime: cancelling it
// releases blocked Reads/Writes, so a modelled slow link cannot outlive the
// run that created it (ctxflow: no context roots below cmd/).
func Throttle(ctx context.Context, c net.Conn, read, write *Limiter) net.Conn {
	return &throttledConn{Conn: c, ctx: ctx, read: read, write: write}
}

type throttledConn struct {
	net.Conn
	ctx   context.Context
	read  *Limiter
	write *Limiter
}

func (t *throttledConn) Read(p []byte) (int, error) {
	n, err := t.Conn.Read(p)
	if n > 0 && t.read != nil {
		if werr := t.read.WaitN(t.ctx, n); werr != nil && err == nil {
			err = werr
		}
	}
	return n, err
}

func (t *throttledConn) Write(p []byte) (int, error) {
	if t.write != nil {
		if err := t.write.WaitN(t.ctx, len(p)); err != nil {
			return 0, err
		}
	}
	return t.Conn.Write(p)
}

// Listener wraps a net.Listener so every accepted connection is throttled by
// the shared limiters, with waits bounded by ctx as in Throttle.
func Listener(ctx context.Context, l net.Listener, read, write *Limiter) net.Listener {
	return &throttledListener{Listener: l, ctx: ctx, read: read, write: write}
}

type throttledListener struct {
	net.Listener
	ctx   context.Context
	read  *Limiter
	write *Limiter
}

func (l *throttledListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return Throttle(l.ctx, c, l.read, l.write), nil
}

// Link is a shared full-duplex medium between two stations, built from one
// limiter per direction at the profile's bandwidth. It is the real-engine
// analogue of the switch port an SD node hangs off.
type Link struct {
	Profile Profile
	// AtoB paces traffic from station A to station B; BtoA the reverse.
	AtoB *Limiter
	BtoA *Limiter
}

// NewLink builds a link for the given profile. Burst is one jumbo window
// (256 KiB) so short messages are not over-delayed.
func NewLink(p Profile) *Link {
	const burst = 256 << 10
	ab, err := NewLimiter(p.BandwidthBps, burst)
	if err != nil {
		panic("netsim: profile has non-positive bandwidth: " + p.Name)
	}
	ba, _ := NewLimiter(p.BandwidthBps, burst)
	return &Link{Profile: p, AtoB: ab, BtoA: ba}
}

// DialThrottled dials the address and throttles the resulting connection as
// station A of the link. ctx bounds the connection's pacing waits.
func (l *Link) DialThrottled(ctx context.Context, network, addr string, timeout time.Duration) (net.Conn, error) {
	c, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	return Throttle(ctx, c, l.BtoA, l.AtoB), nil
}
