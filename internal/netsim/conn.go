package netsim

import (
	"context"
	"net"
	"sync"
	"time"
)

// Throttle wraps a net.Conn so that reads and writes are paced by the given
// limiters. Passing the same limiter for several connections models a shared
// link. Either limiter may be nil to leave that direction unthrottled.
//
// ctx bounds every pacing wait for the connection's lifetime: cancelling it
// releases blocked Reads/Writes, so a modelled slow link cannot outlive the
// run that created it (ctxflow: no context roots below cmd/).
func Throttle(ctx context.Context, c net.Conn, read, write *Limiter) net.Conn {
	return &throttledConn{Conn: c, ctx: ctx, read: read, write: write}
}

type throttledConn struct {
	net.Conn
	ctx   context.Context
	read  *Limiter
	write *Limiter
}

func (t *throttledConn) Read(p []byte) (int, error) {
	n, err := t.Conn.Read(p)
	if n > 0 && t.read != nil {
		if werr := t.read.WaitN(t.ctx, n); werr != nil && err == nil {
			err = werr
		}
	}
	return n, err
}

func (t *throttledConn) Write(p []byte) (int, error) {
	if t.write != nil {
		if err := t.write.WaitN(t.ctx, len(p)); err != nil {
			return 0, err
		}
	}
	return t.Conn.Write(p)
}

// Listener wraps a net.Listener so every accepted connection is throttled by
// the shared limiters, with waits bounded by ctx as in Throttle.
func Listener(ctx context.Context, l net.Listener, read, write *Limiter) net.Listener {
	return &throttledListener{Listener: l, ctx: ctx, read: read, write: write}
}

type throttledListener struct {
	net.Listener
	ctx   context.Context
	read  *Limiter
	write *Limiter
}

func (l *throttledListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return Throttle(l.ctx, c, l.read, l.write), nil
}

// Delay wraps a conn so every Write is delivered to the underlying conn
// one-way latency later, asynchronously: the writer returns immediately
// and a pump goroutine releases each buffered write at its due time. That
// models propagation delay the way a real link does — back-to-back
// (pipelined) messages overlap the latency, while strict request/response
// traffic pays a full round trip per exchange. Wrap both endpoints (or
// compose with DelayListener) to charge the latency in both directions;
// compose with Throttle to also charge bandwidth.
//
// ctx bounds the pump's lifetime: cancelling it drops undelivered writes
// and fails subsequent ones.
func Delay(ctx context.Context, c net.Conn, oneWay time.Duration) net.Conn {
	if oneWay <= 0 {
		return c
	}
	d := &delayedConn{
		Conn:   c,
		ctx:    ctx,
		oneWay: oneWay,
		now:    time.Now,
		sleep:  time.Sleep,
		q:      make(chan delayedWrite, 1024),
	}
	go d.pump()
	return d
}

type delayedWrite struct {
	data []byte
	due  time.Time
}

type delayedConn struct {
	net.Conn
	ctx    context.Context
	oneWay time.Duration
	now    func() time.Time // test hooks, as in Limiter (simdet)
	sleep  func(time.Duration)
	q      chan delayedWrite

	mu   sync.Mutex
	werr error
}

func (d *delayedConn) Write(p []byte) (int, error) {
	d.mu.Lock()
	werr := d.werr
	d.mu.Unlock()
	if werr != nil {
		return 0, werr
	}
	data := make([]byte, len(p))
	copy(data, p)
	w := delayedWrite{data: data, due: d.now().Add(d.oneWay)}
	select {
	case d.q <- w:
		return len(p), nil
	case <-d.ctx.Done():
		return 0, d.ctx.Err()
	}
}

// pump delivers buffered writes at their due times, in order. A delivery
// failure is latched and surfaced by the next Write; the pump keeps
// draining so writers never wedge on a dead conn.
func (d *delayedConn) pump() {
	for {
		select {
		case <-d.ctx.Done():
			return
		case w := <-d.q:
			if wait := w.due.Sub(d.now()); wait > 0 {
				d.sleep(wait)
			}
			d.mu.Lock()
			werr := d.werr
			d.mu.Unlock()
			if werr != nil {
				continue
			}
			if _, err := d.Conn.Write(w.data); err != nil {
				d.mu.Lock()
				if d.werr == nil {
					d.werr = err
				}
				d.mu.Unlock()
			}
		}
	}
}

// DelayListener wraps a listener so every accepted connection's writes are
// delivered one-way latency later (the server->client direction of a
// modelled link; pair it with Delay on the client side for a full RTT).
func DelayListener(ctx context.Context, l net.Listener, oneWay time.Duration) net.Listener {
	return &delayListener{Listener: l, ctx: ctx, oneWay: oneWay}
}

type delayListener struct {
	net.Listener
	ctx    context.Context
	oneWay time.Duration
}

func (l *delayListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return Delay(l.ctx, c, l.oneWay), nil
}

// Link is a shared full-duplex medium between two stations, built from one
// limiter per direction at the profile's bandwidth. It is the real-engine
// analogue of the switch port an SD node hangs off.
type Link struct {
	Profile Profile
	// AtoB paces traffic from station A to station B; BtoA the reverse.
	AtoB *Limiter
	BtoA *Limiter
}

// NewLink builds a link for the given profile. Burst is one jumbo window
// (256 KiB) so short messages are not over-delayed.
func NewLink(p Profile) *Link {
	const burst = 256 << 10
	ab, err := NewLimiter(p.BandwidthBps, burst)
	if err != nil {
		panic("netsim: profile has non-positive bandwidth: " + p.Name)
	}
	ba, _ := NewLimiter(p.BandwidthBps, burst)
	return &Link{Profile: p, AtoB: ab, BtoA: ba}
}

// DialThrottled dials the address and throttles the resulting connection as
// station A of the link. ctx bounds the connection's pacing waits.
func (l *Link) DialThrottled(ctx context.Context, network, addr string, timeout time.Duration) (net.Conn, error) {
	c, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	return Throttle(ctx, c, l.BtoA, l.AtoB), nil
}
