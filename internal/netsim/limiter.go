package netsim

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Limiter is a token-bucket rate limiter measured in bytes per second.
// Tokens accrue continuously up to Burst; WaitN blocks until n tokens are
// available. It is safe for concurrent use, which makes one Limiter usable
// as a shared medium: several connections throttled by the same Limiter
// contend for the same modelled link, the way NFS traffic and SMB
// background traffic shared the testbed's switch.
type Limiter struct {
	mu     sync.Mutex
	rate   float64 // tokens (bytes) per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time // test hook
	sleep  func(time.Duration)
}

// ErrLimiterRate reports a non-positive rate passed to NewLimiter.
var ErrLimiterRate = errors.New("netsim: limiter rate must be positive")

// NewLimiter returns a limiter that admits rate bytes per second with the
// given burst allowance. A burst below 1 is raised to 1 so progress is
// always possible.
func NewLimiter(rate float64, burst float64) (*Limiter, error) {
	if rate <= 0 {
		return nil, ErrLimiterRate
	}
	if burst < 1 {
		burst = 1
	}
	return &Limiter{
		rate:   rate,
		burst:  burst,
		tokens: burst,
		now:    time.Now,
		sleep:  time.Sleep,
	}, nil
}

// advance refreshes the token count to the current time. Callers must hold mu.
//
// last is seeded lazily from the FIRST clock reading rather than in
// NewLimiter: seeding it from time.Now there would mix the wall clock into
// a limiter whose now hook a test later replaces, making the first elapsed
// computation span two unrelated timelines (simdet).
func (l *Limiter) advance() {
	now := l.now()
	if l.last.IsZero() {
		l.last = now
	}
	elapsed := now.Sub(l.last).Seconds()
	if elapsed > 0 {
		l.tokens += elapsed * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
		l.last = now
	}
}

// WaitN blocks until n tokens are available or ctx is done. Requests larger
// than the burst are admitted in burst-sized slices, so arbitrarily large
// transfers still pace at the configured rate.
func (l *Limiter) WaitN(ctx context.Context, n int) error {
	for n > 0 {
		slice := n
		if float64(slice) > l.burst {
			slice = int(l.burst)
		}
		if err := l.waitSlice(ctx, slice); err != nil {
			return err
		}
		n -= slice
	}
	return nil
}

func (l *Limiter) waitSlice(ctx context.Context, n int) error {
	for {
		l.mu.Lock()
		l.advance()
		if l.tokens >= float64(n) {
			l.tokens -= float64(n)
			l.mu.Unlock()
			return nil
		}
		need := float64(n) - l.tokens
		wait := time.Duration(need / l.rate * float64(time.Second))
		l.mu.Unlock()
		if wait < 50*time.Microsecond {
			wait = 50 * time.Microsecond
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		l.sleep(wait)
	}
}

// AllowN reports whether n tokens are immediately available, consuming them
// if so. It never blocks.
func (l *Limiter) AllowN(n int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.advance()
	if l.tokens >= float64(n) {
		l.tokens -= float64(n)
		return true
	}
	return false
}

// Rate returns the configured rate in bytes per second.
func (l *Limiter) Rate() float64 { return l.rate }
