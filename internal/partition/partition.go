// Package partition implements the paper's Partitioning/Merging extension
// to the Phoenix runtime (§IV-B, §IV-C, Figs. 6 and 7).
//
// Native Phoenix keeps the input and all intermediate pairs in memory, so
// it cannot run an application whose data does not comfortably fit — and it
// thrashes long before that. The extension cuts a large input into
// fragments no bigger than a partition size, pushes every fragment boundary
// forward to the next delimiter so no record is torn (the integrity check
// of Fig. 7), runs the unmodified MapReduce procedure over each fragment in
// turn, and folds the per-fragment outputs together with a user-supplied
// Merge function (Fig. 6's two-stage workflow).
package partition

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// DefaultDelimiters are the integrity-check stop bytes when the programmer
// does not define their own symbol: "the first space, return" (Fig. 7).
var DefaultDelimiters = []byte{' ', '\n', '\r', '\t'}

// Options configures a partitioner.
type Options struct {
	// FragmentSize is the [partition-size] argument: the draft number of
	// bytes per fragment before the integrity check extends it. Zero or
	// negative means "run in native way" — one fragment with everything
	// (§IV-C: "If there is no [partition-size] parameter, the program
	// will run in native way").
	FragmentSize int64
	// Delimiters are the bytes at which a record may legally end. Empty
	// means DefaultDelimiters.
	Delimiters []byte
	// MaxScan bounds the integrity check's extra displacement; 0 means
	// unbounded (scan to EOF if no delimiter appears).
	MaxScan int64
}

func (o Options) delims() []byte {
	if len(o.Delimiters) == 0 {
		return DefaultDelimiters
	}
	return o.Delimiters
}

// ErrScanLimit reports an integrity check that ran past MaxScan without
// finding a delimiter — the input is not partition-able at this size.
var ErrScanLimit = errors.New("partition: no delimiter within MaxScan of fragment boundary")

// Scanner yields fragments of a stream, one at a time, so only one fragment
// is ever resident — the property that lets McSD process data sets larger
// than the storage node's memory.
type Scanner struct {
	r      *bufio.Reader
	opts   Options
	isDel  [256]bool
	done   bool
	serial int
}

// NewScanner returns a scanner over r with the given options.
func NewScanner(r io.Reader, opts Options) *Scanner {
	s := &Scanner{r: bufio.NewReaderSize(r, 256<<10), opts: opts}
	for _, d := range opts.delims() {
		s.isDel[d] = true
	}
	return s
}

// Next returns the next fragment, or io.EOF after the last one. The
// returned slice is freshly allocated and owned by the caller.
func (s *Scanner) Next() ([]byte, error) {
	if s.done {
		return nil, io.EOF
	}
	if s.opts.FragmentSize <= 0 {
		// Native mode: the whole remaining stream is one fragment.
		data, err := io.ReadAll(s.r)
		s.done = true
		if err != nil {
			return nil, fmt.Errorf("partition: reading native fragment: %w", err)
		}
		if len(data) == 0 {
			return nil, io.EOF
		}
		s.serial++
		return data, nil
	}

	buf := make([]byte, s.opts.FragmentSize)
	n, err := io.ReadFull(s.r, buf)
	if err == io.EOF {
		s.done = true
		return nil, io.EOF
	}
	if err == io.ErrUnexpectedEOF {
		// Short final fragment.
		s.done = true
		s.serial++
		return buf[:n], nil
	}
	if err != nil {
		return nil, fmt.Errorf("partition: reading fragment: %w", err)
	}

	// Integrity check (Fig. 7): starting at the draft boundary, advance
	// byte by byte until a delimiter ends the record, then cut after it.
	if s.isDel[buf[n-1]] {
		s.serial++
		return buf, nil
	}
	var extra int64
	for {
		b, err := s.r.ReadByte()
		if err == io.EOF {
			s.done = true
			break
		}
		if err != nil {
			return nil, fmt.Errorf("partition: integrity check: %w", err)
		}
		buf = append(buf, b)
		extra++
		if s.isDel[b] {
			break
		}
		if s.opts.MaxScan > 0 && extra >= s.opts.MaxScan {
			return nil, fmt.Errorf("%w (scanned %d bytes)", ErrScanLimit, extra)
		}
	}
	s.serial++
	return buf, nil
}

// Fragments reports how many fragments have been returned so far.
func (s *Scanner) Fragments() int { return s.serial }

// Split partitions an in-memory byte slice, returning all fragments at
// once. It is a convenience for tests and small inputs; large inputs should
// stream through a Scanner.
func Split(data []byte, opts Options) ([][]byte, error) {
	s := NewScanner(newBytesReader(data), opts)
	var out [][]byte
	for {
		frag, err := s.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, frag)
	}
}

// IntegrityDisplacement returns the extra displacement the integrity check
// would add at the given draft boundary of data: the distance to one past
// the first delimiter at or after pos-1's successor. It mirrors Fig. 7 as a
// pure function for direct testing. ok is false when no delimiter exists
// before EOF (the fragment extends to EOF).
func IntegrityDisplacement(data []byte, pos int, delims []byte) (extra int, ok bool) {
	if len(delims) == 0 {
		delims = DefaultDelimiters
	}
	var isDel [256]bool
	for _, d := range delims {
		isDel[d] = true
	}
	if pos <= 0 || pos >= len(data) {
		// Nothing before the boundary to fix, or the boundary is at EOF:
		// either way the fragment ends legitimately.
		return 0, pos == 0 || pos == len(data)
	}
	if isDel[data[pos-1]] {
		return 0, true
	}
	for i := pos; i < len(data); i++ {
		extra++
		if isDel[data[i]] {
			return extra, true
		}
	}
	return extra, false
}

// newBytesReader avoids importing bytes just for one constructor.
func newBytesReader(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct {
	b []byte
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}
