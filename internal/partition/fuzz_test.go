package partition

import (
	"bytes"
	"testing"
)

// FuzzSplit asserts the partitioner's contract on arbitrary inputs: no
// panic, fragments reassemble exactly, no empty fragments, and every
// non-final fragment ends at a delimiter.
func FuzzSplit(f *testing.F) {
	f.Add([]byte("hello world foo bar"), int64(5))
	f.Add([]byte(""), int64(3))
	f.Add([]byte("nodershere"), int64(2))
	f.Add([]byte(" \n\t\r "), int64(1))
	f.Add(bytes.Repeat([]byte("a b "), 100), int64(7))

	f.Fuzz(func(t *testing.T, data []byte, fragSize int64) {
		if fragSize > int64(len(data))+10 {
			fragSize = int64(len(data)) + 10
		}
		frags, err := Split(data, Options{FragmentSize: fragSize})
		if err != nil {
			return // only ErrScanLimit-style failures, none configured here
		}
		var joined []byte
		for i, fr := range frags {
			if len(fr) == 0 {
				t.Fatalf("fragment %d is empty", i)
			}
			joined = append(joined, fr...)
		}
		if !bytes.Equal(joined, data) {
			t.Fatalf("fragments do not reassemble: %d bytes vs %d", len(joined), len(data))
		}
		if fragSize > 0 {
			for i, fr := range frags {
				if i == len(frags)-1 {
					continue
				}
				last := fr[len(fr)-1]
				if last != ' ' && last != '\n' && last != '\r' && last != '\t' {
					t.Fatalf("fragment %d ends mid-record with %q", i, last)
				}
			}
		}
	})
}

// FuzzIntegrityDisplacement asserts the Fig. 7 pure function never panics
// and the returned displacement lands one past a delimiter (or EOF).
func FuzzIntegrityDisplacement(f *testing.F) {
	f.Add([]byte("hello world"), 3)
	f.Add([]byte(""), 0)
	f.Add([]byte("x"), 5)
	f.Fuzz(func(t *testing.T, data []byte, pos int) {
		extra, ok := IntegrityDisplacement(data, pos, nil)
		if extra < 0 {
			t.Fatalf("negative displacement %d", extra)
		}
		if ok && pos > 0 && pos < len(data) && extra > 0 {
			end := pos + extra
			if end > len(data) {
				t.Fatalf("displacement %d runs past EOF", extra)
			}
			b := data[end-1]
			if b != ' ' && b != '\n' && b != '\r' && b != '\t' {
				t.Fatalf("displacement lands on %q, not a delimiter", b)
			}
		}
	})
}
