package partition

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// readRange runs a RangeReader over data[LeadIn(start):] for [start, end).
func readRange(t *testing.T, data []byte, start, end int64) []byte {
	t.Helper()
	rr, err := NewRangeReader(bytes.NewReader(data[LeadIn(start):]), start, end, nil)
	if err != nil {
		t.Fatalf("NewRangeReader(%d, %d): %v", start, end, err)
	}
	out, err := io.ReadAll(rr)
	if err != nil {
		t.Fatalf("range [%d,%d): %v", start, end, err)
	}
	return out
}

// TestRangeReaderTiles is the load-bearing property: cutting a stream at
// arbitrary byte offsets and concatenating each range's aligned view must
// reproduce the stream exactly — every byte served once, by exactly one
// range. This is what makes fleet scatter/gather lossless without any
// cross-node coordination.
func TestRangeReaderTiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	corpora := [][]byte{
		[]byte("alpha beta gamma delta epsilon zeta eta theta"),
		[]byte("  leading  and   trailing   runs  \n\n of\tdelims \r\n"),
		[]byte("oneverylongwordwithnodelimitersatallanywhereinside"),
		[]byte("x"),
		[]byte(" "),
		randomText(rng, 10_000),
	}
	for ci, data := range corpora {
		for trial := 0; trial < 50; trial++ {
			cuts := randomCuts(rng, int64(len(data)))
			var got []byte
			for i := 0; i+1 < len(cuts); i++ {
				got = append(got, readRange(t, data, cuts[i], cuts[i+1])...)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("corpus %d cuts %v: reassembled %d bytes != original %d\n got: %q\nwant: %q",
					ci, cuts, len(got), len(data), got, data)
			}
		}
	}
}

// TestRangeReaderWordAligned checks each range's view is record-aligned.
// Splitting every range's output into words independently and
// concatenating must reproduce the whole-stream word sequence: a view that
// started or ended mid-word would tear that word into two fields and
// break the comparison.
func TestRangeReaderWordAligned(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := randomText(rng, 20_000)
	total := strings.Fields(string(data))
	for trial := 0; trial < 30; trial++ {
		cuts := randomCuts(rng, int64(len(data)))
		var words []string
		for i := 0; i+1 < len(cuts); i++ {
			part := readRange(t, data, cuts[i], cuts[i+1])
			words = append(words, strings.Fields(string(part))...)
		}
		if len(words) != len(total) {
			t.Fatalf("cuts %v: %d words across ranges, want %d", cuts, len(words), len(total))
		}
		for i := range words {
			if words[i] != total[i] {
				t.Fatalf("cuts %v: word %d = %q, want %q", cuts, i, words[i], total[i])
			}
		}
	}
}

func TestRangeReaderEdges(t *testing.T) {
	data := []byte("aa bb cc")
	cases := []struct {
		start, end int64
		want       string
	}{
		{0, 8, "aa bb cc"},   // whole stream
		{0, 1, "aa "},        // ends mid-word: extend through delimiter
		{1, 2, ""},           // starts mid-word, ends inside it: owns nothing
		{1, 4, "bb "},        // skip torn head, extend torn tail
		{3, 6, "bb "},        // starts at a word start (byte before is delim)
		{2, 3, ""},           // exactly the delimiter byte
		{6, 8, "cc"},         // final word, EOF ends it
		{0, 100, "aa bb cc"}, // end past EOF
		{8, 8, ""},           // empty range at EOF
		{0, 0, ""},           // empty range at start
	}
	for _, c := range cases {
		if got := string(readRange(t, data, c.start, c.end)); got != c.want {
			t.Errorf("range [%d,%d) = %q, want %q", c.start, c.end, got, c.want)
		}
	}
	if _, err := NewRangeReader(bytes.NewReader(nil), 5, 2, nil); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestAlignedRanges(t *testing.T) {
	if got := AlignedRanges(0, 10); got != nil {
		t.Fatalf("empty input: %v", got)
	}
	if got := AlignedRanges(10, 0); len(got) != 1 || got[0] != [2]int64{0, 10} {
		t.Fatalf("native: %v", got)
	}
	got := AlignedRanges(25, 10)
	want := [][2]int64{{0, 10}, {10, 20}, {20, 25}}
	if len(got) != len(want) {
		t.Fatalf("AlignedRanges(25, 10) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AlignedRanges(25, 10)[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func isDefaultDelim(b byte) bool {
	for _, d := range DefaultDelimiters {
		if b == d {
			return true
		}
	}
	return false
}

// randomText builds a corpus with word lengths 1-12 and delimiter runs 1-3.
func randomText(rng *rand.Rand, n int) []byte {
	var b bytes.Buffer
	for b.Len() < n {
		for w := rng.Intn(12) + 1; w > 0; w-- {
			b.WriteByte(byte('a' + rng.Intn(26)))
		}
		for d := rng.Intn(3) + 1; d > 0; d-- {
			b.WriteByte(DefaultDelimiters[rng.Intn(len(DefaultDelimiters))])
		}
	}
	return b.Bytes()[:n]
}

// randomCuts returns sorted offsets 0 = c0 < ... < ck = total, with
// duplicate interior cuts allowed occasionally to exercise empty ranges.
func randomCuts(rng *rand.Rand, total int64) []int64 {
	cuts := []int64{0, total}
	for i := rng.Intn(6); i > 0; i-- {
		cuts = append(cuts, rng.Int63n(total+1))
	}
	sortInt64(cuts)
	return cuts
}

func sortInt64(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
