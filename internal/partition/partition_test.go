package partition

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func joinFrags(frags [][]byte) []byte {
	var out []byte
	for _, f := range frags {
		out = append(out, f...)
	}
	return out
}

func TestSplitBasic(t *testing.T) {
	data := []byte("alpha beta gamma delta epsilon")
	frags, err := Split(data, Options{FragmentSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 2 {
		t.Fatalf("got %d fragments, want several", len(frags))
	}
	if !bytes.Equal(joinFrags(frags), data) {
		t.Fatal("fragments do not reassemble to input")
	}
	for i, f := range frags[:len(frags)-1] {
		if f[len(f)-1] != ' ' {
			t.Fatalf("fragment %d %q does not end at a delimiter", i, f)
		}
		if len(f) < 8 {
			t.Fatalf("fragment %d shorter than draft size: %d", i, len(f))
		}
	}
}

func TestSplitNativeMode(t *testing.T) {
	data := []byte("whole input as one fragment")
	for _, size := range []int64{0, -1} {
		frags, err := Split(data, Options{FragmentSize: size})
		if err != nil {
			t.Fatal(err)
		}
		if len(frags) != 1 || !bytes.Equal(frags[0], data) {
			t.Fatalf("native mode with size %d gave %d fragments", size, len(frags))
		}
	}
}

func TestSplitEmptyInput(t *testing.T) {
	for _, size := range []int64{0, 8} {
		frags, err := Split(nil, Options{FragmentSize: size})
		if err != nil {
			t.Fatal(err)
		}
		if len(frags) != 0 {
			t.Fatalf("empty input gave %d fragments", len(frags))
		}
	}
}

func TestSplitExactMultiple(t *testing.T) {
	// Input ends exactly at a fragment boundary on a delimiter.
	data := []byte("ab cd ef ") // 9 bytes
	frags, err := Split(data, Options{FragmentSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 3 {
		t.Fatalf("got %d fragments, want 3", len(frags))
	}
	if !bytes.Equal(joinFrags(frags), data) {
		t.Fatal("fragments do not reassemble")
	}
}

func TestSplitNoDelimiterExtendsToEOF(t *testing.T) {
	data := bytes.Repeat([]byte("x"), 100)
	frags, err := Split(data, Options{FragmentSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 || len(frags[0]) != 100 {
		t.Fatalf("undelimited input: got %d fragments (first %d bytes), want 1 of 100",
			len(frags), len(frags[0]))
	}
}

func TestSplitMaxScanEnforced(t *testing.T) {
	data := bytes.Repeat([]byte("x"), 1000)
	_, err := Split(data, Options{FragmentSize: 10, MaxScan: 50})
	if !errors.Is(err, ErrScanLimit) {
		t.Fatalf("err = %v, want ErrScanLimit", err)
	}
}

func TestSplitCustomDelimiter(t *testing.T) {
	// "the symbol defined by the programmer" (Fig. 7).
	data := []byte("rec1;rec2;rec3;rec4;")
	frags, err := Split(data, Options{FragmentSize: 6, Delimiters: []byte{';'}})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frags[:len(frags)-1] {
		if f[len(f)-1] != ';' {
			t.Fatalf("fragment %d %q does not end at ';'", i, f)
		}
	}
	if !bytes.Equal(joinFrags(frags), data) {
		t.Fatal("fragments do not reassemble")
	}
}

func TestScannerFragmentsCount(t *testing.T) {
	sc := NewScanner(strings.NewReader("aa bb cc dd"), Options{FragmentSize: 4})
	n := 0
	for {
		_, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if sc.Fragments() != n {
		t.Fatalf("Fragments() = %d, want %d", sc.Fragments(), n)
	}
	// Next after EOF keeps returning EOF.
	if _, err := sc.Next(); err != io.EOF {
		t.Fatalf("post-EOF Next err = %v, want io.EOF", err)
	}
}

func TestIntegrityDisplacement(t *testing.T) {
	data := []byte("hello world")
	// Boundary at 3 (inside "hello"): scan h-e-l-l-o -> space at index 5;
	// extra displacement = 3 (indices 3,4,5).
	extra, ok := IntegrityDisplacement(data, 3, nil)
	if !ok || extra != 3 {
		t.Fatalf("displacement = (%d,%v), want (3,true)", extra, ok)
	}
	// Boundary right after the space: record already ended.
	extra, ok = IntegrityDisplacement(data, 6, nil)
	if !ok || extra != 0 {
		t.Fatalf("displacement at clean boundary = (%d,%v), want (0,true)", extra, ok)
	}
	// Boundary inside the final word: no delimiter before EOF.
	extra, ok = IntegrityDisplacement(data, 8, nil)
	if ok || extra != 3 {
		t.Fatalf("displacement near EOF = (%d,%v), want (3,false)", extra, ok)
	}
	// Boundary exactly at EOF.
	if _, ok := IntegrityDisplacement(data, len(data), nil); !ok {
		t.Fatal("boundary at EOF should be ok")
	}
}

// Property: for any word soup and any fragment size, fragments reassemble
// exactly and every non-final fragment ends at a delimiter — "the content
// of the source data file could be broken in shatters" never happens.
func TestSplitNeverTearsWordsProperty(t *testing.T) {
	prop := func(words []string, size uint8) bool {
		var b bytes.Buffer
		for _, w := range words {
			for _, ch := range []byte(w) {
				if ch != ' ' && ch != '\n' && ch != '\r' && ch != '\t' {
					b.WriteByte(ch)
				}
			}
			b.WriteByte(' ')
		}
		data := b.Bytes()
		frags, err := Split(data, Options{FragmentSize: int64(size)%50 + 1})
		if err != nil {
			return false
		}
		if !bytes.Equal(joinFrags(frags), data) {
			return false
		}
		for i, f := range frags {
			if len(f) == 0 {
				return false
			}
			if i == len(frags)-1 {
				continue
			}
			last := f[len(f)-1]
			if last != ' ' && last != '\n' && last != '\r' && last != '\t' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: word multiset is preserved — counting words per fragment and
// summing equals counting over the whole input.
func TestSplitPreservesWordMultisetProperty(t *testing.T) {
	prop := func(seed []string, size uint8) bool {
		text := strings.Join(seed, " ") + " "
		frags, err := Split([]byte(text), Options{FragmentSize: int64(size)%40 + 1})
		if err != nil {
			return false
		}
		whole := make(map[string]int)
		for _, w := range strings.Fields(text) {
			whole[w]++
		}
		parts := make(map[string]int)
		for _, f := range frags {
			for _, w := range strings.Fields(string(f)) {
				parts[w]++
			}
		}
		if len(whole) != len(parts) {
			return false
		}
		for k, v := range whole {
			if parts[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
