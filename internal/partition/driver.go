package partition

import (
	"context"
	"fmt"
	"io"
	"sort"

	"mcsd/internal/mapreduce"
	"mcsd/internal/memsim"
)

// Result is the merged output of a partitioned run.
type Result[K comparable, R any] struct {
	// Pairs holds the merged final pairs, sorted when the spec had Less.
	Pairs []mapreduce.Pair[K, R]
	// Fragments is how many fragments were processed.
	Fragments int
	// Stats aggregates per-fragment engine statistics: counters and times
	// are summed, UniqueKeys is the post-merge key count of the whole run,
	// and FragmentKeys preserves the per-fragment unique-key sum (see
	// mapreduce.Stats).
	Stats mapreduce.Stats
}

// Map returns the merged results as a map.
func (r *Result[K, R]) Map() map[K]R {
	m := make(map[K]R, len(r.Pairs))
	for _, p := range r.Pairs {
		m[p.Key] = p.Value
	}
	return m
}

// Run executes spec over the stream input in fragments of opts.FragmentSize
// (extended by the integrity check), merging per-fragment outputs with
// merge. This is the extended two-stage Phoenix workflow of Fig. 6:
//
//	Partition -> [ Split -> Map -> Sort -> Reduce -> Merge ]* -> Merge
//
// Only one fragment's footprint is resident at a time, so a data set much
// larger than cfg.Memory still runs — and runs faster than a thrashing
// native execution.
func Run[K comparable, V any, R any](
	ctx context.Context,
	cfg mapreduce.Config,
	spec mapreduce.Spec[K, V, R],
	input io.Reader,
	opts Options,
	merge MergeFunc[R],
) (*Result[K, R], error) {
	if merge == nil {
		return nil, fmt.Errorf("partition: %q: merge function is required", spec.Name)
	}
	sc := NewScanner(input, opts)
	var acc map[K]R
	res := &Result[K, R]{}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		frag, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		fragRes, err := mapreduce.Run(ctx, cfg, spec, frag)
		if err != nil {
			return nil, fmt.Errorf("partition: fragment %d: %w", res.Fragments+1, err)
		}
		res.Fragments++
		accumulateStats(&res.Stats, fragRes.Stats)
		if acc == nil {
			// Pre-size the accumulator from the first fragment's
			// cardinality — later fragments mostly re-hit these keys.
			acc = make(map[K]R, 2*len(fragRes.Pairs))
		}
		for _, p := range fragRes.Pairs {
			if prev, ok := acc[p.Key]; ok {
				acc[p.Key] = merge(prev, p.Value)
			} else {
				acc[p.Key] = p.Value
			}
		}
	}

	res.Pairs = make([]mapreduce.Pair[K, R], 0, len(acc))
	for k, v := range acc {
		res.Pairs = append(res.Pairs, mapreduce.Pair[K, R]{Key: k, Value: v})
	}
	if spec.Less != nil {
		sort.Slice(res.Pairs, func(i, j int) bool {
			return spec.Less(res.Pairs[i].Key, res.Pairs[j].Key)
		})
	}
	res.Stats.UniqueKeys = len(res.Pairs)
	return res, nil
}

// accumulateStats folds one fragment's engine statistics into the run
// total. Counters and times sum; per-fragment UniqueKeys sums into
// FragmentKeys (the drivers overwrite UniqueKeys with the post-merge key
// count at the end, so the per-fragment counts would otherwise be lost and
// the bench tables would under-report shuffle work).
func accumulateStats(dst *mapreduce.Stats, s mapreduce.Stats) {
	dst.MapTasks += s.MapTasks
	dst.ReduceTasks += s.ReduceTasks
	dst.PairsEmitted += s.PairsEmitted
	dst.FragmentKeys += s.UniqueKeys
	dst.TaskRetries += s.TaskRetries
	dst.InputBytes += s.InputBytes
	dst.SplitTime += s.SplitTime
	dst.MapTime += s.MapTime
	dst.ShuffleTime += s.ShuffleTime
	dst.ReduceTime += s.ReduceTime
	dst.MergeTime += s.MergeTime
}

// AutoFragmentSize picks a fragment size for a node's memory configuration
// and a workload's footprint factor — the "automatically determined by the
// runtime system" path of §IV-C. It targets half of usable RAM for the
// whole fragment footprint, leaving headroom for the runtime itself.
func AutoFragmentSize(mem memsim.Config, footprintFactor float64) int64 {
	if footprintFactor < 1 {
		footprintFactor = 2
	}
	frag := int64(float64(mem.Usable()) / (2 * footprintFactor))
	// Floor against pathological fragment counts; 4 KiB still lets
	// deliberately tiny test nodes partition meaningfully.
	if frag < 4<<10 {
		frag = 4 << 10
	}
	return frag
}
