package partition

// MergeFunc folds the result value of one key from a later fragment into
// the accumulated value from earlier fragments. It is the user-programmed
// Merge of Fig. 6 ("the Merge function needs to be programmed by the user
// to support different applications") and must be associative so fragment
// order cannot change the result.
type MergeFunc[R any] func(acc, next R) R

// SumMerge adds per-fragment values — the word-count merger, where each
// fragment contributes partial counts for a word.
func SumMerge[R int | int64 | float64](acc, next R) R { return acc + next }

// ConcatMerge appends per-fragment slices — the string-match merger, where
// each fragment contributes the matching lines it found.
func ConcatMerge[E any](acc, next []E) []E { return append(acc, next...) }

// MaxMerge keeps the larger value.
func MaxMerge[R int | int64 | float64](acc, next R) R {
	if next > acc {
		return next
	}
	return acc
}

// KeepFirstMerge keeps the value from the earliest fragment — the identity
// merger for computations whose keys cannot repeat across fragments (e.g.
// matrix multiplication, where each output cell is produced exactly once).
func KeepFirstMerge[R any](acc, _ R) R { return acc }
