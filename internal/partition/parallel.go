package partition

import (
	"context"
	"fmt"
	"hash/maphash"
	"io"
	"sort"
	"sync"

	"mcsd/internal/mapreduce"
)

// maxMergeShards caps the merge stage's accumulator shards; past a handful
// of shards the dispatcher, not the fold, is the bottleneck.
const maxMergeShards = 8

// RunParallel is Run restructured as a fragment-parallel worker pool:
//
//	scan --fragCh--> engine pool (N workers) --outCh--> ordered merge
//
// It replaces the earlier three-stage pipeline (RunPipelined), which could
// overlap scanning and merging with the engine but still ran the engine
// over one fragment at a time — on a multicore node that left every core
// but one idle between the engine's own phases, and measured no faster
// than the sequential driver. Here whole fragments run through the engine
// concurrently, one pool worker (one core) per fragment: fragment-level
// parallelism replaces intra-fragment parallelism, so each engine run is
// configured single-worker when the pool has more than one slot.
//
// Semantics are identical to Run, including for non-commutative merge
// functions (ConcatMerge): fragments complete out of order, but the merge
// dispatcher holds completed outputs in a reorder buffer and folds them in
// scan (serial) order. The memory cost is up to pool+1 raw fragments and
// up to pool fragment outputs resident at once; when a node's memory
// budget is too tight for that, use Run or a smaller fragment size.
func RunParallel[K comparable, V any, R any](
	ctx context.Context,
	cfg mapreduce.Config,
	spec mapreduce.Spec[K, V, R],
	input io.Reader,
	opts Options,
	merge MergeFunc[R],
) (*Result[K, R], error) {
	if merge == nil {
		return nil, fmt.Errorf("partition: %q: merge function is required", spec.Name)
	}
	pool := cfg.EffectiveWorkers()
	engCfg := cfg
	if pool > 1 {
		// One core per fragment: the pool supplies the parallelism, each
		// engine run keeps to its own core.
		engCfg.Workers = 1
	}

	type scanned struct {
		serial int
		frag   []byte
		err    error
	}
	type output struct {
		serial int
		pairs  []mapreduce.Pair[K, R]
		stats  mapreduce.Stats
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	// Scan stage: a producer goroutine owns the Scanner and keeps one
	// prefetched fragment in flight beyond what the pool holds.
	fragCh := make(chan scanned, 1)
	go func() {
		defer close(fragCh)
		sc := NewScanner(input, opts)
		for serial := 0; ; serial++ {
			frag, err := sc.Next()
			if err == io.EOF {
				return
			}
			it := scanned{serial: serial, frag: frag, err: err}
			select {
			case fragCh <- it:
				if err != nil {
					return
				}
			case <-runCtx.Done():
				return
			}
		}
	}()

	// Engine pool: each worker runs whole fragments through the engine.
	outCh := make(chan output)
	var wwg sync.WaitGroup
	for w := 0; w < pool; w++ {
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			for it := range fragCh {
				if it.err != nil {
					fail(it.err)
					return
				}
				if runCtx.Err() != nil {
					return
				}
				fragRes, err := mapreduce.Run(runCtx, engCfg, spec, it.frag)
				if err != nil {
					fail(fmt.Errorf("partition: fragment %d: %w", it.serial+1, err))
					return
				}
				select {
				case outCh <- output{serial: it.serial, pairs: fragRes.Pairs, stats: fragRes.Stats}:
				case <-runCtx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wwg.Wait()
		close(outCh)
	}()

	// Ordered merge, on the calling goroutine: outputs are drained as they
	// complete (a worker never wedges on a send) and folded in serial
	// order via a reorder buffer, which can hold at most pool-1 outputs —
	// each worker has at most one finished output in flight.
	acc := newShardedAcc[K, R](cfg, merge)
	res := &Result[K, R]{}
	pending := make(map[int]output)
	next := 0
	for f := range outCh {
		pending[f.serial] = f
		for {
			g, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			res.Fragments++
			accumulateStats(&res.Stats, g.stats)
			acc.fold(g.pairs)
		}
	}
	acc.close()
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		return nil, firstErr
	}

	var strat mapreduce.MergeStrategy
	res.Pairs, strat = acc.collect(spec.Less)
	if spec.Less != nil {
		res.Stats.MergeStrategy = strat.String()
	}
	res.Stats.UniqueKeys = len(res.Pairs)
	return res, nil
}

// shardedAcc is the merge stage's accumulator: key-hash-sharded maps, each
// owned by exactly one goroutine, so fragment outputs fold without locks.
// fold and close must be called from a single goroutine (the dispatcher);
// the parallelism is inside — one folder goroutine per shard.
type shardedAcc[K comparable, R any] struct {
	merge  MergeFunc[R]
	seed   maphash.Seed
	shards []map[K]R
	chans  []chan []mapreduce.Pair[K, R]
	wg     sync.WaitGroup
	mask   uint64
	open   bool
}

func newShardedAcc[K comparable, R any](cfg mapreduce.Config, merge MergeFunc[R]) *shardedAcc[K, R] {
	n := cfg.EffectiveWorkers()
	if n > maxMergeShards {
		n = maxMergeShards
	}
	// Round down to a power of two so shard selection is a mask.
	shards := 1
	for shards*2 <= n {
		shards *= 2
	}
	return &shardedAcc[K, R]{
		merge:  merge,
		seed:   maphash.MakeSeed(),
		shards: make([]map[K]R, shards),
		chans:  make([]chan []mapreduce.Pair[K, R], shards),
		mask:   uint64(shards - 1),
	}
}

// fold deals one fragment's pairs to the shard workers. The first call
// pre-sizes every shard from the fragment's cardinality — the best
// available estimate of per-fragment key counts — and starts the workers.
// Each shard worker folds batches in arrival order, which is fragment
// serial order, so non-commutative merges stay deterministic.
func (a *shardedAcc[K, R]) fold(pairs []mapreduce.Pair[K, R]) {
	if len(pairs) == 0 {
		return
	}
	if !a.open {
		hint := len(pairs)/len(a.shards) + 1
		for i := range a.shards {
			a.shards[i] = make(map[K]R, 2*hint)
			a.chans[i] = make(chan []mapreduce.Pair[K, R], 1)
			a.wg.Add(1)
			go func(shard map[K]R, ch <-chan []mapreduce.Pair[K, R]) {
				defer a.wg.Done()
				for batch := range ch {
					for _, p := range batch {
						if prev, ok := shard[p.Key]; ok {
							shard[p.Key] = a.merge(prev, p.Value)
						} else {
							shard[p.Key] = p.Value
						}
					}
				}
			}(a.shards[i], a.chans[i])
		}
		a.open = true
	}
	if len(a.chans) == 1 {
		a.chans[0] <- pairs
		return
	}
	buckets := make([][]mapreduce.Pair[K, R], len(a.chans))
	per := len(pairs)/len(a.chans) + 1
	for _, p := range pairs {
		s := maphash.Comparable(a.seed, p.Key) & a.mask
		if buckets[s] == nil {
			buckets[s] = make([]mapreduce.Pair[K, R], 0, per)
		}
		buckets[s] = append(buckets[s], p)
	}
	for i, b := range buckets {
		if len(b) > 0 {
			a.chans[i] <- b
		}
	}
}

// close stops the shard workers and waits for every in-flight batch to be
// folded. It must be called before collect.
func (a *shardedAcc[K, R]) close() {
	if !a.open {
		return
	}
	for _, ch := range a.chans {
		close(ch)
	}
	a.wg.Wait()
	a.open = false
}

// collect flattens the shards into the final pair slice. With an ordering,
// each shard is sorted concurrently and the sorted shards are k-way merged
// — the same adaptive merge machinery as the engine's final stage, whose
// chosen strategy is returned for the driver's stats.
func (a *shardedAcc[K, R]) collect(less func(x, y K) bool) ([]mapreduce.Pair[K, R], mapreduce.MergeStrategy) {
	if less == nil {
		total := 0
		for _, s := range a.shards {
			total += len(s)
		}
		out := make([]mapreduce.Pair[K, R], 0, total)
		for _, s := range a.shards {
			for k, v := range s {
				out = append(out, mapreduce.Pair[K, R]{Key: k, Value: v})
			}
		}
		return out, mapreduce.MergeCopy
	}
	runs := make([][]mapreduce.Pair[K, R], len(a.shards))
	var wg sync.WaitGroup
	for i, s := range a.shards {
		run := make([]mapreduce.Pair[K, R], 0, len(s))
		for k, v := range s {
			run = append(run, mapreduce.Pair[K, R]{Key: k, Value: v})
		}
		runs[i] = run
		wg.Add(1)
		go func(run []mapreduce.Pair[K, R]) {
			defer wg.Done()
			sort.Slice(run, func(x, y int) bool { return less(run[x].Key, run[y].Key) })
		}(run)
	}
	wg.Wait()
	return mapreduce.MergeSortedStats(runs, less)
}
