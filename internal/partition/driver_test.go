package partition

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"mcsd/internal/mapreduce"
	"mcsd/internal/memsim"
)

func wcSpec() mapreduce.Spec[string, int, int] {
	return mapreduce.Spec[string, int, int]{
		Name:  "wc",
		Split: mapreduce.DelimiterSplitter(' ', '\n'),
		Map: func(chunk []byte, emit func(string, int)) error {
			for _, w := range bytes.Fields(chunk) {
				emit(string(w), 1)
			}
			return nil
		},
		Reduce: func(_ string, vs []int) (int, error) {
			sum := 0
			for _, v := range vs {
				sum += v
			}
			return sum, nil
		},
		FootprintFactor: 3,
	}
}

func TestRunPartitionedWordCount(t *testing.T) {
	text := strings.Repeat("to be or not to be ", 50)
	res, err := Run(context.Background(), mapreduce.Config{Workers: 2}, wcSpec(),
		strings.NewReader(text), Options{FragmentSize: 64}, SumMerge[int])
	if err != nil {
		t.Fatal(err)
	}
	if res.Fragments < 5 {
		t.Fatalf("Fragments = %d, want many at 64-byte fragments", res.Fragments)
	}
	m := res.Map()
	if m["to"] != 100 || m["be"] != 100 || m["or"] != 50 {
		t.Fatalf("counts wrong: %v", m)
	}
}

func TestRunRequiresMerge(t *testing.T) {
	_, err := Run[string, int, int](context.Background(), mapreduce.Config{}, wcSpec(),
		strings.NewReader("a"), Options{}, nil)
	if err == nil {
		t.Fatal("nil merge accepted")
	}
}

func TestRunPartitionedBeatsMemoryWall(t *testing.T) {
	// The paper's headline: an input whose 3x footprint exceeds the node's
	// memory limit fails natively but succeeds partitioned.
	acct := memsim.NewAccountant(memsim.Config{CapacityBytes: 4096, UsableFraction: 1.0, SwapBytes: 0})
	cfg := mapreduce.Config{Workers: 2, Memory: acct}
	text := strings.Repeat("word soup here ", 200) // 3000 bytes, 9000 footprint

	_, err := mapreduce.Run(context.Background(), cfg, wcSpec(), []byte(text))
	if !errors.Is(err, memsim.ErrOutOfMemory) {
		t.Fatalf("native run err = %v, want ErrOutOfMemory", err)
	}

	res, err := Run(context.Background(), cfg, wcSpec(),
		strings.NewReader(text), Options{FragmentSize: 1000}, SumMerge[int])
	if err != nil {
		t.Fatalf("partitioned run failed: %v", err)
	}
	if got := res.Map()["word"]; got != 200 {
		t.Fatalf("word = %d, want 200", got)
	}
	if acct.Footprint() != 0 {
		t.Fatalf("run leaked %d bytes", acct.Footprint())
	}
	if acct.Peak() > 4096 {
		t.Fatalf("peak footprint %d exceeded node memory", acct.Peak())
	}
}

func TestRunPartitionedFragmentTooLargeStillOOMs(t *testing.T) {
	acct := memsim.NewAccountant(memsim.Config{CapacityBytes: 1024, UsableFraction: 1.0})
	cfg := mapreduce.Config{Workers: 1, Memory: acct}
	text := strings.Repeat("abc ", 500)
	_, err := Run(context.Background(), cfg, wcSpec(),
		strings.NewReader(text), Options{FragmentSize: 1500}, SumMerge[int])
	if !errors.Is(err, memsim.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory for oversized fragments", err)
	}
}

func TestRunSortedMergedOutput(t *testing.T) {
	spec := wcSpec()
	spec.Less = func(a, b string) bool { return a < b }
	text := "delta alpha charlie bravo alpha delta "
	res, err := Run(context.Background(), mapreduce.Config{Workers: 2}, spec,
		strings.NewReader(strings.Repeat(text, 10)), Options{FragmentSize: 30}, SumMerge[int])
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Pairs); i++ {
		if res.Pairs[i-1].Key >= res.Pairs[i].Key {
			t.Fatalf("merged output not sorted at %d: %q >= %q",
				i, res.Pairs[i-1].Key, res.Pairs[i].Key)
		}
	}
	if got := res.Map()["alpha"]; got != 20 {
		t.Fatalf("alpha = %d, want 20", got)
	}
}

func TestRunConcatMergeStringMatchStyle(t *testing.T) {
	// String-match-like: emit matching lines under a single key.
	spec := mapreduce.Spec[string, string, []string]{
		Name:  "sm",
		Split: mapreduce.LineSplitter,
		Map: func(chunk []byte, emit func(string, string)) error {
			for _, line := range bytes.Split(chunk, []byte{'\n'}) {
				if bytes.Contains(line, []byte("needle")) {
					emit("match", string(line))
				}
			}
			return nil
		},
		Reduce: func(_ string, vs []string) ([]string, error) { return vs, nil },
	}
	var sb strings.Builder
	for i := 0; i < 100; i++ {
		if i%10 == 0 {
			sb.WriteString("here is a needle line\n")
		} else {
			sb.WriteString("plain hay line\n")
		}
	}
	res, err := Run(context.Background(), mapreduce.Config{Workers: 2}, spec,
		strings.NewReader(sb.String()), Options{FragmentSize: 100, Delimiters: []byte{'\n'}},
		ConcatMerge[string])
	if err != nil {
		t.Fatal(err)
	}
	matches := res.Map()["match"]
	if len(matches) != 10 {
		t.Fatalf("got %d matches, want 10", len(matches))
	}
}

func TestRunStatsAggregation(t *testing.T) {
	text := strings.Repeat("k v ", 100)
	res, err := Run(context.Background(), mapreduce.Config{Workers: 2}, wcSpec(),
		strings.NewReader(text), Options{FragmentSize: 50}, SumMerge[int])
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.InputBytes != int64(len(text)) {
		t.Fatalf("InputBytes = %d, want %d", res.Stats.InputBytes, len(text))
	}
	if res.Stats.PairsEmitted != 200 {
		t.Fatalf("PairsEmitted = %d, want 200", res.Stats.PairsEmitted)
	}
	if res.Stats.UniqueKeys != 2 {
		t.Fatalf("UniqueKeys = %d, want 2", res.Stats.UniqueKeys)
	}
	if res.Fragments < 2 {
		t.Fatalf("Fragments = %d, want > 1", res.Fragments)
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, mapreduce.Config{}, wcSpec(),
		strings.NewReader("a b c"), Options{FragmentSize: 2}, SumMerge[int])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// Property: partitioned word count equals unpartitioned word count for any
// fragment size — partitioning is semantically invisible (Fig. 6 yields
// "Output" identical to the native workflow).
func TestPartitionedEqualsNativeProperty(t *testing.T) {
	prop := func(words []string, fragSize uint8) bool {
		text := strings.Join(words, " ") + " "
		native, err := mapreduce.Run(context.Background(), mapreduce.Config{Workers: 2},
			wcSpec(), []byte(text))
		if err != nil {
			return false
		}
		part, err := Run(context.Background(), mapreduce.Config{Workers: 2}, wcSpec(),
			strings.NewReader(text), Options{FragmentSize: int64(fragSize)%60 + 1},
			SumMerge[int])
		if err != nil {
			return false
		}
		nm, pm := native.Map(), part.Map()
		if len(nm) != len(pm) {
			return false
		}
		for k, v := range nm {
			if pm[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAutoFragmentSize(t *testing.T) {
	mem := memsim.DefaultConfig() // 2 GB, 90% usable
	frag := AutoFragmentSize(mem, 3)
	// Fragment footprint (3x) must fit in half of usable RAM.
	if float64(frag)*3 > float64(mem.Usable())/2+1 {
		t.Fatalf("auto fragment %d x3 exceeds half of usable %d", frag, mem.Usable())
	}
	if frag < 4<<10 {
		t.Fatalf("auto fragment %d below the 4 KiB floor", frag)
	}
	// Degenerate factor falls back to 2.
	if got := AutoFragmentSize(mem, 0); got <= 0 {
		t.Fatalf("auto fragment with zero factor = %d", got)
	}
}

func TestMergeHelpers(t *testing.T) {
	if SumMerge(2, 3) != 5 {
		t.Fatal("SumMerge broken")
	}
	if MaxMerge(2, 3) != 3 || MaxMerge(5, 1) != 5 {
		t.Fatal("MaxMerge broken")
	}
	if KeepFirstMerge("a", "b") != "a" {
		t.Fatal("KeepFirstMerge broken")
	}
	got := ConcatMerge([]int{1}, []int{2, 3})
	if len(got) != 3 || got[2] != 3 {
		t.Fatal("ConcatMerge broken")
	}
}
