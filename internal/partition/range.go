package partition

import (
	"bufio"
	"fmt"
	"io"
)

// RangeReader serves the word-aligned view of a byte range [start, end) of
// a delimited stream, so independent readers of adjacent ranges together
// see every record exactly once — the discipline that lets the fleet
// scatter one file across SD nodes by offset with no coordination:
//
//   - a record belongs to the range containing its first byte;
//   - a reader whose range starts mid-record (the byte before start is not
//     a delimiter) skips forward through the record's trailing delimiter
//     before serving — that torn head belongs to the previous range;
//   - a reader whose range ends mid-record keeps serving through the
//     record's trailing delimiter — the torn tail is part of a record that
//     started inside its range.
//
// The underlying reader must be positioned at LeadIn(start) of the file:
// one byte before the range when start > 0, so the reader can see whether
// a record straddles the boundary without any other context.
type RangeReader struct {
	r     *bufio.Reader
	isDel [256]bool
	pos   int64 // absolute offset of the next byte to consume from r
	end   int64
	state rangeState
	// lastServed is the final byte handed to the caller so far; it decides
	// at the nominal end whether the reader stops clean or extends.
	lastServed byte
}

type rangeState uint8

const (
	rangeSkipping  rangeState = iota // consuming the previous range's torn tail
	rangeServing                     // inside [start, end)
	rangeExtending                   // past end, finishing a record we own
	rangeDone
)

// LeadIn returns the file offset at which the underlying reader for range
// [start, _) must be positioned: start-1 when start > 0 (one byte of
// context to detect a straddling record), otherwise 0.
func LeadIn(start int64) int64 {
	if start > 0 {
		return start - 1
	}
	return 0
}

// NewRangeReader wraps r, which must be positioned at LeadIn(start) of the
// underlying file, and serves the word-aligned range [start, end). Empty
// delims means DefaultDelimiters. end past EOF simply serves to EOF.
func NewRangeReader(r io.Reader, start, end int64, delims []byte) (*RangeReader, error) {
	if start < 0 || end < start {
		return nil, fmt.Errorf("partition: invalid range [%d, %d)", start, end)
	}
	rr := &RangeReader{r: bufio.NewReaderSize(r, 256<<10), pos: LeadIn(start), end: end}
	if len(delims) == 0 {
		delims = DefaultDelimiters
	}
	for _, d := range delims {
		rr.isDel[d] = true
	}
	switch {
	case start == end:
		// An empty range owns no record starts; never serve.
		rr.state = rangeDone
	case start == 0:
		rr.state = rangeServing
	}
	return rr, nil
}

// Read implements io.Reader over the aligned range.
func (rr *RangeReader) Read(p []byte) (int, error) {
	for {
		switch rr.state {
		case rangeSkipping:
			// Consume bytes from start-1 through the first delimiter: either
			// just the boundary delimiter itself, or the torn tail of the
			// previous range's final record.
			b, err := rr.r.ReadByte()
			if err == io.EOF {
				rr.state = rangeDone
				continue
			}
			if err != nil {
				return 0, fmt.Errorf("partition: range skip: %w", err)
			}
			rr.pos++
			if rr.isDel[b] {
				if rr.pos >= rr.end {
					// The skip swallowed the whole range: no record starts
					// inside [start, end), so this reader owns nothing.
					rr.state = rangeDone
				} else {
					rr.state = rangeServing
				}
			}
		case rangeServing:
			if rr.pos >= rr.end {
				if rr.isDel[rr.lastServed] {
					rr.state = rangeDone
				} else {
					rr.state = rangeExtending
				}
				continue
			}
			limit := rr.end - rr.pos
			if int64(len(p)) > limit {
				p = p[:limit]
			}
			if len(p) == 0 {
				return 0, nil
			}
			n, err := rr.r.Read(p)
			if n > 0 {
				rr.pos += int64(n)
				rr.lastServed = p[n-1]
				return n, nil
			}
			if err == io.EOF {
				rr.state = rangeDone
				continue
			}
			if err != nil {
				return 0, fmt.Errorf("partition: range read: %w", err)
			}
		case rangeExtending:
			// The range ended mid-record; the record's first byte was ours,
			// so serve through its trailing delimiter.
			n := 0
			for n < len(p) {
				b, err := rr.r.ReadByte()
				if err == io.EOF {
					rr.state = rangeDone
					break
				}
				if err != nil {
					return n, fmt.Errorf("partition: range extend: %w", err)
				}
				rr.pos++
				p[n] = b
				n++
				if rr.isDel[b] {
					rr.state = rangeDone
					break
				}
			}
			if n > 0 {
				rr.lastServed = p[n-1]
				return n, nil
			}
		case rangeDone:
			return 0, io.EOF
		}
	}
}

// AlignedRanges cuts total bytes into ceil(total/rangeBytes) draft ranges
// of rangeBytes each (the last one short). The draft boundaries need no
// content inspection: RangeReader's skip/extend discipline re-aligns them
// to record boundaries at read time, which is what lets a fleet coordinator
// plan fragments from a file size alone.
func AlignedRanges(total, rangeBytes int64) [][2]int64 {
	if total <= 0 {
		return nil
	}
	if rangeBytes <= 0 || rangeBytes >= total {
		return [][2]int64{{0, total}}
	}
	out := make([][2]int64, 0, (total+rangeBytes-1)/rangeBytes)
	for off := int64(0); off < total; off += rangeBytes {
		end := off + rangeBytes
		if end > total {
			end = total
		}
		out = append(out, [2]int64{off, end})
	}
	return out
}
