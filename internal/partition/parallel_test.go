package partition

import (
	"context"
	"errors"
	"io"
	"runtime"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"mcsd/internal/mapreduce"
	"mcsd/internal/memsim"
)

func TestRunParallelWordCount(t *testing.T) {
	text := strings.Repeat("lorem ipsum dolor ", 200)
	res, err := RunParallel(context.Background(), mapreduce.Config{Workers: 2}, wcSpec(),
		strings.NewReader(text), Options{FragmentSize: 128}, SumMerge[int])
	if err != nil {
		t.Fatal(err)
	}
	m := res.Map()
	if m["lorem"] != 200 || m["ipsum"] != 200 || m["dolor"] != 200 {
		t.Fatalf("counts wrong: %v", m)
	}
	if res.Fragments < 5 {
		t.Fatalf("Fragments = %d, want many", res.Fragments)
	}

	// An ordered spec must get the chosen final-merge strategy recorded.
	ordered := wcSpec()
	ordered.Less = func(a, b string) bool { return a < b }
	res, err = RunParallel(context.Background(), mapreduce.Config{Workers: 2}, ordered,
		strings.NewReader(text), Options{FragmentSize: 128}, SumMerge[int])
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MergeStrategy == "" {
		t.Fatal("MergeStrategy not recorded for an ordered run")
	}
}

func TestRunParallelRequiresMerge(t *testing.T) {
	_, err := RunParallel[string, int, int](context.Background(), mapreduce.Config{}, wcSpec(),
		strings.NewReader("a"), Options{}, nil)
	if err == nil {
		t.Fatal("nil merge accepted")
	}
}

// Property: parallel and sequential drivers are observationally identical.
func TestParallelEqualsSequentialProperty(t *testing.T) {
	prop := func(words []string, fragSize uint8) bool {
		text := strings.Join(words, " ") + " "
		opts := Options{FragmentSize: int64(fragSize)%60 + 1}
		seq, err := Run(context.Background(), mapreduce.Config{Workers: 2}, wcSpec(),
			strings.NewReader(text), opts, SumMerge[int])
		if err != nil {
			return false
		}
		par, err := RunParallel(context.Background(), mapreduce.Config{Workers: 2}, wcSpec(),
			strings.NewReader(text), opts, SumMerge[int])
		if err != nil {
			return false
		}
		if seq.Fragments != par.Fragments {
			return false
		}
		sm, pm := seq.Map(), par.Map()
		if len(sm) != len(pm) {
			return false
		}
		for k, v := range sm {
			if pm[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// A non-commutative merge (concatenation in fragment order) must come out
// identical to the sequential driver even though fragments complete out of
// order in the pool — this is what the reorder buffer exists for.
func TestRunParallelOrderedMergeNonCommutative(t *testing.T) {
	// Varying filler words drift the fragment boundaries, so each
	// fragment's per-key counts differ — the concatenated count sequence
	// fingerprints the fold order.
	var sb strings.Builder
	for i := 0; i < 300; i++ {
		sb.WriteString("k ")
		sb.WriteString(strings.Repeat("z", i%5+1))
		sb.WriteString(" ")
	}
	text := sb.String()
	spec := mapreduce.Spec[string, int, []int]{
		Name:  "concat",
		Split: mapreduce.DelimiterSplitter(' '),
		Map: func(chunk []byte, emit func(string, int)) error {
			for _, w := range strings.Fields(string(chunk)) {
				emit(w, 1)
			}
			return nil
		},
		Reduce: func(_ string, vs []int) ([]int, error) {
			sum := 0
			for _, v := range vs {
				sum += v
			}
			return []int{sum}, nil
		},
	}
	for _, workers := range []int{1, 2, 4, 8} {
		seq, err := Run(context.Background(), mapreduce.Config{Workers: workers}, spec,
			strings.NewReader(text), Options{FragmentSize: 32}, ConcatMerge[int])
		if err != nil {
			t.Fatal(err)
		}
		par, err := RunParallel(context.Background(), mapreduce.Config{Workers: workers}, spec,
			strings.NewReader(text), Options{FragmentSize: 32}, ConcatMerge[int])
		if err != nil {
			t.Fatal(err)
		}
		sm, pm := seq.Map(), par.Map()
		if len(sm) != len(pm) {
			t.Fatalf("workers=%d: key counts differ: %d vs %d", workers, len(sm), len(pm))
		}
		for k, v := range sm {
			pv := pm[k]
			if len(v) != len(pv) {
				t.Fatalf("workers=%d key %q: concat length %d != %d", workers, k, len(pv), len(v))
			}
			for i := range v {
				if v[i] != pv[i] {
					t.Fatalf("workers=%d key %q: concat order diverged at %d: %v vs %v",
						workers, k, i, pv, v)
				}
			}
		}
	}
}

func TestRunParallelScanErrorPropagates(t *testing.T) {
	data := strings.Repeat("x", 5000) // no delimiters
	_, err := RunParallel(context.Background(), mapreduce.Config{}, wcSpec(),
		strings.NewReader(data), Options{FragmentSize: 10, MaxScan: 50}, SumMerge[int])
	if !errors.Is(err, ErrScanLimit) {
		t.Fatalf("err = %v, want ErrScanLimit", err)
	}
}

func TestRunParallelOOMPropagates(t *testing.T) {
	acct := memsim.NewAccountant(memsim.Config{CapacityBytes: 512, UsableFraction: 1.0})
	cfg := mapreduce.Config{Workers: 1, Memory: acct}
	_, err := RunParallel(context.Background(), cfg, wcSpec(),
		strings.NewReader(strings.Repeat("abc ", 500)), Options{FragmentSize: 1000}, SumMerge[int])
	if !errors.Is(err, memsim.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestRunParallelCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunParallel(ctx, mapreduce.Config{}, wcSpec(),
		strings.NewReader("a b c d"), Options{FragmentSize: 2}, SumMerge[int])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunParallelProducerStopsOnConsumerExit(t *testing.T) {
	// A slow, endless reader: when the pool dies early (OOM), the
	// producer goroutine must stop promptly rather than leak.
	acct := memsim.NewAccountant(memsim.Config{CapacityBytes: 128, UsableFraction: 1.0})
	cfg := mapreduce.Config{Workers: 1, Memory: acct}
	r := &infiniteWords{}
	done := make(chan error, 1)
	go func() {
		_, err := RunParallel(context.Background(), cfg, wcSpec(), r,
			Options{FragmentSize: 4096}, SumMerge[int])
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, memsim.ErrOutOfMemory) {
			t.Fatalf("err = %v, want ErrOutOfMemory", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parallel run wedged on an infinite input")
	}
}

// infiniteWords yields "aa bb aa bb ..." forever.
type infiniteWords struct{}

func (i *infiniteWords) Read(p []byte) (int, error) {
	for j := range p {
		if j%3 == 2 {
			p[j] = ' '
		} else {
			p[j] = 'a'
		}
	}
	return len(p), nil
}

var _ io.Reader = (*infiniteWords)(nil)

// TestRunParallelCancelMidFragmentNoLeak cancels the context while a pool
// worker is inside a fragment and asserts that (a) the cancellation is
// surfaced and (b) the scan producer and pool goroutines exit rather than
// leaking, blocked on their channels.
func TestRunParallelCancelMidFragmentNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	spec := wcSpec()
	inMap := make(chan struct{}, 1)
	inner := spec.Map
	spec.Map = func(chunk []byte, emit func(string, int)) error {
		select {
		case inMap <- struct{}{}:
		default:
		}
		return inner(chunk, emit)
	}
	done := make(chan error, 1)
	go func() {
		// An endless input: only cancellation can end this run.
		_, err := RunParallel(ctx, mapreduce.Config{Workers: 1}, spec,
			&infiniteWords{}, Options{FragmentSize: 1 << 16}, SumMerge[int])
		done <- err
	}()
	<-inMap // a fragment is inside the engine
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled parallel run did not return")
	}

	// The producer (and the pool and merge workers) must wind down; poll
	// because goroutine exit is asynchronous with RunParallel's return.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestRunParallelScanErrorAfterFragmentSurfaced feeds an input whose first
// fragments scan cleanly and whose tail has no delimiter within MaxScan:
// the scanner error must surface even though earlier fragments already
// succeeded (a swallowed error here would silently truncate the run).
func TestRunParallelScanErrorAfterFragmentSurfaced(t *testing.T) {
	data := "aa bb cc dd " + strings.Repeat("x", 5000)
	res, err := RunParallel(context.Background(), mapreduce.Config{Workers: 2}, wcSpec(),
		strings.NewReader(data), Options{FragmentSize: 4, MaxScan: 50}, SumMerge[int])
	if !errors.Is(err, ErrScanLimit) {
		t.Fatalf("err = %v (res %v), want ErrScanLimit after successful fragments", err, res)
	}
}

// TestRunParallelFragmentKeysStat: per-fragment unique keys must sum into
// FragmentKeys while UniqueKeys stays the merged count.
func TestRunParallelFragmentKeysStat(t *testing.T) {
	text := strings.Repeat("lorem ipsum dolor ", 200)
	res, err := RunParallel(context.Background(), mapreduce.Config{Workers: 2}, wcSpec(),
		strings.NewReader(text), Options{FragmentSize: 128}, SumMerge[int])
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.UniqueKeys != 3 {
		t.Fatalf("UniqueKeys = %d, want 3 (merged)", res.Stats.UniqueKeys)
	}
	// Every fragment sees the same 3 words, so the per-fragment sum must be
	// ~3 per fragment — strictly greater than the merged count.
	if res.Stats.FragmentKeys <= res.Stats.UniqueKeys {
		t.Fatalf("FragmentKeys = %d, want > UniqueKeys (%d) across %d fragments",
			res.Stats.FragmentKeys, res.Stats.UniqueKeys, res.Fragments)
	}
	seq, err := Run(context.Background(), mapreduce.Config{Workers: 2}, wcSpec(),
		strings.NewReader(text), Options{FragmentSize: 128}, SumMerge[int])
	if err != nil {
		t.Fatal(err)
	}
	if seq.Stats.FragmentKeys != res.Stats.FragmentKeys {
		t.Fatalf("sequential driver FragmentKeys = %d, parallel = %d; want equal",
			seq.Stats.FragmentKeys, res.Stats.FragmentKeys)
	}
}
