package partition

import (
	"context"
	"fmt"
	"hash/maphash"
	"io"
	"runtime"
	"sort"
	"sync"

	"mcsd/internal/mapreduce"
)

// maxMergeShards caps the merge stage's accumulator shards; past a handful
// of shards the dispatcher, not the fold, is the bottleneck.
const maxMergeShards = 8

// RunPipelined is Run restructured as a three-stage pipeline:
//
//	scan  --fragCh-->  engine  --mergeCh-->  merge
//
// The scan stage prefetches the next fragment from the input while the
// engine stage runs MapReduce over the current one (double buffering
// against the disk), and the merge stage folds the previous fragment's
// output into the accumulator while the engine is already busy with the
// next — fragment-output merging no longer serializes on the engine's
// goroutine. The accumulator is sharded by key hash with one goroutine per
// shard, so merging itself is lock-free and parallel.
//
// Semantics are identical to Run. The memory cost is up to one extra
// fragment of raw input (the prefetched one) plus one in-flight fragment
// output resident at a time; when a node's memory budget is tight enough
// for that to matter, use Run or a smaller fragment size.
func RunPipelined[K comparable, V any, R any](
	ctx context.Context,
	cfg mapreduce.Config,
	spec mapreduce.Spec[K, V, R],
	input io.Reader,
	opts Options,
	merge MergeFunc[R],
) (*Result[K, R], error) {
	if merge == nil {
		return nil, fmt.Errorf("partition: %q: merge function is required", spec.Name)
	}

	// Stage 1: scan. A producer goroutine owns the Scanner and keeps one
	// prefetched fragment in flight.
	type item struct {
		frag []byte
		err  error
	}
	fragCh := make(chan item, 1)
	prodCtx, stopProducer := context.WithCancel(ctx)
	defer stopProducer()
	go func() {
		defer close(fragCh)
		sc := NewScanner(input, opts)
		for {
			frag, err := sc.Next()
			if err == io.EOF {
				return
			}
			var it item
			if err != nil {
				it = item{err: err}
			} else {
				it = item{frag: frag}
			}
			select {
			case fragCh <- it:
				if err != nil {
					return
				}
			case <-prodCtx.Done():
				return
			}
		}
	}()

	// Stage 3: merge. A dispatcher goroutine receives fragment outputs and
	// deals their pairs to the shard workers; it always drains mergeCh so
	// the engine can never wedge on a send.
	acc := newShardedAcc[K, R](cfg, merge)
	mergeCh := make(chan []mapreduce.Pair[K, R], 1)
	mergeDone := make(chan struct{})
	go func() {
		defer close(mergeDone)
		for pairs := range mergeCh {
			acc.fold(pairs)
		}
		acc.close()
	}()

	// Stage 2: engine, on the calling goroutine.
	res := &Result[K, R]{}
	var runErr error
	for it := range fragCh {
		if it.err != nil {
			runErr = it.err
			break
		}
		if err := ctx.Err(); err != nil {
			runErr = err
			break
		}
		fragRes, err := mapreduce.Run(ctx, cfg, spec, it.frag)
		if err != nil {
			runErr = fmt.Errorf("partition: fragment %d: %w", res.Fragments+1, err)
			break
		}
		res.Fragments++
		accumulateStats(&res.Stats, fragRes.Stats)
		mergeCh <- fragRes.Pairs
	}
	stopProducer()
	close(mergeCh)
	<-mergeDone
	if runErr == nil {
		runErr = ctx.Err()
	}
	if runErr != nil {
		return nil, runErr
	}

	res.Pairs = acc.collect(spec.Less)
	res.Stats.UniqueKeys = len(res.Pairs)
	return res, nil
}

// shardedAcc is the merge stage's accumulator: key-hash-sharded maps, each
// owned by exactly one goroutine, so fragment outputs fold without locks.
type shardedAcc[K comparable, R any] struct {
	merge  MergeFunc[R]
	seed   maphash.Seed
	shards []map[K]R
	chans  []chan []mapreduce.Pair[K, R]
	wg     sync.WaitGroup
	mask   uint64
	open   bool
}

func newShardedAcc[K comparable, R any](cfg mapreduce.Config, merge MergeFunc[R]) *shardedAcc[K, R] {
	n := runtime.GOMAXPROCS(0)
	if cfg.Workers > 0 {
		n = cfg.Workers
	}
	if n > maxMergeShards {
		n = maxMergeShards
	}
	// Round down to a power of two so shard selection is a mask.
	shards := 1
	for shards*2 <= n {
		shards *= 2
	}
	return &shardedAcc[K, R]{
		merge:  merge,
		seed:   maphash.MakeSeed(),
		shards: make([]map[K]R, shards),
		chans:  make([]chan []mapreduce.Pair[K, R], shards),
		mask:   uint64(shards - 1),
	}
}

// fold deals one fragment's pairs to the shard workers. The first call
// pre-sizes every shard from the fragment's cardinality — the best
// available estimate of per-fragment key counts — and starts the workers.
func (a *shardedAcc[K, R]) fold(pairs []mapreduce.Pair[K, R]) {
	if len(pairs) == 0 {
		return
	}
	if !a.open {
		hint := len(pairs)/len(a.shards) + 1
		for i := range a.shards {
			a.shards[i] = make(map[K]R, 2*hint)
			a.chans[i] = make(chan []mapreduce.Pair[K, R], 1)
			a.wg.Add(1)
			go func(shard map[K]R, ch <-chan []mapreduce.Pair[K, R]) {
				defer a.wg.Done()
				for batch := range ch {
					for _, p := range batch {
						if prev, ok := shard[p.Key]; ok {
							shard[p.Key] = a.merge(prev, p.Value)
						} else {
							shard[p.Key] = p.Value
						}
					}
				}
			}(a.shards[i], a.chans[i])
		}
		a.open = true
	}
	if len(a.chans) == 1 {
		a.chans[0] <- pairs
		return
	}
	buckets := make([][]mapreduce.Pair[K, R], len(a.chans))
	per := len(pairs)/len(a.chans) + 1
	for _, p := range pairs {
		s := maphash.Comparable(a.seed, p.Key) & a.mask
		if buckets[s] == nil {
			buckets[s] = make([]mapreduce.Pair[K, R], 0, per)
		}
		buckets[s] = append(buckets[s], p)
	}
	for i, b := range buckets {
		if len(b) > 0 {
			a.chans[i] <- b
		}
	}
}

// close stops the shard workers and waits for every in-flight batch to be
// folded. It must be called before collect.
func (a *shardedAcc[K, R]) close() {
	if !a.open {
		return
	}
	for _, ch := range a.chans {
		close(ch)
	}
	a.wg.Wait()
	a.open = false
}

// collect flattens the shards into the final pair slice. With an ordering,
// each shard is sorted concurrently and the sorted shards are k-way merged
// — the same merge machinery as the engine's final stage.
func (a *shardedAcc[K, R]) collect(less func(x, y K) bool) []mapreduce.Pair[K, R] {
	if less == nil {
		total := 0
		for _, s := range a.shards {
			total += len(s)
		}
		out := make([]mapreduce.Pair[K, R], 0, total)
		for _, s := range a.shards {
			for k, v := range s {
				out = append(out, mapreduce.Pair[K, R]{Key: k, Value: v})
			}
		}
		return out
	}
	runs := make([][]mapreduce.Pair[K, R], len(a.shards))
	var wg sync.WaitGroup
	for i, s := range a.shards {
		run := make([]mapreduce.Pair[K, R], 0, len(s))
		for k, v := range s {
			run = append(run, mapreduce.Pair[K, R]{Key: k, Value: v})
		}
		runs[i] = run
		wg.Add(1)
		go func(run []mapreduce.Pair[K, R]) {
			defer wg.Done()
			sort.Slice(run, func(x, y int) bool { return less(run[x].Key, run[y].Key) })
		}(run)
	}
	wg.Wait()
	return mapreduce.MergeSorted(runs, less)
}
