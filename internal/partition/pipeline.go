package partition

import (
	"context"
	"fmt"
	"io"
	"sort"

	"mcsd/internal/mapreduce"
)

// RunPipelined is Run with read/compute overlap: a producer goroutine
// scans fragment n+1 from the input while fragment n is inside the
// MapReduce engine — double buffering against the disk, which the
// sequential driver leaves on the table.
//
// Semantics are identical to Run. The memory cost is up to one extra
// fragment of raw input resident at a time (the prefetched one); when a
// node's memory budget is tight enough for that to matter, use Run or a
// smaller fragment size.
func RunPipelined[K comparable, V any, R any](
	ctx context.Context,
	cfg mapreduce.Config,
	spec mapreduce.Spec[K, V, R],
	input io.Reader,
	opts Options,
	merge MergeFunc[R],
) (*Result[K, R], error) {
	if merge == nil {
		return nil, fmt.Errorf("partition: %q: merge function is required", spec.Name)
	}

	type item struct {
		frag []byte
		err  error
	}
	fragCh := make(chan item, 1) // one prefetched fragment in flight
	prodCtx, stopProducer := context.WithCancel(ctx)
	defer stopProducer()
	go func() {
		defer close(fragCh)
		sc := NewScanner(input, opts)
		for {
			frag, err := sc.Next()
			if err == io.EOF {
				return
			}
			var it item
			if err != nil {
				it = item{err: err}
			} else {
				it = item{frag: frag}
			}
			select {
			case fragCh <- it:
				if err != nil {
					return
				}
			case <-prodCtx.Done():
				return
			}
		}
	}()

	acc := make(map[K]R)
	res := &Result[K, R]{}
	for it := range fragCh {
		if it.err != nil {
			return nil, it.err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		fragRes, err := mapreduce.Run(ctx, cfg, spec, it.frag)
		if err != nil {
			return nil, fmt.Errorf("partition: fragment %d: %w", res.Fragments+1, err)
		}
		res.Fragments++
		accumulateStats(&res.Stats, fragRes.Stats)
		for _, p := range fragRes.Pairs {
			if prev, ok := acc[p.Key]; ok {
				acc[p.Key] = merge(prev, p.Value)
			} else {
				acc[p.Key] = p.Value
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res.Pairs = make([]mapreduce.Pair[K, R], 0, len(acc))
	for k, v := range acc {
		res.Pairs = append(res.Pairs, mapreduce.Pair[K, R]{Key: k, Value: v})
	}
	if spec.Less != nil {
		sort.Slice(res.Pairs, func(i, j int) bool {
			return spec.Less(res.Pairs[i].Key, res.Pairs[j].Key)
		})
	}
	res.Stats.UniqueKeys = len(res.Pairs)
	return res, nil
}
