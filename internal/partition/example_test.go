package partition_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"

	"mcsd/internal/mapreduce"
	"mcsd/internal/partition"
)

// ExampleRun counts words out-of-core: the input streams through in
// 16-byte fragments (extended to word boundaries by the Fig. 7 integrity
// check) and per-fragment counts are folded by SumMerge.
func ExampleRun() {
	spec := mapreduce.Spec[string, int, int]{
		Name:  "wordcount",
		Split: mapreduce.DelimiterSplitter(' '),
		Map: func(chunk []byte, emit func(string, int)) error {
			for _, w := range bytes.Fields(chunk) {
				emit(string(w), 1)
			}
			return nil
		},
		Reduce: func(_ string, counts []int) (int, error) {
			total := 0
			for _, c := range counts {
				total += c
			}
			return total, nil
		},
		Less: func(a, b string) bool { return a < b },
	}
	input := strings.NewReader("the quick brown fox jumps over the lazy dog the end")

	res, err := partition.Run(context.Background(), mapreduce.Config{Workers: 2},
		spec, input, partition.Options{FragmentSize: 16}, partition.SumMerge[int])
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("fragments:", res.Fragments)
	fmt.Println("the =", res.Map()["the"])
	// Output:
	// fragments: 3
	// the = 3
}

// ExampleSplit shows the integrity check in action: no fragment boundary
// ever tears a word.
func ExampleSplit() {
	frags, err := partition.Split([]byte("alpha beta gamma"), partition.Options{FragmentSize: 4})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, f := range frags {
		fmt.Printf("%q\n", f)
	}
	// Output:
	// "alpha "
	// "beta "
	// "gamma"
}
