package faultfs

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mcsd/internal/smartfam"
)

func TestFailNextCountsDown(t *testing.T) {
	f := New(smartfam.DirFS(t.TempDir()))
	f.FailNext(OpStat, 2)
	for i := 0; i < 2; i++ {
		if _, _, err := f.Stat("x"); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: err = %v, want injected", i, err)
		}
	}
	// Countdown exhausted: the real (not-exist) error comes through.
	if _, _, err := f.Stat("x"); !errors.Is(err, smartfam.ErrNotExist) {
		t.Fatalf("after countdown: err = %v, want ErrNotExist", err)
	}
	if f.Injected() != 2 {
		t.Fatalf("Injected() = %d, want 2", f.Injected())
	}
}

func TestFailNextWithCustomError(t *testing.T) {
	boom := errors.New("boom")
	f := New(smartfam.DirFS(t.TempDir()))
	f.FailNextWith(OpList, 1, boom)
	if _, err := f.List(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want custom error", err)
	}
}

func TestTearNextWritesPartialAndFails(t *testing.T) {
	inner := smartfam.DirFS(t.TempDir())
	f := New(inner)
	f.TearNext(1, 0.5)
	data := []byte("0123456789")
	if err := f.Append("a", data); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn append err = %v, want injected", err)
	}
	size, _, err := inner.Stat("a")
	if err != nil {
		t.Fatal(err)
	}
	if size == 0 || size >= int64(len(data)) {
		t.Fatalf("torn append left %d bytes, want partial (1..%d)", size, len(data)-1)
	}
	if f.Torn() != 1 {
		t.Fatalf("Torn() = %d, want 1", f.Torn())
	}
	// The tear is consumed: the next append goes through whole.
	if err := f.Append("a", data); err != nil {
		t.Fatal(err)
	}
	size2, _, _ := inner.Stat("a")
	if size2 != size+int64(len(data)) {
		t.Fatalf("post-tear append size = %d, want %d", size2, size+int64(len(data)))
	}
}

func TestCrashAfterFiresOnceAtCountdown(t *testing.T) {
	f := New(smartfam.DirFS(t.TempDir()))
	var mu sync.Mutex
	fired := 0
	f.CrashAfter(OpAppend, 2, func() {
		mu.Lock()
		fired++
		mu.Unlock()
	})
	for i := 0; i < 5; i++ {
		if err := f.Append("a", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if fired != 1 {
		t.Fatalf("crash hook fired %d times, want exactly 1", fired)
	}
}

func TestSetLatencyDelaysOps(t *testing.T) {
	f := New(smartfam.DirFS(t.TempDir()))
	f.SetLatency(20 * time.Millisecond)
	start := time.Now()
	_ = f.Append("a", []byte("x"))
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("append took %v, want >= 20ms of injected latency", d)
	}
}

func TestPassThroughWhenInert(t *testing.T) {
	inner := smartfam.DirFS(t.TempDir())
	f := New(inner)
	if err := f.Create("a"); err != nil {
		t.Fatal(err)
	}
	if err := f.Append("a", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt("a", buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("read %q", buf)
	}
	names, err := f.List()
	if err != nil || len(names) != 1 {
		t.Fatalf("List = %v, %v", names, err)
	}
	if err := f.Remove("a"); err != nil {
		t.Fatal(err)
	}
}
