package faultfs

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mcsd/internal/smartfam"
)

func TestFailNextCountsDown(t *testing.T) {
	f := New(smartfam.DirFS(t.TempDir()))
	f.FailNext(OpStat, 2)
	for i := 0; i < 2; i++ {
		if _, _, err := f.Stat("x"); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: err = %v, want injected", i, err)
		}
	}
	// Countdown exhausted: the real (not-exist) error comes through.
	if _, _, err := f.Stat("x"); !errors.Is(err, smartfam.ErrNotExist) {
		t.Fatalf("after countdown: err = %v, want ErrNotExist", err)
	}
	if f.Injected() != 2 {
		t.Fatalf("Injected() = %d, want 2", f.Injected())
	}
}

func TestFailNextWithCustomError(t *testing.T) {
	boom := errors.New("boom")
	f := New(smartfam.DirFS(t.TempDir()))
	f.FailNextWith(OpList, 1, boom)
	if _, err := f.List(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want custom error", err)
	}
}

func TestTearNextWritesPartialAndFails(t *testing.T) {
	inner := smartfam.DirFS(t.TempDir())
	f := New(inner)
	f.TearNext(1, 0.5)
	data := []byte("0123456789")
	if err := f.Append("a", data); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn append err = %v, want injected", err)
	}
	size, _, err := inner.Stat("a")
	if err != nil {
		t.Fatal(err)
	}
	if size == 0 || size >= int64(len(data)) {
		t.Fatalf("torn append left %d bytes, want partial (1..%d)", size, len(data)-1)
	}
	if f.Torn() != 1 {
		t.Fatalf("Torn() = %d, want 1", f.Torn())
	}
	// The tear is consumed: the next append goes through whole.
	if err := f.Append("a", data); err != nil {
		t.Fatal(err)
	}
	size2, _, _ := inner.Stat("a")
	if size2 != size+int64(len(data)) {
		t.Fatalf("post-tear append size = %d, want %d", size2, size+int64(len(data)))
	}
}

func TestCrashAfterFiresOnceAtCountdown(t *testing.T) {
	f := New(smartfam.DirFS(t.TempDir()))
	var mu sync.Mutex
	fired := 0
	f.CrashAfter(OpAppend, 2, func() {
		mu.Lock()
		fired++
		mu.Unlock()
	})
	for i := 0; i < 5; i++ {
		if err := f.Append("a", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if fired != 1 {
		t.Fatalf("crash hook fired %d times, want exactly 1", fired)
	}
}

func TestCorruptNextReadFlipsOneBitTransiently(t *testing.T) {
	inner := smartfam.DirFS(t.TempDir())
	f := New(inner)
	data := []byte("0123456789")
	if err := f.Append("a", data); err != nil {
		t.Fatal(err)
	}
	f.CorruptNext(OpRead, 1)
	buf := make([]byte, len(data))
	if _, err := f.ReadAt("a", buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) == string(data) {
		t.Fatal("armed read returned intact bytes")
	}
	diff := 0
	for i := range buf {
		if buf[i] != data[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
	if f.Corrupted() != 1 {
		t.Fatalf("Corrupted() = %d, want 1", f.Corrupted())
	}
	// Transient: the countdown is consumed and the bytes at rest are fine.
	buf2 := make([]byte, len(data))
	if _, err := f.ReadAt("a", buf2, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf2) != string(data) {
		t.Fatalf("second read %q, want intact %q", buf2, data)
	}
}

func TestCorruptNextAppendPersistsFlippedBit(t *testing.T) {
	inner := smartfam.DirFS(t.TempDir())
	f := New(inner)
	f.CorruptNext(OpAppend, 1)
	data := []byte("0123456789")
	if err := f.Append("a", data); err != nil {
		t.Fatalf("corrupted append must still report success, got %v", err)
	}
	buf := make([]byte, len(data))
	if _, err := inner.ReadAt("a", buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) == string(data) {
		t.Fatal("at-rest bytes are intact, want one flipped bit")
	}
	if buf[len(data)/2] != data[len(data)/2]^0x01 {
		t.Fatalf("middle byte = %x, want %x", buf[len(data)/2], data[len(data)/2]^0x01)
	}
	// Consumed: the next append lands clean.
	if err := f.Append("b", data); err != nil {
		t.Fatal(err)
	}
	buf2 := make([]byte, len(data))
	if _, err := inner.ReadAt("b", buf2, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf2) != string(data) {
		t.Fatalf("post-countdown append %q, want %q", buf2, data)
	}
}

func TestCorruptMatchTargetsOneFile(t *testing.T) {
	inner := smartfam.DirFS(t.TempDir())
	f := New(inner)
	data := []byte("0123456789")
	for _, name := range []string{"clean.log", "target.frag"} {
		if err := f.Append(name, data); err != nil {
			t.Fatal(err)
		}
	}
	f.CorruptNext(OpRead, 1)
	f.CorruptMatch(".frag")
	buf := make([]byte, len(data))
	// Non-matching reads neither corrupt nor consume the countdown.
	for i := 0; i < 3; i++ {
		if _, err := f.ReadAt("clean.log", buf, 0); err != nil {
			t.Fatal(err)
		}
		if string(buf) != string(data) {
			t.Fatalf("non-matching file corrupted: %q", buf)
		}
	}
	if _, err := f.ReadAt("target.frag", buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) == string(data) {
		t.Fatal("matching file not corrupted")
	}
	if f.Corrupted() != 1 {
		t.Fatalf("Corrupted() = %d, want 1", f.Corrupted())
	}
}

func TestSetLatencyDelaysOps(t *testing.T) {
	f := New(smartfam.DirFS(t.TempDir()))
	f.SetLatency(20 * time.Millisecond)
	start := time.Now()
	_ = f.Append("a", []byte("x"))
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("append took %v, want >= 20ms of injected latency", d)
	}
}

func TestPassThroughWhenInert(t *testing.T) {
	inner := smartfam.DirFS(t.TempDir())
	f := New(inner)
	if err := f.Create("a"); err != nil {
		t.Fatal(err)
	}
	if err := f.Append("a", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt("a", buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("read %q", buf)
	}
	names, err := f.List()
	if err != nil || len(names) != 1 {
		t.Fatalf("List = %v, %v", names, err)
	}
	if err := f.Remove("a"); err != nil {
		t.Fatal(err)
	}
}
