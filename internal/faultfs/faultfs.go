// Package faultfs is a deterministic fault-injection layer over the
// smartfam.FS share interface: transient per-operation errors, torn
// (partial) appends, injected latency, and crash points. It exists so the
// robustness properties the smartFAM protocol claims — torn-record
// recovery, exactly-once invocation across daemon crashes, transparent
// retry — are exercised by tests in smartfam, nfs, and the top-level
// chaos integration suite rather than asserted on faith.
//
// All knobs are countdown-based and armed explicitly, never random, so a
// failing chaos test replays byte-for-byte.
package faultfs

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"mcsd/internal/smartfam"
)

// Op names the FS operations faults can target.
type Op string

// Fault-injectable operations.
const (
	OpCreate Op = "create"
	OpAppend Op = "append"
	OpRead   Op = "read"
	OpStat   Op = "stat"
	OpList   Op = "list"
	OpRemove Op = "remove"
	OpRename Op = "rename"
	OpWatch  Op = "watch"
)

// ErrInjected is the default error returned by armed transient faults.
var ErrInjected = errors.New("faultfs: injected fault")

// FS wraps an inner smartfam.FS with fault injection. The zero value is
// not usable; call New. Safe for concurrent use.
type FS struct {
	inner smartfam.FS

	mu       sync.Mutex
	failOps  map[Op]int   // op -> remaining injected failures
	failErr  map[Op]error // op -> error to return (ErrInjected default)
	tearNext int          // pending torn appends
	tearKeep float64      // fraction of the append to let through
	latency  time.Duration
	crashOps map[Op]int // op -> countdown until crash hook fires
	onCrash  func()
	injected int64
	torn     int64

	corruptOps   map[Op]int // op -> remaining bit-flips
	corruptMatch string     // substring filter on file names ("" = any)
	corrupted    int64
}

// New wraps inner with an (initially inert) fault layer.
func New(inner smartfam.FS) *FS {
	return &FS{
		inner:      inner,
		failOps:    make(map[Op]int),
		failErr:    make(map[Op]error),
		crashOps:   make(map[Op]int),
		corruptOps: make(map[Op]int),
	}
}

// FailNext arms the next n calls of op to fail with ErrInjected.
func (f *FS) FailNext(op Op, n int) { f.FailNextWith(op, n, ErrInjected) }

// FailNextWith arms the next n calls of op to fail with err.
func (f *FS) FailNextWith(op Op, n int, err error) {
	f.mu.Lock()
	f.failOps[op] = n
	f.failErr[op] = err
	f.mu.Unlock()
}

// TearNext arms the next n appends to be torn: only keep (0 ≤ keep < 1)
// of the data reaches the inner FS — at least one byte, never all of it —
// and the append still reports failure to the caller, like a connection
// that died mid-write. This is the failure the wire format's leading
// newline + CRC exists for.
func (f *FS) TearNext(n int, keep float64) {
	if keep < 0 {
		keep = 0
	}
	if keep >= 1 {
		keep = 0.5
	}
	f.mu.Lock()
	f.tearNext = n
	f.tearKeep = keep
	f.mu.Unlock()
}

// CorruptNext arms the next n calls of op (OpRead or OpAppend) to flip one
// bit in the middle of the data, modelling silent corruption: the
// operation itself still reports success. A corrupted OpRead is transient
// (the bytes at rest stay intact — a bad sector read, a flaky cable); a
// corrupted OpAppend persists flipped bytes to the inner FS — at-rest bit
// rot a scrubber must find. Combine with CorruptMatch to target one file.
func (f *FS) CorruptNext(op Op, n int) {
	f.mu.Lock()
	f.corruptOps[op] = n
	f.mu.Unlock()
}

// CorruptMatch restricts armed corruption to operations whose file name
// contains substr ("" removes the filter). Operations on other names pass
// through without consuming the countdown, so a test can deterministically
// corrupt one replica object while the share's logs stay clean.
func (f *FS) CorruptMatch(substr string) {
	f.mu.Lock()
	f.corruptMatch = substr
	f.mu.Unlock()
}

// Corrupted returns how many operations have had a bit flipped so far.
func (f *FS) Corrupted() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.corrupted
}

// corruptArmed consumes one corruption token for (op, name); callers flip
// the bit themselves on a true return.
func (f *FS) corruptArmed(op Op, name string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.corruptOps[op] <= 0 {
		return false
	}
	if f.corruptMatch != "" && !strings.Contains(name, f.corruptMatch) {
		return false
	}
	f.corruptOps[op]--
	f.corrupted++
	return true
}

// SetLatency injects a fixed delay before every operation (0 disables).
func (f *FS) SetLatency(d time.Duration) {
	f.mu.Lock()
	f.latency = d
	f.mu.Unlock()
}

// CrashAfter arms a crash point: after n more successful calls of op, fn
// runs (once) before the operation returns. Chaos tests use it to cancel
// a daemon's context at an exact protocol step.
func (f *FS) CrashAfter(op Op, n int, fn func()) {
	f.mu.Lock()
	f.crashOps[op] = n
	f.onCrash = fn
	f.mu.Unlock()
}

// Injected returns how many transient errors have been injected so far.
func (f *FS) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Torn returns how many appends have been torn so far.
func (f *FS) Torn() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.torn
}

// enter applies latency and the transient-failure countdown for op.
func (f *FS) enter(op Op) error {
	f.mu.Lock()
	delay := f.latency
	var err error
	if f.failOps[op] > 0 {
		f.failOps[op]--
		f.injected++
		err = f.failErr[op]
		if err == nil {
			err = ErrInjected
		}
	}
	f.mu.Unlock()
	if delay > 0 {
		//mcsdlint:allow ctxflow -- the injected latency IS the fault being modelled; tests arm small, bounded delays
		time.Sleep(delay)
	}
	return err
}

// exit fires a pending crash point after a successful op.
func (f *FS) exit(op Op) {
	f.mu.Lock()
	fn := func() {}
	if n, armed := f.crashOps[op]; armed {
		if n > 0 {
			f.crashOps[op] = n - 1
		} else {
			delete(f.crashOps, op)
			if f.onCrash != nil {
				fn = f.onCrash
			}
		}
	}
	f.mu.Unlock()
	fn()
}

// Create implements smartfam.FS.
func (f *FS) Create(name string) error {
	if err := f.enter(OpCreate); err != nil {
		return err
	}
	err := f.inner.Create(name)
	if err == nil {
		f.exit(OpCreate)
	}
	return err
}

// Append implements smartfam.FS, honouring armed torn appends.
func (f *FS) Append(name string, data []byte) error {
	if err := f.enter(OpAppend); err != nil {
		return err
	}
	f.mu.Lock()
	tear := f.tearNext > 0 && len(data) > 1
	keep := f.tearKeep
	if tear {
		f.tearNext--
		f.torn++
	}
	f.mu.Unlock()
	if tear {
		n := int(float64(len(data)) * keep)
		if n < 1 {
			n = 1
		}
		if n >= len(data) {
			n = len(data) - 1
		}
		_ = f.inner.Append(name, data[:n])
		return ErrInjected
	}
	if len(data) > 0 && f.corruptArmed(OpAppend, name) {
		// At-rest corruption: one flipped bit lands on the inner FS and the
		// append still reports success, like silent media rot.
		bad := append([]byte(nil), data...)
		bad[len(bad)/2] ^= 0x01
		data = bad
	}
	err := f.inner.Append(name, data)
	if err == nil {
		f.exit(OpAppend)
	}
	return err
}

// ReadAt implements smartfam.FS.
func (f *FS) ReadAt(name string, p []byte, off int64) (int, error) {
	if err := f.enter(OpRead); err != nil {
		return 0, err
	}
	n, err := f.inner.ReadAt(name, p, off)
	if n > 0 && f.corruptArmed(OpRead, name) {
		// Transient read-side corruption: the caller sees one flipped bit,
		// the bytes at rest stay intact.
		p[n/2] ^= 0x01
	}
	if err == nil {
		f.exit(OpRead)
	}
	return n, err
}

// Stat implements smartfam.FS.
func (f *FS) Stat(name string) (int64, time.Time, error) {
	if err := f.enter(OpStat); err != nil {
		return 0, time.Time{}, err
	}
	size, mtime, err := f.inner.Stat(name)
	if err == nil {
		f.exit(OpStat)
	}
	return size, mtime, err
}

// List implements smartfam.FS.
func (f *FS) List() ([]string, error) {
	if err := f.enter(OpList); err != nil {
		return nil, err
	}
	names, err := f.inner.List()
	if err == nil {
		f.exit(OpList)
	}
	return names, err
}

// Remove implements smartfam.FS.
func (f *FS) Remove(name string) error {
	if err := f.enter(OpRemove); err != nil {
		return err
	}
	err := f.inner.Remove(name)
	if err == nil {
		f.exit(OpRemove)
	}
	return err
}

// Watch implements smartfam.WatchFS by delegating to the inner FS's push
// support: wrapping a push-capable share in the fault layer must not
// silently demote it to polling, or the chaos suite could never kill a
// daemon mid-notify-stream. An inner FS that cannot push reports
// ErrWatchUnsupported, exactly like a legacy transport, so consumers make
// the same permanent fall-back-to-polling decision they would without the
// wrapper. Armed OpWatch faults fail the subscription attempt itself —
// the transient-arm-failure case push consumers must ride out.
func (f *FS) Watch(prefix string) (smartfam.WatchStream, error) {
	if err := f.enter(OpWatch); err != nil {
		return nil, err
	}
	wfs, ok := f.inner.(smartfam.WatchFS)
	if !ok {
		return nil, fmt.Errorf("faultfs: %w", smartfam.ErrWatchUnsupported)
	}
	st, err := wfs.Watch(prefix)
	if err == nil {
		f.exit(OpWatch)
	}
	return st, err
}

// StatGen implements smartfam.GenStat, delegating to the inner FS's
// generation tracking when present and falling back to a plain Stat with
// generation 0 (the "not tracked" value) otherwise. It shares OpStat's
// fault countdown with Stat: a stat is a stat to the fault model.
func (f *FS) StatGen(name string) (int64, time.Time, uint64, error) {
	if err := f.enter(OpStat); err != nil {
		return 0, time.Time{}, 0, err
	}
	var (
		size  int64
		mtime time.Time
		gen   uint64
		err   error
	)
	if gs, ok := f.inner.(smartfam.GenStat); ok {
		size, mtime, gen, err = gs.StatGen(name)
	} else {
		size, mtime, err = f.inner.Stat(name)
	}
	if err == nil {
		f.exit(OpStat)
	}
	return size, mtime, gen, err
}

// Rename implements smartfam.FS.
func (f *FS) Rename(oldname, newname string) error {
	if err := f.enter(OpRename); err != nil {
		return err
	}
	err := f.inner.Rename(oldname, newname)
	if err == nil {
		f.exit(OpRename)
	}
	return err
}
