package workloads

// CostModel gives the discrete-event simulator what it needs to price one
// workload on a modelled core. Rates are for the reference core (one
// 2.0 GHz Core2 core, the SD node's E4400 of Table I); internal/cluster
// scales them by per-node core speed.
type CostModel struct {
	Name string
	// MapRateBps is how many input bytes one reference core maps per
	// second (the dominant term for the data-intensive workloads).
	MapRateBps float64
	// ReduceFraction is reduce+merge time as a fraction of map time.
	ReduceFraction float64
	// FootprintFactor is peak memory as a multiple of input size — the
	// admission-control number (§V-C: 3x for WC, 2x for SM).
	FootprintFactor float64
	// ResidentFactor is the hot working set as a multiple of input size —
	// what actually sweeps RAM and drives swap thrashing. For word count
	// the whole footprint stays hot (input + keyed intermediates); for
	// string match the intermediates are tiny and only the streamed input
	// plus match lists are resident. Zero means FootprintFactor.
	ResidentFactor float64
	// OutputRatio is result bytes per input byte (what must cross the
	// network back to the caller).
	OutputRatio float64
	// Partitionable reports whether the paper's Partition function
	// applies ("only applicable for data-intensive applications whose
	// input data can be partitioned", §IV-B).
	Partitionable bool
}

// The per-byte rates below are calibrated to the Phoenix-era hardware of
// Table I: word count keys every word (hashing + allocation heavy), string
// match streams lines against a small key set (cheaper per byte, no reduce
// stage). They reproduce the paper's relative elapsed-time magnitudes;
// internal/sim recalibrates the absolute scale against the real engine when
// asked (sim.CalibrateFromEngine).
var (
	wordCountCost = CostModel{
		Name:            "wordcount",
		MapRateBps:      28e6,
		ReduceFraction:  0.35,
		FootprintFactor: WordCountFootprint,
		ResidentFactor:  WordCountFootprint,
		OutputRatio:     0.05,
		Partitionable:   true,
	}
	stringMatchCost = CostModel{
		Name:            "stringmatch",
		MapRateBps:      55e6,
		ReduceFraction:  0.05,
		FootprintFactor: StringMatchFootprint,
		ResidentFactor:  1.6,
		OutputRatio:     0.01,
		Partitionable:   true,
	}
)

// WordCountCost returns the simulator cost model for word count.
func WordCountCost() CostModel { return wordCountCost }

// StringMatchCost returns the simulator cost model for string match.
func StringMatchCost() CostModel { return stringMatchCost }

// MatMulFlops returns the floating-point operation count of an n x n by
// n x n multiplication (2 n^3: one multiply and one add per term).
func MatMulFlops(n int) float64 { return 2 * float64(n) * float64(n) * float64(n) }

// MatMulCost describes matrix multiplication for the simulator. It is
// compute-bound, so it is priced in flops rather than input bytes.
type MatMulCostModel struct {
	Name string
	// FlopsPerSec is the dense-matmul rate of one reference core.
	FlopsPerSec float64
	// N is the matrix dimension of the scenario.
	N int
}

// MatMulCost returns the cost model for an n x n matrix multiplication.
// 400 Mflop/s per reference core matches an unblocked triple loop on a
// Core2-class machine.
func MatMulCost(n int) MatMulCostModel {
	return MatMulCostModel{Name: "matmul", FlopsPerSec: 400e6, N: n}
}

// Seconds returns the single-core compute time of the multiplication.
func (m MatMulCostModel) Seconds() float64 {
	return MatMulFlops(m.N) / m.FlopsPerSec
}

// HistogramCost returns the simulator cost model for the histogram
// application: trivially cheap per byte (a few array increments), so an
// offloaded run is bounded by the SD node's disk and a host-only run by
// the wire — the purest data-movement case.
func HistogramCost() CostModel {
	return CostModel{
		Name:            "histogram",
		MapRateBps:      500e6,
		ReduceFraction:  0.01,
		FootprintFactor: 1.05,
		ResidentFactor:  1.05,
		OutputRatio:     0.00001,
		Partitionable:   true,
	}
}
