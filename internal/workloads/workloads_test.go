package workloads

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"testing/quick"

	"mcsd/internal/mapreduce"
	"mcsd/internal/partition"
)

func TestGenerateTextDeterministicAndSized(t *testing.T) {
	a := GenerateTextBytes(10_000, 42)
	b := GenerateTextBytes(10_000, 42)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different text")
	}
	c := GenerateTextBytes(10_000, 43)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical text")
	}
	if len(a) < 10_000 || len(a) > 10_200 {
		t.Fatalf("generated %d bytes, want ~10000", len(a))
	}
}

func TestGenerateTextHasWordsAndSkew(t *testing.T) {
	text := GenerateTextBytes(100_000, 1)
	counts := WordCountSeq(text)
	if len(counts) < 100 {
		t.Fatalf("only %d distinct words, want a rich vocabulary", len(counts))
	}
	top := TopWords(counts, 1)
	if top[0].Value < 100 {
		t.Fatalf("most frequent word appears %d times, want heavy Zipf head", top[0].Value)
	}
}

func TestGenerateKeysDistinct(t *testing.T) {
	keys := GenerateKeys(50, 7)
	if len(keys) != 50 {
		t.Fatalf("got %d keys, want 50", len(keys))
	}
	seen := make(map[string]bool)
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("duplicate key %q", k)
		}
		seen[k] = true
	}
}

func TestGenerateEncryptFileEmbedsKeys(t *testing.T) {
	keys := GenerateKeys(5, 3)
	data := GenerateEncryptBytes(50_000, 11, keys, 0.2)
	hits := StringMatchSeq(data, keys)
	if len(hits) == 0 {
		t.Fatal("no keys embedded at 20% hit rate")
	}
	// Every reported hit must actually contain its key.
	for _, h := range hits {
		if !strings.Contains(h.Line, h.Key) {
			t.Fatalf("hit line %q does not contain key %q", h.Line, h.Key)
		}
	}
}

func TestGenerateEncryptFileZeroHitRate(t *testing.T) {
	keys := GenerateKeys(5, 3)
	data := GenerateEncryptBytes(20_000, 11, keys, 0)
	if hits := StringMatchSeq(data, keys); len(hits) != 0 {
		t.Fatalf("zero hit rate produced %d hits", len(hits))
	}
}

func TestWordCountSpecMatchesSeq(t *testing.T) {
	text := GenerateTextBytes(30_000, 5)
	res, err := mapreduce.Run(context.Background(), mapreduce.Config{Workers: 4}, WordCountSpec(), text)
	if err != nil {
		t.Fatal(err)
	}
	want := WordCountSeq(text)
	got := res.Map()
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%q] = %d, want %d", k, got[k], v)
		}
	}
	// Spec orders keys.
	for i := 1; i < len(res.Pairs); i++ {
		if res.Pairs[i-1].Key >= res.Pairs[i].Key {
			t.Fatal("word count output not sorted by key")
		}
	}
}

func TestWordCountPartitionedMatchesSeq(t *testing.T) {
	text := GenerateTextBytes(20_000, 9)
	res, err := partition.Run(context.Background(), mapreduce.Config{Workers: 2},
		WordCountSpec(), bytes.NewReader(text), partition.Options{FragmentSize: 1024},
		WordCountMerge)
	if err != nil {
		t.Fatal(err)
	}
	want := WordCountSeq(text)
	got := res.Map()
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%q] = %d, want %d", k, got[k], v)
		}
	}
}

func TestTopWordsOrderingAndLimit(t *testing.T) {
	counts := map[string]int{"a": 3, "b": 5, "c": 3, "d": 1}
	top := TopWords(counts, 3)
	if len(top) != 3 {
		t.Fatalf("got %d, want 3", len(top))
	}
	if top[0].Key != "b" {
		t.Fatalf("top word %q, want b", top[0].Key)
	}
	// Tie between a and c broken alphabetically.
	if top[1].Key != "a" || top[2].Key != "c" {
		t.Fatalf("tie order wrong: %q, %q", top[1].Key, top[2].Key)
	}
	if all := TopWords(counts, 0); len(all) != 4 {
		t.Fatalf("n=0 should return all words, got %d", len(all))
	}
}

func TestStringMatchSpecMatchesSeq(t *testing.T) {
	keys := GenerateKeys(8, 21)
	data := GenerateEncryptBytes(40_000, 22, keys, 0.15)
	res, err := mapreduce.Run(context.Background(), mapreduce.Config{Workers: 4},
		StringMatchSpec(keys), data)
	if err != nil {
		t.Fatal(err)
	}
	seq := StringMatchSeq(data, keys)
	seqByKey := make(map[string]int)
	for _, m := range seq {
		seqByKey[m.Key]++
	}
	parByKey := make(map[string]int)
	for _, p := range res.Pairs {
		parByKey[p.Key] = len(p.Value)
	}
	if len(parByKey) != len(seqByKey) {
		t.Fatalf("got %d matched keys, want %d", len(parByKey), len(seqByKey))
	}
	for k, n := range seqByKey {
		if parByKey[k] != n {
			t.Fatalf("matches[%q] = %d, want %d", k, parByKey[k], n)
		}
	}
}

func TestStringMatchPartitioned(t *testing.T) {
	keys := GenerateKeys(4, 31)
	data := GenerateEncryptBytes(30_000, 32, keys, 0.1)
	res, err := partition.Run(context.Background(), mapreduce.Config{Workers: 2},
		StringMatchSpec(keys), bytes.NewReader(data),
		partition.Options{FragmentSize: 4096, Delimiters: []byte{'\n'}},
		StringMatchMerge)
	if err != nil {
		t.Fatal(err)
	}
	seq := StringMatchSeq(data, keys)
	total := 0
	for _, p := range res.Pairs {
		total += len(p.Value)
	}
	if total != len(seq) {
		t.Fatalf("partitioned found %d matches, sequential %d", total, len(seq))
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At broken")
	}
	if r := m.Row(1); len(r) != 3 || r[2] != 7 {
		t.Fatal("Row broken")
	}
	if !m.Equal(m, 0) {
		t.Fatal("matrix not equal to itself")
	}
	if m.Equal(NewMatrix(3, 2), 0) {
		t.Fatal("shape mismatch reported equal")
	}
	if m.Equal(nil, 0) {
		t.Fatal("nil reported equal")
	}
}

func TestMatMulSeqKnownProduct(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 3, 4})
	b := NewMatrix(2, 2)
	copy(b.Data, []float64{5, 6, 7, 8})
	c, err := MatMulSeq(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{19, 22, 43, 50}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("c[%d] = %v, want %v", i, c.Data[i], v)
		}
	}
}

func TestMatMulSeqShapeMismatch(t *testing.T) {
	if _, err := MatMulSeq(NewMatrix(2, 3), NewMatrix(2, 3)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestMatMulSpecMatchesSeq(t *testing.T) {
	a := RandomMatrix(17, 23, 1)
	b := RandomMatrix(23, 11, 2)
	want, err := MatMulSeq(a, b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapreduce.Run(context.Background(),
		mapreduce.Config{Workers: 4, ChunkSize: 8}, MatMulSpec(a, b), RowIndexInput(a.Rows))
	if err != nil {
		t.Fatal(err)
	}
	got, err := AssembleMatrix(a.Rows, b.Cols, res.Pairs)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-9) {
		t.Fatal("MapReduce product differs from sequential product")
	}
}

func TestMatMulSpecBadInput(t *testing.T) {
	a := RandomMatrix(4, 4, 1)
	spec := MatMulSpec(a, a)
	if _, err := mapreduce.Run(context.Background(), mapreduce.Config{Workers: 1, MaxTaskRetries: 1},
		spec, []byte("notanumber\n")); err == nil {
		t.Fatal("garbage row index accepted")
	}
	if _, err := mapreduce.Run(context.Background(), mapreduce.Config{Workers: 1, MaxTaskRetries: 1},
		spec, []byte("99\n")); err == nil {
		t.Fatal("out-of-range row index accepted")
	}
}

func TestAssembleMatrixValidation(t *testing.T) {
	pairs := []mapreduce.Pair[int, []float64]{{Key: 0, Value: []float64{1, 2}}}
	if _, err := AssembleMatrix(2, 2, pairs); err == nil {
		t.Fatal("missing row accepted")
	}
	dup := []mapreduce.Pair[int, []float64]{
		{Key: 0, Value: []float64{1, 2}}, {Key: 0, Value: []float64{3, 4}},
	}
	if _, err := AssembleMatrix(1, 2, dup); err == nil {
		t.Fatal("duplicate row accepted")
	}
	short := []mapreduce.Pair[int, []float64]{{Key: 0, Value: []float64{1}}}
	if _, err := AssembleMatrix(1, 2, short); err == nil {
		t.Fatal("short row accepted")
	}
}

// Property: MapReduce matmul equals sequential matmul on random shapes.
func TestMatMulEquivalenceProperty(t *testing.T) {
	prop := func(seedA, seedB int64, dims [3]uint8) bool {
		n, k, m := int(dims[0])%8+1, int(dims[1])%8+1, int(dims[2])%8+1
		a := RandomMatrix(n, k, seedA)
		b := RandomMatrix(k, m, seedB)
		want, err := MatMulSeq(a, b)
		if err != nil {
			return false
		}
		res, err := mapreduce.Run(context.Background(),
			mapreduce.Config{Workers: 2, ChunkSize: 4}, MatMulSpec(a, b), RowIndexInput(n))
		if err != nil {
			return false
		}
		got, err := AssembleMatrix(n, m, res.Pairs)
		if err != nil {
			return false
		}
		return got.Equal(want, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCostModelsSane(t *testing.T) {
	wc, sm := WordCountCost(), StringMatchCost()
	if wc.MapRateBps >= sm.MapRateBps {
		t.Fatal("word count should be slower per byte than string match")
	}
	if wc.FootprintFactor != 3 || sm.FootprintFactor != 2 {
		t.Fatal("footprint factors must match §V-C (3x WC, 2x SM)")
	}
	if !wc.Partitionable || !sm.Partitionable {
		t.Fatal("WC and SM are partition-able")
	}
	mm := MatMulCost(1024)
	if mm.Seconds() <= 0 {
		t.Fatal("matmul cost must be positive")
	}
	// 1024^3 * 2 flops at 400 Mflop/s is ~5.4 s — sanity-range check.
	if s := mm.Seconds(); s < 1 || s > 30 {
		t.Fatalf("1024^2 matmul = %.1fs, out of plausible range", s)
	}
}
