// Package workloads implements the paper's three benchmark applications —
// Word Count, String Match and Matrix Multiplication (§V-A) — both as
// MapReduce specs for the Phoenix-style runtime and as sequential baselines,
// together with deterministic input generators and the per-workload cost
// models the discrete-event simulator consumes.
package workloads

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
)

// vocabulary size for generated text; word frequencies are Zipf-distributed
// so the generated corpora have realistic key skew for word count.
const vocabSize = 10000

func buildVocab(rng *rand.Rand) []string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	vocab := make([]string, vocabSize)
	seen := make(map[string]bool, vocabSize)
	for i := range vocab {
		for {
			n := rng.Intn(8) + 2
			b := make([]byte, n)
			for j := range b {
				b[j] = letters[rng.Intn(len(letters))]
			}
			w := string(b)
			if !seen[w] {
				seen[w] = true
				vocab[i] = w
				break
			}
		}
	}
	return vocab
}

// GenerateText writes approximately size bytes of Zipf-distributed words to
// w, deterministically for a given seed. Lines are broken around 80
// columns. It returns the number of bytes written.
func GenerateText(w io.Writer, size int64, seed int64) (int64, error) {
	rng := rand.New(rand.NewSource(seed))
	vocab := buildVocab(rng)
	zipf := rand.NewZipf(rng, 1.2, 1.0, vocabSize-1)

	bw := &countingWriter{w: w}
	buf := bytes.NewBuffer(make([]byte, 0, 1<<16))
	col := 0
	for bw.n+int64(buf.Len()) < size {
		word := vocab[zipf.Uint64()]
		buf.WriteString(word)
		col += len(word) + 1
		if col >= 80 {
			buf.WriteByte('\n')
			col = 0
		} else {
			buf.WriteByte(' ')
		}
		if buf.Len() >= 1<<16 {
			if _, err := bw.Write(buf.Bytes()); err != nil {
				return bw.n, err
			}
			buf.Reset()
		}
	}
	if buf.Len() > 0 {
		if _, err := bw.Write(buf.Bytes()); err != nil {
			return bw.n, err
		}
	}
	return bw.n, nil
}

// GenerateTextBytes is GenerateText into memory.
func GenerateTextBytes(size int64, seed int64) []byte {
	var b bytes.Buffer
	b.Grow(int(size) + 128)
	if _, err := GenerateText(&b, size, seed); err != nil {
		panic("workloads: in-memory text generation cannot fail: " + err.Error())
	}
	return b.Bytes()
}

// GenerateEncryptFile writes the string-match "encrypt" file: size bytes of
// newline-terminated lines of pseudo-random lowercase text, a fraction of
// which (hitRate) contain one of keys embedded at a random column.
func GenerateEncryptFile(w io.Writer, size int64, seed int64, keys []string, hitRate float64) (int64, error) {
	rng := rand.New(rand.NewSource(seed))
	const letters = "abcdefghijklmnopqrstuvwxyz0123456789"
	bw := &countingWriter{w: w}
	line := make([]byte, 0, 128)
	for bw.n < size {
		line = line[:0]
		lineLen := 40 + rng.Intn(60)
		for len(line) < lineLen {
			line = append(line, letters[rng.Intn(len(letters))])
		}
		if len(keys) > 0 && rng.Float64() < hitRate {
			k := keys[rng.Intn(len(keys))]
			pos := rng.Intn(len(line))
			line = append(line[:pos], append([]byte(k), line[pos:]...)...)
		}
		line = append(line, '\n')
		if _, err := bw.Write(line); err != nil {
			return bw.n, err
		}
	}
	return bw.n, nil
}

// GenerateEncryptBytes is GenerateEncryptFile into memory.
func GenerateEncryptBytes(size int64, seed int64, keys []string, hitRate float64) []byte {
	var b bytes.Buffer
	b.Grow(int(size) + 256)
	if _, err := GenerateEncryptFile(&b, size, seed, keys, hitRate); err != nil {
		panic("workloads: in-memory generation cannot fail: " + err.Error())
	}
	return b.Bytes()
}

// GenerateKeys produces n distinct target strings for string match — the
// contents of the "keys" file.
func GenerateKeys(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	const letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	keys := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for len(keys) < n {
		b := make([]byte, 6+rng.Intn(6))
		for i := range b {
			b[i] = letters[rng.Intn(len(letters))]
		}
		k := string(b)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	if err != nil {
		return n, fmt.Errorf("workloads: generator write: %w", err)
	}
	return n, nil
}
