package workloads

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"mcsd/internal/mapreduce"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// RandomMatrix returns a rows x cols matrix with deterministic pseudo-random
// entries in [-1, 1).
func RandomMatrix(rows, cols int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Equal reports whether m and o have the same shape and elements within tol.
func (m *Matrix) Equal(o *Matrix, tol float64) bool {
	if o == nil || m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// MatMulSeq is the sequential baseline: the classic triple loop with the
// inner loops ordered for row-major locality.
func MatMulSeq(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("workloads: matmul shape mismatch %dx%d * %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols)
	}
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		crow := c.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := a.At(i, k)
			brow := b.Row(k)
			for j := range crow {
				crow[j] += aik * brow[j]
			}
		}
	}
	return c, nil
}

// RowIndexInput encodes the map-task input for MatMulSpec: one decimal row
// index per line. Splitting it with LineSplitter gives each map task "a set
// of rows of the output matrix" (§V-A).
func RowIndexInput(rows int) []byte {
	var out []byte
	for i := 0; i < rows; i++ {
		out = strconv.AppendInt(out, int64(i), 10)
		out = append(out, '\n')
	}
	return out
}

// MatMulSpec returns the Matrix Multiplication application of §V-A: each
// Map computes a set of output rows (keyed by row ID, the value being the
// computed row — the paper keys by row and column ID with the element as
// value; we key at row granularity, which preserves the identity-reduce
// structure with far fewer intermediate pairs); "the reduce task is just
// the identity function".
func MatMulSpec(a, b *Matrix) mapreduce.Spec[int, []float64, []float64] {
	return mapreduce.Spec[int, []float64, []float64]{
		Name:  "matmul",
		Split: mapreduce.LineSplitter,
		Map: func(chunk []byte, emit func(int, []float64)) error {
			start := 0
			for pos := 0; pos <= len(chunk); pos++ {
				if pos != len(chunk) && chunk[pos] != '\n' {
					continue
				}
				line := chunk[start:pos]
				start = pos + 1
				if len(line) == 0 {
					continue
				}
				i, err := strconv.Atoi(string(line))
				if err != nil {
					return fmt.Errorf("workloads: bad row index %q: %w", line, err)
				}
				if i < 0 || i >= a.Rows {
					return fmt.Errorf("workloads: row index %d out of range [0,%d)", i, a.Rows)
				}
				row := make([]float64, b.Cols)
				for k := 0; k < a.Cols; k++ {
					aik := a.At(i, k)
					brow := b.Row(k)
					for j := range row {
						row[j] += aik * brow[j]
					}
				}
				emit(i, row)
			}
			return nil
		},
		Reduce: func(_ int, rows [][]float64) ([]float64, error) {
			// Identity: each row ID is produced exactly once.
			return rows[0], nil
		},
		Less:            func(x, y int) bool { return x < y },
		FootprintFactor: 2,
	}
}

// AssembleMatrix rebuilds the product matrix from MapReduce output pairs.
func AssembleMatrix(rows, cols int, pairs []mapreduce.Pair[int, []float64]) (*Matrix, error) {
	m := NewMatrix(rows, cols)
	seen := make([]bool, rows)
	for _, p := range pairs {
		if p.Key < 0 || p.Key >= rows {
			return nil, fmt.Errorf("workloads: assembled row %d out of range", p.Key)
		}
		if seen[p.Key] {
			return nil, fmt.Errorf("workloads: duplicate row %d", p.Key)
		}
		if len(p.Value) != cols {
			return nil, fmt.Errorf("workloads: row %d has %d cols, want %d", p.Key, len(p.Value), cols)
		}
		seen[p.Key] = true
		copy(m.Row(p.Key), p.Value)
	}
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("workloads: missing row %d", i)
		}
	}
	return m, nil
}
