package workloads

import (
	"bytes"

	"mcsd/internal/mapreduce"
)

// StringMatchFootprint is the memory footprint of string match as a
// multiple of its input: "the memory footprint of String-Match is around
// two times of the input data size" (§V-C).
const StringMatchFootprint = 2.0

// Match records one hit: which key matched which line.
type Match struct {
	Key  string
	Line string
}

// StringMatchSpec returns the String Match application of §V-A: "Each Map
// searches one line in the 'encrypt' file to check whether the target
// string from a 'keys' file is in the line. Neither sort or the reduce
// stage is required" — Reduce is the identity and no key ordering is set.
// Map emits one (key, line) pair per hit.
func StringMatchSpec(keys []string) mapreduce.Spec[string, string, []string] {
	targets := make([][]byte, len(keys))
	for i, k := range keys {
		targets[i] = []byte(k)
	}
	return mapreduce.Spec[string, string, []string]{
		Name:  "stringmatch",
		Split: mapreduce.LineSplitter,
		Map: func(chunk []byte, emit func(string, string)) error {
			for len(chunk) > 0 {
				nl := bytes.IndexByte(chunk, '\n')
				var line []byte
				if nl < 0 {
					line, chunk = chunk, nil
				} else {
					line, chunk = chunk[:nl], chunk[nl+1:]
				}
				if len(line) == 0 {
					continue
				}
				for i, tgt := range targets {
					if bytes.Contains(line, tgt) {
						emit(keys[i], string(line))
					}
				}
			}
			return nil
		},
		// Identity reduce: values for a key are simply its matching lines.
		Reduce:          func(_ string, lines []string) ([]string, error) { return lines, nil },
		FootprintFactor: StringMatchFootprint,
	}
}

// StringMatchMerge folds per-fragment match lists: concatenation.
func StringMatchMerge(acc, next []string) []string { return append(acc, next...) }

// StringMatchSeq is the sequential baseline: scan every line against every
// key. It returns hits in input order.
func StringMatchSeq(data []byte, keys []string) []Match {
	var out []Match
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		for _, k := range keys {
			if bytes.Contains(line, []byte(k)) {
				out = append(out, Match{Key: k, Line: string(line)})
			}
		}
	}
	return out
}
