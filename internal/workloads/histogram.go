package workloads

import (
	"fmt"
	"math/rand"

	"mcsd/internal/mapreduce"
)

// Histogram is another application from the Phoenix benchmark suite the
// paper builds on (Ranger et al., HPCA'07): count the frequency of every
// pixel value per colour channel of a bitmap. It is the archetypal
// fixed-key-space MapReduce — 768 keys regardless of input size — which
// stresses a different engine profile than word count's unbounded keys.

// HistChannel identifies a colour channel.
type HistChannel uint8

// Channels of an RGB bitmap.
const (
	ChannelR HistChannel = 0
	ChannelG HistChannel = 1
	ChannelB HistChannel = 2
)

// HistKey is one histogram bucket: a channel and a value.
type HistKey struct {
	Channel HistChannel
	Value   uint8
}

// GenerateBitmap produces size bytes of RGB pixel data (size is rounded
// down to a multiple of 3), deterministically for a seed. Channel
// distributions differ so tests can tell them apart.
func GenerateBitmap(size int64, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	n := int(size / 3 * 3)
	out := make([]byte, n)
	for i := 0; i+2 < n; i += 3 {
		out[i] = uint8(rng.Intn(256))                   // R uniform
		out[i+1] = uint8(rng.Intn(128) + rng.Intn(129)) // G triangular
		out[i+2] = uint8(rng.Intn(64))                  // B narrow
	}
	return out
}

// HistogramSpec counts pixel values per channel. Chunks are aligned to
// whole pixels by the splitter.
func HistogramSpec() mapreduce.Spec[HistKey, int, int] {
	sum := func(vs []int) int {
		s := 0
		for _, v := range vs {
			s += v
		}
		return s
	}
	return mapreduce.Spec[HistKey, int, int]{
		Name:  "histogram",
		Split: pixelSplitter,
		Map: func(chunk []byte, emit func(HistKey, int)) error {
			if len(chunk)%3 != 0 {
				return fmt.Errorf("workloads: chunk of %d bytes is not whole pixels", len(chunk))
			}
			// Local 768-bucket array: the classic histogram optimization —
			// emit once per bucket, not once per pixel.
			var local [3][256]int
			for i := 0; i+2 < len(chunk); i += 3 {
				local[0][chunk[i]]++
				local[1][chunk[i+1]]++
				local[2][chunk[i+2]]++
			}
			for ch := 0; ch < 3; ch++ {
				for v, n := range local[ch] {
					if n > 0 {
						emit(HistKey{Channel: HistChannel(ch), Value: uint8(v)}, n)
					}
				}
			}
			return nil
		},
		// Folds in place — see WordCountSpec's combiner.
		Combine: func(_ HistKey, vs []int) []int { vs[0] = sum(vs); return vs[:1] },
		Reduce:  func(_ HistKey, vs []int) (int, error) { return sum(vs), nil },
		Less: func(a, b HistKey) bool {
			if a.Channel != b.Channel {
				return a.Channel < b.Channel
			}
			return a.Value < b.Value
		},
		FootprintFactor: 1.1, // fixed key space: nearly streaming
	}
}

// pixelSplitter aligns chunks to 3-byte pixel boundaries.
func pixelSplitter(data []byte, chunkSize int) [][]byte {
	if chunkSize <= 0 {
		chunkSize = len(data)
	}
	chunkSize -= chunkSize % 3
	if chunkSize < 3 {
		chunkSize = 3
	}
	usable := len(data) - len(data)%3
	var chunks [][]byte
	for off := 0; off < usable; off += chunkSize {
		end := off + chunkSize
		if end > usable {
			end = usable
		}
		chunks = append(chunks, data[off:end])
	}
	return chunks
}

// HistogramSeq is the sequential baseline.
func HistogramSeq(data []byte) map[HistKey]int {
	out := make(map[HistKey]int)
	usable := len(data) - len(data)%3
	for i := 0; i+2 < usable; i += 3 {
		out[HistKey{ChannelR, data[i]}]++
		out[HistKey{ChannelG, data[i+1]}]++
		out[HistKey{ChannelB, data[i+2]}]++
	}
	return out
}

// HistogramMerge folds per-fragment bucket counts.
func HistogramMerge(acc, next int) int { return acc + next }
