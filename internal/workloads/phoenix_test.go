package workloads

import (
	"bytes"
	"context"
	"io"
	"math"
	"testing"
	"testing/quick"

	"mcsd/internal/mapreduce"
	"mcsd/internal/memsim"
	"mcsd/internal/partition"
)

// --- Histogram --------------------------------------------------------------

func TestGenerateBitmapShapeAndDeterminism(t *testing.T) {
	bm := GenerateBitmap(1000, 3)
	if len(bm) != 999 {
		t.Fatalf("bitmap has %d bytes, want 999 (whole pixels)", len(bm))
	}
	if string(bm) != string(GenerateBitmap(1000, 3)) {
		t.Fatal("same seed produced different bitmaps")
	}
	// Channel B is narrow: no value >= 64.
	for i := 2; i < len(bm); i += 3 {
		if bm[i] >= 64 {
			t.Fatalf("B channel value %d out of generator range", bm[i])
		}
	}
}

func TestHistogramSpecMatchesSeq(t *testing.T) {
	bm := GenerateBitmap(60_000, 7)
	res, err := mapreduce.Run(context.Background(),
		mapreduce.Config{Workers: 3, ChunkSize: 1000}, HistogramSpec(), bm)
	if err != nil {
		t.Fatal(err)
	}
	want := HistogramSeq(bm)
	got := res.Map()
	if len(got) != len(want) {
		t.Fatalf("%d buckets, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("bucket %+v = %d, want %d", k, got[k], v)
		}
	}
	// Sorted output: channel-major, value-minor.
	for i := 1; i < len(res.Pairs); i++ {
		a, b := res.Pairs[i-1].Key, res.Pairs[i].Key
		if a.Channel > b.Channel || (a.Channel == b.Channel && a.Value >= b.Value) {
			t.Fatal("histogram output not sorted")
		}
	}
	// Total count = pixels per channel.
	perChannel := make(map[HistChannel]int)
	for _, p := range res.Pairs {
		perChannel[p.Key.Channel] += p.Value
	}
	pixels := len(bm) / 3
	for ch, n := range perChannel {
		if n != pixels {
			t.Fatalf("channel %d counted %d pixels, want %d", ch, n, pixels)
		}
	}
}

func TestHistogramSpecRejectsTornPixels(t *testing.T) {
	spec := HistogramSpec()
	err := spec.Map([]byte{1, 2, 3, 4}, func(HistKey, int) {})
	if err == nil {
		t.Fatal("torn pixel chunk accepted")
	}
}

func TestPixelSplitterAlignment(t *testing.T) {
	data := GenerateBitmap(100, 1) // 99 bytes
	chunks := pixelSplitter(data, 10)
	total := 0
	for i, c := range chunks {
		if len(c)%3 != 0 {
			t.Fatalf("chunk %d has %d bytes (torn pixel)", i, len(c))
		}
		total += len(c)
	}
	if total != 99 {
		t.Fatalf("chunks cover %d bytes, want 99", total)
	}
}

// Property: histogram via partitioned fragments equals the sequential scan
// for any fragment size.
func TestHistogramPartitionedProperty(t *testing.T) {
	bm := GenerateBitmap(6000, 11)
	prop := func(frag uint16) bool {
		// Fragment boundaries must also land on pixels: use multiples of 3.
		size := int64(frag)%900 + 3
		size -= size % 3
		if size < 3 {
			size = 3
		}
		res, err := partition.Run(context.Background(), mapreduce.Config{Workers: 2},
			HistogramSpec(), bytes.NewReader(bm), partition.Options{
				FragmentSize: size,
				// Every byte value appears in pixel data, so delimiter
				// seeking cannot work — fragment at exact multiples of 3
				// via MaxScan=0 and delimiters that always match.
				Delimiters: allBytes(),
			}, HistogramMerge)
		if err != nil {
			return false
		}
		want := HistogramSeq(bm)
		got := res.Map()
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func allBytes() []byte {
	out := make([]byte, 256)
	for i := range out {
		out[i] = byte(i)
	}
	return out
}

// --- KMeans ------------------------------------------------------------------

func TestGeneratePointsShape(t *testing.T) {
	pts, centres := GeneratePoints(500, 3, 4, 9)
	if len(pts) != 500 || len(centres) != 4 {
		t.Fatalf("got %d points, %d centres", len(pts), len(centres))
	}
	for _, p := range pts {
		if len(p) != 3 {
			t.Fatal("wrong dimensionality")
		}
	}
}

func TestEncodePointsRoundSize(t *testing.T) {
	pts, _ := GeneratePoints(10, 2, 2, 1)
	enc, dim, err := EncodePoints(pts)
	if err != nil || dim != 2 {
		t.Fatalf("EncodePoints: (%d, %v)", dim, err)
	}
	if len(enc) != 10*2*8 {
		t.Fatalf("encoded %d bytes, want 160", len(enc))
	}
	if _, _, err := EncodePoints(nil); err == nil {
		t.Fatal("empty points accepted")
	}
	ragged := []KMeansPoint{{1, 2}, {3}}
	if _, _, err := EncodePoints(ragged); err == nil {
		t.Fatal("ragged points accepted")
	}
}

func TestKMeansMatchesSequential(t *testing.T) {
	pts, _ := GeneratePoints(600, 2, 3, 21)
	enc, dim, err := EncodePoints(pts)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := KMeans(context.Background(), mapreduce.Config{Workers: 3, ChunkSize: 256},
		enc, dim, 3, 50, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := KMeansSeq(pts, 3, 50, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Rounds != seq.Rounds || mr.Converged != seq.Converged {
		t.Fatalf("rounds/convergence differ: MR (%d, %v) vs seq (%d, %v)",
			mr.Rounds, mr.Converged, seq.Rounds, seq.Converged)
	}
	for i := range mr.Centroids {
		for d := range mr.Centroids[i] {
			if math.Abs(mr.Centroids[i][d]-seq.Centroids[i][d]) > 1e-6 {
				t.Fatalf("centroid %d dim %d: %v vs %v",
					i, d, mr.Centroids[i][d], seq.Centroids[i][d])
			}
		}
	}
	if !mr.Converged {
		t.Fatal("well-separated blobs did not converge in 50 rounds")
	}
}

func TestKMeansRecoversBlobCentres(t *testing.T) {
	pts, truth := GeneratePoints(2000, 2, 3, 5)
	enc, dim, err := EncodePoints(pts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := KMeans(context.Background(), mapreduce.Config{Workers: 2}, enc, dim, 3, 100, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	// Every true centre must have a recovered centroid within a few units
	// (blob sigma is 1).
	for _, tc := range truth {
		best := math.MaxFloat64
		for _, c := range res.Centroids {
			var dist float64
			for d := range tc {
				diff := tc[d] - c[d]
				dist += diff * diff
			}
			if dist < best {
				best = dist
			}
		}
		if math.Sqrt(best) > 3 {
			t.Fatalf("true centre %v not recovered (nearest centroid %.2f away)",
				tc, math.Sqrt(best))
		}
	}
}

func TestKMeansValidation(t *testing.T) {
	if _, err := KMeans(context.Background(), mapreduce.Config{}, nil, 0, 3, 10, 0); err == nil {
		t.Fatal("dim=0 accepted")
	}
	pts, _ := GeneratePoints(2, 2, 2, 1)
	enc, dim, _ := EncodePoints(pts)
	if _, err := KMeans(context.Background(), mapreduce.Config{}, enc, dim, 5, 10, 0); err == nil {
		t.Fatal("k > points accepted")
	}
	if _, err := KMeansSeq(pts, 5, 10, 0); err == nil {
		t.Fatal("seq: k > points accepted")
	}
}

func TestKMeansPartitionedMatchesInMemory(t *testing.T) {
	pts, _ := GeneratePoints(800, 3, 4, 55)
	enc, dim, err := EncodePoints(pts)
	if err != nil {
		t.Fatal(err)
	}
	inMem, err := KMeans(context.Background(), mapreduce.Config{Workers: 2}, enc, dim, 4, 40, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	open := func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(enc)), nil
	}
	part, err := KMeansPartitioned(context.Background(), mapreduce.Config{Workers: 2},
		open, dim, 4, 40, 1e-9, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if part.Rounds != inMem.Rounds || part.Converged != inMem.Converged {
		t.Fatalf("rounds/convergence differ: partitioned (%d, %v) vs in-memory (%d, %v)",
			part.Rounds, part.Converged, inMem.Rounds, inMem.Converged)
	}
	for i := range part.Centroids {
		for d := range part.Centroids[i] {
			if math.Abs(part.Centroids[i][d]-inMem.Centroids[i][d]) > 1e-6 {
				t.Fatalf("centroid %d dim %d: %v vs %v",
					i, d, part.Centroids[i][d], inMem.Centroids[i][d])
			}
		}
	}
}

func TestKMeansPartitionedUnderMemoryBudget(t *testing.T) {
	// The point of the composition: a memory budget the whole data set
	// does not fit in. Fragments of ~2 KB against a 8 KB accountant.
	pts, _ := GeneratePoints(2000, 2, 3, 66) // 32 KB encoded
	enc, dim, err := EncodePoints(pts)
	if err != nil {
		t.Fatal(err)
	}
	acct := memsim.NewAccountant(memsim.Config{CapacityBytes: 8 << 10, UsableFraction: 1.0})
	cfg := mapreduce.Config{Workers: 2, Memory: acct}
	// Native in-memory run cannot be admitted.
	if _, err := KMeans(context.Background(), cfg, enc, dim, 3, 5, 1e-6); err == nil {
		t.Fatal("32 KB in-memory run fit an 8 KB budget")
	}
	open := func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(enc)), nil
	}
	res, err := KMeansPartitioned(context.Background(), cfg, open, dim, 3, 30, 1e-6, 2<<10)
	if err != nil {
		t.Fatalf("partitioned k-means failed under budget: %v", err)
	}
	if !res.Converged {
		t.Fatal("partitioned k-means did not converge")
	}
	if acct.Peak() > 8<<10 {
		t.Fatalf("peak footprint %d exceeded the budget", acct.Peak())
	}
}

func TestKMeansPartitionedValidation(t *testing.T) {
	open := func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(nil)), nil
	}
	if _, err := KMeansPartitioned(context.Background(), mapreduce.Config{},
		open, 0, 3, 5, 0, 100); err == nil {
		t.Fatal("dim=0 accepted")
	}
	if _, err := KMeansPartitioned(context.Background(), mapreduce.Config{},
		open, 2, 3, 5, 0, 100); err == nil {
		t.Fatal("empty input accepted (cannot read k initial points)")
	}
}

func TestKMeansMaxRoundsHonoured(t *testing.T) {
	pts, _ := GeneratePoints(400, 2, 4, 33)
	enc, dim, _ := EncodePoints(pts)
	res, err := KMeans(context.Background(), mapreduce.Config{Workers: 2}, enc, dim, 4, 1, 1e-15)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("ran %d rounds, want exactly 1", res.Rounds)
	}
}
