package workloads

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mcsd/internal/mapreduce"
	"mcsd/internal/partition"
)

func TestGenerateSalesFileWellFormed(t *testing.T) {
	data := GenerateSalesBytes(20_000, 5)
	lines := bytes.Split(bytes.TrimRight(data, "\n"), []byte{'\n'})
	if len(lines) < 100 {
		t.Fatalf("only %d rows generated", len(lines))
	}
	for _, line := range lines {
		rec, err := ParseSalesLine(line)
		if err != nil {
			t.Fatalf("bad row %q: %v", line, err)
		}
		if rec.Quantity < 1 || rec.Quantity > 99 || rec.Price <= 0 {
			t.Fatalf("row out of range: %+v", rec)
		}
	}
	// Deterministic.
	if !bytes.Equal(data, GenerateSalesBytes(20_000, 5)) {
		t.Fatal("same seed produced different sales data")
	}
}

func TestParseSalesLineErrors(t *testing.T) {
	for _, bad := range []string{"a,b,c", "r,p,notanint,1.5", "r,p,3,notafloat", ""} {
		if _, err := ParseSalesLine([]byte(bad)); err == nil {
			t.Errorf("row %q accepted", bad)
		}
	}
}

func TestDBQueryValidate(t *testing.T) {
	if err := (DBQuery{GroupBy: "region"}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (DBQuery{GroupBy: "color"}).Validate(); err == nil {
		t.Fatal("bad group_by accepted")
	}
	if err := (DBQuery{GroupBy: "region", MinPrice: -1}).Validate(); err == nil {
		t.Fatal("negative min_price accepted")
	}
}

func TestDBSelectSpecMatchesSeq(t *testing.T) {
	data := GenerateSalesBytes(40_000, 9)
	for _, q := range []DBQuery{
		{GroupBy: "region"},
		{GroupBy: "product"},
		{GroupBy: "region", MinPrice: 500},
	} {
		want, err := DBSelectSeq(data, q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mapreduce.Run(context.Background(), mapreduce.Config{Workers: 3},
			DBSelectSpec(q), data)
		if err != nil {
			t.Fatal(err)
		}
		got := res.Map()
		if len(got) != len(want) {
			t.Fatalf("query %+v: %d groups, want %d", q, len(got), len(want))
		}
		for g, v := range want {
			if math.Abs(got[g]-v) > 1e-6 {
				t.Fatalf("query %+v: revenue[%s] = %v, want %v", q, g, got[g], v)
			}
		}
	}
}

func TestDBSelectSpecRejectsGarbageRows(t *testing.T) {
	_, err := mapreduce.Run(context.Background(),
		mapreduce.Config{Workers: 1, MaxTaskRetries: 1},
		DBSelectSpec(DBQuery{GroupBy: "region"}), []byte("not,a,valid\n"))
	if err == nil {
		t.Fatal("garbage row accepted")
	}
}

// Property: partitioned aggregation equals whole-input aggregation —
// revenue sums are merge-associative across any fragmentation.
func TestDBSelectPartitionedEquivalenceProperty(t *testing.T) {
	prop := func(seed int64, fragSize uint16) bool {
		data := GenerateSalesBytes(8_000, seed)
		q := DBQuery{GroupBy: "product"}
		want, err := DBSelectSeq(data, q)
		if err != nil {
			return false
		}
		res, err := partition.Run(context.Background(), mapreduce.Config{Workers: 2},
			DBSelectSpec(q), bytes.NewReader(data),
			partition.Options{FragmentSize: int64(fragSize)%2000 + 50, Delimiters: []byte{'\n'}},
			DBSelectMerge)
		if err != nil {
			return false
		}
		got := res.Map()
		if len(got) != len(want) {
			return false
		}
		for g, v := range want {
			if math.Abs(got[g]-v) > 1e-6*math.Abs(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDBSelectFilterReducesRevenue(t *testing.T) {
	data := GenerateSalesBytes(20_000, 3)
	all, err := DBSelectSeq(data, DBQuery{GroupBy: "region"})
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := DBSelectSeq(data, DBQuery{GroupBy: "region", MinPrice: 800})
	if err != nil {
		t.Fatal(err)
	}
	var sumAll, sumFiltered float64
	for _, v := range all {
		sumAll += v
	}
	for _, v := range filtered {
		sumFiltered += v
	}
	if sumFiltered >= sumAll {
		t.Fatalf("filter did not reduce revenue: %v >= %v", sumFiltered, sumAll)
	}
	if sumFiltered == 0 {
		t.Fatal("filter removed everything; generator range wrong")
	}
}

func TestDBSelectCostModel(t *testing.T) {
	c := DBSelectCost()
	if !c.Partitionable || c.OutputRatio >= 0.01 {
		t.Fatalf("dbselect must be partitionable with tiny output: %+v", c)
	}
	if c.ResidentFactor >= StringMatchCost().ResidentFactor {
		t.Fatal("streaming aggregation should have the smallest hot set")
	}
	if !strings.Contains(c.Name, "dbselect") {
		t.Fatal("cost model name wrong")
	}
}
