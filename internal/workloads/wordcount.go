package workloads

import (
	"bytes"
	"sort"

	"mcsd/internal/mapreduce"
	"mcsd/internal/partition"
)

// WordCountFootprint is the memory footprint of word count as a multiple of
// its input: "the memory footprint of Word-Count is around three times of
// the input data size" (§V-C).
const WordCountFootprint = 3.0

// WordCountSpec returns the Word Count application of §V-A: Map emits
// (word, 1) per word of its chunk; Reduce sums; the final output is sorted
// so it can be "printed out in accordance with the frequency" — the spec
// sorts by key, and TopWords re-sorts by count for the report.
func WordCountSpec() mapreduce.Spec[string, int, int] {
	return mapreduce.Spec[string, int, int]{
		Name:  "wordcount",
		Split: mapreduce.DelimiterSplitter(' ', '\n', '\r', '\t'),
		Map: func(chunk []byte, emit func(string, int)) error {
			for _, w := range bytes.Fields(chunk) {
				emit(string(w), 1)
			}
			return nil
		},
		// MapBytes is the zero-copy tokenizer the parallel engine prefers:
		// words are emitted as subslices of the chunk's backing bytes, so a
		// repeated word costs no allocation at all — the engine interns each
		// distinct word once per task. Map above stays as the sequential
		// baseline (RunSequential's original path) and as documentation of
		// the allocation the zero-copy path removes.
		MapBytes: func(chunk []byte, emit func([]byte, int)) error {
			i := 0
			for i < len(chunk) {
				for i < len(chunk) && asciiSpace[chunk[i]] {
					i++
				}
				start := i
				for i < len(chunk) && !asciiSpace[chunk[i]] {
					i++
				}
				if i > start {
					emit(chunk[start:i], 1)
				}
			}
			return nil
		},
		// The combiner folds in place: the engine's streaming-combine path
		// invokes it repeatedly during the map call, so a fresh one-element
		// slice per fold would put an allocation on the emit hot path.
		Combine: func(_ string, values []int) []int {
			sum := 0
			for _, v := range values {
				sum += v
			}
			values[0] = sum
			return values[:1]
		},
		Reduce: func(_ string, values []int) (int, error) {
			sum := 0
			for _, v := range values {
				sum += v
			}
			return sum, nil
		},
		Less:            func(a, b string) bool { return a < b },
		FootprintFactor: WordCountFootprint,
	}
}

// asciiSpace mirrors the ASCII subset of bytes.Fields' separator class, so
// the Map and MapBytes tokenizers agree on any ASCII corpus (the generated
// benchmark corpora are pure ASCII). A lookup table keeps the per-byte
// classification to one load on the tokenizer hot loop.
var asciiSpace = [256]bool{' ': true, '\t': true, '\n': true, '\v': true, '\f': true, '\r': true}

// WordCountMerge folds per-fragment counts: partial counts add.
func WordCountMerge(acc, next int) int { return partition.SumMerge(acc, next) }

// WordCountSeq is the sequential baseline: a single pass with a hash map.
func WordCountSeq(data []byte) map[string]int {
	counts := make(map[string]int)
	for _, w := range bytes.Fields(data) {
		counts[string(w)]++
	}
	return counts
}

// TopWords returns the n most frequent words in decreasing count order
// (ties broken alphabetically) — the paper's final word-count output format.
func TopWords(counts map[string]int, n int) []mapreduce.Pair[string, int] {
	pairs := make([]mapreduce.Pair[string, int], 0, len(counts))
	for w, c := range counts {
		pairs = append(pairs, mapreduce.Pair[string, int]{Key: w, Value: c})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Value != pairs[j].Value {
			return pairs[i].Value > pairs[j].Value
		}
		return pairs[i].Key < pairs[j].Key
	})
	if n > 0 && len(pairs) > n {
		pairs = pairs[:n]
	}
	return pairs
}
