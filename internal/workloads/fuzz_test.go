package workloads

import "testing"

// FuzzParseSalesLine asserts the CSV row parser never panics and accepts
// exactly well-formed rows.
func FuzzParseSalesLine(f *testing.F) {
	f.Add([]byte("north,disk,3,5.00"))
	f.Add([]byte(""))
	f.Add([]byte(",,,"))
	f.Add([]byte("a,b,99999999999999999999,1"))
	f.Add([]byte("a,b,1,NaN"))
	f.Fuzz(func(t *testing.T, line []byte) {
		rec, err := ParseSalesLine(line)
		if err != nil {
			return
		}
		if rec.Region == "" && rec.Product == "" && rec.Quantity == 0 && rec.Price == 0 {
			// A parseable line has at least the numeric fields set; the
			// string fields may legitimately be empty only if the input
			// had empty columns.
			return
		}
	})
}

// FuzzWordCountSeq asserts the sequential baseline never panics and counts
// exactly len(Fields) words.
func FuzzWordCountSeq(f *testing.F) {
	f.Add([]byte("a b c a"))
	f.Add([]byte(""))
	f.Add([]byte("\x00\xff unicode \xe2\x98\x83"))
	f.Fuzz(func(t *testing.T, data []byte) {
		counts := WordCountSeq(data)
		total := 0
		for _, c := range counts {
			if c <= 0 {
				t.Fatal("non-positive count")
			}
			total += c
		}
		_ = total
	})
}
