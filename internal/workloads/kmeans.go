package workloads

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand"

	"mcsd/internal/mapreduce"
	"mcsd/internal/partition"
)

// KMeans is the iterative application of the Phoenix suite: each round is
// one MapReduce — Map assigns every point to its nearest centroid and
// emits (cluster, partial sum); Reduce averages into new centroids — and a
// driver loops rounds until the centroids stop moving. It exercises the
// one engine shape nothing else in the paper does: multi-round MapReduce
// with state carried between rounds.

// KMeansPoint is one sample in D dimensions.
type KMeansPoint []float64

// kmSum accumulates a partial cluster: element-wise sums plus a count.
type kmSum struct {
	Sum   []float64
	Count int
}

// GeneratePoints produces n points in dim dimensions drawn from k
// well-separated Gaussian blobs, deterministically for a seed. It returns
// the points and the true blob centres (useful for accuracy checks).
func GeneratePoints(n, dim, k int, seed int64) ([]KMeansPoint, []KMeansPoint) {
	rng := rand.New(rand.NewSource(seed))
	centres := make([]KMeansPoint, k)
	for i := range centres {
		c := make(KMeansPoint, dim)
		for d := range c {
			c[d] = float64(rng.Intn(20 * k)) // spread centres out
		}
		centres[i] = c
	}
	points := make([]KMeansPoint, n)
	for i := range points {
		c := centres[rng.Intn(k)]
		p := make(KMeansPoint, dim)
		for d := range p {
			p[d] = c[d] + rng.NormFloat64()
		}
		points[i] = p
	}
	return points, centres
}

// EncodePoints packs points into the byte-oriented input the engine
// consumes: little-endian float64s, one fixed-size record per point.
func EncodePoints(points []KMeansPoint) ([]byte, int, error) {
	if len(points) == 0 {
		return nil, 0, fmt.Errorf("workloads: no points")
	}
	dim := len(points[0])
	out := make([]byte, 0, len(points)*dim*8)
	for i, p := range points {
		if len(p) != dim {
			return nil, 0, fmt.Errorf("workloads: point %d has dim %d, want %d", i, len(p), dim)
		}
		for _, v := range p {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
	}
	return out, dim, nil
}

// kmeansSpec is one assignment round against fixed centroids.
func kmeansSpec(centroids []KMeansPoint, dim int) mapreduce.Spec[int, kmSum, kmSum] {
	rec := dim * 8
	fold := func(vs []kmSum) kmSum {
		acc := kmSum{Sum: make([]float64, dim)}
		for _, v := range vs {
			for d := range acc.Sum {
				acc.Sum[d] += v.Sum[d]
			}
			acc.Count += v.Count
		}
		return acc
	}
	return mapreduce.Spec[int, kmSum, kmSum]{
		Name: "kmeans-round",
		Split: func(data []byte, chunkSize int) [][]byte {
			chunkSize -= chunkSize % rec
			if chunkSize < rec {
				chunkSize = rec
			}
			usable := len(data) - len(data)%rec
			var chunks [][]byte
			for off := 0; off < usable; off += chunkSize {
				end := off + chunkSize
				if end > usable {
					end = usable
				}
				chunks = append(chunks, data[off:end])
			}
			return chunks
		},
		Map: func(chunk []byte, emit func(int, kmSum)) error {
			if len(chunk)%rec != 0 {
				return fmt.Errorf("workloads: kmeans chunk not whole records")
			}
			// Accumulate per-centroid partials locally; one emit per
			// centroid per chunk.
			locals := make([]kmSum, len(centroids))
			p := make([]float64, dim)
			for off := 0; off < len(chunk); off += rec {
				for d := 0; d < dim; d++ {
					p[d] = math.Float64frombits(
						binary.LittleEndian.Uint64(chunk[off+8*d:]))
				}
				best, bestDist := 0, math.MaxFloat64
				for ci, c := range centroids {
					var dist float64
					for d := 0; d < dim; d++ {
						diff := p[d] - c[d]
						dist += diff * diff
					}
					if dist < bestDist {
						best, bestDist = ci, dist
					}
				}
				if locals[best].Sum == nil {
					locals[best].Sum = make([]float64, dim)
				}
				for d := 0; d < dim; d++ {
					locals[best].Sum[d] += p[d]
				}
				locals[best].Count++
			}
			for ci, l := range locals {
				if l.Count > 0 {
					emit(ci, l)
				}
			}
			return nil
		},
		// Folds in place — see WordCountSpec's combiner.
		Combine:         func(_ int, vs []kmSum) []kmSum { vs[0] = fold(vs); return vs[:1] },
		Reduce:          func(_ int, vs []kmSum) (kmSum, error) { return fold(vs), nil },
		Less:            func(a, b int) bool { return a < b },
		FootprintFactor: 1.1,
	}
}

// KMeansResult reports a clustering run.
type KMeansResult struct {
	Centroids  []KMeansPoint
	Rounds     int
	Converged  bool
	LastShift  float64
	Assignment []int // set only by KMeansSeq
}

// KMeans runs Lloyd's algorithm as iterated MapReduce over the encoded
// points: up to maxRounds rounds, stopping when no centroid moves more
// than tol (Euclidean).
func KMeans(ctx context.Context, cfg mapreduce.Config, encoded []byte, dim, k, maxRounds int, tol float64) (*KMeansResult, error) {
	if dim <= 0 || k <= 0 {
		return nil, fmt.Errorf("workloads: kmeans needs dim > 0 and k > 0")
	}
	rec := dim * 8
	nPoints := len(encoded) / rec
	if nPoints < k {
		return nil, fmt.Errorf("workloads: %d points for k=%d", nPoints, k)
	}
	if tol <= 0 {
		tol = 1e-6
	}
	// Deterministic init: first k points.
	centroids := make([]KMeansPoint, k)
	for i := range centroids {
		c := make(KMeansPoint, dim)
		for d := 0; d < dim; d++ {
			c[d] = math.Float64frombits(
				binary.LittleEndian.Uint64(encoded[i*rec+8*d:]))
		}
		centroids[i] = c
	}

	res := &KMeansResult{}
	for round := 0; round < maxRounds; round++ {
		out, err := mapreduce.Run(ctx, cfg, kmeansSpec(centroids, dim), encoded)
		if err != nil {
			return nil, fmt.Errorf("workloads: kmeans round %d: %w", round+1, err)
		}
		res.Rounds++
		next := make([]KMeansPoint, k)
		copy(next, centroids) // empty clusters keep their centroid
		for _, pr := range out.Pairs {
			if pr.Value.Count == 0 {
				continue
			}
			c := make(KMeansPoint, dim)
			for d := 0; d < dim; d++ {
				c[d] = pr.Value.Sum[d] / float64(pr.Value.Count)
			}
			next[pr.Key] = c
		}
		shift := 0.0
		for i := range next {
			var dist float64
			for d := 0; d < dim; d++ {
				diff := next[i][d] - centroids[i][d]
				dist += diff * diff
			}
			if s := math.Sqrt(dist); s > shift {
				shift = s
			}
		}
		centroids = next
		res.LastShift = shift
		if shift <= tol {
			res.Converged = true
			break
		}
	}
	res.Centroids = centroids
	return res, nil
}

// KMeansPartitioned is the out-of-core composition of the paper's two
// contributions: every k-means round streams the encoded points through
// the partitioned runtime (partition.Run), so the data set never needs to
// be resident — only one fragment at a time. openInput must return a fresh
// reader over the same encoded points for every round (on an SD node, a
// reopened data file).
//
// The per-round merge folds partial cluster sums across fragments, which
// is exact: cluster sums are associative.
func KMeansPartitioned(
	ctx context.Context,
	cfg mapreduce.Config,
	openInput func() (io.ReadCloser, error),
	dim, k, maxRounds int,
	tol float64,
	fragmentBytes int64,
) (*KMeansResult, error) {
	if dim <= 0 || k <= 0 {
		return nil, fmt.Errorf("workloads: kmeans needs dim > 0 and k > 0")
	}
	if tol <= 0 {
		tol = 1e-6
	}
	rec := int64(dim * 8)
	if fragmentBytes > 0 {
		fragmentBytes -= fragmentBytes % rec
		if fragmentBytes < rec {
			fragmentBytes = rec
		}
	}
	// Fragment boundaries must land on whole records: every byte is a
	// legal delimiter, so the scanner cuts exactly at the (record-aligned)
	// fragment size.
	opts := partition.Options{FragmentSize: fragmentBytes, Delimiters: every256()}

	// Initialization: read the first k records.
	head := make([]byte, int(rec)*k)
	r, err := openInput()
	if err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(r, head); err != nil {
		r.Close()
		return nil, fmt.Errorf("workloads: reading first %d points: %w", k, err)
	}
	r.Close()
	centroids := make([]KMeansPoint, k)
	for i := range centroids {
		c := make(KMeansPoint, dim)
		for d := 0; d < dim; d++ {
			c[d] = math.Float64frombits(
				binary.LittleEndian.Uint64(head[i*int(rec)+8*d:]))
		}
		centroids[i] = c
	}

	merge := func(acc, next kmSum) kmSum {
		out := kmSum{Sum: make([]float64, dim), Count: acc.Count + next.Count}
		for d := range out.Sum {
			out.Sum[d] = acc.Sum[d] + next.Sum[d]
		}
		return out
	}

	res := &KMeansResult{}
	for round := 0; round < maxRounds; round++ {
		in, err := openInput()
		if err != nil {
			return nil, err
		}
		out, err := partition.Run(ctx, cfg, kmeansSpec(centroids, dim), in, opts, merge)
		in.Close()
		if err != nil {
			return nil, fmt.Errorf("workloads: kmeans round %d: %w", round+1, err)
		}
		res.Rounds++
		next := make([]KMeansPoint, k)
		copy(next, centroids)
		for _, pr := range out.Pairs {
			if pr.Value.Count == 0 {
				continue
			}
			c := make(KMeansPoint, dim)
			for d := 0; d < dim; d++ {
				c[d] = pr.Value.Sum[d] / float64(pr.Value.Count)
			}
			next[pr.Key] = c
		}
		shift := 0.0
		for i := range next {
			var dist float64
			for d := 0; d < dim; d++ {
				diff := next[i][d] - centroids[i][d]
				dist += diff * diff
			}
			if s := math.Sqrt(dist); s > shift {
				shift = s
			}
		}
		centroids = next
		res.LastShift = shift
		if shift <= tol {
			res.Converged = true
			break
		}
	}
	res.Centroids = centroids
	return res, nil
}

// every256 returns all byte values: with fixed-size binary records, any
// boundary is legal and the fragment size (a record multiple) decides cuts.
func every256() []byte {
	out := make([]byte, 256)
	for i := range out {
		out[i] = byte(i)
	}
	return out
}

// KMeansSeq is the sequential baseline over decoded points, with the same
// deterministic initialization; it also returns the final assignment.
func KMeansSeq(points []KMeansPoint, k, maxRounds int, tol float64) (*KMeansResult, error) {
	if len(points) < k || k <= 0 {
		return nil, fmt.Errorf("workloads: %d points for k=%d", len(points), k)
	}
	if tol <= 0 {
		tol = 1e-6
	}
	dim := len(points[0])
	centroids := make([]KMeansPoint, k)
	for i := range centroids {
		centroids[i] = append(KMeansPoint(nil), points[i]...)
	}
	res := &KMeansResult{Assignment: make([]int, len(points))}
	for round := 0; round < maxRounds; round++ {
		sums := make([]kmSum, k)
		for i := range sums {
			sums[i].Sum = make([]float64, dim)
		}
		for pi, p := range points {
			best, bestDist := 0, math.MaxFloat64
			for ci, c := range centroids {
				var dist float64
				for d := range p {
					diff := p[d] - c[d]
					dist += diff * diff
				}
				if dist < bestDist {
					best, bestDist = ci, dist
				}
			}
			res.Assignment[pi] = best
			for d := range p {
				sums[best].Sum[d] += p[d]
			}
			sums[best].Count++
		}
		res.Rounds++
		shift := 0.0
		for i := range centroids {
			if sums[i].Count == 0 {
				continue
			}
			var dist float64
			for d := 0; d < dim; d++ {
				nv := sums[i].Sum[d] / float64(sums[i].Count)
				diff := nv - centroids[i][d]
				dist += diff * diff
				centroids[i][d] = nv
			}
			if s := math.Sqrt(dist); s > shift {
				shift = s
			}
		}
		res.LastShift = shift
		if shift <= tol {
			res.Converged = true
			break
		}
	}
	res.Centroids = centroids
	return res, nil
}
