package workloads

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"strconv"

	"mcsd/internal/mapreduce"
)

// The paper's §VI names "database operations ... preloaded into McSD
// smart-disk nodes" as the extensibility direction, following the
// decision-support workloads of the smart-disk lineage (SmartSTOR, active
// disks). DBSelect is that operation: a selection + group-by aggregation
// over a sales table stored on the SD node, returning only the small
// aggregate — the classic argument for computing at the storage.

// SalesRecord is one row of the generated table.
type SalesRecord struct {
	Region   string
	Product  string
	Quantity int
	Price    float64
}

// Revenue returns quantity x price.
func (r SalesRecord) Revenue() float64 { return float64(r.Quantity) * r.Price }

// Dimension values used by the generator.
var (
	salesRegions  = []string{"north", "south", "east", "west", "central"}
	salesProducts = []string{"disk", "nic", "cpu", "ram", "board", "psu", "fan", "case"}
)

// GenerateSalesFile writes ~size bytes of CSV sales rows
// ("region,product,quantity,price\n"), deterministically for a seed.
func GenerateSalesFile(w io.Writer, size int64, seed int64) (int64, error) {
	rng := rand.New(rand.NewSource(seed))
	bw := &countingWriter{w: w}
	line := make([]byte, 0, 64)
	for bw.n < size {
		line = line[:0]
		line = append(line, salesRegions[rng.Intn(len(salesRegions))]...)
		line = append(line, ',')
		line = append(line, salesProducts[rng.Intn(len(salesProducts))]...)
		line = append(line, ',')
		line = strconv.AppendInt(line, int64(rng.Intn(99)+1), 10)
		line = append(line, ',')
		line = strconv.AppendFloat(line, float64(rng.Intn(100000))/100+0.01, 'f', 2, 64)
		line = append(line, '\n')
		if _, err := bw.Write(line); err != nil {
			return bw.n, err
		}
	}
	return bw.n, nil
}

// GenerateSalesBytes is GenerateSalesFile into memory.
func GenerateSalesBytes(size int64, seed int64) []byte {
	var b bytes.Buffer
	b.Grow(int(size) + 64)
	if _, err := GenerateSalesFile(&b, size, seed); err != nil {
		panic("workloads: in-memory generation cannot fail: " + err.Error())
	}
	return b.Bytes()
}

// DBQuery describes one selection + aggregation:
//
//	SELECT group, SUM(quantity*price) FROM sales
//	WHERE price >= MinPrice GROUP BY <GroupBy>
type DBQuery struct {
	// GroupBy is "region" or "product".
	GroupBy string
	// MinPrice filters rows (0 keeps everything).
	MinPrice float64
}

// Validate checks the query shape.
func (q DBQuery) Validate() error {
	if q.GroupBy != "region" && q.GroupBy != "product" {
		return fmt.Errorf("workloads: group_by must be region or product, got %q", q.GroupBy)
	}
	if q.MinPrice < 0 {
		return fmt.Errorf("workloads: negative min_price %v", q.MinPrice)
	}
	return nil
}

// ParseSalesLine parses one CSV row.
func ParseSalesLine(line []byte) (SalesRecord, error) {
	var rec SalesRecord
	fields := bytes.Split(line, []byte{','})
	if len(fields) != 4 {
		return rec, fmt.Errorf("workloads: malformed sales row %q", line)
	}
	rec.Region = string(fields[0])
	rec.Product = string(fields[1])
	q, err := strconv.Atoi(string(fields[2]))
	if err != nil {
		return rec, fmt.Errorf("workloads: bad quantity in %q: %w", line, err)
	}
	rec.Quantity = q
	p, err := strconv.ParseFloat(string(fields[3]), 64)
	if err != nil {
		return rec, fmt.Errorf("workloads: bad price in %q: %w", line, err)
	}
	rec.Price = p
	return rec, nil
}

// DBSelectSpec returns the MapReduce form of the query: Map parses and
// filters rows, emitting (group, revenue); Combine and Reduce sum.
func DBSelectSpec(q DBQuery) mapreduce.Spec[string, float64, float64] {
	sum := func(vs []float64) float64 {
		var s float64
		for _, v := range vs {
			s += v
		}
		return s
	}
	return mapreduce.Spec[string, float64, float64]{
		Name:  "dbselect",
		Split: mapreduce.LineSplitter,
		Map: func(chunk []byte, emit func(string, float64)) error {
			start := 0
			for pos := 0; pos <= len(chunk); pos++ {
				if pos != len(chunk) && chunk[pos] != '\n' {
					continue
				}
				line := chunk[start:pos]
				start = pos + 1
				if len(line) == 0 {
					continue
				}
				rec, err := ParseSalesLine(line)
				if err != nil {
					return err
				}
				if rec.Price < q.MinPrice {
					continue
				}
				group := rec.Region
				if q.GroupBy == "product" {
					group = rec.Product
				}
				emit(group, rec.Revenue())
			}
			return nil
		},
		// Folds in place — see WordCountSpec's combiner.
		Combine: func(_ string, vs []float64) []float64 { vs[0] = sum(vs); return vs[:1] },
		Reduce:  func(_ string, vs []float64) (float64, error) { return sum(vs), nil },
		Less:    func(a, b string) bool { return a < b },
		// Aggregation state is tiny; the input dominates the footprint.
		FootprintFactor: 1.5,
	}
}

// DBSelectMerge folds per-fragment partial aggregates.
func DBSelectMerge(acc, next float64) float64 { return acc + next }

// DBSelectSeq is the sequential baseline.
func DBSelectSeq(data []byte, q DBQuery) (map[string]float64, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		rec, err := ParseSalesLine(line)
		if err != nil {
			return nil, err
		}
		if rec.Price < q.MinPrice {
			continue
		}
		group := rec.Region
		if q.GroupBy == "product" {
			group = rec.Product
		}
		out[group] += rec.Revenue()
	}
	return out, nil
}

// DBSelectCost is the simulator cost model for the dbselect module:
// CSV parsing per byte, negligible reduce, streaming residency.
func DBSelectCost() CostModel {
	return CostModel{
		Name:            "dbselect",
		MapRateBps:      45e6,
		ReduceFraction:  0.02,
		FootprintFactor: 1.5,
		ResidentFactor:  1.1,
		OutputRatio:     0.0001,
		Partitionable:   true,
	}
}
