// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) from the performance model, printing the same rows and
// series the paper reports. Each Fig* function corresponds to one figure;
// EXPERIMENTS.md records paper-vs-model for all of them.
package experiments

import (
	"fmt"

	"mcsd/internal/cluster"
	"mcsd/internal/metrics"
	"mcsd/internal/sim"
	"mcsd/internal/workloads"
)

// Experiment constants shared by all figures (§V-A, §V-C).
const (
	// PartitionBytes is the paper's 600 MB partition size.
	PartitionBytes = 600 << 20
	// MatrixN is the matrix-multiplication dimension of the MM/WC and
	// MM/SM pairs.
	MatrixN = 1024
	// SMBLoad is the background link load from the Sandia Micro
	// Benchmark routine traffic.
	SMBLoad = 0.1
)

const mb = int64(1) << 20

// SizesA are the data sizes of Fig. 8(a), Fig. 9 and Fig. 10:
// 500 MB – 1.25 GB.
var SizesA = []int64{500 * mb, 750 * mb, 1000 * mb, 1250 * mb}

// SizesGrowth are the data sizes of the growth curves Fig. 8(b,c):
// 500 MB – 2 GB.
var SizesGrowth = []int64{500 * mb, 750 * mb, 1000 * mb, 1500 * mb, 2000 * mb}

func sizeMB(n int64) float64 { return float64(n) / float64(mb) }

// Table1 reproduces Table I, the testbed configuration.
func Table1() *metrics.Table {
	return cluster.TableI().TableIReport()
}

// Fig8a reproduces Fig. 8(a): speedup of the partition-enabled parallel
// runtime over the sequential approach, for WC and SM on the duo-core SD
// node and the quad-core host, 500 MB – 1.25 GB. (The ratios are
// compute-bound, repeated-trial measurements: warm cache.)
func Fig8a() (*metrics.Figure, error) {
	fig := metrics.NewFigure("Fig. 8(a): single-application speedup vs sequential",
		"size(MB)", "speedup")
	tbl := cluster.TableI()
	series := []struct {
		name string
		cost workloads.CostModel
		node cluster.Node
	}{
		{"Quad, WC", workloads.WordCountCost(), *tbl.Host()},
		{"Quad, SM", workloads.StringMatchCost(), *tbl.Host()},
		{"Duo, WC", workloads.WordCountCost(), *tbl.SD()},
		{"Duo, SM", workloads.StringMatchCost(), *tbl.SD()},
	}
	for _, s := range series {
		line := fig.Line(s.name)
		for _, size := range SizesA {
			seq, err := sim.SimulateSingle(s.cost, size, s.node, sim.SingleSequential, PartitionBytes, true)
			if err != nil {
				return nil, fmt.Errorf("fig8a %s seq at %d: %w", s.name, size, err)
			}
			par, err := sim.SimulateSingle(s.cost, size, s.node, sim.SingleParallelPartitioned, PartitionBytes, true)
			if err != nil {
				return nil, fmt.Errorf("fig8a %s par at %d: %w", s.name, size, err)
			}
			line.Add(sizeMB(size), float64(seq.Elapsed)/float64(par.Elapsed))
		}
	}
	return fig, nil
}

// growthFigure builds one of the Fig. 8(b,c) growth curves: elapsed time
// of the partition-enabled runtime on duo and quad platforms.
func growthFigure(title string, cost workloads.CostModel) (*metrics.Figure, error) {
	fig := metrics.NewFigure(title, "size(MB)", "elapsed(s)")
	tbl := cluster.TableI()
	for _, s := range []struct {
		name string
		node cluster.Node
	}{
		{"Duo", *tbl.SD()},
		{"Quad", *tbl.Host()},
	} {
		line := fig.Line(s.name)
		for _, size := range SizesGrowth {
			out, err := sim.SimulateSingle(cost, size, s.node, sim.SingleParallelPartitioned, PartitionBytes, false)
			if err != nil {
				return nil, fmt.Errorf("%s %s at %d: %w", title, s.name, size, err)
			}
			line.Add(sizeMB(size), out.Elapsed.Seconds())
		}
	}
	return fig, nil
}

// Fig8b reproduces Fig. 8(b): word-count elapsed-time growth, duo vs quad,
// 500 MB – 2 GB, partition-enabled.
func Fig8b() (*metrics.Figure, error) {
	return growthFigure("Fig. 8(b): WC growth curve (partition-enabled)", workloads.WordCountCost())
}

// Fig8c reproduces Fig. 8(c): string-match elapsed-time growth.
func Fig8c() (*metrics.Figure, error) {
	return growthFigure("Fig. 8(c): SM growth curve (partition-enabled)", workloads.StringMatchCost())
}

// pairFigures builds the three sub-figures of Fig. 9 (MM/WC) or Fig. 10
// (MM/SM): speedup of the optimized McSD execution over each baseline
// scenario across data sizes. OOM baselines appear as a missing point.
func pairFigures(figName string, cost workloads.CostModel) ([]*metrics.Figure, error) {
	baselines := []struct {
		scen  sim.Scenario
		title string
	}{
		{sim.ScenarioHostOnly, "(a) Host Node Only"},
		{sim.ScenarioTradSD, "(b) Traditional SD"},
		{sim.ScenarioMcSDNoPartition, "(c) McSD without Partition"},
	}
	var figs []*metrics.Figure
	for _, b := range baselines {
		fig := metrics.NewFigure(fmt.Sprintf("%s %s: speedup of McSD", figName, b.title),
			"size(MB)", "speedup")
		line := fig.Line("speedup")
		for _, size := range SizesA {
			cfg := sim.PairConfig{
				Cluster:        cluster.TableI(),
				DataCost:       cost,
				DataBytes:      size,
				MatrixN:        MatrixN,
				PartitionBytes: PartitionBytes,
				SMBLoad:        SMBLoad,
			}
			base, err := sim.SimulatePair(cfg, b.scen)
			if err != nil {
				return nil, fmt.Errorf("%s %v at %d: %w", figName, b.scen, size, err)
			}
			opt, err := sim.SimulatePair(cfg, sim.ScenarioMcSD)
			if err != nil {
				return nil, fmt.Errorf("%s McSD at %d: %w", figName, size, err)
			}
			if s, ok := sim.Speedup(base, opt); ok {
				line.Add(sizeMB(size), s)
			}
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// Fig9 reproduces Fig. 9: speedups of the MM/WC pair.
func Fig9() ([]*metrics.Figure, error) {
	return pairFigures("Fig. 9", workloads.WordCountCost())
}

// Fig10 reproduces Fig. 10: speedups of the MM/SM pair.
func Fig10() ([]*metrics.Figure, error) {
	return pairFigures("Fig. 10", workloads.StringMatchCost())
}

// Claims checks the quantitative claims made in the §V prose and returns
// one report line per claim (with a PASS/FAIL verdict on the model).
func Claims() ([]string, error) {
	var out []string
	tbl := cluster.TableI()
	sd := *tbl.SD()
	wc := workloads.WordCountCost()
	sm := workloads.StringMatchCost()

	// Claim 1: "the traditional Phoenix cannot support the Word-count and
	// the String-match for data size larger than 1.5G, because of the
	// memory overflow."
	wcWall := sim.MemoryWall(wc, sd.Memory)
	smWall := sim.MemoryWall(sm, sd.Memory)
	pass := wcWall >= 1250*mb && wcWall < 1500*mb
	out = append(out, fmt.Sprintf("[%s] native WC memory wall at %.2f GB (paper: between 1.25G works and 1.5G fails)",
		verdict(pass), float64(wcWall)/float64(1<<30)))
	pass = smWall > wcWall && smWall <= 2048*mb
	out = append(out, fmt.Sprintf("[%s] native SM memory wall at %.2f GB (paper: fails by 2G; 2x footprint outlasts WC's 3x)",
		verdict(pass), float64(smWall)/float64(1<<30)))

	// Claim 2: "the elapsed time of Partition-enabled approach is only 1/6
	// of the traditional one" (WC at huge sizes).
	native, err := sim.SimulateSingle(wc, 1250*mb, sd, sim.SingleParallelNative, 0, false)
	if err != nil {
		return nil, err
	}
	part, err := sim.SimulateSingle(wc, 1250*mb, sd, sim.SingleParallelPartitioned, PartitionBytes, false)
	if err != nil {
		return nil, err
	}
	ratio := float64(native.Elapsed) / float64(part.Elapsed)
	pass = ratio >= 4 && ratio <= 12
	out = append(out, fmt.Sprintf("[%s] WC @1.25G native/partitioned elapsed ratio = %.1f (paper: ~6x)",
		verdict(pass), ratio))

	// Claim 3: "both the benchmarks can achieve a 2X speedup, which proves
	// the fully utilization of duo-core processor."
	for _, c := range []workloads.CostModel{wc, sm} {
		seq, err := sim.SimulateSingle(c, 500*mb, sd, sim.SingleSequential, PartitionBytes, true)
		if err != nil {
			return nil, err
		}
		par, err := sim.SimulateSingle(c, 500*mb, sd, sim.SingleParallelPartitioned, PartitionBytes, true)
		if err != nil {
			return nil, err
		}
		r := float64(seq.Elapsed) / float64(par.Elapsed)
		pass = r >= 1.7 && r <= 2.1
		out = append(out, fmt.Sprintf("[%s] %s duo-core speedup vs sequential = %.2f (paper: ~2x)",
			verdict(pass), c.Name, r))
	}

	// Claim 4: Fig. 9 averages — Trad-SD ~2x; blowups at 1.25G.
	cfg := sim.PairConfig{
		Cluster: tbl, DataCost: wc, DataBytes: 1250 * mb,
		MatrixN: MatrixN, PartitionBytes: PartitionBytes, SMBLoad: SMBLoad,
	}
	opt, err := sim.SimulatePair(cfg, sim.ScenarioMcSD)
	if err != nil {
		return nil, err
	}
	for _, c := range []struct {
		scen     sim.Scenario
		min, max float64
		paper    string
	}{
		{sim.ScenarioTradSD, 1.5, 2.6, "~2x"},
		{sim.ScenarioMcSDNoPartition, 5, 12, "~6.8x"},
		{sim.ScenarioHostOnly, 13, 23, "~17.4x"},
	} {
		base, err := sim.SimulatePair(cfg, c.scen)
		if err != nil {
			return nil, err
		}
		s, ok := sim.Speedup(base, opt)
		pass = ok && s >= c.min && s <= c.max
		out = append(out, fmt.Sprintf("[%s] MM/WC @1.25G McSD speedup over %v = %.1f (paper: %s)",
			verdict(pass), c.scen, s, c.paper))
	}
	return out, nil
}

func verdict(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}
