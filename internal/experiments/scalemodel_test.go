package experiments

import (
	"context"
	"testing"
	"time"
)

func TestScaleModelMeasuredShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scale model moves real megabytes over a throttled link")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	// Small and fast for CI: two sizes, modest link.
	cfg := ScaleModelConfig{
		Sizes:          []int64{1 << 20, 4 << 20},
		LinkBps:        20e6,
		PartitionBytes: 512 << 10,
		Workers:        2,
	}
	res, err := RunScaleModel(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	off, host := res.Elapsed.Series[0], res.Elapsed.Series[1]
	if len(off.Y) != 2 || len(host.Y) != 2 {
		t.Fatalf("expected 2 measured points per series, got %d/%d", len(off.Y), len(host.Y))
	}
	// The measured shape: host-only pays the wire for every byte, so it
	// must be slower at the larger size, and its disadvantage must grow
	// with size (the data-movement effect the paper is about).
	if host.Y[1] <= off.Y[1] {
		t.Errorf("host-only (%.2fs) not slower than offload (%.2fs) at 4 MB",
			host.Y[1], off.Y[1])
	}
	sp := res.Speedup.Series[0]
	if sp.Y[1] <= 1.0 {
		t.Errorf("speedup at 4 MB = %.2f, want > 1", sp.Y[1])
	}
}
