package experiments

import (
	"strings"
	"testing"
)

func TestTable1HasFiveNodes(t *testing.T) {
	tbl := Table1()
	if tbl.NumRows() != 5 {
		t.Fatalf("Table I has %d rows, want 5", tbl.NumRows())
	}
}

func TestFig8aSeriesAndRanges(t *testing.T) {
	fig, err := Fig8a()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("Fig 8(a) has %d series, want 4", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Y) != len(SizesA) {
			t.Fatalf("series %q has %d points, want %d", s.Name, len(s.Y), len(SizesA))
		}
		for i, y := range s.Y {
			if y < 1.5 || y > 4.5 {
				t.Errorf("series %q point %d = %.2f, outside the paper's 1.5-4.5 band", s.Name, i, y)
			}
		}
	}
	// Quad series above duo series for the same workload.
	quadWC, duoWC := fig.Series[0], fig.Series[2]
	for i := range quadWC.Y {
		if quadWC.Y[i] <= duoWC.Y[i] {
			t.Errorf("quad WC speedup (%.2f) not above duo (%.2f) at point %d",
				quadWC.Y[i], duoWC.Y[i], i)
		}
	}
}

func TestFig8bGrowthLinearOrdered(t *testing.T) {
	fig, err := Fig8b()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("Fig 8(b) has %d series, want duo+quad", len(fig.Series))
	}
	duo, quad := fig.Series[0], fig.Series[1]
	for i := range duo.Y {
		if quad.Y[i] >= duo.Y[i] {
			t.Errorf("quad (%.1fs) not below duo (%.1fs) at point %d", quad.Y[i], duo.Y[i], i)
		}
		if i > 0 && duo.Y[i] <= duo.Y[i-1] {
			t.Errorf("duo curve not increasing at point %d", i)
		}
	}
	// Near-linear: 4x data within ~1.6x of 4x time.
	growth := duo.Y[len(duo.Y)-1] / duo.Y[0]
	if growth < 2.5 || growth > 6.4 {
		t.Errorf("duo 500MB->2GB grew %.1fx, want near-linear ~4x", growth)
	}
}

func TestFig8cGrowthExists(t *testing.T) {
	fig, err := Fig8c()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		if len(s.Y) != len(SizesGrowth) {
			t.Fatalf("series %q has %d points, want %d", s.Name, len(s.Y), len(SizesGrowth))
		}
	}
	if !strings.Contains(fig.Title, "SM") {
		t.Fatal("Fig 8(c) should be the SM curve")
	}
}

func TestFig9ShapesMatchPaper(t *testing.T) {
	figs, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 {
		t.Fatalf("Fig 9 has %d sub-figures, want 3", len(figs))
	}
	hostOnly, tradSD, nopart := figs[0].Series[0], figs[1].Series[0], figs[2].Series[0]
	// Host-only and no-partition rise steeply with size.
	if last := hostOnly.Y[len(hostOnly.Y)-1]; last < 13 {
		t.Errorf("host-only speedup at 1.25GB = %.1f, want >= 13 (paper ~17.4)", last)
	}
	if last := nopart.Y[len(nopart.Y)-1]; last < 5 {
		t.Errorf("no-partition speedup at 1.25GB = %.1f, want >= 5 (paper ~6.8)", last)
	}
	// Trad-SD stays ~2 flat.
	for i, y := range tradSD.Y {
		if y < 1.5 || y > 2.6 {
			t.Errorf("trad-SD speedup point %d = %.2f, want ~2", i, y)
		}
	}
	// Below threshold (500MB) everything is mild.
	if hostOnly.Y[0] > 2.5 || nopart.Y[0] > 1.8 {
		t.Errorf("speedups below threshold too large: host=%.2f nopart=%.2f",
			hostOnly.Y[0], nopart.Y[0])
	}
}

func TestFig10NoBlowup(t *testing.T) {
	figs, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range figs {
		for _, s := range fig.Series {
			for i, y := range s.Y {
				if y < 0.8 || y > 3.5 {
					t.Errorf("%s point %d = %.2f, MM/SM should stay ~1.5-2.5 (no blowup)",
						fig.Title, i, y)
				}
			}
		}
	}
}

func TestClaimsAllPass(t *testing.T) {
	claims, err := Claims()
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) < 6 {
		t.Fatalf("only %d claims checked", len(claims))
	}
	for _, c := range claims {
		if strings.HasPrefix(c, "[FAIL]") {
			t.Errorf("claim failed: %s", c)
		}
	}
}
