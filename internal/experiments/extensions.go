package experiments

import (
	"fmt"

	"mcsd/internal/cluster"
	"mcsd/internal/metrics"
	"mcsd/internal/netsim"
	"mcsd/internal/sim"
	"mcsd/internal/workloads"
)

// The figures below go beyond the paper's evaluation, covering its §VI
// future-work directions with the same model: multi-SD parallelism,
// the InfiniBand interconnect upgrade, and sensitivity to the SMB routine
// load.

// FigMultiSD studies "parallelisms among multiple McSD smart disks":
// speedup of a 2 GB word count striped across k duo-core SD nodes,
// relative to a single node.
func FigMultiSD() (*metrics.Figure, error) {
	fig := metrics.NewFigure("Ext. A: multi-SD striping speedup (WC, 2 GB)",
		"SD nodes", "speedup vs 1 node")
	line := fig.Line("speedup")
	cfg := sim.PairConfig{
		Cluster:        cluster.TableI(),
		DataCost:       workloads.WordCountCost(),
		DataBytes:      2 << 30,
		PartitionBytes: PartitionBytes,
		SMBLoad:        SMBLoad,
	}
	for k := 1; k <= 6; k++ {
		s, err := sim.MultiSDSpeedup(cfg, k)
		if err != nil {
			return nil, fmt.Errorf("multi-SD k=%d: %w", k, err)
		}
		line.Add(float64(k), s)
	}
	return fig, nil
}

// FigInterconnect studies the §VI testbed upgrade ("replace Ethernet with
// InfiniBand"): the MM/WC host-only-vs-McSD speedup under three
// interconnects, below (500 MB) and above (1.25 GB) the memory threshold.
// The punchline the model exposes: a faster wire rescues host-only
// execution only below the memory wall — past it, thrashing, not the
// network, dominates.
func FigInterconnect() (*metrics.Figure, error) {
	fig := metrics.NewFigure("Ext. B: interconnect study (MM/WC, Host-only vs McSD)",
		"profile", "speedup of McSD")
	profiles := []netsim.Profile{
		netsim.ProfileFastEthernet,
		netsim.ProfileGigabitEthernet,
		netsim.ProfileInfiniBand,
	}
	for si, size := range []int64{500 * mb, 1250 * mb} {
		line := fig.Line(fmt.Sprintf("%dMB", size/mb))
		for pi, p := range profiles {
			tbl := cluster.TableI()
			tbl.Network = p
			cfg := sim.PairConfig{
				Cluster:        tbl,
				DataCost:       workloads.WordCountCost(),
				DataBytes:      size,
				MatrixN:        MatrixN,
				PartitionBytes: PartitionBytes,
				SMBLoad:        SMBLoad,
			}
			base, err := sim.SimulatePair(cfg, sim.ScenarioHostOnly)
			if err != nil {
				return nil, err
			}
			opt, err := sim.SimulatePair(cfg, sim.ScenarioMcSD)
			if err != nil {
				return nil, err
			}
			if s, ok := sim.Speedup(base, opt); ok {
				// x axis: profile index (0=100MbE, 1=1GbE, 2=IB).
				line.Add(float64(pi), s)
			}
		}
		_ = si
	}
	return fig, nil
}

// InterconnectProfileNames maps FigInterconnect's x values to names.
var InterconnectProfileNames = []string{"100MbE", "1GbE", "IB-QDR"}

// FigOffloadEconomics asks the founding active-disk question (Riedel et
// al.): which operations are worth offloading? For each data-intensive
// module it plots the McSD-vs-host-only speedup across sizes (with a
// negligible host-side computation so the data app dominates). The
// per-workload profile — compute intensity, output selectivity, memory
// hunger — decides the answer.
func FigOffloadEconomics() (*metrics.Figure, error) {
	fig := metrics.NewFigure("Ext. D: offload economics — McSD vs Host-only per workload",
		"size(MB)", "speedup")
	for _, w := range []struct {
		name string
		cost workloads.CostModel
	}{
		{"wordcount", workloads.WordCountCost()},
		{"stringmatch", workloads.StringMatchCost()},
		{"dbselect", workloads.DBSelectCost()},
		{"histogram", workloads.HistogramCost()},
	} {
		line := fig.Line(w.name)
		for _, size := range SizesA {
			cfg := sim.PairConfig{
				Cluster:        cluster.TableI(),
				DataCost:       w.cost,
				DataBytes:      size,
				MatrixN:        64, // negligible host-side computation
				PartitionBytes: PartitionBytes,
				SMBLoad:        SMBLoad,
			}
			base, err := sim.SimulatePair(cfg, sim.ScenarioHostOnly)
			if err != nil {
				return nil, err
			}
			opt, err := sim.SimulatePair(cfg, sim.ScenarioMcSD)
			if err != nil {
				return nil, err
			}
			if s, ok := sim.Speedup(base, opt); ok {
				line.Add(float64(size/mb), s)
			}
		}
	}
	return fig, nil
}

// FigSMBSweep studies sensitivity to the routine-work intensity: the
// MM/WC host-only-vs-McSD speedup at 750 MB as the SMB background link
// load sweeps 0 → 50 %. McSD's advantage grows with cluster busyness —
// offloaded runs touch the network only for parameters and results.
func FigSMBSweep() (*metrics.Figure, error) {
	fig := metrics.NewFigure("Ext. C: SMB background-load sensitivity (MM/WC, 750 MB)",
		"SMB load", "speedup of McSD over Host-only")
	line := fig.Line("speedup")
	for _, load := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		cfg := sim.PairConfig{
			Cluster:        cluster.TableI(),
			DataCost:       workloads.WordCountCost(),
			DataBytes:      750 * mb,
			MatrixN:        MatrixN,
			PartitionBytes: PartitionBytes,
			SMBLoad:        load,
		}
		base, err := sim.SimulatePair(cfg, sim.ScenarioHostOnly)
		if err != nil {
			return nil, err
		}
		opt, err := sim.SimulatePair(cfg, sim.ScenarioMcSD)
		if err != nil {
			return nil, err
		}
		if s, ok := sim.Speedup(base, opt); ok {
			line.Add(load, s)
		}
	}
	return fig, nil
}
