package experiments

import (
	"testing"
)

func TestFigMultiSDShape(t *testing.T) {
	fig, err := FigMultiSD()
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	if len(s.Y) != 6 {
		t.Fatalf("%d points, want 6", len(s.Y))
	}
	if s.Y[0] != 1.0 {
		t.Fatalf("k=1 speedup = %.2f, want 1", s.Y[0])
	}
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] < s.Y[i-1] {
			t.Fatalf("speedup not monotone at k=%d", i+1)
		}
	}
	if s.Y[5] < 3 {
		t.Fatalf("k=6 speedup = %.2f, want meaningful scaling", s.Y[5])
	}
}

func TestFigInterconnectCrossover(t *testing.T) {
	fig, err := FigInterconnect()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("%d series, want 2 (below/above the wall)", len(fig.Series))
	}
	below, above := fig.Series[0], fig.Series[1]
	// Below the wall the interconnect decides everything: a faster wire
	// shrinks McSD's advantage monotonically, and InfiniBand flips it.
	for i := 1; i < len(below.Y); i++ {
		if below.Y[i] >= below.Y[i-1] {
			t.Fatalf("below-wall speedup not decreasing with faster wire: %v", below.Y)
		}
	}
	ib, _ := below.At(2)
	if ib >= 1.0 {
		t.Fatalf("IB below the wall: speedup %.2f, expected host-only to win (<1)", ib)
	}
	// Above the wall thrashing dominates: even InfiniBand leaves McSD far
	// ahead.
	ibAbove, _ := above.At(2)
	if ibAbove < 10 {
		t.Fatalf("IB above the wall: speedup %.2f, want >> 1 (thrash-dominated)", ibAbove)
	}
}

func TestFigOffloadEconomicsProfiles(t *testing.T) {
	fig, err := FigOffloadEconomics()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("%d series, want 4 workloads", len(fig.Series))
	}
	byName := map[string]*seriesRef{}
	for _, s := range fig.Series {
		byName[s.Name] = &seriesRef{s.X, s.Y}
	}
	// The streaming workloads (SM, dbselect, histogram) get a steady ~2x
	// from avoiding data movement, flat across sizes.
	for _, name := range []string{"stringmatch", "dbselect", "histogram"} {
		s := byName[name]
		if s == nil {
			t.Fatalf("missing series %q", name)
		}
		for i, y := range s.y {
			if y < 1.5 || y > 2.6 {
				t.Errorf("%s point %d = %.2f, want flat ~2x", name, i, y)
			}
		}
	}
	// Word count's memory hunger makes host-only execution collapse past
	// the wall: its speedup must dwarf the streaming workloads at 1.25 GB.
	wc := byName["wordcount"]
	if wc == nil {
		t.Fatal("missing wordcount series")
	}
	if last := wc.y[len(wc.y)-1]; last < 10 {
		t.Errorf("wordcount at 1.25GB = %.2f, want memory-wall blowup", last)
	}
}

type seriesRef struct {
	x, y []float64
}

func TestFigSMBSweepMonotone(t *testing.T) {
	fig, err := FigSMBSweep()
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	if len(s.Y) != 6 {
		t.Fatalf("%d points, want 6", len(s.Y))
	}
	// McSD's advantage must grow with background load (host-only moves
	// the data over an increasingly busy link).
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] <= s.Y[i-1] {
			t.Fatalf("speedup not increasing with SMB load: %v", s.Y)
		}
	}
}
