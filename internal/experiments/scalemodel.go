package experiments

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"os"
	"time"

	"mcsd/internal/core"
	"mcsd/internal/mapreduce"
	"mcsd/internal/metrics"
	"mcsd/internal/netsim"
	"mcsd/internal/nfs"
	"mcsd/internal/partition"
	"mcsd/internal/smartfam"
	"mcsd/internal/workloads"
)

// ScaleModel runs the REAL system — the actual MapReduce engine, smartFAM
// over the actual gob file service, real TCP through a token-bucket
// throttled link — as a miniature of the Fig. 9 experiment, measured in
// wall-clock. Sizes are MBs instead of GBs and the link is scaled down
// proportionally, so the data:bandwidth ratio (the quantity that decides
// offload-vs-fetch) matches the testbed's. It returns the measured
// elapsed-time figure plus the host-only/McSD speedup series.
//
// What the scale model can and cannot show on this machine: the data-
// movement effect (host-only pays the wire, offload does not) and the
// memory wall (native OOM under a constrained accountant) are real; the
// duo-vs-quad core effects are not measurable on fewer cores and remain
// the simulator's job.
type ScaleModelConfig struct {
	// Sizes are the corpus sizes to measure.
	Sizes []int64
	// LinkBps scales the testbed's 1 GbE down to laptop scale.
	LinkBps float64
	// PartitionBytes is the fragment size for the offloaded run.
	PartitionBytes int64
	// Workers is the in-process parallelism for both sides.
	Workers int
}

// DefaultScaleModelConfig keeps the full run under ~1 minute: 2-16 MB
// corpora over a 25 MB/s link with 1 MiB fragments.
func DefaultScaleModelConfig() ScaleModelConfig {
	return ScaleModelConfig{
		Sizes:          []int64{2 << 20, 4 << 20, 8 << 20, 16 << 20},
		LinkBps:        25e6,
		PartitionBytes: 1 << 20,
		Workers:        2,
	}
}

// ScaleModelResult is the measured output.
type ScaleModelResult struct {
	// Elapsed has two series, "McSD offload" and "Host-only", in seconds
	// per corpus size (MB).
	Elapsed *metrics.Figure
	// Speedup is the host-only / offload ratio per size.
	Speedup *metrics.Figure
}

// RunScaleModel executes the scale model. It builds a one-process SD node
// (export + daemon + modules), mounts it through the throttled link, and
// measures both execution paths at every size.
func RunScaleModel(ctx context.Context, cfg ScaleModelConfig) (*ScaleModelResult, error) {
	if len(cfg.Sizes) == 0 {
		cfg = DefaultScaleModelConfig()
	}

	// --- SD node.
	dir, err := os.MkdirTemp("", "mcsd-scale-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	share := smartfam.DirFS(dir)
	reg := smartfam.NewRegistry(share)
	for _, m := range core.StandardModules(core.ModuleConfig{Store: core.DirStore(dir), Workers: cfg.Workers}) {
		if err := reg.Register(m); err != nil {
			return nil, err
		}
	}
	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	daemon := smartfam.NewDaemon(share, reg, smartfam.WithWorkers(cfg.Workers))
	go daemon.Run(dctx) //nolint:errcheck

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	srv := nfs.NewServer(dir)
	//mcsdlint:allow goroleak -- Serve returns when the deferred ln.Close() fires at experiment teardown, and the deferred srv.Shutdown() reaps its per-conn goroutines
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Shutdown()

	// --- Host mount through the scaled-down link.
	link := netsim.NewLink(netsim.Profile{
		Name: "scale-link", BandwidthBps: cfg.LinkBps, Latency: 100 * time.Microsecond,
	})
	mount, err := nfs.DialThrottled(ctx, ln.Addr().String(), 5*time.Second, link)
	if err != nil {
		return nil, err
	}
	defer mount.Close()

	rt := core.New()
	rt.AttachSD("sd0", mount)

	res := &ScaleModelResult{
		Elapsed: metrics.NewFigure("Scale model (real engine, measured): WC elapsed",
			"size(MB)", "seconds"),
		Speedup: metrics.NewFigure("Scale model (real engine, measured): Host-only vs McSD",
			"size(MB)", "speedup"),
	}
	offload := res.Elapsed.Line("McSD offload")
	hostOnly := res.Elapsed.Line("Host-only")
	speedup := res.Speedup.Line("speedup")

	for i, size := range cfg.Sizes {
		name := fmt.Sprintf("corpus-%d.txt", i)
		corpus := workloads.GenerateTextBytes(size, int64(100+i))
		// Staging is data placement, not part of either measured path.
		if err := mount.WriteFile(name, corpus); err != nil {
			return nil, err
		}
		xMB := float64(size) / (1 << 20)

		// Path 1: McSD offload — parameters out, small result back.
		//mcsdlint:allow simdet -- the scale model times the real engine; the measurement is the experiment
		start := time.Now()
		r, err := rt.Invoke(ctx, core.ModuleWordCount, core.WordCountParams{
			DataFile: name, PartitionBytes: cfg.PartitionBytes, TopN: 5,
		})
		if err != nil {
			return nil, fmt.Errorf("scale model offload at %d MB: %w", int(xMB), err)
		}
		//mcsdlint:allow simdet -- the scale model times the real engine; the measurement is the experiment
		offSec := time.Since(start).Seconds()
		var out core.WordCountOutput
		if err := core.Decode(r.Payload, &out); err != nil {
			return nil, err
		}

		// Path 2: host-only — stream every byte over the throttled wire.
		//mcsdlint:allow simdet -- the scale model times the real engine; the measurement is the experiment
		start = time.Now()
		reader, err := mount.OpenReader(name)
		if err != nil {
			return nil, err
		}
		hostRes, err := partition.Run(ctx, mapreduce.Config{Workers: cfg.Workers},
			workloads.WordCountSpec(), bufio.NewReaderSize(reader, 1<<20),
			partition.Options{FragmentSize: cfg.PartitionBytes}, workloads.WordCountMerge)
		reader.Close()
		if err != nil {
			return nil, fmt.Errorf("scale model host-only at %d MB: %w", int(xMB), err)
		}
		//mcsdlint:allow simdet -- the scale model times the real engine; the measurement is the experiment
		hostSec := time.Since(start).Seconds()

		// Results must agree or the comparison is meaningless.
		if len(hostRes.Pairs) != out.UniqueWords {
			return nil, fmt.Errorf("scale model result divergence at %d MB: %d vs %d unique words",
				int(xMB), len(hostRes.Pairs), out.UniqueWords)
		}

		offload.Add(xMB, offSec)
		hostOnly.Add(xMB, hostSec)
		if offSec > 0 {
			speedup.Add(xMB, hostSec/offSec)
		}
		// Free SD-side disk as we go.
		_ = mount.Remove(name)
	}
	return res, nil
}
