package nfs

import (
	"bytes"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mcsd/internal/metrics"
)

// startRangeServer boots a server over an 8 MiB file and returns a client
// plus the server for wire-byte accounting.
func startRangeServer(t *testing.T) (*Client, *Server, []byte) {
	t.Helper()
	root := t.TempDir()
	payload := make([]byte, 8<<20)
	for i := range payload {
		payload[i] = byte(i*131 + i>>9)
	}
	if err := os.WriteFile(filepath.Join(root, "big.dat"), payload, 0o644); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(root)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { ln.Close(); srv.Shutdown() })
	c, err := Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, srv, payload
}

// TestOpenRangeReaderBoundsReadAhead is the amplification contract: a short
// range scan moves about its own bytes over the wire, while the unbounded
// reader drags its full prefetch window along.
func TestOpenRangeReaderBoundsReadAhead(t *testing.T) {
	c, srv, payload := startRangeServer(t)
	wire := srv.Metrics().Counter(metrics.NFSBytesRead)

	const off, length = 1 << 20, 64 << 10
	before := wire.Value()
	r, err := c.OpenRangeReader("big.dat", off, length)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, length)
	if _, err := io.ReadFull(r, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload[off:off+length]) {
		t.Fatal("range read returned wrong bytes")
	}
	// The tail past the bound is demand-paged: a small read fetches one
	// small chunk, not another prefetch window.
	tail := make([]byte, 100)
	if _, err := io.ReadFull(r, tail); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tail, payload[off+length:off+length+100]) {
		t.Fatal("tail read returned wrong bytes")
	}
	r.Close()
	if delta := wire.Value() - before; delta > length+2*boundTailChunk {
		t.Fatalf("bounded range scan moved %d wire bytes, want <= %d", delta, length+2*boundTailChunk)
	}

	// Contrast: the unbounded reader's prefetch window over-fetches far
	// past the same 64 KiB consumption.
	before = wire.Value()
	u, err := c.OpenReaderAt("big.dat", off)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(u, got); err != nil {
		t.Fatal(err)
	}
	u.Close()
	if delta := wire.Value() - before; delta < 4<<20 {
		t.Fatalf("unbounded reader moved only %d wire bytes; the bounded contrast is vacuous", delta)
	}
}

// TestOpenRangeReaderAcrossEOF covers a declared range that extends past
// the end of the file: the reader serves what exists and reports EOF.
func TestOpenRangeReaderAcrossEOF(t *testing.T) {
	c, _, payload := startRangeServer(t)
	size := int64(len(payload))

	r, err := c.OpenRangeReader("big.dat", size-10, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload[size-10:]) {
		t.Fatalf("read %d bytes at EOF boundary, want 10", len(got))
	}
}

// TestOpenRangeReaderTailHitsEOF covers the demand-paged tail landing
// exactly on end of file: reading past the bound returns io.EOF cleanly.
func TestOpenRangeReaderTailHitsEOF(t *testing.T) {
	c, _, payload := startRangeServer(t)
	size := int64(len(payload))

	r, err := c.OpenRangeReader("big.dat", size-64, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload[size-64:]) {
		t.Fatal("bounded read at file tail returned wrong bytes")
	}
}
