package nfs

import (
	"bytes"
	"context"
	"errors"
	"hash/crc32"
	"net"
	"sync"
	"testing"
	"time"

	"mcsd/internal/netsim"
	"mcsd/internal/smartfam"
)

// startServer spins up a server over a temp dir and returns a connected
// client plus the export root.
func startServer(t *testing.T) (*Client, string) {
	t.Helper()
	root := t.TempDir()
	srv := NewServer(root)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() {
		ln.Close()
		srv.Shutdown()
	})
	c, err := Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, root
}

func TestPing(t *testing.T) {
	c, _ := startServer(t)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	c, _ := startServer(t)
	data := []byte("file contents over the wire")
	if err := c.WriteFile("data.txt", data); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile("data.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q, want %q", got, data)
	}
}

func TestLargeFileChunked(t *testing.T) {
	c, _ := startServer(t)
	data := bytes.Repeat([]byte("0123456789abcdef"), 3<<17) // 3 MiB, > MaxChunk
	if err := c.WriteFile("big.bin", data); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile("big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("large file corrupted in transit")
	}
}

func TestChunkSum(t *testing.T) {
	c, _ := startServer(t)
	data := bytes.Repeat([]byte("checksum me over the wire "), 1<<17) // > 3 MiB
	if err := c.WriteFile("sum.bin", data); err != nil {
		t.Fatal(err)
	}
	// Walk the file like a scrubber: per-chunk CRCs must match local ones.
	var off int64
	for off < int64(len(data)) {
		want := min(int64(len(data))-off, int64(MaxChunk))
		crc, n, err := c.ChunkSum("sum.bin", off, int(want))
		if err != nil {
			t.Fatal(err)
		}
		if int64(n) != want {
			t.Fatalf("summed %d bytes at %d, want %d", n, off, want)
		}
		if local := crc32.ChecksumIEEE(data[off : off+want]); crc != local {
			t.Fatalf("chunk at %d: remote crc %08x, local %08x", off, crc, local)
		}
		off += want
	}
	// Short sum at EOF.
	crc, n, err := c.ChunkSum("sum.bin", int64(len(data))-10, MaxChunk)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 || crc != crc32.ChecksumIEEE(data[len(data)-10:]) {
		t.Fatalf("tail sum: n=%d crc=%08x", n, crc)
	}
	// Missing files surface ErrNotExist like every other op.
	if _, _, err := c.ChunkSum("nope.bin", 0, 64); !errors.Is(err, smartfam.ErrNotExist) {
		t.Fatalf("missing file: %v, want ErrNotExist", err)
	}
}

func TestCopyTo(t *testing.T) {
	c, _ := startServer(t)
	data := bytes.Repeat([]byte("z"), 2<<20+17)
	if err := c.WriteFile("stream.bin", data); err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	n, err := c.CopyTo(&sink, "stream.bin")
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(data)) || !bytes.Equal(sink.Bytes(), data) {
		t.Fatalf("CopyTo moved %d bytes, want %d", n, len(data))
	}
}

func TestAppendAndReadAt(t *testing.T) {
	c, _ := startServer(t)
	if err := c.Create("log.txt"); err != nil {
		t.Fatal(err)
	}
	if err := c.Append("log.txt", []byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if err := c.Append("log.txt", []byte("world")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	n, err := c.ReadAt("log.txt", buf, 6)
	if err != nil && err.Error() != "EOF" {
		t.Fatal(err)
	}
	if n != 5 || string(buf) != "world" {
		t.Fatalf("ReadAt = %q (%d)", buf[:n], n)
	}
}

func TestStatAndList(t *testing.T) {
	c, _ := startServer(t)
	if err := c.WriteFile("a.log", []byte("xx")); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFile("b.log", []byte("yyy")); err != nil {
		t.Fatal(err)
	}
	size, mtime, err := c.Stat("b.log")
	if err != nil {
		t.Fatal(err)
	}
	if size != 3 {
		t.Fatalf("size = %d, want 3", size)
	}
	if mtime.IsZero() {
		t.Fatal("mtime is zero")
	}
	names, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a.log" || names[1] != "b.log" {
		t.Fatalf("List = %v", names)
	}
}

func TestStatMissingMapsToErrNotExist(t *testing.T) {
	c, _ := startServer(t)
	if _, _, err := c.Stat("ghost"); !errors.Is(err, smartfam.ErrNotExist) {
		t.Fatalf("err = %v, want smartfam.ErrNotExist", err)
	}
}

func TestRemove(t *testing.T) {
	c, _ := startServer(t)
	if err := c.WriteFile("gone.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("gone.txt"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Stat("gone.txt"); !errors.Is(err, smartfam.ErrNotExist) {
		t.Fatal("file still present after Remove")
	}
}

func TestSubdirectoriesAndListDir(t *testing.T) {
	c, _ := startServer(t)
	if err := c.WriteFile("inputs/wc/corpus.txt", []byte("deep file")); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile("inputs/wc/corpus.txt")
	if err != nil || string(got) != "deep file" {
		t.Fatalf("nested read = (%q, %v)", got, err)
	}
	names, err := c.ListDir("inputs/wc")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "corpus.txt" {
		t.Fatalf("ListDir = %v", names)
	}
}

func TestPathTraversalRejected(t *testing.T) {
	c, _ := startServer(t)
	for _, bad := range []string{"../escape", "/abs", "a/../../b", "", "a//b"} {
		if err := c.WriteFile(bad, []byte("x")); err == nil {
			t.Errorf("path %q accepted", bad)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	c1, root := startServer(t)
	// Second client to the same server.
	srvAddr := c1.conn.RemoteAddr().String()
	c2, err := Dial(srvAddr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	_ = root

	var wg sync.WaitGroup
	for i, c := range []*Client{c1, c2} {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if err := c.Append("shared.log", []byte{byte('a' + i)}); err != nil {
					t.Errorf("client %d append: %v", i, err)
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	got, err := c1.ReadFile("shared.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 40 {
		t.Fatalf("shared log has %d bytes, want 40 (lost appends)", len(got))
	}
}

func TestClientSurvivesConcurrentCalls(t *testing.T) {
	c, _ := startServer(t)
	if err := c.WriteFile("f.txt", bytes.Repeat([]byte("q"), 10_000)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if _, err := c.ReadFile("f.txt"); err != nil {
					t.Errorf("concurrent read: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestServerDropMidSession(t *testing.T) {
	root := t.TempDir()
	srv := NewServer(root)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	c, err := Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WriteFile("x", []byte("1")); err != nil {
		t.Fatal(err)
	}
	ln.Close()
	srv.Shutdown()
	if _, err := c.ReadFile("x"); err == nil {
		t.Fatal("read succeeded after server shutdown")
	}
}

func TestThrottledTransferPaysNetworkCost(t *testing.T) {
	root := t.TempDir()
	srv := NewServer(root)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Shutdown()

	// 2 MB/s link with a 256 KiB burst: fetching a 1 MiB file must pace
	// the ~768 KiB beyond the burst, >= ~300 ms.
	link := netsim.NewLink(netsim.Profile{Name: "slow", BandwidthBps: 2e6, Latency: 0})
	c, err := DialThrottled(t.Context(), ln.Addr().String(), 5*time.Second, link)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	data := bytes.Repeat([]byte("p"), 1<<20)
	if err := c.WriteFile("paid.bin", data); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got, err := c.ReadFile("paid.bin")
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if !bytes.Equal(got, data) {
		t.Fatal("throttled transfer corrupted data")
	}
	if elapsed < 200*time.Millisecond {
		t.Fatalf("1MiB at 2MB/s fetched in %v — network cost not paid", elapsed)
	}
}

func TestServerRejectsUnknownOp(t *testing.T) {
	c, _ := startServer(t)
	if _, err := c.call(&Request{Op: "format-disk"}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestServerRejectsOversizedPayloads(t *testing.T) {
	c, _ := startServer(t)
	big := make([]byte, MaxChunk+1)
	if _, err := c.call(&Request{Op: OpAppend, Name: "x", Data: big}); err == nil {
		t.Fatal("oversized append accepted")
	}
	if _, err := c.call(&Request{Op: OpWrite, Name: "x", Data: big}); err == nil {
		t.Fatal("oversized write accepted")
	}
	// The public API chunks transparently.
	if err := c.Append("x", big); err != nil {
		t.Fatalf("chunked Append failed: %v", err)
	}
	size, _, err := c.Stat("x")
	if err != nil || size != int64(len(big)) {
		t.Fatalf("after chunked append: size=%d err=%v", size, err)
	}
}

func TestServerMetricsCountTraffic(t *testing.T) {
	root := t.TempDir()
	srv := NewServer(root)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Shutdown()
	c, err := Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payload := bytes.Repeat([]byte("m"), 1000)
	if err := c.WriteFile("m.bin", payload); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadFile("m.bin"); err != nil {
		t.Fatal(err)
	}
	if got := srv.Metrics().Counter("nfs.bytes.written").Value(); got != 1000 {
		t.Fatalf("bytes.written = %d, want 1000", got)
	}
	if got := srv.Metrics().Counter("nfs.bytes.read").Value(); got != 1000 {
		t.Fatalf("bytes.read = %d, want 1000", got)
	}
	if srv.Metrics().Counter("nfs.ops."+OpWrite).Value() != 1 {
		t.Fatal("write op not counted")
	}
}

func TestOpenReaderStreamsAndValidates(t *testing.T) {
	c, _ := startServer(t)
	if _, err := c.OpenReader("missing"); err == nil {
		t.Fatal("OpenReader on missing file succeeded")
	}
	data := bytes.Repeat([]byte("s"), 2<<20+5)
	if err := c.WriteFile("s.bin", data); err != nil {
		t.Fatal(err)
	}
	r, err := c.OpenReader("s.bin")
	if err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	buf := make([]byte, 64<<10)
	for {
		n, err := r.Read(buf)
		sink.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if !bytes.Equal(sink.Bytes(), data) {
		t.Fatal("streamed content corrupted")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(buf); err == nil {
		t.Fatal("read from closed reader succeeded")
	}
}

func TestSmartFAMOverNFS(t *testing.T) {
	// The full Fig. 5 wiring: SD node runs an NFS server + smartFAM daemon
	// over its local share; the host invokes a module purely through the
	// NFS client.
	c, root := startServer(t)

	sdFS := smartfam.DirFS(root) // daemon is local to the SD node
	reg := smartfam.NewRegistry(sdFS)
	mod := smartfam.ModuleFunc{
		ModuleName: "rev",
		Fn: func(_ context.Context, p []byte) ([]byte, error) {
			out := make([]byte, len(p))
			for i, b := range p {
				out[len(p)-1-i] = b
			}
			return out, nil
		},
	}
	if err := reg.Register(mod); err != nil {
		t.Fatal(err)
	}
	d := smartfam.NewDaemon(sdFS, reg, smartfam.WithPollInterval(time.Millisecond))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go d.Run(ctx) //nolint:errcheck

	host := smartfam.NewClient(c, time.Millisecond) // host side: FS == NFS client
	ictx, icancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer icancel()
	got, err := host.Invoke(ictx, "rev", []byte("abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "fedcba" {
		t.Fatalf("result = %q, want fedcba", got)
	}
}
