package nfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mcsd/internal/metrics"
)

// discardServer accepts connections and reads requests without ever
// answering — a place to park RPCs in flight so a disconnect can be
// injected at a known point.
type discardServer struct {
	ln net.Listener

	mu    sync.Mutex
	conns []net.Conn
}

func startDiscardServer(t *testing.T) *discardServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ds := &discardServer{ln: ln}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			ds.mu.Lock()
			ds.conns = append(ds.conns, c)
			ds.mu.Unlock()
			go io.Copy(io.Discard, c) //nolint:errcheck
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		ds.dropConns()
	})
	return ds
}

// dropConns severs every accepted connection — the injected network fault.
func (d *discardServer) dropConns() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, c := range d.conns {
		c.Close()
	}
	d.conns = nil
}

// waitInflight polls the client's inflight gauge until it reaches want.
func waitInflight(t *testing.T, c *Client, want int64) {
	t.Helper()
	g := c.Metrics().Gauge(metrics.NFSClientInflight)
	deadline := time.Now().Add(5 * time.Second)
	for g.Value() != want {
		if time.Now().After(deadline) {
			t.Fatalf("inflight gauge stuck at %d, want %d", g.Value(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPipelineDisconnectFailsAllInflight parks a full batch of
// non-idempotent requests in the pipeline and severs the connection: every
// tag must resolve with ErrDisconnected exactly once (each waiter gets one
// outcome; a double delivery would wedge the demux on the size-1 future
// channel) and every window slot must come back.
func TestPipelineDisconnectFailsAllInflight(t *testing.T) {
	ds := startDiscardServer(t)
	c, err := Dial(ds.ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const K = 16
	errCh := make(chan error, K)
	for i := 0; i < K; i++ {
		go func(i int) {
			errCh <- c.Append(fmt.Sprintf("f%d.log", i), []byte("x"))
		}(i)
	}
	waitInflight(t, c, K)
	ds.dropConns()

	for i := 0; i < K; i++ {
		select {
		case err := <-errCh:
			if !errors.Is(err, ErrDisconnected) {
				t.Fatalf("in-flight append resolved with %v, want ErrDisconnected", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("in-flight append %d never resolved after disconnect", i)
		}
	}
	// Exactly K outcomes: window fully drained, no stragglers.
	waitInflight(t, c, 0)
	select {
	case err := <-errCh:
		t.Fatalf("extra outcome delivered after all %d tags resolved: %v", K, err)
	default:
	}
}

// TestIdempotentReplayAfterDisconnect parks an idempotent read on a
// black-hole server, severs the link, and expects the client to replay it
// transparently over the redial target — a real server holding the file.
func TestIdempotentReplayAfterDisconnect(t *testing.T) {
	root := t.TempDir()
	srv := NewServer(root)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { ln.Close(); srv.Shutdown() })
	payload := bytes.Repeat([]byte("replay"), 200)
	if err := os.WriteFile(filepath.Join(root, "data.bin"), payload, 0o644); err != nil {
		t.Fatal(err)
	}

	ds := startDiscardServer(t)
	c, err := Dial(ds.ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetRedial(func() (net.Conn, error) {
		return net.DialTimeout("tcp", ln.Addr().String(), 5*time.Second)
	})

	buf := make([]byte, 600)
	var n int
	var rerr error
	done := make(chan struct{})
	go func() {
		n, rerr = c.ReadAt("data.bin", buf, 0)
		close(done)
	}()
	waitInflight(t, c, 1)
	ds.dropConns()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("replayed read never resolved")
	}
	if rerr != nil {
		t.Fatalf("idempotent read not replayed across disconnect: %v", rerr)
	}
	if n != len(buf) || !bytes.Equal(buf, payload[:len(buf)]) {
		t.Fatalf("replayed read returned %d bytes with wrong content", n)
	}
	if got := c.Metrics().Counter(metrics.NFSClientReplays).Value(); got < 1 {
		t.Fatalf("replays counter = %d, want >= 1", got)
	}
	if c.Reconnects() < 1 {
		t.Fatalf("reconnects = %d, want >= 1", c.Reconnects())
	}
}

// TestNonIdempotentNotReplayed parks an Append (not safe to replay: it may
// have executed server-side) on a black-hole server with a healthy redial
// target available. The disconnect must surface ErrDisconnected to the
// caller rather than silently re-executing — and the client must still
// recover for the next operation.
func TestNonIdempotentNotReplayed(t *testing.T) {
	root := t.TempDir()
	srv := NewServer(root)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { ln.Close(); srv.Shutdown() })

	ds := startDiscardServer(t)
	c, err := Dial(ds.ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetRedial(func() (net.Conn, error) {
		return net.DialTimeout("tcp", ln.Addr().String(), 5*time.Second)
	})

	var aerr error
	done := make(chan struct{})
	go func() {
		aerr = c.Append("once.log", []byte("must not duplicate"))
		close(done)
	}()
	waitInflight(t, c, 1)
	ds.dropConns()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight append never resolved")
	}
	if !errors.Is(aerr, ErrDisconnected) {
		t.Fatalf("non-idempotent append resolved with %v, want ErrDisconnected", aerr)
	}
	if got := c.Metrics().Counter(metrics.NFSClientReplays).Value(); got != 0 {
		t.Fatalf("replays counter = %d for a non-idempotent op, want 0", got)
	}
	// The pipeline recovers: the next call redials the healthy server.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after reconnect: %v", err)
	}
}

// TestConcurrentPoolUsersSeeCorrectResponses drives many concurrent mixed
// readers through one pipelined connection and checks every response lands
// with its own request (tag demux, not arrival order).
func TestPipelineDemuxMatchesTags(t *testing.T) {
	c, root := startServer(t)
	const files = 8
	for i := 0; i < files; i++ {
		content := bytes.Repeat([]byte{byte('a' + i)}, 1000+i)
		if err := os.WriteFile(filepath.Join(root, fmt.Sprintf("t%d.dat", i)), content, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, files*8)
	for round := 0; round < 8; round++ {
		for i := 0; i < files; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				want := bytes.Repeat([]byte{byte('a' + i)}, 1000+i)
				got, err := c.ReadFile(fmt.Sprintf("t%d.dat", i))
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, want) {
					errs <- fmt.Errorf("t%d.dat: got %d bytes of %q, want %d of %q",
						i, len(got), got[:1], len(want), want[:1])
				}
			}(i)
		}
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}
