package nfs

import (
	"errors"
	"net"
	"testing"
	"time"

	"mcsd/internal/smartfam"
)

// waitEvent receives one event from a watch stream with a deadline.
func waitEvent(t *testing.T, st smartfam.WatchStream) (smartfam.WatchEvent, bool) {
	t.Helper()
	select {
	case ev, ok := <-st.Events():
		return ev, ok
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for a watch event")
		return smartfam.WatchEvent{}, false
	}
}

// TestWatchPushNotify pins the tentpole wire behaviour: a registered watch
// stream receives a notify frame for every matching mutation, with the
// change generation advancing monotonically.
func TestWatchPushNotify(t *testing.T) {
	c, _ := startServer(t)
	st, err := c.Watch("wc")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if err := c.Append("wc.log", []byte("one")); err != nil {
		t.Fatal(err)
	}
	ev, ok := waitEvent(t, st)
	if !ok {
		t.Fatal("stream closed unexpectedly")
	}
	if ev.Name != "wc.log" || ev.Gen == 0 {
		t.Fatalf("event = %+v, want wc.log with nonzero gen", ev)
	}
	first := ev.Gen

	if err := c.Append("wc.log", []byte("two")); err != nil {
		t.Fatal(err)
	}
	ev, _ = waitEvent(t, st)
	if ev.Gen <= first {
		t.Fatalf("gen did not advance: %d then %d", first, ev.Gen)
	}

	// A non-matching prefix must not reach this stream; a matching one on a
	// second local stream must (both share the one server registration).
	other, err := c.Watch("data")
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if err := c.Append("data.bin", []byte("x")); err != nil {
		t.Fatal(err)
	}
	ev, _ = waitEvent(t, other)
	if ev.Name != "data.bin" {
		t.Fatalf("other stream got %+v, want data.bin", ev)
	}
	select {
	case ev := <-st.Events():
		t.Fatalf("prefix-filtered stream leaked %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestWatchStreamClosesOnDisconnect pins the degraded-mode trigger: when
// the connection dies, every local stream's channel closes so consumers
// fall back to polling.
func TestWatchStreamClosesOnDisconnect(t *testing.T) {
	root := t.TempDir()
	srv := NewServer(root)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	defer func() {
		ln.Close()
		srv.Shutdown()
	}()
	c, err := Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	st, err := c.Watch("")
	if err != nil {
		t.Fatal(err)
	}
	srv.Shutdown()
	select {
	case _, ok := <-st.Events():
		if ok {
			// Drain any event raced in before the close.
			for range st.Events() { //nolint:revive
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not close after server shutdown")
	}
}

// TestWatchGobUnsupported pins the fallback matrix's legacy row: a WireGob
// client refuses Watch locally with ErrWatchUnsupported.
func TestWatchGobUnsupported(t *testing.T) {
	c, _ := startServer(t)
	c.SetWire(WireGob)
	if _, err := c.Watch(""); !errors.Is(err, ErrWatchUnsupported) {
		t.Fatalf("gob Watch error = %v, want ErrWatchUnsupported", err)
	}
}

// TestStatGen pins the ABA counter: a rewrite that restores a file's exact
// size still advances the change generation OpStat reports.
func TestStatGen(t *testing.T) {
	c, _ := startServer(t)
	if err := c.WriteFile("f.log", []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	size1, _, gen1, err := c.StatGen("f.log")
	if err != nil {
		t.Fatal(err)
	}
	if gen1 == 0 {
		t.Fatal("gen after first write = 0, want > 0")
	}
	if err := c.WriteFile("f.log", []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	size2, _, gen2, err := c.StatGen("f.log")
	if err != nil {
		t.Fatal(err)
	}
	if size2 != size1 {
		t.Fatalf("sizes differ (%d vs %d); rewrite should preserve size", size1, size2)
	}
	if gen2 <= gen1 {
		t.Fatalf("gen did not advance across same-size rewrite: %d then %d", gen1, gen2)
	}
}

// TestWatchSkipsStagingTemps pins that multi-chunk staged appends notify
// once for the committed target, never for the invisible staging temp.
func TestWatchSkipsStagingTemps(t *testing.T) {
	c, _ := startServer(t)
	st, err := c.Watch("")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	big := make([]byte, MaxChunk+1024) // forces stage + commit
	if err := c.Append("big.log", big); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev, ok := <-st.Events():
			if !ok {
				t.Fatal("stream closed")
			}
			if ev.Name == "big.log" {
				return // the commit's notify; temps never surfaced
			}
			t.Fatalf("unexpected notify for %q", ev.Name)
		case <-deadline:
			t.Fatal("no notify for the committed append")
		}
	}
}
