package nfs

import (
	"container/list"
	"errors"
	"fmt"
	"io"
	"time"

	"sync"

	"mcsd/internal/metrics"
	"mcsd/internal/smartfam"
)

// DefaultCacheBytes is the default block-cache capacity.
const DefaultCacheBytes = 64 << 20

// Transport is the client surface the block cache fronts: the full
// smartfam.FS plus the whole-file and streaming helpers. *Client, *Pool
// and *CachedFS itself all satisfy it.
type Transport interface {
	smartfam.FS
	Ping() error
	ListDir(dir string) ([]string, error)
	WriteFile(name string, data []byte) error
	ReadFile(name string) ([]byte, error)
	OpenReader(name string) (io.ReadCloser, error)
	OpenReaderAt(name string, off int64) (io.ReadCloser, error)
	CopyTo(w io.Writer, name string) (int64, error)
}

var (
	_ Transport = (*Client)(nil)
	_ Transport = (*Pool)(nil)
	_ Transport = (*CachedFS)(nil)
)

// version is the freshness token for a file's cached blocks: blocks are
// valid only while the remote Stat reports the same size and mtime.
type version struct {
	size    int64
	mtimeNs int64
}

// blockKey addresses one MaxChunk-aligned block of one file.
type blockKey struct {
	name  string
	chunk int64
}

type block struct {
	key  blockKey
	data []byte
}

type fileEntry struct {
	ver    version
	blocks map[int64]*list.Element
}

// cacheCounters caches the hot-path metric handles.
type cacheCounters struct {
	hits          *metrics.Counter
	misses        *metrics.Counter
	invalidations *metrics.Counter
	evictions     *metrics.Counter
	bytesSaved    *metrics.Counter
}

// BlockCache is a host-side LRU cache of MaxChunk-aligned file blocks,
// keyed (name, chunk index) and validated by the file's remote size+mtime.
// It holds the bytes that would otherwise re-cross the 1 GbE share on
// every re-read — the exact traffic the paper's host-only baseline drowns
// in. Safe for concurrent use.
type BlockCache struct {
	mu    sync.Mutex
	cap   int64
	used  int64
	lru   *list.List // front = most recently used
	files map[string]*fileEntry

	reg *metrics.Registry
	met cacheCounters
}

// NewBlockCache returns a cache bounded to capacity bytes (<= 0 selects
// DefaultCacheBytes) reporting into reg (nil creates a private registry).
func NewBlockCache(capacity int64, reg *metrics.Registry) *BlockCache {
	if capacity <= 0 {
		capacity = DefaultCacheBytes
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &BlockCache{
		cap:   capacity,
		lru:   list.New(),
		files: make(map[string]*fileEntry),
		reg:   reg,
		met: cacheCounters{
			hits:          reg.Counter(metrics.NFSCacheHits),
			misses:        reg.Counter(metrics.NFSCacheMisses),
			invalidations: reg.Counter(metrics.NFSCacheInvalidations),
			evictions:     reg.Counter(metrics.NFSCacheEvictions),
			bytesSaved:    reg.Counter(metrics.NFSCacheBytesSaved),
		},
	}
}

// Metrics returns the registry the cache reports into.
func (bc *BlockCache) Metrics() *metrics.Registry { return bc.reg }

// Used returns the bytes currently cached.
func (bc *BlockCache) Used() int64 {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	return bc.used
}

// Blocks returns the number of cached blocks.
func (bc *BlockCache) Blocks() int {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	return bc.lru.Len()
}

// get returns the cached block if present and still valid for ver. A
// version mismatch drops every block of the file (the remote changed under
// us).
func (bc *BlockCache) get(name string, chunk int64, ver version) ([]byte, bool) {
	bc.mu.Lock()
	fe := bc.files[name]
	if fe != nil && fe.ver != ver {
		bc.invalidateLocked(name, fe)
		fe = nil
	}
	if fe != nil {
		if el, ok := fe.blocks[chunk]; ok {
			bc.lru.MoveToFront(el)
			data := el.Value.(*block).data
			bc.mu.Unlock()
			bc.met.hits.Inc()
			return data, true
		}
	}
	bc.mu.Unlock()
	bc.met.misses.Inc()
	return nil, false
}

// put inserts (or refreshes) a block fetched at version ver, evicting LRU
// blocks to stay within capacity. data ownership passes to the cache.
func (bc *BlockCache) put(name string, chunk int64, ver version, data []byte) {
	if int64(len(data)) > bc.cap {
		return
	}
	bc.mu.Lock()
	defer bc.mu.Unlock()
	fe := bc.files[name]
	if fe != nil && fe.ver != ver {
		bc.invalidateLocked(name, fe)
		fe = nil
	}
	if fe == nil {
		fe = &fileEntry{ver: ver, blocks: make(map[int64]*list.Element)}
		bc.files[name] = fe
	}
	if el, ok := fe.blocks[chunk]; ok {
		b := el.Value.(*block)
		bc.used += int64(len(data)) - int64(len(b.data))
		b.data = data
		bc.lru.MoveToFront(el)
		return
	}
	for bc.used+int64(len(data)) > bc.cap {
		bc.evictLocked()
	}
	el := bc.lru.PushFront(&block{key: blockKey{name: name, chunk: chunk}, data: data})
	fe.blocks[chunk] = el
	bc.used += int64(len(data))
}

// evictLocked drops the least recently used block. Caller holds bc.mu.
func (bc *BlockCache) evictLocked() {
	el := bc.lru.Back()
	if el == nil {
		return
	}
	b := el.Value.(*block)
	bc.lru.Remove(el)
	bc.used -= int64(len(b.data))
	if fe := bc.files[b.key.name]; fe != nil {
		delete(fe.blocks, b.key.chunk)
		if len(fe.blocks) == 0 {
			delete(bc.files, b.key.name)
		}
	}
	bc.met.evictions.Inc()
}

// invalidateLocked drops every block of name. Caller holds bc.mu.
func (bc *BlockCache) invalidateLocked(name string, fe *fileEntry) {
	for _, el := range fe.blocks {
		b := el.Value.(*block)
		bc.lru.Remove(el)
		bc.used -= int64(len(b.data))
		bc.met.invalidations.Inc()
	}
	delete(bc.files, name)
}

// InvalidateFile drops every cached block of name.
func (bc *BlockCache) InvalidateFile(name string) {
	bc.mu.Lock()
	if fe := bc.files[name]; fe != nil {
		bc.invalidateLocked(name, fe)
	}
	bc.mu.Unlock()
}

// CachedFS fronts a Transport with a BlockCache: reads are served from
// validated local blocks (one Stat RPC — zero payload bytes — replaces the
// data transfer on a warm hit), and every local mutation invalidates the
// file's blocks so the host never reads its own writes stale. It
// implements smartfam.FS, so it slots directly into core.Runtime.AttachSD
// and the smartFAM client's result reads.
//
// Consistency: validation is by Stat size+mtime, so a remote writer whose
// change lands within the filesystem's mtime granularity AND keeps the
// size identical can go unnoticed; the share's writers (smartFAM daemon,
// this host) only ever append or replace, which changes the size.
type CachedFS struct {
	t     Transport
	cache *BlockCache
}

// NewCachedFS fronts t with cache (nil creates a DefaultCacheBytes cache).
func NewCachedFS(t Transport, cache *BlockCache) *CachedFS {
	if cache == nil {
		cache = NewBlockCache(0, nil)
	}
	return &CachedFS{t: t, cache: cache}
}

// Cache returns the underlying block cache.
func (c *CachedFS) Cache() *BlockCache { return c.cache }

// Ping implements Transport.
func (c *CachedFS) Ping() error { return c.t.Ping() }

// Stat implements smartfam.FS (pass-through: stats are never cached, they
// are the validation signal).
func (c *CachedFS) Stat(name string) (int64, time.Time, error) { return c.t.Stat(name) }

// List implements smartfam.FS.
func (c *CachedFS) List() ([]string, error) { return c.t.List() }

// ListDir implements Transport.
func (c *CachedFS) ListDir(dir string) ([]string, error) { return c.t.ListDir(dir) }

// Create implements smartfam.FS, invalidating the file's blocks.
func (c *CachedFS) Create(name string) error {
	err := c.t.Create(name)
	c.cache.InvalidateFile(name)
	return err
}

// Append implements smartfam.FS, invalidating the file's blocks (even on
// error: a disconnect mid-append leaves the remote state uncertain).
func (c *CachedFS) Append(name string, data []byte) error {
	err := c.t.Append(name, data)
	c.cache.InvalidateFile(name)
	return err
}

// Remove implements smartfam.FS, invalidating the file's blocks.
func (c *CachedFS) Remove(name string) error {
	err := c.t.Remove(name)
	c.cache.InvalidateFile(name)
	return err
}

// Rename implements smartfam.FS, invalidating both names.
func (c *CachedFS) Rename(oldname, newname string) error {
	err := c.t.Rename(oldname, newname)
	c.cache.InvalidateFile(oldname)
	c.cache.InvalidateFile(newname)
	return err
}

// WriteFile implements Transport, invalidating the file's blocks.
func (c *CachedFS) WriteFile(name string, data []byte) error {
	err := c.t.WriteFile(name, data)
	c.cache.InvalidateFile(name)
	return err
}

// ReadAt implements smartfam.FS. One Stat validates the file's cached
// blocks; the read is then assembled from warm blocks locally, with any
// missing span fetched in a single pipelined transfer and cached
// block-by-block.
func (c *CachedFS) ReadAt(name string, p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	size, mtime, err := c.t.Stat(name)
	if err != nil {
		return 0, err
	}
	ver := version{size: size, mtimeNs: mtime.UnixNano()}
	return c.readAtVersioned(name, p, off, ver)
}

func (c *CachedFS) readAtVersioned(name string, p []byte, off int64, ver version) (int, error) {
	size := ver.size
	if off >= size {
		return 0, io.EOF
	}
	serveLen := int64(len(p))
	if avail := size - off; serveLen > avail {
		serveLen = avail
	}
	firstChunk := off / MaxChunk
	lastChunk := (off + serveLen - 1) / MaxChunk

	blocks := make(map[int64][]byte, lastChunk-firstChunk+1)
	hit := make(map[int64]bool, lastChunk-firstChunk+1)
	missFirst, missLast := int64(-1), int64(-1)
	for ci := firstChunk; ci <= lastChunk; ci++ {
		if b, ok := c.cache.get(name, ci, ver); ok {
			blocks[ci] = b
			hit[ci] = true
			continue
		}
		if missFirst < 0 {
			missFirst = ci
		}
		missLast = ci
	}
	if missFirst >= 0 {
		// One pipelined transfer covers the whole missing span (it may
		// refetch a warm block sandwiched between two cold ones — the RTT
		// saved by a single windowed transfer outweighs the refetch).
		start := missFirst * MaxChunk
		end := (missLast + 1) * MaxChunk
		if end > size {
			end = size
		}
		buf := make([]byte, end-start)
		n, err := c.t.ReadAt(name, buf, start)
		if err != nil && !errors.Is(err, io.EOF) {
			return 0, err
		}
		for ci := missFirst; ci <= missLast; ci++ {
			bs := ci*MaxChunk - start
			if bs >= int64(n) {
				break
			}
			be := bs + MaxChunk
			if be > int64(n) {
				be = int64(n)
			}
			blk := make([]byte, be-bs)
			copy(blk, buf[bs:be])
			blocks[ci] = blk
			c.cache.put(name, ci, ver, blk)
		}
	}

	served := int64(0)
	for served < serveLen {
		pos := off + served
		ci := pos / MaxChunk
		b := blocks[ci]
		bs := pos - ci*MaxChunk
		if bs >= int64(len(b)) {
			break // file shrank between Stat and fetch
		}
		n := copy(p[served:serveLen], b[bs:])
		if hit[ci] {
			c.cache.met.bytesSaved.Add(int64(n))
		}
		served += int64(n)
	}
	if served < int64(len(p)) {
		return int(served), io.EOF
	}
	return int(served), nil
}

// ReadFile implements Transport through the cache.
func (c *CachedFS) ReadFile(name string) ([]byte, error) {
	size, mtime, err := c.t.Stat(name)
	if err != nil {
		return nil, err
	}
	ver := version{size: size, mtimeNs: mtime.UnixNano()}
	buf := make([]byte, size)
	n, err := c.readAtVersioned(name, buf, 0, ver)
	if err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	return buf[:n], nil
}

// OpenReader implements Transport through the cache.
func (c *CachedFS) OpenReader(name string) (io.ReadCloser, error) {
	return c.OpenReaderAt(name, 0)
}

// OpenReaderAt returns a streaming reader that serves warm blocks locally
// and streams cold spans from the wire (with the transport's read-ahead),
// caching them as it goes. The stream length is the open-time size.
func (c *CachedFS) OpenReaderAt(name string, off int64) (io.ReadCloser, error) {
	size, mtime, err := c.t.Stat(name)
	if err != nil {
		return nil, err
	}
	return &cachedReader{
		c:    c,
		name: name,
		pos:  off,
		size: size,
		ver:  version{size: size, mtimeNs: mtime.UnixNano()},
	}, nil
}

// CopyTo implements Transport through the cache.
func (c *CachedFS) CopyTo(w io.Writer, name string) (int64, error) {
	r, err := c.OpenReaderAt(name, 0)
	if err != nil {
		return 0, err
	}
	defer r.Close()
	return io.Copy(w, r)
}

// cachedReader streams a file at block granularity: warm blocks come from
// the cache, cold runs come from one wire stream kept open across
// consecutive cold blocks so the transport's read-ahead stays effective.
type cachedReader struct {
	c        *CachedFS
	name     string
	pos      int64
	size     int64
	ver      version
	inner    io.ReadCloser // wire stream, positioned at innerPos
	innerPos int64
	closed   bool
}

func (r *cachedReader) Read(p []byte) (int, error) {
	if r.closed {
		return 0, fmt.Errorf("nfs: read from closed reader for %s", r.name)
	}
	if len(p) == 0 {
		return 0, nil
	}
	if r.pos >= r.size {
		return 0, io.EOF
	}
	ci := r.pos / MaxChunk
	bs := ci * MaxChunk
	blockLen := r.size - bs
	if blockLen > MaxChunk {
		blockLen = MaxChunk
	}
	if b, ok := r.c.cache.get(r.name, ci, r.ver); ok && int64(len(b)) == blockLen {
		// Warm: the wire stream (if any) is now mispositioned; drop it.
		if r.inner != nil {
			r.inner.Close()
			r.inner = nil
		}
		n := copy(p, b[r.pos-bs:])
		r.c.cache.met.bytesSaved.Add(int64(n))
		r.pos += int64(n)
		return n, nil
	}
	if r.inner == nil || r.innerPos != bs {
		if r.inner != nil {
			r.inner.Close()
		}
		in, err := r.c.t.OpenReaderAt(r.name, bs)
		if err != nil {
			return 0, err
		}
		r.inner = in
		r.innerPos = bs
	}
	buf := make([]byte, blockLen)
	if _, err := io.ReadFull(r.inner, buf); err != nil {
		r.inner.Close()
		r.inner = nil
		return 0, fmt.Errorf("nfs: streaming %s block %d: %w", r.name, ci, err)
	}
	r.innerPos = bs + blockLen
	r.c.cache.put(r.name, ci, r.ver, buf)
	n := copy(p, buf[r.pos-bs:])
	r.pos += int64(n)
	return n, nil
}

func (r *cachedReader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.inner != nil {
		err := r.inner.Close()
		r.inner = nil
		return err
	}
	return nil
}

var _ smartfam.FS = (*CachedFS)(nil)
