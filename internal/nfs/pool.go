package nfs

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"mcsd/internal/metrics"
	"mcsd/internal/netsim"
	"mcsd/internal/smartfam"
)

// Pool multiplexes share operations over several connections to one
// server. A single Client serializes RPCs on its one connection (an NFS
// mount with one slot); a Pool gives concurrent module invocations,
// watcher polls and bulk transfers independent slots, the way a real NFS
// client runs many RPC slots per mount.
//
// Pool implements the same surface as Client (including smartfam.FS) by
// delegating each call round-robin.
type Pool struct {
	clients []*Client
	next    atomic.Uint64
	reg     *metrics.Registry // shared across all pooled clients
}

// DialPool opens n connections to addr. n < 1 is raised to 1.
func DialPool(addr string, timeout time.Duration, n int) (*Pool, error) {
	return dialPool(n, func() (*Client, error) { return Dial(addr, timeout) })
}

// DialPoolThrottled opens n connections through a shared modelled link, so
// the pool's combined traffic still honours the link's bandwidth.
func DialPoolThrottled(ctx context.Context, addr string, timeout time.Duration, n int, link *netsim.Link) (*Pool, error) {
	return dialPool(n, func() (*Client, error) { return DialThrottled(ctx, addr, timeout, link) })
}

func dialPool(n int, dial func() (*Client, error)) (*Pool, error) {
	if n < 1 {
		n = 1
	}
	p := &Pool{clients: make([]*Client, 0, n), reg: metrics.NewRegistry()}
	for i := 0; i < n; i++ {
		c, err := dial()
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("nfs: pool connection %d: %w", i, err)
		}
		c.SetMetrics(p.reg)
		p.clients = append(p.clients, c)
	}
	return p, nil
}

// NewPool wraps already-established connections.
func NewPool(conns []net.Conn) *Pool {
	p := &Pool{clients: make([]*Client, len(conns)), reg: metrics.NewRegistry()}
	for i, c := range conns {
		p.clients[i] = NewClient(c)
		p.clients[i].SetMetrics(p.reg)
	}
	return p
}

// Metrics returns the registry shared by every pooled client.
func (p *Pool) Metrics() *metrics.Registry { return p.reg }

// SetWire selects the wire encoding on every pooled connection. Must be
// called before the first operation.
func (p *Pool) SetWire(w Wire) {
	for _, c := range p.clients {
		c.SetWire(w)
	}
}

// Size reports the number of pooled connections.
func (p *Pool) Size() int { return len(p.clients) }

// Close tears down every connection; the first error wins.
func (p *Pool) Close() error {
	var first error
	for _, c := range p.clients {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (p *Pool) pick() *Client {
	return p.clients[p.next.Add(1)%uint64(len(p.clients))]
}

// Create implements smartfam.FS.
func (p *Pool) Create(name string) error { return p.pick().Create(name) }

// Append implements smartfam.FS.
func (p *Pool) Append(name string, data []byte) error { return p.pick().Append(name, data) }

// ReadAt implements smartfam.FS.
func (p *Pool) ReadAt(name string, b []byte, off int64) (int, error) {
	return p.pick().ReadAt(name, b, off)
}

// Stat implements smartfam.FS.
func (p *Pool) Stat(name string) (int64, time.Time, error) { return p.pick().Stat(name) }

// StatGen implements smartfam.GenStat through one slot.
func (p *Pool) StatGen(name string) (int64, time.Time, uint64, error) {
	return p.pick().StatGen(name)
}

// Watch implements smartfam.WatchFS. The stream is pinned to the pool's
// first connection (notifications need one stable demux; round-robin would
// scatter the registration).
func (p *Pool) Watch(prefix string) (smartfam.WatchStream, error) {
	return p.clients[0].Watch(prefix)
}

// ChunkSum delegates server-side checksumming to one pooled connection.
func (p *Pool) ChunkSum(name string, off int64, n int) (uint32, int, error) {
	return p.pick().ChunkSum(name, off, n)
}

// List implements smartfam.FS.
func (p *Pool) List() ([]string, error) { return p.pick().List() }

// ListDir lists a subdirectory of the share through one slot.
func (p *Pool) ListDir(dir string) ([]string, error) { return p.pick().ListDir(dir) }

// Remove implements smartfam.FS.
func (p *Pool) Remove(name string) error { return p.pick().Remove(name) }

// Rename implements smartfam.FS.
func (p *Pool) Rename(oldname, newname string) error { return p.pick().Rename(oldname, newname) }

// Ping verifies every pooled connection.
func (p *Pool) Ping() error {
	for i, c := range p.clients {
		if err := c.Ping(); err != nil {
			return fmt.Errorf("nfs: pool connection %d: %w", i, err)
		}
	}
	return nil
}

// WriteFile stages a whole file through one slot.
func (p *Pool) WriteFile(name string, data []byte) error { return p.pick().WriteFile(name, data) }

// ReadFile fetches a whole file through one slot.
func (p *Pool) ReadFile(name string) ([]byte, error) { return p.pick().ReadFile(name) }

// OpenReader streams a remote file through one slot.
func (p *Pool) OpenReader(name string) (io.ReadCloser, error) { return p.pick().OpenReader(name) }

// OpenReaderAt streams a remote file from off through one slot.
func (p *Pool) OpenReaderAt(name string, off int64) (io.ReadCloser, error) {
	return p.pick().OpenReaderAt(name, off)
}

// CopyTo streams a whole remote file into w through one slot.
func (p *Pool) CopyTo(w io.Writer, name string) (int64, error) { return p.pick().CopyTo(w, name) }

var (
	_ smartfam.FS      = (*Pool)(nil)
	_ smartfam.WatchFS = (*Pool)(nil)
	_ smartfam.GenStat = (*Pool)(nil)
)
