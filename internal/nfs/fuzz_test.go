package nfs

import (
	"bufio"
	"bytes"
	"io"
	"testing"
)

// frameBytes renders frames through the real encoder so fuzz seeds start
// from well-formed wire images.
func frameBytes(t interface{ Fatal(...any) }, write func(e *frameEncoder) error) []byte {
	var buf bytes.Buffer
	if err := write(newFrameEncoder(&buf)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzFrameDecode throws arbitrary byte streams at both ends of the binary
// framing — the server's scratch-buffer request decoder and the client's
// pooled response decoder. Truncated, oversized and bit-flipped frames must
// surface as errors, never panics, out-of-bounds slices or hangs.
func FuzzFrameDecode(f *testing.F) {
	req := frameBytes(f, func(e *frameEncoder) error {
		return e.writeRequest(&Request{Tag: 7, Op: OpReadAt, Name: "dir/file.txt", Off: 42, N: 1 << 16})
	})
	resp := frameBytes(f, func(e *frameEncoder) error {
		return e.writeResponse(&Response{Tag: 7, Size: 9, MTimeNs: 123456789, Data: []byte("payload"), EOF: true})
	})
	listResp := frameBytes(f, func(e *frameEncoder) error {
		return e.writeResponse(&Response{Tag: 1, Names: []string{"a", "bb", "ccc"}})
	})
	errResp := frameBytes(f, func(e *frameEncoder) error {
		return e.writeResponse(&Response{Tag: 2, Err: "nfs: boom", NotExist: true})
	})
	commitReq := frameBytes(f, func(e *frameEncoder) error {
		return e.writeRequest(&Request{Tag: 9, Op: OpCommit, Name: "x.append-1.tmp", To: "x.log", N: CommitAppend})
	})
	notifyResp := frameBytes(f, func(e *frameEncoder) error {
		return e.writeResponse(&Response{Tag: NotifyTag, Names: []string{"wc.log"}, Gen: 12345})
	})
	watchReq := frameBytes(f, func(e *frameEncoder) error {
		return e.writeRequest(&Request{Tag: 11, Op: OpWatch, Name: "prefix-"})
	})
	f.Add(notifyResp)
	f.Add(watchReq)
	f.Add(req)
	f.Add(resp)
	f.Add(listResp)
	f.Add(errResp)
	f.Add(commitReq)
	f.Add(append(append([]byte{}, req...), resp...)) // back-to-back frames
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00})                         // truncated length prefix
	f.Add([]byte{0x00, 0x00, 0x00, 0x08, 0x01, 0x02}) // truncated body
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x00})       // oversized length
	flipped := append([]byte{}, req...)
	flipped[len(flipped)/2] ^= 0x80
	f.Add(flipped)
	truncatedNames := append([]byte{}, listResp...)
	f.Add(truncatedNames[:len(truncatedNames)-2])

	f.Fuzz(func(t *testing.T, data []byte) {
		// Server side: scratch-buffer decoding, several frames per stream.
		sc := newBinServerCodec(bufio.NewReader(bytes.NewReader(data)), io.Discard)
		for i := 0; i < 8; i++ {
			var rq Request
			if err := sc.readRequest(&rq); err != nil {
				break
			}
			// A frame that decodes must re-encode without panicking.
			var buf bytes.Buffer
			if err := newFrameEncoder(&buf).writeRequest(&rq); err != nil {
				t.Fatalf("re-encoding decoded request: %v", err)
			}
		}
		// Client side: pooled decoding; every successfully decoded response
		// owns a pooled frame that must be released exactly once.
		cc := newBinClientCodec(bytes.NewReader(data), io.Discard)
		for i := 0; i < 8; i++ {
			var rs Response
			if err := cc.readResponse(&rs); err != nil {
				break
			}
			var buf bytes.Buffer
			if err := newFrameEncoder(&buf).writeResponse(&rs); err != nil {
				t.Fatalf("re-encoding decoded response: %v", err)
			}
			rs.free()
		}
	})
}

// TestFrameRoundTrip pins the encode/decode pair on representative
// requests and responses, including zero-copy payload tails.
func TestFrameRoundTrip(t *testing.T) {
	reqs := []*Request{
		{Op: OpPing, Tag: 1},
		{Op: OpAppend, Tag: 2, Name: "a.log", Data: bytes.Repeat([]byte{0xAB}, 3000)},
		{Op: OpReadAt, Tag: 3, Name: "b.dat", Off: 1 << 40, N: MaxChunk},
		{Op: OpRename, Tag: 4, Name: "old", To: "new"},
		{Op: OpCommit, Tag: 5, Name: "t.append-9.tmp", To: "t", N: CommitReplace},
		{Op: OpWatch, Tag: 6, Name: "logs-"},
	}
	var buf bytes.Buffer
	enc := newFrameEncoder(&buf)
	for _, r := range reqs {
		if err := enc.writeRequest(r); err != nil {
			t.Fatal(err)
		}
	}
	dec := newFrameDecoder(bufio.NewReader(&buf), false)
	for _, want := range reqs {
		body, _, err := dec.readFrame()
		if err != nil {
			t.Fatal(err)
		}
		var got Request
		if err := decodeRequest(body, &got); err != nil {
			t.Fatal(err)
		}
		if got.Tag != want.Tag || got.Op != want.Op || got.Name != want.Name ||
			got.To != want.To || got.Off != want.Off || got.N != want.N ||
			!bytes.Equal(got.Data, want.Data) {
			t.Fatalf("request round trip mismatch: got %+v want %+v", got, want)
		}
	}

	resps := []*Response{
		{Tag: 1},
		{Tag: 2, Data: bytes.Repeat([]byte{0xCD}, 5000), EOF: true},
		{Tag: 3, Size: 1 << 50, MTimeNs: -1},
		{Tag: 4, Names: []string{"x", "", "long-name-with-unicode-✓"}},
		{Tag: 5, Err: "nfs: nope", NotExist: true},
		{Tag: 6, Size: 99, MTimeNs: 7, Gen: 1<<63 + 5},
		{Tag: NotifyTag, Names: []string{"wc.log"}, Gen: 42},
	}
	buf.Reset()
	for _, r := range resps {
		if err := enc.writeResponse(r); err != nil {
			t.Fatal(err)
		}
	}
	dec = newFrameDecoder(bufio.NewReader(&buf), true)
	for _, want := range resps {
		body, fb, err := dec.readFrame()
		if err != nil {
			t.Fatal(err)
		}
		var got Response
		if err := decodeResponse(body, &got); err != nil {
			t.Fatal(err)
		}
		got.frame = fb
		if got.Tag != want.Tag || got.Size != want.Size || got.MTimeNs != want.MTimeNs ||
			got.Gen != want.Gen || got.Err != want.Err || got.NotExist != want.NotExist ||
			got.EOF != want.EOF || !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("response round trip mismatch: got %+v want %+v", got, want)
		}
		if len(got.Names) != len(want.Names) {
			t.Fatalf("names round trip mismatch: got %v want %v", got.Names, want.Names)
		}
		for i := range want.Names {
			if got.Names[i] != want.Names[i] {
				t.Fatalf("names[%d]: got %q want %q", i, got.Names[i], want.Names[i])
			}
		}
		got.free()
	}
}
