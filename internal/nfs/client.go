package nfs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"mcsd/internal/metrics"
	"mcsd/internal/netsim"
	"mcsd/internal/smartfam"
)

// ErrDisconnected marks an RPC that failed because the connection to the
// server dropped (or could not yet be re-established). It is retryable:
// the in-flight call is lost, but the next call transparently redials when
// the client knows how to (Dial/DialThrottled install a redial function;
// NewClient over a raw conn does not).
var ErrDisconnected = errors.New("nfs: connection lost")

// Redial backoff defaults: a dead server is retried at most once per
// window, with the window doubling up to the cap.
const (
	defaultRedialInitial = 50 * time.Millisecond
	defaultRedialMax     = 2 * time.Second
)

// DefaultWindow is the default pipeline depth: how many tagged requests a
// client keeps in flight on its one connection before a send blocks. Sized
// so a MaxChunk-sized window comfortably covers a 1 GbE
// bandwidth-delay product with millisecond RTTs.
const DefaultWindow = 32

// readAheadDepth is how many MaxChunk prefetches an OpenReader keeps in
// flight ahead of the consumer.
const readAheadDepth = 8

// maxReplays bounds how many times one idempotent request is replayed
// across reconnects before its failure is surfaced.
const maxReplays = 2

// Client is the host-node side of the share: it implements smartfam.FS so
// the smartFAM client runs unchanged over the network, plus whole-file
// helpers for staging workload data onto (and results off) the SD node.
//
// A Client multiplexes all operations over one connection, mirroring one
// NFS mount, but pipelines them: every request carries a tag, up to
// DefaultWindow requests are on the wire at once, and a demux goroutine
// matches responses back to callers by tag. Chunked helpers (ReadAt,
// Append, OpenReader, CopyTo) issue their chunk RPCs through the window so
// consecutive chunks overlap round trips instead of paying one RTT each.
//
// It is safe for concurrent use. A dropped connection fails every
// in-flight request with ErrDisconnected exactly once; idempotent requests
// (reads, stats, lists, whole-file writes) are transparently replayed
// after a successful redial, mutating ones surface the error so the caller
// can decide (smartFAM retries are safe by request-ID dedupe). Redials are
// rate-limited by an exponential backoff window.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	codec   clientCodec
	closed  bool
	gen     uint64 // connection generation; bumped on every failure
	nextTag uint64
	pending map[uint64]chan outcome
	wire    Wire
	window  chan struct{} // in-flight slots; capacity = pipeline depth

	sendMu sync.Mutex // serializes request frames onto the connection

	watchMu    sync.Mutex // guards the local watch-stream set
	watches    map[*clientWatch]struct{}
	watchArmed bool   // a server-side watch registration is live
	watchGen   uint64 // connection generation it was armed on

	redial      func() (net.Conn, error)
	backoffInit time.Duration
	backoffMax  time.Duration
	backoffCur  time.Duration // 0 = connected / first retry is free
	nextDial    time.Time
	reconnects  int64

	reg *metrics.Registry
	met clientCounters
}

// clientCounters caches the client's hot-path metrics so pipelined sends
// do not take the registry lock per request.
type clientCounters struct {
	inflight    *metrics.Gauge
	stalls      *metrics.Counter
	bytesSent   *metrics.Counter
	bytesRecv   *metrics.Counter
	replays     *metrics.Counter
	watchEvents *metrics.Counter
}

// outcome is the terminal state of one tagged request.
type outcome struct {
	resp *Response
	err  error
	sent bool // the request reached the wire before the failure
}

// Dial connects to an NFS server at addr. The returned client redials the
// same address if the connection later drops.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("nfs: dial %s: %w", addr, err)
	}
	c := NewClient(conn)
	c.redial = func() (net.Conn, error) { return net.DialTimeout("tcp", addr, timeout) }
	return c, nil
}

// DialThrottled connects through a modelled link, so all share traffic pays
// the interconnect's cost (the testbed's 1 GbE switch). Redials go through
// the same link. ctx bounds the link's pacing waits for the connection's
// lifetime (and any redialed successor's).
func DialThrottled(ctx context.Context, addr string, timeout time.Duration, link *netsim.Link) (*Client, error) {
	conn, err := link.DialThrottled(ctx, "tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("nfs: dial %s: %w", addr, err)
	}
	c := NewClient(conn)
	c.redial = func() (net.Conn, error) { return link.DialThrottled(ctx, "tcp", addr, timeout) }
	return c, nil
}

// NewClient wraps an established connection (possibly already throttled).
// Without a redial function (see SetRedial) a dropped connection is
// permanent: every later call fails with ErrDisconnected.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:        conn,
		pending:     make(map[uint64]chan outcome),
		window:      make(chan struct{}, DefaultWindow),
		backoffInit: defaultRedialInitial,
		backoffMax:  defaultRedialMax,
	}
	c.setMetricsLocked(metrics.NewRegistry())
	return c
}

// SetWire selects the wire encoding (binary by default; WireGob speaks the
// legacy codec to a pre-framing server). Must be called before the first
// operation on the client.
func (c *Client) SetWire(w Wire) {
	c.mu.Lock()
	c.wire = w
	c.mu.Unlock()
}

// SetWindow resizes the pipeline window (minimum 1; 1 disables pipelining,
// giving strict serial RPC). Must be called before the first operation on
// the client.
func (c *Client) SetWindow(n int) {
	if n < 1 {
		n = 1
	}
	c.mu.Lock()
	c.window = make(chan struct{}, n)
	c.mu.Unlock()
}

// SetMetrics points the client's counters (inflight depth, pipeline
// stalls, wire bytes, replays) at a shared registry. Must be called before
// the first operation on the client.
func (c *Client) SetMetrics(r *metrics.Registry) {
	c.mu.Lock()
	c.setMetricsLocked(r)
	c.mu.Unlock()
}

func (c *Client) setMetricsLocked(r *metrics.Registry) {
	c.reg = r
	c.met = clientCounters{
		inflight:    r.Gauge(metrics.NFSClientInflight),
		stalls:      r.Counter(metrics.NFSClientPipelineStalls),
		bytesSent:   r.Counter(metrics.NFSClientBytesSent),
		bytesRecv:   r.Counter(metrics.NFSClientBytesRecv),
		replays:     r.Counter(metrics.NFSClientReplays),
		watchEvents: r.Counter(metrics.NFSWatchEvents),
	}
}

// Metrics returns the registry the client reports into.
func (c *Client) Metrics() *metrics.Registry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reg
}

// SetRedial installs (or replaces) the function used to re-establish a
// dropped connection.
func (c *Client) SetRedial(fn func() (net.Conn, error)) {
	c.mu.Lock()
	c.redial = fn
	c.mu.Unlock()
}

// SetRedialBackoff overrides the reconnect backoff window (initial delay
// after a failed redial, doubling up to max). Zero values keep defaults.
func (c *Client) SetRedialBackoff(initial, max time.Duration) {
	c.mu.Lock()
	if initial > 0 {
		c.backoffInit = initial
	}
	if max > 0 {
		c.backoffMax = max
	}
	c.mu.Unlock()
}

// Reconnects reports how many times the client has successfully redialed.
func (c *Client) Reconnects() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reconnects
}

// Close tears down the connection, fails every in-flight request and
// disables redialing.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	var err error
	if c.conn != nil {
		err = c.conn.Close()
		c.conn = nil
	}
	failed := c.failLocked()
	c.mu.Unlock()
	c.closeWatches()
	for _, ch := range failed {
		//mcsdlint:allow chanbound -- pending-call channels are made with cap 1 in send() and failLocked detached them, so this is the single delivery; it cannot block
		ch <- outcome{err: fmt.Errorf("%w: client closed", ErrDisconnected), sent: false}
		c.releaseSlot()
	}
	return err
}

// failLocked discards the live connection state, bumps the generation and
// detaches the pending set. Caller holds c.mu and must deliver a failure
// to every returned channel (and release its window slot) after unlocking.
func (c *Client) failLocked() map[uint64]chan outcome {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	c.codec = nil
	c.gen++
	failed := c.pending
	c.pending = make(map[uint64]chan outcome)
	return failed
}

// failConn tears down generation gen after an I/O failure, delivering
// ErrDisconnected to every request that was in flight on it — exactly
// once per tag, because the pending set detaches atomically and stale
// generations bail out on the gen check.
func (c *Client) failConn(gen uint64, cause error) {
	c.mu.Lock()
	if gen != c.gen {
		c.mu.Unlock()
		return
	}
	failed := c.failLocked()
	c.mu.Unlock()
	// Watch streams die with their connection: the channel close tells
	// consumers to fall back to polling (and re-Watch after a redial).
	c.closeWatches()
	err := fmt.Errorf("%w: %v", ErrDisconnected, cause)
	for _, ch := range failed {
		//mcsdlint:allow chanbound -- pending-call channels are made with cap 1 in send() and failLocked detached them, so this is the single delivery; it cannot block
		ch <- outcome{err: err, sent: true}
		c.releaseSlot()
	}
}

// reconnectLocked re-establishes the connection, honouring the backoff
// window so a dead server is not hammered. Caller holds c.mu.
func (c *Client) reconnectLocked() error {
	if c.closed {
		return fmt.Errorf("%w: client closed", ErrDisconnected)
	}
	if c.redial == nil {
		return fmt.Errorf("%w: no redial configured", ErrDisconnected)
	}
	if time.Now().Before(c.nextDial) {
		return fmt.Errorf("%w: redial backoff active", ErrDisconnected)
	}
	conn, err := c.redial()
	if err != nil {
		if c.backoffCur <= 0 {
			c.backoffCur = c.backoffInit
		}
		c.nextDial = time.Now().Add(c.backoffCur)
		c.backoffCur *= 2
		if c.backoffCur > c.backoffMax {
			c.backoffCur = c.backoffMax
		}
		return fmt.Errorf("%w: redial: %v", ErrDisconnected, err)
	}
	c.conn = conn
	c.backoffCur = 0
	c.nextDial = time.Time{}
	c.reconnects++
	return nil
}

// startLocked builds the codec for the current connection (wrapping it for
// wire-byte accounting) and starts its demux goroutine. Caller holds c.mu.
func (c *Client) startLocked() {
	cc := &countingConn{Conn: c.conn, sent: c.met.bytesSent, recv: c.met.bytesRecv}
	if c.wire == WireGob {
		c.codec = newGobCodec(cc, cc)
	} else {
		c.codec = newBinClientCodec(cc, cc)
	}
	//mcsdlint:allow goroleak -- demux exits when its generation's connection dies: readResponse returns an error once the conn fails or Close tears it down, and failConn retires the generation
	go c.demux(c.codec, c.gen)
}

// demux is the per-connection response reader: it matches each response to
// its tag and hands it to the waiting caller. On a read failure it fails
// the whole generation.
func (c *Client) demux(codec clientCodec, gen uint64) {
	for {
		resp := new(Response)
		if err := codec.readResponse(resp); err != nil {
			c.failConn(gen, err)
			return
		}
		if resp.Tag == NotifyTag {
			// Unsolicited server-push change notification: the reserved tag
			// lane. Never a pending call (tags start at 1).
			c.deliverNotify(resp)
			continue
		}
		c.mu.Lock()
		if gen != c.gen {
			c.mu.Unlock()
			resp.free()
			return
		}
		ch, ok := c.pending[resp.Tag]
		if ok {
			delete(c.pending, resp.Tag)
		}
		c.mu.Unlock()
		if !ok {
			// Tag already failed over (or never ours): drop the frame.
			resp.free()
			continue
		}
		//mcsdlint:allow chanbound -- the tag was just removed from pending under c.mu, so this cap-1 channel (made in send()) gets exactly this one delivery; it cannot block
		ch <- outcome{resp: resp, sent: true}
		c.releaseSlot()
	}
}

// acquireSlot claims one window slot, blocking (and counting a pipeline
// stall) when the window is full.
func (c *Client) acquireSlot() {
	c.mu.Lock()
	w := c.window
	c.mu.Unlock()
	select {
	case w <- struct{}{}:
	default:
		c.met.stalls.Inc()
		//mcsdlint:allow chanbound -- blocking here IS the pipeline-window backpressure (§IV-B): every delivered outcome releases a slot, and failLocked fails all pending calls on disconnect, so the wait is bounded by in-flight completions
		w <- struct{}{}
	}
	c.met.inflight.Add(1)
}

// releaseSlot frees a window slot; called by whichever path delivers the
// request's outcome.
func (c *Client) releaseSlot() {
	c.mu.Lock()
	w := c.window
	c.mu.Unlock()
	select {
	case <-w:
	default: // window resized mid-flight (misuse); don't wedge
	}
	c.met.inflight.Add(-1)
}

// transmit assigns req a tag, registers its outcome channel and writes the
// frame. A returned error means the request never reached the wire (the
// channel is untouched); a post-registration write failure is delivered
// through the channel by failConn instead.
func (c *Client) transmit(req *Request, ch chan outcome) error {
	c.mu.Lock()
	if c.conn == nil {
		if err := c.reconnectLocked(); err != nil {
			c.mu.Unlock()
			return err
		}
	}
	if c.codec == nil {
		c.startLocked()
	}
	c.nextTag++
	req.Tag = c.nextTag
	gen := c.gen
	codec := c.codec
	c.pending[req.Tag] = ch
	c.mu.Unlock()

	c.sendMu.Lock()
	err := codec.writeRequest(req)
	c.sendMu.Unlock()
	if err != nil {
		c.failConn(gen, err)
	}
	return nil
}

// call is one in-flight tagged request: a future whose wait() yields the
// response (replaying idempotent requests across a reconnect).
type call struct {
	c    *Client
	req  *Request
	idem bool
	ch   chan outcome
}

// send issues req into the pipeline window and returns its future.
func (c *Client) send(req *Request, idem bool) *call {
	f := &call{c: c, req: req, idem: idem, ch: make(chan outcome, 1)}
	c.acquireSlot()
	if err := c.transmit(req, f.ch); err != nil {
		c.releaseSlot()
		f.ch <- outcome{err: err}
	}
	return f
}

// ready reports whether wait() would return without blocking.
func (f *call) ready() bool { return len(f.ch) > 0 }

// wait blocks for the request's outcome. Requests that reached the wire
// and were lost to a disconnect are replayed (bounded) when idempotent.
// The returned response must be freed by the caller once its Data has been
// consumed.
func (f *call) wait() (*Response, error) {
	out := <-f.ch
	for attempt := 0; out.err != nil && out.sent && f.idem &&
		errors.Is(out.err, ErrDisconnected) && attempt < maxReplays; attempt++ {
		f.c.met.replays.Inc()
		out = f.c.retry(f.req)
	}
	if out.err != nil {
		return nil, out.err
	}
	resp := out.resp
	if resp.Err != "" {
		err := respErr(f.req, resp)
		resp.free()
		return nil, err
	}
	return resp, nil
}

// retry re-sends a request once, synchronously (the idempotent replay
// path). It claims its own window slot like any other send.
func (c *Client) retry(req *Request) outcome {
	ch := make(chan outcome, 1)
	c.acquireSlot()
	if err := c.transmit(req, ch); err != nil {
		c.releaseSlot()
		return outcome{err: err}
	}
	return <-ch
}

func respErr(req *Request, resp *Response) error {
	if resp.NotExist {
		return fmt.Errorf("%w: %s: %s", smartfam.ErrNotExist, req.Name, resp.Err)
	}
	return fmt.Errorf("%w: %s", ErrRemote, resp.Err)
}

// do performs one RPC round trip through the pipeline.
func (c *Client) do(req *Request, idem bool) (*Response, error) {
	return c.send(req, idem).wait()
}

// doDiscard is do for operations whose response carries no payload.
func (c *Client) doDiscard(req *Request, idem bool) error {
	resp, err := c.do(req, idem)
	if resp != nil {
		resp.free()
	}
	return err
}

// call performs one non-idempotent RPC round trip. An IO failure mid-call
// returns ErrDisconnected — the request may or may not have executed
// server-side, so only the caller can decide whether a retry is safe
// (smartFAM retries are, by request-ID dedupe).
func (c *Client) call(req *Request) (*Response, error) {
	return c.do(req, false)
}

// Ping round-trips an empty request, verifying the mount.
func (c *Client) Ping() error {
	return c.doDiscard(&Request{Op: OpPing}, true)
}

// Create makes (or truncates) a file on the share.
func (c *Client) Create(name string) error {
	return c.doDiscard(&Request{Op: OpCreate, Name: name}, true)
}

// Append atomically appends data. Payloads up to MaxChunk go out as one
// RPC. Larger ones are staged: the chunks are pipelined into a uniquely
// named temp file beside the target, then a single commit RPC splices the
// staged bytes onto the target under the server's append lock — so a crash
// or disconnect mid-transfer can never leave a torn tail on the target
// (the orphaned staging file is invisible to List and harmless).
func (c *Client) Append(name string, data []byte) error {
	if len(data) <= MaxChunk {
		return c.doDiscard(&Request{Op: OpAppend, Name: name, Data: data}, false)
	}
	return c.stageAndCommit(name, data, CommitAppend)
}

// stageAndCommit pipelines data into a staging temp file and commits it
// onto name in one server-side splice (append or replace).
func (c *Client) stageAndCommit(name string, data []byte, mode int) error {
	clean, err := cleanName(name)
	if err != nil {
		return err
	}
	tmp := clean + ".append-" + smartfam.NewID() + ".tmp"
	if err := c.Create(tmp); err != nil {
		return err
	}
	futures := make([]*call, 0, (len(data)+MaxChunk-1)/MaxChunk)
	for off := 0; off < len(data); off += MaxChunk {
		end := min(off+MaxChunk, len(data))
		// In-order pipelined appends: one connection handles requests in
		// send order, so the staged chunks land sequentially.
		futures = append(futures, c.send(&Request{Op: OpAppend, Name: tmp, Data: data[off:end]}, false))
	}
	var firstErr error
	for _, f := range futures {
		resp, err := f.wait()
		if resp != nil {
			resp.free()
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = c.doDiscard(&Request{Op: OpCommit, Name: tmp, To: name, N: mode}, false)
		if firstErr == nil {
			return nil
		}
	}
	// Best-effort cleanup; if the commit raced a disconnect the server may
	// have already consumed the staging file, and List filters strays.
	_ = c.doDiscard(&Request{Op: OpRemove, Name: tmp}, false) //nolint:errcheck
	return firstErr
}

// ReadAt implements smartfam.FS. Reads larger than MaxChunk fan out as one
// tagged RPC per chunk through the pipeline window, so a big read costs
// roughly one RTT plus transfer time instead of one RTT per chunk.
func (c *Client) ReadAt(name string, p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if len(p) <= MaxChunk {
		resp, err := c.do(&Request{Op: OpReadAt, Name: name, Off: off, N: len(p)}, true)
		if err != nil {
			return 0, err
		}
		n := copy(p, resp.Data)
		resp.free()
		if n < len(p) {
			return n, io.EOF
		}
		return n, nil
	}
	type chunk struct {
		f    *call
		pos  int
		want int
	}
	chunks := make([]chunk, 0, (len(p)+MaxChunk-1)/MaxChunk)
	for pos := 0; pos < len(p); pos += MaxChunk {
		want := min(len(p)-pos, MaxChunk)
		f := c.send(&Request{Op: OpReadAt, Name: name, Off: off + int64(pos), N: want}, true)
		chunks = append(chunks, chunk{f: f, pos: pos, want: want})
	}
	contig := 0
	stopped := false
	var firstErr error
	for _, ck := range chunks {
		resp, err := ck.f.wait()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			stopped = true
			continue
		}
		n := copy(p[ck.pos:ck.pos+ck.want], resp.Data)
		resp.free()
		if stopped {
			continue
		}
		contig += n
		if n < ck.want {
			stopped = true
		}
	}
	if firstErr != nil {
		return contig, firstErr
	}
	if contig < len(p) {
		return contig, io.EOF
	}
	return contig, nil
}

// ChunkSum asks the server for the CRC32 (IEEE) of up to n bytes of name
// at off, computed server-side so scrub-style verification costs one small
// RPC instead of the chunk's bytes. It returns the checksum and how many
// bytes were actually summed (short at EOF). Servers predating the op
// answer with an "unknown op" remote error; callers fall back to reading
// the bytes.
func (c *Client) ChunkSum(name string, off int64, n int) (uint32, int, error) {
	if n <= 0 || n > MaxChunk {
		n = MaxChunk
	}
	resp, err := c.do(&Request{Op: OpSum, Name: name, Off: off, N: n}, true)
	if err != nil {
		return 0, 0, err
	}
	crc, summed := uint32(resp.Size), int(resp.MTimeNs)
	resp.free()
	return crc, summed, nil
}

// Stat implements smartfam.FS.
func (c *Client) Stat(name string) (int64, time.Time, error) {
	resp, err := c.do(&Request{Op: OpStat, Name: name}, true)
	if err != nil {
		return 0, time.Time{}, err
	}
	size, mtime := resp.Size, time.Unix(0, resp.MTimeNs)
	resp.free()
	return size, mtime, nil
}

// List implements smartfam.FS (share root).
func (c *Client) List() ([]string, error) {
	resp, err := c.do(&Request{Op: OpList}, true)
	if err != nil {
		return nil, err
	}
	names := resp.Names
	resp.free()
	return names, nil
}

// ListDir lists a subdirectory of the share.
func (c *Client) ListDir(dir string) ([]string, error) {
	resp, err := c.do(&Request{Op: OpList, Name: dir}, true)
	if err != nil {
		return nil, err
	}
	names := resp.Names
	resp.free()
	return names, nil
}

// Remove implements smartfam.FS.
func (c *Client) Remove(name string) error {
	return c.doDiscard(&Request{Op: OpRemove, Name: name}, false)
}

// Rename implements smartfam.FS.
func (c *Client) Rename(oldname, newname string) error {
	return c.doDiscard(&Request{Op: OpRename, Name: oldname, To: newname}, false)
}

// WriteFile replaces a file's contents. Payloads over MaxChunk are staged
// chunk-by-chunk through the pipeline and committed with an atomic
// server-side rename, so readers never observe a half-written file.
func (c *Client) WriteFile(name string, data []byte) error {
	if len(data) <= MaxChunk {
		return c.doDiscard(&Request{Op: OpWrite, Name: name, Data: data}, true)
	}
	return c.stageAndCommit(name, data, CommitReplace)
}

// ReadFile fetches a whole file. The chunk fan-out in ReadAt pipelines the
// transfer.
func (c *Client) ReadFile(name string) ([]byte, error) {
	size, _, err := c.Stat(name)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	n, err := c.ReadAt(name, buf, 0)
	if err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	return buf[:n], nil
}

// CopyTo streams a whole remote file into w without holding it in memory,
// with read-ahead prefetch keeping the wire busy while w consumes.
func (c *Client) CopyTo(w io.Writer, name string) (int64, error) {
	r, err := c.openReaderAt(name, 0, 0)
	if err != nil {
		return 0, err
	}
	defer r.Close()
	var total int64
	for {
		resp, err := r.nextChunk()
		if err != nil {
			return total, err
		}
		if resp == nil {
			return total, nil
		}
		n, werr := w.Write(resp.Data)
		resp.free()
		total += int64(n)
		if werr != nil {
			return total, fmt.Errorf("nfs: copying %s: %w", name, werr)
		}
	}
}

// OpenReader returns a streaming reader over a remote file. Reads page
// through MaxChunk-sized RPCs with readAheadDepth chunks prefetched
// through the pipeline, so arbitrarily large files stream at link speed
// without being resident on either side.
func (c *Client) OpenReader(name string) (io.ReadCloser, error) {
	return c.OpenReaderAt(name, 0)
}

// OpenReaderAt is OpenReader starting at byte offset off.
func (c *Client) OpenReaderAt(name string, off int64) (io.ReadCloser, error) {
	return c.openReaderAt(name, off, 0)
}

// OpenRangeReader is OpenReaderAt with the caller's declared range length:
// read-ahead pipelines freely up to off+length but never past it, and any
// bytes the consumer needs beyond the range (a scanner finishing a record
// that straddles the boundary) are demand-paged in small chunks. A short
// range scan then moves ~its own bytes over the wire instead of dragging
// the full read-ahead window along. length <= 0 means unbounded, which is
// exactly OpenReaderAt.
func (c *Client) OpenRangeReader(name string, off, length int64) (io.ReadCloser, error) {
	var bound int64
	if length > 0 {
		bound = off + length
	}
	return c.openReaderAt(name, off, bound)
}

func (c *Client) openReaderAt(name string, off, bound int64) (*remoteReader, error) {
	// Validate existence up front so callers get ErrNotExist at open time.
	if _, _, err := c.Stat(name); err != nil {
		return nil, err
	}
	r := &remoteReader{c: c, name: name, next: off, bound: bound}
	r.fill()
	return r, nil
}

// remoteReader streams a remote file with pipelined read-ahead: up to
// readAheadDepth chunk requests are in flight ahead of the consumer, so
// sequential reads overlap round trips and transfer with consumption.
type remoteReader struct {
	c      *Client
	name   string
	next   int64   // offset of the next prefetch to issue
	bound  int64   // declared range end; 0 = unbounded (see OpenRangeReader)
	queue  []*call // issued prefetches, in offset order
	cur    *Response
	data   []byte // unread tail of cur
	eof    bool   // a short/empty chunk was seen; stop issuing
	err    error  // sticky failure: the stream may have a hole past here
	closed bool
}

// boundTailChunk sizes the demand-paged fetches past a bounded reader's
// declared range end — just enough for a scanner to finish the record that
// straddles the boundary.
const boundTailChunk = 4 << 10

// fill tops the prefetch window back up.
func (r *remoteReader) fill() {
	for !r.eof && len(r.queue) < readAheadDepth {
		n := MaxChunk
		if r.bound > 0 {
			switch {
			case r.next < r.bound:
				if rem := r.bound - r.next; rem < int64(n) {
					n = int(rem)
				}
			case len(r.queue) > 0:
				// Past the declared range: strictly one tail fetch at a
				// time, issued only when the consumer actually needs it.
				return
			default:
				n = boundTailChunk
			}
		}
		f := r.c.send(&Request{Op: OpReadAt, Name: r.name, Off: r.next, N: n}, true)
		r.next += int64(n)
		r.queue = append(r.queue, f)
	}
}

// nextChunk returns the next chunk response in offset order, nil at EOF.
// The caller frees the response. Any error is sticky: a failed chunk would
// leave a hole in the stream, so the reader refuses to continue past it.
func (r *remoteReader) nextChunk() (*Response, error) {
	if r.err != nil {
		return nil, r.err
	}
	if len(r.queue) == 0 {
		if r.eof {
			return nil, nil
		}
		r.fill()
	}
	f := r.queue[0]
	r.queue = r.queue[1:]
	resp, err := f.wait()
	if err != nil {
		r.err = err
		return nil, err
	}
	if resp.EOF || len(resp.Data) == 0 {
		r.eof = true
		r.drain()
	} else {
		r.fill()
	}
	if len(resp.Data) == 0 {
		resp.free()
		return nil, nil
	}
	return resp, nil
}

// drain settles and discards every outstanding prefetch (they have all
// been sent; their responses arrive regardless).
func (r *remoteReader) drain() {
	for _, f := range r.queue {
		if resp, err := f.wait(); err == nil && resp != nil {
			resp.free()
		}
	}
	r.queue = nil
}

func (r *remoteReader) Read(p []byte) (int, error) {
	if r.closed {
		return 0, fmt.Errorf("nfs: read from closed reader for %s", r.name)
	}
	if len(p) == 0 {
		return 0, nil
	}
	total := 0
	for total < len(p) {
		if len(r.data) == 0 {
			if r.cur != nil {
				r.cur.free()
				r.cur = nil
			}
			if r.err != nil {
				if total > 0 {
					return total, nil
				}
				return 0, r.err
			}
			if r.eof && len(r.queue) == 0 {
				break
			}
			// Batch into large caller buffers while chunks are ready, but
			// never block once we already have bytes to deliver.
			if total > 0 && (len(r.queue) == 0 || !r.queue[0].ready()) {
				break
			}
			resp, err := r.nextChunk()
			if err != nil {
				if total > 0 {
					return total, nil // err is sticky; next Read surfaces it
				}
				return 0, err
			}
			if resp == nil {
				break
			}
			r.cur, r.data = resp, resp.Data
		}
		n := copy(p[total:], r.data)
		r.data = r.data[n:]
		total += n
	}
	if total == 0 {
		return 0, io.EOF
	}
	return total, nil
}

func (r *remoteReader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.drain()
	if r.cur != nil {
		r.cur.free()
		r.cur = nil
	}
	r.data = nil
	return nil
}

// countingConn tallies raw wire bytes in both directions, independent of
// which codec frames them.
type countingConn struct {
	net.Conn
	sent *metrics.Counter
	recv *metrics.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.recv.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.sent.Add(int64(n))
	return n, err
}

var _ smartfam.FS = (*Client)(nil)
