package nfs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"mcsd/internal/netsim"
	"mcsd/internal/smartfam"
)

// ErrDisconnected marks an RPC that failed because the connection to the
// server dropped (or could not yet be re-established). It is retryable:
// the in-flight call is lost, but the next call transparently redials when
// the client knows how to (Dial/DialThrottled install a redial function;
// NewClient over a raw conn does not).
var ErrDisconnected = errors.New("nfs: connection lost")

// Redial backoff defaults: a dead server is retried at most once per
// window, with the window doubling up to the cap.
const (
	defaultRedialInitial = 50 * time.Millisecond
	defaultRedialMax     = 2 * time.Second
)

// Client is the host-node side of the share: it implements smartfam.FS so
// the smartFAM client runs unchanged over the network, plus whole-file
// helpers for staging workload data onto (and results off) the SD node.
//
// A Client multiplexes all operations over one connection, mirroring one
// NFS mount. It is safe for concurrent use. A dropped connection fails the
// in-flight call with ErrDisconnected and is transparently re-established
// (with exponential backoff) on the next call.
type Client struct {
	mu     sync.Mutex
	codec  *codec
	conn   net.Conn
	closed bool

	redial      func() (net.Conn, error)
	backoffInit time.Duration
	backoffMax  time.Duration
	backoffCur  time.Duration // 0 = connected / first retry is free
	nextDial    time.Time
	reconnects  int64
}

// Dial connects to an NFS server at addr. The returned client redials the
// same address if the connection later drops.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("nfs: dial %s: %w", addr, err)
	}
	c := NewClient(conn)
	c.redial = func() (net.Conn, error) { return net.DialTimeout("tcp", addr, timeout) }
	return c, nil
}

// DialThrottled connects through a modelled link, so all share traffic pays
// the interconnect's cost (the testbed's 1 GbE switch). Redials go through
// the same link. ctx bounds the link's pacing waits for the connection's
// lifetime (and any redialed successor's).
func DialThrottled(ctx context.Context, addr string, timeout time.Duration, link *netsim.Link) (*Client, error) {
	conn, err := link.DialThrottled(ctx, "tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("nfs: dial %s: %w", addr, err)
	}
	c := NewClient(conn)
	c.redial = func() (net.Conn, error) { return link.DialThrottled(ctx, "tcp", addr, timeout) }
	return c, nil
}

// NewClient wraps an established connection (possibly already throttled).
// Without a redial function (see SetRedial) a dropped connection is
// permanent: every later call fails with ErrDisconnected.
func NewClient(conn net.Conn) *Client {
	return &Client{
		codec:       newCodec(conn),
		conn:        conn,
		backoffInit: defaultRedialInitial,
		backoffMax:  defaultRedialMax,
	}
}

// SetRedial installs (or replaces) the function used to re-establish a
// dropped connection.
func (c *Client) SetRedial(fn func() (net.Conn, error)) {
	c.mu.Lock()
	c.redial = fn
	c.mu.Unlock()
}

// SetRedialBackoff overrides the reconnect backoff window (initial delay
// after a failed redial, doubling up to max). Zero values keep defaults.
func (c *Client) SetRedialBackoff(initial, max time.Duration) {
	c.mu.Lock()
	if initial > 0 {
		c.backoffInit = initial
	}
	if max > 0 {
		c.backoffMax = max
	}
	c.mu.Unlock()
}

// Reconnects reports how many times the client has successfully redialed.
func (c *Client) Reconnects() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reconnects
}

// Close tears down the connection and disables redialing.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	c.codec = nil
	return err
}

// dropLocked discards a connection the caller observed failing; the next
// call will attempt a redial. Caller holds c.mu.
func (c *Client) dropLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.codec = nil
	}
}

// reconnectLocked re-establishes the connection, honouring the backoff
// window so a dead server is not hammered. Caller holds c.mu.
func (c *Client) reconnectLocked() error {
	if c.closed {
		return fmt.Errorf("%w: client closed", ErrDisconnected)
	}
	if c.redial == nil {
		return fmt.Errorf("%w: no redial configured", ErrDisconnected)
	}
	if time.Now().Before(c.nextDial) {
		return fmt.Errorf("%w: redial backoff active", ErrDisconnected)
	}
	conn, err := c.redial()
	if err != nil {
		if c.backoffCur <= 0 {
			c.backoffCur = c.backoffInit
		}
		c.nextDial = time.Now().Add(c.backoffCur)
		c.backoffCur *= 2
		if c.backoffCur > c.backoffMax {
			c.backoffCur = c.backoffMax
		}
		return fmt.Errorf("%w: redial: %v", ErrDisconnected, err)
	}
	c.conn = conn
	// The gob streams died with the old connection; start fresh ones.
	c.codec = newCodec(conn)
	c.backoffCur = 0
	c.nextDial = time.Time{}
	c.reconnects++
	return nil
}

// call performs one RPC round trip, redialing first if the connection was
// previously lost. An IO failure mid-call drops the connection and returns
// ErrDisconnected — the request may or may not have executed server-side,
// so only the caller can decide whether a retry is safe (smartFAM retries
// are, by request-ID dedupe).
func (c *Client) call(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		if err := c.reconnectLocked(); err != nil {
			return nil, err
		}
	}
	if err := c.codec.writeRequest(req); err != nil {
		c.dropLocked()
		return nil, fmt.Errorf("%w: %v", ErrDisconnected, err)
	}
	var resp Response
	if err := c.codec.readResponse(&resp); err != nil {
		c.dropLocked()
		return nil, fmt.Errorf("%w: %v", ErrDisconnected, err)
	}
	if resp.Err != "" {
		if resp.NotExist {
			return nil, fmt.Errorf("%w: %s: %s", smartfam.ErrNotExist, req.Name, resp.Err)
		}
		return nil, fmt.Errorf("%w: %s", ErrRemote, resp.Err)
	}
	return &resp, nil
}

// Ping round-trips an empty request, verifying the mount.
func (c *Client) Ping() error {
	_, err := c.call(&Request{Op: OpPing})
	return err
}

// Create makes (or truncates) a file on the share.
func (c *Client) Create(name string) error {
	_, err := c.call(&Request{Op: OpCreate, Name: name})
	return err
}

// Append atomically appends data, chunking large payloads.
func (c *Client) Append(name string, data []byte) error {
	for len(data) > 0 {
		n := len(data)
		if n > MaxChunk {
			n = MaxChunk
		}
		if _, err := c.call(&Request{Op: OpAppend, Name: name, Data: data[:n]}); err != nil {
			return err
		}
		data = data[n:]
	}
	return nil
}

// ReadAt implements smartfam.FS.
func (c *Client) ReadAt(name string, p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		want := len(p) - total
		if want > MaxChunk {
			want = MaxChunk
		}
		resp, err := c.call(&Request{Op: OpReadAt, Name: name, Off: off + int64(total), N: want})
		if err != nil {
			return total, err
		}
		n := copy(p[total:], resp.Data)
		total += n
		if resp.EOF || n == 0 {
			if total < len(p) {
				return total, io.EOF
			}
			break
		}
	}
	return total, nil
}

// Stat implements smartfam.FS.
func (c *Client) Stat(name string) (int64, time.Time, error) {
	resp, err := c.call(&Request{Op: OpStat, Name: name})
	if err != nil {
		return 0, time.Time{}, err
	}
	return resp.Size, time.Unix(0, resp.MTimeNs), nil
}

// List implements smartfam.FS (share root).
func (c *Client) List() ([]string, error) {
	resp, err := c.call(&Request{Op: OpList})
	if err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// ListDir lists a subdirectory of the share.
func (c *Client) ListDir(dir string) ([]string, error) {
	resp, err := c.call(&Request{Op: OpList, Name: dir})
	if err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// Remove implements smartfam.FS.
func (c *Client) Remove(name string) error {
	_, err := c.call(&Request{Op: OpRemove, Name: name})
	return err
}

// Rename implements smartfam.FS.
func (c *Client) Rename(oldname, newname string) error {
	_, err := c.call(&Request{Op: OpRename, Name: oldname, To: newname})
	return err
}

// WriteFile replaces a file's contents, chunking large payloads through
// Create+Append.
func (c *Client) WriteFile(name string, data []byte) error {
	if len(data) <= MaxChunk {
		_, err := c.call(&Request{Op: OpWrite, Name: name, Data: data})
		return err
	}
	if err := c.Create(name); err != nil {
		return err
	}
	return c.Append(name, data)
}

// ReadFile fetches a whole file.
func (c *Client) ReadFile(name string) ([]byte, error) {
	size, _, err := c.Stat(name)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	n, err := c.ReadAt(name, buf, 0)
	if err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	return buf[:n], nil
}

// CopyTo streams a whole remote file into w without holding it in memory.
func (c *Client) CopyTo(w io.Writer, name string) (int64, error) {
	var off int64
	for {
		resp, err := c.call(&Request{Op: OpReadAt, Name: name, Off: off, N: MaxChunk})
		if err != nil {
			return off, err
		}
		if len(resp.Data) > 0 {
			if _, werr := w.Write(resp.Data); werr != nil {
				return off, fmt.Errorf("nfs: copying %s: %w", name, werr)
			}
			off += int64(len(resp.Data))
		}
		if resp.EOF || len(resp.Data) == 0 {
			return off, nil
		}
	}
}

// OpenReader returns a streaming reader over a remote file. Reads page
// through MaxChunk-sized RPCs, so arbitrarily large files stream without
// being resident on either side.
func (c *Client) OpenReader(name string) (io.ReadCloser, error) {
	// Validate existence up front so callers get ErrNotExist at open time.
	if _, _, err := c.Stat(name); err != nil {
		return nil, err
	}
	return &remoteReader{c: c, name: name}, nil
}

type remoteReader struct {
	c      *Client
	name   string
	off    int64
	buf    []byte
	eof    bool
	closed bool
}

func (r *remoteReader) Read(p []byte) (int, error) {
	if r.closed {
		return 0, fmt.Errorf("nfs: read from closed reader for %s", r.name)
	}
	if len(r.buf) == 0 {
		if r.eof {
			return 0, io.EOF
		}
		resp, err := r.c.call(&Request{Op: OpReadAt, Name: r.name, Off: r.off, N: MaxChunk})
		if err != nil {
			return 0, err
		}
		r.buf = resp.Data
		r.off += int64(len(resp.Data))
		r.eof = resp.EOF || len(resp.Data) == 0
		if len(r.buf) == 0 {
			return 0, io.EOF
		}
	}
	n := copy(p, r.buf)
	r.buf = r.buf[n:]
	return n, nil
}

func (r *remoteReader) Close() error {
	r.closed = true
	r.buf = nil
	return nil
}

var _ smartfam.FS = (*Client)(nil)
