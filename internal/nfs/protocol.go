// Package nfs is the networked file service that stands in for the NFS
// share of the paper's testbed (§III-B): the McSD node exports a directory;
// the host mounts it and reads/writes files — data files and smartFAM log
// files — so that every byte of host-side access to SD-resident data
// crosses the network, exactly the data movement McSD exists to avoid.
//
// The protocol is a simple length-delimited gob RPC over one TCP
// connection per client. Wrap the connection (or the listener) with
// netsim.Throttle to make the traffic pay Gigabit-Ethernet costs.
package nfs

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
)

// Op codes.
const (
	OpCreate = "create"
	OpAppend = "append"
	OpReadAt = "readat"
	OpStat   = "stat"
	OpList   = "list"
	OpRemove = "remove"
	OpRename = "rename" // atomic replace of Request.To by Request.Name
	OpWrite  = "write"  // whole-file write (truncate + create dirs)
	OpPing   = "ping"
)

// Request is one client->server message.
type Request struct {
	Op   string
	Name string
	To   string // rename destination
	Data []byte
	Off  int64
	N    int
}

// Response is one server->client message.
type Response struct {
	Data     []byte
	Size     int64
	MTimeNs  int64
	Names    []string
	Err      string
	NotExist bool
	EOF      bool
}

// MaxChunk bounds one ReadAt/Append payload so a single RPC cannot pin
// unbounded memory; larger operations are chunked by the client.
const MaxChunk = 1 << 20

// ErrRemote wraps a server-side failure.
var ErrRemote = errors.New("nfs: remote error")

// cleanName validates a share-relative path: non-empty, slash-separated,
// no "." or ".." components, no leading slash.
func cleanName(name string) (string, error) {
	if name == "" || strings.HasPrefix(name, "/") || strings.Contains(name, `\`) {
		return "", fmt.Errorf("nfs: invalid path %q", name)
	}
	for _, part := range strings.Split(name, "/") {
		if part == "" || part == "." || part == ".." {
			return "", fmt.Errorf("nfs: invalid path %q", name)
		}
	}
	return name, nil
}

// codec pairs a gob encoder/decoder over one connection.
type codec struct {
	enc *gob.Encoder
	dec *gob.Decoder
	c   net.Conn
}

func newCodec(c net.Conn) *codec {
	return &codec{enc: gob.NewEncoder(c), dec: gob.NewDecoder(c), c: c}
}

func (c *codec) writeRequest(r *Request) error {
	if err := c.enc.Encode(r); err != nil {
		return fmt.Errorf("nfs: encoding request: %w", err)
	}
	return nil
}

func (c *codec) readRequest(r *Request) error {
	err := c.dec.Decode(r)
	if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
		return io.EOF
	}
	if err != nil {
		return fmt.Errorf("nfs: decoding request: %w", err)
	}
	return nil
}

func (c *codec) writeResponse(r *Response) error {
	if err := c.enc.Encode(r); err != nil {
		return fmt.Errorf("nfs: encoding response: %w", err)
	}
	return nil
}

func (c *codec) readResponse(r *Response) error {
	if err := c.dec.Decode(r); err != nil {
		return fmt.Errorf("nfs: decoding response: %w", err)
	}
	return nil
}
